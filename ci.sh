#!/bin/sh
# ci.sh — the repository's check suite: formatting, vet, the full test
# suite under the race detector (the engine's sweeps are parallel, so
# every CI run doubles as a concurrency audit), coverage floors on the
# prediction core, short fuzz smoke runs, and the differential oracle.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

# cov_check PKG FLOOR runs the package's tests with coverage and fails
# if total statement coverage drops below FLOOR percent.
cov_check() {
	pkg=$1
	floor=$2
	pct=$(go test -cover "$pkg" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
	if [ -z "$pct" ]; then
		echo "no coverage reported for $pkg" >&2
		exit 1
	fi
	if [ "$(awk "BEGIN{print ($pct < $floor) ? 1 : 0}")" = 1 ]; then
		echo "coverage for $pkg is ${pct}%, below the ${floor}% floor" >&2
		exit 1
	fi
	echo "coverage $pkg: ${pct}% (floor ${floor}%)"
}

echo "== coverage floors =="
cov_check ./internal/bpred 90
cov_check ./internal/core 85

echo "== fuzz smoke =="
# Each fuzz target gets a short randomized run beyond its seed corpus;
# -run='^$' skips the unit tests already run above.
go test -run='^$' -fuzz=FuzzParse -fuzztime=10s ./internal/sim
go test -run='^$' -fuzz=FuzzPredictorVsReference -fuzztime=10s ./internal/oracle
go test -run='^$' -fuzz=FuzzTraceRoundTrip -fuzztime=10s ./internal/oracle

echo "== oracle =="
go run ./cmd/oracle -events 100000

echo "CI OK"
