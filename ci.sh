#!/bin/sh
# ci.sh — the repository's check suite: formatting, vet, and the full
# test suite under the race detector (the engine's sweeps are parallel,
# so every CI run doubles as a concurrency audit).
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "CI OK"
