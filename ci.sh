#!/bin/sh
# ci.sh — the repository's check suite: formatting, vet, the full test
# suite under the race detector (the engine's sweeps and the serving
# daemon are concurrent, so every CI run doubles as a concurrency
# audit), coverage floors on the core packages, short fuzz smoke runs,
# the differential oracle (including the serve-vs-direct HTTP path),
# the performance-regression gate (bpbench -quick against the committed
# BENCH.json baseline), and a live boot of the bpservd daemon driven by
# bpload.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== coverage floors =="
# One coverage pass over the whole module; every floor is parsed out of
# the same run instead of re-testing floor packages one at a time.
covfile=$(mktemp)
go test -cover ./... >"$covfile"
cat "$covfile"

# cov_floor PKG FLOOR fails if PKG's statement coverage from the pass
# above is below FLOOR percent.
cov_floor() {
	pkg=$1
	floor=$2
	pct=$(awk -v pkg="$pkg" '$1 == "ok" && $2 == pkg {
		for (i = 3; i <= NF; i++)
			if ($i ~ /^[0-9.]+%$/) { gsub(/%/, "", $i); print $i }
	}' "$covfile")
	if [ -z "$pct" ]; then
		echo "no coverage reported for $pkg" >&2
		exit 1
	fi
	if [ "$(awk "BEGIN{print ($pct < $floor) ? 1 : 0}")" = 1 ]; then
		echo "coverage for $pkg is ${pct}%, below the ${floor}% floor" >&2
		exit 1
	fi
	echo "coverage $pkg: ${pct}% (floor ${floor}%)"
}

cov_floor repro/internal/bpred 90
cov_floor repro/internal/core 85
cov_floor repro/internal/sim 85
cov_floor repro/internal/serve 80
cov_floor repro/internal/snap 85
cov_floor repro/internal/harness 85
cov_floor repro/internal/results 75
cov_floor repro/internal/charz 85
cov_floor repro/internal/charz/probe 85
cov_floor repro/internal/telemetry 85
rm -f "$covfile"

echo "== fuzz smoke =="
# Each fuzz target gets a short randomized run beyond its seed corpus;
# -run='^$' skips the unit tests already run above.
go test -run='^$' -fuzz=FuzzParse -fuzztime=10s ./internal/sim
go test -run='^$' -fuzz=FuzzPredictorVsReference -fuzztime=10s ./internal/oracle
go test -run='^$' -fuzz=FuzzTraceRoundTrip -fuzztime=10s ./internal/oracle
go test -run='^$' -fuzz=FuzzCharacterize -fuzztime=10s ./internal/charz
go test -run='^$' -fuzz=FuzzSnapshotRoundTrip -fuzztime=10s ./internal/snap

echo "== oracle =="
go run ./cmd/oracle -events 100000

echo "== bpchar probe gate =="
# The black-box prober is the predictors' second-opinion oracle: every
# registry kind must probe back to the structure its spec claims
# (history depth, table size, hysteresis) through the public interface
# alone. probe -all exits nonzero on any mismatch.
go run ./cmd/bpchar probe -all
# Smoke the other two subcommands end to end: characterize a synthetic
# point and solve/generate a targeted one.
go run ./cmd/bpchar characterize -w 'syn:lag:k=6:eps=0.02' >/dev/null
go run ./cmd/bpchar generate -rate 0.5 -cond 0.3 -depth 6 >/dev/null

echo "== bench smoke =="
# One iteration of each feed benchmark: catches a broken or panicking
# fast path without paying for a real measurement.
go test -run='^$' -bench BenchmarkFeed -benchtime 1x .

echo "== bpbench regression gate =="
# Quick grid against the committed baseline; any metric more than 25%
# worse fails CI. The quick grid includes the serve HTTP feed benchmarks
# (serial and multi-client) and the counter-layout microbenchmarks, so
# a serving-path or table-layout regression trips the same gate as a
# feed-loop one. The fresh artifact is left in a temp file for
# inspection (and for refreshing BENCH.json after intentional changes).
benchout=$(mktemp /tmp/BENCH.ci.XXXXXX.json)
go run ./cmd/bpbench -quick -o "$benchout" -compare BENCH.json -threshold 0.25
echo "bpbench artifact: $benchout"

echo "== bpstats diff gate =="
# Record a fresh quick run of E5 (whose quick grid equals its full grid)
# into a throwaway store, then require a zero-delta diff against the
# committed results/*.csv views: the experiment engine, the results
# store, and the diff gate all have to agree for this to pass.
statsdir=$(mktemp -d)
go build -o "$statsdir" ./cmd/experiments ./cmd/bpstats
"$statsdir/experiments" -quick -id E5 -store "$statsdir/runs" >/dev/null
"$statsdir/bpstats" list -store "$statsdir/runs"
"$statsdir/bpstats" diff -store "$statsdir/runs" -csv results -id E5 -threshold 0 latest
rm -rf "$statsdir"

echo "== serve smoke =="
# Boot the daemon on a random port, walk every endpoint with bpload
# -smoke (create session, post batches in both wire formats, read
# metrics, sweep, delete with a byte-identical metrics check), push a
# short concurrent load with verification, then require a clean
# SIGTERM shutdown.
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"; kill "$servepid" 2>/dev/null || true' EXIT
go build -o "$smokedir" ./cmd/bpservd ./cmd/bpload
"$smokedir/bpservd" -addr 127.0.0.1:0 -portfile "$smokedir/port" -quiet &
servepid=$!
tries=0
while [ ! -s "$smokedir/port" ]; do
	tries=$((tries + 1))
	if [ "$tries" -gt 100 ]; then
		echo "bpservd never wrote its portfile" >&2
		exit 1
	fi
	if ! kill -0 "$servepid" 2>/dev/null; then
		echo "bpservd exited before listening" >&2
		exit 1
	fi
	sleep 0.1
done
addr=$(cat "$smokedir/port")
"$smokedir/bpload" -addr "$addr" -smoke
"$smokedir/bpload" -addr "$addr" -sessions 4 -events 100000 -batch 2048 -verify
kill -TERM "$servepid"
if ! wait "$servepid"; then
	echo "bpservd shut down uncleanly" >&2
	exit 1
fi

echo "== cluster smoke =="
# Two bpservd backends with a shared spill directory behind bprouter;
# bpload drives the cluster in -cluster mode (explicit session IDs,
# per-batch seqs, per-branch metrics, an injected X-Request-Id per
# batch) and SIGTERMs one backend mid-run. The gate passes only if:
#   - the run finishes with zero errors AND the surviving backend's
#     metrics match an uninterrupted local replay (zero lost state);
#   - an injected request ID appears in the router log AND in a backend
#     log, and specifically a batch the router RETRIED after the kill
#     carries the same ID into the surviving backend's log — the
#     cross-tier trace survives failover;
#   - the per-branch stats endpoint serves a ranked report through the
#     router for a kept session;
#   - bptop -once renders a fleet frame against both live tiers, which
#     also holds each /metrics page to the strict exposition lint.
clusterdir=$(mktemp -d)
trap 'rm -rf "$smokedir" "$clusterdir"
      kill "$servepid" "$b1pid" "$b2pid" "$rtpid" 2>/dev/null || true' EXIT
go build -o "$clusterdir" ./cmd/bprouter ./cmd/bptop
mkdir "$clusterdir/spill"
"$smokedir/bpservd" -addr 127.0.0.1:0 -portfile "$clusterdir/b1.port" \
	-spill "$clusterdir/spill" >"$clusterdir/b1.log" 2>&1 &
b1pid=$!
"$smokedir/bpservd" -addr 127.0.0.1:0 -portfile "$clusterdir/b2.port" \
	-spill "$clusterdir/spill" >"$clusterdir/b2.log" 2>&1 &
b2pid=$!
tries=0
while [ ! -s "$clusterdir/b1.port" ] || [ ! -s "$clusterdir/b2.port" ]; do
	tries=$((tries + 1))
	if [ "$tries" -gt 100 ]; then
		echo "cluster backends never wrote portfiles" >&2
		exit 1
	fi
	sleep 0.1
done
"$clusterdir/bprouter" -addr 127.0.0.1:0 -portfile "$clusterdir/rt.port" \
	-backends "http://$(cat "$clusterdir/b1.port"),http://$(cat "$clusterdir/b2.port")" \
	-health-interval 200ms >"$clusterdir/rt.log" 2>&1 &
rtpid=$!
tries=0
while [ ! -s "$clusterdir/rt.port" ]; do
	tries=$((tries + 1))
	if [ "$tries" -gt 100 ]; then
		echo "bprouter never wrote its portfile" >&2
		exit 1
	fi
	sleep 0.1
done
rtaddr=$(cat "$clusterdir/rt.port")
"$smokedir/bpload" -addr "$rtaddr" -cluster -verify -per-branch -keep \
	-rid-prefix trace -sessions 6 -events 300000 -batch 2048 \
	-kill-pid "$b1pid" -kill-after 0.4
wait "$b1pid" || true # SIGTERMed by bpload; must already be gone

echo "-- request-id trace across failover --"
# Every batch carried a deterministic trace-s<worker>-q<seq> ID; the
# same ID must be visible at both tiers.
for f in rt.log b2.log; do
	if ! grep -q 'rid=trace-s' "$clusterdir/$f"; then
		echo "no injected request ID reached $f" >&2
		exit 1
	fi
done
# A batch the router retried around the dead backend keeps its ID on
# the redelivery, so the surviving backend logs the very same rid.
retry_rid=$(sed -n 's/.*retrying.*rid=\(trace-s[0-9]*-q[0-9]*\).*/\1/p' \
	"$clusterdir/rt.log" | head -n 1)
if [ -z "$retry_rid" ]; then
	echo "router never logged a retried batch request ID" >&2
	exit 1
fi
if ! grep -q "rid=$retry_rid" "$clusterdir/b2.log"; then
	echo "retried request ID $retry_rid missing from surviving backend log" >&2
	exit 1
fi
echo "request ID $retry_rid traced router -> surviving backend"

echo "-- per-branch stats through the router --"
stats=$(curl -sf "http://$rtaddr/v1/sessions/bpload-0/stats?k=3")
echo "$stats"
for want in '"per_branch":true' '"pc":"0x' '"mispredict_rate"'; do
	case "$stats" in
	*"$want"*) ;;
	*)
		echo "stats report missing $want" >&2
		exit 1
		;;
	esac
done

echo "-- bptop fleet frame (lints both tiers) --"
frame=$("$clusterdir/bptop" -once -k 5 \
	-targets "$rtaddr,$(cat "$clusterdir/b2.port")")
echo "$frame"
for want in '2/2 targets up' 'bprouter' 'bpservd' '0x'; do
	case "$frame" in
	*"$want"*) ;;
	*)
		echo "bptop frame missing $want" >&2
		exit 1
		;;
	esac
done

kill -TERM "$rtpid" "$b2pid"
if ! wait "$b2pid"; then
	echo "surviving backend shut down uncleanly" >&2
	exit 1
fi
wait "$rtpid" || true

echo "CI OK"
