// Quickstart: build a small branchy program, if-convert it, and measure
// how the paper's two mechanisms change branch prediction on it.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/isa"
	"repro/internal/prog"
)

func main() {
	// A loop that classifies pseudo-random values — classic if-conversion
	// fodder. The builder's structured helpers emit conventional
	// compare-and-branch code.
	b := repro.NewBuilder("quickstart")
	b.SetData(1000, []int64{7, 3, 9, 1, 8, 2, 6, 4, 5, 0})
	b.Movi(1, 0) // i
	b.Movi(3, 0) // evens
	b.Movi(4, 0) // odds
	b.Label("loop")
	b.Addi(5, 1, 1000)
	b.Ld(2, 5, 0)
	b.Andi(6, 2, 1)
	b.IfElse(prog.RI(isa.CmpEQ, 6, 0),
		func() { b.Add(3, 3, 2) },
		func() { b.Add(4, 4, 2) },
	)
	b.Addi(1, 1, 1)
	b.Cmpi(isa.CmpLT, 10, 11, 1, 10)
	b.BrIf(10, "loop")
	b.Out(3)
	b.Out(4)
	b.Halt(0)
	p, err := b.Program()
	if err != nil {
		log.Fatal(err)
	}

	// Run it on the functional emulator.
	res, err := repro.Run(p, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original: evens=%d odds=%d (%d dynamic instructions)\n",
		res.Output[0], res.Output[1], res.Steps)

	// If-convert: the diamond becomes straight-line predicated code.
	cp, rep, err := repro.IfConvert(p, repro.IfConvConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("if-conversion eliminated %d branches, left %d region-based branches\n",
		rep.TotalEliminated(), rep.TotalRegionBranches())
	fmt.Println("\npredicated code:")
	fmt.Println(repro.Disassemble(cp))

	// Trace the predicated program and evaluate predictors on it.
	tr, err := repro.CollectTrace(cp, 0)
	if err != nil {
		log.Fatal(err)
	}
	base := repro.Evaluate(tr, repro.EvalConfig{Predictor: repro.NewGShare(12, 8)})
	both := repro.Evaluate(tr, repro.EvalConfig{
		Predictor:    repro.NewGShare(12, 8),
		UseSFPF:      true,
		ResolveDelay: repro.DefaultResolveDelay,
		PGU:          repro.PGUAll,
		PGUDelay:     repro.DefaultPGUDelay,
	})
	fmt.Printf("gshare alone:            %d/%d mispredicted\n", base.Mispredicts, base.Branches)
	fmt.Printf("gshare + SFPF + PGU:     %d/%d mispredicted, %d branches filtered\n",
		both.Mispredicts, both.Branches, both.Filtered)
}
