// This example drives the full toolchain the paper's methodology assumes:
// benchmark source in a structured language (PCL), compiled to branching
// predicate-ISA code, if-converted into hyperblocks, and measured on the
// timing model with the paper's mechanisms.
package main

import (
	"fmt"
	"log"

	"repro"
)

const source = `
// A scan over pseudo-random values: a 50/50 parity diamond with work in
// both arms and a rare test in each — after if-conversion the diamond
// vanishes and the rare tests become region-based branches whose guards
// the squash false path filter resolves.
arr data[2048];
var x = 88172645463325252;
for (var i = 0; i < 2048; i = i + 1) {
    x = x * 6364136223846793005 + 1442695040888963407;
    var h = (x >> 33) & 1023;
    if (h < 0) { h = -h; }
    data[i] = h;
}
var a = 0; var c = 0; var rare = 0;
for (var pass = 0; pass < 4; pass = pass + 1) {
    for (var i = 0; i < 2048; i = i + 1) {
        var v = data[i];
        if (v % 2 == 1) {
            a = a + v; a = a ^ 85; a = (a >> 1) + v;
            if (v == 1023) {
                // the inner loop keeps this rare handler out of the
                // region, so the branch to it survives, guarded
                var k = 3;
                while (k > 0) { rare = rare + 1; k = k - 1; }
            }
        } else {
            c = c + v; c = c | 3; c = c - (v >> 2);
            if (v == 1022) {
                var k = 3;
                while (k > 0) { rare = rare + 2; k = k - 1; }
            }
        }
    }
}
out a; out c; out rare;
`

func main() {
	p, err := repro.CompilePCL("primes", source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d instructions of branching P64\n", len(p.Insts))

	cp, rep, err := repro.IfConvert(p, repro.IfConvConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("if-converted: %d regions, %d branches eliminated, %d region-based kept\n\n",
		len(rep.Regions), rep.TotalEliminated(), rep.TotalRegionBranches())

	measure := func(label string, pr *repro.Program, sfpf bool, pgu repro.PGUPolicy) {
		cfg := repro.DefaultPipelineConfig(repro.NewGShare(12, 8))
		cfg.UseSFPF = sfpf
		cfg.PGU = pgu
		st, err := repro.RunPipeline(pr, cfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %8d cycles  IPC %.3f  %5.2f%% mispredicted  (%d filtered)\n",
			label, st.Cycles, st.IPC(), 100*st.MispredictRate(), st.Filtered)
	}
	measure("branching", p, false, repro.PGUOff)
	measure("predicated", cp, false, repro.PGUOff)
	measure("predicated+sfpf", cp, true, repro.PGUOff)
	measure("predicated+sfpf+pgu", cp, true, repro.PGUAll)

	ra, err := repro.Run(p, 0)
	if err != nil {
		log.Fatal(err)
	}
	rb, err := repro.Run(cp, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i := range ra.Output {
		if ra.Output[i] != rb.Output[i] {
			log.Fatalf("MISMATCH: %v vs %v", ra.Output, rb.Output)
		}
	}
	fmt.Printf("\nboth versions agree: a=%d c=%d rare=%d\n",
		ra.Output[0], ra.Output[1], ra.Output[2])
}
