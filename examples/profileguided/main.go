// This example shows profile-guided if-conversion — the selection rule the
// paper's IMPACT-compiled binaries were built with. Greedy conversion
// predicates every convertible region; the profile-guided converter only
// predicates a region when its profiled misprediction savings beat the net
// fetch slots conversion adds.
package main

import (
	"fmt"
	"log"

	"repro"
)

func measure(p *repro.Program) uint64 {
	st, err := repro.RunPipeline(p, repro.DefaultPipelineConfig(repro.NewGShare(12, 8)), 0)
	if err != nil {
		log.Fatal(err)
	}
	return st.Cycles
}

func main() {
	fmt.Printf("%-10s %16s %16s %16s  %s\n",
		"workload", "branching (cyc)", "greedy (cyc)", "profiled (cyc)", "decision")
	for _, name := range []string{"rand", "classify", "fsm", "scan", "stream"} {
		w, err := repro.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		p := w.Build()

		greedy, _, err := repro.IfConvert(p, repro.IfConvConfig{})
		if err != nil {
			log.Fatal(err)
		}

		prof, err := repro.CollectProfile(p, nil, 0)
		if err != nil {
			log.Fatal(err)
		}
		profiled, rep, err := repro.IfConvert(p, repro.IfConvConfig{Profile: prof})
		if err != nil {
			log.Fatal(err)
		}

		decision := fmt.Sprintf("converted %d region(s)", len(rep.Regions))
		if len(rep.Regions) == 0 {
			decision = "kept branches (unprofitable)"
		}
		fmt.Printf("%-10s %16d %16d %16d  %s\n",
			name, measure(p), measure(greedy), measure(profiled), decision)
	}
	fmt.Println("\nthe profile-guided converter keeps the wins (rand, classify stay")
	fmt.Println("predicated) and refuses the big losses (stream, scan keep their cheap")
	fmt.Println("branches). fsm shrinks to sub-regions that pass the first-order cost")
	fmt.Println("model; the residual gap there comes from second-order effects (history")
	fmt.Println("disruption) no static cost model sees — the same reason IMPACT's")
	fmt.Println("heuristics were tuned empirically.")
}
