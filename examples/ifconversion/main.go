// This example walks through hyperblock if-conversion on hand-written P64
// assembly: it assembles a loop with a diamond and an early exit, converts
// it, shows the before/after code, and verifies that both versions compute
// the same result.
package main

import (
	"fmt"
	"log"

	"repro"
)

const source = `
; Count how values 0..99 split around a moving threshold, bailing out
; early when the accumulator crosses a limit.
        movi r1 = 0          ; i
        movi r2 = 0          ; acc
        movi r3 = 50         ; threshold
loop:
        mod r4 = r1, 17
        cmp.eq p5, p6 = r4, 13
        mul r5 = r4, 3
        xor r5 = r5, r1
        (p5) br bail         ; rare early exit, compare scheduled early
        cmp.lt p1, p2 = r4, r3
        (p2) br else
        add r2 = r2, r4      ; then: below threshold
        sub r3 = r3, 1
        br join
else:
        sub r2 = r2, 1       ; else: at or above
join:
        add r1 = r1, 1
        cmp.lt p3, p4 = r1, 100
        (p3) br loop
bail:
        out r2
        out r1
        halt 0
`

func main() {
	p, err := repro.Assemble("walkthrough", source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== original (branching) ===")
	fmt.Println(repro.Disassemble(p))

	cp, rep, err := repro.IfConvert(p, repro.IfConvConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== if-converted (predicated) ===")
	fmt.Println(repro.Disassemble(cp))

	fmt.Printf("regions: %d, branches eliminated: %d, region-based branches kept: %d\n",
		len(rep.Regions), rep.TotalEliminated(), rep.TotalRegionBranches())

	ra, err := repro.Run(p, 100000)
	if err != nil {
		log.Fatal(err)
	}
	rb, err := repro.Run(cp, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original:  output=%v in %d instructions\n", ra.Output, ra.Steps)
	fmt.Printf("converted: output=%v in %d instructions (%d nullified)\n",
		rb.Output, rb.Steps, rb.Nullified)
	for i := range ra.Output {
		if ra.Output[i] != rb.Output[i] {
			log.Fatalf("MISMATCH at output %d", i)
		}
	}
	fmt.Println("results identical: if-conversion preserved behaviour")

	// The region-based branch left in the loop is exactly what the paper's
	// mechanisms target.
	tr, err := repro.CollectTrace(cp, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converted trace: %d conditional branches, %d region-based, %d predicate defines\n",
		tr.Branches, tr.RegionBranches, tr.PredDefs)
}
