// This example reproduces the paper's experimental method in miniature: it
// takes the whole workload suite, if-converts every benchmark, and
// compares branch predictors on the predicated code with and without the
// squash false path filter and predicate global update.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	type variant struct {
		name string
		cfg  func() repro.EvalConfig
	}
	variants := []variant{
		{"bimodal", func() repro.EvalConfig {
			return repro.EvalConfig{Predictor: repro.NewBimodal(12)}
		}},
		{"gshare", func() repro.EvalConfig {
			return repro.EvalConfig{Predictor: repro.NewGShare(12, 8)}
		}},
		{"gshare+sfpf", func() repro.EvalConfig {
			return repro.EvalConfig{
				Predictor: repro.NewGShare(12, 8),
				UseSFPF:   true, ResolveDelay: repro.DefaultResolveDelay,
			}
		}},
		{"gshare+pgu", func() repro.EvalConfig {
			return repro.EvalConfig{
				Predictor: repro.NewGShare(12, 8),
				PGU:       repro.PGUAll, PGUDelay: repro.DefaultPGUDelay,
			}
		}},
		{"gshare+both", func() repro.EvalConfig {
			return repro.EvalConfig{
				Predictor: repro.NewGShare(12, 8),
				UseSFPF:   true, ResolveDelay: repro.DefaultResolveDelay,
				PGU: repro.PGUAll, PGUDelay: repro.DefaultPGUDelay,
			}
		}},
	}

	fmt.Printf("%-10s", "workload")
	for _, v := range variants {
		fmt.Printf(" %12s", v.name)
	}
	fmt.Println()

	for _, w := range repro.Workloads() {
		p := w.Build()
		cp, _, err := repro.IfConvert(p, repro.IfConvConfig{})
		if err != nil {
			log.Fatal(err)
		}
		tr, err := repro.CollectTrace(cp, 10_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s", w.Name)
		for _, v := range variants {
			m := repro.Evaluate(tr, v.cfg())
			fmt.Printf(" %11.2f%%", 100*m.MispredictRate())
		}
		fmt.Println()
	}
	fmt.Println("\nmisprediction rates on if-converted code; lower is better.")
	fmt.Println("SFPF removes known-false-guard branches; PGU restores lost correlation.")
}
