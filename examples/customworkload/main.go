// This example shows how a user brings their own workload: write a kernel
// with the structured builder, if-convert it, and measure the end-to-end
// pipeline effect of predication plus the paper's mechanisms, sweeping the
// misprediction penalty to find the crossover the paper's trade-off turns
// on.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/rng"
)

// buildHistogramKernel classifies noisy sensor-style readings into three
// bins with a data-dependent diamond per reading — an unpredictable branch
// pattern.
func buildHistogramKernel() *repro.Program {
	const n = 5000
	b := repro.NewBuilder("histogram")
	r := rng.New(2024)
	data := make([]int64, n)
	for i := range data {
		data[i] = r.Int64n(300)
	}
	b.SetData(1000, data)
	b.Movi(3, 0) // low
	b.Movi(4, 0) // mid
	b.Movi(6, 0) // high
	b.Movi(1, 0)
	b.Label("loop")
	b.Addi(5, 1, 1000)
	b.Ld(2, 5, 0)
	b.IfElse(prog.RI(isa.CmpLT, 2, 100),
		func() { b.Addi(3, 3, 1) },
		func() {
			b.IfElse(prog.RI(isa.CmpLT, 2, 200),
				func() { b.Addi(4, 4, 1) },
				func() { b.Addi(6, 6, 1) },
			)
		},
	)
	b.Addi(1, 1, 1)
	b.Cmpi(isa.CmpLT, 10, 11, 1, n)
	b.BrIf(10, "loop")
	b.Out(3)
	b.Out(4)
	b.Out(6)
	b.Halt(0)
	p, err := b.Program()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	p := buildHistogramKernel()
	cp, rep, err := repro.IfConvert(p, repro.IfConvConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("histogram kernel: %d branches eliminated by if-conversion\n\n",
		rep.TotalEliminated())

	fmt.Printf("%-8s %14s %14s %14s %10s\n",
		"penalty", "branching", "predicated", "pred+mechs", "speedup")
	for _, penalty := range []uint64{2, 5, 10, 20, 40} {
		mk := func() repro.PipelineConfig {
			cfg := repro.DefaultPipelineConfig(repro.NewGShare(12, 8))
			cfg.MispredictPenalty = penalty
			return cfg
		}
		orig, err := repro.RunPipeline(p, mk(), 0)
		if err != nil {
			log.Fatal(err)
		}
		conv, err := repro.RunPipeline(cp, mk(), 0)
		if err != nil {
			log.Fatal(err)
		}
		cfg := mk()
		cfg.UseSFPF = true
		cfg.PGU = repro.PGUAll
		mech, err := repro.RunPipeline(cp, cfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %8d cyc   %8d cyc   %8d cyc   %9.2fx\n",
			penalty, orig.Cycles, conv.Cycles, mech.Cycles,
			float64(orig.Cycles)/float64(mech.Cycles))
	}
	fmt.Println("\nas the misprediction penalty grows (deeper pipelines), the")
	fmt.Println("predicated version's advantage widens — the paper's motivation.")
}
