package repro

import (
	"context"
	"sync"
	"testing"

	"repro/internal/harness"
)

// The benchmarks below regenerate the reconstructed paper tables/figures,
// one per experiment (see DESIGN.md's experiment index). They share one
// prepared suite; each iteration re-runs the experiment's full sweep, so
// ns/op measures the cost of regenerating that table.

var (
	suiteOnce sync.Once
	suite     *harness.Suite
	suiteErr  error
)

func sharedSuite(b *testing.B) *harness.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = harness.NewSuite(harness.Config{})
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

func benchExperiment(b *testing.B, id string) {
	s := sharedSuite(b)
	e, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := harness.Config{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(context.Background(), s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// BenchmarkE1Characterisation regenerates the Table-1 analogue: workload
// characterisation under if-conversion.
func BenchmarkE1Characterisation(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2PredicationEffect regenerates the predication-effect figure:
// misprediction rate of remaining branches before/after conversion.
func BenchmarkE2PredicationEffect(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3SFPF regenerates the squash-false-path-filter figure.
func BenchmarkE3SFPF(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4PGU regenerates the predicate-global-update figure.
func BenchmarkE4PGU(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5Combined regenerates the combined-mechanisms figure.
func BenchmarkE5Combined(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Speedup regenerates the pipeline speedup figure.
func BenchmarkE6Speedup(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7ResolveDelay regenerates the resolve-delay sensitivity sweep.
func BenchmarkE7ResolveDelay(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8Policies regenerates the PGU insertion-policy ablation.
func BenchmarkE8Policies(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9FilterBoth regenerates the filter-both-directions extension.
func BenchmarkE9FilterBoth(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10Scheduling regenerates the compare-scheduling ablation.
func BenchmarkE10Scheduling(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11ProfileGuided regenerates the profile-guided vs greedy
// hyperblock-selection comparison.
func BenchmarkE11ProfileGuided(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12IssueWidth regenerates the issue-width sensitivity sweep.
func BenchmarkE12IssueWidth(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13Architectures regenerates the PGU-across-architectures
// comparison.
func BenchmarkE13Architectures(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14RASDepth regenerates the return-address-stack depth sweep.
func BenchmarkE14RASDepth(b *testing.B) { benchExperiment(b, "E14") }

// Component micro-benchmarks: the substrate costs behind the experiments.

func BenchmarkEmulator(b *testing.B) {
	w := MustWorkload("classify")
	p := w.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(p, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(0)
		_ = res
	}
}

func BenchmarkIfConvert(b *testing.B) {
	p := MustWorkload("fsm").Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := IfConvert(p, IfConvConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceCollect(b *testing.B) {
	p := MustWorkload("scan").Build()
	cp, _, err := IfConvert(p, IfConvConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CollectTrace(cp, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateGshare(b *testing.B) {
	p := MustWorkload("bsearch").Build()
	cp, _, err := IfConvert(p, IfConvConfig{})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := CollectTrace(cp, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := Evaluate(tr, EvalConfig{
			Predictor: NewGShare(12, 8),
			UseSFPF:   true, ResolveDelay: DefaultResolveDelay,
			PGU: PGUAll, PGUDelay: DefaultPGUDelay,
		})
		if m.Branches == 0 {
			b.Fatal("empty evaluation")
		}
	}
}

// feedBench measures the evaluator feed loop itself — the hot path behind
// every sweep, oracle run, and serving session — isolated from trace
// collection. The generic variant dispatches through the Predictor
// interface per event; the batch variant goes through the devirtualized
// FeedBatch fast path. Their ratio is the recorded fast-path speedup
// (see EXPERIMENTS.md and cmd/bpbench).
func feedBench(b *testing.B, spec string, batch bool) {
	p := MustWorkload("bsearch").Build()
	cp, _, err := IfConvert(p, IfConvConfig{})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := CollectTrace(cp, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := EvalConfig{
		UseSFPF: true, ResolveDelay: DefaultResolveDelay,
		PGU: PGUAll, PGUDelay: DefaultPGUDelay,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cfg.Predictor, err = NewPredictor(spec); err != nil {
			b.Fatal(err)
		}
		e := NewEvaluator(cfg)
		if batch {
			e.FeedBatch(tr.Events)
		} else {
			for j := range tr.Events {
				e.Feed(&tr.Events[j])
			}
		}
		if e.Metrics().Branches == 0 {
			b.Fatal("empty evaluation")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(tr.Events)*b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkFeedGenericGshare(b *testing.B)     { feedBench(b, "gshare:12:8", false) }
func BenchmarkFeedBatchGshare(b *testing.B)       { feedBench(b, "gshare:12:8", true) }
func BenchmarkFeedGenericPerceptron(b *testing.B) { feedBench(b, "perceptron:8:24", false) }
func BenchmarkFeedBatchPerceptron(b *testing.B)   { feedBench(b, "perceptron:8:24", true) }

func BenchmarkPipeline(b *testing.B) {
	p := MustWorkload("sort").Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := RunPipeline(p, DefaultPipelineConfig(NewGShare(12, 8)), 0)
		if err != nil {
			b.Fatal(err)
		}
		if st.Cycles == 0 {
			b.Fatal("no cycles")
		}
	}
}
