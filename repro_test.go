package repro

import (
	"context"
	"strings"
	"testing"
)

// These tests exercise the public facade end to end: the paths a
// downstream user of the library takes.

func TestFacadeWorkloadList(t *testing.T) {
	ws := Workloads()
	if len(ws) < 10 {
		t.Fatalf("workload suite too small: %d", len(ws))
	}
	if _, err := WorkloadByName("scan"); err != nil {
		t.Error(err)
	}
	if _, err := WorkloadByName("definitely-not"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFacadeBuildRunConvertEvaluate(t *testing.T) {
	p := MustWorkload("classify").Build()
	res, err := Run(p, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit %d", res.ExitCode)
	}
	cp, rep, err := IfConvert(p, IfConvConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalEliminated() == 0 {
		t.Error("nothing eliminated")
	}
	tr, err := CollectTrace(cp, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(tr, EvalConfig{Predictor: NewGShare(12, 8)})
	if m.Branches == 0 {
		t.Error("no branches evaluated")
	}
}

func TestFacadeAssembleDisassemble(t *testing.T) {
	src := "movi r1 = 5\nout r1\nhalt 0\n"
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 5 {
		t.Errorf("output %v", res.Output)
	}
	text := Disassemble(p)
	if !strings.Contains(text, "movi r1 = 5") {
		t.Errorf("disassembly wrong:\n%s", text)
	}
	if _, err := Assemble("t", text); err != nil {
		t.Errorf("disassembly does not reassemble: %v", err)
	}
}

func TestFacadeBuilder(t *testing.T) {
	b := NewBuilder("facade")
	b.Movi(1, 2)
	b.Muli(2, 1, 21)
	b.Out(2)
	b.Halt(0)
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 42 {
		t.Errorf("output %v", res.Output)
	}
}

func TestFacadeSynth(t *testing.T) {
	p := Synth(99, 30)
	if _, err := Run(p, 2_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePipeline(t *testing.T) {
	p := MustWorkload("stream").Build()
	st, err := RunPipeline(p, DefaultPipelineConfig(NewTournament(12, 8)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC() <= 0 || st.IPC() > 1 {
		t.Errorf("IPC = %f", st.IPC())
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 9 {
		t.Fatalf("only %d experiments", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if e.Title == "" || e.Paper == "" || e.Expect == "" {
			t.Errorf("%s lacks documentation fields", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"E1", "E3", "E4", "E6"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
	if _, err := ExperimentByID("E3"); err != nil {
		t.Error(err)
	}
	if _, err := ExperimentByID("E99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadeRunOneExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("suite build is slow for -short")
	}
	s, err := NewSuite(ExperimentConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := ExperimentByID("E5")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(context.Background(), s, ExperimentConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		t.Fatal("experiment produced no data")
	}
	md := tables[0].Markdown()
	if !strings.Contains(md, "|") {
		t.Error("markdown rendering broken")
	}
}

func TestFacadeSFPFDirectUse(t *testing.T) {
	f := NewSFPF()
	f.FetchDef(3)
	if known, _ := f.Lookup(3); known {
		t.Error("in-flight predicate reported known")
	}
	f.Resolve(3, true)
	if known, val := f.Lookup(3); !known || !val {
		t.Error("resolved predicate not known true")
	}
}
