package repro_test

import (
	"fmt"

	"repro"
	"repro/internal/isa"
	"repro/internal/prog"
)

// Build a small program with the structured builder, run it, and read its
// output stream.
func ExampleNewBuilder() {
	b := repro.NewBuilder("sum")
	b.Movi(1, 5) // n
	b.Movi(2, 0) // total
	b.While(prog.RI(isa.CmpGT, 1, 0), func() {
		b.Add(2, 2, 1)
		b.Subi(1, 1, 1)
	})
	b.Out(2)
	b.Halt(0)
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	res, _ := repro.Run(p, 0)
	fmt.Println(res.Output[0])
	// Output: 15
}

// Assemble P64 text, if-convert it, and confirm the branch was eliminated.
func ExampleIfConvert() {
	p, err := repro.Assemble("abs", `
        movi r1 = -7
        cmp.lt p1, p2 = r1, 0
        (p2) br done
        sub r1 = r0, r1
done:
        out r1
        halt 0
`)
	if err != nil {
		panic(err)
	}
	cp, rep, err := repro.IfConvert(p, repro.IfConvConfig{})
	if err != nil {
		panic(err)
	}
	res, _ := repro.Run(cp, 0)
	fmt.Println(rep.TotalEliminated(), "branch eliminated; |x| =", res.Output[0])
	// Output: 1 branch eliminated; |x| = 7
}

// Evaluate the squash false path filter on a predicated workload: it
// covers a large share of the region-based branches and never errs.
func ExampleEvaluate() {
	p := repro.MustWorkload("scan").Build()
	cp, _, err := repro.IfConvert(p, repro.IfConvConfig{})
	if err != nil {
		panic(err)
	}
	tr, err := repro.CollectTrace(cp, 0)
	if err != nil {
		panic(err)
	}
	m := repro.Evaluate(tr, repro.EvalConfig{
		Predictor:    repro.NewGShare(12, 8),
		UseSFPF:      true,
		ResolveDelay: repro.DefaultResolveDelay,
	})
	fmt.Printf("filtered %d branches with %d errors\n", m.Filtered, m.FilterErrors)
	// Output: filtered 9041 branches with 0 errors
}
