// Command bpstats inspects the experiment results store (see
// internal/results): it lists recorded runs, diffs two runs — or a run
// against the committed results/*.csv views — cell by cell, and exports
// a run's tables back out as CSV.
//
// Usage:
//
//	bpstats list   [-store results/runs]
//	bpstats diff   [-store results/runs] [-id E5,E8] [-threshold 0.02] <runA> <runB>
//	bpstats diff   [-store results/runs] [-csv results] [-threshold 0] <run>
//	bpstats export [-store results/runs] [-outdir dir] [run]
//
// Run keys are store run IDs or the keyword "latest". With -threshold
// set (>= 0), diff exits nonzero when any relative delta exceeds it —
// the regression gate ci.sh uses. Without it, diff only reports.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/results"
)

// errGate marks a threshold violation: reported, then exit 1.
type errGate struct{ msg string }

func (e errGate) Error() string { return e.msg }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bpstats:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: bpstats <list|diff|export> [flags]; see -h")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "list":
		return runList(rest, out)
	case "diff":
		return runDiff(rest, out)
	case "export":
		return runExport(rest, out)
	case "-version", "--version":
		fmt.Fprintln(out, buildinfo.String("bpstats"))
		return nil
	default:
		return fmt.Errorf("unknown command %q (want list, diff, or export)", cmd)
	}
}

func loadRuns(store string) ([]results.Run, error) {
	recs, err := results.Open(store).Load()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("store %s has no runs (run `experiments -store %s` first)", store, store)
	}
	return results.GroupRuns(recs), nil
}

func runList(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bpstats list", flag.ContinueOnError)
	store := fs.String("store", results.DefaultDir, "results store directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	runs, err := loadRuns(*store)
	if err != nil {
		return err
	}
	for _, r := range runs {
		var wall float64
		quick := false
		for _, rec := range r.Records {
			wall += rec.WallMS
			quick = quick || rec.Quick
		}
		mode := "full"
		if quick {
			mode = "quick"
		}
		fmt.Fprintf(out, "%-22s %-20s %-12s %-5s %2d experiments %8.0fms  %s\n",
			r.ID, r.Time, r.Version, mode, len(r.Records), wall, strings.Join(r.Experiments(), ","))
	}
	return nil
}

// filterTables keeps tables belonging to the comma-separated experiment
// IDs ("E5,E8"); a table named E2a belongs to experiment E2.
func filterTables(ts []results.Table, expr string) []results.Table {
	if expr == "" {
		return ts
	}
	want := make(map[string]bool)
	for _, id := range strings.Split(expr, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	var out []results.Table
	for _, t := range ts {
		exp := t.Name
		if n := len(exp); n > 0 && exp[n-1] >= 'a' && exp[n-1] <= 'z' {
			exp = exp[:n-1]
		}
		if want[t.Name] || want[exp] {
			out = append(out, t)
		}
	}
	return out
}

func runDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bpstats diff", flag.ContinueOnError)
	store := fs.String("store", results.DefaultDir, "results store directory")
	csvDir := fs.String("csv", "", "diff the run against committed CSV views in this directory instead of a second run")
	idExpr := fs.String("id", "", "restrict the diff to these experiments (comma-separated IDs)")
	threshold := fs.Float64("threshold", -1, "exit nonzero when any relative delta exceeds this (>= 0 enables the gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	runs, err := loadRuns(*store)
	if err != nil {
		return err
	}

	var aTables, bTables []results.Table
	var aName, bName string
	if *csvDir != "" {
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: bpstats diff -csv <dir> <run>")
		}
		a, err := results.ReadCSVDir(*csvDir)
		if err != nil {
			return err
		}
		if len(a) == 0 {
			return fmt.Errorf("no *.csv files in %s", *csvDir)
		}
		b, err := results.FindRun(runs, fs.Arg(0))
		if err != nil {
			return err
		}
		// Committed views cover the full grid; restrict to the tables the
		// run actually recorded (plus any -id filter) so a partial run
		// diffs cleanly against them.
		bTables = filterTables(b.Tables(), *idExpr)
		recorded := make(map[string]bool, len(bTables))
		for _, t := range bTables {
			recorded[t.Name] = true
		}
		for _, t := range filterTables(a, *idExpr) {
			if recorded[t.Name] {
				aTables = append(aTables, t)
			}
		}
		aName, bName = *csvDir+"/*.csv", "run "+b.ID
	} else {
		if fs.NArg() != 2 {
			return fmt.Errorf("usage: bpstats diff <runA> <runB> (run IDs or \"latest\")")
		}
		a, err := results.FindRun(runs, fs.Arg(0))
		if err != nil {
			return err
		}
		b, err := results.FindRun(runs, fs.Arg(1))
		if err != nil {
			return err
		}
		warnConfigMismatch(out, a, b)
		aTables = filterTables(a.Tables(), *idExpr)
		bTables = filterTables(b.Tables(), *idExpr)
		aName, bName = "run "+a.ID, "run "+b.ID
	}

	rep := results.Diff(aTables, bTables)
	printReport(out, rep, aName, bName)
	if *threshold >= 0 && rep.Exceeds(*threshold) {
		return errGate{fmt.Sprintf("diff exceeds threshold %g", *threshold)}
	}
	return nil
}

func warnConfigMismatch(out io.Writer, a, b results.Run) {
	ha := make(map[string]string)
	for _, rec := range a.Records {
		ha[rec.Experiment] = rec.ConfigHash
	}
	var warned []string
	for _, rec := range b.Records {
		if h, ok := ha[rec.Experiment]; ok && h != rec.ConfigHash {
			warned = append(warned, rec.Experiment)
		}
	}
	if len(warned) > 0 {
		sort.Strings(warned)
		fmt.Fprintf(out, "warning: config differs between runs for %s (quick vs full, or a changed grid) — deltas below include config effects\n",
			strings.Join(warned, ", "))
	}
}

func printReport(out io.Writer, rep results.DiffReport, aName, bName string) {
	fmt.Fprintf(out, "diff %s vs %s: %d cells compared, %d differ\n", aName, bName, rep.Compared, len(rep.Deltas))
	for _, n := range rep.OnlyA {
		fmt.Fprintf(out, "  only in %s: %s\n", aName, n)
	}
	for _, n := range rep.OnlyB {
		fmt.Fprintf(out, "  only in %s: %s\n", bName, n)
	}
	for _, s := range rep.Shape {
		fmt.Fprintf(out, "  shape mismatch: %s\n", s)
	}
	for _, d := range rep.Deltas {
		fmt.Fprintf(out, "  %s\n", d)
	}
	if max := rep.MaxDelta(); len(rep.Deltas) > 0 || max > 0 {
		if math.IsInf(max, 1) {
			fmt.Fprintf(out, "max delta: not numerically comparable\n")
		} else {
			fmt.Fprintf(out, "max delta: %.4f (%.2f%%)\n", max, 100*max)
		}
	}
}

func runExport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bpstats export", flag.ContinueOnError)
	store := fs.String("store", results.DefaultDir, "results store directory")
	outdir := fs.String("outdir", ".", "directory to write <table>.csv files into")
	idExpr := fs.String("id", "", "restrict the export to these experiments (comma-separated IDs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return fmt.Errorf("usage: bpstats export [run]")
	}
	runs, err := loadRuns(*store)
	if err != nil {
		return err
	}
	r, err := results.FindRun(runs, fs.Arg(0)) // Arg(0) is "" when absent -> latest
	if err != nil {
		return err
	}
	tables := filterTables(r.Tables(), *idExpr)
	if len(tables) == 0 {
		return fmt.Errorf("run %s has no tables matching -id %q", r.ID, *idExpr)
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		return err
	}
	for _, t := range tables {
		path := filepath.Join(*outdir, t.Name+".csv")
		if err := os.WriteFile(path, []byte(t.Stats().CSV()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", path)
	}
	return nil
}
