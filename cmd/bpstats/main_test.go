package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/results"
)

// seedStore writes three runs: r1 and r2 identical, r3 with a seeded
// metric regression in E5's rate column.
func seedStore(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "runs")
	table := func(rate string) results.Table {
		return results.Table{
			Name:    "E5",
			Title:   "E5: misprediction rate",
			Columns: []string{"workload", "base", "+both"},
			Rows: [][]string{
				{"corr", rate, "6.0%"},
				{"geomean", "9.1%", "5.2%"},
			},
		}
	}
	rec := func(run, rate string) results.Record {
		return results.Record{
			RunID: run, Time: "2026-08-08T00:00:00Z", Version: "test",
			Experiment: "E5", ConfigHash: "abc123", Limit: 1000,
			Tables: []results.Table{table(rate)},
		}
	}
	s := results.Open(dir)
	if err := s.Append(rec("r1", "12.3%"), rec("r2", "12.3%"), rec("r3", "13.9%")); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestList(t *testing.T) {
	dir := seedStore(t)
	var sb strings.Builder
	if err := run([]string{"list", "-store", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"r1", "r2", "r3", "E5"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestDiffZeroDelta(t *testing.T) {
	dir := seedStore(t)
	var sb strings.Builder
	if err := run([]string{"diff", "-store", dir, "-threshold", "0", "r1", "r2"}, &sb); err != nil {
		t.Fatalf("identical runs failed the gate: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "0 differ") {
		t.Errorf("diff output should report zero differing cells:\n%s", sb.String())
	}
}

func TestDiffDetectsRegression(t *testing.T) {
	dir := seedStore(t)
	var sb strings.Builder
	err := run([]string{"diff", "-store", dir, "-threshold", "0", "r1", "r3"}, &sb)
	var gate errGate
	if !errors.As(err, &gate) {
		t.Fatalf("seeded regression passed the gate (err=%v):\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "12.3% -> 13.9%") || !strings.Contains(out, "corr") {
		t.Errorf("diff output missing the regressed cell:\n%s", out)
	}

	// A generous threshold reports the delta without gating.
	sb.Reset()
	if err := run([]string{"diff", "-store", dir, "-threshold", "0.5", "r1", "r3"}, &sb); err != nil {
		t.Fatalf("13%% regression exceeded a 50%% threshold: %v", err)
	}

	// "latest" resolves to r3.
	sb.Reset()
	if err := run([]string{"diff", "-store", dir, "r1", "latest"}, &sb); err != nil {
		t.Fatal(err) // no -threshold: report only, never gate
	}
	if !strings.Contains(sb.String(), "13.9%") {
		t.Errorf("latest did not resolve to r3:\n%s", sb.String())
	}
}

func TestDiffAgainstCSVs(t *testing.T) {
	dir := seedStore(t)
	csvDir := t.TempDir()
	// Export r1's tables as the "committed" views, then diff r3 against
	// them: the seeded regression must trip the gate.
	var sb strings.Builder
	if err := run([]string{"export", "-store", dir, "-outdir", csvDir, "r1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(csvDir, "E5.csv")); err != nil {
		t.Fatalf("export did not write E5.csv: %v", err)
	}

	sb.Reset()
	if err := run([]string{"diff", "-store", dir, "-csv", csvDir, "-threshold", "0", "r2"}, &sb); err != nil {
		t.Fatalf("run matching committed CSVs failed the gate: %v\n%s", err, sb.String())
	}

	sb.Reset()
	err := run([]string{"diff", "-store", dir, "-csv", csvDir, "-threshold", "0", "r3"}, &sb)
	var gate errGate
	if !errors.As(err, &gate) {
		t.Fatalf("regressed run passed the CSV gate (err=%v):\n%s", err, sb.String())
	}
}

func TestFilterTables(t *testing.T) {
	ts := []results.Table{{Name: "E2a"}, {Name: "E2b"}, {Name: "E5"}, {Name: "E14"}}
	got := filterTables(ts, "E2,E14")
	if len(got) != 3 || got[0].Name != "E2a" || got[2].Name != "E14" {
		t.Fatalf("filterTables = %v", got)
	}
	if got := filterTables(ts, "E2b"); len(got) != 1 || got[0].Name != "E2b" {
		t.Fatalf("exact table-name filter = %v", got)
	}
	if got := filterTables(ts, ""); len(got) != 4 {
		t.Fatalf("empty filter should keep all, got %v", got)
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	empty := t.TempDir()
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"list", "-store", filepath.Join(empty, "nope")},
		{"diff", "-store", seedStore(t), "r1"},       // missing second run
		{"diff", "-store", seedStore(t), "r1", "rX"}, // unknown run
		{"export", "-store", seedStore(t), "-id", "E99"},
	} {
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
