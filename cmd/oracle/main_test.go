package main

import (
	"strings"
	"testing"
)

func TestRunFullMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full oracle matrix in -short mode")
	}
	var out strings.Builder
	if err := run([]string{"-events", "4000", "-synth", "2"}, &out); err != nil {
		t.Fatalf("oracle diverged: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"ref:gshare", "ref:perceptron", "reset:agree",
		"doubling:bimodal", "interleave:taken",
		"slice-stream:scan", "collect-stream:scan", "roundtrip:scan", "refeval:scan",
		"slice-stream:synth-1", "sweep:serial-vs-parallel",
		"0 divergences",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(got, "FAIL") {
		t.Errorf("unexpected FAIL lines:\n%s", got)
	}
}

func TestRunKindSubset(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-events", "1500", "-kinds", "bimodal, gag", "-synth", "0"}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "ref:bimodal") || !strings.Contains(got, "ref:gag") {
		t.Errorf("kind subset not honoured:\n%s", got)
	}
	if strings.Contains(got, "ref:gshare") {
		t.Errorf("-kinds did not restrict the reference checks:\n%s", got)
	}
}

func TestRunRejectsUnknownKind(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-kinds", "nonesuch"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown predictor kind") {
		t.Fatalf("bad -kinds accepted: %v", err)
	}
}
