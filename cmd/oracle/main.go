// Command oracle runs the full differential-testing matrix from
// internal/oracle: every registered predictor kind against its naive
// reference model, the metamorphic properties (reset-replay, table
// doubling, static interleave-invariance), and the
// cross-implementation equivalences (slice vs. stream replay, Collect
// vs. Stream event production, serialize round-trip, serial vs. parallel
// sweep, devirtualized batch fast path vs. generic per-event feed) over
// every built-in workload plus synthetic programs.
// It exits nonzero on any divergence, making it a one-command
// correctness gate for refactors of the simulation engine.
//
// Usage:
//
//	oracle [-seed 1] [-events 200000] [-kinds gshare,bimodal] [-workers 0] [-limit 3000000]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/ifconv"
	"repro/internal/oracle"
	"repro/internal/prog"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "oracle:", err)
		os.Exit(1)
	}
}

// check is one unit of oracle work for the sweep pool.
type check struct {
	name string
	fn   func(ctx context.Context) error
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("oracle", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "randomized-stream seed")
	events := fs.Int("events", 200_000, "events per randomized predictor stream")
	kindsFlag := fs.String("kinds", "", "comma-separated predictor kinds to check (default all)")
	workers := fs.Int("workers", 0, "parallel check workers (0 = GOMAXPROCS)")
	limit := fs.Uint64("limit", 3_000_000, "emulation step limit per program")
	synth := fs.Int("synth", 4, "number of synthetic fuzz programs in the equivalence matrix")
	serveCheck := fs.Bool("serve", true, "check the serve-session HTTP path against the direct evaluator")
	version := buildinfo.Flag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("oracle"))
		return nil
	}

	kinds := sim.Kinds()
	if *kindsFlag != "" {
		kinds = nil
		known := make(map[string]bool)
		for _, k := range sim.Kinds() {
			known[k] = true
		}
		for _, k := range strings.Split(*kindsFlag, ",") {
			k = strings.TrimSpace(k)
			if !known[k] {
				return fmt.Errorf("unknown predictor kind %q (want %s)", k, strings.Join(sim.Kinds(), ", "))
			}
			kinds = append(kinds, k)
		}
	}

	stream := oracle.Stream{Seed: *seed, Events: *events}
	var checks []check

	// Differential: every kind against its reference, then the
	// reset-replay metamorphic property on the same kind.
	for _, kind := range kinds {
		spec := sim.MustParse(kind)
		checks = append(checks,
			check{name: "ref:" + spec.String(), fn: func(context.Context) error {
				return oracle.CheckSpec(spec, stream)
			}},
			check{name: "reset:" + spec.String(), fn: func(context.Context) error {
				p, err := spec.New()
				if err != nil {
					return err
				}
				return oracle.CheckResetReplay(p, stream)
			}})
	}

	// Layout: every kind against its reference over the adversarial
	// counter-saturation streams — the packed 2-bit table storage must be
	// indistinguishable from the naive byte-per-counter models on the
	// streams built to break it.
	for _, kind := range kinds {
		spec := sim.MustParse(kind)
		checks = append(checks, check{name: "layout:" + spec.String(), fn: func(context.Context) error {
			return oracle.CheckLayout(spec, *seed, *events/4)
		}})
	}

	// Metamorphic: table doubling where the index confinement is
	// expressible, interleave invariance for the stateless kinds.
	for _, kind := range []string{"bimodal", "gshare", "gselect"} {
		spec := sim.MustParse(kind)
		checks = append(checks, check{name: "doubling:" + spec.String(), fn: func(context.Context) error {
			return oracle.CheckTableDoubling(spec, stream)
		}})
	}
	for _, kind := range []string{"taken", "nottaken"} {
		spec := sim.MustParse(kind)
		checks = append(checks, check{name: "interleave:" + spec.String(), fn: func(context.Context) error {
			p, err := spec.New()
			if err != nil {
				return err
			}
			return oracle.CheckInterleaveInvariance(p, stream)
		}})
	}

	// Equivalence matrix: every built-in workload (if-converted, so the
	// SFPF/PGU paths carry real predicate traffic) plus synthetic
	// programs, through all four equivalence pairs and the reference
	// evaluator.
	mkCase := func(name string, p *prog.Program) oracle.Case {
		return oracle.Case{
			Name: name, Prog: p, Limit: *limit,
			Spec: sim.For("gshare", 12, 8),
			Cfg: core.EvalConfig{
				UseSFPF: true, ResolveDelay: core.DefaultResolveDelay,
				PGU: core.PGUAll, PGUDelay: core.DefaultPGUDelay,
				PerBranch: true,
			},
		}
	}
	var cases []oracle.Case
	for _, w := range workload.Suite() {
		cp, _, err := ifconv.Convert(w.Build(), ifconv.Config{})
		if err != nil {
			return fmt.Errorf("converting %s: %w", w.Name, err)
		}
		cases = append(cases, mkCase(w.Name, cp))
	}
	for i := 0; i < *synth; i++ {
		p := workload.Synth(*seed+uint64(i)*977, 48)
		cases = append(cases, mkCase(fmt.Sprintf("synth-%d", i), p))
	}
	for _, c := range cases {
		c := c
		checks = append(checks,
			check{name: "slice-stream:" + c.Name, fn: func(context.Context) error {
				return oracle.CheckReplayEquivalence(c)
			}},
			check{name: "collect-stream:" + c.Name, fn: func(context.Context) error {
				return oracle.CheckCollectStream(c.Prog, c.Limit)
			}},
			check{name: "roundtrip:" + c.Name, fn: func(context.Context) error {
				return oracle.CheckSerializeRoundTrip(c)
			}},
			check{name: "refeval:" + c.Name, fn: func(context.Context) error {
				return oracle.CheckEvaluator(c)
			}},
			check{name: "fastpath:" + c.Name, fn: func(context.Context) error {
				return oracle.CheckBatchEquivalence(c)
			}})
		if *serveCheck {
			checks = append(checks, check{name: "serve:" + c.Name, fn: func(ctx context.Context) error {
				return checkServe(ctx, c)
			}})
		}
	}

	// Fast-path equivalence for every selected predictor kind: the
	// devirtualized batch loop must be metrics-identical to the generic
	// interface path, kind by kind, over a real converted workload.
	for _, kind := range kinds {
		spec := sim.MustParse(kind)
		c := cases[0]
		c.Spec = spec
		checks = append(checks, check{name: "fastpath:" + spec.String(), fn: func(context.Context) error {
			return oracle.CheckBatchEquivalence(c)
		}})
	}

	// Snapshot-resume durability for every selected predictor kind: an
	// evaluation interrupted by a P64S snapshot/restore at any cut point
	// must be bit-identical — metrics and final snapshot bytes — to an
	// uninterrupted run over the same converted workload.
	for _, kind := range kinds {
		spec := sim.MustParse(kind)
		c := cases[0]
		c.Spec = spec
		checks = append(checks, check{name: "snapshot:" + spec.String(), fn: func(context.Context) error {
			return oracle.CheckSnapshotResume(c)
		}})
	}

	// The serial-vs-parallel sweep equivalence runs once over the whole
	// case list; it manages its own worker pool.
	checks = append(checks, check{name: "sweep:serial-vs-parallel", fn: func(ctx context.Context) error {
		return oracle.CheckSweepParallel(ctx, cases, *workers)
	}})

	ctx := context.Background()
	errs, err := sim.Map(ctx, checks, *workers, func(ctx context.Context, c check) (error, error) {
		// A divergence is a result to report, not a job failure: let
		// every check run instead of cancelling the sweep.
		return c.fn(ctx), nil
	})
	if err != nil {
		return err
	}
	var rep oracle.Report
	for i, c := range checks {
		rep.Add(c.name, errs[i])
	}
	fmt.Fprint(out, rep.String())
	if !rep.OK() {
		return fmt.Errorf("%d of %d checks diverged", len(rep.Failures()), len(rep.Checks))
	}
	return nil
}

// checkServe replays one case's event stream through an in-process serve
// session over real HTTP — create, two binary batches, delete — and
// requires the returned metrics to be byte-identical (as canonical JSON)
// to feeding the same events through core.Evaluator directly. It is the
// end-to-end oracle for the prediction-as-a-service path: wire encoding,
// handler plumbing, shard scheduling, and snapshotting must all be
// metrics-transparent.
func checkServe(ctx context.Context, c oracle.Case) error {
	tr, err := trace.Collect(c.Prog, c.Limit)
	if err != nil {
		return err
	}

	// Direct path.
	dcfg := c.Cfg
	if dcfg.Predictor, err = c.Spec.New(); err != nil {
		return err
	}
	e := core.NewEvaluator(dcfg)
	for i := range tr.Events {
		e.Feed(&tr.Events[i])
	}
	e.AddInsts(tr.Insts)
	want, err := json.Marshal(serve.MetricsToJSON(e.Metrics()))
	if err != nil {
		return err
	}

	// Serve path: same events, split across two batches.
	srv := serve.MustNew(serve.Config{Shards: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resolve, pguDelay := c.Cfg.ResolveDelay, c.Cfg.PGUDelay
	req := serve.SessionRequest{
		Spec: c.Spec.String(),
		EvalOptions: serve.EvalOptions{
			SFPF: c.Cfg.UseSFPF, FilterTrue: c.Cfg.FilterTrue,
			TrainFiltered: c.Cfg.TrainFiltered, PerBranch: c.Cfg.PerBranch,
			PGU:          c.Cfg.PGU.String(),
			ResolveDelay: &resolve, PGUDelay: &pguDelay,
		},
	}
	var sess serve.SessionJSON
	if err := serveCall(ctx, ts.URL, "POST", "/v1/sessions", "application/json", mustJSON(req), &sess); err != nil {
		return err
	}
	half := len(tr.Events) / 2
	for _, part := range []struct {
		events []trace.Event
		insts  uint64
	}{{tr.Events[:half], 0}, {tr.Events[half:], tr.Insts}} {
		var buf bytes.Buffer
		bt := &trace.Trace{Name: "batch", Insts: part.insts, Events: part.events}
		if _, err := bt.WriteTo(&buf); err != nil {
			return err
		}
		if err := serveCall(ctx, ts.URL, "POST", "/v1/sessions/"+sess.ID+"/events",
			"application/octet-stream", buf.Bytes(), nil); err != nil {
			return err
		}
	}
	var final serve.SessionJSON
	if err := serveCall(ctx, ts.URL, "DELETE", "/v1/sessions/"+sess.ID, "", nil, &final); err != nil {
		return err
	}
	if final.Metrics == nil {
		return fmt.Errorf("serve: no final metrics")
	}
	got, err := json.Marshal(*final.Metrics)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("serve metrics diverge from direct evaluator:\nserve  %s\ndirect %s", got, want)
	}
	return nil
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// serveCall is a minimal HTTP helper for the serve oracle.
func serveCall(ctx context.Context, base, method, path, contentType string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("serve: %s %s: HTTP %d: %s", method, path, resp.StatusCode, raw)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}
