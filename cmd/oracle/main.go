// Command oracle runs the full differential-testing matrix from
// internal/oracle: every registered predictor kind against its naive
// reference model, the metamorphic properties (reset-replay, table
// doubling, static interleave-invariance), and the four
// cross-implementation equivalence pairs (slice vs. stream replay,
// Collect vs. Stream event production, serialize round-trip, serial vs.
// parallel sweep) over every built-in workload plus synthetic programs.
// It exits nonzero on any divergence, making it a one-command
// correctness gate for refactors of the simulation engine.
//
// Usage:
//
//	oracle [-seed 1] [-events 200000] [-kinds gshare,bimodal] [-workers 0] [-limit 3000000]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/ifconv"
	"repro/internal/oracle"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "oracle:", err)
		os.Exit(1)
	}
}

// check is one unit of oracle work for the sweep pool.
type check struct {
	name string
	fn   func(ctx context.Context) error
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("oracle", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "randomized-stream seed")
	events := fs.Int("events", 200_000, "events per randomized predictor stream")
	kindsFlag := fs.String("kinds", "", "comma-separated predictor kinds to check (default all)")
	workers := fs.Int("workers", 0, "parallel check workers (0 = GOMAXPROCS)")
	limit := fs.Uint64("limit", 3_000_000, "emulation step limit per program")
	synth := fs.Int("synth", 4, "number of synthetic fuzz programs in the equivalence matrix")
	if err := fs.Parse(args); err != nil {
		return err
	}

	kinds := sim.Kinds()
	if *kindsFlag != "" {
		kinds = nil
		known := make(map[string]bool)
		for _, k := range sim.Kinds() {
			known[k] = true
		}
		for _, k := range strings.Split(*kindsFlag, ",") {
			k = strings.TrimSpace(k)
			if !known[k] {
				return fmt.Errorf("unknown predictor kind %q (want %s)", k, strings.Join(sim.Kinds(), ", "))
			}
			kinds = append(kinds, k)
		}
	}

	stream := oracle.Stream{Seed: *seed, Events: *events}
	var checks []check

	// Differential: every kind against its reference, then the
	// reset-replay metamorphic property on the same kind.
	for _, kind := range kinds {
		spec := sim.MustParse(kind)
		checks = append(checks,
			check{name: "ref:" + spec.String(), fn: func(context.Context) error {
				return oracle.CheckSpec(spec, stream)
			}},
			check{name: "reset:" + spec.String(), fn: func(context.Context) error {
				p, err := spec.New()
				if err != nil {
					return err
				}
				return oracle.CheckResetReplay(p, stream)
			}})
	}

	// Metamorphic: table doubling where the index confinement is
	// expressible, interleave invariance for the stateless kinds.
	for _, kind := range []string{"bimodal", "gshare", "gselect"} {
		spec := sim.MustParse(kind)
		checks = append(checks, check{name: "doubling:" + spec.String(), fn: func(context.Context) error {
			return oracle.CheckTableDoubling(spec, stream)
		}})
	}
	for _, kind := range []string{"taken", "nottaken"} {
		spec := sim.MustParse(kind)
		checks = append(checks, check{name: "interleave:" + spec.String(), fn: func(context.Context) error {
			p, err := spec.New()
			if err != nil {
				return err
			}
			return oracle.CheckInterleaveInvariance(p, stream)
		}})
	}

	// Equivalence matrix: every built-in workload (if-converted, so the
	// SFPF/PGU paths carry real predicate traffic) plus synthetic
	// programs, through all four equivalence pairs and the reference
	// evaluator.
	mkCase := func(name string, p *prog.Program) oracle.Case {
		return oracle.Case{
			Name: name, Prog: p, Limit: *limit,
			Spec: sim.For("gshare", 12, 8),
			Cfg: core.EvalConfig{
				UseSFPF: true, ResolveDelay: core.DefaultResolveDelay,
				PGU: core.PGUAll, PGUDelay: core.DefaultPGUDelay,
				PerBranch: true,
			},
		}
	}
	var cases []oracle.Case
	for _, w := range workload.Suite() {
		cp, _, err := ifconv.Convert(w.Build(), ifconv.Config{})
		if err != nil {
			return fmt.Errorf("converting %s: %w", w.Name, err)
		}
		cases = append(cases, mkCase(w.Name, cp))
	}
	for i := 0; i < *synth; i++ {
		p := workload.Synth(*seed+uint64(i)*977, 48)
		cases = append(cases, mkCase(fmt.Sprintf("synth-%d", i), p))
	}
	for _, c := range cases {
		c := c
		checks = append(checks,
			check{name: "slice-stream:" + c.Name, fn: func(context.Context) error {
				return oracle.CheckReplayEquivalence(c)
			}},
			check{name: "collect-stream:" + c.Name, fn: func(context.Context) error {
				return oracle.CheckCollectStream(c.Prog, c.Limit)
			}},
			check{name: "roundtrip:" + c.Name, fn: func(context.Context) error {
				return oracle.CheckSerializeRoundTrip(c)
			}},
			check{name: "refeval:" + c.Name, fn: func(context.Context) error {
				return oracle.CheckEvaluator(c)
			}})
	}

	// The serial-vs-parallel sweep equivalence runs once over the whole
	// case list; it manages its own worker pool.
	checks = append(checks, check{name: "sweep:serial-vs-parallel", fn: func(ctx context.Context) error {
		return oracle.CheckSweepParallel(ctx, cases, *workers)
	}})

	ctx := context.Background()
	errs, err := sim.Map(ctx, checks, *workers, func(ctx context.Context, c check) (error, error) {
		// A divergence is a result to report, not a job failure: let
		// every check run instead of cancelling the sweep.
		return c.fn(ctx), nil
	})
	if err != nil {
		return err
	}
	var rep oracle.Report
	for i, c := range checks {
		rep.Add(c.name, errs[i])
	}
	fmt.Fprint(out, rep.String())
	if !rep.OK() {
		return fmt.Errorf("%d of %d checks diverged", len(rep.Failures()), len(rep.Checks))
	}
	return nil
}
