// Command predsim runs a program on the cycle-level pipeline model with a
// chosen branch predictor and the paper's mechanisms, and reports timing
// and prediction statistics.
//
// The program is either a built-in workload (-w name, optionally
// if-converted with -convert) or a P64 assembly file (-f prog.s).
//
// Usage:
//
//	predsim -w scan -convert -predictor gshare -sfpf -pgu all
//	predsim -f myprog.s -penalty 20 -width 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/buildinfo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "predsim:", err)
		os.Exit(1)
	}
}

// newPredictor resolves a predictor spec ("gshare", "gshare:14:10", ...)
// through the registry shared with bpsweep and the harness.
func newPredictor(spec string) (repro.Predictor, error) {
	return repro.NewPredictor(spec)
}

func pguPolicy(spec string) (repro.PGUPolicy, error) {
	return repro.ParsePGUPolicy(spec)
}

// loadProgram resolves the -w/-f program selection flags shared by the
// tools.
func loadProgram(wname, file string) (*repro.Program, error) {
	switch {
	case wname != "":
		w, err := repro.WorkloadByName(wname)
		if err != nil {
			return nil, err
		}
		return w.Build(), nil
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return repro.Assemble(strings.TrimSuffix(file, ".s"), string(src))
	}
	return nil, fmt.Errorf("need -w workload or -f file (try -listw)")
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("predsim", flag.ContinueOnError)
	wname := fs.String("w", "", "built-in workload name (see -listw)")
	file := fs.String("f", "", "P64 assembly file to run")
	convert := fs.Bool("convert", false, "if-convert the program before running")
	profiled := fs.Bool("profiled", false, "with -convert: use profile-guided region selection")
	predictor := fs.String("predictor", "gshare", "branch predictor spec, e.g. gshare or gshare:14:10 (see -listp)")
	sfpf := fs.Bool("sfpf", false, "enable the squash false path filter")
	filterTrue := fs.Bool("filter-true", false, "also filter known-true guards")
	pgu := fs.String("pgu", "off", "predicate global update policy: off, region, branch, all")
	penalty := fs.Uint64("penalty", 10, "branch misprediction penalty in cycles")
	resolve := fs.Uint64("resolve", 5, "predicate resolve latency in cycles")
	width := fs.Int("width", 1, "issue width (instructions per cycle)")
	limit := fs.Uint64("limit", 10_000_000, "dynamic instruction limit")
	listw := fs.Bool("listw", false, "list built-in workloads and exit")
	listp := fs.Bool("listp", false, "list predictor kinds and spec syntax, then exit")
	version := buildinfo.Flag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("predsim"))
		return nil
	}

	if *listw {
		for _, w := range repro.Workloads() {
			fmt.Fprintf(out, "%-10s %s\n", w.Name, w.Description)
		}
		return nil
	}
	if *listp {
		fmt.Fprint(out, repro.PredictorUsage())
		return nil
	}

	p, err := loadProgram(*wname, *file)
	if err != nil {
		return err
	}

	if *convert {
		cfg := repro.IfConvConfig{}
		if *profiled {
			prof, err := repro.CollectProfile(p, nil, *limit)
			if err != nil {
				return err
			}
			cfg.Profile = prof
		}
		cp, rep, err := repro.IfConvert(p, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "if-conversion: %d regions, %d branches eliminated, %d region-based branches\n",
			len(rep.Regions), rep.TotalEliminated(), rep.TotalRegionBranches())
		p = cp
	}

	pred, err := newPredictor(*predictor)
	if err != nil {
		return err
	}
	pol, err := pguPolicy(*pgu)
	if err != nil {
		return err
	}
	cfg := repro.DefaultPipelineConfig(pred)
	cfg.UseSFPF = *sfpf
	cfg.FilterTrue = *filterTrue
	cfg.PGU = pol
	cfg.MispredictPenalty = *penalty
	cfg.PredResolveLatency = *resolve
	cfg.IssueWidth = *width

	st, err := repro.RunPipeline(p, cfg, *limit)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "program:            %s\n", p.Name)
	fmt.Fprintf(out, "predictor:          %s  sfpf=%v filter-true=%v pgu=%s width=%d\n",
		pred.Name(), *sfpf, *filterTrue, pol, *width)
	fmt.Fprintf(out, "cycles:             %d\n", st.Cycles)
	fmt.Fprintf(out, "instructions:       %d (nullified %d, %.1f%%)\n", st.Insts, st.Nullified,
		100*float64(st.Nullified)/float64(st.Insts))
	fmt.Fprintf(out, "IPC:                %.3f\n", st.IPC())
	fmt.Fprintf(out, "stall cycles:       %d\n", st.Stalls)
	fmt.Fprintf(out, "cond branches:      %d (region-based %d)\n", st.Branches, st.RegionBranches)
	fmt.Fprintf(out, "mispredictions:     %d (%.2f%%; region %d)\n", st.Mispredicts,
		100*st.MispredictRate(), st.RegionMispredicts)
	fmt.Fprintf(out, "filtered:           %d false, %d true, %d errors\n", st.Filtered, st.FilteredTrue, st.FilterErrors)
	fmt.Fprintf(out, "history bits added: %d\n", st.InsertedBits)
	if st.IndirectBranches > 0 {
		fmt.Fprintf(out, "indirect branches:  %d (%d RAS misses)\n", st.IndirectBranches, st.RASMisses)
	}
	fmt.Fprintf(out, "exit code:          %d\n", st.ExitCode)
	return nil
}
