package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestListWorkloads(t *testing.T) {
	out := runOut(t, "-listw")
	for _, want := range []string{"scan", "bsearch", "interp"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
}

func TestRunWorkload(t *testing.T) {
	out := runOut(t, "-w", "stream", "-predictor", "bimodal")
	for _, want := range []string{"cycles:", "IPC:", "exit code:          0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConvertWithMechanisms(t *testing.T) {
	out := runOut(t, "-w", "scan", "-convert", "-sfpf", "-pgu", "all", "-width", "2")
	if !strings.Contains(out, "if-conversion:") {
		t.Errorf("no conversion report:\n%s", out)
	}
	if !strings.Contains(out, "0 errors") {
		t.Errorf("filter errors reported:\n%s", out)
	}
}

func TestProfiledConversion(t *testing.T) {
	out := runOut(t, "-w", "stream", "-convert", "-profiled")
	if !strings.Contains(out, "0 regions") {
		t.Errorf("profiled conversion of stream should skip its region:\n%s", out)
	}
}

func TestRunAssemblyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.s")
	src := "movi r1 = 3\nout r1\nhalt 0\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOut(t, "-f", path)
	if !strings.Contains(out, "exit code:          0") {
		t.Errorf("assembly run failed:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-w", "nope"},
		{"-w", "stream", "-predictor", "nope"},
		{"-w", "stream", "-pgu", "nope"},
		{"-f", "/does/not/exist.s"},
	}
	var sb strings.Builder
	for _, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
