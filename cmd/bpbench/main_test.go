package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestQuickRunWritesReport runs the quick grid at a tiny mintime and
// checks the emitted BENCH.json: fast/generic pairs per kind, a zero
// alloc measurement, and a self-comparison that passes.
func TestQuickRunWritesReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	var out bytes.Buffer
	args := []string{"-quick", "-mintime", "10ms", "-kinds", "gshare", "-serve=false", "-o", path}
	if err := run(args, &out); err != nil {
		t.Fatalf("bpbench run: %v\n%s", err, out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH.json does not parse: %v", err)
	}
	byName := make(map[string]Result)
	for _, r := range rep.Results {
		byName[r.Name] = r
	}
	for _, want := range []string{
		"feed/gshare:12:8/fast", "feed/gshare:12:8/generic",
		"feed/gshare:12:8/fast-featured", "feed/gshare:12:8/generic-featured",
		"allocs/feed/gshare:12:8",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("report is missing %s", want)
		}
	}
	if a := byName["allocs/feed/gshare:12:8"]; a.Value != 0 {
		t.Errorf("gshare batch path allocates %.4f per event; want 0", a.Value)
	}
	if f, g := byName["feed/gshare:12:8/fast"], byName["feed/gshare:12:8/generic"]; f.Value <= g.Value {
		t.Errorf("fast path (%.4g) not faster than generic (%.4g)", f.Value, g.Value)
	}
	if !strings.Contains(out.String(), "fast path") {
		t.Error("summary output missing the fast-path speedup line")
	}

	// Self-comparison with a roomy threshold must pass.
	out.Reset()
	args = []string{"-quick", "-mintime", "10ms", "-kinds", "gshare", "-serve=false", "-compare", path, "-threshold", "0.9"}
	if err := run(args, &out); err != nil {
		t.Fatalf("self-comparison failed: %v\n%s", err, out.String())
	}
}

// TestCompareDetectsRegression doctors a baseline so the fresh run can
// never reach it, and requires the comparison to fail.
func TestCompareDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	base := Report{
		Tool: "bpbench",
		Results: []Result{
			// Unreachably fast baseline: any real measurement regresses.
			{Name: "feed/gshare:12:8/fast", Value: 1e15, Unit: "events/s", HigherBetter: true},
		},
	}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	args := []string{"-quick", "-mintime", "10ms", "-kinds", "gshare", "-serve=false", "-compare", path}
	err = run(args, &out)
	if err == nil {
		t.Fatalf("comparison against an unreachable baseline passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("output does not report the regression:\n%s", out.String())
	}
}

// TestCompareZeroAllocBaseline checks the strict zero-baseline rule: an
// allocs/event metric with a 0 baseline must not tolerate the threshold
// fraction (0 × 1.25 = 0 would trivially pass anything).
func TestCompareZeroAllocBaseline(t *testing.T) {
	var out bytes.Buffer
	rep := &Report{Results: []Result{
		{Name: "allocs/feed/x", Value: 0.5, Unit: "allocs/event", HigherBetter: false},
	}}
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	data, _ := json.Marshal(Report{Results: []Result{
		{Name: "allocs/feed/x", Value: 0, Unit: "allocs/event", HigherBetter: false},
	}})
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compare(&out, rep, path, 0.25); err == nil {
		t.Error("reintroduced per-event allocation passed a zero-alloc baseline")
	}
}
