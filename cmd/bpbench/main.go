// Command bpbench runs the repository's fixed performance-benchmark grid
// and records the results as machine-readable BENCH.json, the committed
// throughput baseline CI regresses against.
//
// The grid covers the performance-critical paths end to end:
//
//   - feed/<spec>/fast and feed/<spec>/generic — evaluator feed-loop
//     throughput (events/s) per registry predictor kind over a
//     cache-resident window of the 16-kernel suite's if-converted event
//     stream, through the devirtualized batch fast path (FeedBatch) and
//     the generic per-event interface path (Feed). Their ratio is the
//     fast-path speedup.
//   - feed/<spec>/fast-featured and /generic-featured — the same loops
//     with the paper mechanisms live (SFPF + PGU), for the sweep-shaped
//     workload rather than the serving-shaped one (gshare only by
//     default; every kind with -allfeatured).
//   - allocs/feed/<spec> — steady-state heap allocations per event on the
//     batch fast path (must be 0 for every specialized kind).
//   - serve/feed/<spec> — serve-session throughput (events/s) through
//     real HTTP: binary P64T batches posted to an in-process server.
//   - experiments/all — wall-clock milliseconds to regenerate the full
//     E1–E14 experiment set (skipped with -quick).
//
// Usage:
//
//	bpbench [-quick] [-o BENCH.json] [-compare BENCH.json] [-threshold 0.25]
//	        [-mintime 1s] [-kinds gshare,perceptron] [-serve] [-version]
//
// With -compare, results are checked against a previously recorded
// baseline: any metric worse by more than the threshold fraction fails
// the run, which is how ci.sh gates performance regressions.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ifconv"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Result is one benchmark measurement.
type Result struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// HigherBetter orients regression comparison: events/s improve upward,
	// allocs/event and wall milliseconds improve downward.
	HigherBetter bool `json:"higher_better"`
}

// Report is the BENCH.json document.
type Report struct {
	Tool    string   `json:"tool"`
	Version string   `json:"version"`
	Go      string   `json:"go"`
	OS      string   `json:"os"`
	Arch    string   `json:"arch"`
	Quick   bool     `json:"quick"`
	Results []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bpbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bpbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "CI mode: shorter measurements, fewer kinds, skip the experiment regen timing")
	outPath := fs.String("o", "", "write BENCH.json to this path (empty: print to stdout only)")
	comparePath := fs.String("compare", "", "compare results against this previously recorded BENCH.json")
	threshold := fs.Float64("threshold", 0.25, "allowed fractional regression vs the -compare baseline")
	minTime := fs.Duration("mintime", time.Second, "minimum measurement time per benchmark")
	kindsFlag := fs.String("kinds", "", "comma-separated predictor kinds to measure (default: all registry kinds)")
	serveBench := fs.Bool("serve", true, "measure the serve-session HTTP feed path")
	allFeatured := fs.Bool("allfeatured", false, "measure the featured (SFPF+PGU) feed loops for every kind, not just gshare")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile covering the whole run to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile at the end of the run to this file")
	version := buildinfo.Flag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("bpbench"))
		return nil
	}
	if *quick && *minTime == time.Second {
		*minTime = 200 * time.Millisecond
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bpbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "bpbench:", err)
			}
		}()
	}

	kinds := sim.Kinds()
	if *kindsFlag != "" {
		kinds = nil
		for _, k := range strings.Split(*kindsFlag, ",") {
			kinds = append(kinds, strings.TrimSpace(k))
		}
	} else if *quick {
		kinds = []string{"gshare", "bimodal", "tournament", "perceptron"}
	}

	window, err := suiteWindow()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "bpbench: %d-event suite window, mintime %v\n", len(window), *minTime)

	rep := &Report{
		Tool: "bpbench", Version: buildinfo.Version(),
		Go: runtime.Version(), OS: runtime.GOOS, Arch: runtime.GOARCH,
		Quick: *quick,
	}
	add := func(r Result, err error) error {
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results, r)
		fmt.Fprintf(out, "  %-40s %14.4g %s\n", r.Name, r.Value, r.Unit)
		return nil
	}

	for _, kind := range kinds {
		spec, err := sim.Parse(kind)
		if err != nil {
			return err
		}
		name := spec.String()
		for _, variant := range []struct {
			suffix   string
			featured bool
			batch    bool
		}{
			{"fast", false, true},
			{"generic", false, false},
			{"fast-featured", true, true},
			{"generic-featured", true, false},
		} {
			if variant.featured && !*allFeatured && kind != "gshare" {
				continue
			}
			r, err := benchFeed(spec, window, *minTime, variant.featured, variant.batch)
			if err != nil {
				return err
			}
			r.Name = "feed/" + name + "/" + variant.suffix
			if err := add(r, nil); err != nil {
				return err
			}
		}
		if err := add(benchAllocs(spec, window)); err != nil {
			return err
		}
	}

	if *serveBench {
		specs := []string{"gshare:12:8"}
		for _, s := range specs {
			spec, err := sim.Parse(s)
			if err != nil {
				return err
			}
			if err := add(benchServe(spec, window, *minTime)); err != nil {
				return err
			}
			if err := add(benchServeMulti(spec, window, *minTime)); err != nil {
				return err
			}
		}
	}

	for _, bits := range []int{12, 20} {
		for _, packed := range []bool{true, false} {
			if err := add(benchLayout(bits, packed, *minTime)); err != nil {
				return err
			}
		}
	}

	if !*quick {
		if err := add(benchExperiments()); err != nil {
			return err
		}
	}

	printSpeedup(out, rep.Results)

	if *outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "bpbench: wrote %s\n", *outPath)
	}

	if *comparePath != "" {
		return compare(out, rep, *comparePath, *threshold)
	}
	return nil
}

// suiteWindow builds the measurement event window: the if-converted
// 16-kernel suite's event streams concatenated, truncated to a
// cache-resident window (the shape of a pooled serve batch, which is the
// hot consumer), with Step zeroed so the window can be replayed
// indefinitely — Feed requires non-decreasing steps, and with a zero
// PGUDelay each pending history bit flushes on the following event.
func suiteWindow() ([]trace.Event, error) {
	const windowSize = 8192
	var window []trace.Event
	for _, w := range workload.Suite() {
		cp, _, err := ifconv.Convert(w.Build(), ifconv.Config{})
		if err != nil {
			return nil, fmt.Errorf("converting %s: %w", w.Name, err)
		}
		tr, err := trace.Collect(cp, 3_000_000)
		if err != nil {
			return nil, fmt.Errorf("collecting %s: %w", w.Name, err)
		}
		// An even slice of every kernel keeps the window's branch mix
		// representative of the whole suite.
		n := len(tr.Events)
		if n > windowSize/len(workload.Suite()) {
			n = windowSize / len(workload.Suite())
		}
		window = append(window, tr.Events[:n]...)
		if len(window) >= windowSize {
			break
		}
	}
	for i := range window {
		window[i].Step = 0
	}
	return window, nil
}

func feedConfig(spec sim.Spec, featured bool) (core.EvalConfig, error) {
	p, err := spec.New()
	if err != nil {
		return core.EvalConfig{}, err
	}
	cfg := core.EvalConfig{Predictor: p}
	if featured {
		cfg.UseSFPF = true
		cfg.ResolveDelay = core.DefaultResolveDelay
		cfg.PGU = core.PGUAll
		cfg.PGUDelay = 0 // keep pending bits bounded across window replays
	}
	return cfg, nil
}

// benchFeed measures evaluator feed throughput over repeated replays of
// the window. The run is split into chunks and the best chunk's rate is
// reported: benchmark machines (CI runners especially) suffer transient
// contention, and the peak window estimates the code's real throughput
// far more stably than a contaminated average — which is what a
// regression gate needs.
func benchFeed(spec sim.Spec, window []trace.Event, minTime time.Duration, featured, batch bool) (Result, error) {
	cfg, err := feedConfig(spec, featured)
	if err != nil {
		return Result{}, err
	}
	e := core.NewEvaluator(cfg)
	e.FeedBatch(window) // warm-up: size the pending buffer, fault in tables
	one := func() {
		if batch {
			e.FeedBatch(window)
		} else {
			for j := range window {
				e.Feed(&window[j])
			}
		}
	}
	return bestRate(len(window), minTime, one), nil
}

// bestRate runs op repeatedly for at least minTime total, measuring in
// chunks calibrated to ~1/8 of minTime, and returns the best observed
// chunk rate in events per second.
func bestRate(eventsPerOp int, minTime time.Duration, op func()) Result {
	// Calibrate ops per chunk from a first timed op.
	t0 := time.Now()
	op()
	opTime := time.Since(t0)
	if opTime <= 0 {
		opTime = time.Microsecond
	}
	perChunk := int(minTime / 8 / opTime)
	if perChunk < 1 {
		perChunk = 1
	}
	var best float64
	start := time.Now()
	for time.Since(start) < minTime {
		c0 := time.Now()
		for i := 0; i < perChunk; i++ {
			op()
		}
		if rate := float64(perChunk*eventsPerOp) / time.Since(c0).Seconds(); rate > best {
			best = rate
		}
	}
	return Result{Value: best, Unit: "events/s", HigherBetter: true}
}

// benchAllocs measures steady-state heap allocations per event on the
// batch fast path. The specialized kinds must measure 0.
func benchAllocs(spec sim.Spec, window []trace.Event) (Result, error) {
	cfg, err := feedConfig(spec, true)
	if err != nil {
		return Result{}, err
	}
	e := core.NewEvaluator(cfg)
	e.FeedBatch(window) // warm-up
	const rounds = 20
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		e.FeedBatch(window)
	}
	runtime.ReadMemStats(&after)
	perEvent := float64(after.Mallocs-before.Mallocs) / float64(rounds*len(window))
	return Result{
		Name: "allocs/feed/" + spec.String(), Value: perEvent,
		Unit: "allocs/event", HigherBetter: false,
	}, nil
}

// benchServe measures end-to-end serve-session feed throughput: binary
// P64T batches posted over real HTTP to an in-process server.
func benchServe(spec sim.Spec, window []trace.Event, minTime time.Duration) (Result, error) {
	srv := serve.MustNew(serve.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(serve.SessionRequest{Spec: spec.String()})
	if err != nil {
		return Result{}, err
	}
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return Result{}, err
	}
	var sess serve.SessionJSON
	err = json.NewDecoder(resp.Body).Decode(&sess)
	resp.Body.Close()
	if err != nil {
		return Result{}, err
	}

	var batch bytes.Buffer
	bt := &trace.Trace{Name: "bench", Events: window}
	if _, err := bt.WriteTo(&batch); err != nil {
		return Result{}, err
	}
	payload := batch.Bytes()
	url := ts.URL + "/v1/sessions/" + sess.ID + "/events"

	var postErr error
	r := bestRate(len(window), minTime, func() {
		resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(payload))
		if err != nil {
			postErr = err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			postErr = fmt.Errorf("serve feed: HTTP %d", resp.StatusCode)
		}
	})
	if postErr != nil {
		return Result{}, postErr
	}
	r.Name = "serve/feed/" + spec.String()
	return r, nil
}

// benchServeMulti drives the HTTP feed path with several concurrent
// sessions, the workload the shard scheduling pass exists for: while one
// batch is being fed, the others' requests queue on the shards, so each
// worker wakeup drains and groups several batches. Unlike the serial
// benchmark's best-chunk rate, the result is the whole-run aggregate
// rate — the number a fleet operator would see.
func benchServeMulti(spec sim.Spec, window []trace.Event, minTime time.Duration) (Result, error) {
	const clients = 8
	srv := serve.MustNew(serve.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	defer client.CloseIdleConnections()

	var batch bytes.Buffer
	bt := &trace.Trace{Name: "bench", Events: window}
	if _, err := bt.WriteTo(&batch); err != nil {
		return Result{}, err
	}
	payload := batch.Bytes()

	sessBody, err := json.Marshal(serve.SessionRequest{Spec: spec.String()})
	if err != nil {
		return Result{}, err
	}
	urls := make([]string, clients)
	for i := range urls {
		resp, err := client.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(sessBody))
		if err != nil {
			return Result{}, err
		}
		var sess serve.SessionJSON
		err = json.NewDecoder(resp.Body).Decode(&sess)
		resp.Body.Close()
		if err != nil {
			return Result{}, err
		}
		urls[i] = ts.URL + "/v1/sessions/" + sess.ID + "/events"
	}

	post := func(url string) error {
		resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(payload))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("serve feed: HTTP %d", resp.StatusCode)
		}
		return nil
	}
	// Warm up connections and session state outside the timed window.
	for _, url := range urls {
		if err := post(url); err != nil {
			return Result{}, err
		}
	}

	var batches atomic.Int64
	errs := make(chan error, clients)
	start := time.Now()
	deadline := start.Add(minTime)
	var wg sync.WaitGroup
	for _, url := range urls {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if err := post(url); err != nil {
					errs <- err
					return
				}
				batches.Add(1)
			}
		}(url)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return Result{}, err
	default:
	}
	return Result{
		Name:  "serve/feed/" + spec.String() + "/multi",
		Value: float64(batches.Load()) * float64(len(window)) / elapsed.Seconds(),
		Unit:  "events/s", HigherBetter: true,
	}, nil
}

// benchExperiments times one full regeneration of the E1–E14 experiment
// set — the end-to-end cost a results refresh pays.
func benchExperiments() (Result, error) {
	start := time.Now()
	results, err := harness.RunAll(harness.Config{})
	if err != nil {
		return Result{}, err
	}
	if len(results) == 0 {
		return Result{}, fmt.Errorf("experiment regen produced no results")
	}
	return Result{
		Name: "experiments/all", Value: float64(time.Since(start).Milliseconds()),
		Unit: "ms", HigherBetter: false,
	}, nil
}

// printSpeedup reports the headline fast-vs-generic ratios.
func printSpeedup(out io.Writer, results []Result) {
	byName := make(map[string]float64, len(results))
	for _, r := range results {
		byName[r.Name] = r.Value
	}
	for _, spec := range specsIn(results) {
		fast, okF := byName["feed/"+spec+"/fast"]
		gen, okG := byName["feed/"+spec+"/generic"]
		if okF && okG && gen > 0 {
			fmt.Fprintf(out, "bpbench: %s fast path %.2fx generic\n", spec, fast/gen)
		}
	}
}

func specsIn(results []Result) []string {
	seen := make(map[string]bool)
	var specs []string
	for _, r := range results {
		if !strings.HasPrefix(r.Name, "feed/") {
			continue
		}
		parts := strings.Split(r.Name, "/")
		if len(parts) == 3 && !seen[parts[1]] {
			seen[parts[1]] = true
			specs = append(specs, parts[1])
		}
	}
	sort.Strings(specs)
	return specs
}

// compare gates the fresh results against a recorded baseline: a metric
// may regress by at most the threshold fraction (in its unfavourable
// direction). Metrics present on only one side are reported but never
// fail the run, so grid growth does not invalidate old baselines.
func compare(out io.Writer, rep *Report, path string, threshold float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseline := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	var regressions []string
	compared := 0
	for _, r := range rep.Results {
		b, ok := baseline[r.Name]
		if !ok {
			fmt.Fprintf(out, "bpbench: %s: not in baseline, skipping\n", r.Name)
			continue
		}
		compared++
		var bad bool
		var limit float64
		if r.HigherBetter {
			limit = b.Value * (1 - threshold)
			bad = r.Value < limit
		} else {
			limit = b.Value * (1 + threshold)
			// A zero baseline (allocs/event) tolerates only rounding noise,
			// not a reintroduced per-event allocation.
			if b.Value == 0 {
				limit = 0.01
			}
			bad = r.Value > limit
		}
		if bad {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.4g %s vs baseline %.4g (limit %.4g)", r.Name, r.Value, r.Unit, b.Value, limit))
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(out, "bpbench: %d regression(s) vs %s:\n", len(regressions), path)
		for _, s := range regressions {
			fmt.Fprintln(out, "  REGRESSION", s)
		}
		return fmt.Errorf("%d benchmark regression(s) beyond %.0f%% threshold", len(regressions), threshold*100)
	}
	fmt.Fprintf(out, "bpbench: %d metrics within %.0f%% of baseline %s\n", compared, threshold*100, path)
	return nil
}
