package main

import (
	"time"

	"repro/internal/rng"
)

// Counter-table layout microbenchmarks: the same saturating-counter
// update stream driven through the packed 32-counters-per-word layout
// internal/bpred ships and through a byte-per-counter replica of the
// layout it retired. The pair isolates the table-access cost from the
// rest of the feed loop, so BENCH.json records the layout choice's raw
// effect at two working-set sizes: 2^12 counters (everything
// cache-resident either way; the win is the branch-free update) and
// 2^20 counters (1 MiB as bytes vs 256 KiB packed; the win is cache
// footprint). The packed implementation mirrors bpred's ctrTable
// word-for-word; the oracle's layout differential family is what pins
// the real tables to the reference semantics.

// layoutPacked is the packed layout: 2-bit counters, 32 per uint64 word,
// branch-free transition-table update (see internal/bpred's ctrTable).
type layoutPacked struct {
	words []uint64
	mask  uint64
}

func newLayoutPacked(bits int) *layoutPacked {
	n := uint64(1) << bits
	t := &layoutPacked{words: make([]uint64, (n+31)/32), mask: n - 1}
	for i := range t.words {
		t.words[i] = 0x5555555555555555 // every counter weakly not-taken
	}
	return t
}

const layoutCtrNext = 0<<0 | 1<<2 | 0<<4 | 2<<6 | 1<<8 | 3<<10 | 2<<12 | 3<<14

func (t *layoutPacked) predictUpdate(i, up uint64) bool {
	w := &t.words[i/32&uint64(len(t.words)-1)]
	sh := i % 32 * 2
	word := *w
	c := word >> sh & 3
	nc := uint64(layoutCtrNext) >> (c<<2 | up<<1) & 3
	*w = word ^ (c^nc)<<sh
	return c&2 != 0
}

// layoutBytes is the retired layout: one byte per 2-bit counter, the
// classic compare-and-branch saturating update.
type layoutBytes struct {
	ctr  []uint8
	mask uint64
}

func newLayoutBytes(bits int) *layoutBytes {
	t := &layoutBytes{ctr: make([]uint8, 1<<bits), mask: 1<<bits - 1}
	for i := range t.ctr {
		t.ctr[i] = 1
	}
	return t
}

func (t *layoutBytes) predictUpdate(i uint64, taken bool) bool {
	c := t.ctr[i]
	if taken {
		if c < 3 {
			t.ctr[i] = c + 1
		}
	} else if c > 0 {
		t.ctr[i] = c - 1
	}
	return c >= 2
}

// layoutSink keeps the prediction results observable so the benchmark
// loops cannot be dead-code eliminated.
var layoutSink uint64

// benchLayout measures one layout at one table size: a pseudorandom
// gshare-shaped index stream with pseudorandom outcomes, reporting
// counter predict+update steps per second.
func benchLayout(bits int, packed bool, minTime time.Duration) (Result, error) {
	const streamLen = 1 << 14
	r := rng.New(uint64(bits))
	idx := make([]uint64, streamLen)
	up := make([]uint64, streamLen)
	mask := uint64(1)<<bits - 1
	for i := range idx {
		idx[i] = r.Uint64() & mask
		up[i] = r.Uint64() & 1
	}
	name := "layout/bytes:"
	var op func()
	if packed {
		name = "layout/packed:"
		t := newLayoutPacked(bits)
		op = func() {
			var hits uint64
			for j, i := range idx {
				if t.predictUpdate(i, up[j]) {
					hits++
				}
			}
			layoutSink += hits
		}
	} else {
		t := newLayoutBytes(bits)
		op = func() {
			var hits uint64
			for j, i := range idx {
				if t.predictUpdate(i, up[j] == 1) {
					hits++
				}
			}
			layoutSink += hits
		}
	}
	res := bestRate(streamLen, minTime, op)
	res.Name = name + itoa(bits)
	res.Unit = "updates/s"
	return res, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
