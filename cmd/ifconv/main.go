// Command ifconv applies hyperblock if-conversion to a program and prints
// the conversion report and the predicated assembly.
//
// Usage:
//
//	ifconv -w classify            # convert a built-in workload
//	ifconv -f prog.s -o out.s     # convert an assembly file
//	ifconv -w scan -verify        # also check observational equivalence
//	ifconv -w stream -profiled    # profile-guided region selection
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/buildinfo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ifconv:", err)
		os.Exit(1)
	}
}

func run(args []string, out, report io.Writer) error {
	fs := flag.NewFlagSet("ifconv", flag.ContinueOnError)
	wname := fs.String("w", "", "built-in workload name")
	file := fs.String("f", "", "P64 assembly file")
	outFile := fs.String("o", "", "write converted assembly to this file (default stdout)")
	maxBlocks := fs.Int("max-blocks", 0, "region block limit (0 = default)")
	maxInsts := fs.Int("max-insts", 0, "region instruction limit (0 = default)")
	noSched := fs.Bool("no-schedule", false, "disable compare scheduling")
	profiled := fs.Bool("profiled", false, "profile-guided region selection")
	verify := fs.Bool("verify", false, "run both versions and compare observable behaviour")
	quiet := fs.Bool("q", false, "report only; do not print the converted program")
	version := buildinfo.Flag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("ifconv"))
		return nil
	}

	var p *repro.Program
	switch {
	case *wname != "":
		w, err := repro.WorkloadByName(*wname)
		if err != nil {
			return err
		}
		p = w.Build()
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		p, err = repro.Assemble(strings.TrimSuffix(*file, ".s"), string(src))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -w workload or -f file")
	}

	cfg := repro.IfConvConfig{
		MaxBlocks:           *maxBlocks,
		MaxInsts:            *maxInsts,
		NoCompareScheduling: *noSched,
	}
	if *profiled {
		prof, err := repro.CollectProfile(p, nil, 50_000_000)
		if err != nil {
			return err
		}
		cfg.Profile = prof
	}
	cp, rep, err := repro.IfConvert(p, cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(report, "regions converted:     %d\n", len(rep.Regions))
	fmt.Fprintf(report, "branches eliminated:   %d\n", rep.TotalEliminated())
	fmt.Fprintf(report, "region-based branches: %d\n", rep.TotalRegionBranches())
	for _, r := range rep.Regions {
		fmt.Fprintf(report, "  region at block %d: %d blocks -> insts [%d,%d)\n",
			r.Head, len(r.Blocks), r.NewStart, r.NewEnd)
	}
	if len(rep.Rejected) > 0 {
		fmt.Fprintf(report, "rejected candidates:   %v\n", rep.Rejected)
	}

	if *verify {
		ra, err := repro.Run(p, 50_000_000)
		if err != nil {
			return fmt.Errorf("running original: %w", err)
		}
		rb, err := repro.Run(cp, 50_000_000)
		if err != nil {
			return fmt.Errorf("running converted: %w", err)
		}
		ok := ra.ExitCode == rb.ExitCode && len(ra.Output) == len(rb.Output)
		for i := 0; ok && i < len(ra.Output); i++ {
			ok = ra.Output[i] == rb.Output[i]
		}
		if !ok {
			return fmt.Errorf("verification FAILED: outputs differ")
		}
		fmt.Fprintf(report, "verified: identical output (%d values), exit %d; dynamic insts %d -> %d\n",
			len(ra.Output), ra.ExitCode, ra.Steps, rb.Steps)
	}

	if *quiet {
		return nil
	}
	text := repro.Disassemble(cp)
	if *outFile != "" {
		return os.WriteFile(*outFile, []byte(text), 0o644)
	}
	_, err = io.WriteString(out, text)
	return err
}
