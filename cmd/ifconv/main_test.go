package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestConvertWorkloadVerified(t *testing.T) {
	var out, report strings.Builder
	if err := run([]string{"-w", "classify", "-verify"}, &out, &report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "verified: identical output") {
		t.Errorf("no verification line:\n%s", report.String())
	}
	if !strings.Contains(out.String(), "cmp.") || !strings.Contains(out.String(), "unc") {
		t.Errorf("converted assembly lacks unc compares:\n%s", out.String())
	}
}

func TestQuietSuppressesOutput(t *testing.T) {
	var out, report strings.Builder
	if err := run([]string{"-w", "rand", "-q"}, &out, &report); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("quiet mode printed the program")
	}
	if !strings.Contains(report.String(), "regions converted") {
		t.Errorf("no report:\n%s", report.String())
	}
}

func TestOutputFileAndReassembly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.s")
	var out, report strings.Builder
	if err := run([]string{"-w", "fsm", "-o", path}, &out, &report); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "halt 0") {
		t.Errorf("written assembly truncated")
	}
}

func TestProfiledSkipsStream(t *testing.T) {
	var out, report strings.Builder
	if err := run([]string{"-w", "stream", "-profiled", "-q"}, &out, &report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "regions converted:     0") {
		t.Errorf("profiled stream conversion not skipped:\n%s", report.String())
	}
}

func TestNoScheduleFlag(t *testing.T) {
	var out, report strings.Builder
	if err := run([]string{"-w", "scan", "-no-schedule", "-verify", "-q"}, &out, &report); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	var out, report strings.Builder
	for _, args := range [][]string{{}, {"-w", "nope"}, {"-f", "/no/such.s"}} {
		if err := run(args, &out, &report); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
