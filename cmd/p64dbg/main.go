// Command p64dbg is an interactive debugger for P64 programs: single-step
// the emulator, set breakpoints, and inspect registers, predicates, and
// memory.
//
// Usage:
//
//	p64dbg -w scan -convert
//	p64dbg -f prog.s
//
// Commands (shortest unique prefix works):
//
//	s [n]        step n instructions (default 1), printing each
//	c            continue to halt, a breakpoint, or the step limit
//	b <idx>      toggle a breakpoint at instruction index idx
//	r            print non-zero general registers
//	p            print true predicate registers
//	m <a> [n]    print n memory words starting at address a (default 8)
//	l [i]        list code around index i (default: around pc)
//	o            print the output stream so far
//	i            print machine status (pc, steps, nullified)
//	q            quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro"
	"repro/internal/buildinfo"
	"repro/internal/emu"
	"repro/internal/isa"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "p64dbg:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("p64dbg", flag.ContinueOnError)
	wname := fs.String("w", "", "built-in workload name")
	file := fs.String("f", "", "P64 assembly file")
	convert := fs.Bool("convert", false, "if-convert before debugging")
	limit := fs.Uint64("limit", 10_000_000, "step budget for the continue command")
	version := buildinfo.Flag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("p64dbg"))
		return nil
	}

	var p *repro.Program
	switch {
	case *wname != "":
		w, err := repro.WorkloadByName(*wname)
		if err != nil {
			return err
		}
		p = w.Build()
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		p, err = repro.Assemble(strings.TrimSuffix(*file, ".s"), string(src))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -w workload or -f file")
	}
	if *convert {
		cp, _, err := repro.IfConvert(p, repro.IfConvConfig{})
		if err != nil {
			return err
		}
		p = cp
	}

	d, err := newDebugger(p, *limit, out)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "p64dbg: %s (%d instructions). Type 'q' to quit.\n", p.Name, len(p.Insts))
	d.list(0)
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "(p64dbg) ")
		if !sc.Scan() {
			return sc.Err()
		}
		quit, err := d.exec(strings.TrimSpace(sc.Text()))
		if err != nil {
			fmt.Fprintln(out, "error:", err)
		}
		if quit {
			return nil
		}
	}
}

type debugger struct {
	p      *repro.Program
	m      *emu.Machine
	out    io.Writer
	limit  uint64
	breaks map[int]bool
}

func newDebugger(p *repro.Program, limit uint64, out io.Writer) (*debugger, error) {
	m, err := repro.NewMachine(p)
	if err != nil {
		return nil, err
	}
	return &debugger{p: p, m: m, out: out, limit: limit, breaks: map[int]bool{}}, nil
}

// exec runs one command line; it returns true when the session should end.
func (d *debugger) exec(line string) (bool, error) {
	if line == "" {
		return false, nil
	}
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	argInt := func(i, def int) (int, error) {
		if i >= len(args) {
			return def, nil
		}
		return strconv.Atoi(args[i])
	}
	switch {
	case strings.HasPrefix("step", cmd):
		n, err := argInt(0, 1)
		if err != nil {
			return false, err
		}
		for i := 0; i < n && !d.m.Halted; i++ {
			if err := d.step(true); err != nil {
				return false, err
			}
		}
		return false, nil
	case strings.HasPrefix("continue", cmd):
		for !d.m.Halted && d.m.Steps < d.limit {
			if err := d.step(false); err != nil {
				return false, err
			}
			if d.breaks[d.m.PC] {
				fmt.Fprintf(d.out, "breakpoint at @%d\n", d.m.PC)
				d.list(d.m.PC)
				return false, nil
			}
		}
		d.status()
		return false, nil
	case strings.HasPrefix("break", cmd):
		idx, err := argInt(0, -1)
		if err != nil || idx < 0 || idx >= len(d.p.Insts) {
			return false, fmt.Errorf("break needs an instruction index in [0,%d)", len(d.p.Insts))
		}
		d.breaks[idx] = !d.breaks[idx]
		state := "set"
		if !d.breaks[idx] {
			delete(d.breaks, idx)
			state = "cleared"
		}
		fmt.Fprintf(d.out, "breakpoint %s at @%d\n", state, idx)
		return false, nil
	case strings.HasPrefix("regs", cmd):
		for r := 0; r < isa.NumRegs; r++ {
			if v := d.m.Regs[r]; v != 0 {
				fmt.Fprintf(d.out, "r%-3d = %d\n", r, v)
			}
		}
		return false, nil
	case strings.HasPrefix("preds", cmd):
		var set []string
		for pr := 0; pr < isa.NumPRegs; pr++ {
			if d.m.Preds[pr] {
				set = append(set, fmt.Sprintf("p%d", pr))
			}
		}
		fmt.Fprintln(d.out, strings.Join(set, " "))
		return false, nil
	case strings.HasPrefix("mem", cmd):
		addr, err := argInt(0, -1)
		if err != nil || addr < 0 {
			return false, fmt.Errorf("mem needs a non-negative address")
		}
		n, err := argInt(1, 8)
		if err != nil {
			return false, err
		}
		for i := 0; i < n; i++ {
			v, err := d.m.Load(int64(addr + i))
			if err != nil {
				return false, err
			}
			fmt.Fprintf(d.out, "[%d] = %d\n", addr+i, v)
		}
		return false, nil
	case strings.HasPrefix("list", cmd):
		center, err := argInt(0, d.m.PC)
		if err != nil {
			return false, err
		}
		d.list(center)
		return false, nil
	case strings.HasPrefix("output", cmd) || cmd == "o":
		fmt.Fprintf(d.out, "%v\n", d.m.Output)
		return false, nil
	case strings.HasPrefix("info", cmd):
		d.status()
		return false, nil
	case strings.HasPrefix("quit", cmd):
		return true, nil
	}
	return false, fmt.Errorf("unknown command %q (s, c, b, r, p, m, l, o, i, q)", cmd)
}

func (d *debugger) step(echo bool) error {
	idx := d.m.PC
	si, err := d.m.Step()
	if err != nil {
		return err
	}
	if echo {
		mark := " "
		if !si.GuardTrue {
			mark = "x" // nullified
		}
		fmt.Fprintf(d.out, "%s @%-4d %s\n", mark, idx, d.p.Insts[idx].String())
	}
	return nil
}

func (d *debugger) status() {
	fmt.Fprintf(d.out, "pc=@%d steps=%d nullified=%d halted=%v", d.m.PC, d.m.Steps, d.m.Nullified, d.m.Halted)
	if d.m.Halted {
		fmt.Fprintf(d.out, " exit=%d", d.m.ExitCode)
	}
	fmt.Fprintln(d.out)
	if len(d.breaks) > 0 {
		var bs []int
		for b := range d.breaks {
			bs = append(bs, b)
		}
		sort.Ints(bs)
		fmt.Fprintf(d.out, "breakpoints: %v\n", bs)
	}
}

func (d *debugger) list(center int) {
	lo, hi := center-3, center+4
	if lo < 0 {
		lo = 0
	}
	if hi > len(d.p.Insts) {
		hi = len(d.p.Insts)
	}
	for i := lo; i < hi; i++ {
		cursor := "  "
		if i == d.m.PC {
			cursor = "=>"
		}
		bp := " "
		if d.breaks[i] {
			bp = "*"
		}
		fmt.Fprintf(d.out, "%s%s@%-4d %s\n", cursor, bp, i, d.p.Insts[i].String())
	}
}
