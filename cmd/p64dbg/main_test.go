package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func session(t *testing.T, commands ...string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "t.s")
	src := `
        movi r1 = 5
        movi r2 = 7
        add r3 = r1, r2
        st [r0 + 100] = r3
        out r3
        halt 0
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader(strings.Join(append(commands, "q"), "\n") + "\n")
	var out strings.Builder
	if err := run([]string{"-f", path}, in, &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestStepAndRegs(t *testing.T) {
	out := session(t, "s 3", "r")
	if !strings.Contains(out, "add r3 = r1, r2") {
		t.Errorf("step did not echo instructions:\n%s", out)
	}
	if !strings.Contains(out, "r3   = 12") {
		t.Errorf("register dump missing r3=12:\n%s", out)
	}
}

func TestContinueAndOutput(t *testing.T) {
	out := session(t, "c", "o", "i")
	if !strings.Contains(out, "[12]") {
		t.Errorf("output stream missing:\n%s", out)
	}
	if !strings.Contains(out, "halted=true exit=0") {
		t.Errorf("status missing:\n%s", out)
	}
}

func TestBreakpoint(t *testing.T) {
	out := session(t, "b 2", "c", "i")
	if !strings.Contains(out, "breakpoint set at @2") || !strings.Contains(out, "breakpoint at @2") {
		t.Errorf("breakpoint flow broken:\n%s", out)
	}
	if !strings.Contains(out, "pc=@2") {
		t.Errorf("did not stop at the breakpoint:\n%s", out)
	}
}

func TestMemAndList(t *testing.T) {
	out := session(t, "c", "m 100 2", "l 0")
	if !strings.Contains(out, "[100] = 12") {
		t.Errorf("memory dump wrong:\n%s", out)
	}
	if !strings.Contains(out, "movi r1 = 5") {
		t.Errorf("listing wrong:\n%s", out)
	}
}

func TestPredsAndNullifiedEcho(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.s")
	src := `
        cmp.eq p1, p2 = r0, 0
        (p2) movi r1 = 9
        halt 0
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader("s 2\np\nq\n")
	var out strings.Builder
	if err := run([]string{"-f", path}, in, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "x @1") {
		t.Errorf("nullified instruction not marked:\n%s", s)
	}
	if !strings.Contains(s, "p1") {
		t.Errorf("predicate dump missing p1:\n%s", s)
	}
}

func TestUnknownCommand(t *testing.T) {
	out := session(t, "zzz")
	if !strings.Contains(out, "unknown command") {
		t.Errorf("no error for unknown command:\n%s", out)
	}
}

func TestWorkloadMode(t *testing.T) {
	in := strings.NewReader("i\nq\n")
	var out strings.Builder
	if err := run([]string{"-w", "stream", "-convert"}, in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "stream.ifc") {
		t.Errorf("workload mode broken:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	for _, args := range [][]string{{}, {"-w", "nope"}, {"-f", "/no/such.s"}} {
		if err := run(args, strings.NewReader(""), &out); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
