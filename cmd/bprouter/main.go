// Command bprouter fronts a fleet of bpservd backends: it
// consistent-hashes session IDs across them, health-checks the fleet,
// retries around dead backends, and migrates sessions off draining
// backends with snapshots (see internal/router).
//
// Usage:
//
//	bprouter -addr 127.0.0.1:9090 -backends http://127.0.0.1:8081,http://127.0.0.1:8082
//	curl -X POST 'http://127.0.0.1:9090/admin/drain?backend=http://127.0.0.1:8081'
//
// Clients speak the ordinary bpservd API to the router; session
// placement and failover are invisible to them. Run the backends with a
// shared -spill directory so a killed backend's sessions warm-restore on
// whichever backend the ring reassigns them to.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/router"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bprouter:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bprouter", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "listen address (port 0 picks a free port)")
	backends := fs.String("backends", "", "comma-separated bpservd base URLs (required)")
	vnodes := fs.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
	healthEvery := fs.Duration("health-interval", time.Second, "backend health-check interval")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request proxy timeout")
	maxBody := fs.Int64("max-body", 64<<20, "request body size cap in bytes")
	slow := fs.Duration("slow-request", 500*time.Millisecond, "log a structured slow_request line for requests over this latency (0 disables)")
	portfile := fs.String("portfile", "", "write the bound address to this file once listening")
	quiet := fs.Bool("quiet", false, "suppress router event log lines")
	drain := fs.Duration("drain", 10*time.Second, "shutdown deadline for in-flight requests")
	version := buildinfo.Flag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("bprouter"))
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	logger := log.New(out, "bprouter: ", log.LstdFlags|log.Lmicroseconds)
	if *quiet {
		logger = log.New(io.Discard, "", 0)
	}
	rt, err := router.New(router.Config{
		Backends:    urls,
		VNodes:      *vnodes,
		HealthEvery: *healthEvery,
		Timeout:     *timeout,
		MaxBody:     *maxBody,
		SlowRequest: *slow,
		Logger:      logger,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *portfile != "" {
		if err := writePortfile(*portfile, bound); err != nil {
			ln.Close()
			return err
		}
		defer os.Remove(*portfile)
	}
	fmt.Fprintf(out, "routing %d backends on %s\n", len(urls), bound)

	hs := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(out, "shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

// writePortfile publishes the bound address atomically so a watcher never
// reads a half-written file.
func writePortfile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
