package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writePCL(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.pcl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const classifySrc = `
arr bins[4];
for (var i = 0; i < 500; i = i + 1) {
    var v = (i * 73 + 19) % 256;
    if (v < 64) { bins[0] = bins[0] + 1; }
    else if (v < 128) { bins[1] = bins[1] + 1; }
    else if (v < 192) { bins[2] = bins[2] + 1; }
    else { bins[3] = bins[3] + 1; }
}
out bins[0] + bins[1] + bins[2] + bins[3];
`

func TestCompileToAssembly(t *testing.T) {
	path := writePCL(t, classifySrc)
	var sb strings.Builder
	if err := run([]string{path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"cmp.", "br", "halt 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("assembly missing %q:\n%s", want, out)
		}
	}
}

func TestCompileRun(t *testing.T) {
	path := writePCL(t, classifySrc)
	var sb strings.Builder
	if err := run([]string{"-run", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "output: [500]") {
		t.Errorf("wrong output:\n%s", sb.String())
	}
}

func TestCompileConvertRun(t *testing.T) {
	path := writePCL(t, classifySrc)
	var plain, conv strings.Builder
	if err := run([]string{"-run", path}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-convert", "-run", path}, &conv); err != nil {
		t.Fatal(err)
	}
	// Same observable output either way; the converted version reports
	// its regions.
	if !strings.Contains(conv.String(), "if-converted:") {
		t.Errorf("no conversion banner:\n%s", conv.String())
	}
	if !strings.Contains(conv.String(), "output: [500]") {
		t.Errorf("converted output differs:\n%s\nvs\n%s", conv.String(), plain.String())
	}
}

func TestCompileToFile(t *testing.T) {
	path := writePCL(t, "out 42;")
	outPath := filepath.Join(t.TempDir(), "out.s")
	var sb strings.Builder
	if err := run([]string{"-o", outPath, path}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "out r28") {
		t.Errorf("assembly file wrong:\n%s", data)
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	bad := writePCL(t, "out nope;")
	for _, args := range [][]string{
		{},
		{"/no/such.pcl"},
		{bad},
	} {
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
