// Command p64c compiles PCL (a small C-like language, see internal/lang)
// to P64 assembly, optionally if-converting the result.
//
// Usage:
//
//	p64c prog.pcl                  # compile, print assembly
//	p64c -o prog.s prog.pcl        # compile to a file
//	p64c -convert -run prog.pcl    # compile, predicate, and execute
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/buildinfo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "p64c:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("p64c", flag.ContinueOnError)
	outFile := fs.String("o", "", "write assembly to this file (default stdout)")
	convert := fs.Bool("convert", false, "if-convert the compiled program")
	profiled := fs.Bool("profiled", false, "with -convert: profile-guided region selection")
	exec := fs.Bool("run", false, "execute the program and print its output")
	limit := fs.Uint64("limit", 10_000_000, "execution step limit with -run")
	version := buildinfo.Flag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("p64c"))
		return nil
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("need exactly one .pcl source file")
	}
	path := fs.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	name := strings.TrimSuffix(strings.TrimSuffix(path, ".pcl"), ".s")
	p, err := repro.CompilePCL(name, string(src))
	if err != nil {
		return err
	}
	if *convert {
		cfg := repro.IfConvConfig{}
		if *profiled {
			prof, err := repro.CollectProfile(p, nil, *limit)
			if err != nil {
				return err
			}
			cfg.Profile = prof
		}
		cp, rep, err := repro.IfConvert(p, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "; if-converted: %d regions, %d branches eliminated, %d region-based kept\n",
			len(rep.Regions), rep.TotalEliminated(), rep.TotalRegionBranches())
		p = cp
	}
	if *exec {
		res, err := repro.Run(p, *limit)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "output: %v\nexit:   %d (in %d instructions)\n",
			res.Output, res.ExitCode, res.Steps)
		return nil
	}
	text := repro.Disassemble(p)
	if *outFile != "" {
		return os.WriteFile(*outFile, []byte(text), 0o644)
	}
	_, err = io.WriteString(out, text)
	return err
}
