// Command bpload is the load generator and smoke checker for bpservd. It
// drives N concurrent sessions with binary event batches from a workload
// trace and reports throughput and batch latency percentiles, optionally
// verifying that the server's metrics are byte-identical to replaying the
// same batches through the evaluator locally.
//
// Usage:
//
//	bpload -addr 127.0.0.1:8080 -sessions 8 -events 1000000
//	bpload -addr 127.0.0.1:8080 -smoke        # one pass over every endpoint
//
// Cluster mode points bpload at a bprouter front tier instead of a single
// backend: sessions get explicit IDs (so the ring owns their placement),
// every batch carries a sequence number (so a retried batch is
// deduplicated, not double-counted), and transport failures are retried
// rather than fatal. With -kill-pid the run SIGTERMs one backend once the
// fleet is halfway through its batches — combined with -verify this is
// the zero-lost-state check: the dying backend spills its sessions, the
// survivor warm-restores them, and the final metrics must still be
// byte-identical to an uninterrupted local replay.
//
//	bpload -addr 127.0.0.1:9090 -cluster -verify -kill-pid $BACKEND_PID
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bpload:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bpload", flag.ContinueOnError)
	addr := fs.String("addr", "", "bpservd address (host:port), required")
	sessions := fs.Int("sessions", 8, "concurrent sessions")
	events := fs.Uint64("events", 1_000_000, "total events to stream across all sessions")
	batch := fs.Int("batch", 4096, "events per batch")
	spec := fs.String("spec", "gshare:14:10", "predictor spec for every session")
	wname := fs.String("w", "scan", "workload supplying the event stream")
	convert := fs.Bool("convert", true, "if-convert the workload before tracing")
	limit := fs.Uint64("limit", 0, "dynamic instruction limit for trace collection (0 = run to completion)")
	sfpf := fs.Bool("sfpf", true, "enable the false-predicate filter")
	pgu := fs.String("pgu", "all", "PGU policy: off | region | branch | all")
	perBranch := fs.Bool("per-branch", false, "collect per-branch statistics in every session (enables /stats introspection and the h2p metric families)")
	verify := fs.Bool("verify", false, "check server metrics byte-identical to a local replay")
	cluster := fs.Bool("cluster", false, "cluster mode: explicit session IDs, per-batch seq numbers, retry on transport failure (for runs behind bprouter)")
	idPrefix := fs.String("id-prefix", "bpload", "session ID prefix in cluster mode")
	keep := fs.Bool("keep", false, "leave sessions resident after the run (final metrics are read, not deleted)")
	ridPrefix := fs.String("rid-prefix", "", "inject an X-Request-Id of <prefix>-s<worker>-q<seq> on every event batch, stable across redeliveries (empty disables)")
	killPID := fs.Int("kill-pid", 0, "SIGTERM this PID once the run crosses -kill-after of its batches (cluster mode)")
	killAfter := fs.Float64("kill-after", 0.5, "fraction of total batches after which -kill-pid fires")
	smoke := fs.Bool("smoke", false, "run the endpoint smoke sequence instead of a load run")
	timeout := fs.Duration("timeout", 2*time.Minute, "overall deadline")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	version := buildinfo.Flag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("bpload"))
		return nil
	}
	if *addr == "" {
		return fmt.Errorf("need -addr")
	}
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	c := &client{base: "http://" + *addr, hc: &http.Client{}}
	opts := serve.EvalOptions{SFPF: *sfpf, PGU: *pgu, PerBranch: *perBranch}
	if *smoke {
		return runSmoke(ctx, c, out, *spec, *wname)
	}

	tr, err := collectTrace(*wname, *convert, *limit)
	if err != nil {
		return err
	}
	if *sessions < 1 || *batch < 1 {
		return fmt.Errorf("need -sessions >= 1 and -batch >= 1")
	}
	if *killPID != 0 && !*cluster {
		return fmt.Errorf("-kill-pid requires -cluster (a lone backend cannot lose a member)")
	}
	rep, err := runLoad(ctx, c, tr, loadConfig{
		sessions: *sessions, events: *events, batch: *batch,
		spec: *spec, opts: opts, verify: *verify,
		cluster: *cluster, idPrefix: *idPrefix,
		keep: *keep, ridPrefix: *ridPrefix,
		killPID: *killPID, killAfter: *killAfter,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(out, "sessions        %d\n", rep.Sessions)
	fmt.Fprintf(out, "events          %d\n", rep.Events)
	fmt.Fprintf(out, "batches         %d\n", rep.Batches)
	fmt.Fprintf(out, "retries (429)   %d\n", rep.Retries)
	if rep.Redeliveries > 0 || rep.Killed != 0 {
		fmt.Fprintf(out, "redeliveries    %d\n", rep.Redeliveries)
	}
	if rep.Killed != 0 {
		fmt.Fprintf(out, "killed backend  pid %d mid-run\n", rep.Killed)
	}
	fmt.Fprintf(out, "errors          %d\n", rep.Errors)
	fmt.Fprintf(out, "batch latency   p50 %.3fms  p90 %.3fms  p99 %.3fms\n",
		rep.LatencyP50Ms, rep.LatencyP90Ms, rep.LatencyP99Ms)
	if rep.Verified {
		fmt.Fprintln(out, "verify          server metrics byte-identical to local replay")
	}
	// The aggregate end-to-end rate is the number a serve-tier
	// optimization is judged on, so it is the last line of the run.
	fmt.Fprintf(out, "aggregate       %.3g events/s end-to-end (%d events across %d sessions in %.3fs)\n",
		rep.EventsPerSec, rep.Events, rep.Sessions, rep.ElapsedSec)
	return nil
}

// client is a minimal JSON/binary API client for bpservd.
type client struct {
	base string
	hc   *http.Client
}

// errStatus reports a non-2xx API response, preserving the error envelope.
type errStatus struct {
	code int
	body serve.ErrorBody
}

func (e *errStatus) Error() string {
	if e.body.Error.Code != "" {
		return fmt.Sprintf("HTTP %d: %s: %s", e.code, e.body.Error.Code, e.body.Error.Message)
	}
	return fmt.Sprintf("HTTP %d", e.code)
}

// do sends one request and decodes the JSON response into out (if non-nil).
func (c *client) do(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	return c.doRID(ctx, method, path, contentType, "", body, out)
}

// doRID is do with an explicit X-Request-Id. A caller-supplied ID that
// stays constant across redeliveries of the same batch is what lets one
// grep trace the batch through the router's failover into whichever
// backend finally applied it.
func (c *client) doRID(ctx context.Context, method, path, contentType, rid string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if rid != "" {
		req.Header.Set(telemetry.RequestIDHeader, rid)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		e := &errStatus{code: resp.StatusCode}
		json.Unmarshal(raw, &e.body)
		return e
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

func (c *client) postJSON(ctx context.Context, path string, body, out any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, "application/json", blob, out)
}

func collectTrace(wname string, convert bool, limit uint64) (*trace.Trace, error) {
	w, err := repro.WorkloadByName(wname)
	if err != nil {
		return nil, err
	}
	p := w.Build()
	if convert {
		if p, _, err = repro.IfConvert(p, repro.IfConvConfig{}); err != nil {
			return nil, err
		}
	}
	return repro.CollectTrace(p, limit)
}

// batcher deterministically slices a trace into fixed-size batches,
// cycling from the start when exhausted. Instruction credit is
// apportioned so a whole cycle credits exactly tr.Insts; the verify
// replay walks the identical sequence.
type batcher struct {
	tr    *trace.Trace
	size  int
	pos   int
	insts uint64 // credited so far in the current cycle
}

func (b *batcher) next() ([]trace.Event, uint64) {
	n := len(b.tr.Events)
	end := b.pos + b.size
	if end > n {
		end = n
	}
	events := b.tr.Events[b.pos:end]
	credit := b.tr.Insts * uint64(end) / uint64(n)
	insts := credit - b.insts
	b.insts = credit
	b.pos = end
	if b.pos == n {
		b.pos, b.insts = 0, 0
	}
	return events, insts
}

// encodeBatch wraps an event slice in the P64T wire format.
func encodeBatch(events []trace.Event, insts uint64) ([]byte, error) {
	var buf bytes.Buffer
	bt := &trace.Trace{Name: "batch", Insts: insts, Events: events}
	if _, err := bt.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

type loadConfig struct {
	sessions  int
	events    uint64
	batch     int
	spec      string
	opts      serve.EvalOptions
	verify    bool
	cluster   bool
	idPrefix  string
	keep      bool
	ridPrefix string
	killPID   int
	killAfter float64
}

// Report is the load run summary (also the -json output shape).
type Report struct {
	Sessions     int     `json:"sessions"`
	Events       uint64  `json:"events"`
	Batches      uint64  `json:"batches"`
	Retries      uint64  `json:"retries_429"`
	Redeliveries uint64  `json:"redeliveries,omitempty"` // transport retries + deduplicated batches (cluster mode)
	Killed       int     `json:"killed_pid,omitempty"`   // backend PID this run SIGTERMed mid-stream
	Errors       uint64  `json:"errors"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP90Ms float64 `json:"latency_p90_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
	Verified     bool    `json:"verified,omitempty"`
}

func runLoad(ctx context.Context, c *client, tr *trace.Trace, cfg loadConfig) (*Report, error) {
	perSession := cfg.events / uint64(cfg.sessions)
	if perSession == 0 {
		perSession = 1
	}

	// Cluster-mode failure injection: once the fleet has delivered
	// killAfter of its total batches, SIGTERM the named backend exactly
	// once. The run must ride through it.
	perSessionBatches := (perSession + uint64(cfg.batch) - 1) / uint64(cfg.batch)
	killAt := uint64(float64(perSessionBatches*uint64(cfg.sessions)) * cfg.killAfter)
	var fleetBatches atomic.Uint64
	var killOnce sync.Once
	maybeKill := func() {
		if cfg.killPID == 0 || fleetBatches.Load() < killAt {
			return
		}
		killOnce.Do(func() { syscall.Kill(cfg.killPID, syscall.SIGTERM) })
	}

	// retriable reports whether cluster mode should redeliver the batch:
	// transport failures (the backend died mid-request) and gateway
	// errors (the router had no healthy owner yet). Seq dedup on the
	// backends makes redelivery safe.
	retriable := func(err error) bool {
		if !cfg.cluster {
			return false
		}
		var es *errStatus
		if !errors.As(err, &es) {
			return true // transport-level failure
		}
		return es.code == http.StatusBadGateway || es.code == http.StatusServiceUnavailable
	}

	type workerResult struct {
		sent       uint64
		batches    uint64
		retries    uint64
		redelivery uint64
		latencies  []float64
		final      serve.SessionJSON
		err        error
	}
	results := make([]workerResult, cfg.sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.sessions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := &results[i]
			backoff := func() bool {
				select {
				case <-time.After(5 * time.Millisecond):
					return true
				case <-ctx.Done():
					res.err = ctx.Err()
					return false
				}
			}
			var sess serve.SessionJSON
			req := serve.SessionRequest{Spec: cfg.spec, EvalOptions: cfg.opts}
			if cfg.cluster {
				req.ID = fmt.Sprintf("%s-%d", cfg.idPrefix, i)
			}
			for {
				res.err = c.postJSON(ctx, "/v1/sessions", req, &sess)
				if res.err == nil || !retriable(res.err) {
					break
				}
				res.redelivery++
				if !backoff() {
					return
				}
			}
			if res.err != nil {
				return
			}
			b := &batcher{tr: tr, size: cfg.batch}
			var seq uint64
			for res.sent < perSession {
				events, insts := b.next()
				blob, err := encodeBatch(events, insts)
				if err != nil {
					res.err = err
					return
				}
				seq++
				path := "/v1/sessions/" + sess.ID + "/events"
				if cfg.cluster {
					path = fmt.Sprintf("%s?seq=%d", path, seq)
				}
				// One rid per batch, fixed before the retry loop: every
				// redelivery of this batch carries the same ID.
				var rid string
				if cfg.ridPrefix != "" {
					rid = fmt.Sprintf("%s-s%d-q%d", cfg.ridPrefix, i, seq)
				}
				for {
					t0 := time.Now()
					err = c.doRID(ctx, http.MethodPost, path, "application/octet-stream", rid, blob, nil)
					if err == nil {
						res.latencies = append(res.latencies, float64(time.Since(t0).Microseconds())/1000)
						break
					}
					var es *errStatus
					if errors.As(err, &es) && es.code == http.StatusTooManyRequests {
						res.retries++
						if !backoff() {
							return
						}
						continue
					}
					if retriable(err) {
						res.redelivery++
						if !backoff() {
							return
						}
						continue
					}
					res.err = err
					return
				}
				res.sent += uint64(len(events))
				res.batches++
				fleetBatches.Add(1)
				maybeKill()
			}
			if !cfg.cluster {
				method := http.MethodDelete
				if cfg.keep {
					method = http.MethodGet
				}
				res.err = c.do(ctx, method, "/v1/sessions/"+sess.ID, "", nil, &res.final)
				return
			}
			// Cluster teardown is split so every step is idempotent: read
			// the final metrics with a retriable GET, then delete, where a
			// 404 after a redelivery means the first attempt won.
			for {
				res.err = c.do(ctx, http.MethodGet, "/v1/sessions/"+sess.ID, "", nil, &res.final)
				if res.err == nil || !retriable(res.err) {
					break
				}
				res.redelivery++
				if !backoff() {
					return
				}
			}
			if res.err != nil || cfg.keep {
				return
			}
			deleted := false
			for {
				err := c.do(ctx, http.MethodDelete, "/v1/sessions/"+sess.ID, "", nil, nil)
				var es *errStatus
				if err == nil || (deleted && errors.As(err, &es) && es.code == http.StatusNotFound) {
					return
				}
				if !retriable(err) {
					res.err = err
					return
				}
				deleted = true // the lost attempt may have landed
				res.redelivery++
				if !backoff() {
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{Sessions: cfg.sessions, ElapsedSec: elapsed.Seconds()}
	var lat []float64
	for i := range results {
		res := &results[i]
		if res.err != nil {
			rep.Errors++
			continue
		}
		rep.Events += res.sent
		rep.Batches += res.batches
		rep.Retries += res.retries
		rep.Redeliveries += res.redelivery
		lat = append(lat, res.latencies...)
	}
	if cfg.killPID != 0 && fleetBatches.Load() >= killAt {
		rep.Killed = cfg.killPID
	}
	if rep.Errors > 0 {
		for i := range results {
			if results[i].err != nil {
				return rep, fmt.Errorf("session worker %d: %w", i, results[i].err)
			}
		}
	}
	rep.EventsPerSec = float64(rep.Events) / elapsed.Seconds()
	rep.LatencyP50Ms = stats.Percentile(lat, 50)
	rep.LatencyP90Ms = stats.Percentile(lat, 90)
	rep.LatencyP99Ms = stats.Percentile(lat, 99)

	if cfg.verify {
		want, err := localReplay(tr, cfg, perSession)
		if err != nil {
			return rep, err
		}
		for i := range results {
			if results[i].final.Metrics == nil {
				return rep, fmt.Errorf("session worker %d: no final metrics", i)
			}
			if err := compareMetrics(*results[i].final.Metrics, want); err != nil {
				return rep, fmt.Errorf("session worker %d: %w", i, err)
			}
		}
		rep.Verified = true
	}
	return rep, nil
}

// localReplay walks the exact batch sequence a load worker sends through
// the evaluator directly; every session sends the same sequence, so one
// replay checks them all.
func localReplay(tr *trace.Trace, cfg loadConfig, perSession uint64) (core.Metrics, error) {
	ecfg, err := cfg.opts.Config()
	if err != nil {
		return core.Metrics{}, err
	}
	if ecfg.Predictor, err = sim.NewPredictor(cfg.spec); err != nil {
		return core.Metrics{}, err
	}
	e := core.NewEvaluator(ecfg)
	b := &batcher{tr: tr, size: cfg.batch}
	var sent uint64
	for sent < perSession {
		events, insts := b.next()
		for i := range events {
			e.Feed(&events[i])
		}
		e.AddInsts(insts)
		sent += uint64(len(events))
	}
	return e.Metrics(), nil
}

// compareMetrics requires the server's metrics to be byte-identical to
// the local ones under the canonical JSON encoding.
func compareMetrics(got serve.MetricsJSON, want core.Metrics) error {
	gotBytes, err := json.Marshal(got)
	if err != nil {
		return err
	}
	wantBytes, err := json.Marshal(serve.MetricsToJSON(want))
	if err != nil {
		return err
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		return fmt.Errorf("metrics diverge from local replay:\nserver %s\nlocal  %s", gotBytes, wantBytes)
	}
	return nil
}

// runSmoke exercises every endpoint once: listings, the full session
// lifecycle over both wire formats with a byte-identical metrics check,
// a sweep, and the /metrics families. Any failure is fatal.
func runSmoke(ctx context.Context, c *client, out io.Writer, spec, wname string) error {
	step := func(name string, err error) error {
		if err != nil {
			return fmt.Errorf("smoke %s: %w", name, err)
		}
		fmt.Fprintf(out, "ok %s\n", name)
		return nil
	}

	if err := step("healthz", c.do(ctx, http.MethodGet, "/healthz", "", nil, nil)); err != nil {
		return err
	}
	var preds serve.PredictorsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/predictors", "", nil, &preds); err == nil && len(preds.Kinds) == 0 {
		err = fmt.Errorf("no predictor kinds listed")
		return step("predictors", err)
	} else if err := step("predictors", err); err != nil {
		return err
	}
	if err := step("workloads", c.do(ctx, http.MethodGet, "/v1/workloads", "", nil, nil)); err != nil {
		return err
	}

	tr, err := collectTrace(wname, true, 0)
	if err != nil {
		return err
	}
	opts := serve.EvalOptions{SFPF: true, PGU: "all", PerBranch: true}

	var sess serve.SessionJSON
	err = c.postJSON(ctx, "/v1/sessions", serve.SessionRequest{Spec: spec, EvalOptions: opts}, &sess)
	if err := step("create session", err); err != nil {
		return err
	}

	// JSON batch: the first events, verbatim.
	cut := len(tr.Events) / 4
	jsonBatch := serve.BatchRequest{Events: make([]serve.EventJSON, cut)}
	for i := 0; i < cut; i++ {
		jsonBatch.Events[i] = serve.EventToJSON(&tr.Events[i])
	}
	var br serve.BatchResponse
	err = c.postJSON(ctx, "/v1/sessions/"+sess.ID+"/events", jsonBatch, &br)
	if err == nil && br.Events != cut {
		err = fmt.Errorf("acked %d events, want %d", br.Events, cut)
	}
	if err := step("post JSON batch", err); err != nil {
		return err
	}

	// Binary batch: the rest of the trace plus the instruction credit.
	blob, err := encodeBatch(tr.Events[cut:], tr.Insts)
	if err == nil {
		err = c.do(ctx, http.MethodPost, "/v1/sessions/"+sess.ID+"/events?metrics=1",
			"application/octet-stream", blob, &br)
	}
	if err == nil && br.TotalEvents != uint64(len(tr.Events)) {
		err = fmt.Errorf("session total %d events, want %d", br.TotalEvents, len(tr.Events))
	}
	if err := step("post binary batch", err); err != nil {
		return err
	}

	var got serve.SessionJSON
	err = c.do(ctx, http.MethodGet, "/v1/sessions/"+sess.ID, "", nil, &got)
	if err == nil && got.Metrics == nil {
		err = fmt.Errorf("no metrics in session read")
	}
	if err := step("read metrics", err); err != nil {
		return err
	}

	var sweep serve.SweepResponse
	err = c.postJSON(ctx, "/v1/sweep", serve.SweepRequest{
		Specs: []string{spec, "bimodal:10"}, Workload: wname,
		Convert: true, EvalOptions: opts,
	}, &sweep)
	if err == nil {
		if len(sweep.Rows) != 2 {
			err = fmt.Errorf("sweep returned %d rows, want 2", len(sweep.Rows))
		} else if sweep.Rows[0].Metrics.Branches == 0 {
			err = fmt.Errorf("sweep row has zero branches")
		}
	}
	if err := step("sweep", err); err != nil {
		return err
	}

	// Delete and verify the final metrics byte-identically: the session
	// saw the whole trace once, exactly like a direct replay.
	var final serve.SessionJSON
	err = c.do(ctx, http.MethodDelete, "/v1/sessions/"+sess.ID, "", nil, &final)
	if err == nil {
		if final.Metrics == nil {
			err = fmt.Errorf("no final metrics")
		} else {
			ecfg, cerr := opts.Config()
			if cerr != nil {
				err = cerr
			} else if ecfg.Predictor, cerr = sim.NewPredictor(spec); cerr != nil {
				err = cerr
			} else {
				e := core.NewEvaluator(ecfg)
				for i := range tr.Events {
					e.Feed(&tr.Events[i])
				}
				e.AddInsts(tr.Insts)
				err = compareMetrics(*final.Metrics, e.Metrics())
			}
		}
	}
	if err := step("delete and verify", err); err != nil {
		return err
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, family := range []string{
		"bpservd_requests_total",
		"bpservd_request_seconds_bucket",
		"bpservd_events_total",
		"bpservd_sessions_created_total",
		"bpservd_sessions_live",
		"bpservd_queue_depth",
	} {
		if !strings.Contains(text, family) {
			err = fmt.Errorf("/metrics missing family %s", family)
			break
		}
	}
	if err := step("metrics families", err); err != nil {
		return err
	}
	fmt.Fprintln(out, "smoke passed")
	return nil
}
