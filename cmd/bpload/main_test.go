package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/router"
	"repro/internal/serve"
)

func startServer(t *testing.T) string {
	t.Helper()
	s := serve.MustNew(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return strings.TrimPrefix(ts.URL, "http://")
}

func TestSmokeSequence(t *testing.T) {
	addr := startServer(t)
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-addr", addr, "-smoke", "-spec", "gshare:12:8", "-w", "scan",
	}, &sb)
	if err != nil {
		t.Fatalf("smoke failed: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"ok healthz", "ok create session", "ok post JSON batch",
		"ok post binary batch", "ok read metrics", "ok sweep",
		"ok delete and verify", "ok metrics families", "smoke passed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("smoke output missing %q:\n%s", want, out)
		}
	}
}

func TestLoadRunVerified(t *testing.T) {
	addr := startServer(t)
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-addr", addr, "-sessions", "3", "-events", "30000", "-batch", "512",
		"-spec", "gshare:12:8", "-w", "scan",
		"-verify", "-json",
	}, &sb)
	if err != nil {
		t.Fatalf("load failed: %v\n%s", err, sb.String())
	}
	var rep Report
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("bad -json output: %v\n%s", err, sb.String())
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d, want 0", rep.Errors)
	}
	if !rep.Verified {
		t.Error("metrics not verified")
	}
	if rep.Events < 30000 {
		t.Errorf("events = %d, want >= 30000", rep.Events)
	}
	if rep.EventsPerSec <= 0 || rep.LatencyP99Ms < rep.LatencyP50Ms {
		t.Errorf("implausible report: %+v", rep)
	}
}

// TestClusterRunVerified drives bpload's cluster mode through a real
// bprouter fronting two backends: explicit session IDs, per-batch seq
// numbers, and the byte-identical verify must all survive the ring
// spreading sessions across the fleet.
func TestClusterRunVerified(t *testing.T) {
	spill := t.TempDir()
	var urls []string
	for i := 0; i < 2; i++ {
		s := serve.MustNew(serve.Config{Shards: 2, SpillDir: spill})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			s.Close()
		})
		urls = append(urls, ts.URL)
	}
	rt, err := router.New(router.Config{Backends: urls, HealthEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	var sb strings.Builder
	err = run(context.Background(), []string{
		"-addr", strings.TrimPrefix(front.URL, "http://"),
		"-cluster", "-id-prefix", "cl",
		"-sessions", "4", "-events", "40000", "-batch", "512",
		"-spec", "gshare:12:8", "-w", "scan",
		"-verify", "-json",
	}, &sb)
	if err != nil {
		t.Fatalf("cluster load failed: %v\n%s", err, sb.String())
	}
	var rep Report
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("bad -json output: %v\n%s", err, sb.String())
	}
	if rep.Errors != 0 || !rep.Verified {
		t.Errorf("cluster run: errors=%d verified=%v, want 0/true", rep.Errors, rep.Verified)
	}
}

func TestBatcherCycles(t *testing.T) {
	tr, err := collectTrace("scan", true, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := &batcher{tr: tr, size: 100}
	var events, insts uint64
	for events < uint64(len(tr.Events)) {
		ev, in := b.next()
		events += uint64(len(ev))
		insts += in
	}
	if events != uint64(len(tr.Events)) {
		t.Errorf("one cycle yielded %d events, want %d", events, len(tr.Events))
	}
	if insts != tr.Insts {
		t.Errorf("one cycle credited %d insts, want %d", insts, tr.Insts)
	}
	if b.pos != 0 {
		t.Errorf("batcher did not wrap: pos = %d", b.pos)
	}
}

func TestVersionFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-version"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "bpload ") {
		t.Errorf("version output %q", sb.String())
	}
}

func TestBadArgs(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{}, // missing -addr
		{"-addr", "127.0.0.1:1", "-w", "nope"},
		{"-addr", "127.0.0.1:1", "-sessions", "0"},
		{"-nonexistent-flag"},
	} {
		if err := run(context.Background(), args, &sb); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
