package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// startDaemon runs the daemon on a random port and returns its bound
// address plus a shutdown function that waits for a clean exit.
func startDaemon(t *testing.T, extra ...string) (string, func() error, *strings.Builder) {
	t.Helper()
	portfile := filepath.Join(t.TempDir(), "port")
	ctx, cancel := context.WithCancel(context.Background())
	var sb strings.Builder
	var mu sync.Mutex
	out := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	args := append([]string{"-addr", "127.0.0.1:0", "-portfile", portfile, "-quiet"}, extra...)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, args, out) }()

	deadline := time.Now().Add(5 * time.Second)
	var addr string
	for {
		if b, err := os.ReadFile(portfile); err == nil {
			addr = strings.TrimSpace(string(b))
			break
		}
		select {
		case err := <-errc:
			cancel()
			t.Fatalf("daemon exited early: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("portfile never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop := func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(10 * time.Second):
			return fmt.Errorf("daemon did not exit")
		}
	}
	return addr, stop, &sb
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestDaemonServesAndShutsDown(t *testing.T) {
	addr, stop, sb := startDaemon(t)

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}

	if err := stop(); err != nil {
		t.Fatalf("unclean shutdown: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "listening on "+addr) {
		t.Errorf("missing listen line:\n%s", out)
	}
	if !strings.Contains(out, "drained") {
		t.Errorf("missing drain line:\n%s", out)
	}
}

func TestDaemonVersionFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-version"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "bpservd ") {
		t.Errorf("version output %q", sb.String())
	}
}

func TestDaemonBadArgs(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{"positional"},
		{"-addr", "999.999.999.999:bad"},
		{"-nonexistent-flag"},
	} {
		if err := run(context.Background(), args, &sb); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
