// Command bpservd serves the simulation engine over HTTP:
// prediction-as-a-service sessions, sweep evaluation, and /metrics
// observability (see internal/serve).
//
// Usage:
//
//	bpservd -addr 127.0.0.1:8080
//	bpservd -addr 127.0.0.1:0 -portfile /tmp/bpservd.port   # scripts read the bound address
//
// The daemon shuts down cleanly on SIGINT/SIGTERM: the HTTP server stops
// accepting work and drains in-flight handlers, then the session shards
// drain their queued batches, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bpservd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bpservd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	shards := fs.Int("shards", 0, "session-owning workers (0 = GOMAXPROCS)")
	maxSessions := fs.Int("max-sessions", 1024, "resident session cap")
	sessionBytes := fs.Int64("session-bytes", 256<<20, "approximate resident session memory cap")
	ttl := fs.Duration("ttl", 10*time.Minute, "idle session expiry (0 = default)")
	queue := fs.Int("queue", 64, "per-shard batch queue depth")
	maxBody := fs.Int64("max-body", 64<<20, "request body size cap in bytes")
	rate := fs.Float64("rate", 0, "API requests per second (0 = unlimited)")
	burst := fs.Int("burst", 128, "rate limiter burst")
	sweepTimeout := fs.Duration("sweep-timeout", 30*time.Second, "default sweep deadline")
	sweepWorkers := fs.Int("sweep-workers", 0, "sweep fan-out (0 = GOMAXPROCS)")
	spill := fs.String("spill", "", "spill directory: evicted/expired/shutdown sessions are snapshotted here and warm-restored on touch (empty disables)")
	slow := fs.Duration("slow-request", 500*time.Millisecond, "log a structured slow_request line for requests over this latency (0 disables)")
	portfile := fs.String("portfile", "", "write the bound address to this file once listening")
	quiet := fs.Bool("quiet", false, "suppress per-request log lines")
	drain := fs.Duration("drain", 10*time.Second, "shutdown deadline for in-flight requests")
	version := buildinfo.Flag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("bpservd"))
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	logger := log.New(out, "bpservd: ", log.LstdFlags|log.Lmicroseconds)
	if *quiet {
		logger = log.New(io.Discard, "", 0)
	}
	srv, err := serve.New(serve.Config{
		Shards:          *shards,
		MaxSessions:     *maxSessions,
		MaxSessionBytes: *sessionBytes,
		SessionTTL:      *ttl,
		QueueDepth:      *queue,
		MaxBody:         *maxBody,
		RatePerSec:      *rate,
		RateBurst:       *burst,
		SweepTimeout:    *sweepTimeout,
		SweepWorkers:    *sweepWorkers,
		SpillDir:        *spill,
		SlowRequest:     *slow,
		Logger:          logger,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *portfile != "" {
		if err := writePortfile(*portfile, bound); err != nil {
			ln.Close()
			return err
		}
		defer os.Remove(*portfile)
	}
	fmt.Fprintf(out, "listening on %s\n", bound)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Shutdown ordering: stop the HTTP server first so no handler is
	// mid-enqueue, then drain the session shards.
	fmt.Fprintln(out, "shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		srv.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	live := srv.Close()
	fmt.Fprintf(out, "drained; %d sessions were live\n", live)
	return nil
}

// writePortfile publishes the bound address atomically so a watcher never
// reads a half-written file.
func writePortfile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
