// Command tracer captures branch/predicate-define traces to files and
// inspects them, decoupling (slow) emulation from (fast) predictor sweeps.
//
// Usage:
//
//	tracer -w scan -convert -o scan.trc      # capture
//	tracer -stats scan.trc                   # inspect
//	tracer -stats scan.trc -eval gshare -top 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/buildinfo"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracer", flag.ContinueOnError)
	wname := fs.String("w", "", "built-in workload to trace")
	file := fs.String("f", "", "P64 assembly file to trace")
	convert := fs.Bool("convert", false, "if-convert before tracing")
	outFile := fs.String("o", "", "write the trace to this file")
	statsFile := fs.String("stats", "", "read a trace file and print statistics")
	eval := fs.String("eval", "", "with -stats: replay through a predictor spec (e.g. gshare, agree:12:8)")
	top := fs.Int("top", 0, "with -eval: show the N most-mispredicting branches")
	limit := fs.Uint64("limit", 10_000_000, "dynamic instruction limit")
	version := buildinfo.Flag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("tracer"))
		return nil
	}

	if *statsFile != "" {
		return showStats(out, *statsFile, *eval, *top)
	}

	var p *repro.Program
	switch {
	case *wname != "":
		w, err := repro.WorkloadByName(*wname)
		if err != nil {
			return err
		}
		p = w.Build()
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		p, err = repro.Assemble(strings.TrimSuffix(*file, ".s"), string(src))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -w, -f, or -stats")
	}
	if *convert {
		cp, _, err := repro.IfConvert(p, repro.IfConvConfig{})
		if err != nil {
			return err
		}
		p = cp
	}
	tr, err := repro.CollectTrace(p, *limit)
	if err != nil {
		return err
	}
	if *outFile == "" {
		return fmt.Errorf("need -o file to write the trace")
	}
	f, err := os.Create(*outFile)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := tr.WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d events, %d bytes\n", *outFile, len(tr.Events), n)
	return nil
}

func showStats(out io.Writer, path, eval string, top int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadTrace(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trace:           %s\n", tr.Name)
	fmt.Fprintf(out, "instructions:    %d (nullified %d)\n", tr.Insts, tr.Nullified)
	fmt.Fprintf(out, "events:          %d\n", len(tr.Events))
	fmt.Fprintf(out, "cond branches:   %d (region-based %d)\n", tr.Branches, tr.RegionBranches)
	fmt.Fprintf(out, "predicate defs:  %d\n", tr.PredDefs)
	if eval == "" {
		return nil
	}
	pred, err := repro.NewPredictor(eval)
	if err != nil {
		return err
	}
	m := repro.Evaluate(tr, repro.EvalConfig{Predictor: pred, PerBranch: top > 0})
	fmt.Fprintf(out, "%s:    %.2f%% mispredicted (%d/%d)\n",
		pred.Name(), 100*m.MispredictRate(), m.Mispredicts, m.Branches)
	if top > 0 {
		fmt.Fprintf(out, "\n%-10s %10s %10s %10s %8s %s\n", "pc", "execs", "taken", "misses", "rate", "class")
		for _, bs := range m.TopMispredicted(top) {
			class := "branch"
			if bs.Region {
				class = "region"
			}
			fmt.Fprintf(out, "@%-9d %10d %10d %10d %7.2f%% %s\n",
				bs.PC, bs.Count, bs.Taken, bs.Mispredicts, 100*bs.MispredictRate(), class)
		}
	}
	return nil
}
