package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestCaptureAndStats(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trc")
	var sb strings.Builder
	if err := run([]string{"-w", "scan", "-convert", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote") {
		t.Errorf("no write confirmation:\n%s", sb.String())
	}

	sb.Reset()
	if err := run([]string{"-stats", path, "-eval", "gshare", "-top", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"scan.ifc", "cond branches:", "gshare-12.8", "region"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats missing %q:\n%s", want, out)
		}
	}
}

func TestStatsAllPredictors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trc")
	var sb strings.Builder
	if err := run([]string{"-w", "stream", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"bimodal", "tournament", "agree"} {
		sb.Reset()
		if err := run([]string{"-stats", path, "-eval", p}, &sb); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !strings.Contains(sb.String(), "mispredicted") {
			t.Errorf("%s produced no evaluation:\n%s", p, sb.String())
		}
	}
}

func TestTracerErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{},
		{"-w", "nope", "-o", "x"},
		{"-w", "stream"}, // missing -o
		{"-stats", "/no/such.trc"},
		{"-stats", "/no/such.trc", "-eval", "nope"},
	} {
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
