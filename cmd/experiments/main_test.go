package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"E1", "E3", "E12"} {
		if !strings.Contains(out, id) {
			t.Errorf("listing missing %s:\n%s", id, out)
		}
	}
}

func TestSingleExperimentMarkdown(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-id", "E1", "-format", "markdown", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "=== E1:") || !strings.Contains(out, "| workload |") {
		t.Errorf("markdown output wrong:\n%s", out)
	}
}

func TestSingleExperimentCSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-id", "E8", "-format", "csv", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "policy,rate") {
		t.Errorf("csv output wrong:\n%s", sb.String())
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{"-id", "E99"},
		{"-format", "nope", "-id", "E1"},
	} {
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

func TestOutdirWritesCSVs(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-id", "E3", "-quick", "-outdir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"E3a.csv", "E3b.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if !strings.Contains(string(data), "workload") && !strings.Contains(string(data), "table bits") {
			t.Errorf("%s lacks a header:\n%s", name, data)
		}
	}
}
