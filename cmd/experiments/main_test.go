package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/results"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"E1", "E3", "E12"} {
		if !strings.Contains(out, id) {
			t.Errorf("listing missing %s:\n%s", id, out)
		}
	}
}

func TestSingleExperimentMarkdown(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-id", "E1", "-format", "markdown", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "=== E1:") || !strings.Contains(out, "| workload |") {
		t.Errorf("markdown output wrong:\n%s", out)
	}
}

func TestSingleExperimentCSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-id", "E8", "-format", "csv", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "policy,rate") {
		t.Errorf("csv output wrong:\n%s", sb.String())
	}
}

func TestIDListAndRange(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-id", "E2a,E8", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "=== E2:") || !strings.Contains(out, "=== E8:") {
		t.Errorf("comma list did not run both experiments:\n%s", out)
	}
	if strings.Contains(out, "=== E5:") {
		t.Errorf("comma list ran an unselected experiment:\n%s", out)
	}

	sb.Reset()
	if err := run([]string{"-id", "E9-E10", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	if !strings.Contains(out, "=== E9:") || !strings.Contains(out, "=== E10:") {
		t.Errorf("range did not run both experiments:\n%s", out)
	}
}

func TestStoreRecordsRun(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-id", "E8", "-quick", "-store", dir, "-run-id", "t1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "recorded run t1") {
		t.Errorf("no store confirmation in output:\n%s", sb.String())
	}
	recs, err := results.Open(dir).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Experiment != "E8" || recs[0].RunID != "t1" {
		t.Fatalf("store contents wrong: %+v", recs)
	}
	if !recs[0].Quick || recs[0].ConfigHash == "" || len(recs[0].Tables) != 1 {
		t.Fatalf("record incomplete: %+v", recs[0])
	}
	if recs[0].Tables[0].Name != "E8" || len(recs[0].Tables[0].Rows) == 0 {
		t.Fatalf("table not captured: %+v", recs[0].Tables[0])
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{"-id", "E99"},
		{"-id", "E7-E3"},
		{"-format", "nope", "-id", "E1"},
	} {
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

func TestOutdirWritesCSVs(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-id", "E3", "-quick", "-outdir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"E3a.csv", "E3b.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if !strings.Contains(string(data), "workload") && !strings.Contains(string(data), "table bits") {
			t.Errorf("%s lacks a header:\n%s", name, data)
		}
	}
}
