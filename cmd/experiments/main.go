// Command experiments regenerates every reconstructed table/figure from
// the paper (experiments E1–E14, see DESIGN.md) and prints them as text,
// markdown, or CSV. With -store it also appends each experiment's
// result to the JSONL results store that `bpstats` lists and diffs.
//
// Usage:
//
//	experiments [-format text|markdown|csv] [-quick] [-id E2a,E5 | -id E3-E7] [-list]
//	            [-timeout 5m] [-outdir results] [-store results/runs]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	format := fs.String("format", "text", "output format: text, markdown, or csv")
	quick := fs.Bool("quick", false, "trim parameter sweeps for a fast run")
	id := fs.String("id", "", "experiments to run: IDs, comma lists, and ranges (e.g. E3, E2a,E5, E3-E7); default all")
	list := fs.Bool("list", false, "list experiments and exit")
	limit := fs.Uint64("limit", 0, "emulation step limit per program (0 = default)")
	outdir := fs.String("outdir", "", "additionally write each table as CSV into this directory")
	store := fs.String("store", "", "append results to the JSONL store in this directory (e.g. results/runs)")
	runID := fs.String("run-id", "", "run identifier for -store records (default: generated)")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	version := buildinfo.Flag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("experiments"))
		return nil
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Fprintf(out, "%-4s %s\n     paper: %s\n     expect: %s\n", e.ID, e.Title, e.Paper, e.Expect)
		}
		return nil
	}

	render := func(t *stats.Table) (string, error) {
		switch *format {
		case "markdown":
			return t.Markdown(), nil
		case "csv":
			return t.CSV(), nil
		case "text":
			return t.String(), nil
		}
		return "", fmt.Errorf("unknown format %q", *format)
	}
	// Validate the format and selection before the expensive run.
	if _, err := render(stats.NewTable("probe", "c")); err != nil {
		return err
	}
	exps, err := harness.Select(*id)
	if err != nil {
		return err
	}

	start := time.Now()
	cfg := harness.Config{Quick: *quick, Limit: *limit}
	res, err := harness.RunSelected(ctx, cfg, exps)
	if err != nil {
		return err
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}
	for _, r := range res {
		fmt.Fprintf(out, "=== %s: %s ===\n", r.Experiment.ID, r.Experiment.Title)
		fmt.Fprintf(out, "paper analogue: %s\nexpected shape: %s\n\n", r.Experiment.Paper, r.Experiment.Expect)
		for i, t := range r.Tables {
			s, err := render(t)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, s)
			if *outdir != "" {
				path := filepath.Join(*outdir, r.TableName(i)+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					return err
				}
			}
		}
	}

	if *store != "" {
		rid := *runID
		if rid == "" {
			rid = results.NewRunID(start)
		}
		recs := make([]results.Record, len(res))
		for i, r := range res {
			recs[i] = r.Record(rid, start, cfg)
		}
		if err := results.Open(*store).Append(recs...); err != nil {
			return err
		}
		fmt.Fprintf(out, "recorded run %s (%d experiments) in %s\n", rid, len(recs), results.Open(*store).Path())
	}
	return nil
}
