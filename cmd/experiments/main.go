// Command experiments regenerates every reconstructed table/figure from
// the paper (experiments E1–E14, see DESIGN.md) and prints them as text,
// markdown, or CSV.
//
// Usage:
//
//	experiments [-format text|markdown|csv] [-quick] [-id E3] [-list] [-timeout 5m]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/buildinfo"
	"repro/internal/harness"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	format := fs.String("format", "text", "output format: text, markdown, or csv")
	quick := fs.Bool("quick", false, "trim parameter sweeps for a fast run")
	id := fs.String("id", "", "run a single experiment (e.g. E3); default all")
	list := fs.Bool("list", false, "list experiments and exit")
	limit := fs.Uint64("limit", 0, "emulation step limit per program (0 = default)")
	outdir := fs.String("outdir", "", "additionally write each table as CSV into this directory")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	version := buildinfo.Flag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("experiments"))
		return nil
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Fprintf(out, "%-4s %s\n     paper: %s\n     expect: %s\n", e.ID, e.Title, e.Paper, e.Expect)
		}
		return nil
	}

	render := func(t *stats.Table) (string, error) {
		switch *format {
		case "markdown":
			return t.Markdown(), nil
		case "csv":
			return t.CSV(), nil
		case "text":
			return t.String(), nil
		}
		return "", fmt.Errorf("unknown format %q", *format)
	}
	// Validate the format before the expensive run.
	if _, err := render(stats.NewTable("probe", "c")); err != nil {
		return err
	}

	cfg := harness.Config{Quick: *quick, Limit: *limit}
	var results []harness.Result
	if *id != "" {
		e, err := harness.ByID(*id)
		if err != nil {
			return err
		}
		s, err := harness.NewSuiteContext(ctx, cfg)
		if err != nil {
			return err
		}
		tables, err := e.Run(ctx, s, cfg)
		if err != nil {
			return err
		}
		results = []harness.Result{{Experiment: e, Tables: tables}}
	} else {
		var err error
		results, err = harness.RunAllContext(ctx, cfg)
		if err != nil {
			return err
		}
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}
	for _, r := range results {
		fmt.Fprintf(out, "=== %s: %s ===\n", r.Experiment.ID, r.Experiment.Title)
		fmt.Fprintf(out, "paper analogue: %s\nexpected shape: %s\n\n", r.Experiment.Paper, r.Experiment.Expect)
		for i, t := range r.Tables {
			s, err := render(t)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, s)
			if *outdir != "" {
				name := r.Experiment.ID
				if len(r.Tables) > 1 {
					name += string(rune('a' + i))
				}
				path := filepath.Join(*outdir, name+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
