package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run %v: %v\noutput:\n%s", args, err, sb.String())
	}
	return sb.String()
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"nonsense"},
		{"characterize"}, // neither -w nor -trace
		{"characterize", "-w", "x", "-trace", "y"}, // both
		{"characterize", "-w", "nope-such-workload"},
		{"characterize", "-w", "scan", "-depths", "1,zap"},
		{"generate", "-point", "syn:bogus:p=1"},
		{"probe"},
		{"probe", "-spec", "gshare:1:1", "-all"},
		{"probe", "-spec", "martian:3"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run %v succeeded, want error", args)
		}
	}
}

func TestCharacterizeSynthetic(t *testing.T) {
	out := runOut(t, "characterize", "-w", "syn:periodic:pat=110", "-branches")
	if !strings.Contains(out, "syn:periodic:pat=110") {
		t.Errorf("workload name missing from output:\n%s", out)
	}
	if !strings.Contains(out, "aggregate") {
		t.Errorf("no aggregate row:\n%s", out)
	}
	// A clean period-3 pattern is fully determined by 4 bits of history.
	if !strings.Contains(out, "H(Y|h4)") {
		t.Errorf("conditioned-entropy columns missing:\n%s", out)
	}
}

func TestGenerateListAndRoundTripThroughFile(t *testing.T) {
	list := runOut(t, "generate", "-list")
	if !strings.Contains(list, "syn:bias:p=0.7") || !strings.Contains(list, "syn:xcorr:eps=0.02") {
		t.Errorf("catalog listing incomplete:\n%s", list)
	}

	path := filepath.Join(t.TempDir(), "lag.trace")
	gen := runOut(t, "generate", "-point", "syn:lag:k=3:eps=0:n=512", "-o", path)
	if !strings.Contains(gen, "point: syn:lag:k=3:eps=0:n=512") {
		t.Errorf("canonical point name missing:\n%s", gen)
	}
	if !strings.Contains(gen, "wrote "+path) {
		t.Errorf("trace file not reported written:\n%s", gen)
	}
	// The serialized trace characterizes identically through -trace.
	ch := runOut(t, "characterize", "-trace", path)
	if !strings.Contains(ch, "branch events") {
		t.Errorf("trace-file characterization failed:\n%s", ch)
	}
}

func TestGenerateSolvesTarget(t *testing.T) {
	// A balanced structured target solves to the lag family.
	out := runOut(t, "generate", "-rate", "0.5", "-cond", "0.3", "-depth", "5")
	if !strings.Contains(out, "point: syn:lag:k=5:") {
		t.Errorf("target did not solve to lag-5:\n%s", out)
	}
}

func TestProbeAllKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("probe sweep in -short mode")
	}
	out := runOut(t, "probe", "-all")
	if strings.Count(out, "[ok]") != strings.Count(out, "\n") {
		t.Errorf("not every probed kind verified ok:\n%s", out)
	}
	for _, kind := range []string{"gshare", "tournament", "perceptron"} {
		if !strings.Contains(out, kind) {
			t.Errorf("kind %s missing from probe -all output:\n%s", kind, out)
		}
	}
}

func TestProbeSingleSpec(t *testing.T) {
	out := runOut(t, "probe", "-spec", "gselect:10:4")
	if !strings.Contains(out, "histbits=4") || !strings.Contains(out, "tablebits=10") {
		t.Errorf("probe inferred wrong structure:\n%s", out)
	}
	if !strings.Contains(out, "[ok]") {
		t.Errorf("probe verdict not ok:\n%s", out)
	}
}

func TestVersionFlag(t *testing.T) {
	if out := runOut(t, "-version"); !strings.Contains(out, "bpchar") {
		t.Errorf("version output: %q", out)
	}
}
