// Command bpchar is the workload-characterization toolbox built on
// internal/charz: it measures per-branch predictability metrics for any
// workload or serialized trace, generates parameterized synthetic
// traces at a chosen (or solved) point in characterization space, and
// probes predictor implementations black-box to verify their claimed
// parameters.
//
// Usage:
//
//	bpchar characterize [-w name | -trace file] [-limit N] [-gdepth D] [-branches]
//	bpchar generate     [-point syn:... | -rate R -cond H -depth D] [-n N] [-seed S] [-o file]
//	bpchar generate     -list
//	bpchar probe        [-spec kind:params | -all]
//
// characterize accepts any registered workload name, a synthetic point
// name (syn:...), or a serialized trace file, and prints aggregate and
// per-branch entropy/separability metrics. generate resolves a point —
// given literally via -point or solved from a (-rate, -cond, -depth)
// target — and reports its canonical name, optionally writing the
// collected trace to -o. probe infers a predictor's structure (history
// depth, table size, hysteresis) through the public Predict/Update
// interface only and checks it against the spec; -all verifies every
// registry kind and exits nonzero on any mismatch, which is the CI
// gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/charz"
	"repro/internal/charz/probe"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// errGate marks a verification failure: reported, then exit 1.
type errGate struct{ msg string }

func (e errGate) Error() string { return e.msg }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bpchar:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: bpchar <characterize|generate|probe> [flags]; see -h")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "characterize":
		return runCharacterize(rest, out)
	case "generate":
		return runGenerate(rest, out)
	case "probe":
		return runProbe(rest, out)
	case "-version", "--version":
		fmt.Fprintln(out, buildinfo.String("bpchar"))
		return nil
	default:
		return fmt.Errorf("unknown command %q (want characterize, generate, or probe)", cmd)
	}
}

// parseDepths turns "1,2,4,8" into a depth slice; empty means defaults.
func parseDepths(expr string) ([]int, error) {
	if expr == "" {
		return nil, nil
	}
	var ds []int
	for _, f := range strings.Split(expr, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad depth %q in -depths", f)
		}
		ds = append(ds, d)
	}
	return ds, nil
}

func runCharacterize(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bpchar characterize", flag.ContinueOnError)
	wname := fs.String("w", "", "workload name (registry or syn:... point)")
	tracePath := fs.String("trace", "", "serialized trace file instead of a workload")
	limit := fs.Uint64("limit", 3_000_000, "emulator step limit")
	depthsExpr := fs.String("depths", "", "local-history depths, comma-separated (default 1,2,4,8)")
	gdepth := fs.Int("gdepth", 0, "global-history depth (0 = default, negative disables)")
	branches := fs.Bool("branches", false, "print the per-branch table too")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*wname == "") == (*tracePath == "") {
		return fmt.Errorf("exactly one of -w or -trace is required")
	}
	depths, err := parseDepths(*depthsExpr)
	if err != nil {
		return err
	}
	var src trace.Source
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.ReadTrace(f)
		if err != nil {
			return err
		}
		src = tr
	} else {
		w, err := workload.ByName(*wname)
		if err != nil {
			return err
		}
		src = trace.Stream(w.Build(), *limit)
	}
	rep, err := charz.Characterize(src, charz.Options{Depths: depths, GlobalDepth: *gdepth})
	if err != nil {
		return err
	}
	if rep.Name == "" {
		rep.Name = *wname
	}
	printReport(out, rep, *branches)
	return nil
}

func printReport(out io.Writer, rep *charz.Report, branches bool) {
	fmt.Fprintf(out, "%s: %d branch events, %d static branches\n", rep.Name, rep.Events, len(rep.Branches))
	cols := []string{"branch", "count", "taken", "H(Y)"}
	for _, d := range rep.Depths {
		cols = append(cols, fmt.Sprintf("H(Y|h%d)", d))
	}
	if rep.GlobalDepth > 0 {
		cols = append(cols, fmt.Sprintf("H(Y|g%d)", rep.GlobalDepth))
	}
	cols = append(cols, "sep")
	t := stats.NewTable("characterization of "+rep.Name, cols...)
	row := func(label string, count uint64, rate, ent float64, cond []float64, global, sep float64) {
		cells := []string{label, stats.N(count), stats.Pct(rate), stats.F3(ent)}
		for _, c := range cond {
			cells = append(cells, stats.F3(c))
		}
		if rep.GlobalDepth > 0 {
			cells = append(cells, stats.F3(global))
		}
		cells = append(cells, stats.F3(sep))
		t.AddRow(cells...)
	}
	if branches {
		for _, b := range rep.Branches {
			row(fmt.Sprintf("0x%x", b.PC), b.Count, b.TakenRate, b.Entropy,
				b.CondEntropy, b.GlobalCondEntropy, b.Separability)
		}
	}
	row("aggregate", rep.Events, rep.TakenRate, rep.Entropy,
		rep.CondEntropy, rep.GlobalCondEntropy, rep.Separability)
	fmt.Fprint(out, t.String())
}

func runGenerate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bpchar generate", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the catalog of synthetic points and exit")
	point := fs.String("point", "", "synthetic point name (syn:family:...)")
	rate := fs.Float64("rate", 0, "target taken rate for Solve (0 = 0.5)")
	cond := fs.Float64("cond", -1, "target H(Y|history) for Solve (negative = no structure)")
	depth := fs.Int("depth", 0, "history depth at which the structure appears (default 4)")
	n := fs.Int("n", 0, "events per branch site (0 = default)")
	seed := fs.Uint64("seed", 0, "generator seed (0 = default)")
	outPath := fs.String("o", "", "write the collected serialized trace here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, p := range charz.Catalog() {
			fmt.Fprintf(out, "%-28s %s\n", p.Name(), p.Description())
		}
		return nil
	}
	var pt charz.Point
	var err error
	if *point != "" {
		pt, err = charz.ParsePoint(*point)
	} else {
		pt, err = charz.Solve(charz.Target{
			TakenRate: *rate, CondEntropy: *cond, Depth: *depth, N: *n, Seed: *seed,
		})
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "point: %s\n%s\n", pt.Name(), pt.Description())
	tr, err := trace.Collect(pt.Build(), 0)
	if err != nil {
		return err
	}
	rep, err := charz.Characterize(tr, charz.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "events: %d  taken: %s  H(Y): %s  H(Y|h%d): %s  sep: %s\n",
		rep.Events, stats.Pct(rep.TakenRate), stats.F3(rep.Entropy),
		rep.Depths[len(rep.Depths)-1], stats.F3(rep.CondEntropy[len(rep.CondEntropy)-1]),
		stats.F3(rep.Separability))
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if _, err := tr.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}
	return nil
}

func runProbe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bpchar probe", flag.ContinueOnError)
	specText := fs.String("spec", "", "predictor spec to probe (e.g. gshare:12:8)")
	all := fs.Bool("all", false, "probe every registry kind at its defaults")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*specText == "") == !*all {
		return fmt.Errorf("exactly one of -spec or -all is required")
	}
	var specs []sim.Spec
	if *all {
		for _, k := range sim.Kinds() {
			specs = append(specs, sim.Spec{Kind: k})
		}
	} else {
		spec, err := sim.Parse(*specText)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
	}
	var failed []string
	for _, spec := range specs {
		r, err := probe.Probe(spec)
		if err != nil {
			return err
		}
		exp, err := probe.Expected(spec)
		if err != nil {
			return err
		}
		verdict := "ok"
		if err := probe.Compare(r, exp); err != nil {
			verdict = err.Error()
			failed = append(failed, r.Spec.String())
		}
		fmt.Fprintf(out, "%-18s %s  [%s]\n", r.Spec, r, verdict)
	}
	if len(failed) > 0 {
		return errGate{fmt.Sprintf("probe mismatch for %s", strings.Join(failed, ", "))}
	}
	return nil
}
