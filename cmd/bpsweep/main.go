// Command bpsweep sweeps branch predictor configurations over a workload's
// trace and prints a table of misprediction rates, with and without the
// paper's mechanisms. The grid runs on the engine's parallel sweep pool;
// rows print in grid order regardless of scheduling.
//
// Usage:
//
//	bpsweep -w bsearch -convert
//	bpsweep -w scan -convert -sizes 8,10,12 -hists 4,8,12
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/buildinfo"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bpsweep:", err)
		os.Exit(1)
	}
}

func parseInts(spec string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad list element %q", f)
		}
		if v < 1 || v > 28 {
			return nil, fmt.Errorf("size %d out of range [1,28]", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bpsweep", flag.ContinueOnError)
	wname := fs.String("w", "", "built-in workload name")
	convert := fs.Bool("convert", false, "if-convert before tracing")
	sizes := fs.String("sizes", "8,10,12,14", "gshare table bits to sweep")
	hists := fs.String("hists", "8", "history lengths to sweep")
	limit := fs.Uint64("limit", 10_000_000, "dynamic instruction limit")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "abort the sweep after this duration (0 = none)")
	version := buildinfo.Flag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("bpsweep"))
		return nil
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *wname == "" {
		return fmt.Errorf("need -w workload")
	}
	w, err := repro.WorkloadByName(*wname)
	if err != nil {
		return err
	}
	p := w.Build()
	if *convert {
		cp, _, err := repro.IfConvert(p, repro.IfConvConfig{})
		if err != nil {
			return err
		}
		p = cp
	}
	tr, err := repro.CollectTrace(p, *limit)
	if err != nil {
		return err
	}
	tb, err := parseInts(*sizes)
	if err != nil {
		return err
	}
	hb, err := parseInts(*hists)
	if err != nil {
		return err
	}

	var specs []sim.Spec
	for _, t := range tb {
		for _, h := range hb {
			specs = append(specs, sim.For("gshare", t, h))
		}
	}
	type row struct {
		name               string
		base, sf, pg, both repro.Metrics
	}
	// The trace is shared read-only: every evaluation gets its own replay
	// cursor and a fresh predictor, so grid points are independent jobs.
	rows, err := sim.Map(ctx, specs, *workers, func(_ context.Context, sp sim.Spec) (row, error) {
		mk := func() repro.Predictor { return sp.MustNew() }
		return row{
			name: mk().Name(),
			base: repro.Evaluate(tr, repro.EvalConfig{Predictor: mk()}),
			sf: repro.Evaluate(tr, repro.EvalConfig{
				Predictor: mk(), UseSFPF: true, ResolveDelay: repro.DefaultResolveDelay,
			}),
			pg: repro.Evaluate(tr, repro.EvalConfig{
				Predictor: mk(), PGU: repro.PGUAll, PGUDelay: repro.DefaultPGUDelay,
			}),
			both: repro.Evaluate(tr, repro.EvalConfig{
				Predictor: mk(), UseSFPF: true, ResolveDelay: repro.DefaultResolveDelay,
				PGU: repro.PGUAll, PGUDelay: repro.DefaultPGUDelay,
			}),
		}, nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "workload %s: %d insts, %d cond branches (%d region-based), %d predicate defines\n\n",
		p.Name, tr.Insts, tr.Branches, tr.RegionBranches, tr.PredDefs)
	fmt.Fprintf(out, "%-16s %10s %10s %10s %10s %10s\n",
		"predictor", "base", "+sfpf", "+pgu", "+both", "coverage")
	for _, r := range rows {
		fmt.Fprintf(out, "%-16s %9.2f%% %9.2f%% %9.2f%% %9.2f%% %9.1f%%\n",
			r.name,
			100*r.base.MispredictRate(), 100*r.sf.MispredictRate(),
			100*r.pg.MispredictRate(), 100*r.both.MispredictRate(),
			100*r.both.FilterCoverage())
	}
	return nil
}
