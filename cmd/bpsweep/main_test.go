package main

import (
	"strings"
	"testing"
)

func TestSweepRuns(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-w", "scan", "-convert", "-sizes", "10,12", "-hists", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "gshare-10.8") || !strings.Contains(out, "gshare-12.8") {
		t.Errorf("sweep rows missing:\n%s", out)
	}
	if !strings.Contains(out, "region-based") {
		t.Errorf("header missing:\n%s", out)
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("4, 8,12")
	if err != nil || len(got) != 3 || got[1] != 8 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "0", "99"} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) succeeded", bad)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{},
		{"-w", "nope"},
		{"-w", "scan", "-sizes", "abc"},
		{"-w", "scan", "-hists", ""},
	} {
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
