package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/router"
	"repro/internal/serve"
)

func doJSON(t *testing.T, method, url string, body any, wantCode int) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: got %d, want %d; body: %s", method, url, resp.StatusCode, wantCode, raw)
	}
}

func batch(outcomes map[uint64][]bool, order []uint64) serve.BatchRequest {
	var req serve.BatchRequest
	step := uint64(0)
	for _, pc := range order {
		for _, tk := range outcomes[pc] {
			step++
			req.Events = append(req.Events, serve.EventJSON{Kind: "branch", Step: step, PC: pc, Taken: tk})
		}
	}
	req.Insts = step
	return req
}

// TestOnceAgainstFleet stands up a real two-backend cluster behind a
// router, seeds each backend with a hand-computed per-branch session
// against the always-taken predictor, and checks the -once frame: all
// targets up, one row per tier, and the fleet H2P table merged across
// backends in mispredicts-descending order.
//
//	backend A: 0x100 {t,f,f,t,f} -> 3 misp / 5 ev;  0x300 {t,t,t} -> 0 / 3
//	backend B: 0x100 {f,f}       -> 2 misp / 2 ev;  0x200 {f,t,f,f} -> 3 / 4
//	fleet:     0x100 5/7 (71.4%), 0x200 3/4 (75.0%), 0x300 0/3
func TestOnceAgainstFleet(t *testing.T) {
	var backends []*httptest.Server
	for i := 0; i < 2; i++ {
		s := serve.MustNew(serve.Config{Shards: 1})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		backends = append(backends, ts)
	}
	rt, err := router.New(router.Config{
		Backends:    []string{backends[0].URL, backends[1].URL},
		HealthEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { front.Close(); rt.Close() })

	seed := []struct {
		base     string
		id       string
		outcomes map[uint64][]bool
		order    []uint64
	}{
		{backends[0].URL, "h2p-a", map[uint64][]bool{
			0x100: {true, false, false, true, false},
			0x300: {true, true, true},
		}, []uint64{0x100, 0x300}},
		{backends[1].URL, "h2p-b", map[uint64][]bool{
			0x100: {false, false},
			0x200: {false, true, false, false},
		}, []uint64{0x100, 0x200}},
	}
	for _, sd := range seed {
		doJSON(t, "POST", sd.base+"/v1/sessions",
			serve.SessionRequest{ID: sd.id, Spec: "taken", EvalOptions: serve.EvalOptions{PerBranch: true}},
			http.StatusCreated)
		doJSON(t, "POST", sd.base+"/v1/sessions/"+sd.id+"/events", batch(sd.outcomes, sd.order), http.StatusOK)
	}
	// Give the router some traffic so its latency histogram has data.
	doJSON(t, "GET", front.URL+"/v1/sessions", nil, http.StatusOK)

	var out bytes.Buffer
	targets := strings.Join([]string{front.URL, backends[0].URL, backends[1].URL}, ",")
	if err := run(context.Background(), []string{"-targets", targets, "-once", "-k", "2"}, &out); err != nil {
		t.Fatalf("run -once: %v\n%s", err, out.String())
	}
	frame := out.String()

	if !strings.Contains(frame, "3/3 targets up") {
		t.Errorf("frame misses up count:\n%s", frame)
	}
	for _, svc := range []string{"bprouter", "bpservd"} {
		if !strings.Contains(frame, svc) {
			t.Errorf("frame misses a %s row:\n%s", svc, frame)
		}
	}
	// k=2 keeps 0x100 and 0x200, in that order, with merged tallies.
	for _, re := range []string{
		`0x100\s+5\s+7\s+71\.4%`,
		`0x200\s+3\s+4\s+75\.0%`,
	} {
		if !regexp.MustCompile(re).MatchString(frame) {
			t.Errorf("frame misses H2P row %q:\n%s", re, frame)
		}
	}
	if strings.Contains(frame, "0x300") {
		t.Errorf("k=2 frame should not list 0x300:\n%s", frame)
	}
	if i100, i200 := strings.Index(frame, "0x100"), strings.Index(frame, "0x200"); i100 > i200 {
		t.Errorf("H2P rows out of order (0x100 at %d, 0x200 at %d):\n%s", i100, i200, frame)
	}
	// Both tiers served real requests, so no latency column stays empty.
	if strings.Contains(frame, "DOWN") {
		t.Errorf("healthy fleet rendered a DOWN row:\n%s", frame)
	}
}

// TestOnceDownTarget: a dead target renders a DOWN row and makes -once
// exit nonzero, so the frame doubles as a fleet health check.
func TestOnceDownTarget(t *testing.T) {
	s := serve.MustNew(serve.Config{Shards: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	var out bytes.Buffer
	err := run(context.Background(), []string{"-targets", ts.URL + "," + deadURL, "-once"}, &out)
	if err == nil {
		t.Fatalf("-once with a dead target returned nil:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "1/2 targets failing") {
		t.Errorf("error %q, want 1/2 targets failing", err)
	}
	if !strings.Contains(out.String(), "DOWN") {
		t.Errorf("frame misses DOWN row:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "1/2 targets up") {
		t.Errorf("frame misses up count:\n%s", out.String())
	}
}

// TestOnceLintFailure: a target serving a malformed exposition page is
// treated as down, not rendered.
func TestOnceLintFailure(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "bpservd_events_total 1")
		fmt.Fprintln(w, "bpservd_events_total 2") // duplicate series, no HELP/TYPE
	}))
	t.Cleanup(bad.Close)

	var out bytes.Buffer
	err := run(context.Background(), []string{"-targets", bad.URL, "-once"}, &out)
	if err == nil || !strings.Contains(err.Error(), "lint") {
		t.Fatalf("lint failure not surfaced: err=%v\n%s", err, out.String())
	}
}

func TestParseTargets(t *testing.T) {
	got, err := parseTargets(" 127.0.0.1:9090, http://h:1/ ,https://x/metrics")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"http://127.0.0.1:9090/metrics",
		"http://h:1/metrics",
		"https://x/metrics",
	}
	for i, w := range want {
		if got[i].url != w {
			t.Errorf("target[%d] url %q, want %q", i, got[i].url, w)
		}
	}
	if _, err := parseTargets(" , "); err == nil {
		t.Error("empty target list accepted")
	}
}

// TestWindow: deltas between polls, falling back to cumulative on a
// counter reset or bucket-grid mismatch.
func TestWindow(t *testing.T) {
	les := []float64{0.001, 0.01}
	cur := []uint64{5, 9}
	if got := window(les, cur, les, []uint64{2, 3}); got[0] != 3 || got[1] != 6 {
		t.Errorf("window delta = %v, want [3 6]", got)
	}
	// Reset: previous counts exceed current -> cumulative view.
	if got := window(les, cur, les, []uint64{7, 8}); got[0] != 5 || got[1] != 9 {
		t.Errorf("window after reset = %v, want cur", got)
	}
	// Grid mismatch -> cumulative view.
	if got := window(les, cur, []float64{0.001, 0.02}, []uint64{1, 1}); got[0] != 5 || got[1] != 9 {
		t.Errorf("window with grid mismatch = %v, want cur", got)
	}
}
