// Command bptop is a terminal dashboard for a bpservd fleet. It polls
// /metrics on every target (router and backends alike), holds each page
// to the strict exposition lint, and renders one consolidated frame:
// per-target request throughput and latency quantiles (interpolated
// from histogram buckets), session and spill gauges, and the
// fleet-wide top mispredicted branches merged from the backends'
// bpservd_h2p_* series.
//
// Usage:
//
//	bptop -targets 127.0.0.1:9090,127.0.0.1:8081,127.0.0.1:8082
//	bptop -targets $ROUTER,$B1,$B2 -once        # one frame for scripts/CI
//
// Rates and windowed quantiles need two polls, so the first live frame
// (and every -once frame) shows cumulative values with "-" rates.
// In -once mode bptop exits nonzero if any target is down or its
// /metrics page fails the lint, which makes it double as a fleet
// health check.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bptop:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bptop", flag.ContinueOnError)
	targets := fs.String("targets", "", "comma-separated router/backend addresses, host:port or URL (required)")
	interval := fs.Duration("interval", 2*time.Second, "poll interval in live mode")
	once := fs.Bool("once", false, "scrape once, print one frame, exit nonzero if any target is down or fails the exposition lint")
	topK := fs.Int("k", 5, "fleet-wide top mispredicted branches to show")
	timeout := fs.Duration("timeout", 3*time.Second, "per-target scrape timeout")
	version := buildinfo.Flag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("bptop"))
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	tgts, err := parseTargets(*targets)
	if err != nil {
		return err
	}

	cl := &http.Client{Timeout: *timeout}
	cur := scrapeAll(ctx, cl, tgts)
	if *once {
		render(out, tgts, nil, cur, *topK)
		return scrapeErr(tgts, cur)
	}

	tick := time.NewTicker(*interval)
	defer tick.Stop()
	fmt.Fprint(out, "\x1b[2J\x1b[H")
	render(out, tgts, nil, cur, *topK)
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
		prev := cur
		cur = scrapeAll(ctx, cl, tgts)
		fmt.Fprint(out, "\x1b[2J\x1b[H")
		render(out, tgts, prev, cur, *topK)
	}
}

type target struct {
	name string // display form, as given
	url  string // normalized scrape URL
}

func parseTargets(list string) ([]target, error) {
	var out []target
	for _, raw := range strings.Split(list, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		u := raw
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		u = strings.TrimRight(u, "/")
		if !strings.HasSuffix(u, "/metrics") {
			u += "/metrics"
		}
		out = append(out, target{name: raw, url: u})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no targets: pass -targets host:port[,host:port...]")
	}
	return out, nil
}

// scrape is one target's parsed /metrics page (or the failure to get it).
type scrape struct {
	when time.Time
	fams map[string]*telemetry.Family
	err  error
}

func scrapeAll(ctx context.Context, cl *http.Client, tgts []target) []scrape {
	out := make([]scrape, len(tgts))
	done := make(chan int, len(tgts))
	for i := range tgts {
		go func(i int) {
			out[i] = scrapeOne(ctx, cl, tgts[i].url)
			done <- i
		}(i)
	}
	for range tgts {
		<-done
	}
	return out
}

func scrapeOne(ctx context.Context, cl *http.Client, url string) scrape {
	sc := scrape{when: time.Now()}
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		sc.err = err
		return sc
	}
	resp, err := cl.Do(req)
	if err != nil {
		sc.err = err
		return sc
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		sc.err = fmt.Errorf("status %d", resp.StatusCode)
		return sc
	}
	// ParseText enforces the strict exposition lint as it parses, so a
	// malformed page marks the target as failing rather than rendering
	// garbage numbers.
	fams, err := telemetry.ParseText(resp.Body)
	if err != nil {
		sc.err = fmt.Errorf("exposition lint: %w", err)
		return sc
	}
	sc.fams = make(map[string]*telemetry.Family, len(fams))
	for i := range fams {
		sc.fams[fams[i].Name] = &fams[i]
	}
	return sc
}

func scrapeErr(tgts []target, scr []scrape) error {
	var bad []string
	for i, s := range scr {
		if s.err != nil {
			bad = append(bad, fmt.Sprintf("%s: %v", tgts[i].name, s.err))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("%d/%d targets failing: %s", len(bad), len(tgts), strings.Join(bad, "; "))
	}
	return nil
}

// serviceOf sniffs which daemon a page came from by its family prefix.
func serviceOf(fams map[string]*telemetry.Family) string {
	for name := range fams {
		switch {
		case strings.HasPrefix(name, "bpservd_"):
			return "bpservd"
		case strings.HasPrefix(name, "bprouter_"):
			return "bprouter"
		}
	}
	return "?"
}

// sumFamily totals every sample of a counter/gauge family (summing over
// label sets, e.g. all endpoint/code cells of requests_total).
func sumFamily(fams map[string]*telemetry.Family, name string) (float64, bool) {
	f, ok := fams[name]
	if !ok {
		return 0, false
	}
	var total float64
	for i := range f.Samples {
		if f.Samples[i].Name == name {
			total += f.Samples[i].Value
		}
	}
	return total, true
}

// histAgg collapses a histogram family across its label sets into one
// cumulative bucket vector, keyed and ordered by le. Summing cumulative
// counts per le across label sets preserves monotonicity as long as
// every series shares the bucket grid, which the registry guarantees.
func histAgg(fams map[string]*telemetry.Family, name string) (les []float64, cums []uint64) {
	f, ok := fams[name]
	if !ok || f.Type != "histogram" {
		return nil, nil
	}
	acc := map[float64]uint64{}
	for i := range f.Samples {
		s := &f.Samples[i]
		if s.Name != name+"_bucket" {
			continue
		}
		le, err := strconv.ParseFloat(s.Label("le"), 64)
		if err != nil {
			continue
		}
		acc[le] += uint64(s.Value)
	}
	for le := range acc {
		les = append(les, le)
	}
	sort.Float64s(les)
	for _, le := range les {
		cums = append(cums, acc[le])
	}
	return les, cums
}

// window subtracts the previous poll's cumulative buckets so quantiles
// reflect only the last interval. On any mismatch or counter reset
// (backend restart) it falls back to the cumulative view.
func window(les []float64, cur []uint64, prevLes []float64, prev []uint64) []uint64 {
	if len(prev) != len(cur) || len(prevLes) != len(les) {
		return cur
	}
	out := make([]uint64, len(cur))
	for i := range cur {
		if prevLes[i] != les[i] || prev[i] > cur[i] {
			return cur
		}
		out[i] = cur[i] - prev[i]
	}
	return out
}

// branchAgg is one PC's fleet-wide H2P tally.
type branchAgg struct {
	pc     string
	key    uint64 // parsed PC for the ranking tiebreak
	misp   float64
	events float64
}

// mergeH2P folds every backend's bpservd_h2p_* series into one ranking:
// mispredicts descending, PC ascending on ties — the same order the
// per-session stats endpoint reports.
func mergeH2P(scr []scrape, k int) []branchAgg {
	acc := map[string]*branchAgg{}
	get := func(pc string) *branchAgg {
		b := acc[pc]
		if b == nil {
			key, _ := strconv.ParseUint(strings.TrimPrefix(pc, "0x"), 16, 64)
			b = &branchAgg{pc: pc, key: key}
			acc[pc] = b
		}
		return b
	}
	for _, s := range scr {
		if s.err != nil {
			continue
		}
		if f, ok := s.fams["bpservd_h2p_mispredicts"]; ok {
			for i := range f.Samples {
				get(f.Samples[i].Label("pc")).misp += f.Samples[i].Value
			}
		}
		if f, ok := s.fams["bpservd_h2p_events"]; ok {
			for i := range f.Samples {
				get(f.Samples[i].Label("pc")).events += f.Samples[i].Value
			}
		}
	}
	out := make([]branchAgg, 0, len(acc))
	for _, b := range acc {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].misp != out[j].misp {
			return out[i].misp > out[j].misp
		}
		return out[i].key < out[j].key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func render(w io.Writer, tgts []target, prev, cur []scrape, topK int) {
	up := 0
	for _, s := range cur {
		if s.err == nil {
			up++
		}
	}
	fmt.Fprintf(w, "bptop  %d/%d targets up  %s\n\n", up, len(tgts), cur[0].when.Format("15:04:05"))

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TARGET\tSERVICE\tVERSION\tREQS\tREQ/S\tP50\tP90\tP99\tSESS\tSPILL")
	var fleetEvents, fleetEventRate, fleetSessions float64
	haveEventRate := false
	for i, s := range cur {
		if s.err != nil {
			fmt.Fprintf(tw, "%s\tDOWN\t-\t-\t-\t-\t-\t-\t-\t-\n", tgts[i].name)
			continue
		}
		svc := serviceOf(s.fams)
		ver := "-"
		if f, ok := s.fams["build_info"]; ok && len(f.Samples) > 0 {
			ver = f.Samples[0].Label("version")
		}

		reqs, _ := sumFamily(s.fams, svc+"_requests_total")
		var p *scrape
		if i < len(prev) && prev[i].err == nil {
			p = &prev[i]
		}
		rate := "-"
		if p != nil {
			if dt := s.when.Sub(p.when).Seconds(); dt > 0 {
				if preqs, ok := sumFamily(p.fams, svc+"_requests_total"); ok && reqs >= preqs {
					rate = fmt.Sprintf("%.1f", (reqs-preqs)/dt)
				}
			}
		}

		les, cums := histAgg(s.fams, svc+"_request_seconds")
		if p != nil {
			ples, pcums := histAgg(p.fams, svc+"_request_seconds")
			cums = window(les, cums, ples, pcums)
		}
		p50 := fmtSecs(telemetry.BucketQuantile(les, cums, 0.50))
		p90 := fmtSecs(telemetry.BucketQuantile(les, cums, 0.90))
		p99 := fmtSecs(telemetry.BucketQuantile(les, cums, 0.99))

		sess, spill := "-", "-"
		if svc == "bpservd" {
			if v, ok := sumFamily(s.fams, "bpservd_sessions_live"); ok {
				sess = fmt.Sprintf("%.0f", v)
				fleetSessions += v
			}
			if v, ok := sumFamily(s.fams, "bpservd_spill_files"); ok {
				spill = fmt.Sprintf("%.0f", v)
			}
			if v, ok := sumFamily(s.fams, "bpservd_events_total"); ok {
				fleetEvents += v
				if p != nil {
					if pv, ok := sumFamily(p.fams, "bpservd_events_total"); ok && v >= pv {
						if dt := s.when.Sub(p.when).Seconds(); dt > 0 {
							fleetEventRate += (v - pv) / dt
							haveEventRate = true
						}
					}
				}
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.0f\t%s\t%s\t%s\t%s\t%s\t%s\n",
			tgts[i].name, svc, ver, reqs, rate, p50, p90, p99, sess, spill)
	}
	tw.Flush()

	evRate := "-"
	if haveEventRate {
		evRate = fmt.Sprintf("%.0f", fleetEventRate)
	}
	fmt.Fprintf(w, "\nfleet: events=%.0f events/s=%s sessions=%.0f\n", fleetEvents, evRate, fleetSessions)

	fmt.Fprintf(w, "\ntop mispredicted branches (fleet, k=%d):\n", topK)
	top := mergeH2P(cur, topK)
	if len(top) == 0 {
		fmt.Fprintln(w, "  (none — create sessions with per_branch metrics to populate)")
		return
	}
	bw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(bw, "  PC\tMISPREDICTS\tEVENTS\tRATE")
	for _, b := range top {
		rate := "-"
		if b.events > 0 {
			rate = fmt.Sprintf("%.1f%%", 100*b.misp/b.events)
		}
		fmt.Fprintf(bw, "  %s\t%.0f\t%.0f\t%s\n", b.pc, b.misp, b.events, rate)
	}
	bw.Flush()
}

// fmtSecs renders a latency in seconds at terminal-friendly precision.
func fmtSecs(v float64) string {
	switch {
	case v <= 0:
		return "-"
	case v < 1e-3:
		return fmt.Sprintf("%.0fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.2fms", v*1e3)
	default:
		return fmt.Sprintf("%.2fs", v)
	}
}
