package asm

import (
	"testing"
)

// FuzzParse checks that the assembler never panics on arbitrary input and
// that anything it accepts survives a Format/Parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"nop",
		"movi r1 = 5\nout r1\nhalt 0",
		"loop: add r1 = r1, 1\n(p1) br loop",
		"cmp.lt.unc p1, p2 = r3, -9",
		".data 100 = 1 2 3",
		"st [r2 + 0] = r3\nld r4 = [r2 + 0]",
		"br.region x\nx: trap",
		"cloop r9, @0",
		"(p63) halt 0",
		"pand p1 = p2, p3\npor p4 = p5, p6\npmov p7 = p8\npinit p9 = 1",
		"x: y: z: halt 0",
		"movi r1 = x\nbrr r1\nx: halt 0",
		"; comment only",
		"add r1 = r2, 0x7fffffffffffffff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse("fuzz", src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		text := Format(p)
		q, err := Parse("fuzz", text)
		if err != nil {
			t.Fatalf("accepted program does not reassemble: %v\noriginal:\n%s\nformatted:\n%s", err, src, text)
		}
		if Format(q) != text {
			t.Fatalf("format not a fixed point:\n%s\nvs\n%s", text, Format(q))
		}
	})
}
