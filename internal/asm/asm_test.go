package asm

import (
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/ifconv"
	"repro/internal/isa"
	"repro/internal/workload"
)

func TestParseBasicProgram(t *testing.T) {
	src := `
; sum 1..5
        movi r1 = 5
        movi r2 = 0
loop:
        add r2 = r2, r1
        sub r1 = r1, 1
        cmp.gt p1, p2 = r1, 0
        (p1) br loop
        out r2
        halt 0
`
	p, err := Parse("sum", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := emu.RunProgram(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 15 {
		t.Errorf("output = %v, want [15]", res.Output)
	}
}

func TestParseAllForms(t *testing.T) {
	src := `
.data 100 = 1 2 -3 0x10
start:
        nop
        add r1 = r2, r3
        add r1 = r2, -7
        sub r4 = r4, 1
        and r5 = r5, 0xff
        or r6 = r6, r1
        xor r7 = r7, r7
        shl r1 = r1, 2
        shr r1 = r1, 2
        sar r1 = r1, 1
        mul r2 = r2, 3
        div r2 = r2, r3
        mod r2 = r2, 7
        mov r9 = r1
        movi r10 = -42
        movi r11 = start
        cmp.eq p1, p2 = r1, r2
        cmp.ltu.unc p3, p4 = r1, 5
        cmp.ge.and p5, p6 = r1, r2
        cmp.ne.or p7, p8 = r1, 0
        ld r1 = [r2 + 8]
        st [r2 + -1] = r3
        (p3) br start
        br.region start
        brl r30 = start
        brr r30
        cloop r9, start
        cloop.region r9, start
        pand p9 = p1, p2
        por p10 = p3, p4
        pmov p11 = p5
        pinit p12 = 1
        out r1
        (p1) halt 3
        trap
`
	p, err := Parse("forms", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 35 {
		t.Fatalf("parsed %d instructions", len(p.Insts))
	}
	if p.Data[100][3] != 16 {
		t.Errorf("hex data word = %d", p.Data[100][3])
	}
	// Spot checks.
	if in := p.Insts[1]; in.Op != isa.OpAdd || in.Src2 != 3 || in.HasImm {
		t.Errorf("add rr: %+v", in)
	}
	if in := p.Insts[2]; !in.HasImm || in.Imm != -7 {
		t.Errorf("add ri: %+v", in)
	}
	if in := p.Insts[15]; in.Op != isa.OpMovi || in.Imm != 0 && in.Label != "" {
		// movi r11 = start resolves to instruction index of "start".
		if in.Imm != 1 {
			t.Errorf("movi label: %+v", in)
		}
	}
	if in := p.Insts[17]; in.CT != isa.CmpUnc || in.CC != isa.CmpLTU {
		t.Errorf("cmp.ltu.unc: %+v", in)
	}
	if in := p.Insts[23]; !in.Region || in.Op != isa.OpBr {
		t.Errorf("br.region: %+v", in)
	}
	if in := p.Insts[27]; !in.Region || in.Op != isa.OpCloop {
		t.Errorf("cloop.region: %+v", in)
	}
	if in := p.Insts[33]; in.QP != 1 || in.Op != isa.OpHalt || in.Imm != 3 {
		t.Errorf("guarded halt: %+v", in)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus r1 = r2",
		"add r1 = r2",              // missing operand
		"add r1 = r2, r3 r4",       // trailing tokens
		"add r99 = r1, r2",         // bad register
		"cmp p1, p2 = r1, r2",      // missing condition
		"cmp.xx p1, p2 = r1, r2",   // bad condition
		"cmp.eq.zz p1, p2 = r1, 0", // bad type
		"br",                       // missing target
		"(p1 add r1 = r2, r3",      // unclosed guard
		"ld r1 = [r2 - 8]",         // bad addressing
		"pinit p1 = 2",             // bad pinit immediate (validate)
		"br nowhere",               // unresolved label
		"x:\nx:\nhalt 0",           // duplicate label
		".data abc = 1",            // bad base
		".data 5 = zz",             // bad word
	}
	for _, src := range cases {
		if _, err := Parse("t", src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse("t", "nop\nnop\nbogus\n")
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error lacks line number: %v", err)
	}
}

func TestLabelOnSameLine(t *testing.T) {
	p, err := Parse("t", "top: nop\n br top\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["top"] != 0 || p.Insts[1].Target != 0 {
		t.Errorf("labels: %v, target %d", p.Labels, p.Insts[1].Target)
	}
}

func TestAbsoluteTarget(t *testing.T) {
	p, err := Parse("t", "br @1\nhalt 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Target != 1 {
		t.Errorf("target = %d", p.Insts[0].Target)
	}
}

// roundTrip checks Format -> Parse -> Format is a fixed point.
func roundTrip(t *testing.T, name string, text string) {
	t.Helper()
	p, err := Parse(name, text)
	if err != nil {
		t.Fatalf("%s: first parse: %v", name, err)
	}
	text1 := Format(p)
	p2, err := Parse(name, text1)
	if err != nil {
		t.Fatalf("%s: reparse: %v\n%s", name, err, text1)
	}
	text2 := Format(p2)
	if text1 != text2 {
		t.Fatalf("%s: format not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", name, text1, text2)
	}
}

func TestRoundTripWorkloads(t *testing.T) {
	for _, w := range workload.All() {
		p := w.Build()
		roundTrip(t, w.Name, Format(p))
	}
}

func TestRoundTripConvertedWorkloads(t *testing.T) {
	// The converted programs exercise region marks, unc compares, pinit,
	// por, guarded everything.
	for _, w := range workload.All() {
		p := w.Build()
		cp, _, err := ifconv.Convert(p, ifconv.Config{})
		if err != nil {
			t.Fatal(err)
		}
		roundTrip(t, w.Name+".ifc", Format(cp))
	}
}

func TestRoundTripSynth(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		p := workload.Synth(seed, 60)
		roundTrip(t, p.Name, Format(p))
	}
}

func TestParsedProgramBehavesIdentically(t *testing.T) {
	// Assembling the disassembly must give a behaviourally identical
	// program.
	for _, w := range workload.All() {
		p := w.Build()
		q, err := Parse(p.Name, Format(p))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		rp, err := emu.RunProgram(p, 3_000_000)
		if err != nil {
			t.Fatal(err)
		}
		rq, err := emu.RunProgram(q, 3_000_000)
		if err != nil {
			t.Fatalf("%s reassembled: %v", w.Name, err)
		}
		if rp.Steps != rq.Steps || len(rp.Output) != len(rq.Output) {
			t.Fatalf("%s: behaviour differs after round trip", w.Name)
		}
		for i := range rp.Output {
			if rp.Output[i] != rq.Output[i] {
				t.Fatalf("%s: output[%d] differs", w.Name, i)
			}
		}
	}
}
