// Package asm implements the P64 assembler and disassembler. The syntax
// is exactly what prog.Program.String and isa.Inst.String print, so
// disassembly round-trips through Parse:
//
//	; comment
//	.data 1000 = 7 8 9
//	loop:
//	        (p3) add r2 = r1, 5
//	        cmp.lt.unc p1, p2 = r1, r2
//	        ld r2 = [r1 + 8]
//	        st [r1 + 0] = r2
//	        (p1) br loop
//	        br.region done          ; a region-based branch
//	        cloop r9, loop
//	        halt 0
//	done:
//	        trap
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

// Parse assembles source text into a resolved, validated program.
func Parse(name, src string) (*prog.Program, error) {
	p := prog.New(name)
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(p, line); err != nil {
			return nil, &ParseError{Line: ln + 1, Msg: err.Error()}
		}
	}
	if err := p.Resolve(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Format disassembles a program into parseable text.
func Format(p *prog.Program) string { return p.String() }

func parseLine(p *prog.Program, line string) error {
	// Directives.
	if strings.HasPrefix(line, ".data") {
		return parseData(p, line)
	}
	// Labels (possibly followed by an instruction on the same line).
	for {
		i := strings.IndexByte(line, ':')
		if i < 0 {
			break
		}
		label := strings.TrimSpace(line[:i])
		if !isIdent(label) {
			break // a ':' inside an operand is impossible in this syntax
		}
		if _, dup := p.Labels[label]; dup {
			return fmt.Errorf("duplicate label %q", label)
		}
		p.Labels[label] = len(p.Insts)
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}
	in, err := parseInst(line)
	if err != nil {
		return err
	}
	p.Insts = append(p.Insts, in)
	return nil
}

func parseData(p *prog.Program, line string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, ".data"))
	eq := strings.IndexByte(rest, '=')
	if eq < 0 {
		return fmt.Errorf(".data needs '=': %q", line)
	}
	base, err := strconv.ParseInt(strings.TrimSpace(rest[:eq]), 0, 64)
	if err != nil {
		return fmt.Errorf(".data base: %v", err)
	}
	var words []int64
	for _, f := range strings.Fields(rest[eq+1:]) {
		w, err := strconv.ParseInt(f, 0, 64)
		if err != nil {
			return fmt.Errorf(".data word %q: %v", f, err)
		}
		words = append(words, w)
	}
	p.SetData(base, words)
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// tokenizer: splits an instruction line into identifiers, numbers, and
// single-character punctuation.
func tokenize(line string) []string {
	var toks []string
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case strings.IndexByte("()[]=,+", c) >= 0:
			toks = append(toks, string(c))
			i++
		case c == '-' || c >= '0' && c <= '9':
			j := i + 1
			for j < len(line) && (line[j] >= '0' && line[j] <= '9' ||
				line[j] == 'x' || line[j] >= 'a' && line[j] <= 'f' ||
				line[j] >= 'A' && line[j] <= 'F') {
				j++
			}
			toks = append(toks, line[i:j])
			i = j
		default:
			j := i
			for j < len(line) && !strings.ContainsRune(" \t()[]=,+", rune(line[j])) {
				j++
			}
			toks = append(toks, line[i:j])
			i = j
		}
	}
	return toks
}

type parser struct {
	toks []string
	pos  int
}

func (ps *parser) peek() string {
	if ps.pos < len(ps.toks) {
		return ps.toks[ps.pos]
	}
	return ""
}

func (ps *parser) next() string {
	t := ps.peek()
	ps.pos++
	return t
}

func (ps *parser) expect(tok string) error {
	if got := ps.next(); got != tok {
		return fmt.Errorf("expected %q, got %q", tok, got)
	}
	return nil
}

func (ps *parser) done() error {
	if ps.pos != len(ps.toks) {
		return fmt.Errorf("trailing tokens: %v", ps.toks[ps.pos:])
	}
	return nil
}

func (ps *parser) reg() (isa.Reg, error) {
	t := ps.next()
	if len(t) < 2 || t[0] != 'r' {
		return 0, fmt.Errorf("expected register, got %q", t)
	}
	n, err := strconv.Atoi(t[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", t)
	}
	return isa.Reg(n), nil
}

func (ps *parser) preg() (isa.PReg, error) {
	t := ps.next()
	if len(t) < 2 || t[0] != 'p' {
		return 0, fmt.Errorf("expected predicate register, got %q", t)
	}
	n, err := strconv.Atoi(t[1:])
	if err != nil || n < 0 || n >= isa.NumPRegs {
		return 0, fmt.Errorf("bad predicate register %q", t)
	}
	return isa.PReg(n), nil
}

func (ps *parser) imm() (int64, error) {
	t := ps.next()
	v, err := strconv.ParseInt(t, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("expected immediate, got %q", t)
	}
	return v, nil
}

// regOrImm parses the second ALU/compare operand.
func (ps *parser) regOrImm(in *isa.Inst) error {
	t := ps.peek()
	if len(t) >= 2 && t[0] == 'r' {
		if _, err := strconv.Atoi(t[1:]); err == nil {
			r, err := ps.reg()
			if err != nil {
				return err
			}
			in.Src2 = r
			return nil
		}
	}
	v, err := ps.imm()
	if err != nil {
		return err
	}
	in.Imm, in.HasImm = v, true
	return nil
}

// target parses a branch target: a label, or @N for an absolute index.
func (ps *parser) target(in *isa.Inst) error {
	t := ps.next()
	if t == "" {
		return fmt.Errorf("missing branch target")
	}
	if t[0] == '@' {
		n, err := strconv.Atoi(t[1:])
		if err != nil {
			return fmt.Errorf("bad absolute target %q", t)
		}
		in.Target = n
		return nil
	}
	if !isIdent(t) {
		return fmt.Errorf("bad branch target %q", t)
	}
	in.Label, in.Target = t, -1
	return nil
}

var aluOps = map[string]isa.Op{
	"add": isa.OpAdd, "sub": isa.OpSub, "and": isa.OpAnd, "or": isa.OpOr,
	"xor": isa.OpXor, "shl": isa.OpShl, "shr": isa.OpShr, "sar": isa.OpSar,
	"mul": isa.OpMul, "div": isa.OpDiv, "mod": isa.OpMod,
}

var cmpConds = map[string]isa.CmpCond{
	"eq": isa.CmpEQ, "ne": isa.CmpNE, "lt": isa.CmpLT, "le": isa.CmpLE,
	"gt": isa.CmpGT, "ge": isa.CmpGE, "ltu": isa.CmpLTU, "geu": isa.CmpGEU,
}

var cmpTypes = map[string]isa.CmpType{
	"unc": isa.CmpUnc, "and": isa.CmpAnd, "or": isa.CmpOr,
}

func parseInst(line string) (isa.Inst, error) {
	ps := &parser{toks: tokenize(line)}
	var in isa.Inst

	// Optional guard: ( pN )
	if ps.peek() == "(" {
		ps.next()
		qp, err := ps.preg()
		if err != nil {
			return in, err
		}
		if err := ps.expect(")"); err != nil {
			return in, err
		}
		in.QP = qp
	}

	mnemonic := ps.next()
	if mnemonic == "" {
		return in, fmt.Errorf("missing mnemonic")
	}
	parts := strings.Split(mnemonic, ".")
	base := parts[0]
	suffix := parts[1:]

	regionSuffix := func() error {
		if len(suffix) == 0 {
			return nil
		}
		if len(suffix) == 1 && suffix[0] == "region" {
			in.Region = true
			return nil
		}
		return fmt.Errorf("bad suffix on %q", mnemonic)
	}

	var err error
	switch base {
	case "nop":
		in.Op = isa.OpNop
	case "add", "sub", "and", "or", "xor", "shl", "shr", "sar", "mul", "div", "mod":
		in.Op = aluOps[base]
		err = ps.parseALU(&in)
	case "mov":
		in.Op = isa.OpMov
		err = ps.parseMov(&in)
	case "movi":
		in.Op = isa.OpMovi
		err = ps.parseMovi(&in)
	case "cmp":
		in.Op = isa.OpCmp
		if len(suffix) < 1 || len(suffix) > 2 {
			return in, fmt.Errorf("cmp needs a condition suffix")
		}
		cc, ok := cmpConds[suffix[0]]
		if !ok {
			return in, fmt.Errorf("unknown compare condition %q", suffix[0])
		}
		in.CC = cc
		if len(suffix) == 2 {
			ct, ok := cmpTypes[suffix[1]]
			if !ok {
				return in, fmt.Errorf("unknown compare type %q", suffix[1])
			}
			in.CT = ct
		}
		suffix = nil
		err = ps.parseCmp(&in)
	case "ld":
		in.Op = isa.OpLd
		err = ps.parseLd(&in)
	case "st":
		in.Op = isa.OpSt
		err = ps.parseSt(&in)
	case "br":
		in.Op = isa.OpBr
		if err := regionSuffix(); err != nil {
			return in, err
		}
		suffix = nil
		err = ps.target(&in)
	case "brl":
		in.Op = isa.OpBrl
		if err := regionSuffix(); err != nil {
			return in, err
		}
		suffix = nil
		err = ps.parseBrl(&in)
	case "brr":
		in.Op = isa.OpBrr
		if err := regionSuffix(); err != nil {
			return in, err
		}
		suffix = nil
		in.Src1, err = ps.reg()
	case "cloop":
		in.Op = isa.OpCloop
		if err := regionSuffix(); err != nil {
			return in, err
		}
		suffix = nil
		err = ps.parseCloop(&in)
	case "pand", "por":
		if base == "pand" {
			in.Op = isa.OpPand
		} else {
			in.Op = isa.OpPor
		}
		err = ps.parsePand(&in)
	case "pmov":
		in.Op = isa.OpPmov
		err = ps.parsePmov(&in)
	case "pinit":
		in.Op = isa.OpPinit
		err = ps.parsePinit(&in)
	case "out":
		in.Op = isa.OpOut
		in.Src1, err = ps.reg()
	case "halt":
		in.Op = isa.OpHalt
		in.Imm, err = ps.imm()
	case "trap":
		in.Op = isa.OpTrap
	default:
		return in, fmt.Errorf("unknown mnemonic %q", base)
	}
	if err != nil {
		return in, err
	}
	if len(suffix) != 0 {
		return in, fmt.Errorf("unexpected suffix on %q", mnemonic)
	}
	if err := ps.done(); err != nil {
		return in, err
	}
	return in, nil
}

func (ps *parser) parseALU(in *isa.Inst) error {
	var err error
	if in.Dst, err = ps.reg(); err != nil {
		return err
	}
	if err = ps.expect("="); err != nil {
		return err
	}
	if in.Src1, err = ps.reg(); err != nil {
		return err
	}
	if err = ps.expect(","); err != nil {
		return err
	}
	return ps.regOrImm(in)
}

func (ps *parser) parseMov(in *isa.Inst) error {
	var err error
	if in.Dst, err = ps.reg(); err != nil {
		return err
	}
	if err = ps.expect("="); err != nil {
		return err
	}
	in.Src1, err = ps.reg()
	return err
}

func (ps *parser) parseMovi(in *isa.Inst) error {
	var err error
	if in.Dst, err = ps.reg(); err != nil {
		return err
	}
	if err = ps.expect("="); err != nil {
		return err
	}
	// Either an immediate or a label whose address to materialise.
	t := ps.peek()
	if isIdent(t) && !(t[0] >= '0' && t[0] <= '9') && t[0] != '-' {
		in.Label = ps.next()
		return nil
	}
	in.Imm, err = ps.imm()
	return err
}

func (ps *parser) parseCmp(in *isa.Inst) error {
	var err error
	if in.PD1, err = ps.preg(); err != nil {
		return err
	}
	if err = ps.expect(","); err != nil {
		return err
	}
	if in.PD2, err = ps.preg(); err != nil {
		return err
	}
	if err = ps.expect("="); err != nil {
		return err
	}
	if in.Src1, err = ps.reg(); err != nil {
		return err
	}
	if err = ps.expect(","); err != nil {
		return err
	}
	return ps.regOrImm(in)
}

func (ps *parser) parseLd(in *isa.Inst) error {
	var err error
	if in.Dst, err = ps.reg(); err != nil {
		return err
	}
	if err = ps.expect("="); err != nil {
		return err
	}
	if err = ps.expect("["); err != nil {
		return err
	}
	if in.Src1, err = ps.reg(); err != nil {
		return err
	}
	if err = ps.expect("+"); err != nil {
		return err
	}
	if in.Imm, err = ps.imm(); err != nil {
		return err
	}
	return ps.expect("]")
}

func (ps *parser) parseSt(in *isa.Inst) error {
	var err error
	if err = ps.expect("["); err != nil {
		return err
	}
	if in.Src1, err = ps.reg(); err != nil {
		return err
	}
	if err = ps.expect("+"); err != nil {
		return err
	}
	if in.Imm, err = ps.imm(); err != nil {
		return err
	}
	if err = ps.expect("]"); err != nil {
		return err
	}
	if err = ps.expect("="); err != nil {
		return err
	}
	in.Src2, err = ps.reg()
	return err
}

func (ps *parser) parseBrl(in *isa.Inst) error {
	var err error
	if in.Dst, err = ps.reg(); err != nil {
		return err
	}
	if err = ps.expect("="); err != nil {
		return err
	}
	return ps.target(in)
}

func (ps *parser) parseCloop(in *isa.Inst) error {
	var err error
	if in.Dst, err = ps.reg(); err != nil {
		return err
	}
	if err = ps.expect(","); err != nil {
		return err
	}
	return ps.target(in)
}

func (ps *parser) parsePand(in *isa.Inst) error {
	var err error
	if in.PD1, err = ps.preg(); err != nil {
		return err
	}
	if err = ps.expect("="); err != nil {
		return err
	}
	if in.PS1, err = ps.preg(); err != nil {
		return err
	}
	if err = ps.expect(","); err != nil {
		return err
	}
	in.PS2, err = ps.preg()
	return err
}

func (ps *parser) parsePmov(in *isa.Inst) error {
	var err error
	if in.PD1, err = ps.preg(); err != nil {
		return err
	}
	if err = ps.expect("="); err != nil {
		return err
	}
	in.PS1, err = ps.preg()
	return err
}

func (ps *parser) parsePinit(in *isa.Inst) error {
	var err error
	if in.PD1, err = ps.preg(); err != nil {
		return err
	}
	if err = ps.expect("="); err != nil {
		return err
	}
	in.Imm, err = ps.imm()
	return err
}
