; collatz.s — total stopping time of 27 (should be 111 steps).
        movi r1 = 27         ; n
        movi r2 = 0          ; steps
loop:
        cmp.eq p1, p2 = r1, 1
        (p1) br done
        and r3 = r1, 1
        cmp.eq p3, p4 = r3, 0
        (p4) br odd
        sar r1 = r1, 1       ; even: n /= 2
        br next
odd:
        mul r1 = r1, 3       ; odd: n = 3n + 1
        add r1 = r1, 1
next:
        add r2 = r2, 1
        br loop
done:
        out r2
        halt 0
