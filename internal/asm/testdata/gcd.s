; gcd.s — Euclid's algorithm on a few pairs stored in memory.
.data 100 = 48 36 1071 462 17 5 100 100
        movi r1 = 0          ; pair index (word offset)
        movi r5 = 8          ; total words
pair:
        add r6 = r1, 100
        ld r2 = [r6 + 0]     ; a
        ld r3 = [r6 + 1]     ; b
step:
        cmp.eq p1, p2 = r3, 0
        (p1) br done
        mod r4 = r2, r3      ; a mod b
        mov r2 = r3
        mov r3 = r4
        br step
done:
        out r2
        add r1 = r1, 2
        cmp.lt p3, p4 = r1, r5
        (p3) br pair
        halt 0
