; fib.s — iterative Fibonacci: outputs fib(0)..fib(10).
        movi r1 = 0          ; a
        movi r2 = 1          ; b
        movi r3 = 11         ; count
loop:
        out r1
        add r4 = r1, r2      ; next
        mov r1 = r2
        mov r2 = r4
        sub r3 = r3, 1
        cmp.gt p1, p2 = r3, 0
        (p1) br loop
        halt 0
