; revsum.s — reverse an array in place (two-pointer swap), then emit a
; positional checksum that is sensitive to the order.
.data 200 = 3 1 4 1 5 9 2 6
        movi r1 = 200        ; lo pointer
        movi r2 = 207        ; hi pointer
swap:
        cmp.lt p1, p2 = r1, r2
        (p2) br sum
        ld r3 = [r1 + 0]
        ld r4 = [r2 + 0]
        st [r1 + 0] = r4
        st [r2 + 0] = r3
        add r1 = r1, 1
        sub r2 = r2, 1
        br swap
sum:
        movi r1 = 0          ; index
        movi r5 = 0          ; checksum
ck:
        add r6 = r1, 200
        ld r3 = [r6 + 0]
        add r7 = r1, 1
        mul r3 = r3, r7      ; weight by position+1
        add r5 = r5, r3
        add r1 = r1, 1
        cmp.lt p3, p4 = r1, 8
        (p3) br ck
        out r5
        halt 0
