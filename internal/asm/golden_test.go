package asm

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/emu"
	"repro/internal/ifconv"
	"repro/internal/testutil"
)

// golden holds the expected output streams of the testdata programs.
var golden = map[string][]int64{
	"fib.s":     {0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55},
	"gcd.s":     {12, 21, 1, 100},
	"collatz.s": {111},
	// Reversed [3 1 4 1 5 9 2 6] = [6 2 9 5 1 4 1 3]; weighted sum
	// 6*1+2*2+9*3+5*4+1*5+4*6+1*7+3*8 = 117.
	"revsum.s": {117},
}

func loadTestProgram(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestGoldenPrograms(t *testing.T) {
	for name, want := range golden {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			p, err := Parse(name, loadTestProgram(t, name))
			if err != nil {
				t.Fatal(err)
			}
			res, err := emu.RunProgram(p, 1_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if res.ExitCode != 0 {
				t.Fatalf("exit %d", res.ExitCode)
			}
			if len(res.Output) != len(want) {
				t.Fatalf("output %v, want %v", res.Output, want)
			}
			for i := range want {
				if res.Output[i] != want[i] {
					t.Errorf("output[%d] = %d, want %d", i, res.Output[i], want[i])
				}
			}
		})
	}
}

func TestGoldenProgramsConvertEquivalently(t *testing.T) {
	for name := range golden {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := Parse(name, loadTestProgram(t, name))
			if err != nil {
				t.Fatal(err)
			}
			cp, _, err := ifconv.Convert(p, ifconv.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if err := testutil.CheckEquivalent(p, cp, 1_000_000); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGoldenProgramsRoundTrip(t *testing.T) {
	for name := range golden {
		roundTrip(t, name, loadTestProgram(t, name))
	}
}
