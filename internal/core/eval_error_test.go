package core

import (
	"strings"
	"testing"

	"repro/internal/bpred"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestEvaluatePanicsOnReplayError: Evaluate is documented for error-free
// sources only; handing it a live stream that dies mid-replay must be a
// loud panic, never metrics silently computed from a truncated stream.
func TestEvaluatePanicsOnReplayError(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Evaluate returned normally from a failing source")
		}
		if !strings.Contains(r.(string), "replay failed") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	p := workload.ByNameMust("scan").Build()
	// Limit 10 guarantees the emulator-backed stream errors mid-replay.
	Evaluate(trace.Stream(p, 10), EvalConfig{Predictor: bpred.NewStatic(true)})
}

// TestEvaluateStreamPropagatesReplayError: the streaming evaluator must
// surface the reader's error rather than returning metrics for the
// events seen so far.
func TestEvaluateStreamPropagatesReplayError(t *testing.T) {
	p := workload.ByNameMust("scan").Build()
	_, err := EvaluateStream(trace.Stream(p, 10).Replay(), EvalConfig{Predictor: bpred.NewStatic(true)})
	if err == nil {
		t.Fatal("truncated stream evaluated without error")
	}
}
