// Durable evaluator state.
//
// The evaluator's mutable state beyond the predictor itself is small but
// load-bearing for byte-identical resume: the pending predicate-bit
// queue (PGU bits whose insertion delay has not yet elapsed — dropping
// them would silently shift every future history lookup) and the
// accumulated metrics (including the per-branch map when enabled). The
// squash false path filter carries no evaluator-resident state in the
// trace-driven model: guard values and distances ride on each event, so
// a restored evaluator filters future branches identically by
// construction. internal/snap frames these bytes, together with the
// predictor's own state, into the versioned snapshot format.

package core

import (
	"fmt"
	"sort"

	"repro/internal/wire"
)

// AppendState appends the evaluator's mutable state (pending
// predicate-bit queue and metrics) to buf. The predictor's state is
// serialized separately via Predictor (see bpred.Stater). The encoding
// is canonical: per-branch stats are written in strictly increasing PC
// order, so identical evaluator states always produce identical bytes.
func (e *Evaluator) AppendState(buf []byte) []byte {
	buf = wire.AppendU32(buf, uint32(len(e.pending)))
	for _, p := range e.pending {
		buf = wire.AppendU64(buf, p.applyAt)
		buf = wire.AppendBool(buf, p.bit)
	}

	m := &e.m
	for _, v := range []uint64{
		m.Insts, m.Branches, m.Mispredicts,
		m.RegionBranches, m.RegionMispredicts,
		m.Filtered, m.FilteredTrue, m.FilterErrors,
		m.PredDefs, m.InsertedBits,
	} {
		buf = wire.AppendU64(buf, v)
	}
	buf = wire.AppendBool(buf, m.ByPC != nil)
	if m.ByPC != nil {
		pcs := make([]uint64, 0, len(m.ByPC))
		for pc := range m.ByPC {
			pcs = append(pcs, pc)
		}
		sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
		buf = wire.AppendU32(buf, uint32(len(pcs)))
		for _, pc := range pcs {
			bs := m.ByPC[pc]
			buf = wire.AppendU64(buf, bs.PC)
			buf = wire.AppendU64(buf, bs.Count)
			buf = wire.AppendU64(buf, bs.Taken)
			buf = wire.AppendU64(buf, bs.Mispredicts)
			buf = wire.AppendU64(buf, bs.Filtered)
			buf = wire.AppendBool(buf, bs.Region)
		}
	}
	return buf
}

// LoadState replaces the evaluator's pending queue and metrics with
// state read from the cursor. It enforces the canonical encoding
// (strictly increasing PCs), so for any byte sequence LoadState accepts
// there is exactly one state — AppendState of the loaded state
// reproduces the input bytes.
func (e *Evaluator) LoadState(c *wire.Cursor) error {
	n := c.U32()
	if c.Err() != nil {
		return c.Err()
	}
	// Each pending entry is 9 bytes; bound the allocation by the input.
	if int64(n)*9 > int64(c.Remaining()) {
		return c.Fail(wire.ErrTruncated)
	}
	pending := make([]pendingBit, 0, n)
	for i := uint32(0); i < n; i++ {
		pending = append(pending, pendingBit{applyAt: c.U64(), bit: c.Bool()})
	}

	var m Metrics
	for _, dst := range []*uint64{
		&m.Insts, &m.Branches, &m.Mispredicts,
		&m.RegionBranches, &m.RegionMispredicts,
		&m.Filtered, &m.FilteredTrue, &m.FilterErrors,
		&m.PredDefs, &m.InsertedBits,
	} {
		*dst = c.U64()
	}
	if c.Bool() {
		count := c.U32()
		if c.Err() != nil {
			return c.Err()
		}
		if int64(count)*41 > int64(c.Remaining()) {
			return c.Fail(wire.ErrTruncated)
		}
		m.ByPC = make(map[uint64]*BranchStats, count)
		var prev uint64
		for i := uint32(0); i < count; i++ {
			bs := &BranchStats{
				PC:          c.U64(),
				Count:       c.U64(),
				Taken:       c.U64(),
				Mispredicts: c.U64(),
				Filtered:    c.U64(),
				Region:      c.Bool(),
			}
			if c.Err() != nil {
				return c.Err()
			}
			if i > 0 && bs.PC <= prev {
				return c.Fail(fmt.Errorf("core: per-branch stats not in increasing PC order"))
			}
			prev = bs.PC
			m.ByPC[bs.PC] = bs
		}
	}
	if c.Err() != nil {
		return c.Err()
	}
	e.pending = pending
	e.m = m
	return nil
}
