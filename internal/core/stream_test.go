package core

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestEvaluateStreamMatchesMaterialized runs the same evaluation over a
// live emulator stream and over the collected trace; metrics must be
// identical — the guarantee that lets callers pick either replay path.
func TestEvaluateStreamMatchesMaterialized(t *testing.T) {
	p := workload.ByNameMust("bsearch").Build()
	tr, err := trace.Collect(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	mkCfg := func() EvalConfig {
		return EvalConfig{
			Predictor: sim.For("gshare", 12, 8).MustNew(),
			UseSFPF:   true, ResolveDelay: DefaultResolveDelay,
			PGU: PGUAll, PGUDelay: DefaultPGUDelay,
		}
	}
	fromTrace := Evaluate(tr, mkCfg())
	fromStream, err := EvaluateStream(trace.Stream(p, 0).Replay(), mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromTrace, fromStream) {
		t.Errorf("metrics differ:\ntrace:  %+v\nstream: %+v", fromTrace, fromStream)
	}
	if fromStream.Insts == 0 || fromStream.Branches == 0 {
		t.Errorf("empty evaluation: %+v", fromStream)
	}
}

// TestEvaluateStreamSurfacesReplayErrors checks that a step-limited live
// stream reports its error instead of returning truncated metrics.
func TestEvaluateStreamSurfacesReplayErrors(t *testing.T) {
	p := workload.ByNameMust("scan").Build()
	cfg := EvalConfig{Predictor: sim.For("bimodal", 12).MustNew()}
	if _, err := EvaluateStream(trace.Stream(p, 5).Replay(), cfg); err == nil {
		t.Fatal("limit error swallowed")
	}
}
