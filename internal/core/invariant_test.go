package core

import (
	"testing"

	"repro/internal/bpred"
	"repro/internal/ifconv"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestEvaluateInvariants replays randomly generated programs through
// randomly drawn configurations and checks the structural invariants every
// evaluation must satisfy, whatever the program or configuration.
func TestEvaluateInvariants(t *testing.T) {
	r := rng.New(20260706)
	rounds := 40
	if testing.Short() {
		rounds = 8
	}
	for i := 0; i < rounds; i++ {
		p := workload.Synth(uint64(i)*31+7, 40+r.Intn(40))
		if r.Bool() {
			cp, _, err := ifconv.Convert(p, ifconv.Config{})
			if err != nil {
				t.Fatal(err)
			}
			p = cp
		}
		tr, err := trace.Collect(p, 3_000_000)
		if err != nil {
			t.Fatal(err)
		}
		var pred bpred.Predictor
		switch r.Intn(5) {
		case 0:
			pred = bpred.NewBimodal(4 + r.Intn(8))
		case 1:
			pred = bpred.NewGShare(4+r.Intn(8), 1+r.Intn(10))
		case 2:
			pred = bpred.NewLocal(4+r.Intn(4), 4+r.Intn(8), 4+r.Intn(8))
		case 3:
			pred = bpred.NewAgree(4+r.Intn(8), r.Intn(10))
		default:
			pred = bpred.NewPerceptron(4+r.Intn(4), 4+r.Intn(16))
		}
		cfg := EvalConfig{
			Predictor:     pred,
			UseSFPF:       r.Bool(),
			FilterTrue:    r.Bool(),
			TrainFiltered: r.Bool(),
			ResolveDelay:  uint64(r.Intn(12)),
			PGU:           PGUPolicy(r.Intn(4)),
			PGUDelay:      uint64(r.Intn(6)),
			PerBranch:     r.Bool(),
		}
		m := Evaluate(tr, cfg)

		if m.Branches != tr.Branches {
			t.Fatalf("round %d: branches %d != trace %d", i, m.Branches, tr.Branches)
		}
		if m.PredDefs != tr.PredDefs {
			t.Fatalf("round %d: preddefs %d != trace %d", i, m.PredDefs, tr.PredDefs)
		}
		if m.FilterErrors != 0 {
			t.Fatalf("round %d: %d filter errors (cfg %+v)", i, m.FilterErrors, cfg)
		}
		if m.Filtered+m.FilteredTrue+m.Mispredicts > m.Branches {
			t.Fatalf("round %d: filtered %d + filteredTrue %d + mispredicts %d > branches %d",
				i, m.Filtered, m.FilteredTrue, m.Mispredicts, m.Branches)
		}
		if m.RegionBranches != tr.RegionBranches || m.RegionMispredicts > m.RegionBranches {
			t.Fatalf("round %d: region accounting broken: %+v", i, m)
		}
		if !cfg.UseSFPF && (m.Filtered != 0 || m.FilteredTrue != 0) {
			t.Fatalf("round %d: filtering without SFPF", i)
		}
		if cfg.PGU == PGUOff && m.InsertedBits != 0 {
			t.Fatalf("round %d: bits inserted with PGU off", i)
		}
		if cfg.PerBranch {
			var sum uint64
			for _, bs := range m.ByPC {
				sum += bs.Count
			}
			if sum != m.Branches {
				t.Fatalf("round %d: per-branch counts %d != branches %d", i, sum, m.Branches)
			}
		}
	}
}

// TestEvaluateDeterministic re-runs the same configuration twice and
// demands identical metrics.
func TestEvaluateDeterministic(t *testing.T) {
	p := workload.ByNameMust("bsearch").Build()
	cp, _, err := ifconv.Convert(p, ifconv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Collect(cp, 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() Metrics {
		return Evaluate(tr, EvalConfig{
			Predictor: bpred.NewGShare(12, 8),
			UseSFPF:   true, ResolveDelay: 6,
			PGU: PGUAll, PGUDelay: 2,
		})
	}
	a, b := mk(), mk()
	if a.Mispredicts != b.Mispredicts || a.Filtered != b.Filtered || a.InsertedBits != b.InsertedBits {
		t.Fatalf("evaluation not deterministic: %+v vs %+v", a, b)
	}
}
