// Batch evaluation fast path.
//
// The per-event hot path every consumer funnels through — experiment
// sweeps, the differential oracle, serving sessions, trace replay CLIs —
// is Feed: two dynamic-dispatch interface calls per branch (Predict,
// Update), each recomputing shared state (table indices, perceptron
// sums). FeedBatch removes both costs: it type-switches once per batch
// onto the concrete predictor and runs a monomorphic inner loop over the
// fused PredictUpdate step, so the per-event work is a single direct call
// with the index math done once and zero allocations. The generic Feed
// loop remains the fallback for Predictor implementations outside
// internal/bpred, and the oracle's fast-vs-generic equivalence check
// pins the two paths to bit-identical metrics.

package core

import (
	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/trace"
)

// FeedBatch advances the evaluation by a batch of events, exactly as
// feeding them to Feed one at a time would, but through the fused,
// devirtualized inner loop when the predictor is one of the concrete
// internal/bpred kinds. Events must arrive in dynamic order across
// batches, as with Feed. FeedBatch only reads the events; the caller may
// reuse the slice afterwards.
func (e *Evaluator) FeedBatch(events []trace.Event) {
	switch p := e.p.(type) {
	case *bpred.GShare:
		feedFused(e, p, events)
	case *bpred.Bimodal:
		feedFused(e, p, events)
	case *bpred.Tournament:
		feedFused(e, p, events)
	case *bpred.Agree:
		feedFused(e, p, events)
	case *bpred.Perceptron:
		feedFused(e, p, events)
	case *bpred.GSelect:
		feedFused(e, p, events)
	case *bpred.GAg:
		feedFused(e, p, events)
	case *bpred.Local:
		feedFused(e, p, events)
	case *bpred.Static:
		feedFused(e, p, events)
	default:
		for i := range events {
			e.Feed(&events[i])
		}
	}
}

// FeedBatches advances the evaluation by several batches of events, in
// order, exactly as calling FeedBatch on each would. The type switch —
// and with it the predictor devirtualization — happens once for the
// whole group rather than once per batch, so a scheduling pass that has
// gathered many small queued batches for one hot session (the serve
// shard wakeup path) pays the dispatch cost once and then runs the
// monomorphic loop back to back while the predictor's tables stay
// cache-resident.
func (e *Evaluator) FeedBatches(batches [][]trace.Event) {
	switch p := e.p.(type) {
	case *bpred.GShare:
		for _, b := range batches {
			feedFused(e, p, b)
		}
	case *bpred.Bimodal:
		for _, b := range batches {
			feedFused(e, p, b)
		}
	case *bpred.Tournament:
		for _, b := range batches {
			feedFused(e, p, b)
		}
	case *bpred.Agree:
		for _, b := range batches {
			feedFused(e, p, b)
		}
	case *bpred.Perceptron:
		for _, b := range batches {
			feedFused(e, p, b)
		}
	case *bpred.GSelect:
		for _, b := range batches {
			feedFused(e, p, b)
		}
	case *bpred.GAg:
		for _, b := range batches {
			feedFused(e, p, b)
		}
	case *bpred.Local:
		for _, b := range batches {
			feedFused(e, p, b)
		}
	case *bpred.Static:
		for _, b := range batches {
			feedFused(e, p, b)
		}
	default:
		for _, b := range batches {
			for i := range b {
				e.Feed(&b[i])
			}
		}
	}
}

// feedFused is the specialized batch loop, instantiated per concrete
// predictor type so the predict+train step is a direct (fused) call. Its
// body must stay semantically identical to Evaluator.Feed; the oracle's
// fastpath checks and the golden CSV gate enforce that equivalence.
func feedFused[P interface {
	PredictUpdate(pc uint64, taken bool) bool
	Update(pc uint64, taken bool)
}](e *Evaluator, p P, events []trace.Event) {
	if !e.cfg.UseSFPF && !e.cfg.PerBranch && e.pgu == nil && len(e.pending) == 0 {
		feedFusedTight(e, p, events)
		return
	}
	useSFPF := e.cfg.UseSFPF
	filterTrue := e.cfg.FilterTrue
	trainFiltered := e.cfg.TrainFiltered
	resolveDelay := e.cfg.ResolveDelay
	perBranch := e.cfg.PerBranch
	pguDelay := e.cfg.PGUDelay
	var pguPolicy PGUPolicy
	if e.pgu != nil {
		pguPolicy = e.pgu.Policy
	}
	m := &e.m
	for i := range events {
		ev := &events[i]
		if len(e.pending) > 0 && e.pending[0].applyAt <= ev.Step {
			e.flush(ev.Step)
		}
		switch ev.Kind {
		case trace.KindPredDef:
			m.PredDefs++
			if e.pgu != nil && pguPolicy.Selects(ev) && ev.Executed {
				e.pending = append(e.pending, pendingBit{applyAt: ev.Step + pguDelay, bit: ev.Value})
			}
		case trace.KindBranch:
			m.Branches++
			if ev.Region {
				m.RegionBranches++
			}
			var bs *BranchStats
			if perBranch {
				if m.ByPC == nil {
					m.ByPC = make(map[uint64]*BranchStats)
				}
				bs = m.ByPC[ev.PC]
				if bs == nil {
					bs = &BranchStats{PC: ev.PC, Region: ev.Region}
					m.ByPC[ev.PC] = bs
				}
				bs.Count++
				if ev.Taken {
					bs.Taken++
				}
			}
			if useSFPF && ev.Guard != isa.P0 && ev.GuardDist >= resolveDelay {
				if !ev.GuardVal {
					// Known-false guard: the branch cannot be taken.
					m.Filtered++
					if ev.Taken {
						m.FilterErrors++ // impossible by ISA semantics
					}
					if bs != nil {
						bs.Filtered++
					}
					if trainFiltered {
						p.Update(ev.PC, ev.Taken)
					}
					continue
				}
				if filterTrue && ev.GuardImpliesTaken {
					// Known-true guard on a guard-implies-taken branch.
					m.FilteredTrue++
					if !ev.Taken {
						m.FilterErrors++
					}
					if bs != nil {
						bs.Filtered++
					}
					if trainFiltered {
						p.Update(ev.PC, ev.Taken)
					}
					continue
				}
			}
			if p.PredictUpdate(ev.PC, ev.Taken) != ev.Taken {
				m.Mispredicts++
				if ev.Region {
					m.RegionMispredicts++
				}
				if bs != nil {
					bs.Mispredicts++
				}
			}
		}
	}
}

// feedFusedTight is the prediction-only loop for the configuration the
// serving hot path runs in: SFPF off, PGU off (nil — an off policy or a
// history-less predictor), no per-branch stats, nothing pending. With no
// filter arms, no pending-flush probe, and no guard-field loads, each
// branch event is counter bookkeeping plus one fused predictor step;
// predicate defines only count. Feed degenerates to exactly this under
// the same configuration, which the batch-vs-generic tests pin.
func feedFusedTight[P interface {
	PredictUpdate(pc uint64, taken bool) bool
	Update(pc uint64, taken bool)
}](e *Evaluator, p P, events []trace.Event) {
	m := &e.m
	for i := range events {
		ev := &events[i]
		if ev.Kind != trace.KindBranch {
			if ev.Kind == trace.KindPredDef {
				m.PredDefs++
			}
			continue
		}
		m.Branches++
		if ev.Region {
			m.RegionBranches++
			if p.PredictUpdate(ev.PC, ev.Taken) != ev.Taken {
				m.Mispredicts++
				m.RegionMispredicts++
			}
			continue
		}
		if p.PredictUpdate(ev.PC, ev.Taken) != ev.Taken {
			m.Mispredicts++
		}
	}
}
