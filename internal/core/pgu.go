package core

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/trace"
)

// PGUPolicy selects which predicate defines the predicate global update
// mechanism inserts into the global branch history.
type PGUPolicy int

// Policies, from none to most aggressive.
const (
	// PGUOff inserts nothing: the predictor sees only branch outcomes.
	PGUOff PGUPolicy = iota
	// PGURegionGuards inserts defines that (statically) feed the guard of
	// a region-based branch — the minimal set the paper's region-based
	// branches can correlate with.
	PGURegionGuards
	// PGUBranchGuards inserts defines feeding any branch guard.
	PGUBranchGuards
	// PGUAll inserts every executed predicate define. If-conversion turned
	// branches into compares; this policy puts all of their outcomes back
	// into the history, the paper's headline mechanism.
	PGUAll
)

// String implements fmt.Stringer.
func (p PGUPolicy) String() string {
	switch p {
	case PGUOff:
		return "off"
	case PGURegionGuards:
		return "region-guards"
	case PGUBranchGuards:
		return "branch-guards"
	case PGUAll:
		return "all"
	}
	return fmt.Sprintf("pgu(%d)", int(p))
}

// ParsePGUPolicy reads the command-line/API spelling of a policy: "off"
// (or empty), "region", "branch", "all". The String() forms are also
// accepted, so Parse(p.String()) round-trips.
func ParsePGUPolicy(s string) (PGUPolicy, error) {
	switch s {
	case "", "off":
		return PGUOff, nil
	case "region", "region-guards":
		return PGURegionGuards, nil
	case "branch", "branch-guards":
		return PGUBranchGuards, nil
	case "all":
		return PGUAll, nil
	}
	return PGUOff, fmt.Errorf("core: unknown PGU policy %q (off, region, branch, all)", s)
}

// Selects reports whether the policy inserts this predicate-define event.
func (p PGUPolicy) Selects(ev *trace.Event) bool {
	if ev.Kind != trace.KindPredDef {
		return false
	}
	switch p {
	case PGUOff:
		return false
	case PGURegionGuards:
		return ev.FeedsRegionBranch
	case PGUBranchGuards:
		return ev.FeedsBranch
	case PGUAll:
		return true
	}
	return false
}

// PGU binds a policy to a predictor whose history accepts outside bits.
// It is the hardware-facing form of the mechanism: the pipeline model calls
// ObserveDefine as compares resolve.
type PGU struct {
	Policy PGUPolicy
	obs    bpred.HistoryObserver
}

// NewPGU returns a PGU feeding the predictor's global history, or nil if
// the predictor has no global history to feed (e.g. bimodal or local): the
// mechanism degrades to a no-op exactly as it would in hardware.
func NewPGU(policy PGUPolicy, p bpred.Predictor) *PGU {
	obs, ok := p.(bpred.HistoryObserver)
	if !ok || policy == PGUOff {
		return nil
	}
	return &PGU{Policy: policy, obs: obs}
}

// ObserveDefine inserts a resolved predicate-define outcome into the
// history if the policy selects it.
func (g *PGU) ObserveDefine(ev *trace.Event) bool {
	if g == nil || !g.Policy.Selects(ev) || !ev.Executed {
		return false
	}
	g.obs.ObserveBit(ev.Value)
	return true
}
