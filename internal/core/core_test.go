package core

import (
	"testing"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestSFPFInitialState(t *testing.T) {
	f := NewSFPF()
	known, val := f.Lookup(isa.P0)
	if !known || !val {
		t.Error("p0 must be known true")
	}
	known, val = f.Lookup(5)
	if !known || val {
		t.Error("reset predicates must be known false")
	}
}

func TestSFPFFetchResolveCycle(t *testing.T) {
	f := NewSFPF()
	f.FetchDef(3, 4)
	if known, _ := f.Lookup(3); known {
		t.Error("p3 known while its define is in flight")
	}
	f.Resolve(3, true)
	known, val := f.Lookup(3)
	if !known || !val {
		t.Error("p3 not known true after resolve")
	}
	if known, _ := f.Lookup(4); known {
		t.Error("p4 resolved without a Resolve call")
	}
	f.Resolve(4, false)
	known, val = f.Lookup(4)
	if !known || val {
		t.Error("p4 not known false after resolve")
	}
}

func TestSFPFP0Untouchable(t *testing.T) {
	f := NewSFPF()
	f.FetchDef(isa.P0)
	f.Resolve(isa.P0, false)
	known, val := f.Lookup(isa.P0)
	if !known || !val {
		t.Error("p0 state changed")
	}
}

func TestSFPFStaleResolveStaysUnknown(t *testing.T) {
	// Two defines of p3 in flight; the older resolve must not make p3
	// known while the younger writer is still outstanding.
	f := NewSFPF()
	f.FetchDef(3) // older writer
	f.FetchDef(3) // younger writer
	f.Resolve(3, false)
	if known, _ := f.Lookup(3); known {
		t.Fatal("p3 known after stale resolve with a younger writer in flight")
	}
	f.Resolve(3, true)
	known, val := f.Lookup(3)
	if !known || !val {
		t.Fatal("p3 not known true after the youngest writer resolved")
	}
}

func TestSFPFReset(t *testing.T) {
	f := NewSFPF()
	f.FetchDef(7)
	f.Resolve(7, true)
	f.Reset()
	known, val := f.Lookup(7)
	if !known || val {
		t.Error("reset did not restore known-false")
	}
}

func TestPGUPolicySelects(t *testing.T) {
	defAll := &trace.Event{Kind: trace.KindPredDef}
	defBr := &trace.Event{Kind: trace.KindPredDef, FeedsBranch: true}
	defRg := &trace.Event{Kind: trace.KindPredDef, FeedsBranch: true, FeedsRegionBranch: true}
	br := &trace.Event{Kind: trace.KindBranch}
	cases := []struct {
		p    PGUPolicy
		ev   *trace.Event
		want bool
	}{
		{PGUOff, defAll, false},
		{PGUOff, defRg, false},
		{PGUAll, defAll, true},
		{PGUAll, br, false},
		{PGUBranchGuards, defAll, false},
		{PGUBranchGuards, defBr, true},
		{PGURegionGuards, defBr, false},
		{PGURegionGuards, defRg, true},
	}
	for _, c := range cases {
		if got := c.p.Selects(c.ev); got != c.want {
			t.Errorf("%s.Selects(%+v) = %v, want %v", c.p, c.ev, got, c.want)
		}
	}
}

func TestPGUPolicyStrings(t *testing.T) {
	want := map[PGUPolicy]string{
		PGUOff: "off", PGUAll: "all",
		PGUBranchGuards: "branch-guards", PGURegionGuards: "region-guards",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
}

func TestNewPGUNilForNonGlobalPredictor(t *testing.T) {
	if NewPGU(PGUAll, bpred.NewBimodal(8)) != nil {
		t.Error("PGU created over a predictor with no global history")
	}
	if NewPGU(PGUOff, bpred.NewGShare(8, 8)) != nil {
		t.Error("PGU created with policy off")
	}
	if NewPGU(PGUAll, bpred.NewGShare(8, 8)) == nil {
		t.Error("PGU not created over gshare")
	}
}

func collectT(t *testing.T, p *prog.Program) *trace.Trace {
	t.Helper()
	tr, err := trace.Collect(p, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSFPFFiltersAndNeverErrs(t *testing.T) {
	tr := collectT(t, workload.FalsePathDemo(2000, 8, 42))
	base := Evaluate(tr, EvalConfig{Predictor: bpred.NewGShare(12, 8)})
	filt := Evaluate(tr, EvalConfig{
		Predictor:    bpred.NewGShare(12, 8),
		UseSFPF:      true,
		ResolveDelay: DefaultResolveDelay,
	})
	if filt.FilterErrors != 0 {
		t.Fatalf("filter errors: %d (the 100%% accuracy claim is broken)", filt.FilterErrors)
	}
	if filt.Filtered == 0 {
		t.Fatal("filter never fired")
	}
	// Roughly half the region branches have a false guard; nearly all
	// should be filtered (define-to-branch distance is 9 > delay 6).
	if got := float64(filt.Filtered) / float64(filt.RegionBranches); got < 0.35 {
		t.Errorf("filter coverage of region branches = %.2f, want ~0.5", got)
	}
	// The unfiltered stream is all-taken: the predictor should now be
	// nearly perfect. The baseline sees a ~50/50 stream.
	if filt.Mispredicts*4 > base.Mispredicts {
		t.Errorf("SFPF did not help enough: base %d -> filtered %d mispredicts",
			base.Mispredicts, filt.Mispredicts)
	}
}

func TestSFPFRespectsResolveDelay(t *testing.T) {
	// With only 2 instructions between define and branch, a delay of 6
	// must prevent filtering; a delay of 2 must allow it.
	tr := collectT(t, workload.FalsePathDemo(500, 1, 43))
	near := Evaluate(tr, EvalConfig{
		Predictor: bpred.NewGShare(12, 8), UseSFPF: true, ResolveDelay: 6,
	})
	if near.Filtered != 0 {
		t.Errorf("filtered %d branches despite unresolved guards", near.Filtered)
	}
	far := Evaluate(tr, EvalConfig{
		Predictor: bpred.NewGShare(12, 8), UseSFPF: true, ResolveDelay: 2,
	})
	if far.Filtered == 0 {
		t.Error("short delay filtered nothing")
	}
}

func TestSFPFFilterTrue(t *testing.T) {
	tr := collectT(t, workload.FalsePathDemo(1000, 8, 44))
	both := Evaluate(tr, EvalConfig{
		Predictor: bpred.NewGShare(12, 8), UseSFPF: true, FilterTrue: true,
		ResolveDelay: DefaultResolveDelay,
	})
	if both.FilterErrors != 0 {
		t.Fatalf("filter errors with FilterTrue: %d", both.FilterErrors)
	}
	if both.FilteredTrue == 0 {
		t.Error("FilterTrue never fired")
	}
	// With both directions filtered, the region branch should contribute
	// almost no mispredictions at all.
	if both.RegionMispredicts > both.RegionBranches/20 {
		t.Errorf("region mispredicts %d of %d with both filters",
			both.RegionMispredicts, both.RegionBranches)
	}
}

func TestPGURestoresCorrelation(t *testing.T) {
	tr := collectT(t, workload.CorrelatedDemo(3000, 9))
	base := Evaluate(tr, EvalConfig{Predictor: bpred.NewGShare(12, 8)})
	pgu := Evaluate(tr, EvalConfig{
		Predictor: bpred.NewGShare(12, 8),
		PGU:       PGUAll, PGUDelay: DefaultPGUDelay,
	})
	if pgu.InsertedBits == 0 {
		t.Fatal("PGU inserted no bits")
	}
	// The correlated branch is ~50% taken on random data: the baseline
	// should mispredict heavily, PGU should nearly eliminate those misses.
	if base.Mispredicts < tr.Branches/8 {
		t.Fatalf("baseline suspiciously good: %d misses / %d branches", base.Mispredicts, tr.Branches)
	}
	if pgu.Mispredicts*3 > base.Mispredicts {
		t.Errorf("PGU did not restore correlation: base %d -> pgu %d", base.Mispredicts, pgu.Mispredicts)
	}
}

func TestPGUDelayMatters(t *testing.T) {
	// If the bit enters the history only after the dependent branch has
	// been predicted, it cannot help.
	tr := collectT(t, workload.CorrelatedDemo(2000, 10))
	late := Evaluate(tr, EvalConfig{
		Predictor: bpred.NewGShare(12, 8),
		PGU:       PGUAll, PGUDelay: 50,
	})
	soon := Evaluate(tr, EvalConfig{
		Predictor: bpred.NewGShare(12, 8),
		PGU:       PGUAll, PGUDelay: 2,
	})
	if soon.Mispredicts*2 > late.Mispredicts {
		t.Errorf("timely insertion (%d) not clearly better than late (%d)",
			soon.Mispredicts, late.Mispredicts)
	}
}

func TestPGUPolicyFiltersDefines(t *testing.T) {
	tr := collectT(t, workload.CorrelatedDemo(500, 11))
	all := Evaluate(tr, EvalConfig{Predictor: bpred.NewGShare(12, 8), PGU: PGUAll, PGUDelay: 2})
	guards := Evaluate(tr, EvalConfig{Predictor: bpred.NewGShare(12, 8), PGU: PGUBranchGuards, PGUDelay: 2})
	region := Evaluate(tr, EvalConfig{Predictor: bpred.NewGShare(12, 8), PGU: PGURegionGuards, PGUDelay: 2})
	if !(all.InsertedBits >= guards.InsertedBits && guards.InsertedBits >= region.InsertedBits) {
		t.Errorf("insertion counts not monotone: all=%d guards=%d region=%d",
			all.InsertedBits, guards.InsertedBits, region.InsertedBits)
	}
	if region.InsertedBits == 0 {
		t.Error("region policy inserted nothing despite region branches")
	}
}

func TestEvaluateMetricsBasics(t *testing.T) {
	tr := collectT(t, workload.FalsePathDemo(200, 8, 5))
	m := Evaluate(tr, EvalConfig{Predictor: bpred.NewBimodal(10)})
	if m.Branches == 0 || m.Insts == 0 {
		t.Fatalf("empty metrics: %+v", m)
	}
	if m.Branches != tr.Branches {
		t.Errorf("branches %d != trace %d", m.Branches, tr.Branches)
	}
	if m.PredDefs != tr.PredDefs {
		t.Errorf("preddefs %d != trace %d", m.PredDefs, tr.PredDefs)
	}
	if m.MispredictRate() < 0 || m.MispredictRate() > 1 {
		t.Errorf("rate out of range: %f", m.MispredictRate())
	}
	if m.MPKI() <= 0 {
		t.Errorf("MPKI = %f", m.MPKI())
	}
	var zero Metrics
	if zero.MispredictRate() != 0 || zero.MPKI() != 0 || zero.RegionMispredictRate() != 0 || zero.FilterCoverage() != 0 {
		t.Error("zero metrics not zero")
	}
}

func TestPerBranchStats(t *testing.T) {
	tr := collectT(t, workload.FalsePathDemo(500, 8, 12))
	m := Evaluate(tr, EvalConfig{
		Predictor: bpred.NewGShare(12, 8), UseSFPF: true, ResolveDelay: 6,
		PerBranch: true,
	})
	if len(m.ByPC) == 0 {
		t.Fatal("no per-branch stats collected")
	}
	var total, mispredicts, filtered uint64
	for _, bs := range m.ByPC {
		total += bs.Count
		mispredicts += bs.Mispredicts
		filtered += bs.Filtered
		if r := bs.MispredictRate(); r < 0 || r > 1 {
			t.Errorf("branch %d rate %f", bs.PC, r)
		}
	}
	if total != m.Branches || mispredicts != m.Mispredicts || filtered != m.Filtered+m.FilteredTrue {
		t.Errorf("per-branch sums (%d,%d,%d) disagree with totals (%d,%d,%d)",
			total, mispredicts, filtered, m.Branches, m.Mispredicts, m.Filtered+m.FilteredTrue)
	}
	top := m.TopMispredicted(3)
	if len(top) == 0 {
		t.Fatal("no top branches")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Mispredicts > top[i-1].Mispredicts {
			t.Error("top list not sorted")
		}
	}
	// Without the flag, no map is built.
	m2 := Evaluate(tr, EvalConfig{Predictor: bpred.NewGShare(12, 8)})
	if m2.ByPC != nil {
		t.Error("per-branch stats collected without the flag")
	}
}

func TestBranchReport(t *testing.T) {
	m := Metrics{ByPC: map[uint64]*BranchStats{
		0x40: {PC: 0x40, Count: 10, Taken: 4, Mispredicts: 4},
		0x10: {PC: 0x10, Count: 6, Taken: 6, Mispredicts: 1},
		0x20: {PC: 0x20, Count: 8, Taken: 2, Mispredicts: 4},
		0x30: {PC: 0x30, Count: 2, Taken: 0, Mispredicts: 0},
	}}
	rep := m.BranchReport(3)
	if rep.StaticBranches != 4 || rep.Events != 26 || rep.Mispredicts != 9 {
		t.Fatalf("totals: %+v", rep)
	}
	// 0x20 and 0x40 tie at 4 mispredicts; the lower PC ranks first.
	wantPCs := []uint64{0x20, 0x40, 0x10}
	if len(rep.Top) != 3 {
		t.Fatalf("top len %d", len(rep.Top))
	}
	for i, want := range wantPCs {
		if rep.Top[i].PC != want {
			t.Errorf("top[%d].PC = %#x, want %#x", i, rep.Top[i].PC, want)
		}
	}
	// Entries are copies, not aliases into ByPC.
	rep.Top[0].Mispredicts = 999
	if m.ByPC[0x20].Mispredicts != 4 {
		t.Error("report aliases the live ByPC map")
	}
	if got, want := rep.Accuracy(), 1-9.0/26.0; got != want {
		t.Errorf("accuracy %f, want %f", got, want)
	}
	var zero BranchReport
	if zero.Accuracy() != 0 {
		t.Error("zero report accuracy not zero")
	}
}

func TestBranchStatsZeroSafe(t *testing.T) {
	bs := &BranchStats{Count: 5, Filtered: 5}
	if bs.MispredictRate() != 0 {
		t.Error("fully filtered branch rate not zero")
	}
}

func TestTrainFilteredKnob(t *testing.T) {
	tr := collectT(t, workload.FalsePathDemo(1000, 8, 6))
	noTrain := Evaluate(tr, EvalConfig{
		Predictor: bpred.NewGShare(12, 8), UseSFPF: true, ResolveDelay: 6,
	})
	train := Evaluate(tr, EvalConfig{
		Predictor: bpred.NewGShare(12, 8), UseSFPF: true, ResolveDelay: 6,
		TrainFiltered: true,
	})
	// Training with filtered (all not-taken) outcomes pollutes the tables
	// for the surviving all-taken stream: it must not be better.
	if train.Mispredicts < noTrain.Mispredicts {
		t.Errorf("training filtered branches helped (%d < %d)?",
			train.Mispredicts, noTrain.Mispredicts)
	}
}
