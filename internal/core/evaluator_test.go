package core

import (
	"reflect"
	"testing"

	"repro/internal/ifconv"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func evalCfg() EvalConfig {
	return EvalConfig{
		Predictor: sim.For("gshare", 12, 8).MustNew(),
		UseSFPF:   true, ResolveDelay: DefaultResolveDelay,
		PGU: PGUAll, PGUDelay: DefaultPGUDelay,
		PerBranch: true,
	}
}

// TestEvaluatorMatchesEvaluateStream feeds the same event stream in
// uneven batches through an incremental Evaluator and in one pass through
// EvaluateStream; the metrics must be identical. This is the guarantee a
// serving session (batch-fed over its lifetime) relies on.
func TestEvaluatorMatchesEvaluateStream(t *testing.T) {
	p, _, err := ifconv.Convert(workload.ByNameMust("bsearch").Build(), ifconv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Collect(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	whole := Evaluate(tr, evalCfg())

	e := NewEvaluator(evalCfg())
	for i := 0; i < len(tr.Events); {
		n := 1 + i%97 // uneven batch sizes, including size 1
		if i+n > len(tr.Events) {
			n = len(tr.Events) - i
		}
		for j := i; j < i+n; j++ {
			e.Feed(&tr.Events[j])
		}
		i += n
	}
	e.AddInsts(tr.Insts)
	if got := e.Metrics(); !reflect.DeepEqual(whole, got) {
		t.Errorf("batched evaluator diverges:\nwhole:   %+v\nbatched: %+v", whole, got)
	}
}

// TestEvaluatorSnapshotIsIndependent takes a mid-stream snapshot and
// checks that continued feeding does not mutate it.
func TestEvaluatorSnapshotIsIndependent(t *testing.T) {
	tr, err := trace.Collect(workload.ByNameMust("scan").Build(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) < 100 {
		t.Fatalf("trace too short: %d events", len(tr.Events))
	}
	e := NewEvaluator(evalCfg())
	for i := 0; i < 50; i++ {
		e.Feed(&tr.Events[i])
	}
	snap := e.MetricsSnapshot()
	frozen := snap.Clone()
	for i := 50; i < len(tr.Events); i++ {
		e.Feed(&tr.Events[i])
	}
	if !reflect.DeepEqual(snap, frozen) {
		t.Error("snapshot mutated by continued feeding")
	}
	if e.Metrics().Branches == snap.Branches {
		t.Error("evaluator did not advance past the snapshot")
	}
}

// TestMetricsClone checks the ByPC map is deep-copied.
func TestMetricsClone(t *testing.T) {
	m := Metrics{Branches: 3, ByPC: map[uint64]*BranchStats{7: {PC: 7, Count: 3}}}
	c := m.Clone()
	m.ByPC[7].Count = 99
	if c.ByPC[7].Count != 3 {
		t.Errorf("clone shares BranchStats: %+v", c.ByPC[7])
	}
	var zero Metrics
	if got := zero.Clone(); got.ByPC != nil {
		t.Errorf("clone of nil ByPC allocated a map")
	}
}

// TestParsePGUPolicy covers the textual policy spellings.
func TestParsePGUPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want PGUPolicy
		ok   bool
	}{
		{"", PGUOff, true},
		{"off", PGUOff, true},
		{"region", PGURegionGuards, true},
		{"region-guards", PGURegionGuards, true},
		{"branch", PGUBranchGuards, true},
		{"branch-guards", PGUBranchGuards, true},
		{"all", PGUAll, true},
		{"everything", PGUOff, false},
	} {
		got, err := ParsePGUPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParsePGUPolicy(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}
