package core
