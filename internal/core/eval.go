package core

import (
	"fmt"
	"sort"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/trace"
)

// DefaultResolveDelay is the default number of dynamic instructions a
// predicate define needs before its value is visible to the fetch stage
// (compare execute latency plus fetch-to-execute pipeline distance on the
// modelled machine).
const DefaultResolveDelay = 6

// DefaultPGUDelay is the default number of dynamic instructions before a
// resolved predicate outcome reaches the global history register.
const DefaultPGUDelay = 2

// EvalConfig configures a trace-driven predictor evaluation.
type EvalConfig struct {
	// Predictor is the baseline predictor; it is Reset before the run.
	Predictor bpred.Predictor

	// UseSFPF enables the squash false path filter.
	UseSFPF bool
	// FilterTrue additionally filters branches whose guard is known true
	// and implies taken (predicted taken with certainty). The paper's
	// filter handles only the false case; this is the E9 ablation.
	FilterTrue bool
	// TrainFiltered makes filtered branches still train the predictor and
	// its history. The default (false) removes them from the predictor's
	// view entirely, avoiding table pollution.
	TrainFiltered bool
	// ResolveDelay is the minimum define-to-branch distance (in dynamic
	// instructions) for the filter to know the guard at fetch.
	ResolveDelay uint64

	// PGU selects the predicate global update policy.
	PGU PGUPolicy
	// PGUDelay is the distance (in dynamic instructions) between a
	// predicate define and its bit entering the history.
	PGUDelay uint64

	// PerBranch additionally collects per-static-branch statistics in
	// Metrics.ByPC (costs one map update per branch event).
	PerBranch bool
}

// BranchStats aggregates the behaviour of one static branch.
type BranchStats struct {
	PC          uint64
	Count       uint64
	Taken       uint64
	Mispredicts uint64
	Filtered    uint64
	Region      bool
}

// MispredictRate returns this branch's misprediction rate over its
// unfiltered executions.
func (b *BranchStats) MispredictRate() float64 {
	unfiltered := b.Count - b.Filtered
	if unfiltered == 0 {
		return 0
	}
	return float64(b.Mispredicts) / float64(unfiltered)
}

// Metrics summarises one evaluation.
type Metrics struct {
	Insts       uint64
	Branches    uint64 // conditional branches seen
	Mispredicts uint64

	RegionBranches    uint64
	RegionMispredicts uint64

	Filtered     uint64 // branches handled by the SFPF (known-false guard)
	FilteredTrue uint64 // branches handled by the FilterTrue extension
	FilterErrors uint64 // must be zero: sanity check of the 100% claim
	PredDefs     uint64
	InsertedBits uint64 // history bits inserted by PGU

	// ByPC holds per-static-branch statistics when EvalConfig.PerBranch
	// was set; nil otherwise.
	ByPC map[uint64]*BranchStats
}

// TopMispredicted returns up to n branches ordered by misprediction count
// (requires PerBranch collection).
func (m *Metrics) TopMispredicted(n int) []*BranchStats {
	out := make([]*BranchStats, 0, len(m.ByPC))
	for _, b := range m.ByPC {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mispredicts != out[j].Mispredicts {
			return out[i].Mispredicts > out[j].Mispredicts
		}
		return out[i].PC < out[j].PC
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// BranchReport is the hard-to-predict-branch (H2P) summary over the
// per-branch statistics: totals across every static branch plus the
// top-K ranking by misprediction count. It requires PerBranch
// collection; without it the report is empty.
type BranchReport struct {
	// StaticBranches counts distinct branch PCs with statistics.
	StaticBranches int
	// Events counts the branch executions those statistics cover.
	Events uint64
	// Mispredicts counts mispredictions across all of them.
	Mispredicts uint64
	// Top holds the hardest branches, most mispredicted first (ties
	// break toward the lower PC, matching TopMispredicted). The entries
	// are value copies — safe to hold after the evaluator moves on.
	Top []BranchStats
}

// Accuracy returns the fraction of covered branch executions that were
// predicted correctly (filtered branches count as correct, consistent
// with Metrics.MispredictRate).
func (r BranchReport) Accuracy() float64 {
	if r.Events == 0 {
		return 0
	}
	return 1 - float64(r.Mispredicts)/float64(r.Events)
}

// BranchReport builds the H2P report with up to k ranked branches.
func (m *Metrics) BranchReport(k int) BranchReport {
	rep := BranchReport{StaticBranches: len(m.ByPC)}
	for _, b := range m.ByPC {
		rep.Events += b.Count
		rep.Mispredicts += b.Mispredicts
	}
	top := m.TopMispredicted(k)
	rep.Top = make([]BranchStats, len(top))
	for i, b := range top {
		rep.Top[i] = *b
	}
	return rep
}

// MispredictRate returns mispredictions per predicted branch. Filtered
// branches count as predicted (they are fetched branches the front end had
// to handle, and the filter always predicts them correctly).
func (m Metrics) MispredictRate() float64 {
	if m.Branches == 0 {
		return 0
	}
	return float64(m.Mispredicts) / float64(m.Branches)
}

// RegionMispredictRate returns the misprediction rate over region-based
// branches only.
func (m Metrics) RegionMispredictRate() float64 {
	if m.RegionBranches == 0 {
		return 0
	}
	return float64(m.RegionMispredicts) / float64(m.RegionBranches)
}

// MPKI returns mispredictions per thousand instructions.
func (m Metrics) MPKI() float64 {
	if m.Insts == 0 {
		return 0
	}
	return 1000 * float64(m.Mispredicts) / float64(m.Insts)
}

// FilterCoverage returns the fraction of conditional branches the filter
// handled.
func (m Metrics) FilterCoverage() float64 {
	if m.Branches == 0 {
		return 0
	}
	return float64(m.Filtered+m.FilteredTrue) / float64(m.Branches)
}

type pendingBit struct {
	applyAt uint64
	bit     bool
}

// Evaluate replays a trace source through the configured predictor and
// mechanisms and returns the resulting metrics. The source's replay must
// be error-free (an in-memory *trace.Trace always is); replaying a live
// source that can fail, e.g. trace.Stream, goes through EvaluateStream.
func Evaluate(src trace.Source, cfg EvalConfig) Metrics {
	m, err := EvaluateStream(src.Replay(), cfg)
	if err != nil {
		panic(fmt.Sprintf("core: replay failed mid-evaluation: %v", err))
	}
	return m
}

// Evaluator is the incremental form of the trace-driven evaluator: events
// are fed one at a time and the metrics so far can be read between feeds.
// EvaluateStream is a thin loop over it; long-lived consumers — the
// serving daemon's sessions, which receive a branch stream in client-sized
// batches over an arbitrary lifetime — feed events as they arrive.
//
// An Evaluator is not safe for concurrent use; the owner serialises Feed
// and MetricsSnapshot calls.
type Evaluator struct {
	cfg     EvalConfig
	p       bpred.Predictor
	obs     bpred.HistoryObserver
	pgu     *PGU
	pending []pendingBit
	m       Metrics
}

// NewEvaluator resets cfg.Predictor and prepares incremental evaluation
// with exactly the semantics of EvaluateStream over the same event order.
func NewEvaluator(cfg EvalConfig) *Evaluator {
	p := cfg.Predictor
	p.Reset()
	e := &Evaluator{cfg: cfg, p: p, pgu: NewPGU(cfg.PGU, p)}
	e.obs, _ = p.(bpred.HistoryObserver)
	return e
}

// flush applies pending predicate-history bits whose delay has elapsed.
//
// Drained entries are compacted away rather than re-sliced off the front:
// a long-lived evaluator (a serving session fed a PGU-heavy stream for
// days) must not march its pending slice through an ever-growing backing
// array. A full drain resets length in place; a partial drain where the
// drained prefix dominates copies the survivors to the front; only a
// small drain off a large remainder advances the slice, and the next
// dominating drain pulls it back.
func (e *Evaluator) flush(now uint64) {
	i := 0
	for ; i < len(e.pending) && e.pending[i].applyAt <= now; i++ {
		if e.obs != nil {
			e.obs.ObserveBit(e.pending[i].bit)
			e.m.InsertedBits++
		}
	}
	if i == 0 {
		return
	}
	rem := len(e.pending) - i
	switch {
	case rem == 0:
		e.pending = e.pending[:0]
	case i >= rem:
		copy(e.pending, e.pending[i:])
		e.pending = e.pending[:rem]
	default:
		e.pending = e.pending[i:]
	}
}

// Feed advances the evaluation by one event. Events must arrive in
// dynamic order (non-decreasing Step), as a trace replay produces them.
func (e *Evaluator) Feed(ev *trace.Event) {
	e.flush(ev.Step)
	switch ev.Kind {
	case trace.KindPredDef:
		e.m.PredDefs++
		if e.pgu != nil && e.pgu.Policy.Selects(ev) && ev.Executed {
			e.pending = append(e.pending, pendingBit{applyAt: ev.Step + e.cfg.PGUDelay, bit: ev.Value})
		}
	case trace.KindBranch:
		e.m.Branches++
		if ev.Region {
			e.m.RegionBranches++
		}
		var bs *BranchStats
		if e.cfg.PerBranch {
			if e.m.ByPC == nil {
				e.m.ByPC = make(map[uint64]*BranchStats)
			}
			bs = e.m.ByPC[ev.PC]
			if bs == nil {
				bs = &BranchStats{PC: ev.PC, Region: ev.Region}
				e.m.ByPC[ev.PC] = bs
			}
			bs.Count++
			if ev.Taken {
				bs.Taken++
			}
		}
		if e.cfg.UseSFPF && ev.Guard != isa.P0 && ev.GuardDist >= e.cfg.ResolveDelay {
			if !ev.GuardVal {
				// Known-false guard: the branch cannot be taken.
				e.m.Filtered++
				if ev.Taken {
					e.m.FilterErrors++ // impossible by ISA semantics
				}
				if bs != nil {
					bs.Filtered++
				}
				if e.cfg.TrainFiltered {
					e.p.Update(ev.PC, ev.Taken)
				}
				return
			}
			if e.cfg.FilterTrue && ev.GuardImpliesTaken {
				// Known-true guard on a guard-implies-taken branch.
				e.m.FilteredTrue++
				if !ev.Taken {
					e.m.FilterErrors++
				}
				if bs != nil {
					bs.Filtered++
				}
				if e.cfg.TrainFiltered {
					e.p.Update(ev.PC, ev.Taken)
				}
				return
			}
		}
		pred := e.p.Predict(ev.PC)
		if pred != ev.Taken {
			e.m.Mispredicts++
			if ev.Region {
				e.m.RegionMispredicts++
			}
			if bs != nil {
				bs.Mispredicts++
			}
		}
		e.p.Update(ev.PC, ev.Taken)
	}
}

// AddInsts credits n dynamic instructions to the metrics. Batch-streaming
// clients report instruction counts per batch; a whole-trace replay
// instead sets the total from the reader's counts (see EvaluateStream).
func (e *Evaluator) AddInsts(n uint64) { e.m.Insts += n }

// Metrics returns the metrics accumulated so far. The ByPC map is the
// evaluator's own: callers that keep feeding must use MetricsSnapshot
// instead.
func (e *Evaluator) Metrics() Metrics { return e.m }

// MetricsSnapshot returns an independent copy of the metrics accumulated
// so far, safe to hold while the evaluator keeps feeding. It clones only
// the metrics — the full durable-state snapshot (predictor tables,
// histories, the pending predicate-bit queue) is internal/snap's job.
func (e *Evaluator) MetricsSnapshot() Metrics { return e.m.Clone() }

// Config returns the evaluation configuration, with the Predictor field
// cleared: the predictor itself stays owned by the evaluator. Snapshot
// writers persist this alongside the predictor spec so a restore can
// rebuild an identically configured evaluator.
func (e *Evaluator) Config() EvalConfig {
	cfg := e.cfg
	cfg.Predictor = nil
	return cfg
}

// Predictor returns the evaluator's predictor. Callers must not train or
// reset it behind the evaluator's back; the accessor exists so snapshot
// writers (internal/snap) can serialize its state.
func (e *Evaluator) Predictor() bpred.Predictor { return e.p }

// Clone returns a deep copy of m (the ByPC per-branch map is copied).
func (m Metrics) Clone() Metrics {
	out := m
	if m.ByPC != nil {
		out.ByPC = make(map[uint64]*BranchStats, len(m.ByPC))
		for pc, bs := range m.ByPC {
			c := *bs
			out.ByPC[pc] = &c
		}
	}
	return out
}

// evalBatchSize is the event-batch granularity EvaluateStream feeds the
// specialized batch path with when the reader cannot expose contiguous
// views itself. Large enough to amortise the per-batch type switch to
// nothing, small enough to stay cache-resident (24 B/event ≈ 96 KiB).
const evalBatchSize = 4096

// EvaluateStream replays one event stream through the configured
// predictor and mechanisms and returns the resulting metrics. It is the
// streaming core of the trace-driven evaluator: events are consumed as
// produced, so a reader backed by a live emulator run evaluates in
// constant memory.
//
// Events are fed through the batch fast path (FeedBatch): a reader that
// implements trace.BatchReader — the materialized in-memory trace does —
// hands over contiguous event views with zero copying; any other reader
// is gathered into a scratch buffer batch by batch.
func EvaluateStream(r trace.Reader, cfg EvalConfig) (Metrics, error) {
	e := NewEvaluator(cfg)
	if br, ok := r.(trace.BatchReader); ok {
		for {
			batch := br.NextBatch(evalBatchSize)
			if len(batch) == 0 {
				break
			}
			e.FeedBatch(batch)
		}
	} else {
		buf := make([]trace.Event, evalBatchSize)
		for {
			n := 0
			for n < len(buf) && r.Next(&buf[n]) {
				n++
			}
			if n == 0 {
				break
			}
			e.FeedBatch(buf[:n])
		}
	}
	if err := r.Err(); err != nil {
		return e.m, err
	}
	e.m.Insts = r.Counts().Insts
	return e.m, nil
}
