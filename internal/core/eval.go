package core

import (
	"fmt"
	"sort"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/trace"
)

// DefaultResolveDelay is the default number of dynamic instructions a
// predicate define needs before its value is visible to the fetch stage
// (compare execute latency plus fetch-to-execute pipeline distance on the
// modelled machine).
const DefaultResolveDelay = 6

// DefaultPGUDelay is the default number of dynamic instructions before a
// resolved predicate outcome reaches the global history register.
const DefaultPGUDelay = 2

// EvalConfig configures a trace-driven predictor evaluation.
type EvalConfig struct {
	// Predictor is the baseline predictor; it is Reset before the run.
	Predictor bpred.Predictor

	// UseSFPF enables the squash false path filter.
	UseSFPF bool
	// FilterTrue additionally filters branches whose guard is known true
	// and implies taken (predicted taken with certainty). The paper's
	// filter handles only the false case; this is the E9 ablation.
	FilterTrue bool
	// TrainFiltered makes filtered branches still train the predictor and
	// its history. The default (false) removes them from the predictor's
	// view entirely, avoiding table pollution.
	TrainFiltered bool
	// ResolveDelay is the minimum define-to-branch distance (in dynamic
	// instructions) for the filter to know the guard at fetch.
	ResolveDelay uint64

	// PGU selects the predicate global update policy.
	PGU PGUPolicy
	// PGUDelay is the distance (in dynamic instructions) between a
	// predicate define and its bit entering the history.
	PGUDelay uint64

	// PerBranch additionally collects per-static-branch statistics in
	// Metrics.ByPC (costs one map update per branch event).
	PerBranch bool
}

// BranchStats aggregates the behaviour of one static branch.
type BranchStats struct {
	PC          uint64
	Count       uint64
	Taken       uint64
	Mispredicts uint64
	Filtered    uint64
	Region      bool
}

// MispredictRate returns this branch's misprediction rate over its
// unfiltered executions.
func (b *BranchStats) MispredictRate() float64 {
	unfiltered := b.Count - b.Filtered
	if unfiltered == 0 {
		return 0
	}
	return float64(b.Mispredicts) / float64(unfiltered)
}

// Metrics summarises one evaluation.
type Metrics struct {
	Insts       uint64
	Branches    uint64 // conditional branches seen
	Mispredicts uint64

	RegionBranches    uint64
	RegionMispredicts uint64

	Filtered     uint64 // branches handled by the SFPF (known-false guard)
	FilteredTrue uint64 // branches handled by the FilterTrue extension
	FilterErrors uint64 // must be zero: sanity check of the 100% claim
	PredDefs     uint64
	InsertedBits uint64 // history bits inserted by PGU

	// ByPC holds per-static-branch statistics when EvalConfig.PerBranch
	// was set; nil otherwise.
	ByPC map[uint64]*BranchStats
}

// TopMispredicted returns up to n branches ordered by misprediction count
// (requires PerBranch collection).
func (m *Metrics) TopMispredicted(n int) []*BranchStats {
	out := make([]*BranchStats, 0, len(m.ByPC))
	for _, b := range m.ByPC {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mispredicts != out[j].Mispredicts {
			return out[i].Mispredicts > out[j].Mispredicts
		}
		return out[i].PC < out[j].PC
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// MispredictRate returns mispredictions per predicted branch. Filtered
// branches count as predicted (they are fetched branches the front end had
// to handle, and the filter always predicts them correctly).
func (m Metrics) MispredictRate() float64 {
	if m.Branches == 0 {
		return 0
	}
	return float64(m.Mispredicts) / float64(m.Branches)
}

// RegionMispredictRate returns the misprediction rate over region-based
// branches only.
func (m Metrics) RegionMispredictRate() float64 {
	if m.RegionBranches == 0 {
		return 0
	}
	return float64(m.RegionMispredicts) / float64(m.RegionBranches)
}

// MPKI returns mispredictions per thousand instructions.
func (m Metrics) MPKI() float64 {
	if m.Insts == 0 {
		return 0
	}
	return 1000 * float64(m.Mispredicts) / float64(m.Insts)
}

// FilterCoverage returns the fraction of conditional branches the filter
// handled.
func (m Metrics) FilterCoverage() float64 {
	if m.Branches == 0 {
		return 0
	}
	return float64(m.Filtered+m.FilteredTrue) / float64(m.Branches)
}

type pendingBit struct {
	applyAt uint64
	bit     bool
}

// Evaluate replays a trace source through the configured predictor and
// mechanisms and returns the resulting metrics. The source's replay must
// be error-free (an in-memory *trace.Trace always is); replaying a live
// source that can fail, e.g. trace.Stream, goes through EvaluateStream.
func Evaluate(src trace.Source, cfg EvalConfig) Metrics {
	m, err := EvaluateStream(src.Replay(), cfg)
	if err != nil {
		panic(fmt.Sprintf("core: replay failed mid-evaluation: %v", err))
	}
	return m
}

// EvaluateStream replays one event stream through the configured
// predictor and mechanisms and returns the resulting metrics. It is the
// streaming core of the trace-driven evaluator: events are consumed as
// produced, so a reader backed by a live emulator run evaluates in
// constant memory.
func EvaluateStream(r trace.Reader, cfg EvalConfig) (Metrics, error) {
	p := cfg.Predictor
	p.Reset()
	pgu := NewPGU(cfg.PGU, p)

	var m Metrics

	var pending []pendingBit
	flush := func(now uint64) {
		i := 0
		for ; i < len(pending) && pending[i].applyAt <= now; i++ {
			if obs, ok := p.(bpred.HistoryObserver); ok {
				obs.ObserveBit(pending[i].bit)
				m.InsertedBits++
			}
		}
		if i > 0 {
			pending = pending[i:]
		}
	}

	var evBuf trace.Event
	for r.Next(&evBuf) {
		ev := &evBuf
		flush(ev.Step)
		switch ev.Kind {
		case trace.KindPredDef:
			m.PredDefs++
			if pgu != nil && pgu.Policy.Selects(ev) && ev.Executed {
				pending = append(pending, pendingBit{applyAt: ev.Step + cfg.PGUDelay, bit: ev.Value})
			}
		case trace.KindBranch:
			m.Branches++
			if ev.Region {
				m.RegionBranches++
			}
			var bs *BranchStats
			if cfg.PerBranch {
				if m.ByPC == nil {
					m.ByPC = make(map[uint64]*BranchStats)
				}
				bs = m.ByPC[ev.PC]
				if bs == nil {
					bs = &BranchStats{PC: ev.PC, Region: ev.Region}
					m.ByPC[ev.PC] = bs
				}
				bs.Count++
				if ev.Taken {
					bs.Taken++
				}
			}
			if cfg.UseSFPF && ev.Guard != isa.P0 && ev.GuardDist >= cfg.ResolveDelay {
				if !ev.GuardVal {
					// Known-false guard: the branch cannot be taken.
					m.Filtered++
					if ev.Taken {
						m.FilterErrors++ // impossible by ISA semantics
					}
					if bs != nil {
						bs.Filtered++
					}
					if cfg.TrainFiltered {
						p.Update(ev.PC, ev.Taken)
					}
					continue
				}
				if cfg.FilterTrue && ev.GuardImpliesTaken {
					// Known-true guard on a guard-implies-taken branch.
					m.FilteredTrue++
					if !ev.Taken {
						m.FilterErrors++
					}
					if bs != nil {
						bs.Filtered++
					}
					if cfg.TrainFiltered {
						p.Update(ev.PC, ev.Taken)
					}
					continue
				}
			}
			pred := p.Predict(ev.PC)
			if pred != ev.Taken {
				m.Mispredicts++
				if ev.Region {
					m.RegionMispredicts++
				}
				if bs != nil {
					bs.Mispredicts++
				}
			}
			p.Update(ev.PC, ev.Taken)
		}
	}
	if err := r.Err(); err != nil {
		return m, err
	}
	m.Insts = r.Counts().Insts
	return m, nil
}
