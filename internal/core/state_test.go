package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workload"
)

// feedEvents runs the first n events of tr through e.
func feedEvents(e *Evaluator, tr *trace.Trace, n int) {
	for i := 0; i < n; i++ {
		e.Feed(&tr.Events[i])
	}
}

// TestStateRoundTripMidStream cuts a run in the middle, serializes the
// evaluator + predictor state, restores into a fresh evaluator, and
// finishes the run on both. The restored evaluator must produce
// identical metrics AND identical re-encoded state bytes — the
// canonicality contract internal/snap builds on.
func TestStateRoundTripMidStream(t *testing.T) {
	tr, err := trace.Collect(workload.ByNameMust("bsearch").Build(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(tr.Events) / 2

	ref := NewEvaluator(evalCfg())
	feedEvents(ref, tr, len(tr.Events))
	ref.AddInsts(tr.Insts)

	src := NewEvaluator(evalCfg())
	feedEvents(src, tr, cut)
	blob := src.AppendState(nil)
	pblob := src.Predictor().(interface {
		AppendState(buf []byte) []byte
	}).AppendState(nil)

	dst := NewEvaluator(evalCfg())
	if err := dst.LoadState(wire.NewCursor(blob)); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if err := dst.Predictor().(interface {
		LoadState(c *wire.Cursor) error
	}).LoadState(wire.NewCursor(pblob)); err != nil {
		t.Fatalf("predictor LoadState: %v", err)
	}
	if got := dst.AppendState(nil); !bytes.Equal(got, blob) {
		t.Fatalf("re-encoded state differs from source (%d vs %d bytes)", len(got), len(blob))
	}

	for i := cut; i < len(tr.Events); i++ {
		dst.Feed(&tr.Events[i])
	}
	dst.AddInsts(tr.Insts)
	if want, got := ref.Metrics(), dst.Metrics(); !reflect.DeepEqual(want, got) {
		t.Errorf("restored evaluator diverges:\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestStateRoundTripNoPerBranch covers the ByPC-absent encoding.
func TestStateRoundTripNoPerBranch(t *testing.T) {
	cfg := evalCfg()
	cfg.PerBranch = false
	tr, err := trace.Collect(workload.ByNameMust("scan").Build(), 0)
	if err != nil {
		t.Fatal(err)
	}
	src := NewEvaluator(cfg)
	feedEvents(src, tr, len(tr.Events)/3)
	blob := src.AppendState(nil)

	dst := NewEvaluator(cfg)
	if err := dst.LoadState(wire.NewCursor(blob)); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if dst.Metrics().ByPC != nil {
		t.Error("restored evaluator grew a ByPC map the source did not have")
	}
	if got := dst.AppendState(nil); !bytes.Equal(got, blob) {
		t.Error("re-encoded state differs from source")
	}
}

// TestLoadStateRejectsMalformed exercises every LoadState error path:
// truncation at each section, count fields larger than the remaining
// bytes could hold (allocation bound), and per-branch entries violating
// the strictly-increasing-PC canonical order.
func TestLoadStateRejectsMalformed(t *testing.T) {
	tr, err := trace.Collect(workload.ByNameMust("bsearch").Build(), 0)
	if err != nil {
		t.Fatal(err)
	}
	src := NewEvaluator(evalCfg())
	feedEvents(src, tr, len(tr.Events)/2)
	good := src.AppendState(nil)
	if err := NewEvaluator(evalCfg()).LoadState(wire.NewCursor(good)); err != nil {
		t.Fatalf("sanity: good blob rejected: %v", err)
	}

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 2, 5, len(good) / 2, len(good) - 1} {
			if err := NewEvaluator(evalCfg()).LoadState(wire.NewCursor(good[:n])); err == nil {
				t.Errorf("accepted truncation to %d bytes", n)
			}
		}
	})

	t.Run("huge pending count", func(t *testing.T) {
		blob := wire.AppendU32(nil, 1<<30)
		if err := NewEvaluator(evalCfg()).LoadState(wire.NewCursor(blob)); err == nil {
			t.Error("accepted pending count exceeding input size")
		}
	})

	t.Run("huge perbranch count", func(t *testing.T) {
		blob := wire.AppendU32(nil, 0) // no pending bits
		for i := 0; i < 10; i++ {
			blob = wire.AppendU64(blob, 0) // counters
		}
		blob = wire.AppendBool(blob, true)
		blob = wire.AppendU32(blob, 1<<30)
		if err := NewEvaluator(evalCfg()).LoadState(wire.NewCursor(blob)); err == nil {
			t.Error("accepted per-branch count exceeding input size")
		}
	})

	t.Run("non-increasing PCs", func(t *testing.T) {
		appendBranch := func(blob []byte, pc uint64) []byte {
			blob = wire.AppendU64(blob, pc)
			for i := 0; i < 4; i++ {
				blob = wire.AppendU64(blob, 1)
			}
			return wire.AppendBool(blob, false)
		}
		blob := wire.AppendU32(nil, 0)
		for i := 0; i < 10; i++ {
			blob = wire.AppendU64(blob, 0)
		}
		blob = wire.AppendBool(blob, true)
		blob = wire.AppendU32(blob, 2)
		blob = appendBranch(blob, 7)
		blob = appendBranch(blob, 7) // duplicate PC: not strictly increasing
		if err := NewEvaluator(evalCfg()).LoadState(wire.NewCursor(blob)); err == nil {
			t.Error("accepted per-branch stats with non-increasing PCs")
		}
	})

	t.Run("failed load leaves evaluator intact", func(t *testing.T) {
		e := NewEvaluator(evalCfg())
		feedEvents(e, tr, 100)
		before := e.Metrics()
		if err := e.LoadState(wire.NewCursor(good[:len(good)-1])); err == nil {
			t.Fatal("truncated blob accepted")
		}
		if got := e.Metrics(); !reflect.DeepEqual(before, got) {
			t.Error("failed LoadState mutated the evaluator")
		}
	})
}

// TestConfigAccessorStripsPredictor pins the accessor contract snapshot
// writers rely on: Config returns the evaluation parameters without
// leaking the live predictor, and Predictor returns the live instance.
func TestConfigAccessorStripsPredictor(t *testing.T) {
	e := NewEvaluator(evalCfg())
	cfg := e.Config()
	if cfg.Predictor != nil {
		t.Error("Config() leaked the live predictor")
	}
	if cfg.PGU != PGUAll || !cfg.UseSFPF || !cfg.PerBranch {
		t.Errorf("Config() dropped parameters: %+v", cfg)
	}
	if e.Predictor() == nil {
		t.Error("Predictor() returned nil")
	}
}
