// Package core implements the paper's two contributions:
//
//   - the squash false path filter (SFPF): a fetch-stage structure tracking
//     resolved predicate values; a fetched branch whose qualifying predicate
//     is known false is predicted not-taken with 100% accuracy and bypasses
//     the normal predictor;
//   - the predicate global update (PGU) branch predictor: predicate-define
//     outcomes are shifted into the global branch history, restoring the
//     correlation bits that if-conversion removed from the branch stream.
//
// The trace-driven evaluator (Evaluate) combines either or both mechanisms
// with any baseline predictor from internal/bpred; internal/pipeline uses
// the same SFPF type with exact cycle-level resolve tracking.
package core

import "repro/internal/isa"

// SFPF is the squash false path filter: a fetch-stage predicate scoreboard.
// Each predicate register is either known (with its value) or unknown.
// Fetching an instruction that may write a predicate makes that predicate
// unknown; when the instruction resolves, the predicate becomes known
// again with its architectural value. A branch guard that is known at
// fetch determines the branch outcome with certainty.
type SFPF struct {
	known    [isa.NumPRegs]bool
	value    [isa.NumPRegs]bool
	inflight [isa.NumPRegs]uint32
}

// NewSFPF returns a filter with every predicate known in its reset state
// (architecturally, predicates reset to false and p0 to true).
func NewSFPF() *SFPF {
	f := &SFPF{}
	f.Reset()
	return f
}

// Reset restores the post-reset architectural state: all predicates known,
// p0 true, the rest false.
func (f *SFPF) Reset() {
	for i := range f.known {
		f.known[i] = true
		f.value[i] = false
		f.inflight[i] = 0
	}
	f.value[isa.P0] = true
}

// FetchDef records that an instruction which may write the given
// predicates has been fetched: their values become unknown until every
// in-flight writer has resolved.
func (f *SFPF) FetchDef(preds ...isa.PReg) {
	for _, p := range preds {
		if p == isa.P0 {
			continue
		}
		f.known[p] = false
		f.inflight[p]++
	}
}

// Resolve records the architectural value of a predicate once one of its
// in-flight writers has executed. Writers must resolve in fetch order; the
// predicate becomes known again only when the newest writer resolves, so a
// stale resolve can never expose a value that a younger in-flight define
// is about to overwrite — this is what preserves the filter's 100%
// accuracy guarantee.
func (f *SFPF) Resolve(p isa.PReg, v bool) {
	if p == isa.P0 {
		return
	}
	if f.inflight[p] > 0 {
		f.inflight[p]--
	}
	if f.inflight[p] == 0 {
		f.known[p] = true
		f.value[p] = v
	}
}

// Lookup reports whether the guard's value is known at fetch, and if so
// what it is. p0 is always known true.
func (f *SFPF) Lookup(g isa.PReg) (known, val bool) {
	return f.known[g], f.value[g]
}
