package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/rng"
	"repro/internal/trace"
)

// specializedPredictors builds one instance of every concrete predictor
// kind the FeedBatch type switch devirtualizes.
func specializedPredictors() map[string]func() bpred.Predictor {
	return map[string]func() bpred.Predictor{
		"static":     func() bpred.Predictor { return bpred.NewStatic(true) },
		"bimodal":    func() bpred.Predictor { return bpred.NewBimodal(10) },
		"gshare":     func() bpred.Predictor { return bpred.NewGShare(10, 8) },
		"gselect":    func() bpred.Predictor { return bpred.NewGSelect(10, 6) },
		"gag":        func() bpred.Predictor { return bpred.NewGAg(10) },
		"local":      func() bpred.Predictor { return bpred.NewLocal(8, 8, 8) },
		"tournament": func() bpred.Predictor { return bpred.NewTournament(10, 8) },
		"agree":      func() bpred.Predictor { return bpred.NewAgree(10, 8) },
		"perceptron": func() bpred.Predictor { return bpred.NewPerceptron(8, 12) },
	}
}

// syntheticBatch builds a reusable event batch that exercises the filter
// and PGU arms of the feed loop: unguarded and guarded branches (both
// guard values), region branches, and executed predicate defines. Every
// Step is zero so the batch can be replayed indefinitely (Feed requires
// non-decreasing steps) with a zero PGUDelay flushing each pending bit on
// the following event.
func syntheticBatch(n int) []trace.Event {
	r := rng.New(11)
	evs := make([]trace.Event, n)
	for i := range evs {
		if i%4 == 3 {
			evs[i] = trace.Event{
				Kind: trace.KindPredDef, PC: uint64(i % 64),
				Executed: r.Chance(0.9), Value: r.Bool(),
				FeedsBranch: true, FeedsRegionBranch: i%8 == 7,
			}
			continue
		}
		ev := trace.Event{
			Kind: trace.KindBranch, PC: uint64(i % 128),
			Taken: r.Bool(), Region: i%5 == 0,
		}
		if i%6 == 0 {
			ev.Guard = isa.PReg(1)
			ev.GuardDist = 16
			ev.GuardImpliesTaken = true
			// A known-false guard forces the branch not taken; keep the
			// event consistent so FilterErrors stays zero.
			ev.GuardVal = ev.Taken
		}
		evs[i] = ev
	}
	return evs
}

// TestFeedBatchZeroAllocs pins the fast path's per-event allocation count
// to zero for every specialized predictor kind: after one warm-up batch
// (which sizes the pending-bit buffer), steady-state FeedBatch calls on
// the serving hot path must not allocate at all.
func TestFeedBatchZeroAllocs(t *testing.T) {
	events := syntheticBatch(512)
	configs := map[string]EvalConfig{
		// The featured path: filter and PGU arms live, pending bits flowing.
		"featured": {UseSFPF: true, ResolveDelay: 4, PGU: PGUAll, PGUDelay: 0},
		// The tight prediction-only path the serving hot loop runs.
		"tight": {},
	}
	for cfgName, cfg := range configs {
		for name, build := range specializedPredictors() {
			t.Run(cfgName+"/"+name, func(t *testing.T) {
				cfg := cfg
				cfg.Predictor = build()
				e := NewEvaluator(cfg)
				e.FeedBatch(events)
				if avg := testing.AllocsPerRun(50, func() { e.FeedBatch(events) }); avg != 0 {
					t.Errorf("FeedBatch allocates %.2f times per batch on %s; want 0", avg, name)
				}
				if e.Metrics().FilterErrors != 0 {
					t.Errorf("synthetic batch produced %d filter errors", e.Metrics().FilterErrors)
				}
			})
		}
	}
}

// TestFeedBatchMatchesFeedSynthetic checks batch-vs-generic equivalence
// on the synthetic stream, whose guarded events exercise both filter arms
// with TrainFiltered on — a corner the workload-derived oracle cases
// reach only through if-conversion.
func TestFeedBatchMatchesFeedSynthetic(t *testing.T) {
	events := syntheticBatch(4096)
	configs := map[string]EvalConfig{
		// Everything on, including both filter arms with TrainFiltered — a
		// corner the workload-derived oracle cases reach only through
		// if-conversion.
		"featured": {
			UseSFPF: true, FilterTrue: true, TrainFiltered: true, ResolveDelay: 4,
			PGU: PGUAll, PGUDelay: 0, PerBranch: true,
		},
		// Everything off: the tight prediction-only loop.
		"tight": {},
	}
	for cfgName, base := range configs {
		for name, build := range specializedPredictors() {
			t.Run(cfgName+"/"+name, func(t *testing.T) {
				cfg := base
				cfg.Predictor = build()
				gen := NewEvaluator(cfg)
				for i := range events {
					gen.Feed(&events[i])
				}
				cfg.Predictor = build()
				bat := NewEvaluator(cfg)
				for i := 0; i < len(events); i += 100 {
					end := i + 100
					if end > len(events) {
						end = len(events)
					}
					bat.FeedBatch(events[i:end])
				}
				if got, want := bat.Metrics(), gen.Metrics(); !reflect.DeepEqual(got, want) {
					t.Errorf("batch metrics diverge from per-event Feed:\n%s", metricsDiffTest(got, want))
				}
			})
		}
	}
}

// TestFeedBatchesMatchesFeedBatch checks the grouped entry point: feeding
// a set of batches through one FeedBatches call must produce metrics
// identical to feeding each batch through FeedBatch in order, for every
// specialized kind and for the generic fallback.
func TestFeedBatchesMatchesFeedBatch(t *testing.T) {
	events := syntheticBatch(4096)
	// Uneven batch sizes, including an empty one mid-group.
	cuts := []int{0, 700, 700, 1234, 2048, 4000, 4096}
	var batches [][]trace.Event
	for i := 1; i < len(cuts); i++ {
		batches = append(batches, events[cuts[i-1]:cuts[i]])
	}
	builders := specializedPredictors()
	builders["fallback"] = func() bpred.Predictor { return &unregisteredPredictor{} }
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			cfg := EvalConfig{
				UseSFPF: true, FilterTrue: true, TrainFiltered: true, ResolveDelay: 4,
				PGU: PGUAll, PGUDelay: 0, PerBranch: true,
			}
			cfg.Predictor = build()
			one := NewEvaluator(cfg)
			for _, b := range batches {
				one.FeedBatch(b)
			}
			cfg.Predictor = build()
			grouped := NewEvaluator(cfg)
			grouped.FeedBatches(batches)
			if got, want := grouped.Metrics(), one.Metrics(); !reflect.DeepEqual(got, want) {
				t.Errorf("FeedBatches metrics diverge from per-batch FeedBatch:\n%s", metricsDiffTest(got, want))
			}
		})
	}
}

// metricsDiffTest mirrors the oracle's field-by-field diff for readable
// failures without importing internal/oracle (which imports core).
func metricsDiffTest(a, b Metrics) string {
	av, bv := reflect.ValueOf(a), reflect.ValueOf(b)
	out := ""
	for i := 0; i < av.NumField(); i++ {
		if !reflect.DeepEqual(av.Field(i).Interface(), bv.Field(i).Interface()) {
			out += fmt.Sprintf("%s: got %v want %v\n",
				av.Type().Field(i).Name, av.Field(i), bv.Field(i))
		}
	}
	return out
}

// unregisteredPredictor is a Predictor outside internal/bpred's concrete
// set, forcing FeedBatch down its generic fallback arm.
type unregisteredPredictor struct{ last bool }

func (u *unregisteredPredictor) Name() string            { return "unregistered" }
func (u *unregisteredPredictor) Predict(pc uint64) bool  { return u.last }
func (u *unregisteredPredictor) Update(_ uint64, t bool) { u.last = t }
func (u *unregisteredPredictor) Reset()                  { u.last = false }

// TestFeedBatchFallback checks the generic fallback arm: a predictor type
// unknown to the type switch must still evaluate, with metrics identical
// to the per-event loop.
func TestFeedBatchFallback(t *testing.T) {
	events := syntheticBatch(2048)
	gen := NewEvaluator(EvalConfig{Predictor: &unregisteredPredictor{}})
	for i := range events {
		gen.Feed(&events[i])
	}
	bat := NewEvaluator(EvalConfig{Predictor: &unregisteredPredictor{}})
	bat.FeedBatch(events)
	if got, want := bat.Metrics(), gen.Metrics(); !reflect.DeepEqual(got, want) {
		t.Errorf("fallback batch metrics diverge:\n%s", metricsDiffTest(got, want))
	}
}

// TestPendingCapacityBounded feeds a long PGU-heavy stream — bursts of
// predicate defines with a large apply delay, drained gradually by
// following branches — and checks the pending-bit buffer's capacity stays
// bounded by the peak in-flight count instead of marching through an
// ever-growing backing array (the long-lived serving-session leak the
// compacting flush prevents).
func TestPendingCapacityBounded(t *testing.T) {
	const (
		burst  = 64
		cycles = 4000
		capMax = 8 * burst
	)
	e := NewEvaluator(EvalConfig{
		Predictor: bpred.NewGShare(10, 8),
		PGU:       PGUAll, PGUDelay: burst, // bits stay pending across the burst
	})
	batch := make([]trace.Event, 0, 2*burst)
	step := uint64(0)
	for cycle := 0; cycle < cycles; cycle++ {
		batch = batch[:0]
		for j := 0; j < burst; j++ {
			batch = append(batch, trace.Event{
				Kind: trace.KindPredDef, Step: step, PC: uint64(j),
				Executed: true, Value: j%2 == 0, FeedsBranch: true,
			})
			step++
		}
		for j := 0; j < burst; j++ {
			batch = append(batch, trace.Event{
				Kind: trace.KindBranch, Step: step, PC: uint64(j), Taken: j%3 == 0,
			})
			step += 3 // staggered steps drain the pending bits partially
		}
		e.FeedBatch(batch)
		if c := cap(e.pending); c > capMax {
			t.Fatalf("cycle %d: pending capacity %d exceeds bound %d (len %d)",
				cycle, c, capMax, len(e.pending))
		}
	}
	if len(e.pending) > burst {
		t.Errorf("pending length %d after final drain; want <= %d", len(e.pending), burst)
	}
	if e.Metrics().InsertedBits == 0 {
		t.Error("stream inserted no history bits; the test did not exercise the PGU path")
	}
}
