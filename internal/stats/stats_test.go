package stats

import (
	"encoding/csv"
	"math"
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("demo", "name", "value")
	t.AddRow("alpha", "1")
	t.AddRow("beta", "22")
	t.AddNote("a note with %d", 42)
	return t
}

func TestTableString(t *testing.T) {
	s := sample().String()
	for _, want := range []string{"demo", "name", "alpha", "22", "note: a note with 42"} {
		if !strings.Contains(s, want) {
			t.Errorf("text output missing %q:\n%s", want, s)
		}
	}
	// Alignment: both data rows should put the value column at the same
	// offset.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	var alphaLine, betaLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "alpha") {
			alphaLine = l
		}
		if strings.HasPrefix(l, "beta") {
			betaLine = l
		}
	}
	if strings.Index(alphaLine, "1") != strings.Index(betaLine, "22") {
		t.Errorf("columns not aligned:\n%s", s)
	}
}

func TestTableMarkdown(t *testing.T) {
	md := sample().Markdown()
	for _, want := range []string{"**demo**", "| name | value |", "| --- | --- |", "| beta | 22 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow(`x,y`, `say "hi"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"say ""hi"""`) {
		t.Errorf("CSV quoting wrong:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
}

// TestTableCSVRFC4180 pins the full quoting rule: cells containing a
// comma, quote, CR, or LF are quoted; everything else passes through
// bare. encoding/csv must be able to read the output back unchanged.
func TestTableCSVRFC4180(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("line\nbreak", "cr\rreturn")
	tb.AddRow("plain", "12.3%")
	out := tb.CSV()
	if !strings.Contains(out, "\"line\nbreak\"") {
		t.Errorf("LF cell not quoted:\n%q", out)
	}
	if !strings.Contains(out, "\"cr\rreturn\"") {
		t.Errorf("CR cell not quoted:\n%q", out)
	}
	if !strings.Contains(out, "plain,12.3%") {
		t.Errorf("bare cells were quoted:\n%q", out)
	}

	r := csv.NewReader(strings.NewReader(out))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV is not readable by encoding/csv: %v", err)
	}
	if len(recs) != 3 || recs[1][0] != "line\nbreak" || recs[1][1] != "cr\rreturn" {
		t.Errorf("round-trip mismatch: %q", recs)
	}
}

func TestAddRowPads(t *testing.T) {
	tb := NewTable("t", "a", "b", "c")
	tb.AddRow("only")
	if len(tb.Rows[0]) != 3 || tb.Rows[0][1] != "" {
		t.Errorf("row not padded: %v", tb.Rows[0])
	}
	tb.AddRow("1", "2", "3", "4") // extra cell dropped
	if len(tb.Rows[1]) != 3 {
		t.Errorf("row not truncated: %v", tb.Rows[1])
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.1234); got != "12.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := F2(1.005); got != "1.00" && got != "1.01" {
		t.Errorf("F2 = %q", got)
	}
	if got := F3(0.12349); got != "0.123" {
		t.Errorf("F3 = %q", got)
	}
	if got := N(42); got != "42" {
		t.Errorf("N = %q", got)
	}
	if got := N(uint64(7)); got != "7" {
		t.Errorf("N uint64 = %q", got)
	}
	if got := Ratio(3, 2); got != "1.50x" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Ratio(1, 0); got != "-" {
		t.Errorf("Ratio zero = %q", got)
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("Geomean(2,8) = %f", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Errorf("Geomean(nil) = %f", got)
	}
	// Zeros are floored, not fatal.
	if got := Geomean([]float64{0, 1}); got <= 0 || math.IsNaN(got) {
		t.Errorf("Geomean with zero = %f", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %f", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %f", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{40, 10, 20, 30} // unsorted on purpose
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {200, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(xs, %v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("Percentile(single, 99) = %v, want 7", got)
	}
	if xs[0] != 40 {
		t.Error("Percentile mutated its input")
	}
}
