// Package stats provides small numeric helpers and a table type used by
// the experiment harness to render paper-style results as aligned text,
// markdown, or CSV.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a titled grid of cells with named columns.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; it pads or truncates to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		w[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	w := t.widths()
	writeRow := func(cells []string) {
		for i := range t.Columns {
			if i > 0 {
				b.WriteString("  ")
			}
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*note: %s*\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values, quoting cells per
// RFC 4180 (any cell containing a comma, quote, CR, or LF is wrapped in
// quotes with embedded quotes doubled).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\r\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cells[i] = esc(c)
	}
	b.WriteString(strings.Join(cells, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			cells[i] = esc(c)
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Pct formats a fraction as a percentage with one decimal ("12.3%").
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// F2 formats with two decimals.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }

// F3 formats with three decimals.
func F3(x float64) string { return fmt.Sprintf("%.3f", x) }

// N formats an integer count.
func N[T ~int | ~int64 | ~uint64 | ~uint](v T) string { return fmt.Sprintf("%d", v) }

// Ratio formats a/b as "1.23x"; returns "-" when b is zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// Geomean returns the geometric mean of xs, ignoring non-positive values
// by flooring them at eps (mispredict rates of exactly 0 would otherwise
// zero the product).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	const eps = 1e-9
	sum := 0.0
	for _, x := range xs {
		if x < eps {
			x = eps
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs by linear
// interpolation between closest ranks. xs need not be sorted; it is not
// modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
