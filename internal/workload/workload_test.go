package workload

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/ifconv"
	"repro/internal/testutil"
	"repro/internal/trace"
)

const runLimit = 3_000_000

func TestRegistry(t *testing.T) {
	ws := All()
	if len(ws) < 10 {
		t.Fatalf("only %d workloads registered", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if w.Description == "" {
			t.Errorf("workload %q has no description", w.Name)
		}
	}
	if _, err := ByName("sort"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("no-such"); err == nil {
		t.Error("ByName accepted unknown name")
	}
	if len(Names()) != len(ws) {
		t.Error("Names length mismatch")
	}
}

func TestAllWorkloadsRunAndHalt(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.Build()
			res, err := emu.RunProgram(p, runLimit)
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			if res.ExitCode != 0 {
				t.Errorf("%s exited %d", w.Name, res.ExitCode)
			}
			if len(res.Output) == 0 {
				t.Errorf("%s produced no output", w.Name)
			}
			if res.Steps < 5000 {
				t.Errorf("%s too small: %d dynamic instructions", w.Name, res.Steps)
			}
		})
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	for _, w := range All() {
		a, b := w.Build(), w.Build()
		ra, err := emu.RunProgram(a, runLimit)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := emu.RunProgram(b, runLimit)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Steps != rb.Steps || len(ra.Output) != len(rb.Output) {
			t.Errorf("%s not deterministic", w.Name)
		}
		for i := range ra.Output {
			if ra.Output[i] != rb.Output[i] {
				t.Errorf("%s output differs at %d", w.Name, i)
			}
		}
	}
}

func TestAllWorkloadsConvertEquivalently(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.Build()
			cp, rep, err := ifconv.Convert(p, ifconv.Config{})
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			if err := testutil.CheckEquivalent(p, cp, runLimit); err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			t.Logf("%s: %d regions, %d eliminated, %d region branches",
				w.Name, len(rep.Regions), rep.TotalEliminated(), rep.TotalRegionBranches())
		})
	}
}

func TestSuiteConversionReducesDynamicBranches(t *testing.T) {
	// Across the whole suite, if-conversion must remove a substantial
	// fraction of dynamic conditional branches — table-1 territory.
	var before, after uint64
	anyRegion := false
	for _, w := range All() {
		p := w.Build()
		cp, _, err := ifconv.Convert(p, ifconv.Config{})
		if err != nil {
			t.Fatal(err)
		}
		tb, err := trace.Collect(p, runLimit)
		if err != nil {
			t.Fatal(err)
		}
		ta, err := trace.Collect(cp, runLimit)
		if err != nil {
			t.Fatal(err)
		}
		before += tb.Branches
		after += ta.Branches
		if ta.RegionBranches > 0 {
			anyRegion = true
		}
	}
	if after >= before {
		t.Errorf("dynamic branches did not drop: %d -> %d", before, after)
	}
	if float64(after) > 0.9*float64(before) {
		t.Errorf("too little conversion: %d -> %d", before, after)
	}
	if !anyRegion {
		t.Error("no workload produced region-based branches")
	}
}

func TestCorrWorkloadKeepsCorrelatedBranch(t *testing.T) {
	w, err := ByName("corr")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build()
	cp, rep, err := ifconv.Convert(p, ifconv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalEliminated() == 0 {
		t.Fatalf("corr: first diamond not converted: %v", rep.Rejected)
	}
	tr, err := trace.Collect(cp, runLimit)
	if err != nil {
		t.Fatal(err)
	}
	// The correlated branch must survive conversion: the converted trace
	// still needs thousands of conditional branches.
	if tr.Branches < 4000 {
		t.Errorf("corr: surviving branches = %d", tr.Branches)
	}
}

func TestSynthTerminates(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		p := Synth(seed, 80)
		res, err := emu.RunProgram(p, runLimit)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.ExitCode != 0 {
			t.Errorf("seed %d exited %d", seed, res.ExitCode)
		}
	}
}

func TestSynthDeterministic(t *testing.T) {
	a := Synth(5, 50)
	b := Synth(5, 50)
	if len(a.Insts) != len(b.Insts) {
		t.Fatal("synth not deterministic")
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("synth differs at instruction %d", i)
		}
	}
}

func TestDemosRun(t *testing.T) {
	fp := FalsePathDemo(500, 8, 1)
	if _, err := emu.RunProgram(fp, runLimit); err != nil {
		t.Fatal(err)
	}
	cd := CorrelatedDemo(500, 1)
	if _, err := emu.RunProgram(cd, runLimit); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Collect(fp, runLimit)
	if err != nil {
		t.Fatal(err)
	}
	if tr.RegionBranches == 0 {
		t.Error("false-path demo has no region branches")
	}
}
