package workload

import (
	"fmt"
	"sort"

	"repro/internal/charz"
	"repro/internal/prog"
)

// Workload is a named deterministic benchmark program. Each is a
// behavioural stand-in for one of the compiled SPEC-era benchmarks the
// paper measured: together they span heavily-biased to near-random branch
// behaviour and weak to strong cross-condition correlation.
type Workload struct {
	Name        string
	Description string
	// Build constructs the (branching, unpredicated) program. Each call
	// returns a fresh, identical program.
	Build func() *prog.Program
}

var registry []Workload

func register(w Workload) {
	registry = append(registry, w)
}

// All returns every registered workload, sorted by name.
func All() []Workload {
	out := append([]Workload(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Suite returns the standard experiment suite (currently all workloads).
func Suite() []Workload { return All() }

// ByName looks a workload up: first in the registry, then — for
// "syn:..." names — in the synthetic charz family, which generates the
// workload from the name's parameters.
func ByName(name string) (Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	if charz.IsSynthetic(name) {
		return synthetic(name)
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// ByNameMust is ByName but panics on unknown names; for tests and static
// experiment definitions.
func ByNameMust(name string) Workload {
	w, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return w
}

// Names returns the sorted workload names.
func Names() []string {
	ws := All()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}
