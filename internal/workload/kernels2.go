package workload

import (
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/rng"
)

// Second batch of kernels: a variable-length-code decoder and a cellular
// automaton step, widening the branch-behaviour coverage of the suite.
func init() {
	register(Workload{Name: "huff", Description: "variable-length code decoder over a skewed bitstream", Build: buildHuff})
	register(Workload{Name: "life", Description: "one Conway life generation on a 32x32 board", Build: buildLife})
}

// buildHuff decodes a prefix code (0 -> A, 10 -> B, 110 -> C, 111 -> D)
// from a biased random bitstream. The decode branches are correlated —
// the second test only runs when the first bit was 1 — and skewed.
//
//	r1=pos r2=bit r3..r6 symbol counts r7=n r8=addr
func buildHuff() *prog.Program {
	const n = 12000
	b := prog.NewBuilder("huff")
	r := rng.New(1212)
	bits := make([]int64, n+3) // padding so lookahead never overruns
	for i := range bits {
		if r.Chance(0.6) {
			bits[i] = 0
		} else {
			bits[i] = 1
		}
	}
	b.SetData(dataBase, bits)
	for reg := isa.Reg(3); reg <= 6; reg++ {
		b.Movi(reg, 0)
	}
	b.Movi(7, n)
	b.Movi(1, 0)
	b.Label("loop")
	b.Addi(8, 1, dataBase)
	b.Ld(2, 8, 0)
	b.IfElse(prog.RI(isa.CmpEQ, 2, 0),
		func() { // 0 -> A
			b.Addi(3, 3, 1)
			b.Addi(1, 1, 1)
		},
		func() {
			b.Ld(2, 8, 1)
			b.IfElse(prog.RI(isa.CmpEQ, 2, 0),
				func() { // 10 -> B
					b.Addi(4, 4, 1)
					b.Addi(1, 1, 2)
				},
				func() {
					b.Ld(2, 8, 2)
					b.IfElse(prog.RI(isa.CmpEQ, 2, 0),
						func() { b.Addi(5, 5, 1) }, // 110 -> C
						func() { b.Addi(6, 6, 1) }, // 111 -> D
					)
					b.Addi(1, 1, 3)
				},
			)
		},
	)
	b.Cmp(isa.CmpLT, 10, 11, 1, 7)
	b.BrIf(10, "loop")
	for reg := isa.Reg(3); reg <= 6; reg++ {
		b.Out(reg)
	}
	b.Halt(0)
	return b.MustProgram()
}

// buildLife runs one generation of Conway's Game of Life on a 32x32 board
// (with a dead border), reading from one buffer and writing the next
// generation to another. The survive/birth rules are nested conditions on
// the neighbour count — a classic if-conversion shape whose branch
// behaviour depends on board density.
//
//	r1=y r2=x r3=idx r4=ncount r5=addr r6=tmp r7=alive r8=next r9=pop
func buildLife() *prog.Program {
	const dim = 32
	b := prog.NewBuilder("life")
	r := rng.New(3434)
	board := make([]int64, dim*dim)
	for i := range board {
		if r.Chance(0.35) {
			board[i] = 1
		}
	}
	const cur = dataBase         // current generation
	const next = dataBase + 2048 // next generation
	b.SetData(cur, board)
	b.Movi(9, 0)
	b.Movi(1, 1)
	b.Label("yloop")
	b.Movi(2, 1)
	b.Label("xloop")
	// idx = y*dim + x
	b.Muli(3, 1, dim)
	b.Add(3, 3, 2)
	// Neighbour count: eight loads around idx.
	b.Movi(4, 0)
	for _, off := range []int64{-dim - 1, -dim, -dim + 1, -1, 1, dim - 1, dim, dim + 1} {
		b.Addi(5, 3, cur+off)
		b.Ld(6, 5, 0)
		b.Add(4, 4, 6)
	}
	b.Addi(5, 3, cur)
	b.Ld(7, 5, 0) // alive?
	b.Movi(8, 0)
	b.IfElse(prog.RI(isa.CmpNE, 7, 0),
		func() { // survival: 2 or 3 neighbours
			b.If(prog.RI(isa.CmpGE, 4, 2), func() {
				b.If(prog.RI(isa.CmpLE, 4, 3), func() { b.Movi(8, 1) })
			})
		},
		func() { // birth: exactly 3 neighbours
			b.If(prog.RI(isa.CmpEQ, 4, 3), func() { b.Movi(8, 1) })
		},
	)
	b.Addi(5, 3, next)
	b.St(5, 0, 8)
	b.Add(9, 9, 8) // population of the next generation
	b.Addi(2, 2, 1)
	b.Cmpi(isa.CmpLT, 10, 11, 2, dim-1)
	b.BrIf(10, "xloop")
	b.Addi(1, 1, 1)
	b.Cmpi(isa.CmpLT, 10, 11, 1, dim-1)
	b.BrIf(10, "yloop")
	b.Out(9)
	b.Halt(0)
	return b.MustProgram()
}
