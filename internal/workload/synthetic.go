// synthetic.go — charz-generated workloads resolved by name. The charz
// generator compiles a characterization-space point ("syn:lag:k=6")
// into a real branching program; wrapping it here makes the whole
// parametric family reachable everywhere a workload name is accepted —
// sweeps, the harness, serving, the oracle — without joining the fixed
// registry, whose membership the golden experiment CSVs pin down.
package workload

import "repro/internal/charz"

// synthetic resolves a "syn:..." name into a generated workload. The
// returned workload carries the point's canonical name, so equivalent
// spellings ("syn:lag:k=4" and "syn:lag") collapse to one identity.
func synthetic(name string) (Workload, error) {
	pt, err := charz.ParsePoint(name)
	if err != nil {
		return Workload{}, err
	}
	return Workload{Name: pt.Name(), Description: pt.Description(), Build: pt.Build}, nil
}

// Synthetics returns the charz catalog grid as workloads — the named
// synthetic points experiment E15 sweeps. They are not part of All();
// resolve any other point of the family through ByName.
func Synthetics() []Workload {
	pts := charz.Catalog()
	out := make([]Workload, len(pts))
	for i, pt := range pts {
		out[i] = Workload{Name: pt.Name(), Description: pt.Description(), Build: pt.Build}
	}
	return out
}
