package workload

import (
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/rng"
)

// FalsePathDemo builds a hand-predicated loop whose region-based branch is
// guarded by a data-dependent predicate defined `filler` instructions
// before the branch, taken with ~50% probability. It is the minimal
// showcase for the squash false path filter: with the guard resolved at
// fetch, every false-guard instance is filtered with certainty and the
// surviving stream is all-taken.
func FalsePathDemo(n int64, filler int, seed uint64) *prog.Program {
	b := prog.NewBuilder("falsepath-demo")
	r := rng.New(seed)
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(r.Uint64() & 1)
	}
	b.SetData(100, data)
	b.Movi(1, 0)   // i
	b.Movi(2, 100) // base
	b.Movi(6, 0)   // acc
	b.Label("loop")
	b.Add(4, 2, 1)
	b.Ld(5, 4, 0) // x
	b.Emit(isa.Inst{Op: isa.OpCmp, CC: isa.CmpEQ, CT: isa.CmpUnc, PD1: 10, PD2: 11, Src1: 5, Imm: 1, HasImm: true})
	b.Nopn(filler)
	b.Emit(isa.Inst{Op: isa.OpBr, QP: 10, Label: "taken", Target: -1, Region: true})
	b.Addi(6, 6, 1) // false path
	b.Br("next")
	b.Label("taken")
	b.Addi(6, 6, 100)
	b.Label("next")
	b.Addi(1, 1, 1)
	b.Cmpi(isa.CmpLT, 12, 13, 1, n)
	b.BrIf(12, "loop")
	b.Out(6)
	b.Halt(0)
	return b.MustProgram()
}

// CorrelatedDemo builds a hand-predicated loop where an early compare's
// outcome (an if-converted condition) perfectly determines a later branch,
// while no intervening branch outcome carries that information. It is the
// minimal showcase for the predicate global update mechanism: only a
// history containing the compare's outcome can predict the branch.
func CorrelatedDemo(n int64, seed uint64) *prog.Program {
	b := prog.NewBuilder("correlated-demo")
	r := rng.New(seed)
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(r.Uint64() & 1)
	}
	b.SetData(100, data)
	b.Movi(1, 0)   // i
	b.Movi(2, 100) // base
	b.Movi(6, 0)   // acc
	b.Label("loop")
	b.Add(4, 2, 1)
	b.Ld(5, 4, 0) // x
	// If-converted diamond: acc += x ? 3 : 5.
	b.Emit(isa.Inst{Op: isa.OpCmp, CC: isa.CmpEQ, CT: isa.CmpUnc, PD1: 10, PD2: 11, Src1: 5, Imm: 1, HasImm: true})
	b.Addi(6, 6, 3).QP = 10
	b.Addi(6, 6, 5).QP = 11
	b.Nopn(3)
	// A later branch on the same condition, recomputed just before the
	// branch so the filter cannot know it; history is the only help.
	b.Cmpi(isa.CmpEQ, 12, 13, 5, 1)
	b.Emit(isa.Inst{Op: isa.OpBr, QP: 12, Label: "skip", Target: -1, Region: true})
	b.Addi(6, 6, 1)
	b.Label("skip")
	b.Addi(1, 1, 1)
	b.Cmpi(isa.CmpLT, 14, 15, 1, n)
	b.BrIf(14, "loop")
	b.Out(6)
	b.Halt(0)
	return b.MustProgram()
}
