package workload

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/prog"
)

// Workloads written in PCL and compiled by internal/lang — the same
// front-end path the paper's benchmarks took (C source, compiled, then
// if-converted). The hailstone parity branch is the canonical
// hard-to-predict data-dependent diamond.
func init() {
	register(Workload{
		Name:        "collatz",
		Description: "hailstone trajectories for 3..400 (PCL-compiled)",
		Build:       func() *prog.Program { return mustCompile("collatz", collatzSrc) },
	})
}

func mustCompile(name, src string) *prog.Program {
	p, err := lang.Compile(name, src)
	if err != nil {
		panic(fmt.Sprintf("workload: compiling %s: %v", name, err))
	}
	return p
}

const collatzSrc = `
// Total stopping times of hailstone trajectories, plus a step histogram.
// The n%2 diamond inside the inner loop is data-dependent and close to
// 50/50 — the branch predication is for.
var total = 0;
var longest = 0;
arr hist[16];
for (var s = 3; s < 400; s = s + 1) {
    var n = s;
    var steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; }
        else { n = 3 * n + 1; }
        steps = steps + 1;
        if (steps > 300) { break; }
    }
    total = total + steps;
    if (steps > longest) { longest = steps; }
    hist[steps % 16] = hist[steps % 16] + 1;
}
out total;
out longest;
for (var k = 0; k < 16; k = k + 1) { out hist[k]; }
`
