package workload

import (
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/rng"
)

// The workload suite. Each kernel is written in conventional branching
// style; the experiments if-convert them with internal/ifconv. Sizes are
// chosen so each runs tens to a few hundred thousand dynamic instructions.
//
// Paper-analogue roles:
//
//	sort      – data-dependent inner-loop compare, moderate predictability
//	bsearch   – near-random search branches (hard)
//	strmatch  – heavily biased mismatch branches
//	fsm       – state-correlated branches (history-friendly)
//	interp    – multiway dispatch chains (hard, aliasing-prone)
//	classify  – nested diamonds, fully if-convertible
//	filter    – conditions plus rare early exit (region branches)
//	corr      – later branch perfectly correlated with an earlier,
//	            if-converted condition (the PGU case)
//	rand      – 50/50 branch with balanced arms (predication headline win)
//	stream    – predictable loop code (no-regression control)
//	sieve     – biased flag tests around a non-convertible inner loop
func init() {
	register(Workload{Name: "sort", Description: "insertion sort of 220 random values", Build: buildSort})
	register(Workload{Name: "bsearch", Description: "1500 binary searches over 1024 sorted keys", Build: buildBsearch})
	register(Workload{Name: "strmatch", Description: "naive substring search, 4-symbol alphabet", Build: buildStrmatch})
	register(Workload{Name: "fsm", Description: "3-state machine over 6000 random symbols", Build: buildFSM})
	register(Workload{Name: "interp", Description: "bytecode interpreter, 6-op dispatch chain", Build: buildInterp})
	register(Workload{Name: "classify", Description: "nested range classification of 5000 values", Build: buildClassify})
	register(Workload{Name: "filter", Description: "two-condition filter with rare early exit", Build: buildFilter})
	register(Workload{Name: "corr", Description: "branch correlated with an earlier converted condition", Build: buildCorr})
	register(Workload{Name: "rand", Description: "50/50 branch with balanced arms", Build: buildRand})
	register(Workload{Name: "scan", Description: "diamond with rare exits in both arms", Build: buildScan})
	register(Workload{Name: "stream", Description: "predictable streaming loop with rare saturation", Build: buildStream})
	register(Workload{Name: "sieve", Description: "sieve of Eratosthenes to 2000", Build: buildSieve})
}

const dataBase = 1000

func randArray(seed uint64, n int, bound int64) []int64 {
	r := rng.New(seed)
	a := make([]int64, n)
	r.Fill(a, bound)
	return a
}

// buildSort: insertion sort.
//
//	r1=i r2=j r3=key r4=tmp/addr r5=val r6=n r7=base
func buildSort() *prog.Program {
	const n = 220
	b := prog.NewBuilder("sort")
	b.SetData(dataBase, randArray(101, n, 10000))
	b.Movi(7, dataBase)
	b.Movi(6, n)
	b.Movi(1, 1)
	b.Label("outer")
	b.Cmpi(isa.CmpLT, 1, 2, 1, n)
	b.BrIf(2, "done") // i >= n
	b.Add(4, 7, 1)
	b.Ld(3, 4, 0) // key = a[i]
	b.Subi(2, 1, 1)
	b.Label("inner")
	b.Cmpi(isa.CmpGE, 3, 4, 2, 0)
	b.BrIf(4, "insert") // j < 0
	b.Add(4, 7, 2)
	b.Ld(5, 4, 0) // a[j]
	b.Cmp(isa.CmpGT, 5, 6, 5, 3)
	b.BrIf(6, "insert") // a[j] <= key
	b.St(4, 1, 5)       // a[j+1] = a[j]
	b.Subi(2, 2, 1)
	b.Br("inner")
	b.Label("insert")
	b.Add(4, 7, 2)
	b.St(4, 1, 3) // a[j+1] = key
	b.Addi(1, 1, 1)
	b.Br("outer")
	b.Label("done")
	// Checksum: weighted sum of the sorted array.
	b.Movi(1, 0)
	b.Movi(8, 0)
	b.Label("ck")
	b.Add(4, 7, 1)
	b.Ld(5, 4, 0)
	b.Mul(9, 5, 1)
	b.Add(8, 8, 9)
	b.Addi(1, 1, 1)
	b.Cmpi(isa.CmpLT, 1, 2, 1, n)
	b.BrIf(1, "ck")
	b.Out(8)
	b.Halt(0)
	return b.MustProgram()
}

// buildBsearch: repeated binary search.
//
//	r1=q r2=key r3=lo r4=hi r5=mid r6=v r7=addr r8=found-count r9=keybase
func buildBsearch() *prog.Program {
	const n = 1024
	const queries = 1500
	b := prog.NewBuilder("bsearch")
	arr := make([]int64, n)
	for i := range arr {
		arr[i] = int64(2 * i)
	}
	b.SetData(dataBase, arr)
	b.SetData(5000, randArray(202, queries, 2*n))
	b.Movi(9, 5000)
	b.Movi(8, 0)
	b.Movi(1, 0)
	b.Label("query")
	b.Add(7, 9, 1)
	b.Ld(2, 7, 0) // key
	b.Movi(3, 0)
	b.Movi(4, n-1)
	b.Label("search")
	b.Cmp(isa.CmpLE, 5, 6, 3, 4)
	b.BrIf(6, "next") // lo > hi
	b.Add(5, 3, 4)
	b.Sari(5, 5, 1) // mid
	b.Addi(7, 5, dataBase)
	b.Ld(6, 7, 0) // v = a[mid]
	b.Cmp(isa.CmpEQ, 10, 11, 6, 2)
	b.BrIf(10, "hit")
	b.Cmp(isa.CmpLT, 12, 13, 6, 2)
	b.BrIf(13, "goleft")
	b.Addi(3, 5, 1) // lo = mid+1
	b.Br("search")
	b.Label("goleft")
	b.Subi(4, 5, 1) // hi = mid-1
	b.Br("search")
	b.Label("hit")
	b.Addi(8, 8, 1)
	b.Label("next")
	b.Addi(1, 1, 1)
	b.Cmpi(isa.CmpLT, 10, 11, 1, queries)
	b.BrIf(10, "query")
	b.Out(8)
	b.Halt(0)
	return b.MustProgram()
}

// buildStrmatch: naive substring search.
//
//	r1=i r2=k r3=addr r4=tc r5=pc r6=count r7=ok
func buildStrmatch() *prog.Program {
	const n = 4000
	const m = 4
	b := prog.NewBuilder("strmatch")
	b.SetData(dataBase, randArray(303, n, 4))
	pat := []int64{1, 2, 1, 3}
	b.SetData(6000, pat)
	b.Movi(6, 0)
	b.Movi(1, 0)
	b.Label("outer")
	b.Movi(7, 1)
	b.Movi(2, 0)
	b.Label("inner")
	b.Add(3, 1, 2)
	b.Addi(3, 3, dataBase)
	b.Ld(4, 3, 0) // text[i+k]
	b.Addi(3, 2, 6000)
	b.Ld(5, 3, 0) // pat[k]
	b.Cmp(isa.CmpEQ, 8, 9, 4, 5)
	b.BrIf(9, "mismatch")
	b.Addi(2, 2, 1)
	b.Cmpi(isa.CmpLT, 8, 9, 2, m)
	b.BrIf(8, "inner")
	b.Br("endinner")
	b.Label("mismatch")
	b.Movi(7, 0)
	b.Label("endinner")
	b.Add(6, 6, 7)
	b.Addi(1, 1, 1)
	b.Cmpi(isa.CmpLE, 8, 9, 1, n-m)
	b.BrIf(8, "outer")
	b.Out(6)
	b.Halt(0)
	return b.MustProgram()
}

// buildFSM: three-state machine with state-correlated branches.
//
//	r1=i r2=sym r3=state r4=acc r5=addr
func buildFSM() *prog.Program {
	const n = 6000
	b := prog.NewBuilder("fsm")
	b.SetData(dataBase, randArray(404, n, 2))
	b.Movi(3, 0)
	b.Movi(4, 0)
	b.Movi(1, 0)
	b.Label("loop")
	b.Addi(5, 1, dataBase)
	b.Ld(2, 5, 0)
	b.IfElse(prog.RI(isa.CmpEQ, 3, 0),
		func() {
			b.IfElse(prog.RI(isa.CmpNE, 2, 0),
				func() { b.Movi(3, 1) },
				func() { b.Addi(4, 4, 1) },
			)
		},
		func() {
			b.IfElse(prog.RI(isa.CmpEQ, 3, 1),
				func() {
					b.IfElse(prog.RI(isa.CmpNE, 2, 0),
						func() { b.Movi(3, 2); b.Addi(4, 4, 2) },
						func() { b.Movi(3, 0) },
					)
				},
				func() {
					b.IfElse(prog.RI(isa.CmpNE, 2, 0),
						func() { b.Addi(4, 4, 3) },
						func() { b.Movi(3, 0) },
					)
				},
			)
		},
	)
	b.Addi(1, 1, 1)
	b.Cmpi(isa.CmpLT, 10, 11, 1, n)
	b.BrIf(10, "loop")
	b.Out(4)
	b.Out(3)
	b.Halt(0)
	return b.MustProgram()
}

// buildInterp: bytecode interpreter with a compare-chain dispatch.
//
//	r1=pc r2=op r3=acc r4=x r5=addr
func buildInterp() *prog.Program {
	const n = 6000
	b := prog.NewBuilder("interp")
	// Skewed opcode mix: op 0 is common, the rest tail off.
	r := rng.New(505)
	code := make([]int64, n)
	for i := range code {
		v := r.Intn(10)
		switch {
		case v < 4:
			code[i] = 0
		case v < 6:
			code[i] = 1
		case v < 7:
			code[i] = 2
		case v < 8:
			code[i] = 3
		case v < 9:
			code[i] = 4
		default:
			code[i] = 5
		}
	}
	b.SetData(dataBase, code)
	b.Movi(3, 0)
	b.Movi(4, 7)
	b.Movi(1, 0)
	b.Label("loop")
	b.Addi(5, 1, dataBase)
	b.Ld(2, 5, 0)
	b.IfElse(prog.RI(isa.CmpEQ, 2, 0), func() { b.Addi(3, 3, 1) }, func() {
		b.IfElse(prog.RI(isa.CmpEQ, 2, 1), func() { b.Subi(3, 3, 1) }, func() {
			b.IfElse(prog.RI(isa.CmpEQ, 2, 2), func() { b.Add(3, 3, 4) }, func() {
				b.IfElse(prog.RI(isa.CmpEQ, 2, 3), func() { b.Mov(4, 3) }, func() {
					b.IfElse(prog.RI(isa.CmpEQ, 2, 4),
						func() { b.Shli(3, 3, 1); b.Andi(3, 3, 0xffff) },
						func() { b.Xor(3, 3, 4) },
					)
				})
			})
		})
	})
	b.Addi(1, 1, 1)
	b.Cmpi(isa.CmpLT, 10, 11, 1, n)
	b.BrIf(10, "loop")
	b.Out(3)
	b.Out(4)
	b.Halt(0)
	return b.MustProgram()
}

// buildClassify: nested range classification — fully convertible diamonds.
//
//	r1=i r2=v r3..r7 buckets r8=addr
func buildClassify() *prog.Program {
	const n = 5000
	b := prog.NewBuilder("classify")
	b.SetData(dataBase, randArray(606, n, 256))
	for r := isa.Reg(3); r <= 7; r++ {
		b.Movi(r, 0)
	}
	b.Movi(1, 0)
	b.Label("loop")
	b.Addi(8, 1, dataBase)
	b.Ld(2, 8, 0)
	b.IfElse(prog.RI(isa.CmpLT, 2, 128),
		func() {
			b.IfElse(prog.RI(isa.CmpLT, 2, 32),
				func() { b.Addi(3, 3, 1) },
				func() { b.Addi(4, 4, 1) },
			)
		},
		func() {
			b.IfElse(prog.RI(isa.CmpLT, 2, 192),
				func() { b.Addi(5, 5, 1) },
				func() {
					b.IfElse(prog.RI(isa.CmpLT, 2, 224),
						func() { b.Addi(6, 6, 1) },
						func() { b.Addi(7, 7, 1) },
					)
				},
			)
		},
	)
	b.Addi(1, 1, 1)
	b.Cmpi(isa.CmpLT, 10, 11, 1, n)
	b.BrIf(10, "loop")
	for r := isa.Reg(3); r <= 7; r++ {
		b.Out(r)
	}
	b.Halt(0)
	return b.MustProgram()
}

// buildFilter: two-condition filter with a rare early exit from the loop.
// The sentinel test is computed right after the load — as a scheduling
// compiler would emit it — with the filterable exit branch several
// instructions downstream.
//
//	r1=i r2=v r3=count r4=sum r5=addr r6=v&7 r7/r8 scratch
func buildFilter() *prog.Program {
	const n = 4000
	b := prog.NewBuilder("filter")
	data := randArray(707, n, 4096)
	data[n-37] = -1 // sentinel triggers the early exit near the end
	b.SetData(dataBase, data)
	b.Movi(3, 0)
	b.Movi(4, 0)
	b.Movi(1, 0)
	b.Label("loop")
	b.Addi(5, 1, dataBase)
	b.Ld(2, 5, 0)
	b.Cmpi(isa.CmpEQ, 10, 11, 2, -1) // sentinel test, scheduled early
	b.Andi(6, 2, 7)
	b.Shri(7, 2, 3)
	b.Xor(8, 2, 7)
	b.Andi(8, 8, 0xfff)
	b.Add(7, 7, 8)
	b.BrIf(10, "done") // rare early exit, far from its compare
	b.If(prog.RI(isa.CmpEQ, 6, 0), func() {
		b.IfElse(prog.RI(isa.CmpGT, 2, 2048),
			func() { b.Addi(3, 3, 1) },
			func() { b.Add(4, 4, 2) },
		)
	})
	b.Addi(1, 1, 1)
	b.Cmpi(isa.CmpLT, 10, 11, 1, n)
	b.BrIf(10, "loop")
	b.Label("done")
	b.Out(3)
	b.Out(4)
	b.Out(1)
	b.Halt(0)
	return b.MustProgram()
}

// buildScan: a 50/50 diamond whose two arms each contain several
// instructions of work and a rare exit branch to an out-of-region handler
// (the handler's inner loop keeps it unconvertible). After if-conversion,
// every iteration fetches both arms' exit branches; the arm not taken has
// a false guard resolved well before the branch — the squash false path
// filter's target case.
//
//	r1=i r2=v r3=a r4=c r5=addr r6/r7 scratch r9=rare-count
func buildScan() *prog.Program {
	const n = 6000
	b := prog.NewBuilder("scan")
	b.SetData(dataBase, randArray(313, n, 1024))
	b.Movi(3, 0)
	b.Movi(4, 0)
	b.Movi(9, 0)
	b.Movi(1, 0)
	b.Label("loop")
	b.Addi(5, 1, dataBase)
	b.Ld(2, 5, 0)
	b.Andi(6, 2, 1)
	b.IfElse(prog.RI(isa.CmpEQ, 6, 1),
		func() {
			b.Add(3, 3, 2)
			b.Xori(3, 3, 0x55)
			b.Sari(7, 3, 1)
			b.Add(3, 7, 2)
			b.Muli(7, 2, 3)
			b.Add(3, 3, 7)
			b.Cmpi(isa.CmpEQ, 12, 13, 2, 1023)
			b.BrIf(12, "rare1")
		},
		func() {
			b.Add(4, 4, 2)
			b.Ori(4, 4, 3)
			b.Shri(7, 2, 2)
			b.Sub(4, 4, 7)
			b.Muli(7, 2, 5)
			b.Xor(4, 4, 7)
			b.Cmpi(isa.CmpEQ, 14, 15, 2, 1022)
			b.BrIf(14, "rare2")
		},
	)
	b.Label("next")
	b.Addi(1, 1, 1)
	b.Cmpi(isa.CmpLT, 10, 11, 1, n)
	b.BrIf(10, "loop")
	b.Out(3)
	b.Out(4)
	b.Out(9)
	b.Halt(0)
	// Rare handlers: the inner counted loops keep these blocks out of any
	// region, so the branches to them stay region-based exits.
	b.Label("rare1")
	b.Addi(9, 9, 1)
	b.CountedLoop(24, 3, func() { b.Addi(3, 3, 11) })
	b.Br("next")
	b.Label("rare2")
	b.Addi(9, 9, 1)
	b.CountedLoop(24, 3, func() { b.Addi(4, 4, 13) })
	b.Br("next")
	return b.MustProgram()
}

// buildCorr: a diamond on condition x followed, a few instructions later,
// by a branch on the same x whose block contains a tiny inner loop (so
// if-conversion cannot absorb it and the branch survives). After
// conversion, only a history containing the first compare's outcome can
// predict the surviving branch.
//
//	r1=i r2=x r3=a r4=b r5=addr r6=t
func buildCorr() *prog.Program {
	const n = 4000
	b := prog.NewBuilder("corr")
	b.SetData(dataBase, randArray(808, n, 2))
	b.Movi(3, 0)
	b.Movi(4, 0)
	b.Movi(1, 0)
	b.Label("loop")
	b.Addi(5, 1, dataBase)
	b.Ld(2, 5, 0)
	// Convertible diamond on x.
	b.IfElse(prog.RI(isa.CmpEQ, 2, 1),
		func() { b.Addi(3, 3, 3) },
		func() { b.Addi(3, 3, 5) },
	)
	b.Addi(6, 3, 0)
	b.Sari(6, 6, 2)
	// Branch on the same x; its then-arm holds an inner loop so the
	// region cannot swallow it.
	b.IfElse(prog.RI(isa.CmpEQ, 2, 1),
		func() {
			b.CountedLoop(22, 2, func() { b.Addi(4, 4, 1) })
		},
		func() { b.Addi(4, 4, 7) },
	)
	b.Addi(1, 1, 1)
	b.Cmpi(isa.CmpLT, 10, 11, 1, n)
	b.BrIf(10, "loop")
	b.Out(3)
	b.Out(4)
	b.Halt(0)
	return b.MustProgram()
}

// buildRand: a 50/50 branch with balanced arms — the case where
// predication removes a maximally unpredictable branch at minimal
// nullification cost.
//
//	r1=i r2=x r3=a r4=addr
func buildRand() *prog.Program {
	const n = 6000
	b := prog.NewBuilder("rand")
	b.SetData(dataBase, randArray(909, n, 2))
	b.Movi(3, 0)
	b.Movi(1, 0)
	b.Label("loop")
	b.Addi(4, 1, dataBase)
	b.Ld(2, 4, 0)
	b.IfElse(prog.RI(isa.CmpEQ, 2, 1),
		func() { b.Addi(3, 3, 1); b.Xori(3, 3, 5) },
		func() { b.Addi(3, 3, 2); b.Xori(3, 3, 9) },
	)
	b.Addi(1, 1, 1)
	b.Cmpi(isa.CmpLT, 10, 11, 1, n)
	b.BrIf(10, "loop")
	b.Out(3)
	b.Halt(0)
	return b.MustProgram()
}

// buildStream: predictable streaming loop with a rarely-true saturation
// check — the control case where predication should not win.
//
//	r1=i r2=v r3=sum r4=k r5=addr
func buildStream() *prog.Program {
	const n = 5000
	b := prog.NewBuilder("stream")
	b.SetData(dataBase, randArray(111, n, 1000))
	b.Movi(3, 0)
	b.Movi(4, 0)
	b.Movi(1, 0)
	b.Label("loop")
	b.Addi(5, 1, dataBase)
	b.Ld(2, 5, 0)
	b.Add(3, 3, 2)
	b.If(prog.RI(isa.CmpGT, 3, 100000), func() {
		b.Subi(3, 3, 100000)
		b.Addi(4, 4, 1)
	})
	b.Addi(1, 1, 1)
	b.Cmpi(isa.CmpLT, 10, 11, 1, n)
	b.BrIf(10, "loop")
	b.Out(3)
	b.Out(4)
	b.Halt(0)
	return b.MustProgram()
}

// buildSieve: sieve of Eratosthenes; the "not yet marked" test wraps a
// non-convertible marking loop, so it survives as a branch; the test is
// increasingly biased as the sieve fills.
//
//	r1=i r2=j r3=addr r4=flag r5=primes
func buildSieve() *prog.Program {
	const n = 2000
	b := prog.NewBuilder("sieve")
	b.Movi(5, 0)
	b.Movi(1, 2)
	b.Label("outer")
	b.Addi(3, 1, dataBase)
	b.Ld(4, 3, 0)
	b.If(prog.RI(isa.CmpEQ, 4, 0), func() {
		b.Addi(5, 5, 1) // i is prime
		b.Mul(2, 1, 1)  // j = i*i
		b.While(prog.RI(isa.CmpLT, 2, n), func() {
			b.Addi(3, 2, dataBase)
			b.Movi(6, 1)
			b.St(3, 0, 6)
			b.Add(2, 2, 1)
		})
	})
	b.Addi(1, 1, 1)
	b.Cmpi(isa.CmpLT, 10, 11, 1, n)
	b.BrIf(10, "outer")
	b.Out(5)
	b.Halt(0)
	return b.MustProgram()
}
