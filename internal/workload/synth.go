// Package workload provides the benchmark programs used by the
// experiments — behavioural stand-ins for the compiled SPEC binaries the
// paper measured — plus a seeded random structured-program generator used
// by property tests.
package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/rng"
)

// Synth generates a random but well-formed structured program: seeded
// arithmetic over a small register file with nested ifs, if/elses, bounded
// while loops and counted loops, plus stores/loads to a scratch area and
// observable output. Every generated program terminates.
//
// The if-converter's central correctness property is tested against these:
// the converted program must be observationally equivalent to the original.
func Synth(seed uint64, stmts int) *prog.Program {
	g := &synthGen{
		b:      prog.NewBuilder(fmt.Sprintf("synth-%d", seed)),
		r:      rng.New(seed),
		budget: stmts,
	}
	// Seed the data registers with deterministic values.
	for i := range g.dataRegs() {
		g.b.Movi(g.dataRegs()[i], g.r.Int64n(200)-100)
	}
	g.block(0, stmts)
	// Make all final state observable.
	for _, r := range g.dataRegs() {
		g.b.Out(r)
	}
	for k := int64(0); k < scratchWords; k++ {
		g.b.Ld(1, 0, scratchBase+k)
		g.b.Out(1)
	}
	g.b.Halt(0)
	return g.b.MustProgram()
}

const (
	scratchBase  = 2000
	scratchWords = 8
	maxDepth     = 3
)

type synthGen struct {
	b      *prog.Builder
	r      *rng.Source
	budget int
}

func (g *synthGen) dataRegs() []isa.Reg {
	return []isa.Reg{1, 2, 3, 4, 5, 6, 7, 8}
}

func (g *synthGen) dreg() isa.Reg {
	rs := g.dataRegs()
	return rs[g.r.Intn(len(rs))]
}

// counterReg returns the dedicated loop-counter register for a nesting
// depth; statement bodies never touch these.
func counterReg(depth int) isa.Reg { return isa.Reg(20 + depth) }

func cloopReg(depth int) isa.Reg { return isa.Reg(28 + depth) }

func (g *synthGen) cond() prog.Cond {
	ccs := []isa.CmpCond{
		isa.CmpEQ, isa.CmpNE, isa.CmpLT, isa.CmpLE,
		isa.CmpGT, isa.CmpGE, isa.CmpLTU, isa.CmpGEU,
	}
	cc := ccs[g.r.Intn(len(ccs))]
	if g.r.Bool() {
		return prog.RI(cc, g.dreg(), g.r.Int64n(40)-20)
	}
	return prog.RR(cc, g.dreg(), g.dreg())
}

func (g *synthGen) block(depth, n int) {
	for i := 0; i < n && g.budget > 0; i++ {
		g.stmt(depth)
	}
}

func (g *synthGen) stmt(depth int) {
	g.budget--
	// Weighted choice; control flow becomes rarer with depth.
	max := 12
	if depth >= maxDepth {
		max = 6 // straight-line statements only
	}
	switch g.r.Intn(max) {
	case 0, 1:
		g.arith()
	case 2:
		g.b.Out(g.dreg())
	case 3:
		g.b.St(0, scratchBase+g.r.Int64n(scratchWords), g.dreg())
	case 4:
		g.b.Ld(g.dreg(), 0, scratchBase+g.r.Int64n(scratchWords))
	case 5:
		g.arith()
	case 6:
		inner := 1 + g.r.Intn(3)
		g.b.If(g.cond(), func() { g.block(depth+1, inner) })
	case 7:
		inner := 1 + g.r.Intn(3)
		g.b.IfElse(g.cond(),
			func() { g.block(depth+1, inner) },
			func() { g.block(depth+1, inner) },
		)
	case 8:
		// Bounded while loop with a dedicated counter.
		ctr := counterReg(depth)
		g.b.Movi(ctr, 1+g.r.Int64n(4))
		inner := 1 + g.r.Intn(3)
		g.b.While(prog.RI(isa.CmpGT, ctr, 0), func() {
			g.block(depth+1, inner)
			g.b.Subi(ctr, ctr, 1)
		})
	case 9:
		inner := 1 + g.r.Intn(3)
		g.b.CountedLoop(cloopReg(depth), 1+g.r.Int64n(4), func() {
			g.block(depth+1, inner)
		})
	case 10:
		// Bounded do-while with a dedicated counter.
		ctr := counterReg(depth)
		g.b.Movi(ctr, 1+g.r.Int64n(3))
		inner := 1 + g.r.Intn(2)
		g.b.DoWhile(prog.RI(isa.CmpGT, ctr, 0), func() {
			g.block(depth+1, inner)
			g.b.Subi(ctr, ctr, 1)
		})
	case 11:
		// A small switch over a data register.
		ncases := 1 + g.r.Intn(3)
		cases := make([]prog.SwitchCase, ncases)
		for i := range cases {
			v := int64(i)
			cases[i] = prog.SwitchCase{Value: v, Body: func() { g.arith() }}
		}
		var def func()
		if g.r.Bool() {
			def = func() { g.arith() }
		}
		g.b.Switch(g.dreg(), cases, def)
	}
}

func (g *synthGen) arith() {
	d, s := g.dreg(), g.dreg()
	switch g.r.Intn(8) {
	case 0:
		g.b.Add(d, s, g.dreg())
	case 1:
		g.b.Subi(d, s, g.r.Int64n(20))
	case 2:
		g.b.Xor(d, s, g.dreg())
	case 3:
		g.b.Andi(d, s, 0xff)
	case 4:
		g.b.Muli(d, s, g.r.Int64n(5)-2)
	case 5:
		g.b.Modi(d, s, 3+g.r.Int64n(7)) // divisor never zero
	case 6:
		g.b.Sari(d, s, g.r.Int64n(4))
	case 7:
		g.b.Movi(d, g.r.Int64n(100)-50)
	}
}
