package workload

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// Third batch: a recursive backtracking solver. It is the only workload
// with real calls (brl/brr and a memory call stack), exercising the
// if-converter's call-hazard handling and giving the predictors the
// irregular, depth-correlated branch behaviour of search codes.
func init() {
	register(Workload{Name: "queens", Description: "7-queens backtracking with recursive calls", Build: buildQueens})
}

// buildQueens counts the solutions of the 7-queens problem with the
// classic recursive occupancy-array algorithm.
//
// Register conventions:
//
//	r1 = row (argument)     r2 = col (local)      r3 = n (constant)
//	r4 = solution count     r5 = stack pointer    r6..r9 = scratch
//	r10 = constant 1        r30 = link register
//
// Memory: cols[] at 8000, diag1[row+col] at 8100, diag2[row-col+n] at
// 8300, the call stack at 9000 (3 words per frame: link, row, col).
func buildQueens() *prog.Program {
	const n = 7
	b := prog.NewBuilder("queens")
	b.Movi(3, n)
	b.Movi(4, 0)
	b.Movi(5, 9000)
	b.Movi(10, 1)
	b.Movi(1, 0)
	b.Brl(30, "solve")
	b.Out(4)
	b.Halt(0)

	b.Label("solve")
	// Base case: row == n.
	b.Cmp(isa.CmpEQ, 1, 2, 1, 3)
	b.BrIf(1, "found")
	b.Movi(2, 0)

	b.Label("cols")
	// Occupancy tests: any conflict skips this column.
	b.Addi(6, 2, 8000)
	b.Ld(7, 6, 0)
	b.Cmpi(isa.CmpNE, 3, 4, 7, 0)
	b.BrIf(3, "skip")
	b.Add(6, 1, 2)
	b.Addi(6, 6, 8100)
	b.Ld(8, 6, 0)
	b.Cmpi(isa.CmpNE, 5, 6, 8, 0)
	b.BrIf(5, "skip")
	b.Sub(6, 1, 2)
	b.Addi(6, 6, 8300+n)
	b.Ld(9, 6, 0)
	b.Cmpi(isa.CmpNE, 7, 8, 9, 0)
	b.BrIf(7, "skip")

	// Place the queen: mark all three arrays.
	b.Addi(6, 2, 8000)
	b.St(6, 0, 10)
	b.Add(6, 1, 2)
	b.Addi(6, 6, 8100)
	b.St(6, 0, 10)
	b.Sub(6, 1, 2)
	b.Addi(6, 6, 8300+n)
	b.St(6, 0, 10)

	// Push the frame (link, row, col) and recurse on row+1.
	b.St(5, 0, 30)
	b.St(5, 1, 1)
	b.St(5, 2, 2)
	b.Addi(5, 5, 3)
	b.Addi(1, 1, 1)
	b.Brl(30, "solve")
	// Pop the frame.
	b.Subi(5, 5, 3)
	b.Ld(30, 5, 0)
	b.Ld(1, 5, 1)
	b.Ld(2, 5, 2)

	// Remove the queen: unmark all three arrays.
	b.Addi(6, 2, 8000)
	b.St(6, 0, 0)
	b.Add(6, 1, 2)
	b.Addi(6, 6, 8100)
	b.St(6, 0, 0)
	b.Sub(6, 1, 2)
	b.Addi(6, 6, 8300+n)
	b.St(6, 0, 0)

	b.Label("skip")
	b.Addi(2, 2, 1)
	b.Cmp(isa.CmpLT, 9, 10, 2, 3)
	b.BrIf(9, "cols")
	b.Brr(30)

	b.Label("found")
	b.Addi(4, 4, 1)
	b.Brr(30)
	return b.MustProgram()
}
