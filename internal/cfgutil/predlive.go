package cfgutil

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// PredLiveness holds per-block predicate-register liveness as 64-bit masks
// (bit i = predicate register pi). The if-converter uses it to verify that
// the predicates a region stops writing (or writes only conditionally after
// conversion) are dead at every region exit.
type PredLiveness struct {
	Use     []uint64 // upward-exposed predicate reads per block
	Def     []uint64 // predicates unconditionally written per block
	LiveIn  []uint64
	LiveOut []uint64
}

// instPredUse returns the mask of predicates read by the instruction.
// Every instruction reads its qualifying predicate. Parallel-or/and compare
// types conditionally preserve their destinations, so the destination value
// may flow through them: their destinations count as uses.
func instPredUse(in *isa.Inst) uint64 {
	var m uint64
	m |= 1 << in.QP
	for _, p := range in.PredSources() {
		m |= 1 << p
	}
	if in.Op == isa.OpCmp && (in.CT == isa.CmpAnd || in.CT == isa.CmpOr) {
		m |= 1 << in.PD1
		m |= 1 << in.PD2
	}
	return m
}

// instPredDef returns the mask of predicates the instruction is guaranteed
// to write regardless of runtime values. A normal compare under a non-p0
// guard is a conditional write and does not kill liveness; an
// unconditional-type compare always writes both destinations.
func instPredDef(in *isa.Inst) uint64 {
	var m uint64
	switch in.Op {
	case isa.OpCmp:
		switch in.CT {
		case isa.CmpUnc:
			m |= 1<<in.PD1 | 1<<in.PD2
		case isa.CmpNorm:
			if in.QP == isa.P0 {
				m |= 1<<in.PD1 | 1<<in.PD2
			}
		}
	case isa.OpPand, isa.OpPor, isa.OpPmov, isa.OpPinit:
		if in.QP == isa.P0 {
			m |= 1 << in.PD1
		}
	}
	// p0 is hard-wired; writes to it are dropped.
	return m &^ 1
}

// ComputePredLiveness runs backward may-liveness over predicate registers.
func ComputePredLiveness(g *prog.CFG) *PredLiveness {
	n := len(g.Blocks)
	pl := &PredLiveness{
		Use:     make([]uint64, n),
		Def:     make([]uint64, n),
		LiveIn:  make([]uint64, n),
		LiveOut: make([]uint64, n),
	}
	for _, b := range g.Blocks {
		var use, def uint64
		for i := b.Start; i < b.End; i++ {
			in := &g.Prog.Insts[i]
			use |= instPredUse(in) &^ def
			def |= instPredDef(in)
		}
		pl.Use[b.Index] = use &^ 1 // p0 always true; not a real dependence
		pl.Def[b.Index] = def
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := g.Blocks[i]
			var out uint64
			for _, s := range b.Succs {
				out |= pl.LiveIn[s]
			}
			in := pl.Use[i] | (out &^ pl.Def[i])
			if out != pl.LiveOut[i] || in != pl.LiveIn[i] {
				pl.LiveOut[i] = out
				pl.LiveIn[i] = in
				changed = true
			}
		}
	}
	return pl
}
