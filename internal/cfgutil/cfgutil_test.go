package cfgutil

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// diamond builds: entry -> {then, else} -> join -> halt.
func diamond(t *testing.T) *prog.CFG {
	t.Helper()
	b := prog.NewBuilder("diamond")
	b.Movi(1, 1)
	b.IfElse(prog.RI(isa.CmpGT, 1, 0),
		func() { b.Movi(2, 1) },
		func() { b.Movi(2, 2) },
	)
	b.Out(2)
	b.Halt(0)
	g, err := prog.BuildCFG(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func loopProg(t *testing.T) *prog.CFG {
	t.Helper()
	b := prog.NewBuilder("loop")
	b.Movi(1, 5)
	b.While(prog.RI(isa.CmpGT, 1, 0), func() {
		b.If(prog.RI(isa.CmpEQ, 1, 3), func() { b.Out(1) })
		b.Subi(1, 1, 1)
	})
	b.Halt(0)
	g, err := prog.BuildCFG(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRPOCoversReachable(t *testing.T) {
	g := diamond(t)
	a := Analyze(g)
	if len(a.RPO) != len(g.Blocks) {
		t.Fatalf("RPO covers %d of %d blocks", len(a.RPO), len(g.Blocks))
	}
	if a.RPO[0] != 0 {
		t.Errorf("RPO does not start at entry: %v", a.RPO)
	}
	// RPO property: every block appears after at least one predecessor
	// (except the entry).
	for i, b := range a.RPO {
		if i == 0 {
			continue
		}
		ok := false
		for _, p := range g.Blocks[b].Preds {
			if a.RPONum[p] < a.RPONum[b] {
				ok = true
			}
		}
		if !ok {
			t.Errorf("block %d has no earlier predecessor in RPO", b)
		}
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g := diamond(t)
	a := Analyze(g)
	// Entry dominates everything.
	for _, blk := range g.Blocks {
		if !a.Dominates(0, blk.Index) {
			t.Errorf("entry does not dominate block %d", blk.Index)
		}
	}
	// Then/else do not dominate the join.
	join := len(g.Blocks) - 1
	for b := 1; b < join; b++ {
		if a.Dominates(b, join) {
			t.Errorf("block %d should not dominate the join", b)
		}
	}
	if a.IDom[join] != 0 {
		t.Errorf("idom(join) = %d, want 0", a.IDom[join])
	}
}

func TestDominatesSelf(t *testing.T) {
	g := diamond(t)
	a := Analyze(g)
	for _, blk := range g.Blocks {
		if !a.Dominates(blk.Index, blk.Index) {
			t.Errorf("block %d does not dominate itself", blk.Index)
		}
	}
}

func TestUnreachableBlocks(t *testing.T) {
	b := prog.NewBuilder("dead")
	b.Br("end")
	b.Movi(1, 1) // unreachable
	b.Label("end")
	b.Halt(0)
	g, err := prog.BuildCFG(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(g)
	found := false
	for _, blk := range g.Blocks {
		if !a.Reachable(blk.Index) {
			found = true
			if a.Dominates(0, blk.Index) || a.Dominates(blk.Index, 0) {
				t.Error("unreachable block participates in dominance")
			}
		}
	}
	if !found {
		t.Fatal("expected an unreachable block")
	}
}

func TestNaturalLoopDetection(t *testing.T) {
	g := loopProg(t)
	a := Analyze(g)
	if len(a.Loops) != 1 {
		t.Fatalf("found %d loops, want 1:\n%s", len(a.Loops), g)
	}
	l := a.Loops[0]
	if !l.Blocks[l.Header] {
		t.Error("loop body excludes its header")
	}
	// The entry block is not in the loop.
	if l.Blocks[0] {
		t.Error("entry block inside loop")
	}
	// Every loop block reports the loop header.
	for b := range l.Blocks {
		if a.LoopHeader[b] != l.Header {
			t.Errorf("block %d loop header = %d, want %d", b, a.LoopHeader[b], l.Header)
		}
		if a.LoopDepth[b] != 1 {
			t.Errorf("block %d depth = %d", b, a.LoopDepth[b])
		}
	}
}

func TestNestedLoopDepth(t *testing.T) {
	b := prog.NewBuilder("nested")
	b.Movi(1, 3)
	b.While(prog.RI(isa.CmpGT, 1, 0), func() {
		b.Movi(2, 3)
		b.While(prog.RI(isa.CmpGT, 2, 0), func() {
			b.Subi(2, 2, 1)
		})
		b.Subi(1, 1, 1)
	})
	b.Halt(0)
	g, err := prog.BuildCFG(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(g)
	if len(a.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(a.Loops))
	}
	maxDepth := 0
	for _, d := range a.LoopDepth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth != 2 {
		t.Errorf("max loop depth = %d, want 2", maxDepth)
	}
}

func TestSameInnermostLoop(t *testing.T) {
	g := loopProg(t)
	a := Analyze(g)
	// Two blocks inside the loop share it; entry and a loop block do not.
	var inLoop []int
	for b := range g.Blocks {
		if a.LoopDepth[b] > 0 {
			inLoop = append(inLoop, b)
		}
	}
	if len(inLoop) < 2 {
		t.Fatalf("too few loop blocks: %v", inLoop)
	}
	if !a.SameInnermostLoop(inLoop[0], inLoop[1]) {
		t.Error("loop blocks not in same innermost loop")
	}
	if a.SameInnermostLoop(0, inLoop[0]) {
		t.Error("entry reported inside the loop")
	}
}

func TestPredLivenessStraightLine(t *testing.T) {
	b := prog.NewBuilder("pl")
	b.Cmpi(isa.CmpEQ, 2, 3, 1, 0) // defines p2, p3 unconditionally
	b.Movi(4, 1).QP = 2           // uses p2
	b.Halt(0)
	g, err := prog.BuildCFG(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	pl := ComputePredLiveness(g)
	if pl.Use[0]&(1<<2) != 0 {
		t.Error("p2 upward-exposed despite local def")
	}
	if pl.Def[0]&(1<<2) == 0 || pl.Def[0]&(1<<3) == 0 {
		t.Error("p2/p3 not in def set")
	}
	if pl.LiveIn[0] != 0 {
		t.Errorf("liveIn(entry) = %b, want empty", pl.LiveIn[0])
	}
}

func TestPredLivenessAcrossBlocks(t *testing.T) {
	// Block A defines p2; block B (after a branch) uses it.
	b := prog.NewBuilder("pl2")
	b.Cmpi(isa.CmpEQ, 2, 3, 1, 0)
	b.Br("use")
	b.Label("use")
	b.Movi(4, 1).QP = 2
	b.Halt(0)
	g, err := prog.BuildCFG(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	pl := ComputePredLiveness(g)
	useBlock := g.BlockOf(2).Index
	if pl.LiveIn[useBlock]&(1<<2) == 0 {
		t.Error("p2 not live into the use block")
	}
	defBlock := g.BlockOf(0).Index
	if pl.LiveOut[defBlock]&(1<<2) == 0 {
		t.Error("p2 not live out of the def block")
	}
}

func TestPredLivenessGuardedDefIsConditional(t *testing.T) {
	// A guarded normal compare does not kill liveness.
	b := prog.NewBuilder("pl3")
	b.Cmpi(isa.CmpEQ, 4, 5, 1, 0)        // defines guard p4
	b.Cmpi(isa.CmpEQ, 2, 3, 1, 0).QP = 4 // conditional def of p2
	b.Br("use")
	b.Label("use")
	b.Movi(6, 1).QP = 2
	b.Halt(0)
	g, err := prog.BuildCFG(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	pl := ComputePredLiveness(g)
	if pl.Def[0]&(1<<2) != 0 {
		t.Error("guarded compare counted as unconditional def")
	}
	// p2 should be live into the entry (flows from before the program).
	if pl.LiveIn[0]&(1<<2) == 0 {
		t.Error("p2 not live into entry despite conditional def")
	}
}

func TestPredLivenessUncKills(t *testing.T) {
	// An unc-type compare always writes, even when guarded.
	b := prog.NewBuilder("pl4")
	b.Emit(isa.Inst{Op: isa.OpCmp, QP: 4, CC: isa.CmpEQ, CT: isa.CmpUnc, PD1: 2, PD2: 3, Src1: 1, Imm: 0, HasImm: true})
	b.Movi(6, 1).QP = 2
	b.Halt(0)
	g, err := prog.BuildCFG(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	pl := ComputePredLiveness(g)
	if pl.Def[0]&(1<<2) == 0 {
		t.Error("unc compare not counted as unconditional def")
	}
	if pl.LiveIn[0]&(1<<2) != 0 {
		t.Error("p2 live into entry despite unc def")
	}
	// But the guard p4 itself is upward-exposed.
	if pl.LiveIn[0]&(1<<4) == 0 {
		t.Error("guard p4 not live into entry")
	}
}

func TestPredLivenessOrTypeUses(t *testing.T) {
	// Or-type compares may preserve their destinations: destination counts
	// as a use.
	b := prog.NewBuilder("pl5")
	b.Emit(isa.Inst{Op: isa.OpCmp, CC: isa.CmpEQ, CT: isa.CmpOr, PD1: 2, PD2: 3, Src1: 1, Imm: 0, HasImm: true})
	b.Halt(0)
	g, err := prog.BuildCFG(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	pl := ComputePredLiveness(g)
	if pl.LiveIn[0]&(1<<2) == 0 || pl.LiveIn[0]&(1<<3) == 0 {
		t.Error("or-type compare destinations not treated as uses")
	}
}
