// Package cfgutil provides control-flow analyses over prog.CFG: reverse
// postorder, dominator trees (Cooper–Harvey–Kennedy), and natural loop
// detection. The if-converter uses these to find single-entry acyclic
// regions it can predicate.
package cfgutil

import (
	"repro/internal/prog"
)

// Analysis bundles the derived structures for one CFG.
type Analysis struct {
	G *prog.CFG

	// RPO is the reverse postorder over reachable blocks, starting at the
	// entry block.
	RPO []int
	// RPONum maps block index -> position in RPO, or -1 if unreachable.
	RPONum []int
	// IDom maps block index -> immediate dominator block index. The entry
	// block is its own idom; unreachable blocks have -1.
	IDom []int
	// LoopHeader maps block index -> header of the innermost natural loop
	// containing it, or -1 if it is not in any loop.
	LoopHeader []int
	// LoopDepth maps block index -> loop nesting depth (0 = not in a loop).
	LoopDepth []int
	// Loops lists detected natural loops.
	Loops []Loop
}

// Loop is a natural loop: a header and the set of blocks in its body
// (including the header).
type Loop struct {
	Header int
	Blocks map[int]bool
}

// Analyze computes all analyses for g.
func Analyze(g *prog.CFG) *Analysis {
	a := &Analysis{G: g}
	n := len(g.Blocks)
	a.RPONum = make([]int, n)
	a.IDom = make([]int, n)
	a.LoopHeader = make([]int, n)
	a.LoopDepth = make([]int, n)
	for i := range a.RPONum {
		a.RPONum[i] = -1
		a.IDom[i] = -1
		a.LoopHeader[i] = -1
	}
	if n == 0 {
		return a
	}
	a.computeRPO()
	a.computeDominators()
	a.computeLoops()
	return a
}

func (a *Analysis) computeRPO() {
	n := len(a.G.Blocks)
	visited := make([]bool, n)
	post := make([]int, 0, n)
	// Iterative DFS to avoid deep recursion on long block chains.
	type frame struct {
		b    int
		next int
	}
	stack := []frame{{b: 0}}
	visited[0] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := a.G.Blocks[f.b].Succs
		if f.next < len(succs) {
			s := succs[f.next]
			f.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	a.RPO = make([]int, len(post))
	for i := range post {
		a.RPO[i] = post[len(post)-1-i]
	}
	for i, b := range a.RPO {
		a.RPONum[b] = i
	}
}

// computeDominators runs the Cooper–Harvey–Kennedy iterative algorithm.
func (a *Analysis) computeDominators() {
	a.IDom[0] = 0
	changed := true
	for changed {
		changed = false
		for _, b := range a.RPO {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range a.G.Blocks[b].Preds {
				if a.IDom[p] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = a.intersect(p, newIdom)
				}
			}
			if newIdom != -1 && a.IDom[b] != newIdom {
				a.IDom[b] = newIdom
				changed = true
			}
		}
	}
}

func (a *Analysis) intersect(b1, b2 int) int {
	for b1 != b2 {
		for a.RPONum[b1] > a.RPONum[b2] {
			b1 = a.IDom[b1]
		}
		for a.RPONum[b2] > a.RPONum[b1] {
			b2 = a.IDom[b2]
		}
	}
	return b1
}

// Dominates reports whether block d dominates block b. Unreachable blocks
// dominate nothing and are dominated by nothing.
func (a *Analysis) Dominates(d, b int) bool {
	if a.RPONum[d] == -1 || a.RPONum[b] == -1 {
		return false
	}
	for {
		if b == d {
			return true
		}
		if b == 0 {
			return false
		}
		b = a.IDom[b]
		if b == -1 {
			return false
		}
	}
}

// Reachable reports whether block b is reachable from the entry.
func (a *Analysis) Reachable(b int) bool { return a.RPONum[b] != -1 }

func (a *Analysis) computeLoops() {
	// Find back edges: tail -> header where header dominates tail.
	type backEdge struct{ tail, header int }
	var backs []backEdge
	for _, b := range a.RPO {
		for _, s := range a.G.Blocks[b].Succs {
			if a.Dominates(s, b) {
				backs = append(backs, backEdge{tail: b, header: s})
			}
		}
	}
	// Merge back edges with the same header into one loop, collecting the
	// body by walking predecessors from the tail until the header.
	byHeader := make(map[int]*Loop)
	for _, e := range backs {
		l := byHeader[e.header]
		if l == nil {
			l = &Loop{Header: e.header, Blocks: map[int]bool{e.header: true}}
			byHeader[e.header] = l
		}
		if l.Blocks[e.tail] {
			continue
		}
		work := []int{e.tail}
		l.Blocks[e.tail] = true
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, p := range a.G.Blocks[b].Preds {
				if !a.Reachable(p) || l.Blocks[p] {
					continue
				}
				l.Blocks[p] = true
				work = append(work, p)
			}
		}
	}
	for _, b := range a.RPO {
		if l, ok := byHeader[b]; ok {
			a.Loops = append(a.Loops, *l)
		}
	}
	// Innermost loop per block: among loops containing b, the one with the
	// smallest body. Depth = number of loops containing b.
	for _, b := range a.RPO {
		best := -1
		bestSize := 0
		depth := 0
		for i := range a.Loops {
			l := &a.Loops[i]
			if l.Blocks[b] {
				depth++
				if best == -1 || len(l.Blocks) < bestSize {
					best = l.Header
					bestSize = len(l.Blocks)
				}
			}
		}
		a.LoopHeader[b] = best
		a.LoopDepth[b] = depth
	}
}

// SameInnermostLoop reports whether two blocks are in the same innermost
// loop (both may be in no loop).
func (a *Analysis) SameInnermostLoop(b1, b2 int) bool {
	return a.LoopHeader[b1] == a.LoopHeader[b2]
}
