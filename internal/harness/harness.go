// Package harness defines the reproduction experiments E1–E14: for every
// table and figure reconstructed from the paper (see DESIGN.md), one
// experiment that regenerates it from this repository's workloads,
// if-converter, predictors and timing model.
//
// Experiments run on the unified simulation engine in internal/sim: all
// predictor construction goes through the sim registry, and every
// predictor × workload grid fans out over sim.Sweep's worker pool while
// keeping deterministic, suite-ordered results.
package harness

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bpred"
	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/ifconv"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/results"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config controls an experiment run.
type Config struct {
	// Limit bounds emulation steps per program run (default 3,000,000).
	Limit uint64
	// Quick trims parameter sweeps for fast test runs; results keep the
	// same shape with fewer points.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Limit == 0 {
		c.Limit = 3_000_000
	}
	return c
}

// Default machine/predictor parameters shared by the experiments.
const (
	defTableBits = 12
	defHistBits  = 8
	defResolve   = core.DefaultResolveDelay
	defPGUDelay  = core.DefaultPGUDelay
)

// defSpec is the default global predictor every experiment keys on.
var defSpec = sim.Spec{Kind: "gshare", TableBits: defTableBits, HistBits: defHistBits}

// newGshare builds the default global predictor through the registry.
func newGshare() bpred.Predictor { return defSpec.MustNew() }

// Entry is one workload prepared for experimentation: the original
// branching program, its if-converted form, the conversion report, and
// traces of both. Derived artifacts that only some experiments need —
// the profile-guided conversion and the unscheduled-compare conversion —
// are built lazily and memoized, so experiments share one copy instead
// of re-materializing traces per evaluation.
type Entry struct {
	Name      string
	Orig      *prog.Program
	Conv      *prog.Program
	Report    *ifconv.Report
	OrigTrace *trace.Trace
	ConvTrace *trace.Trace

	// limit is the suite's emulation bound, shared by derived artifacts.
	limit uint64

	profiledOnce sync.Once
	profiledProg *prog.Program
	profiledRep  *ifconv.Report
	profiledTr   *trace.Trace
	profiledErr  error

	unschedOnce sync.Once
	unschedTr   *trace.Trace
	unschedErr  error
}

// Profiled returns the workload's profile-guided if-conversion (the
// paper's compiler mode): converted program, conversion report, and the
// trace of the converted program. It is computed on first use and cached
// for the suite's lifetime, so E2c, E11, and any future experiment share
// one profile+convert+trace instead of redoing it per experiment.
func (e *Entry) Profiled() (*prog.Program, *ifconv.Report, *trace.Trace, error) {
	e.profiledOnce.Do(func() {
		prof, err := profile.Collect(e.Orig, newGshare(), e.limit)
		if err != nil {
			e.profiledErr = fmt.Errorf("harness: profiling %s: %w", e.Name, err)
			return
		}
		e.profiledProg, e.profiledRep, err = ifconv.Convert(e.Orig, ifconv.Config{Profile: prof})
		if err != nil {
			e.profiledErr = fmt.Errorf("harness: profile-converting %s: %w", e.Name, err)
			return
		}
		e.profiledTr, err = trace.Collect(e.profiledProg, e.limit)
		if err != nil {
			e.profiledErr = fmt.Errorf("harness: tracing %s (profiled): %w", e.Name, err)
		}
	})
	return e.profiledProg, e.profiledRep, e.profiledTr, e.profiledErr
}

// Unscheduled returns the trace of greedy if-conversion without compare
// scheduling (the E10 ablation), memoized like Profiled.
func (e *Entry) Unscheduled() (*trace.Trace, error) {
	e.unschedOnce.Do(func() {
		raw, _, err := ifconv.Convert(e.Orig, ifconv.Config{NoCompareScheduling: true})
		if err != nil {
			e.unschedErr = fmt.Errorf("harness: unscheduled-converting %s: %w", e.Name, err)
			return
		}
		e.unschedTr, err = trace.Collect(raw, e.limit)
		if err != nil {
			e.unschedErr = fmt.Errorf("harness: tracing %s (unscheduled): %w", e.Name, err)
		}
	})
	return e.unschedTr, e.unschedErr
}

// Suite is the prepared workload set shared by all experiments.
type Suite struct {
	Entries []*Entry
	cfg     Config

	// extra memoizes entries materialized on demand for workloads
	// outside the fixed suite — the synthetic charz family a spec can
	// name without changing suite membership (which the golden CSVs of
	// the suite-wide experiments pin down).
	mu    sync.Mutex
	extra map[string]*Entry
}

// NewSuite builds, converts, and traces every workload; it is the
// expensive shared setup, done once per harness invocation.
func NewSuite(cfg Config) (*Suite, error) {
	return NewSuiteContext(context.Background(), cfg)
}

// NewSuiteContext is NewSuite bounded by a context. Workloads are
// prepared on the engine's worker pool (they are independent); the
// resulting entry order is the deterministic workload order regardless
// of scheduling.
func NewSuiteContext(ctx context.Context, cfg Config) (*Suite, error) {
	cfg = cfg.withDefaults()
	entries, err := sim.Map(ctx, workload.Suite(), 0,
		func(_ context.Context, w workload.Workload) (*Entry, error) {
			return buildEntry(w, cfg)
		})
	if err != nil {
		return nil, err
	}
	return &Suite{cfg: cfg, Entries: entries}, nil
}

// buildEntry prepares one workload: build, convert, trace both forms.
func buildEntry(w workload.Workload, cfg Config) (*Entry, error) {
	e := &Entry{Name: w.Name, Orig: w.Build(), limit: cfg.Limit}
	var err error
	if e.Conv, e.Report, err = ifconv.Convert(e.Orig, ifconv.Config{}); err != nil {
		return nil, fmt.Errorf("harness: converting %s: %w", w.Name, err)
	}
	if e.OrigTrace, err = trace.Collect(e.Orig, cfg.Limit); err != nil {
		return nil, fmt.Errorf("harness: tracing %s: %w", w.Name, err)
	}
	if e.ConvTrace, err = trace.Collect(e.Conv, cfg.Limit); err != nil {
		return nil, fmt.Errorf("harness: tracing %s (converted): %w", w.Name, err)
	}
	return e, nil
}

// entry resolves a workload name to its prepared entry: a suite member
// directly, anything else — the synthetic charz family — by building it
// on first use and memoizing it for the suite's lifetime.
func (s *Suite) entry(name string) (*Entry, error) {
	for _, e := range s.Entries {
		if e.Name == name {
			return e, nil
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.extra[name]; ok {
		return e, nil
	}
	w, err := workload.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("%s workload missing", name)
	}
	e, err := buildEntry(w, s.cfg)
	if err != nil {
		return nil, err
	}
	if s.extra == nil {
		s.extra = make(map[string]*Entry)
	}
	s.extra[name] = e
	return e, nil
}

// Experiment regenerates one reconstructed table/figure.
type Experiment struct {
	ID    string
	Title string
	// Paper describes the paper analogue this experiment reconstructs.
	Paper string
	// Expect states the shape the result should show if the reproduction
	// holds.
	Expect string
	// Spec is the experiment's declarative definition when it runs on
	// the generic engine (see spec.go); nil for a hand-written Run (the
	// escape hatch for experiments that do not fit a grid).
	Spec *Spec
	Run  func(ctx context.Context, s *Suite, cfg Config) ([]*stats.Table, error)
}

// ConfigHash identifies what this experiment would compute under cfg:
// the experiment, the run bounds, and — for spec-driven experiments —
// the active variant grid and workload selection. Two runs with equal
// hashes answered the same question; the results store keys records on
// it so `bpstats` can tell a regression from a reconfiguration.
func (e Experiment) ConfigHash(cfg Config) string {
	cfg = cfg.withDefaults()
	doc := struct {
		ID        string
		Limit     uint64
		Quick     bool
		Custom    bool      `json:",omitempty"`
		Workloads []string  `json:",omitempty"`
		Variants  []Variant `json:",omitempty"`
	}{ID: e.ID, Limit: cfg.Limit, Quick: cfg.Quick}
	if e.Spec == nil {
		doc.Custom = true
	} else {
		doc.Workloads = e.Spec.Workloads
		doc.Variants = e.Spec.ActiveVariants(cfg)
	}
	return buildinfo.Hash(doc)
}

var experiments []Experiment

func registerExperiment(e Experiment) { experiments = append(experiments, e) }

// All returns every experiment in natural ID order (E1, E2, ... E14 —
// numeric, not lexical, so E9 precedes E10). Ranges in Select and the
// -list output follow this order.
func All() []Experiment {
	out := append([]Experiment(nil), experiments...)
	sort.Slice(out, func(i, j int) bool { return idOrd(out[i].ID) < idOrd(out[j].ID) })
	return out
}

// idOrd maps "E<n>" to n for natural ordering; non-conforming IDs sort
// last in lexical order among themselves (the registry has none today).
func idOrd(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "E"))
	if err != nil {
		return 1 << 30
	}
	return n
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// Select resolves an experiment-selection expression: a comma-separated
// list of experiment IDs ("E2,E5"), numeric ranges ("E3-E6"), and table
// names ("E2a" selects E2 — the letter suffix cmd/experiments appends to
// multi-table CSV files). The empty expression selects every experiment.
// Unknown IDs fail up front, before any suite is built.
func Select(expr string) ([]Experiment, error) {
	if strings.TrimSpace(expr) == "" {
		return All(), nil
	}
	var out []Experiment
	seen := make(map[string]bool)
	add := func(e Experiment) {
		if !seen[e.ID] {
			seen[e.ID] = true
			out = append(out, e)
		}
	}
	for _, tok := range strings.Split(expr, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if e, err := ByID(tok); err == nil {
			add(e)
			continue
		}
		// Table name: an ID plus the letter suffix of a multi-table
		// experiment's CSV file ("E2a" -> E2).
		if n := len(tok); n > 1 && tok[n-1] >= 'a' && tok[n-1] <= 'z' {
			if e, err := ByID(tok[:n-1]); err == nil {
				add(e)
				continue
			}
		}
		// Range: "E3-E6" in registry (sorted-ID) order, inclusive.
		if lo, hi, ok := strings.Cut(tok, "-"); ok {
			elo, errLo := ByID(strings.TrimSpace(lo))
			ehi, errHi := ByID(strings.TrimSpace(hi))
			if errLo == nil && errHi == nil {
				in := false
				for _, e := range All() {
					if e.ID == elo.ID {
						in = true
					}
					if in {
						add(e)
					}
					if e.ID == ehi.ID {
						if !in {
							return nil, fmt.Errorf("harness: empty range %q (bounds out of order)", tok)
						}
						in = false
					}
				}
				if in {
					return nil, fmt.Errorf("harness: empty range %q (bounds out of order)", tok)
				}
				continue
			}
		}
		return nil, fmt.Errorf("harness: unknown experiment %q in %q (run -list for IDs)", tok, expr)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("harness: selection %q names no experiments", expr)
	}
	return out, nil
}

// Result pairs an experiment with its output tables and the wall time
// the run took (the results store records it).
type Result struct {
	Experiment Experiment
	Tables     []*stats.Table
	Wall       time.Duration
}

// TableName returns the base name of the i-th table's CSV file: the
// experiment ID, with a letter suffix when the experiment emits several
// tables ("E2" -> E2a, E2b, ...). cmd/experiments, the golden test, and
// the results store all name tables through this one function.
func (r Result) TableName(i int) string {
	if len(r.Tables) <= 1 {
		return r.Experiment.ID
	}
	return r.Experiment.ID + string(rune('a'+i))
}

// Record converts the result into a results-store record for the given
// run. The config hash ties the record to the exact grid that produced
// it, so `bpstats diff` can refuse to compare unlike configurations.
func (r Result) Record(runID string, at time.Time, cfg Config) results.Record {
	cfg = cfg.withDefaults()
	rec := results.Record{
		RunID:      runID,
		Time:       at.UTC().Format(time.RFC3339),
		Version:    buildinfo.Version(),
		Experiment: r.Experiment.ID,
		ConfigHash: r.Experiment.ConfigHash(cfg),
		Quick:      cfg.Quick,
		Limit:      cfg.Limit,
		WallMS:     float64(r.Wall) / float64(time.Millisecond),
	}
	for i, t := range r.Tables {
		rec.Tables = append(rec.Tables, results.Table{
			Name:    r.TableName(i),
			Title:   t.Title,
			Columns: t.Columns,
			Rows:    t.Rows,
		})
	}
	return rec
}

// RunAll builds the suite once and runs every experiment.
func RunAll(cfg Config) ([]Result, error) {
	return RunAllContext(context.Background(), cfg)
}

// RunAllContext is RunAll bounded by a context: cancellation (e.g. a
// CLI -timeout) aborts the in-flight experiment's sweep and returns the
// context error.
func RunAllContext(ctx context.Context, cfg Config) ([]Result, error) {
	return RunSelected(ctx, cfg, All())
}

// RunSelected builds the suite once and runs the given experiments in
// order, timing each.
func RunSelected(ctx context.Context, cfg Config, exps []Experiment) ([]Result, error) {
	cfg = cfg.withDefaults()
	s, err := NewSuiteContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, e := range exps {
		start := time.Now()
		tables, err := e.Run(ctx, s, cfg)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", e.ID, err)
		}
		out = append(out, Result{Experiment: e, Tables: tables, Wall: time.Since(start)})
	}
	return out, nil
}
