// Package harness defines the reproduction experiments E1–E14: for every
// table and figure reconstructed from the paper (see DESIGN.md), one
// experiment that regenerates it from this repository's workloads,
// if-converter, predictors and timing model.
//
// Experiments run on the unified simulation engine in internal/sim: all
// predictor construction goes through the sim registry, and every
// predictor × workload grid fans out over sim.Sweep's worker pool while
// keeping deterministic, suite-ordered results.
package harness

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/ifconv"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config controls an experiment run.
type Config struct {
	// Limit bounds emulation steps per program run (default 3,000,000).
	Limit uint64
	// Quick trims parameter sweeps for fast test runs; results keep the
	// same shape with fewer points.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Limit == 0 {
		c.Limit = 3_000_000
	}
	return c
}

// Default machine/predictor parameters shared by the experiments.
const (
	defTableBits = 12
	defHistBits  = 8
	defResolve   = core.DefaultResolveDelay
	defPGUDelay  = core.DefaultPGUDelay
)

// defSpec is the default global predictor every experiment keys on.
var defSpec = sim.Spec{Kind: "gshare", TableBits: defTableBits, HistBits: defHistBits}

// newGshare builds the default global predictor through the registry.
func newGshare() bpred.Predictor { return defSpec.MustNew() }

// Entry is one workload prepared for experimentation: the original
// branching program, its if-converted form, the conversion report, and
// traces of both. Derived artifacts that only some experiments need —
// the profile-guided conversion and the unscheduled-compare conversion —
// are built lazily and memoized, so experiments share one copy instead
// of re-materializing traces per evaluation.
type Entry struct {
	Name      string
	Orig      *prog.Program
	Conv      *prog.Program
	Report    *ifconv.Report
	OrigTrace *trace.Trace
	ConvTrace *trace.Trace

	// limit is the suite's emulation bound, shared by derived artifacts.
	limit uint64

	profiledOnce sync.Once
	profiledProg *prog.Program
	profiledRep  *ifconv.Report
	profiledTr   *trace.Trace
	profiledErr  error

	unschedOnce sync.Once
	unschedTr   *trace.Trace
	unschedErr  error
}

// Profiled returns the workload's profile-guided if-conversion (the
// paper's compiler mode): converted program, conversion report, and the
// trace of the converted program. It is computed on first use and cached
// for the suite's lifetime, so E2c, E11, and any future experiment share
// one profile+convert+trace instead of redoing it per experiment.
func (e *Entry) Profiled() (*prog.Program, *ifconv.Report, *trace.Trace, error) {
	e.profiledOnce.Do(func() {
		prof, err := profile.Collect(e.Orig, newGshare(), e.limit)
		if err != nil {
			e.profiledErr = fmt.Errorf("harness: profiling %s: %w", e.Name, err)
			return
		}
		e.profiledProg, e.profiledRep, err = ifconv.Convert(e.Orig, ifconv.Config{Profile: prof})
		if err != nil {
			e.profiledErr = fmt.Errorf("harness: profile-converting %s: %w", e.Name, err)
			return
		}
		e.profiledTr, err = trace.Collect(e.profiledProg, e.limit)
		if err != nil {
			e.profiledErr = fmt.Errorf("harness: tracing %s (profiled): %w", e.Name, err)
		}
	})
	return e.profiledProg, e.profiledRep, e.profiledTr, e.profiledErr
}

// Unscheduled returns the trace of greedy if-conversion without compare
// scheduling (the E10 ablation), memoized like Profiled.
func (e *Entry) Unscheduled() (*trace.Trace, error) {
	e.unschedOnce.Do(func() {
		raw, _, err := ifconv.Convert(e.Orig, ifconv.Config{NoCompareScheduling: true})
		if err != nil {
			e.unschedErr = fmt.Errorf("harness: unscheduled-converting %s: %w", e.Name, err)
			return
		}
		e.unschedTr, err = trace.Collect(raw, e.limit)
		if err != nil {
			e.unschedErr = fmt.Errorf("harness: tracing %s (unscheduled): %w", e.Name, err)
		}
	})
	return e.unschedTr, e.unschedErr
}

// Suite is the prepared workload set shared by all experiments.
type Suite struct {
	Entries []*Entry
	cfg     Config
}

// NewSuite builds, converts, and traces every workload; it is the
// expensive shared setup, done once per harness invocation.
func NewSuite(cfg Config) (*Suite, error) {
	return NewSuiteContext(context.Background(), cfg)
}

// NewSuiteContext is NewSuite bounded by a context. Workloads are
// prepared on the engine's worker pool (they are independent); the
// resulting entry order is the deterministic workload order regardless
// of scheduling.
func NewSuiteContext(ctx context.Context, cfg Config) (*Suite, error) {
	cfg = cfg.withDefaults()
	entries, err := sim.Map(ctx, workload.Suite(), 0,
		func(_ context.Context, w workload.Workload) (*Entry, error) {
			e := &Entry{Name: w.Name, Orig: w.Build(), limit: cfg.Limit}
			var err error
			if e.Conv, e.Report, err = ifconv.Convert(e.Orig, ifconv.Config{}); err != nil {
				return nil, fmt.Errorf("harness: converting %s: %w", w.Name, err)
			}
			if e.OrigTrace, err = trace.Collect(e.Orig, cfg.Limit); err != nil {
				return nil, fmt.Errorf("harness: tracing %s: %w", w.Name, err)
			}
			if e.ConvTrace, err = trace.Collect(e.Conv, cfg.Limit); err != nil {
				return nil, fmt.Errorf("harness: tracing %s (converted): %w", w.Name, err)
			}
			return e, nil
		})
	if err != nil {
		return nil, err
	}
	return &Suite{cfg: cfg, Entries: entries}, nil
}

// Experiment regenerates one reconstructed table/figure.
type Experiment struct {
	ID    string
	Title string
	// Paper describes the paper analogue this experiment reconstructs.
	Paper string
	// Expect states the shape the result should show if the reproduction
	// holds.
	Expect string
	Run    func(ctx context.Context, s *Suite, cfg Config) ([]*stats.Table, error)
}

var experiments []Experiment

func registerExperiment(e Experiment) { experiments = append(experiments, e) }

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), experiments...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// Result pairs an experiment with its output tables.
type Result struct {
	Experiment Experiment
	Tables     []*stats.Table
}

// RunAll builds the suite once and runs every experiment.
func RunAll(cfg Config) ([]Result, error) {
	return RunAllContext(context.Background(), cfg)
}

// RunAllContext is RunAll bounded by a context: cancellation (e.g. a
// CLI -timeout) aborts the in-flight experiment's sweep and returns the
// context error.
func RunAllContext(ctx context.Context, cfg Config) ([]Result, error) {
	cfg = cfg.withDefaults()
	s, err := NewSuiteContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, e := range All() {
		tables, err := e.Run(ctx, s, cfg)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", e.ID, err)
		}
		out = append(out, Result{Experiment: e, Tables: tables})
	}
	return out, nil
}

// overEntries computes one result per suite entry on the engine's worker
// pool, preserving suite order — the basis of every per-workload table
// and the reason parallel runs render byte-identical output.
func overEntries[T any](ctx context.Context, s *Suite, fn func(*Entry) (T, error)) ([]T, error) {
	return sim.Map(ctx, s.Entries, 0, func(_ context.Context, e *Entry) (T, error) {
		return fn(e)
	})
}

// geoRates evaluates cfgOf over every entry's converted trace on the
// sweep pool and returns the geometric-mean misprediction rate.
func geoRates(ctx context.Context, s *Suite, cfgOf func(e *Entry) core.EvalConfig) (float64, error) {
	rates, err := overEntries(ctx, s, func(e *Entry) (float64, error) {
		return core.Evaluate(e.ConvTrace, cfgOf(e)).MispredictRate(), nil
	})
	if err != nil {
		return 0, err
	}
	return stats.Geomean(rates), nil
}
