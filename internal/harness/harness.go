// Package harness defines the reproduction experiments E1–E14: for every
// table and figure reconstructed from the paper (see DESIGN.md), one
// experiment that regenerates it from this repository's workloads,
// if-converter, predictors and timing model.
package harness

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/ifconv"
	"repro/internal/prog"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config controls an experiment run.
type Config struct {
	// Limit bounds emulation steps per program run (default 3,000,000).
	Limit uint64
	// Quick trims parameter sweeps for fast test runs; results keep the
	// same shape with fewer points.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Limit == 0 {
		c.Limit = 3_000_000
	}
	return c
}

// Default machine/predictor parameters shared by the experiments.
const (
	defTableBits = 12
	defHistBits  = 8
	defResolve   = core.DefaultResolveDelay
	defPGUDelay  = core.DefaultPGUDelay
)

// Entry is one workload prepared for experimentation: the original
// branching program, its if-converted form, the conversion report, and
// traces of both.
type Entry struct {
	Name      string
	Orig      *prog.Program
	Conv      *prog.Program
	Report    *ifconv.Report
	OrigTrace *trace.Trace
	ConvTrace *trace.Trace
}

// Suite is the prepared workload set shared by all experiments.
type Suite struct {
	Entries []*Entry
	cfg     Config
}

// NewSuite builds, converts, and traces every workload; it is the
// expensive shared setup, done once per harness invocation. Workloads are
// prepared concurrently (they are independent); the resulting entry order
// is the deterministic workload order regardless of scheduling.
func NewSuite(cfg Config) (*Suite, error) {
	cfg = cfg.withDefaults()
	ws := workload.Suite()
	s := &Suite{cfg: cfg, Entries: make([]*Entry, len(ws))}
	errs := make([]error, len(ws))
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w workload.Workload) {
			defer wg.Done()
			e := &Entry{Name: w.Name, Orig: w.Build()}
			var err error
			if e.Conv, e.Report, err = ifconv.Convert(e.Orig, ifconv.Config{}); err != nil {
				errs[i] = fmt.Errorf("harness: converting %s: %w", w.Name, err)
				return
			}
			if e.OrigTrace, err = trace.Collect(e.Orig, cfg.Limit); err != nil {
				errs[i] = fmt.Errorf("harness: tracing %s: %w", w.Name, err)
				return
			}
			if e.ConvTrace, err = trace.Collect(e.Conv, cfg.Limit); err != nil {
				errs[i] = fmt.Errorf("harness: tracing %s (converted): %w", w.Name, err)
				return
			}
			s.Entries[i] = e
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Experiment regenerates one reconstructed table/figure.
type Experiment struct {
	ID    string
	Title string
	// Paper describes the paper analogue this experiment reconstructs.
	Paper string
	// Expect states the shape the result should show if the reproduction
	// holds.
	Expect string
	Run    func(s *Suite, cfg Config) ([]*stats.Table, error)
}

var experiments []Experiment

func registerExperiment(e Experiment) { experiments = append(experiments, e) }

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), experiments...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// Result pairs an experiment with its output tables.
type Result struct {
	Experiment Experiment
	Tables     []*stats.Table
}

// RunAll builds the suite once and runs every experiment.
func RunAll(cfg Config) ([]Result, error) {
	cfg = cfg.withDefaults()
	s, err := NewSuite(cfg)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, e := range All() {
		tables, err := e.Run(s, cfg)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", e.ID, err)
		}
		out = append(out, Result{Experiment: e, Tables: tables})
	}
	return out, nil
}

// newGshare builds the default global predictor.
func newGshare() bpred.Predictor { return bpred.NewGShare(defTableBits, defHistBits) }

// geoRates evaluates cfgOf over every entry's converted trace and returns
// the geometric-mean misprediction rate.
func geoRates(s *Suite, cfgOf func(e *Entry) core.EvalConfig) float64 {
	var rates []float64
	for _, e := range s.Entries {
		m := core.Evaluate(e.ConvTrace, cfgOf(e))
		rates = append(rates, m.MispredictRate())
	}
	return stats.Geomean(rates)
}
