// spec.go — the declarative experiment engine. An experiment used to be
// an opaque Run closure with its own hand-rolled grid loops; it is now a
// Spec: a configuration grid (variants × workloads) plus table
// definitions built from a small set of row-shaping combinators
// (per-workload rows, per-group sweep rows, summary rows, paired
// orig-vs-converted columns). One engine executes every Spec on the
// sim sweep pool and renders the same stats.Tables the hand-coded
// bodies produced, byte for byte — which is what lets the golden CSV
// test gate the refactor, and what makes a Spec the unit a results
// store can record and a remote executor can run.
package harness

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TraceKind selects which prepared artifact of an Entry a variant
// evaluates: metrics variants pick a trace, pipeline variants the
// corresponding program.
type TraceKind int

const (
	// TraceConv is the greedily if-converted workload (the default).
	TraceConv TraceKind = iota
	// TraceOrig is the original branching workload.
	TraceOrig
	// TraceProfiled is the profile-guided conversion (memoized per entry).
	TraceProfiled
	// TraceUnscheduled is greedy conversion without compare scheduling
	// (memoized per entry).
	TraceUnscheduled
)

func (k TraceKind) String() string {
	switch k {
	case TraceConv:
		return "conv"
	case TraceOrig:
		return "orig"
	case TraceProfiled:
		return "profiled"
	case TraceUnscheduled:
		return "unscheduled"
	}
	return fmt.Sprintf("trace(%d)", int(k))
}

// Variant is one point of an experiment's configuration grid: a
// predictor spec plus evaluator (or timing-model) options, applied to
// one artifact of every selected workload. Its Key names the point for
// table columns; a "group/sub" key places the variant in a sweep group
// for per-group row shapes.
type Variant struct {
	// Key is unique within the Spec. Everything before the first '/'
	// is the variant's sweep group.
	Key string
	// Trace selects the workload artifact evaluated.
	Trace TraceKind
	// Pred is the predictor; the zero value means the default gshare 12/8.
	Pred sim.Spec

	// Evaluator options (core.EvalConfig / pipeline.Config fields).
	UseSFPF      bool
	FilterTrue   bool
	ResolveDelay uint64
	PGU          core.PGUPolicy
	PGUDelay     uint64

	// Pipeline evaluates on the timing model instead of the trace
	// evaluator; the remaining fields configure that machine.
	Pipeline   bool
	IssueWidth int
	RASDepth   int
	NoRAS      bool

	// FullOnly drops the variant from quick runs (sweep trimming).
	FullOnly bool
}

// group returns the variant's sweep group: the key up to the first '/'.
func (v Variant) group() string {
	for i := 0; i < len(v.Key); i++ {
		if v.Key[i] == '/' {
			return v.Key[:i]
		}
	}
	return v.Key
}

// joinKey forms a full variant key from a group and a sub-key; either
// part may be empty.
func joinKey(group, sub string) string {
	switch {
	case group == "":
		return sub
	case sub == "":
		return group
	}
	return group + "/" + sub
}

// Cell is one evaluated grid point: the metrics (or timing stats) of one
// variant on one workload.
type Cell struct {
	Entry   *Entry
	Variant Variant
	// M holds the trace-evaluator metrics of a non-pipeline variant.
	M core.Metrics
	// P holds the timing-model stats of a pipeline variant.
	P pipeline.Stats
}

// Shape selects a table's row combinator.
type Shape int

const (
	// RowsPerEntry emits one row per selected workload, in suite order.
	RowsPerEntry Shape = iota
	// RowsPerGroup emits one row per variant sweep group, in the order
	// listed by TableSpec.Groups.
	RowsPerGroup
)

// Row is the view a column's Value function gets of the cells backing
// one output row.
type Row struct {
	// Entry is the row's workload on per-entry rows; nil on group and
	// summary rows.
	Entry *Entry
	// Group is the row's sweep group on per-group rows; "" otherwise.
	Group string

	grid     *grid
	included []*Entry // entries aggregated by Cells on group/summary rows
}

// Cell returns the row's single cell for a (sub-)key: the variant's cell
// for this row's workload on per-entry rows, or — when the experiment
// selects exactly one workload — for that workload on per-group rows.
func (r Row) Cell(sub string) Cell {
	if r.Entry != nil {
		return r.grid.cell(r.Entry, sub)
	}
	if len(r.included) != 1 {
		panic(fmt.Sprintf("harness: Row.Cell(%q) on an aggregate row over %d workloads", sub, len(r.included)))
	}
	return r.grid.cell(r.included[0], joinKey(r.Group, sub))
}

// Cells returns the cells for a (sub-)key across the row's workloads, in
// suite order. On a summary row the entries are the table's included
// (non-skipped) rows, so summary statistics match what the table shows.
func (r Row) Cells(sub string) []Cell {
	if r.Entry != nil {
		return []Cell{r.grid.cell(r.Entry, sub)}
	}
	out := make([]Cell, len(r.included))
	for i, e := range r.included {
		out[i] = r.grid.cell(e, joinKey(r.Group, sub))
	}
	return out
}

// Over maps the row's cells for a (sub-)key through f, in suite order —
// the input of the stats.Geomean/stats.Mean aggregations sweep tables
// are made of.
func (r Row) Over(sub string, f func(Cell) float64) []float64 {
	cells := r.Cells(sub)
	out := make([]float64, len(cells))
	for i, c := range cells {
		out[i] = f(c)
	}
	return out
}

// rate is the common Over projection.
func rate(c Cell) float64 { return c.M.MispredictRate() }

// Col derives one output column from a row view.
type Col struct {
	Name  string
	Value func(Row) string
}

// workloadCol is the leading per-entry column every workload table has.
func workloadCol() Col {
	return Col{"workload", func(r Row) string { return r.Entry.Name }}
}

// groupCol is the leading per-group column of a sweep table.
func groupCol(name string) Col {
	return Col{name, func(r Row) string { return r.Group }}
}

// staticNote wraps a fixed footnote.
func staticNote(s string) func([]Row) string {
	return func([]Row) string { return s }
}

// TableSpec declares one output table of a Spec.
type TableSpec struct {
	Title string
	Shape Shape
	// Groups lists (and orders) the sweep groups of a RowsPerGroup
	// table; groups whose variants are all trimmed from the run are
	// dropped.
	Groups []string
	// Cols derive the data rows.
	Cols []Col
	// Summary, when non-empty, appends one aggregate row (geomean and
	// friends) computed over the included data rows; missing trailing
	// columns render empty.
	Summary []Col
	// Skip drops a per-entry row (and excludes it from Summary and
	// Notes).
	Skip func(Row) bool
	// Notes render footnotes from the included data rows.
	Notes []func([]Row) string
	// FullOnly drops the whole table from quick runs.
	FullOnly bool
}

// Spec is a declarative experiment: a variant × workload grid plus the
// tables shaped from its cells. Experiment() adapts it to the registry;
// the engine in run executes it.
type Spec struct {
	ID     string
	Title  string
	Paper  string
	Expect string
	// Workloads selects a subset of the suite by name; nil means all.
	Workloads []string
	Variants  []Variant
	Tables    []TableSpec
}

// Experiment adapts the Spec to the experiment registry. The returned
// Experiment's Run is the generic engine; hand-written experiments that
// genuinely do not fit a grid can still register a custom Run closure
// (the escape hatch — currently unused).
func (sp Spec) Experiment() Experiment {
	s := sp
	return Experiment{
		ID:     s.ID,
		Title:  s.Title,
		Paper:  s.Paper,
		Expect: s.Expect,
		Spec:   &s,
		Run:    s.run,
	}
}

// ActiveVariants returns the variants a run with this config evaluates
// (quick runs drop FullOnly variants). The active set is part of the
// run's identity: it feeds Experiment.ConfigHash.
func (sp *Spec) ActiveVariants(cfg Config) []Variant {
	var out []Variant
	for _, v := range sp.Variants {
		if cfg.Quick && v.FullOnly {
			continue
		}
		out = append(out, v)
	}
	return out
}

// grid holds the evaluated cells of one Spec run.
type grid struct {
	spec    *Spec
	entries []*Entry
	cells   map[cellKey]Cell
}

type cellKey struct {
	entry string
	key   string
}

func (g *grid) cell(e *Entry, key string) Cell {
	c, ok := g.cells[cellKey{e.Name, key}]
	if !ok {
		panic(fmt.Sprintf("harness: %s: no cell for workload %q, variant %q (column references a variant the spec does not declare, or one trimmed from this run)", g.spec.ID, e.Name, key))
	}
	return c
}

// run is the engine: evaluate the grid on the sweep pool, then shape
// tables sequentially (deterministic row order regardless of worker
// scheduling).
func (sp *Spec) run(ctx context.Context, s *Suite, cfg Config) ([]*stats.Table, error) {
	entries, err := sp.selectEntries(s)
	if err != nil {
		return nil, err
	}
	variants := sp.ActiveVariants(cfg)
	seen := make(map[string]bool, len(variants))
	for _, v := range variants {
		if seen[v.Key] {
			return nil, fmt.Errorf("harness: %s: duplicate variant key %q", sp.ID, v.Key)
		}
		seen[v.Key] = true
	}

	type job struct {
		e *Entry
		v Variant
	}
	jobs := make([]job, 0, len(entries)*len(variants))
	for _, e := range entries {
		for _, v := range variants {
			jobs = append(jobs, job{e, v})
		}
	}
	cells, err := sim.Map(ctx, jobs, 0, func(_ context.Context, j job) (Cell, error) {
		return evalCell(j.e, j.v, cfg)
	})
	if err != nil {
		return nil, err
	}

	g := &grid{spec: sp, entries: entries, cells: make(map[cellKey]Cell, len(cells))}
	for _, c := range cells {
		g.cells[cellKey{c.Entry.Name, c.Variant.Key}] = c
	}

	activeGroups := make(map[string]bool, len(variants))
	for _, v := range variants {
		activeGroups[v.group()] = true
	}

	var tables []*stats.Table
	for i := range sp.Tables {
		ts := &sp.Tables[i]
		if ts.FullOnly && cfg.Quick {
			continue
		}
		t, err := ts.build(g, activeGroups)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: table %q: %w", sp.ID, ts.Title, err)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// selectEntries filters the suite to the spec's workloads, keeping suite
// order.
func (sp *Spec) selectEntries(s *Suite) ([]*Entry, error) {
	if len(sp.Workloads) == 0 {
		return s.Entries, nil
	}
	want := make(map[string]bool, len(sp.Workloads))
	for _, n := range sp.Workloads {
		want[n] = true
	}
	var out []*Entry
	for _, e := range s.Entries {
		if want[e.Name] {
			out = append(out, e)
			delete(want, e.Name)
		}
	}
	// Names outside the fixed suite — the synthetic charz family — are
	// materialized on demand, in spec-listed order after suite members.
	for _, n := range sp.Workloads {
		if !want[n] {
			continue
		}
		e, err := s.entry(n)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		delete(want, n)
	}
	return out, nil
}

// build shapes one table from the grid.
func (ts *TableSpec) build(g *grid, activeGroups map[string]bool) (*stats.Table, error) {
	t := stats.NewTable(ts.Title, colNames(ts.Cols)...)

	var rows []Row
	switch ts.Shape {
	case RowsPerEntry:
		for _, e := range g.entries {
			r := Row{Entry: e, grid: g}
			if ts.Skip != nil && ts.Skip(r) {
				continue
			}
			rows = append(rows, r)
		}
	case RowsPerGroup:
		if len(ts.Groups) == 0 {
			return nil, fmt.Errorf("per-group table lists no groups")
		}
		for _, grp := range ts.Groups {
			if !activeGroups[grp] {
				continue // trimmed from this run
			}
			rows = append(rows, Row{Group: grp, grid: g, included: g.entries})
		}
	default:
		return nil, fmt.Errorf("unknown shape %d", ts.Shape)
	}

	for _, r := range rows {
		cells := make([]string, len(ts.Cols))
		for i, c := range ts.Cols {
			cells[i] = c.Value(r)
		}
		t.AddRow(cells...)
	}

	if len(ts.Summary) > 0 {
		included := make([]*Entry, 0, len(rows))
		for _, r := range rows {
			if r.Entry != nil {
				included = append(included, r.Entry)
			}
		}
		sr := Row{grid: g, included: included}
		cells := make([]string, len(ts.Summary))
		for i, c := range ts.Summary {
			cells[i] = c.Value(sr)
		}
		t.AddRow(cells...)
	}

	for _, note := range ts.Notes {
		t.Notes = append(t.Notes, note(rows))
	}
	return t, nil
}

func colNames(cols []Col) []string {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	return names
}

// evalCell evaluates one grid point: a fresh predictor from the
// variant's spec, run over the selected artifact of the workload.
func evalCell(e *Entry, v Variant, cfg Config) (Cell, error) {
	pred := v.Pred
	if pred.Kind == "" {
		pred = defSpec
	}
	p, err := pred.New()
	if err != nil {
		return Cell{}, fmt.Errorf("variant %q: %w", v.Key, err)
	}

	if v.Pipeline {
		prg, err := programFor(e, v.Trace)
		if err != nil {
			return Cell{}, err
		}
		pc := pipeline.DefaultConfig(p)
		pc.UseSFPF = v.UseSFPF
		pc.FilterTrue = v.FilterTrue
		pc.PGU = v.PGU
		pc.IssueWidth = v.IssueWidth
		pc.RASDepth = v.RASDepth
		pc.NoRAS = v.NoRAS
		st, err := pipeline.Run(prg, pc, cfg.Limit)
		if err != nil {
			return Cell{}, fmt.Errorf("variant %q on %s: %w", v.Key, e.Name, err)
		}
		return Cell{Entry: e, Variant: v, P: st}, nil
	}

	tr, err := traceFor(e, v.Trace)
	if err != nil {
		return Cell{}, err
	}
	m := core.Evaluate(tr, core.EvalConfig{
		Predictor:    p,
		UseSFPF:      v.UseSFPF,
		FilterTrue:   v.FilterTrue,
		ResolveDelay: v.ResolveDelay,
		PGU:          v.PGU,
		PGUDelay:     v.PGUDelay,
	})
	return Cell{Entry: e, Variant: v, M: m}, nil
}

// traceFor resolves a TraceKind to the entry's trace, materializing the
// memoized derived artifacts on first use.
func traceFor(e *Entry, k TraceKind) (*trace.Trace, error) {
	switch k {
	case TraceConv:
		return e.ConvTrace, nil
	case TraceOrig:
		return e.OrigTrace, nil
	case TraceProfiled:
		_, _, tr, err := e.Profiled()
		return tr, err
	case TraceUnscheduled:
		return e.Unscheduled()
	}
	return nil, fmt.Errorf("unknown trace kind %d", int(k))
}

// programFor resolves a TraceKind to the program a pipeline variant
// runs. Profiled() traces the program before returning it, so by the
// time a program is shared across concurrent pipeline cells it is
// already label-resolved (see prog.Resolve).
func programFor(e *Entry, k TraceKind) (*prog.Program, error) {
	switch k {
	case TraceConv:
		return e.Conv, nil
	case TraceOrig:
		return e.Orig, nil
	case TraceProfiled:
		p, _, _, err := e.Profiled()
		return p, err
	}
	return nil, fmt.Errorf("no program for trace kind %s", k)
}
