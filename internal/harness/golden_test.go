package harness

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenCSVs regenerates every experiment's CSV output in memory and
// diffs it byte-for-byte against the checked-in results/*.csv files.
// This is the repository's regression gate: any change to the emulator,
// the if-converter, a predictor, the evaluation loop or the stats
// formatting that moves a published number shows up here as a diff, not
// as a silently drifting results directory. When a change is intentional,
// regenerate with `go run ./cmd/experiments -outdir results` and commit
// the new files alongside the code.
func TestGoldenCSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	resultsDir := filepath.Join("..", "..", "results")
	if _, err := os.Stat(resultsDir); err != nil {
		t.Skipf("no results directory: %v", err)
	}

	s := testSuite(t)
	cfg := Config{}.withDefaults()
	generated := make(map[string]string) // file base name -> CSV content
	for _, e := range All() {
		tables, err := e.Run(context.Background(), s, cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		for i, tb := range tables {
			// Mirror cmd/experiments' file naming exactly: the experiment
			// ID, with a letter suffix when it emits several tables.
			name := e.ID
			if len(tables) > 1 {
				name += string(rune('a' + i))
			}
			generated[name+".csv"] = tb.CSV()
		}
	}

	entries, err := os.ReadDir(resultsDir)
	if err != nil {
		t.Fatal(err)
	}
	checkedIn := make(map[string]bool)
	for _, ent := range entries {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".csv" {
			continue
		}
		checkedIn[ent.Name()] = true
		want, ok := generated[ent.Name()]
		if !ok {
			t.Errorf("stale file results/%s: no experiment generates it", ent.Name())
			continue
		}
		got, err := os.ReadFile(filepath.Join(resultsDir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Errorf("results/%s differs from regenerated output (intentional? regenerate with `go run ./cmd/experiments -outdir results`)", ent.Name())
		}
	}
	for name := range generated {
		if !checkedIn[name] {
			t.Errorf("missing file results/%s: experiment output not checked in", name)
		}
	}
}
