package harness

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenCSVs regenerates every experiment's CSV output in memory and
// diffs it byte-for-byte against the checked-in results/*.csv files.
// This is the repository's regression gate: any change to the emulator,
// the if-converter, a predictor, the evaluation loop or the stats
// formatting that moves a published number shows up here as a diff, not
// as a silently drifting results directory. When a change is intentional,
// regenerate with `go run ./cmd/experiments -outdir results` and commit
// the new files alongside the code.
//
// Each experiment is its own subtest, so `-run 'TestGoldenCSVs/E2$'`
// re-checks one experiment and a failure names the experiment, not just
// the file.
func TestGoldenCSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	resultsDir := filepath.Join("..", "..", "results")
	if _, err := os.Stat(resultsDir); err != nil {
		t.Skipf("no results directory: %v", err)
	}

	s := testSuite(t)
	cfg := Config{}.withDefaults()
	claimed := make(map[string]bool) // file base names experiments generate
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(context.Background(), s, cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			r := Result{Experiment: e, Tables: tables}
			for i, tb := range tables {
				name := r.TableName(i) + ".csv"
				claimed[name] = true
				got, err := os.ReadFile(filepath.Join(resultsDir, name))
				if err != nil {
					t.Errorf("missing file results/%s: experiment output not checked in (%v)", name, err)
					continue
				}
				if string(got) != tb.CSV() {
					t.Errorf("results/%s differs from regenerated output (intentional? regenerate with `go run ./cmd/experiments -outdir results`)", name)
				}
			}
		})
	}

	t.Run("no-stale-files", func(t *testing.T) {
		entries, err := os.ReadDir(resultsDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range entries {
			if ent.IsDir() || filepath.Ext(ent.Name()) != ".csv" {
				continue
			}
			if !claimed[ent.Name()] {
				t.Errorf("stale file results/%s: no experiment generates it", ent.Name())
			}
		}
	})
}
