package harness

import (
	"context"
	"strings"
	"testing"
)

func ids(exps []Experiment) string {
	parts := make([]string, len(exps))
	for i, e := range exps {
		parts[i] = e.ID
	}
	return strings.Join(parts, ",")
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(All()) {
		t.Fatalf("Select(\"\") returned %d experiments, want %d", len(all), len(All()))
	}

	cases := []struct {
		expr string
		want string
	}{
		{"E3", "E3"},
		{"E2a", "E2"}, // table name resolves to its experiment
		{"E3b", "E3"}, //
		{"E2a,E5", "E2,E5"},
		{"E5, E2", "E5,E2"}, // order preserved, spaces tolerated
		{"E3-E7", "E3,E4,E5,E6,E7"},
		{"E5,E3-E4,E5", "E5,E3,E4"}, // duplicates collapse, first position wins
		{"E13-E14", "E13,E14"},
		{"E8-E10", "E8,E9,E10"}, // natural order, not lexical
		{"E1,,E2", "E1,E2"},     // empty tokens are tolerated
	}
	for _, c := range cases {
		got, err := Select(c.expr)
		if err != nil {
			t.Errorf("Select(%q): %v", c.expr, err)
			continue
		}
		if ids(got) != c.want {
			t.Errorf("Select(%q) = %s, want %s", c.expr, ids(got), c.want)
		}
	}

	for _, expr := range []string{"E99", "nope", "E7-E3", "E1-", "-E3", "E1-E2-E3", ","} {
		if got, err := Select(expr); err == nil {
			t.Errorf("Select(%q) accepted: %s", expr, ids(got))
		}
	}
}

// TestSpecDeterministicOutput runs one spec-driven experiment twice and
// requires byte-identical rendering: the engine's fan-out over the
// worker pool must not leak scheduling order into row order.
func TestSpecDeterministicOutput(t *testing.T) {
	s := testSuite(t)
	cfg := Config{Quick: true}
	e, err := ByID("E5")
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		tables, err := e.Run(context.Background(), s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, tb := range tables {
			sb.WriteString(tb.CSV())
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("two runs of E5 rendered differently:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestSpecQuickTrimming checks both trimming axes: FullOnly variants
// drop out of sweeps, and FullOnly tables disappear entirely.
func TestSpecQuickTrimming(t *testing.T) {
	s := testSuite(t)

	e3, _ := ByID("E3")
	full := e3.Spec.ActiveVariants(Config{})
	quick := e3.Spec.ActiveVariants(Config{Quick: true})
	if len(quick) >= len(full) {
		t.Fatalf("quick kept %d of %d variants", len(quick), len(full))
	}
	tables, err := e3.Run(context.Background(), s, Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("E3 quick produced %d tables, want 2", len(tables))
	}
	if got := len(tables[1].Rows); got != 2 {
		t.Fatalf("E3b quick has %d sweep rows, want 2 (table bits 6 and 12)", got)
	}

	e2, _ := ByID("E2")
	tables, err = e2.Run(context.Background(), s, Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("E2 quick produced %d tables, want 2 (E2c is full-only)", len(tables))
	}
	for _, tb := range tables {
		if strings.Contains(tb.Title, "E2c") {
			t.Fatalf("full-only table rendered in quick mode: %s", tb.Title)
		}
	}
}

func TestSpecContextCancellation(t *testing.T) {
	s := testSuite(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, _ := ByID("E5")
	if _, err := e.Run(ctx, s, Config{Quick: true}); err == nil {
		t.Fatal("cancelled context did not abort the spec run")
	}
}

func TestSpecMissingWorkloadErrors(t *testing.T) {
	s := testSuite(t)
	spec := Spec{
		ID: "EX", Title: "x", Workloads: []string{"no-such-workload"},
		Variants: []Variant{{Key: "a"}},
		Tables:   []TableSpec{{Title: "x", Shape: RowsPerEntry, Cols: []Col{workloadCol()}}},
	}
	if _, err := spec.Experiment().Run(context.Background(), s, Config{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestConfigHash(t *testing.T) {
	e, _ := ByID("E3")
	full := e.ConfigHash(Config{})
	again := e.ConfigHash(Config{})
	quick := e.ConfigHash(Config{Quick: true})
	limited := e.ConfigHash(Config{Limit: 1000})
	if full != again {
		t.Fatal("hash not stable across calls")
	}
	if full == quick {
		t.Fatal("quick trimming must change the hash (different grid)")
	}
	if full == limited {
		t.Fatal("a different step limit must change the hash")
	}
	other, _ := ByID("E4")
	if e.ConfigHash(Config{}) == other.ConfigHash(Config{}) {
		t.Fatal("different experiments share a hash")
	}
}
