// e15.go — E15: predictor accuracy across the synthetic
// characterization grid. The charz generator (internal/charz) dials
// per-branch predictability metrics — bias, periodicity, history
// correlation depth, cross-branch correlation, noise — and this
// experiment sweeps every registry predictor kind at its default size
// over that grid, putting the measured characterization (taken rate,
// entropy, conditioned entropies, separability) side by side with each
// predictor's misprediction rate. The grid workloads live outside the
// fixed suite (the golden CSVs of E1–E14 pin its membership); the
// harness materializes them by name on demand.
package harness

import (
	"fmt"

	"repro/internal/charz"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	registerExperiment(e15())
}

// e15 sweeps kind × synthetic-point with every kind at registry
// defaults, on the original (branching) programs.
func e15() Experiment {
	kinds := sim.Kinds()
	variants := make([]Variant, len(kinds))
	for i, k := range kinds {
		variants[i] = Variant{Key: k, Trace: TraceOrig, Pred: sim.Spec{Kind: k}}
	}

	// One characterization pass per grid point, shared by the metric
	// columns. Table shaping is sequential, so a plain map suffices.
	reports := make(map[string]*charz.Report)
	rep := func(r Row) *charz.Report {
		if rp, ok := reports[r.Entry.Name]; ok {
			return rp
		}
		rp, err := charz.Characterize(r.Entry.OrigTrace, charz.Options{})
		if err != nil {
			// The trace is in memory and the default depths are valid;
			// failure here is a programming error, like a missing cell.
			panic(fmt.Sprintf("harness: E15: characterizing %s: %v", r.Entry.Name, err))
		}
		reports[r.Entry.Name] = rp
		return rp
	}

	cols := []Col{
		workloadCol(),
		{"taken", func(r Row) string { return stats.Pct(rep(r).TakenRate) }},
		{"H(Y)", func(r Row) string { return stats.F3(rep(r).Entropy) }},
		{"H(Y|h8)", func(r Row) string { return stats.F3(rep(r).CondAt(8)) }},
		{"H(Y|g8)", func(r Row) string { return stats.F3(rep(r).GlobalCondEntropy) }},
		{"sep", func(r Row) string { return stats.F3(rep(r).Separability) }},
	}
	summary := []Col{lit("geomean"), lit(""), lit(""), lit(""), lit(""), lit("")}
	for _, k := range kinds {
		k := k
		cols = append(cols, Col{k, func(r Row) string { return stats.Pct(rate(r.Cell(k))) }})
		summary = append(summary, geoRateCol("", k))
	}

	return Spec{
		ID:    "E15",
		Title: "Predictor accuracy across the synthetic characterization grid",
		Paper: "extension: the workload-characterization literature (PAPERS.md) parameterizes branch predictability; " +
			"this sweeps every predictor kind over a generated grid of characterization-space points",
		Expect: "each family is won by the structure that matches it: bias needs only counters, periodic and " +
			"lag-k need history depth covering the period or lag, xcorr needs global history; rates track " +
			"the conditioned-entropy columns",
		Workloads: charz.CatalogNames(),
		Variants:  variants,
		Tables: []TableSpec{{
			Title:   "E15: misprediction rate by predictor kind (registry defaults) across synthetic points",
			Shape:   RowsPerEntry,
			Cols:    cols,
			Summary: summary,
			Notes: []func([]Row) string{
				staticNote("characterization metrics are measured on the original trace; H(Y|h8)/H(Y|g8) are outcome entropy conditioned on 8 bits of local/global history"),
			},
		}},
	}.Experiment()
}
