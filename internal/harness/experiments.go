package harness

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/ifconv"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
)

func init() {
	registerExperiment(e1())
	registerExperiment(e2())
	registerExperiment(e3())
	registerExperiment(e4())
	registerExperiment(e5())
	registerExperiment(e6())
	registerExperiment(e7())
	registerExperiment(e8())
	registerExperiment(e9())
	registerExperiment(e10())
	registerExperiment(e11())
	registerExperiment(e12())
	registerExperiment(e13())
	registerExperiment(e14())
}

// E1 — benchmark characterisation (paper Table 1 analogue).
func e1() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Benchmark characterisation under if-conversion",
		Paper: "Table 1: benchmark suite, dynamic branches, branches removed by predication, region-based branches",
		Expect: "if-conversion removes a large fraction of dynamic conditional branches; " +
			"a visible fraction of the remaining branches are region-based; " +
			"nullified instructions appear as the predication cost",
		Run: func(s *Suite, cfg Config) ([]*stats.Table, error) {
			t := stats.NewTable("E1: workload characterisation (orig -> if-converted)",
				"workload", "static insts", "dyn insts", "dyn cond branches",
				"branches removed", "region br (dyn)", "nullified")
			var remTotal, brTotal float64
			for _, e := range s.Entries {
				ot, ct := e.OrigTrace, e.ConvTrace
				removed := 1 - float64(ct.Branches)/float64(ot.Branches)
				remTotal += float64(ot.Branches) - float64(ct.Branches)
				brTotal += float64(ot.Branches)
				regionPct := 0.0
				if ct.Branches > 0 {
					regionPct = float64(ct.RegionBranches) / float64(ct.Branches)
				}
				t.AddRow(e.Name,
					fmt.Sprintf("%d -> %d", len(e.Orig.Insts), len(e.Conv.Insts)),
					fmt.Sprintf("%d -> %d", ot.Insts, ct.Insts),
					fmt.Sprintf("%d -> %d", ot.Branches, ct.Branches),
					stats.Pct(removed),
					stats.Pct(regionPct),
					stats.Pct(float64(ct.Nullified)/float64(ct.Insts)))
			}
			t.AddNote("suite-wide, %s of dynamic conditional branches are removed by if-conversion",
				stats.Pct(remTotal/brTotal))
			return []*stats.Table{t}, nil
		},
	}
}

// E2 — the effect of predication on the remaining branches.
func e2() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Misprediction rate of remaining branches: original vs if-converted code",
		Paper: "figure: predication's effect on the predictability of remaining branches, across predictor types",
		Expect: "the misprediction *rate* of the remaining branches rises after if-conversion " +
			"(easy branches were removed and correlation bits vanished from the history), " +
			"even though the total misprediction count drops",
		Run: func(s *Suite, cfg Config) ([]*stats.Table, error) {
			preds := []func() bpred.Predictor{
				func() bpred.Predictor { return bpred.NewBimodal(defTableBits) },
				func() bpred.Predictor { return newGshare() },
				func() bpred.Predictor { return bpred.NewLocal(8, 10, defTableBits) },
				func() bpred.Predictor { return bpred.NewTournament(defTableBits, defHistBits) },
				func() bpred.Predictor { return bpred.NewAgree(defTableBits, defHistBits) },
			}
			if cfg.Quick {
				preds = preds[1:2]
			}
			var tables []*stats.Table
			per := stats.NewTable("E2a: per-workload misprediction rate with gshare (orig -> converted)",
				"workload", "rate orig", "rate conv", "misses orig", "misses conv")
			for _, e := range s.Entries {
				mo := core.Evaluate(e.OrigTrace, core.EvalConfig{Predictor: newGshare()})
				mc := core.Evaluate(e.ConvTrace, core.EvalConfig{Predictor: newGshare()})
				per.AddRow(e.Name, stats.Pct(mo.MispredictRate()), stats.Pct(mc.MispredictRate()),
					stats.N(mo.Mispredicts), stats.N(mc.Mispredicts))
			}
			tables = append(tables, per)

			geo := stats.NewTable("E2b: geomean misprediction rate across the suite, per predictor",
				"predictor", "rate orig", "rate conv", "delta")
			for _, nf := range preds {
				var ro, rc []float64
				name := nf().Name()
				for _, e := range s.Entries {
					mo := core.Evaluate(e.OrigTrace, core.EvalConfig{Predictor: nf()})
					mc := core.Evaluate(e.ConvTrace, core.EvalConfig{Predictor: nf()})
					ro = append(ro, mo.MispredictRate())
					rc = append(rc, mc.MispredictRate())
				}
				go_, gc := stats.Geomean(ro), stats.Geomean(rc)
				geo.AddRow(name, stats.Pct(go_), stats.Pct(gc), stats.Ratio(gc, go_))
			}
			tables = append(tables, geo)

			// E2c: under profile-guided conversion — the paper's compiler —
			// hard branches survive alongside converted neighbours, which is
			// where the remaining-branch degradation shows.
			if !cfg.Quick {
				pg := stats.NewTable("E2c: remaining-branch rate under profile-guided conversion (gshare 12/8)",
					"workload", "rate orig", "rate conv", "delta")
				var ro, rc []float64
				for _, e := range s.Entries {
					prof, err := profile.Collect(e.Orig, bpred.NewGShare(defTableBits, defHistBits), cfg.Limit)
					if err != nil {
						return nil, err
					}
					pc, rep, err := ifconv.Convert(e.Orig, ifconv.Config{Profile: prof})
					if err != nil {
						return nil, err
					}
					if len(rep.Regions) == 0 {
						continue // nothing converted: no remaining-branch story
					}
					tr, err := trace.Collect(pc, cfg.Limit)
					if err != nil {
						return nil, err
					}
					mo := core.Evaluate(e.OrigTrace, core.EvalConfig{Predictor: newGshare()})
					mc := core.Evaluate(tr, core.EvalConfig{Predictor: newGshare()})
					pg.AddRow(e.Name, stats.Pct(mo.MispredictRate()), stats.Pct(mc.MispredictRate()),
						stats.Ratio(mc.MispredictRate(), mo.MispredictRate()))
					ro = append(ro, mo.MispredictRate())
					rc = append(rc, mc.MispredictRate())
				}
				pg.AddRow("geomean", stats.Pct(stats.Geomean(ro)), stats.Pct(stats.Geomean(rc)),
					stats.Ratio(stats.Geomean(rc), stats.Geomean(ro)))
				tables = append(tables, pg)
			}
			return tables, nil
		},
	}
}

// E3 — the squash false path filter.
func e3() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Squash false path filter on predicated code",
		Paper: "figure: fraction of branches filtered and misprediction rate with/without the SFPF, across predictor sizes",
		Expect: "the filter covers a visible fraction of region-based branches with zero errors; " +
			"misprediction rate drops, more at small table sizes where pollution hurts most",
		Run: func(s *Suite, cfg Config) ([]*stats.Table, error) {
			per := stats.NewTable("E3a: per-workload SFPF effect (gshare 12-bit, resolve delay 6)",
				"workload", "cond branches", "region br", "filtered", "coverage",
				"rate base", "rate sfpf", "filter errors")
			var errs uint64
			for _, e := range s.Entries {
				base := core.Evaluate(e.ConvTrace, core.EvalConfig{Predictor: newGshare()})
				f := core.Evaluate(e.ConvTrace, core.EvalConfig{
					Predictor: newGshare(), UseSFPF: true, ResolveDelay: defResolve,
				})
				errs += f.FilterErrors
				per.AddRow(e.Name, stats.N(f.Branches), stats.N(f.RegionBranches),
					stats.N(f.Filtered), stats.Pct(f.FilterCoverage()),
					stats.Pct(base.MispredictRate()), stats.Pct(f.MispredictRate()),
					stats.N(f.FilterErrors))
			}
			per.AddNote("total filter errors across the suite: %d (must be 0 — the 100%% accuracy claim)", errs)

			sizes := []int{4, 6, 8, 10, 12, 14}
			if cfg.Quick {
				sizes = []int{6, 12}
			}
			sweep := stats.NewTable("E3b: geomean misprediction rate vs gshare size, with and without SFPF",
				"table bits", "rate base", "rate sfpf", "improvement")
			for _, bits := range sizes {
				b := bits
				rb := geoRates(s, func(*Entry) core.EvalConfig {
					return core.EvalConfig{Predictor: bpred.NewGShare(b, defHistBits)}
				})
				rf := geoRates(s, func(*Entry) core.EvalConfig {
					return core.EvalConfig{
						Predictor: bpred.NewGShare(b, defHistBits),
						UseSFPF:   true, ResolveDelay: defResolve,
					}
				})
				sweep.AddRow(stats.N(bits), stats.Pct(rb), stats.Pct(rf), stats.Ratio(rb, rf))
			}
			return []*stats.Table{per, sweep}, nil
		},
	}
}

// E4 — the predicate global update predictor.
func e4() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "Predicate global update (PGU) vs plain global history",
		Paper: "figure: misprediction rate of gshare vs PGU-gshare across history lengths",
		Expect: "inserting predicate-define outcomes into the history recovers the correlation " +
			"if-conversion removed; the gap is largest on correlation-heavy workloads (corr, fsm) " +
			"and neutral on uncorrelated ones",
		Run: func(s *Suite, cfg Config) ([]*stats.Table, error) {
			per := stats.NewTable("E4a: per-workload misprediction rate (gshare 12/8)",
				"workload", "rate base", "rate pgu-all", "inserted bits", "improvement")
			for _, e := range s.Entries {
				base := core.Evaluate(e.ConvTrace, core.EvalConfig{Predictor: newGshare()})
				pgu := core.Evaluate(e.ConvTrace, core.EvalConfig{
					Predictor: newGshare(), PGU: core.PGUAll, PGUDelay: defPGUDelay,
				})
				per.AddRow(e.Name, stats.Pct(base.MispredictRate()), stats.Pct(pgu.MispredictRate()),
					stats.N(pgu.InsertedBits), stats.Ratio(base.MispredictRate(), pgu.MispredictRate()))
			}

			hists := []int{2, 4, 6, 8, 10, 12}
			if cfg.Quick {
				hists = []int{4, 8}
			}
			sweep := stats.NewTable("E4b: geomean misprediction rate vs history length (12-bit table)",
				"history bits", "rate base", "rate pgu-all", "improvement")
			for _, h := range hists {
				hb := h
				rb := geoRates(s, func(*Entry) core.EvalConfig {
					return core.EvalConfig{Predictor: bpred.NewGShare(defTableBits, hb)}
				})
				rp := geoRates(s, func(*Entry) core.EvalConfig {
					return core.EvalConfig{
						Predictor: bpred.NewGShare(defTableBits, hb),
						PGU:       core.PGUAll, PGUDelay: defPGUDelay,
					}
				})
				sweep.AddRow(stats.N(h), stats.Pct(rb), stats.Pct(rp), stats.Ratio(rb, rp))
			}
			return []*stats.Table{per, sweep}, nil
		},
	}
}

// E5 — both mechanisms combined.
func e5() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "SFPF and PGU combined",
		Paper: "figure: misprediction rate for baseline, +SFPF, +PGU, +both",
		Expect: "the mechanisms are complementary (one removes false-path branches, the other " +
			"restores correlation); combined is at least as good as the better individual one on most workloads",
		Run: func(s *Suite, cfg Config) ([]*stats.Table, error) {
			t := stats.NewTable("E5: misprediction rate on predicated code (gshare 12/8)",
				"workload", "base", "+sfpf", "+pgu", "+both", "MPKI base", "MPKI both")
			var rb, rs, rp, rc []float64
			for _, e := range s.Entries {
				base := core.Evaluate(e.ConvTrace, core.EvalConfig{Predictor: newGshare()})
				sf := core.Evaluate(e.ConvTrace, core.EvalConfig{
					Predictor: newGshare(), UseSFPF: true, ResolveDelay: defResolve,
				})
				pg := core.Evaluate(e.ConvTrace, core.EvalConfig{
					Predictor: newGshare(), PGU: core.PGUAll, PGUDelay: defPGUDelay,
				})
				both := core.Evaluate(e.ConvTrace, core.EvalConfig{
					Predictor: newGshare(), UseSFPF: true, ResolveDelay: defResolve,
					PGU: core.PGUAll, PGUDelay: defPGUDelay,
				})
				t.AddRow(e.Name, stats.Pct(base.MispredictRate()), stats.Pct(sf.MispredictRate()),
					stats.Pct(pg.MispredictRate()), stats.Pct(both.MispredictRate()),
					stats.F2(base.MPKI()), stats.F2(both.MPKI()))
				rb = append(rb, base.MispredictRate())
				rs = append(rs, sf.MispredictRate())
				rp = append(rp, pg.MispredictRate())
				rc = append(rc, both.MispredictRate())
			}
			t.AddRow("geomean", stats.Pct(stats.Geomean(rb)), stats.Pct(stats.Geomean(rs)),
				stats.Pct(stats.Geomean(rp)), stats.Pct(stats.Geomean(rc)), "", "")
			return []*stats.Table{t}, nil
		},
	}
}

// E6 — end-to-end performance on the timing model.
func e6() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Pipeline performance: branching vs predicated vs predicated+mechanisms",
		Paper: "figure: speedup of predicated code with the proposed predictors over branching code",
		Expect: "predication wins on hard-to-predict workloads and costs a little on predictable ones; " +
			"SFPF and PGU recover most of the predictor-induced losses and extend the wins",
		Run: func(s *Suite, cfg Config) ([]*stats.Table, error) {
			t := stats.NewTable("E6: cycles and speedup over branching code (gshare 12/8, 10-cycle penalty)",
				"workload", "cycles orig", "IPC orig", "speedup conv", "conv+sfpf", "conv+pgu", "conv+both")
			var sp1, sp2, sp3, sp4 []float64
			for _, e := range s.Entries {
				orig, err := pipeline.Run(e.Orig, pipeline.DefaultConfig(newGshare()), cfg.Limit)
				if err != nil {
					return nil, err
				}
				conv, err := pipeline.Run(e.Conv, pipeline.DefaultConfig(newGshare()), cfg.Limit)
				if err != nil {
					return nil, err
				}
				cs := pipeline.DefaultConfig(newGshare())
				cs.UseSFPF = true
				sfpf, err := pipeline.Run(e.Conv, cs, cfg.Limit)
				if err != nil {
					return nil, err
				}
				cp := pipeline.DefaultConfig(newGshare())
				cp.PGU = core.PGUAll
				pgu, err := pipeline.Run(e.Conv, cp, cfg.Limit)
				if err != nil {
					return nil, err
				}
				cb := pipeline.DefaultConfig(newGshare())
				cb.UseSFPF = true
				cb.PGU = core.PGUAll
				both, err := pipeline.Run(e.Conv, cb, cfg.Limit)
				if err != nil {
					return nil, err
				}
				o := float64(orig.Cycles)
				t.AddRow(e.Name, stats.N(orig.Cycles), stats.F2(orig.IPC()),
					stats.Ratio(o, float64(conv.Cycles)),
					stats.Ratio(o, float64(sfpf.Cycles)),
					stats.Ratio(o, float64(pgu.Cycles)),
					stats.Ratio(o, float64(both.Cycles)))
				sp1 = append(sp1, o/float64(conv.Cycles))
				sp2 = append(sp2, o/float64(sfpf.Cycles))
				sp3 = append(sp3, o/float64(pgu.Cycles))
				sp4 = append(sp4, o/float64(both.Cycles))
			}
			t.AddRow("geomean", "", "",
				fmt.Sprintf("%.2fx", stats.Geomean(sp1)),
				fmt.Sprintf("%.2fx", stats.Geomean(sp2)),
				fmt.Sprintf("%.2fx", stats.Geomean(sp3)),
				fmt.Sprintf("%.2fx", stats.Geomean(sp4)))
			return []*stats.Table{t}, nil
		},
	}
}

// E7 — sensitivity to the predicate resolve delay.
func e7() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "SFPF coverage vs predicate resolve delay",
		Paper: "sensitivity analysis: how deep pipelines (late predicate resolution) erode the filter",
		Expect: "filter coverage falls monotonically as the resolve delay grows; misprediction rate " +
			"degrades back toward the unfiltered baseline",
		Run: func(s *Suite, cfg Config) ([]*stats.Table, error) {
			delays := []uint64{0, 2, 4, 6, 8, 12, 16, 24}
			if cfg.Quick {
				delays = []uint64{0, 6, 16}
			}
			t := stats.NewTable("E7: geomean SFPF coverage and misprediction rate vs resolve delay (gshare 12/8)",
				"resolve delay", "coverage", "rate")
			for _, d := range delays {
				var cov, rate []float64
				for _, e := range s.Entries {
					m := core.Evaluate(e.ConvTrace, core.EvalConfig{
						Predictor: newGshare(), UseSFPF: true, ResolveDelay: d,
					})
					cov = append(cov, m.FilterCoverage())
					rate = append(rate, m.MispredictRate())
				}
				t.AddRow(stats.N(d), stats.Pct(stats.Mean(cov)), stats.Pct(stats.Geomean(rate)))
			}
			return []*stats.Table{t}, nil
		},
	}
}

// E8 — PGU insertion-policy ablation.
func e8() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "PGU insertion policy ablation",
		Paper: "design-space discussion: which predicate defines should update the history",
		Expect: "more insertion gives more correlation but consumes history capacity; " +
			"region/branch-guard policies spend fewer bits for most of the benefit",
		Run: func(s *Suite, cfg Config) ([]*stats.Table, error) {
			policies := []core.PGUPolicy{core.PGUOff, core.PGURegionGuards, core.PGUBranchGuards, core.PGUAll}
			t := stats.NewTable("E8: geomean misprediction rate per insertion policy (gshare 12/8)",
				"policy", "rate", "inserted bits (suite)")
			for _, pol := range policies {
				p := pol
				var rates []float64
				var bits uint64
				for _, e := range s.Entries {
					m := core.Evaluate(e.ConvTrace, core.EvalConfig{
						Predictor: newGshare(), PGU: p, PGUDelay: defPGUDelay,
					})
					rates = append(rates, m.MispredictRate())
					bits += m.InsertedBits
				}
				t.AddRow(p.String(), stats.Pct(stats.Geomean(rates)), stats.N(bits))
			}
			return []*stats.Table{t}, nil
		},
	}
}

// E10 — compare scheduling ablation.
func e10() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Compare scheduling ablation (what feeds the filter)",
		Paper: "methodology dependency: the paper's compiler schedules compares early; this quantifies how much the SFPF relies on that",
		Expect: "without compare scheduling, guard defines sit next to their branches, guards rarely " +
			"resolve before fetch, and filter coverage collapses",
		Run: func(s *Suite, cfg Config) ([]*stats.Table, error) {
			t := stats.NewTable("E10: SFPF coverage with and without compare scheduling (gshare 12/8, resolve delay 6)",
				"workload", "coverage scheduled", "coverage unscheduled")
			for _, e := range s.Entries {
				sched := core.Evaluate(e.ConvTrace, core.EvalConfig{
					Predictor: newGshare(), UseSFPF: true, ResolveDelay: defResolve,
				})
				raw, _, err := ifconv.Convert(e.Orig, ifconv.Config{NoCompareScheduling: true})
				if err != nil {
					return nil, err
				}
				rawTr, err := trace.Collect(raw, cfg.Limit)
				if err != nil {
					return nil, err
				}
				unsched := core.Evaluate(rawTr, core.EvalConfig{
					Predictor: newGshare(), UseSFPF: true, ResolveDelay: defResolve,
				})
				t.AddRow(e.Name, stats.Pct(sched.FilterCoverage()), stats.Pct(unsched.FilterCoverage()))
			}
			return []*stats.Table{t}, nil
		},
	}
}

// E11 — profile-guided hyperblock selection.
func e11() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Profile-guided vs greedy if-conversion",
		Paper: "methodology: the paper's IMPACT binaries used profile-driven hyperblock selection; this reproduces that selection and its effect",
		Expect: "profile-guided selection skips regions whose nullification cost exceeds their " +
			"misprediction savings, eliminating the pathological predication losses greedy " +
			"conversion shows, at the price of converting less",
		Run: func(s *Suite, cfg Config) ([]*stats.Table, error) {
			t := stats.NewTable("E11: speedup over branching code, greedy vs profile-guided conversion (gshare 12/8)",
				"workload", "greedy regions", "profiled regions", "speedup greedy", "speedup profiled")
			var sg, sp []float64
			for _, e := range s.Entries {
				prof, err := profile.Collect(e.Orig, bpred.NewGShare(defTableBits, defHistBits), cfg.Limit)
				if err != nil {
					return nil, err
				}
				pc, prep, err := ifconv.Convert(e.Orig, ifconv.Config{Profile: prof})
				if err != nil {
					return nil, err
				}
				orig, err := pipeline.Run(e.Orig, pipeline.DefaultConfig(newGshare()), cfg.Limit)
				if err != nil {
					return nil, err
				}
				greedy, err := pipeline.Run(e.Conv, pipeline.DefaultConfig(newGshare()), cfg.Limit)
				if err != nil {
					return nil, err
				}
				profiled, err := pipeline.Run(pc, pipeline.DefaultConfig(newGshare()), cfg.Limit)
				if err != nil {
					return nil, err
				}
				o := float64(orig.Cycles)
				t.AddRow(e.Name, stats.N(len(e.Report.Regions)), stats.N(len(prep.Regions)),
					stats.Ratio(o, float64(greedy.Cycles)), stats.Ratio(o, float64(profiled.Cycles)))
				sg = append(sg, o/float64(greedy.Cycles))
				sp = append(sp, o/float64(profiled.Cycles))
			}
			t.AddRow("geomean", "", "",
				fmt.Sprintf("%.2fx", stats.Geomean(sg)), fmt.Sprintf("%.2fx", stats.Geomean(sp)))
			return []*stats.Table{t}, nil
		},
	}
}

// E12 — issue-width sensitivity.
func e12() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "Predication trade-off vs issue width",
		Paper: "context: the paper targets wide EPIC machines; width amortises nullified slots while misprediction penalties stay flat",
		Expect: "the geomean speedup of predicated code (and of predicated+mechanisms) over branching " +
			"code grows with issue width",
		Run: func(s *Suite, cfg Config) ([]*stats.Table, error) {
			widths := []int{1, 2, 4, 8}
			if cfg.Quick {
				widths = []int{1, 4}
			}
			t := stats.NewTable("E12: geomean speedup over branching code vs issue width (gshare 12/8)",
				"issue width", "IPC orig (geomean)", "speedup conv", "speedup conv+both")
			for _, w := range widths {
				var ipcs, sc, sb []float64
				for _, e := range s.Entries {
					mk := func() pipeline.Config {
						c := pipeline.DefaultConfig(newGshare())
						c.IssueWidth = w
						return c
					}
					orig, err := pipeline.Run(e.Orig, mk(), cfg.Limit)
					if err != nil {
						return nil, err
					}
					conv, err := pipeline.Run(e.Conv, mk(), cfg.Limit)
					if err != nil {
						return nil, err
					}
					cb := mk()
					cb.UseSFPF = true
					cb.PGU = core.PGUAll
					both, err := pipeline.Run(e.Conv, cb, cfg.Limit)
					if err != nil {
						return nil, err
					}
					ipcs = append(ipcs, orig.IPC())
					sc = append(sc, float64(orig.Cycles)/float64(conv.Cycles))
					sb = append(sb, float64(orig.Cycles)/float64(both.Cycles))
				}
				t.AddRow(stats.N(w), stats.F2(stats.Geomean(ipcs)),
					fmt.Sprintf("%.3fx", stats.Geomean(sc)),
					fmt.Sprintf("%.3fx", stats.Geomean(sb)))
			}
			return []*stats.Table{t}, nil
		},
	}
}

// E13 — PGU across predictor architectures.
func e13() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "PGU across predictor architectures (counters vs agree vs perceptron)",
		Paper: "extension: the paper used counter-based global predictors; this asks whether the mechanism generalises",
		Expect: "every global-history architecture benefits on correlated workloads, and none regresses " +
			"materially on the rest: the mechanism is predictor-agnostic, needing only an open history",
		Run: func(s *Suite, cfg Config) ([]*stats.Table, error) {
			kinds := []struct {
				name string
				mk   func() bpred.Predictor
			}{
				{"gshare-12.8", func() bpred.Predictor { return bpred.NewGShare(12, 8) }},
				{"agree-12.8", func() bpred.Predictor { return bpred.NewAgree(12, 8) }},
				{"perceptron-8.24", func() bpred.Predictor { return bpred.NewPerceptron(8, 24) }},
			}
			t := stats.NewTable("E13: geomean misprediction rate on predicated code, base vs PGU-all",
				"predictor", "rate base", "rate pgu-all", "improvement", "worst per-workload ratio")
			for _, k := range kinds {
				var rb, rp []float64
				worst := 0.0
				for _, e := range s.Entries {
					base := core.Evaluate(e.ConvTrace, core.EvalConfig{Predictor: k.mk()})
					pgu := core.Evaluate(e.ConvTrace, core.EvalConfig{
						Predictor: k.mk(), PGU: core.PGUAll, PGUDelay: defPGUDelay,
					})
					rb = append(rb, base.MispredictRate())
					rp = append(rp, pgu.MispredictRate())
					// ratio > 1 means PGU hurt this workload; tiny baselines
					// are excluded as noise.
					if base.Mispredicts >= 50 {
						if r := float64(pgu.Mispredicts) / float64(base.Mispredicts); r > worst {
							worst = r
						}
					}
				}
				gb, gp := stats.Geomean(rb), stats.Geomean(rp)
				t.AddRow(k.name, stats.Pct(gb), stats.Pct(gp), stats.Ratio(gb, gp),
					stats.F2(worst))
			}
			t.AddNote("worst per-workload ratio: pgu/base misprediction counts; > 1 means insertion hurt that workload")
			return []*stats.Table{t}, nil
		},
	}
}

// E14 — return-address stack depth on the recursive workload.
func e14() Experiment {
	return Experiment{
		ID:    "E14",
		Title: "Return-address stack depth on recursive code",
		Paper: "front-end context: the paper assumes targets are handled; this quantifies the indirect-branch side on the one recursive workload",
		Expect: "misses fall monotonically with stack depth and reach zero once the depth covers the " +
			"recursion; cycles follow",
		Run: func(s *Suite, cfg Config) ([]*stats.Table, error) {
			var entry *Entry
			for _, e := range s.Entries {
				if e.Name == "queens" {
					entry = e
				}
			}
			if entry == nil {
				return nil, fmt.Errorf("queens workload missing")
			}
			depths := []int{1, 2, 4, 8, 16}
			if cfg.Quick {
				depths = []int{2, 8}
			}
			t := stats.NewTable("E14: RAS depth vs return mispredictions on queens (gshare 12/8)",
				"ras depth", "indirect branches", "misses", "cycles", "IPC")
			run := func(depth int, disable bool) (pipeline.Stats, error) {
				c := pipeline.DefaultConfig(newGshare())
				c.RASDepth = depth
				c.NoRAS = disable
				return pipeline.Run(entry.Orig, c, cfg.Limit)
			}
			off, err := run(0, true)
			if err != nil {
				return nil, err
			}
			t.AddRow("0 (off)", stats.N(off.IndirectBranches), stats.N(off.RASMisses),
				stats.N(off.Cycles), stats.F2(off.IPC()))
			for _, d := range depths {
				st, err := run(d, false)
				if err != nil {
					return nil, err
				}
				t.AddRow(stats.N(d), stats.N(st.IndirectBranches), stats.N(st.RASMisses),
					stats.N(st.Cycles), stats.F2(st.IPC()))
			}
			return []*stats.Table{t}, nil
		},
	}
}

// E9 — filtering known-true guards as well (extension).
func e9() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Filtering known-true guards (extension beyond the paper)",
		Paper: "the abstract claims only the known-false case; this quantifies the symmetric case",
		Expect: "guard-implies-taken branches with resolved true guards are also 100% predictable; " +
			"coverage roughly doubles on predicated code with near-50% path predicates",
		Run: func(s *Suite, cfg Config) ([]*stats.Table, error) {
			t := stats.NewTable("E9: SFPF false-only vs both directions (gshare 12/8, resolve delay 6)",
				"workload", "coverage false-only", "coverage both", "rate false-only", "rate both", "errors")
			var errs uint64
			for _, e := range s.Entries {
				f := core.Evaluate(e.ConvTrace, core.EvalConfig{
					Predictor: newGshare(), UseSFPF: true, ResolveDelay: defResolve,
				})
				b := core.Evaluate(e.ConvTrace, core.EvalConfig{
					Predictor: newGshare(), UseSFPF: true, FilterTrue: true, ResolveDelay: defResolve,
				})
				errs += b.FilterErrors
				t.AddRow(e.Name, stats.Pct(f.FilterCoverage()), stats.Pct(b.FilterCoverage()),
					stats.Pct(f.MispredictRate()), stats.Pct(b.MispredictRate()), stats.N(b.FilterErrors))
			}
			t.AddNote("total filter errors: %d (must be 0)", errs)
			return []*stats.Table{t}, nil
		},
	}
}
