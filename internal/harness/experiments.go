// experiments.go — the 14 reconstructed tables/figures, declared as
// Specs for the generic engine in spec.go. Each experiment is data: a
// variant grid (predictor spec × trace × evaluator or timing-model
// options), the workloads it runs on, and the tables shaped from the
// grid's cells. Adding a predictor kind or a sweep point to an
// experiment means editing its grid, not a loop body; the golden CSV
// test pins every rendered byte.
package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	registerExperiment(e1())
	registerExperiment(e2())
	registerExperiment(e3())
	registerExperiment(e4())
	registerExperiment(e5())
	registerExperiment(e6())
	registerExperiment(e7())
	registerExperiment(e8())
	registerExperiment(e9())
	registerExperiment(e10())
	registerExperiment(e11())
	registerExperiment(e12())
	registerExperiment(e13())
	registerExperiment(e14())
}

// lit is a summary-row cell with a fixed value.
func lit(s string) Col {
	return Col{Value: func(Row) string { return s }}
}

// geoRateCol renders the geomean misprediction rate of one variant
// (sub-)key over the row's workloads.
func geoRateCol(name, sub string) Col {
	return Col{name, func(r Row) string {
		return stats.Pct(stats.Geomean(r.Over(sub, rate)))
	}}
}

// geoCyclesCol renders the geomean speedup of variant sub over variant
// "orig" (cycles ratio per workload, then geomean), in the given format.
func geoCyclesCol(name, sub, format string) Col {
	return Col{name, func(r Row) string {
		o, c := r.Cells("orig"), r.Cells(sub)
		sp := make([]float64, len(o))
		for i := range o {
			sp[i] = float64(o[i].P.Cycles) / float64(c[i].P.Cycles)
		}
		return fmt.Sprintf(format, stats.Geomean(sp))
	}}
}

// E1 — benchmark characterisation (paper Table 1 analogue). A pure
// trace-characterisation table: no variants, every column derives from
// the prepared workload itself.
func e1() Experiment {
	return Spec{
		ID:    "E1",
		Title: "Benchmark characterisation under if-conversion",
		Paper: "Table 1: benchmark suite, dynamic branches, branches removed by predication, region-based branches",
		Expect: "if-conversion removes a large fraction of dynamic conditional branches; " +
			"a visible fraction of the remaining branches are region-based; " +
			"nullified instructions appear as the predication cost",
		Tables: []TableSpec{{
			Title: "E1: workload characterisation (orig -> if-converted)",
			Shape: RowsPerEntry,
			Cols: []Col{
				workloadCol(),
				{"static insts", func(r Row) string {
					return fmt.Sprintf("%d -> %d", len(r.Entry.Orig.Insts), len(r.Entry.Conv.Insts))
				}},
				{"dyn insts", func(r Row) string {
					return fmt.Sprintf("%d -> %d", r.Entry.OrigTrace.Insts, r.Entry.ConvTrace.Insts)
				}},
				{"dyn cond branches", func(r Row) string {
					return fmt.Sprintf("%d -> %d", r.Entry.OrigTrace.Branches, r.Entry.ConvTrace.Branches)
				}},
				{"branches removed", func(r Row) string {
					ot, ct := r.Entry.OrigTrace, r.Entry.ConvTrace
					return stats.Pct(1 - float64(ct.Branches)/float64(ot.Branches))
				}},
				{"region br (dyn)", func(r Row) string {
					ct := r.Entry.ConvTrace
					regionPct := 0.0
					if ct.Branches > 0 {
						regionPct = float64(ct.RegionBranches) / float64(ct.Branches)
					}
					return stats.Pct(regionPct)
				}},
				{"nullified", func(r Row) string {
					ct := r.Entry.ConvTrace
					return stats.Pct(float64(ct.Nullified) / float64(ct.Insts))
				}},
			},
			Notes: []func([]Row) string{func(rows []Row) string {
				var remTotal, brTotal float64
				for _, r := range rows {
					ot, ct := r.Entry.OrigTrace, r.Entry.ConvTrace
					remTotal += float64(ot.Branches) - float64(ct.Branches)
					brTotal += float64(ot.Branches)
				}
				return fmt.Sprintf("suite-wide, %s of dynamic conditional branches are removed by if-conversion",
					stats.Pct(remTotal/brTotal))
			}},
		}},
	}.Experiment()
}

// e2Preds is the E2b predictor sweep; quick runs keep only the default
// gshare (the paper's main configuration).
var e2Preds = []sim.Spec{
	sim.For("bimodal", defTableBits),
	defSpec,
	sim.For("local", 8, 10, defTableBits),
	sim.For("tournament", defTableBits, defHistBits),
	sim.For("agree", defTableBits, defHistBits),
}

// E2 — the effect of predication on the remaining branches.
func e2() Experiment {
	variants := []Variant{
		{Key: "orig", Trace: TraceOrig},
		{Key: "conv"},
		// E2c: the paper's profile-guided compiler. Full runs only.
		{Key: "prof", Trace: TraceProfiled, FullOnly: true},
	}
	var groups []string
	for _, sp := range e2Preds {
		name := sp.MustNew().Name()
		groups = append(groups, name)
		full := sp != defSpec
		variants = append(variants,
			Variant{Key: name + "/orig", Trace: TraceOrig, Pred: sp, FullOnly: full},
			Variant{Key: name + "/conv", Pred: sp, FullOnly: full})
	}
	skipUnconverted := func(r Row) bool {
		// Nothing converted: no remaining-branch story to tell.
		_, rep, _, err := r.Entry.Profiled()
		return err == nil && len(rep.Regions) == 0
	}
	return Spec{
		ID:    "E2",
		Title: "Misprediction rate of remaining branches: original vs if-converted code",
		Paper: "figure: predication's effect on the predictability of remaining branches, across predictor types",
		Expect: "the misprediction *rate* of the remaining branches rises after if-conversion " +
			"(easy branches were removed and correlation bits vanished from the history), " +
			"even though the total misprediction count drops",
		Variants: variants,
		Tables: []TableSpec{
			{
				Title: "E2a: per-workload misprediction rate with gshare (orig -> converted)",
				Shape: RowsPerEntry,
				Cols: []Col{
					workloadCol(),
					{"rate orig", func(r Row) string { return stats.Pct(r.Cell("orig").M.MispredictRate()) }},
					{"rate conv", func(r Row) string { return stats.Pct(r.Cell("conv").M.MispredictRate()) }},
					{"misses orig", func(r Row) string { return stats.N(r.Cell("orig").M.Mispredicts) }},
					{"misses conv", func(r Row) string { return stats.N(r.Cell("conv").M.Mispredicts) }},
				},
			},
			{
				Title:  "E2b: geomean misprediction rate across the suite, per predictor",
				Shape:  RowsPerGroup,
				Groups: groups,
				Cols: []Col{
					groupCol("predictor"),
					geoRateCol("rate orig", "orig"),
					geoRateCol("rate conv", "conv"),
					{"delta", func(r Row) string {
						go_ := stats.Geomean(r.Over("orig", rate))
						gc := stats.Geomean(r.Over("conv", rate))
						return stats.Ratio(gc, go_)
					}},
				},
			},
			{
				Title:    "E2c: remaining-branch rate under profile-guided conversion (gshare 12/8)",
				Shape:    RowsPerEntry,
				FullOnly: true,
				Skip:     skipUnconverted,
				Cols: []Col{
					workloadCol(),
					{"rate orig", func(r Row) string { return stats.Pct(r.Cell("orig").M.MispredictRate()) }},
					{"rate conv", func(r Row) string { return stats.Pct(r.Cell("prof").M.MispredictRate()) }},
					{"delta", func(r Row) string {
						return stats.Ratio(r.Cell("prof").M.MispredictRate(), r.Cell("orig").M.MispredictRate())
					}},
				},
				Summary: []Col{
					lit("geomean"),
					geoRateCol("", "orig"),
					geoRateCol("", "prof"),
					{Value: func(r Row) string {
						return stats.Ratio(stats.Geomean(r.Over("prof", rate)), stats.Geomean(r.Over("orig", rate)))
					}},
				},
			},
		},
	}.Experiment()
}

// E3 — the squash false path filter.
func e3() Experiment {
	variants := []Variant{
		{Key: "base"},
		{Key: "sfpf", UseSFPF: true, ResolveDelay: defResolve},
	}
	var groups []string
	for _, bits := range []int{4, 6, 8, 10, 12, 14} {
		label := stats.N(bits)
		groups = append(groups, label)
		full := bits != 6 && bits != 12
		pred := sim.For("gshare", bits, defHistBits)
		variants = append(variants,
			Variant{Key: label + "/base", Pred: pred, FullOnly: full},
			Variant{Key: label + "/sfpf", Pred: pred, UseSFPF: true, ResolveDelay: defResolve, FullOnly: full})
	}
	return Spec{
		ID:    "E3",
		Title: "Squash false path filter on predicated code",
		Paper: "figure: fraction of branches filtered and misprediction rate with/without the SFPF, across predictor sizes",
		Expect: "the filter covers a visible fraction of region-based branches with zero errors; " +
			"misprediction rate drops, more at small table sizes where pollution hurts most",
		Variants: variants,
		Tables: []TableSpec{
			{
				Title: "E3a: per-workload SFPF effect (gshare 12-bit, resolve delay 6)",
				Shape: RowsPerEntry,
				Cols: []Col{
					workloadCol(),
					{"cond branches", func(r Row) string { return stats.N(r.Cell("sfpf").M.Branches) }},
					{"region br", func(r Row) string { return stats.N(r.Cell("sfpf").M.RegionBranches) }},
					{"filtered", func(r Row) string { return stats.N(r.Cell("sfpf").M.Filtered) }},
					{"coverage", func(r Row) string { return stats.Pct(r.Cell("sfpf").M.FilterCoverage()) }},
					{"rate base", func(r Row) string { return stats.Pct(r.Cell("base").M.MispredictRate()) }},
					{"rate sfpf", func(r Row) string { return stats.Pct(r.Cell("sfpf").M.MispredictRate()) }},
					{"filter errors", func(r Row) string { return stats.N(r.Cell("sfpf").M.FilterErrors) }},
				},
				Notes: []func([]Row) string{func(rows []Row) string {
					var errs uint64
					for _, r := range rows {
						errs += r.Cell("sfpf").M.FilterErrors
					}
					return fmt.Sprintf("total filter errors across the suite: %d (must be 0 — the 100%% accuracy claim)", errs)
				}},
			},
			{
				Title:  "E3b: geomean misprediction rate vs gshare size, with and without SFPF",
				Shape:  RowsPerGroup,
				Groups: groups,
				Cols: []Col{
					groupCol("table bits"),
					geoRateCol("rate base", "base"),
					geoRateCol("rate sfpf", "sfpf"),
					{"improvement", func(r Row) string {
						return stats.Ratio(stats.Geomean(r.Over("base", rate)), stats.Geomean(r.Over("sfpf", rate)))
					}},
				},
			},
		},
	}.Experiment()
}

// E4 — the predicate global update predictor.
func e4() Experiment {
	variants := []Variant{
		{Key: "base"},
		{Key: "pgu", PGU: core.PGUAll, PGUDelay: defPGUDelay},
	}
	var groups []string
	for _, h := range []int{2, 4, 6, 8, 10, 12} {
		label := stats.N(h)
		groups = append(groups, label)
		full := h != 4 && h != 8
		pred := sim.For("gshare", defTableBits, h)
		variants = append(variants,
			Variant{Key: label + "/base", Pred: pred, FullOnly: full},
			Variant{Key: label + "/pgu", Pred: pred, PGU: core.PGUAll, PGUDelay: defPGUDelay, FullOnly: full})
	}
	return Spec{
		ID:    "E4",
		Title: "Predicate global update (PGU) vs plain global history",
		Paper: "figure: misprediction rate of gshare vs PGU-gshare across history lengths",
		Expect: "inserting predicate-define outcomes into the history recovers the correlation " +
			"if-conversion removed; the gap is largest on correlation-heavy workloads (corr, fsm) " +
			"and neutral on uncorrelated ones",
		Variants: variants,
		Tables: []TableSpec{
			{
				Title: "E4a: per-workload misprediction rate (gshare 12/8)",
				Shape: RowsPerEntry,
				Cols: []Col{
					workloadCol(),
					{"rate base", func(r Row) string { return stats.Pct(r.Cell("base").M.MispredictRate()) }},
					{"rate pgu-all", func(r Row) string { return stats.Pct(r.Cell("pgu").M.MispredictRate()) }},
					{"inserted bits", func(r Row) string { return stats.N(r.Cell("pgu").M.InsertedBits) }},
					{"improvement", func(r Row) string {
						return stats.Ratio(r.Cell("base").M.MispredictRate(), r.Cell("pgu").M.MispredictRate())
					}},
				},
			},
			{
				Title:  "E4b: geomean misprediction rate vs history length (12-bit table)",
				Shape:  RowsPerGroup,
				Groups: groups,
				Cols: []Col{
					groupCol("history bits"),
					geoRateCol("rate base", "base"),
					geoRateCol("rate pgu-all", "pgu"),
					{"improvement", func(r Row) string {
						return stats.Ratio(stats.Geomean(r.Over("base", rate)), stats.Geomean(r.Over("pgu", rate)))
					}},
				},
			},
		},
	}.Experiment()
}

// E5 — both mechanisms combined.
func e5() Experiment {
	rateCol := func(name, sub string) Col {
		return Col{name, func(r Row) string { return stats.Pct(r.Cell(sub).M.MispredictRate()) }}
	}
	return Spec{
		ID:    "E5",
		Title: "SFPF and PGU combined",
		Paper: "figure: misprediction rate for baseline, +SFPF, +PGU, +both",
		Expect: "the mechanisms are complementary (one removes false-path branches, the other " +
			"restores correlation); combined is at least as good as the better individual one on most workloads",
		Variants: []Variant{
			{Key: "base"},
			{Key: "sfpf", UseSFPF: true, ResolveDelay: defResolve},
			{Key: "pgu", PGU: core.PGUAll, PGUDelay: defPGUDelay},
			{Key: "both", UseSFPF: true, ResolveDelay: defResolve, PGU: core.PGUAll, PGUDelay: defPGUDelay},
		},
		Tables: []TableSpec{{
			Title: "E5: misprediction rate on predicated code (gshare 12/8)",
			Shape: RowsPerEntry,
			Cols: []Col{
				workloadCol(),
				rateCol("base", "base"),
				rateCol("+sfpf", "sfpf"),
				rateCol("+pgu", "pgu"),
				rateCol("+both", "both"),
				{"MPKI base", func(r Row) string { return stats.F2(r.Cell("base").M.MPKI()) }},
				{"MPKI both", func(r Row) string { return stats.F2(r.Cell("both").M.MPKI()) }},
			},
			Summary: []Col{
				lit("geomean"),
				geoRateCol("", "base"),
				geoRateCol("", "sfpf"),
				geoRateCol("", "pgu"),
				geoRateCol("", "both"),
			},
		}},
	}.Experiment()
}

// E6 — end-to-end performance on the timing model.
func e6() Experiment {
	speedupCol := func(name, sub string) Col {
		return Col{name, func(r Row) string {
			return stats.Ratio(float64(r.Cell("orig").P.Cycles), float64(r.Cell(sub).P.Cycles))
		}}
	}
	return Spec{
		ID:    "E6",
		Title: "Pipeline performance: branching vs predicated vs predicated+mechanisms",
		Paper: "figure: speedup of predicated code with the proposed predictors over branching code",
		Expect: "predication wins on hard-to-predict workloads and costs a little on predictable ones; " +
			"SFPF and PGU recover most of the predictor-induced losses and extend the wins",
		Variants: []Variant{
			{Key: "orig", Trace: TraceOrig, Pipeline: true},
			{Key: "conv", Pipeline: true},
			{Key: "sfpf", Pipeline: true, UseSFPF: true},
			{Key: "pgu", Pipeline: true, PGU: core.PGUAll},
			{Key: "both", Pipeline: true, UseSFPF: true, PGU: core.PGUAll},
		},
		Tables: []TableSpec{{
			Title: "E6: cycles and speedup over branching code (gshare 12/8, 10-cycle penalty)",
			Shape: RowsPerEntry,
			Cols: []Col{
				workloadCol(),
				{"cycles orig", func(r Row) string { return stats.N(r.Cell("orig").P.Cycles) }},
				{"IPC orig", func(r Row) string { return stats.F2(r.Cell("orig").P.IPC()) }},
				speedupCol("speedup conv", "conv"),
				speedupCol("conv+sfpf", "sfpf"),
				speedupCol("conv+pgu", "pgu"),
				speedupCol("conv+both", "both"),
			},
			Summary: []Col{
				lit("geomean"),
				lit(""),
				lit(""),
				geoCyclesCol("", "conv", "%.2fx"),
				geoCyclesCol("", "sfpf", "%.2fx"),
				geoCyclesCol("", "pgu", "%.2fx"),
				geoCyclesCol("", "both", "%.2fx"),
			},
		}},
	}.Experiment()
}

// E7 — sensitivity to the predicate resolve delay.
func e7() Experiment {
	var variants []Variant
	var groups []string
	for _, d := range []uint64{0, 2, 4, 6, 8, 12, 16, 24} {
		label := stats.N(d)
		groups = append(groups, label)
		variants = append(variants, Variant{
			Key: label, UseSFPF: true, ResolveDelay: d,
			FullOnly: d != 0 && d != 6 && d != 16,
		})
	}
	return Spec{
		ID:    "E7",
		Title: "SFPF coverage vs predicate resolve delay",
		Paper: "sensitivity analysis: how deep pipelines (late predicate resolution) erode the filter",
		Expect: "filter coverage falls monotonically as the resolve delay grows; misprediction rate " +
			"degrades back toward the unfiltered baseline",
		Variants: variants,
		Tables: []TableSpec{{
			Title:  "E7: geomean SFPF coverage and misprediction rate vs resolve delay (gshare 12/8)",
			Shape:  RowsPerGroup,
			Groups: groups,
			Cols: []Col{
				groupCol("resolve delay"),
				{"coverage", func(r Row) string {
					return stats.Pct(stats.Mean(r.Over("", func(c Cell) float64 { return c.M.FilterCoverage() })))
				}},
				{"rate", func(r Row) string { return stats.Pct(stats.Geomean(r.Over("", rate))) }},
			},
		}},
	}.Experiment()
}

// E8 — PGU insertion-policy ablation.
func e8() Experiment {
	var variants []Variant
	var groups []string
	for _, pol := range []core.PGUPolicy{core.PGUOff, core.PGURegionGuards, core.PGUBranchGuards, core.PGUAll} {
		label := pol.String()
		groups = append(groups, label)
		variants = append(variants, Variant{Key: label, PGU: pol, PGUDelay: defPGUDelay})
	}
	return Spec{
		ID:    "E8",
		Title: "PGU insertion policy ablation",
		Paper: "design-space discussion: which predicate defines should update the history",
		Expect: "more insertion gives more correlation but consumes history capacity; " +
			"region/branch-guard policies spend fewer bits for most of the benefit",
		Variants: variants,
		Tables: []TableSpec{{
			Title:  "E8: geomean misprediction rate per insertion policy (gshare 12/8)",
			Shape:  RowsPerGroup,
			Groups: groups,
			Cols: []Col{
				groupCol("policy"),
				{"rate", func(r Row) string { return stats.Pct(stats.Geomean(r.Over("", rate))) }},
				{"inserted bits (suite)", func(r Row) string {
					var bits uint64
					for _, c := range r.Cells("") {
						bits += c.M.InsertedBits
					}
					return stats.N(bits)
				}},
			},
		}},
	}.Experiment()
}

// E9 — filtering known-true guards as well (extension).
func e9() Experiment {
	return Spec{
		ID:    "E9",
		Title: "Filtering known-true guards (extension beyond the paper)",
		Paper: "the abstract claims only the known-false case; this quantifies the symmetric case",
		Expect: "guard-implies-taken branches with resolved true guards are also 100% predictable; " +
			"coverage roughly doubles on predicated code with near-50% path predicates",
		Variants: []Variant{
			{Key: "false-only", UseSFPF: true, ResolveDelay: defResolve},
			{Key: "both", UseSFPF: true, FilterTrue: true, ResolveDelay: defResolve},
		},
		Tables: []TableSpec{{
			Title: "E9: SFPF false-only vs both directions (gshare 12/8, resolve delay 6)",
			Shape: RowsPerEntry,
			Cols: []Col{
				workloadCol(),
				{"coverage false-only", func(r Row) string { return stats.Pct(r.Cell("false-only").M.FilterCoverage()) }},
				{"coverage both", func(r Row) string { return stats.Pct(r.Cell("both").M.FilterCoverage()) }},
				{"rate false-only", func(r Row) string { return stats.Pct(r.Cell("false-only").M.MispredictRate()) }},
				{"rate both", func(r Row) string { return stats.Pct(r.Cell("both").M.MispredictRate()) }},
				{"errors", func(r Row) string { return stats.N(r.Cell("both").M.FilterErrors) }},
			},
			Notes: []func([]Row) string{func(rows []Row) string {
				var errs uint64
				for _, r := range rows {
					errs += r.Cell("both").M.FilterErrors
				}
				return fmt.Sprintf("total filter errors: %d (must be 0)", errs)
			}},
		}},
	}.Experiment()
}

// E10 — compare scheduling ablation.
func e10() Experiment {
	return Spec{
		ID:    "E10",
		Title: "Compare scheduling ablation (what feeds the filter)",
		Paper: "methodology dependency: the paper's compiler schedules compares early; this quantifies how much the SFPF relies on that",
		Expect: "without compare scheduling, guard defines sit next to their branches, guards rarely " +
			"resolve before fetch, and filter coverage collapses",
		Variants: []Variant{
			{Key: "sched", UseSFPF: true, ResolveDelay: defResolve},
			{Key: "unsched", Trace: TraceUnscheduled, UseSFPF: true, ResolveDelay: defResolve},
		},
		Tables: []TableSpec{{
			Title: "E10: SFPF coverage with and without compare scheduling (gshare 12/8, resolve delay 6)",
			Shape: RowsPerEntry,
			Cols: []Col{
				workloadCol(),
				{"coverage scheduled", func(r Row) string { return stats.Pct(r.Cell("sched").M.FilterCoverage()) }},
				{"coverage unscheduled", func(r Row) string { return stats.Pct(r.Cell("unsched").M.FilterCoverage()) }},
			},
		}},
	}.Experiment()
}

// E11 — profile-guided hyperblock selection.
func e11() Experiment {
	return Spec{
		ID:    "E11",
		Title: "Profile-guided vs greedy if-conversion",
		Paper: "methodology: the paper's IMPACT binaries used profile-driven hyperblock selection; this reproduces that selection and its effect",
		Expect: "profile-guided selection skips regions whose nullification cost exceeds their " +
			"misprediction savings, eliminating the pathological predication losses greedy " +
			"conversion shows, at the price of converting less",
		Variants: []Variant{
			{Key: "orig", Trace: TraceOrig, Pipeline: true},
			{Key: "greedy", Pipeline: true},
			{Key: "prof", Trace: TraceProfiled, Pipeline: true},
		},
		Tables: []TableSpec{{
			Title: "E11: speedup over branching code, greedy vs profile-guided conversion (gshare 12/8)",
			Shape: RowsPerEntry,
			Cols: []Col{
				workloadCol(),
				{"greedy regions", func(r Row) string { return stats.N(len(r.Entry.Report.Regions)) }},
				{"profiled regions", func(r Row) string {
					_, rep, _, _ := r.Entry.Profiled() // already materialized by the prof cells
					return stats.N(len(rep.Regions))
				}},
				{"speedup greedy", func(r Row) string {
					return stats.Ratio(float64(r.Cell("orig").P.Cycles), float64(r.Cell("greedy").P.Cycles))
				}},
				{"speedup profiled", func(r Row) string {
					return stats.Ratio(float64(r.Cell("orig").P.Cycles), float64(r.Cell("prof").P.Cycles))
				}},
			},
			Summary: []Col{
				lit("geomean"),
				lit(""),
				lit(""),
				geoCyclesCol("", "greedy", "%.2fx"),
				geoCyclesCol("", "prof", "%.2fx"),
			},
		}},
	}.Experiment()
}

// E12 — issue-width sensitivity.
func e12() Experiment {
	var variants []Variant
	var groups []string
	for _, w := range []int{1, 2, 4, 8} {
		label := stats.N(w)
		groups = append(groups, label)
		full := w != 1 && w != 4
		variants = append(variants,
			Variant{Key: label + "/orig", Trace: TraceOrig, Pipeline: true, IssueWidth: w, FullOnly: full},
			Variant{Key: label + "/conv", Pipeline: true, IssueWidth: w, FullOnly: full},
			Variant{Key: label + "/both", Pipeline: true, IssueWidth: w, UseSFPF: true, PGU: core.PGUAll, FullOnly: full})
	}
	return Spec{
		ID:    "E12",
		Title: "Predication trade-off vs issue width",
		Paper: "context: the paper targets wide EPIC machines; width amortises nullified slots while misprediction penalties stay flat",
		Expect: "the geomean speedup of predicated code (and of predicated+mechanisms) over branching " +
			"code grows with issue width",
		Variants: variants,
		Tables: []TableSpec{{
			Title:  "E12: geomean speedup over branching code vs issue width (gshare 12/8)",
			Shape:  RowsPerGroup,
			Groups: groups,
			Cols: []Col{
				groupCol("issue width"),
				{"IPC orig (geomean)", func(r Row) string {
					return stats.F2(stats.Geomean(r.Over("orig", func(c Cell) float64 { return c.P.IPC() })))
				}},
				geoCyclesCol("speedup conv", "conv", "%.3fx"),
				geoCyclesCol("speedup conv+both", "both", "%.3fx"),
			},
		}},
	}.Experiment()
}

// E13 — PGU across predictor architectures.
func e13() Experiment {
	var variants []Variant
	var groups []string
	for _, sp := range []sim.Spec{
		sim.For("gshare", 12, 8),
		sim.For("agree", 12, 8),
		sim.For("perceptron", 8, 24),
	} {
		name := sp.MustNew().Name()
		groups = append(groups, name)
		variants = append(variants,
			Variant{Key: name + "/base", Pred: sp},
			Variant{Key: name + "/pgu", Pred: sp, PGU: core.PGUAll, PGUDelay: defPGUDelay})
	}
	return Spec{
		ID:    "E13",
		Title: "PGU across predictor architectures (counters vs agree vs perceptron)",
		Paper: "extension: the paper used counter-based global predictors; this asks whether the mechanism generalises",
		Expect: "every global-history architecture benefits on correlated workloads, and none regresses " +
			"materially on the rest: the mechanism is predictor-agnostic, needing only an open history",
		Variants: variants,
		Tables: []TableSpec{{
			Title:  "E13: geomean misprediction rate on predicated code, base vs PGU-all",
			Shape:  RowsPerGroup,
			Groups: groups,
			Cols: []Col{
				groupCol("predictor"),
				geoRateCol("rate base", "base"),
				geoRateCol("rate pgu-all", "pgu"),
				{"improvement", func(r Row) string {
					return stats.Ratio(stats.Geomean(r.Over("base", rate)), stats.Geomean(r.Over("pgu", rate)))
				}},
				{"worst per-workload ratio", func(r Row) string {
					base, pgu := r.Cells("base"), r.Cells("pgu")
					worst := 0.0
					for i := range base {
						// ratio > 1 means PGU hurt this workload; tiny
						// baselines are excluded as noise.
						if base[i].M.Mispredicts >= 50 {
							if ratio := float64(pgu[i].M.Mispredicts) / float64(base[i].M.Mispredicts); ratio > worst {
								worst = ratio
							}
						}
					}
					return stats.F2(worst)
				}},
			},
			Notes: []func([]Row) string{
				staticNote("worst per-workload ratio: pgu/base misprediction counts; > 1 means insertion hurt that workload"),
			},
		}},
	}.Experiment()
}

// E14 — return-address stack depth on the recursive workload.
func e14() Experiment {
	variants := []Variant{{Key: "0 (off)", Trace: TraceOrig, Pipeline: true, NoRAS: true}}
	groups := []string{"0 (off)"}
	for _, d := range []int{1, 2, 4, 8, 16} {
		label := stats.N(d)
		groups = append(groups, label)
		variants = append(variants, Variant{
			Key: label, Trace: TraceOrig, Pipeline: true, RASDepth: d,
			FullOnly: d != 2 && d != 8,
		})
	}
	return Spec{
		ID:    "E14",
		Title: "Return-address stack depth on recursive code",
		Paper: "front-end context: the paper assumes targets are handled; this quantifies the indirect-branch side on the one recursive workload",
		Expect: "misses fall monotonically with stack depth and reach zero once the depth covers the " +
			"recursion; cycles follow",
		Workloads: []string{"queens"},
		Variants:  variants,
		Tables: []TableSpec{{
			Title:  "E14: RAS depth vs return mispredictions on queens (gshare 12/8)",
			Shape:  RowsPerGroup,
			Groups: groups,
			Cols: []Col{
				groupCol("ras depth"),
				{"indirect branches", func(r Row) string { return stats.N(r.Cell("").P.IndirectBranches) }},
				{"misses", func(r Row) string { return stats.N(r.Cell("").P.RASMisses) }},
				{"cycles", func(r Row) string { return stats.N(r.Cell("").P.Cycles) }},
				{"IPC", func(r Row) string { return stats.F2(r.Cell("").P.IPC()) }},
			},
		}},
	}.Experiment()
}
