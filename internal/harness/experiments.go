package harness

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	registerExperiment(e1())
	registerExperiment(e2())
	registerExperiment(e3())
	registerExperiment(e4())
	registerExperiment(e5())
	registerExperiment(e6())
	registerExperiment(e7())
	registerExperiment(e8())
	registerExperiment(e9())
	registerExperiment(e10())
	registerExperiment(e11())
	registerExperiment(e12())
	registerExperiment(e13())
	registerExperiment(e14())
}

// E1 — benchmark characterisation (paper Table 1 analogue).
func e1() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Benchmark characterisation under if-conversion",
		Paper: "Table 1: benchmark suite, dynamic branches, branches removed by predication, region-based branches",
		Expect: "if-conversion removes a large fraction of dynamic conditional branches; " +
			"a visible fraction of the remaining branches are region-based; " +
			"nullified instructions appear as the predication cost",
		Run: func(ctx context.Context, s *Suite, cfg Config) ([]*stats.Table, error) {
			t := stats.NewTable("E1: workload characterisation (orig -> if-converted)",
				"workload", "static insts", "dyn insts", "dyn cond branches",
				"branches removed", "region br (dyn)", "nullified")
			var remTotal, brTotal float64
			for _, e := range s.Entries {
				ot, ct := e.OrigTrace, e.ConvTrace
				removed := 1 - float64(ct.Branches)/float64(ot.Branches)
				remTotal += float64(ot.Branches) - float64(ct.Branches)
				brTotal += float64(ot.Branches)
				regionPct := 0.0
				if ct.Branches > 0 {
					regionPct = float64(ct.RegionBranches) / float64(ct.Branches)
				}
				t.AddRow(e.Name,
					fmt.Sprintf("%d -> %d", len(e.Orig.Insts), len(e.Conv.Insts)),
					fmt.Sprintf("%d -> %d", ot.Insts, ct.Insts),
					fmt.Sprintf("%d -> %d", ot.Branches, ct.Branches),
					stats.Pct(removed),
					stats.Pct(regionPct),
					stats.Pct(float64(ct.Nullified)/float64(ct.Insts)))
			}
			t.AddNote("suite-wide, %s of dynamic conditional branches are removed by if-conversion",
				stats.Pct(remTotal/brTotal))
			return []*stats.Table{t}, nil
		},
	}
}

// E2 — the effect of predication on the remaining branches.
func e2() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Misprediction rate of remaining branches: original vs if-converted code",
		Paper: "figure: predication's effect on the predictability of remaining branches, across predictor types",
		Expect: "the misprediction *rate* of the remaining branches rises after if-conversion " +
			"(easy branches were removed and correlation bits vanished from the history), " +
			"even though the total misprediction count drops",
		Run: func(ctx context.Context, s *Suite, cfg Config) ([]*stats.Table, error) {
			specs := []sim.Spec{
				sim.For("bimodal", defTableBits),
				defSpec,
				sim.For("local", 8, 10, defTableBits),
				sim.For("tournament", defTableBits, defHistBits),
				sim.For("agree", defTableBits, defHistBits),
			}
			if cfg.Quick {
				specs = specs[1:2]
			}
			var tables []*stats.Table
			type pair struct{ mo, mc core.Metrics }
			pairs, err := overEntries(ctx, s, func(e *Entry) (pair, error) {
				return pair{
					mo: core.Evaluate(e.OrigTrace, core.EvalConfig{Predictor: newGshare()}),
					mc: core.Evaluate(e.ConvTrace, core.EvalConfig{Predictor: newGshare()}),
				}, nil
			})
			if err != nil {
				return nil, err
			}
			per := stats.NewTable("E2a: per-workload misprediction rate with gshare (orig -> converted)",
				"workload", "rate orig", "rate conv", "misses orig", "misses conv")
			for i, e := range s.Entries {
				mo, mc := pairs[i].mo, pairs[i].mc
				per.AddRow(e.Name, stats.Pct(mo.MispredictRate()), stats.Pct(mc.MispredictRate()),
					stats.N(mo.Mispredicts), stats.N(mc.Mispredicts))
			}
			tables = append(tables, per)

			geo := stats.NewTable("E2b: geomean misprediction rate across the suite, per predictor",
				"predictor", "rate orig", "rate conv", "delta")
			for _, sp := range specs {
				sp := sp
				name := sp.MustNew().Name()
				rr, err := overEntries(ctx, s, func(e *Entry) ([2]float64, error) {
					mo := core.Evaluate(e.OrigTrace, core.EvalConfig{Predictor: sp.MustNew()})
					mc := core.Evaluate(e.ConvTrace, core.EvalConfig{Predictor: sp.MustNew()})
					return [2]float64{mo.MispredictRate(), mc.MispredictRate()}, nil
				})
				if err != nil {
					return nil, err
				}
				var ro, rc []float64
				for _, r := range rr {
					ro = append(ro, r[0])
					rc = append(rc, r[1])
				}
				go_, gc := stats.Geomean(ro), stats.Geomean(rc)
				geo.AddRow(name, stats.Pct(go_), stats.Pct(gc), stats.Ratio(gc, go_))
			}
			tables = append(tables, geo)

			// E2c: under profile-guided conversion — the paper's compiler —
			// hard branches survive alongside converted neighbours, which is
			// where the remaining-branch degradation shows.
			if !cfg.Quick {
				type row struct {
					skip   bool
					ro, rc float64
				}
				rows, err := overEntries(ctx, s, func(e *Entry) (row, error) {
					_, rep, tr, err := e.Profiled()
					if err != nil {
						return row{}, err
					}
					if len(rep.Regions) == 0 {
						return row{skip: true}, nil // nothing converted: no remaining-branch story
					}
					mo := core.Evaluate(e.OrigTrace, core.EvalConfig{Predictor: newGshare()})
					mc := core.Evaluate(tr, core.EvalConfig{Predictor: newGshare()})
					return row{ro: mo.MispredictRate(), rc: mc.MispredictRate()}, nil
				})
				if err != nil {
					return nil, err
				}
				pg := stats.NewTable("E2c: remaining-branch rate under profile-guided conversion (gshare 12/8)",
					"workload", "rate orig", "rate conv", "delta")
				var ro, rc []float64
				for i, e := range s.Entries {
					r := rows[i]
					if r.skip {
						continue
					}
					pg.AddRow(e.Name, stats.Pct(r.ro), stats.Pct(r.rc), stats.Ratio(r.rc, r.ro))
					ro = append(ro, r.ro)
					rc = append(rc, r.rc)
				}
				pg.AddRow("geomean", stats.Pct(stats.Geomean(ro)), stats.Pct(stats.Geomean(rc)),
					stats.Ratio(stats.Geomean(rc), stats.Geomean(ro)))
				tables = append(tables, pg)
			}
			return tables, nil
		},
	}
}

// E3 — the squash false path filter.
func e3() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Squash false path filter on predicated code",
		Paper: "figure: fraction of branches filtered and misprediction rate with/without the SFPF, across predictor sizes",
		Expect: "the filter covers a visible fraction of region-based branches with zero errors; " +
			"misprediction rate drops, more at small table sizes where pollution hurts most",
		Run: func(ctx context.Context, s *Suite, cfg Config) ([]*stats.Table, error) {
			type row struct{ base, f core.Metrics }
			rows, err := overEntries(ctx, s, func(e *Entry) (row, error) {
				return row{
					base: core.Evaluate(e.ConvTrace, core.EvalConfig{Predictor: newGshare()}),
					f: core.Evaluate(e.ConvTrace, core.EvalConfig{
						Predictor: newGshare(), UseSFPF: true, ResolveDelay: defResolve,
					}),
				}, nil
			})
			if err != nil {
				return nil, err
			}
			per := stats.NewTable("E3a: per-workload SFPF effect (gshare 12-bit, resolve delay 6)",
				"workload", "cond branches", "region br", "filtered", "coverage",
				"rate base", "rate sfpf", "filter errors")
			var errs uint64
			for i, e := range s.Entries {
				base, f := rows[i].base, rows[i].f
				errs += f.FilterErrors
				per.AddRow(e.Name, stats.N(f.Branches), stats.N(f.RegionBranches),
					stats.N(f.Filtered), stats.Pct(f.FilterCoverage()),
					stats.Pct(base.MispredictRate()), stats.Pct(f.MispredictRate()),
					stats.N(f.FilterErrors))
			}
			per.AddNote("total filter errors across the suite: %d (must be 0 — the 100%% accuracy claim)", errs)

			sizes := []int{4, 6, 8, 10, 12, 14}
			if cfg.Quick {
				sizes = []int{6, 12}
			}
			sweep := stats.NewTable("E3b: geomean misprediction rate vs gshare size, with and without SFPF",
				"table bits", "rate base", "rate sfpf", "improvement")
			for _, bits := range sizes {
				b := bits
				rb, err := geoRates(ctx, s, func(*Entry) core.EvalConfig {
					return core.EvalConfig{Predictor: sim.For("gshare", b, defHistBits).MustNew()}
				})
				if err != nil {
					return nil, err
				}
				rf, err := geoRates(ctx, s, func(*Entry) core.EvalConfig {
					return core.EvalConfig{
						Predictor: sim.For("gshare", b, defHistBits).MustNew(),
						UseSFPF:   true, ResolveDelay: defResolve,
					}
				})
				if err != nil {
					return nil, err
				}
				sweep.AddRow(stats.N(bits), stats.Pct(rb), stats.Pct(rf), stats.Ratio(rb, rf))
			}
			return []*stats.Table{per, sweep}, nil
		},
	}
}

// E4 — the predicate global update predictor.
func e4() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "Predicate global update (PGU) vs plain global history",
		Paper: "figure: misprediction rate of gshare vs PGU-gshare across history lengths",
		Expect: "inserting predicate-define outcomes into the history recovers the correlation " +
			"if-conversion removed; the gap is largest on correlation-heavy workloads (corr, fsm) " +
			"and neutral on uncorrelated ones",
		Run: func(ctx context.Context, s *Suite, cfg Config) ([]*stats.Table, error) {
			type row struct{ base, pgu core.Metrics }
			rows, err := overEntries(ctx, s, func(e *Entry) (row, error) {
				return row{
					base: core.Evaluate(e.ConvTrace, core.EvalConfig{Predictor: newGshare()}),
					pgu: core.Evaluate(e.ConvTrace, core.EvalConfig{
						Predictor: newGshare(), PGU: core.PGUAll, PGUDelay: defPGUDelay,
					}),
				}, nil
			})
			if err != nil {
				return nil, err
			}
			per := stats.NewTable("E4a: per-workload misprediction rate (gshare 12/8)",
				"workload", "rate base", "rate pgu-all", "inserted bits", "improvement")
			for i, e := range s.Entries {
				base, pgu := rows[i].base, rows[i].pgu
				per.AddRow(e.Name, stats.Pct(base.MispredictRate()), stats.Pct(pgu.MispredictRate()),
					stats.N(pgu.InsertedBits), stats.Ratio(base.MispredictRate(), pgu.MispredictRate()))
			}

			hists := []int{2, 4, 6, 8, 10, 12}
			if cfg.Quick {
				hists = []int{4, 8}
			}
			sweep := stats.NewTable("E4b: geomean misprediction rate vs history length (12-bit table)",
				"history bits", "rate base", "rate pgu-all", "improvement")
			for _, h := range hists {
				hb := h
				rb, err := geoRates(ctx, s, func(*Entry) core.EvalConfig {
					return core.EvalConfig{Predictor: sim.For("gshare", defTableBits, hb).MustNew()}
				})
				if err != nil {
					return nil, err
				}
				rp, err := geoRates(ctx, s, func(*Entry) core.EvalConfig {
					return core.EvalConfig{
						Predictor: sim.For("gshare", defTableBits, hb).MustNew(),
						PGU:       core.PGUAll, PGUDelay: defPGUDelay,
					}
				})
				if err != nil {
					return nil, err
				}
				sweep.AddRow(stats.N(h), stats.Pct(rb), stats.Pct(rp), stats.Ratio(rb, rp))
			}
			return []*stats.Table{per, sweep}, nil
		},
	}
}

// E5 — both mechanisms combined.
func e5() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "SFPF and PGU combined",
		Paper: "figure: misprediction rate for baseline, +SFPF, +PGU, +both",
		Expect: "the mechanisms are complementary (one removes false-path branches, the other " +
			"restores correlation); combined is at least as good as the better individual one on most workloads",
		Run: func(ctx context.Context, s *Suite, cfg Config) ([]*stats.Table, error) {
			type row struct{ base, sf, pg, both core.Metrics }
			rows, err := overEntries(ctx, s, func(e *Entry) (row, error) {
				return row{
					base: core.Evaluate(e.ConvTrace, core.EvalConfig{Predictor: newGshare()}),
					sf: core.Evaluate(e.ConvTrace, core.EvalConfig{
						Predictor: newGshare(), UseSFPF: true, ResolveDelay: defResolve,
					}),
					pg: core.Evaluate(e.ConvTrace, core.EvalConfig{
						Predictor: newGshare(), PGU: core.PGUAll, PGUDelay: defPGUDelay,
					}),
					both: core.Evaluate(e.ConvTrace, core.EvalConfig{
						Predictor: newGshare(), UseSFPF: true, ResolveDelay: defResolve,
						PGU: core.PGUAll, PGUDelay: defPGUDelay,
					}),
				}, nil
			})
			if err != nil {
				return nil, err
			}
			t := stats.NewTable("E5: misprediction rate on predicated code (gshare 12/8)",
				"workload", "base", "+sfpf", "+pgu", "+both", "MPKI base", "MPKI both")
			var rb, rs, rp, rc []float64
			for i, e := range s.Entries {
				r := rows[i]
				t.AddRow(e.Name, stats.Pct(r.base.MispredictRate()), stats.Pct(r.sf.MispredictRate()),
					stats.Pct(r.pg.MispredictRate()), stats.Pct(r.both.MispredictRate()),
					stats.F2(r.base.MPKI()), stats.F2(r.both.MPKI()))
				rb = append(rb, r.base.MispredictRate())
				rs = append(rs, r.sf.MispredictRate())
				rp = append(rp, r.pg.MispredictRate())
				rc = append(rc, r.both.MispredictRate())
			}
			t.AddRow("geomean", stats.Pct(stats.Geomean(rb)), stats.Pct(stats.Geomean(rs)),
				stats.Pct(stats.Geomean(rp)), stats.Pct(stats.Geomean(rc)), "", "")
			return []*stats.Table{t}, nil
		},
	}
}

// E6 — end-to-end performance on the timing model.
func e6() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Pipeline performance: branching vs predicated vs predicated+mechanisms",
		Paper: "figure: speedup of predicated code with the proposed predictors over branching code",
		Expect: "predication wins on hard-to-predict workloads and costs a little on predictable ones; " +
			"SFPF and PGU recover most of the predictor-induced losses and extend the wins",
		Run: func(ctx context.Context, s *Suite, cfg Config) ([]*stats.Table, error) {
			type row struct {
				orig                  pipeline.Stats
				conv, sfpf, pgu, both uint64 // cycles
			}
			rows, err := overEntries(ctx, s, func(e *Entry) (row, error) {
				orig, err := pipeline.Run(e.Orig, pipeline.DefaultConfig(newGshare()), cfg.Limit)
				if err != nil {
					return row{}, err
				}
				conv, err := pipeline.Run(e.Conv, pipeline.DefaultConfig(newGshare()), cfg.Limit)
				if err != nil {
					return row{}, err
				}
				cs := pipeline.DefaultConfig(newGshare())
				cs.UseSFPF = true
				sfpf, err := pipeline.Run(e.Conv, cs, cfg.Limit)
				if err != nil {
					return row{}, err
				}
				cp := pipeline.DefaultConfig(newGshare())
				cp.PGU = core.PGUAll
				pgu, err := pipeline.Run(e.Conv, cp, cfg.Limit)
				if err != nil {
					return row{}, err
				}
				cb := pipeline.DefaultConfig(newGshare())
				cb.UseSFPF = true
				cb.PGU = core.PGUAll
				both, err := pipeline.Run(e.Conv, cb, cfg.Limit)
				if err != nil {
					return row{}, err
				}
				return row{orig: orig, conv: conv.Cycles, sfpf: sfpf.Cycles,
					pgu: pgu.Cycles, both: both.Cycles}, nil
			})
			if err != nil {
				return nil, err
			}
			t := stats.NewTable("E6: cycles and speedup over branching code (gshare 12/8, 10-cycle penalty)",
				"workload", "cycles orig", "IPC orig", "speedup conv", "conv+sfpf", "conv+pgu", "conv+both")
			var sp1, sp2, sp3, sp4 []float64
			for i, e := range s.Entries {
				r := rows[i]
				o := float64(r.orig.Cycles)
				t.AddRow(e.Name, stats.N(r.orig.Cycles), stats.F2(r.orig.IPC()),
					stats.Ratio(o, float64(r.conv)),
					stats.Ratio(o, float64(r.sfpf)),
					stats.Ratio(o, float64(r.pgu)),
					stats.Ratio(o, float64(r.both)))
				sp1 = append(sp1, o/float64(r.conv))
				sp2 = append(sp2, o/float64(r.sfpf))
				sp3 = append(sp3, o/float64(r.pgu))
				sp4 = append(sp4, o/float64(r.both))
			}
			t.AddRow("geomean", "", "",
				fmt.Sprintf("%.2fx", stats.Geomean(sp1)),
				fmt.Sprintf("%.2fx", stats.Geomean(sp2)),
				fmt.Sprintf("%.2fx", stats.Geomean(sp3)),
				fmt.Sprintf("%.2fx", stats.Geomean(sp4)))
			return []*stats.Table{t}, nil
		},
	}
}

// E7 — sensitivity to the predicate resolve delay.
func e7() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "SFPF coverage vs predicate resolve delay",
		Paper: "sensitivity analysis: how deep pipelines (late predicate resolution) erode the filter",
		Expect: "filter coverage falls monotonically as the resolve delay grows; misprediction rate " +
			"degrades back toward the unfiltered baseline",
		Run: func(ctx context.Context, s *Suite, cfg Config) ([]*stats.Table, error) {
			delays := []uint64{0, 2, 4, 6, 8, 12, 16, 24}
			if cfg.Quick {
				delays = []uint64{0, 6, 16}
			}
			t := stats.NewTable("E7: geomean SFPF coverage and misprediction rate vs resolve delay (gshare 12/8)",
				"resolve delay", "coverage", "rate")
			for _, d := range delays {
				d := d
				pairs, err := overEntries(ctx, s, func(e *Entry) ([2]float64, error) {
					m := core.Evaluate(e.ConvTrace, core.EvalConfig{
						Predictor: newGshare(), UseSFPF: true, ResolveDelay: d,
					})
					return [2]float64{m.FilterCoverage(), m.MispredictRate()}, nil
				})
				if err != nil {
					return nil, err
				}
				var cov, rate []float64
				for _, p := range pairs {
					cov = append(cov, p[0])
					rate = append(rate, p[1])
				}
				t.AddRow(stats.N(d), stats.Pct(stats.Mean(cov)), stats.Pct(stats.Geomean(rate)))
			}
			return []*stats.Table{t}, nil
		},
	}
}

// E8 — PGU insertion-policy ablation.
func e8() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "PGU insertion policy ablation",
		Paper: "design-space discussion: which predicate defines should update the history",
		Expect: "more insertion gives more correlation but consumes history capacity; " +
			"region/branch-guard policies spend fewer bits for most of the benefit",
		Run: func(ctx context.Context, s *Suite, cfg Config) ([]*stats.Table, error) {
			policies := []core.PGUPolicy{core.PGUOff, core.PGURegionGuards, core.PGUBranchGuards, core.PGUAll}
			t := stats.NewTable("E8: geomean misprediction rate per insertion policy (gshare 12/8)",
				"policy", "rate", "inserted bits (suite)")
			for _, pol := range policies {
				p := pol
				type cell struct {
					rate float64
					bits uint64
				}
				cells, err := overEntries(ctx, s, func(e *Entry) (cell, error) {
					m := core.Evaluate(e.ConvTrace, core.EvalConfig{
						Predictor: newGshare(), PGU: p, PGUDelay: defPGUDelay,
					})
					return cell{rate: m.MispredictRate(), bits: m.InsertedBits}, nil
				})
				if err != nil {
					return nil, err
				}
				var rates []float64
				var bits uint64
				for _, c := range cells {
					rates = append(rates, c.rate)
					bits += c.bits
				}
				t.AddRow(p.String(), stats.Pct(stats.Geomean(rates)), stats.N(bits))
			}
			return []*stats.Table{t}, nil
		},
	}
}

// E10 — compare scheduling ablation.
func e10() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Compare scheduling ablation (what feeds the filter)",
		Paper: "methodology dependency: the paper's compiler schedules compares early; this quantifies how much the SFPF relies on that",
		Expect: "without compare scheduling, guard defines sit next to their branches, guards rarely " +
			"resolve before fetch, and filter coverage collapses",
		Run: func(ctx context.Context, s *Suite, cfg Config) ([]*stats.Table, error) {
			rows, err := overEntries(ctx, s, func(e *Entry) ([2]float64, error) {
				sched := core.Evaluate(e.ConvTrace, core.EvalConfig{
					Predictor: newGshare(), UseSFPF: true, ResolveDelay: defResolve,
				})
				rawTr, err := e.Unscheduled()
				if err != nil {
					return [2]float64{}, err
				}
				unsched := core.Evaluate(rawTr, core.EvalConfig{
					Predictor: newGshare(), UseSFPF: true, ResolveDelay: defResolve,
				})
				return [2]float64{sched.FilterCoverage(), unsched.FilterCoverage()}, nil
			})
			if err != nil {
				return nil, err
			}
			t := stats.NewTable("E10: SFPF coverage with and without compare scheduling (gshare 12/8, resolve delay 6)",
				"workload", "coverage scheduled", "coverage unscheduled")
			for i, e := range s.Entries {
				t.AddRow(e.Name, stats.Pct(rows[i][0]), stats.Pct(rows[i][1]))
			}
			return []*stats.Table{t}, nil
		},
	}
}

// E11 — profile-guided hyperblock selection.
func e11() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Profile-guided vs greedy if-conversion",
		Paper: "methodology: the paper's IMPACT binaries used profile-driven hyperblock selection; this reproduces that selection and its effect",
		Expect: "profile-guided selection skips regions whose nullification cost exceeds their " +
			"misprediction savings, eliminating the pathological predication losses greedy " +
			"conversion shows, at the price of converting less",
		Run: func(ctx context.Context, s *Suite, cfg Config) ([]*stats.Table, error) {
			type row struct {
				profRegions            int
				orig, greedy, profiled uint64 // cycles
			}
			rows, err := overEntries(ctx, s, func(e *Entry) (row, error) {
				pc, prep, _, err := e.Profiled()
				if err != nil {
					return row{}, err
				}
				orig, err := pipeline.Run(e.Orig, pipeline.DefaultConfig(newGshare()), cfg.Limit)
				if err != nil {
					return row{}, err
				}
				greedy, err := pipeline.Run(e.Conv, pipeline.DefaultConfig(newGshare()), cfg.Limit)
				if err != nil {
					return row{}, err
				}
				profiled, err := pipeline.Run(pc, pipeline.DefaultConfig(newGshare()), cfg.Limit)
				if err != nil {
					return row{}, err
				}
				return row{profRegions: len(prep.Regions), orig: orig.Cycles,
					greedy: greedy.Cycles, profiled: profiled.Cycles}, nil
			})
			if err != nil {
				return nil, err
			}
			t := stats.NewTable("E11: speedup over branching code, greedy vs profile-guided conversion (gshare 12/8)",
				"workload", "greedy regions", "profiled regions", "speedup greedy", "speedup profiled")
			var sg, sp []float64
			for i, e := range s.Entries {
				r := rows[i]
				o := float64(r.orig)
				t.AddRow(e.Name, stats.N(len(e.Report.Regions)), stats.N(r.profRegions),
					stats.Ratio(o, float64(r.greedy)), stats.Ratio(o, float64(r.profiled)))
				sg = append(sg, o/float64(r.greedy))
				sp = append(sp, o/float64(r.profiled))
			}
			t.AddRow("geomean", "", "",
				fmt.Sprintf("%.2fx", stats.Geomean(sg)), fmt.Sprintf("%.2fx", stats.Geomean(sp)))
			return []*stats.Table{t}, nil
		},
	}
}

// E12 — issue-width sensitivity.
func e12() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "Predication trade-off vs issue width",
		Paper: "context: the paper targets wide EPIC machines; width amortises nullified slots while misprediction penalties stay flat",
		Expect: "the geomean speedup of predicated code (and of predicated+mechanisms) over branching " +
			"code grows with issue width",
		Run: func(ctx context.Context, s *Suite, cfg Config) ([]*stats.Table, error) {
			widths := []int{1, 2, 4, 8}
			if cfg.Quick {
				widths = []int{1, 4}
			}
			t := stats.NewTable("E12: geomean speedup over branching code vs issue width (gshare 12/8)",
				"issue width", "IPC orig (geomean)", "speedup conv", "speedup conv+both")
			for _, w := range widths {
				w := w
				type cell struct{ ipc, sc, sb float64 }
				cells, err := overEntries(ctx, s, func(e *Entry) (cell, error) {
					mk := func() pipeline.Config {
						c := pipeline.DefaultConfig(newGshare())
						c.IssueWidth = w
						return c
					}
					orig, err := pipeline.Run(e.Orig, mk(), cfg.Limit)
					if err != nil {
						return cell{}, err
					}
					conv, err := pipeline.Run(e.Conv, mk(), cfg.Limit)
					if err != nil {
						return cell{}, err
					}
					cb := mk()
					cb.UseSFPF = true
					cb.PGU = core.PGUAll
					both, err := pipeline.Run(e.Conv, cb, cfg.Limit)
					if err != nil {
						return cell{}, err
					}
					return cell{
						ipc: orig.IPC(),
						sc:  float64(orig.Cycles) / float64(conv.Cycles),
						sb:  float64(orig.Cycles) / float64(both.Cycles),
					}, nil
				})
				if err != nil {
					return nil, err
				}
				var ipcs, sc, sb []float64
				for _, c := range cells {
					ipcs = append(ipcs, c.ipc)
					sc = append(sc, c.sc)
					sb = append(sb, c.sb)
				}
				t.AddRow(stats.N(w), stats.F2(stats.Geomean(ipcs)),
					fmt.Sprintf("%.3fx", stats.Geomean(sc)),
					fmt.Sprintf("%.3fx", stats.Geomean(sb)))
			}
			return []*stats.Table{t}, nil
		},
	}
}

// E13 — PGU across predictor architectures.
func e13() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "PGU across predictor architectures (counters vs agree vs perceptron)",
		Paper: "extension: the paper used counter-based global predictors; this asks whether the mechanism generalises",
		Expect: "every global-history architecture benefits on correlated workloads, and none regresses " +
			"materially on the rest: the mechanism is predictor-agnostic, needing only an open history",
		Run: func(ctx context.Context, s *Suite, cfg Config) ([]*stats.Table, error) {
			specs := []sim.Spec{
				sim.For("gshare", 12, 8),
				sim.For("agree", 12, 8),
				sim.For("perceptron", 8, 24),
			}
			t := stats.NewTable("E13: geomean misprediction rate on predicated code, base vs PGU-all",
				"predictor", "rate base", "rate pgu-all", "improvement", "worst per-workload ratio")
			for _, sp := range specs {
				sp := sp
				type cell struct {
					rb, rp            float64
					missBase, missPGU uint64
				}
				cells, err := overEntries(ctx, s, func(e *Entry) (cell, error) {
					base := core.Evaluate(e.ConvTrace, core.EvalConfig{Predictor: sp.MustNew()})
					pgu := core.Evaluate(e.ConvTrace, core.EvalConfig{
						Predictor: sp.MustNew(), PGU: core.PGUAll, PGUDelay: defPGUDelay,
					})
					return cell{
						rb: base.MispredictRate(), rp: pgu.MispredictRate(),
						missBase: base.Mispredicts, missPGU: pgu.Mispredicts,
					}, nil
				})
				if err != nil {
					return nil, err
				}
				var rb, rp []float64
				worst := 0.0
				for _, c := range cells {
					rb = append(rb, c.rb)
					rp = append(rp, c.rp)
					// ratio > 1 means PGU hurt this workload; tiny baselines
					// are excluded as noise.
					if c.missBase >= 50 {
						if r := float64(c.missPGU) / float64(c.missBase); r > worst {
							worst = r
						}
					}
				}
				gb, gp := stats.Geomean(rb), stats.Geomean(rp)
				t.AddRow(sp.MustNew().Name(), stats.Pct(gb), stats.Pct(gp), stats.Ratio(gb, gp),
					stats.F2(worst))
			}
			t.AddNote("worst per-workload ratio: pgu/base misprediction counts; > 1 means insertion hurt that workload")
			return []*stats.Table{t}, nil
		},
	}
}

// E14 — return-address stack depth on the recursive workload.
func e14() Experiment {
	return Experiment{
		ID:    "E14",
		Title: "Return-address stack depth on recursive code",
		Paper: "front-end context: the paper assumes targets are handled; this quantifies the indirect-branch side on the one recursive workload",
		Expect: "misses fall monotonically with stack depth and reach zero once the depth covers the " +
			"recursion; cycles follow",
		Run: func(ctx context.Context, s *Suite, cfg Config) ([]*stats.Table, error) {
			var entry *Entry
			for _, e := range s.Entries {
				if e.Name == "queens" {
					entry = e
				}
			}
			if entry == nil {
				return nil, fmt.Errorf("queens workload missing")
			}
			depths := []int{1, 2, 4, 8, 16}
			if cfg.Quick {
				depths = []int{2, 8}
			}
			type point struct {
				label   string
				depth   int
				disable bool
			}
			points := []point{{label: "0 (off)", disable: true}}
			for _, d := range depths {
				points = append(points, point{label: stats.N(d), depth: d})
			}
			rows, err := sim.Map(ctx, points, 0, func(_ context.Context, pt point) (pipeline.Stats, error) {
				c := pipeline.DefaultConfig(newGshare())
				c.RASDepth = pt.depth
				c.NoRAS = pt.disable
				return pipeline.Run(entry.Orig, c, cfg.Limit)
			})
			if err != nil {
				return nil, err
			}
			t := stats.NewTable("E14: RAS depth vs return mispredictions on queens (gshare 12/8)",
				"ras depth", "indirect branches", "misses", "cycles", "IPC")
			for i, pt := range points {
				st := rows[i]
				t.AddRow(pt.label, stats.N(st.IndirectBranches), stats.N(st.RASMisses),
					stats.N(st.Cycles), stats.F2(st.IPC()))
			}
			return []*stats.Table{t}, nil
		},
	}
}

// E9 — filtering known-true guards as well (extension).
func e9() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Filtering known-true guards (extension beyond the paper)",
		Paper: "the abstract claims only the known-false case; this quantifies the symmetric case",
		Expect: "guard-implies-taken branches with resolved true guards are also 100% predictable; " +
			"coverage roughly doubles on predicated code with near-50% path predicates",
		Run: func(ctx context.Context, s *Suite, cfg Config) ([]*stats.Table, error) {
			type row struct{ f, b core.Metrics }
			rows, err := overEntries(ctx, s, func(e *Entry) (row, error) {
				return row{
					f: core.Evaluate(e.ConvTrace, core.EvalConfig{
						Predictor: newGshare(), UseSFPF: true, ResolveDelay: defResolve,
					}),
					b: core.Evaluate(e.ConvTrace, core.EvalConfig{
						Predictor: newGshare(), UseSFPF: true, FilterTrue: true, ResolveDelay: defResolve,
					}),
				}, nil
			})
			if err != nil {
				return nil, err
			}
			t := stats.NewTable("E9: SFPF false-only vs both directions (gshare 12/8, resolve delay 6)",
				"workload", "coverage false-only", "coverage both", "rate false-only", "rate both", "errors")
			var errs uint64
			for i, e := range s.Entries {
				f, b := rows[i].f, rows[i].b
				errs += b.FilterErrors
				t.AddRow(e.Name, stats.Pct(f.FilterCoverage()), stats.Pct(b.FilterCoverage()),
					stats.Pct(f.MispredictRate()), stats.Pct(b.MispredictRate()), stats.N(b.FilterErrors))
			}
			t.AddNote("total filter errors: %d (must be 0)", errs)
			return []*stats.Table{t}, nil
		},
	}
}
