package harness

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

var (
	suiteOnce sync.Once
	suite     *Suite
	suiteErr  error
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = NewSuite(Config{})
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suite
}

func TestSuitePreparation(t *testing.T) {
	s := testSuite(t)
	if len(s.Entries) < 10 {
		t.Fatalf("suite has %d entries", len(s.Entries))
	}
	for _, e := range s.Entries {
		if e.Orig == nil || e.Conv == nil || e.OrigTrace == nil || e.ConvTrace == nil {
			t.Fatalf("%s incompletely prepared", e.Name)
		}
		if e.OrigTrace.Branches == 0 {
			t.Errorf("%s: empty original trace", e.Name)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) < 9 {
		t.Fatalf("%d experiments registered", len(all))
	}
	for i, e := range all {
		if i > 0 && idOrd(all[i-1].ID) >= idOrd(e.ID) {
			t.Errorf("experiments not in natural order: %s then %s", all[i-1].ID, e.ID)
		}
		if e.Run == nil {
			t.Errorf("%s has no Run", e.ID)
		}
	}
	if _, err := ByID("E1"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	s := testSuite(t)
	cfg := Config{Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(context.Background(), s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Columns) == 0 || len(tb.Rows) == 0 {
					t.Errorf("empty table %q", tb.Title)
				}
			}
		})
	}
}

// The remaining tests assert the *scientific shapes* the reproduction is
// supposed to show (see DESIGN.md). They are the executable form of
// EXPERIMENTS.md.

func TestShapeE1ConversionRemovesBranches(t *testing.T) {
	s := testSuite(t)
	var before, after uint64
	for _, e := range s.Entries {
		before += e.OrigTrace.Branches
		after += e.ConvTrace.Branches
	}
	if float64(after) > 0.85*float64(before) {
		t.Errorf("conversion removed too little: %d -> %d dynamic branches", before, after)
	}
}

func TestShapeE3FilterNeverWrong(t *testing.T) {
	s := testSuite(t)
	var filtered, errors uint64
	for _, e := range s.Entries {
		m := core.Evaluate(e.ConvTrace, core.EvalConfig{
			Predictor: newGshare(), UseSFPF: true, FilterTrue: true,
			ResolveDelay: defResolve,
		})
		filtered += m.Filtered + m.FilteredTrue
		errors += m.FilterErrors
	}
	if filtered == 0 {
		t.Fatal("the filter never fired anywhere in the suite")
	}
	if errors != 0 {
		t.Fatalf("filter errors: %d — the 100%% accuracy claim fails", errors)
	}
}

func TestShapeE3FilterHelpsSomewhere(t *testing.T) {
	s := testSuite(t)
	helped := false
	for _, e := range s.Entries {
		base := core.Evaluate(e.ConvTrace, core.EvalConfig{Predictor: newGshare()})
		f := core.Evaluate(e.ConvTrace, core.EvalConfig{
			Predictor: newGshare(), UseSFPF: true, ResolveDelay: defResolve,
		})
		if f.Mispredicts < base.Mispredicts*9/10 && base.Mispredicts > 100 {
			helped = true
		}
		if f.Mispredicts > base.Mispredicts+base.Mispredicts/20+5 {
			t.Errorf("%s: SFPF made things notably worse: %d -> %d",
				e.Name, base.Mispredicts, f.Mispredicts)
		}
	}
	if !helped {
		t.Error("SFPF helped nowhere in the suite")
	}
}

func TestShapeE4PGUHelpsCorrelatedWorkloads(t *testing.T) {
	s := testSuite(t)
	for _, name := range []string{"corr", "bsearch"} {
		var entry *Entry
		for _, e := range s.Entries {
			if e.Name == name {
				entry = e
			}
		}
		if entry == nil {
			t.Fatalf("workload %s missing", name)
		}
		base := core.Evaluate(entry.ConvTrace, core.EvalConfig{Predictor: newGshare()})
		pgu := core.Evaluate(entry.ConvTrace, core.EvalConfig{
			Predictor: newGshare(), PGU: core.PGUAll, PGUDelay: defPGUDelay,
		})
		if pgu.Mispredicts*10 > base.Mispredicts*9 {
			t.Errorf("%s: PGU did not clearly help: %d -> %d mispredicts",
				name, base.Mispredicts, pgu.Mispredicts)
		}
	}
}

func TestShapeE7CoverageMonotone(t *testing.T) {
	s := testSuite(t)
	e7, err := ByID("E7")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e7.Run(context.Background(), s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		return v
	}
	for i := 1; i < len(rows); i++ {
		if parse(rows[i][1]) > parse(rows[i-1][1])+1e-9 {
			t.Errorf("coverage not monotone at row %d: %v", i, rows)
		}
	}
	// Zero delay must beat the largest delay.
	if parse(rows[0][1]) <= parse(rows[len(rows)-1][1]) {
		t.Errorf("coverage flat across delays: %v", rows)
	}
}

func TestShapeE8InsertionMonotone(t *testing.T) {
	s := testSuite(t)
	e8, err := ByID("E8")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e8.Run(context.Background(), s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows // off, region, branch, all
	bits := func(i int) uint64 {
		v, err := strconv.ParseUint(rows[i][2], 10, 64)
		if err != nil {
			t.Fatalf("bad bits cell %q", rows[i][2])
		}
		return v
	}
	if !(bits(0) == 0 && bits(0) <= bits(1) && bits(1) <= bits(2) && bits(2) <= bits(3)) {
		t.Errorf("insertion counts not monotone: %v", rows)
	}
}

func TestShapeE6MechanismsRecoverLosses(t *testing.T) {
	// Suite-wide, predicated code with both mechanisms must beat plain
	// predicated code (geomean speedup column increases). Cheap proxy:
	// compare the geomean rows of E6.
	s := testSuite(t)
	e6, err := ByID("E6")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e6.Run(context.Background(), s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	last := rows[len(rows)-1]
	if last[0] != "geomean" {
		t.Fatalf("expected geomean row, got %v", last)
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q", cell)
		}
		return v
	}
	conv, both := parse(last[3]), parse(last[6])
	if both < conv {
		t.Errorf("mechanisms made predicated code slower overall: %.3f -> %.3f", conv, both)
	}
}

func TestShapeE11ProfiledNotWorseOverall(t *testing.T) {
	s := testSuite(t)
	e11, err := ByID("E11")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e11.Run(context.Background(), s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	last := rows[len(rows)-1]
	if last[0] != "geomean" {
		t.Fatalf("no geomean row: %v", last)
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		return v
	}
	greedy, profiled := parse(last[3]), parse(last[4])
	if profiled < greedy-0.005 {
		t.Errorf("profile-guided selection worse than greedy overall: %.3f vs %.3f", profiled, greedy)
	}
	// Per workload, profiled conversion must never be a clear regression
	// below 1.00x (the whole point is refusing losses).
	for _, row := range rows[:len(rows)-1] {
		if v := parse(row[4]); v < 0.90 {
			t.Errorf("%s: profiled speedup %.2fx is a clear loss", row[0], v)
		}
	}
}

func TestShapeE12WidthMonotone(t *testing.T) {
	s := testSuite(t)
	e12, err := ByID("E12")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e12.Run(context.Background(), s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		return v
	}
	for i := 1; i < len(rows); i++ {
		if parse(rows[i][2]) < parse(rows[i-1][2])-1e-9 {
			t.Errorf("conv speedup not monotone in width: %v", rows)
		}
	}
	if parse(rows[len(rows)-1][2]) <= parse(rows[0][2]) {
		t.Errorf("width did not grow the predication win: %v", rows)
	}
}

func TestShapeE13AllArchitecturesBenefit(t *testing.T) {
	s := testSuite(t)
	e13, err := ByID("E13")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e13.Run(context.Background(), s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		impr, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[3])
		}
		if impr < 1.0 {
			t.Errorf("%s: PGU made the geomean worse (%.2fx)", row[0], impr)
		}
		worst, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[4])
		}
		if worst > 1.5 {
			t.Errorf("%s: PGU hurt some substantial workload by %.2fx", row[0], worst)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	results, err := RunAll(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 9 {
		t.Fatalf("%d results", len(results))
	}
}
