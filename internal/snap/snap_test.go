package snap

import (
	"bytes"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/ifconv"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workload"
)

// testTrace collects one if-converted workload trace (real predicate
// traffic for the SFPF and PGU paths), memoized across tests.
var testTraceMemo *trace.Trace

func testTrace(t *testing.T) *trace.Trace {
	t.Helper()
	if testTraceMemo != nil {
		return testTraceMemo
	}
	p := workload.ByNameMust("scan").Build()
	cp, _, err := ifconv.Convert(p, ifconv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Collect(cp, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) < 100 {
		t.Fatalf("trace too short: %d events", len(tr.Events))
	}
	testTraceMemo = tr
	return tr
}

func fullCfg(p bpred.Predictor) core.EvalConfig {
	return core.EvalConfig{
		Predictor: p,
		UseSFPF:   true, FilterTrue: true,
		ResolveDelay: core.DefaultResolveDelay,
		PGU:          core.PGUAll, PGUDelay: core.DefaultPGUDelay,
		PerBranch: true,
	}
}

// TestResumeByteIdenticalAllKinds is the package's core guarantee: for
// every registry kind, snapshotting mid-stream and restoring into fresh
// objects finishes the trace with metrics and final state identical to
// an uninterrupted run.
func TestResumeByteIdenticalAllKinds(t *testing.T) {
	tr := testTrace(t)
	for _, kind := range sim.Kinds() {
		t.Run(kind, func(t *testing.T) {
			spec := sim.MustParse(kind)
			cut := len(tr.Events) * 2 / 5

			// Uninterrupted run.
			full := core.NewEvaluator(fullCfg(spec.MustNew()))
			for i := range tr.Events {
				full.Feed(&tr.Events[i])
			}
			full.AddInsts(tr.Insts)

			// Interrupted run: feed the prefix, snapshot, restore, finish.
			head := core.NewEvaluator(fullCfg(spec.MustNew()))
			for i := 0; i < cut; i++ {
				head.Feed(&tr.Events[i])
			}
			meta := Meta{SessionID: "s-test", Events: uint64(cut), Batches: 1, LastSeq: 7}
			blob, err := Encode(spec, head, meta)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Decode(blob)
			if err != nil {
				t.Fatal(err)
			}
			if res.Meta != meta {
				t.Fatalf("meta round-trip: got %+v want %+v", res.Meta, meta)
			}
			if res.Spec.String() != spec.String() {
				t.Fatalf("spec round-trip: got %s want %s", res.Spec, spec)
			}
			for i := cut; i < len(tr.Events); i++ {
				res.Eval.Feed(&tr.Events[i])
			}
			res.Eval.AddInsts(tr.Insts)

			if !reflect.DeepEqual(res.Eval.Metrics(), full.Metrics()) {
				t.Fatalf("metrics diverge after resume:\nresumed %+v\nfull    %+v",
					res.Eval.Metrics(), full.Metrics())
			}
			// Stronger than metrics: the final snapshots must be
			// byte-identical, i.e. every table, history, and queue agrees.
			endMeta := Meta{SessionID: "s-test", Events: uint64(len(tr.Events)), Batches: 2, LastSeq: 9}
			a, err := Encode(spec, res.Eval, endMeta)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Encode(spec, full, endMeta)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatal("final snapshots differ between resumed and uninterrupted runs")
			}
		})
	}
}

// TestEncodeDecodeIdentity checks the canonical-encoding property the
// fuzz target also leans on: Encode(Decode(b)) == b for valid snapshots.
func TestEncodeDecodeIdentity(t *testing.T) {
	tr := testTrace(t)
	spec := sim.MustParse("perceptron")
	e := core.NewEvaluator(fullCfg(spec.MustNew()))
	for i := range tr.Events {
		e.Feed(&tr.Events[i])
	}
	blob, err := Encode(spec, e, Meta{SessionID: "id-1", Events: 3, Batches: 2, LastSeq: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Encode(res.Spec, res.Eval, res.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatal("Encode(Decode(blob)) differs from blob")
	}
}

func validSnapshot(t *testing.T) []byte {
	t.Helper()
	tr := testTrace(t)
	spec := sim.MustParse("gshare:10:8")
	e := core.NewEvaluator(fullCfg(spec.MustNew()))
	for i := 0; i < len(tr.Events)/2; i++ {
		e.Feed(&tr.Events[i])
	}
	blob, err := Encode(spec, e, Meta{SessionID: "sx", Events: 10, Batches: 2})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// refix recomputes the trailing checksum after a deliberate patch, so a
// test can reach validation paths beyond the CRC.
func refix(data []byte) []byte {
	body := data[:len(data)-4]
	return wire.AppendU32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

func TestDecodeRejectsTruncation(t *testing.T) {
	blob := validSnapshot(t)
	for n := 0; n < len(blob); n += 7 {
		if _, err := Decode(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	blob := validSnapshot(t)
	for i := 0; i < len(blob); i += 3 {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("byte %d flipped but snapshot decoded", i)
		}
	}
}

func TestDecodeVersionMismatch(t *testing.T) {
	blob := validSnapshot(t)
	bad := append([]byte(nil), blob...)
	bad[4] = 2 // version u32 little-endian low byte
	if _, err := Decode(refix(bad)); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}
}

func TestDecodeKeyMismatch(t *testing.T) {
	blob := validSnapshot(t)
	// The key is a hex string; find and flip one of its characters by
	// patching through a re-encode of a snapshot with modified config:
	// simplest is to locate the key bytes via a decode of the valid blob.
	res, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.Index(blob, []byte(res.Key))
	if idx < 0 {
		t.Fatal("key not found in encoding")
	}
	bad := append([]byte(nil), blob...)
	if bad[idx] == 'f' {
		bad[idx] = '0'
	} else {
		bad[idx] = 'f'
	}
	if _, err := Decode(refix(bad)); !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("patched key: got %v, want ErrKeyMismatch", err)
	}
}

func TestDecodeRejectsReservedFlags(t *testing.T) {
	blob := validSnapshot(t)
	res, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	// The flags byte directly follows the length-prefixed spec string.
	idx := 8 + 4 + len(res.Spec.String())
	bad := append([]byte(nil), blob...)
	bad[idx] |= 0x80
	if _, err := Decode(refix(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reserved flag bit: got %v, want ErrCorrupt", err)
	}
	bad = append([]byte(nil), blob...)
	bad[idx+1] = 9 // PGU policy out of range
	if _, err := Decode(refix(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad PGU policy: got %v, want ErrCorrupt", err)
	}
}

// TestDecodeRejectsNonCanonicalSpec hand-builds a snapshot whose spec
// string omits the default parameters; the decoder must refuse it even
// though it parses, keeping the encoding bijective.
func TestDecodeRejectsNonCanonicalSpec(t *testing.T) {
	spec := sim.MustParse("bimodal:4")
	e := core.NewEvaluator(core.EvalConfig{Predictor: spec.MustNew()})
	cfg := e.Config()

	buf := []byte{'P', '6', '4', 'S'}
	buf = wire.AppendU32(buf, Version)
	buf = wire.AppendString(buf, "bimodal") // parses, but not canonical
	buf = wire.AppendU8(buf, 0)
	buf = wire.AppendU8(buf, 0)
	buf = wire.AppendU64(buf, cfg.ResolveDelay)
	buf = wire.AppendU64(buf, cfg.PGUDelay)
	buf = wire.AppendString(buf, "")
	buf = wire.AppendU64(buf, 0)
	buf = wire.AppendU64(buf, 0)
	buf = wire.AppendU64(buf, 0)
	buf = wire.AppendString(buf, Key(spec, cfg))
	buf = wire.AppendBytes(buf, e.Predictor().(bpred.Stater).AppendState(nil))
	buf = wire.AppendBytes(buf, e.AppendState(nil))
	buf = wire.AppendU32(buf, crc32.ChecksumIEEE(buf))
	if _, err := Decode(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("non-canonical spec: got %v, want ErrCorrupt", err)
	}
}

// nonStater is a Predictor outside the registry, to exercise Encode's
// unsupported-predictor error.
type nonStater struct{}

func (nonStater) Name() string        { return "custom" }
func (nonStater) Predict(uint64) bool { return false }
func (nonStater) Update(uint64, bool) {}
func (nonStater) Reset()              {}

func TestEncodeErrors(t *testing.T) {
	e := core.NewEvaluator(core.EvalConfig{Predictor: nonStater{}})
	if _, err := Encode(sim.MustParse("gshare"), e, Meta{}); err == nil {
		t.Fatal("non-Stater predictor encoded")
	}
	e2 := core.NewEvaluator(core.EvalConfig{Predictor: sim.MustParse("gshare").MustNew()})
	if _, err := Encode(sim.Spec{Kind: "nope"}, e2, Meta{}); err == nil {
		t.Fatal("unknown spec encoded")
	}
}

// TestKeySeparatesConfigs: distinct configurations must have distinct
// keys, identical ones identical keys.
func TestKeySeparatesConfigs(t *testing.T) {
	spec := sim.MustParse("gshare")
	base := core.EvalConfig{UseSFPF: true, ResolveDelay: 6, PGU: core.PGUAll, PGUDelay: 2}
	if Key(spec, base) != Key(spec, base) {
		t.Fatal("key not deterministic")
	}
	variants := []core.EvalConfig{
		{ResolveDelay: 6, PGU: core.PGUAll, PGUDelay: 2},
		{UseSFPF: true, ResolveDelay: 7, PGU: core.PGUAll, PGUDelay: 2},
		{UseSFPF: true, ResolveDelay: 6, PGU: core.PGUOff, PGUDelay: 2},
		{UseSFPF: true, ResolveDelay: 6, PGU: core.PGUAll, PGUDelay: 3},
		{UseSFPF: true, FilterTrue: true, ResolveDelay: 6, PGU: core.PGUAll, PGUDelay: 2},
	}
	seen := map[string]bool{Key(spec, base): true}
	for i, v := range variants {
		k := Key(spec, v)
		if seen[k] {
			t.Fatalf("variant %d collides", i)
		}
		seen[k] = true
	}
	if seen[Key(sim.MustParse("gshare:13:8"), base)] {
		t.Fatal("different spec collides")
	}
}
