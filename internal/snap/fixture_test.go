package snap

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// -update regenerates the committed fixture snapshots from the current
// encoder. Only use it after an intentional, version-bumped format
// change (or a change to the fixture workload itself); the whole point
// of the fixtures is that unintentional encoding drift fails loudly.
var updateFixtures = flag.Bool("update", false, "rewrite testdata fixture snapshots")

// fixtureCases pins one snapshot per structurally distinct predictor
// state encoding: packed 2-bit counter tables (gshare), the SoA
// perceptron weight matrix, and the agree predictor's set-associative
// bias table riding alongside a packed table.
var fixtureCases = []struct {
	file string
	spec string
}{
	{"gshare_12_8.p64s", "gshare:12:8"},
	{"perceptron_8_24.p64s", "perceptron:8:24"},
	{"agree_12_8.p64s", "agree:12:8"},
}

// fixtureMeta is deliberately non-zero in every field so the fixtures
// also pin the meta section's layout.
var fixtureMeta = Meta{SessionID: "fixture", Events: 12345, Batches: 11, LastSeq: 42}

// fixtureEval builds the deterministic mid-stream evaluator every
// fixture snapshots: the standard test workload fed up to the cut point
// under the full-feature config.
func fixtureEval(t *testing.T, spec sim.Spec) (*core.Evaluator, int) {
	t.Helper()
	tr := testTrace(t)
	cut := len(tr.Events) * 2 / 5
	e := core.NewEvaluator(fullCfg(spec.MustNew()))
	for i := 0; i < cut; i++ {
		e.Feed(&tr.Events[i])
	}
	return e, cut
}

// TestFixtureCompat is the cross-version compatibility gate: committed
// .p64s snapshots written by earlier builds must still decode, resume to
// the same end state as an uninterrupted run, and re-encode
// byte-identically. Internal state layout changes (counter packing,
// weight layout) are free to happen, but only if they keep the canonical
// wire encoding stable; anything else must bump snap.Version and
// regenerate with -update.
func TestFixtureCompat(t *testing.T) {
	tr := testTrace(t)
	for _, tc := range fixtureCases {
		t.Run(tc.spec, func(t *testing.T) {
			spec := sim.MustParse(tc.spec)
			path := filepath.Join("testdata", tc.file)

			if *updateFixtures {
				e, _ := fixtureEval(t, spec)
				blob, err := Encode(spec, e, fixtureMeta)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, blob, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, len(blob))
				return
			}

			fixture, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with: go test ./internal/snap -run Fixture -update)", err)
			}

			// The current encoder must still produce the committed bytes
			// for the same deterministic state — this is what catches a
			// table-layout refactor that silently changes the canonical
			// encoding instead of packing/unpacking at the boundary.
			e, cut := fixtureEval(t, spec)
			blob, err := Encode(spec, e, fixtureMeta)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, fixture) {
				t.Fatalf("encoding drift: Encode produced %d bytes != committed fixture %d bytes", len(blob), len(fixture))
			}

			// Decode → re-encode must reproduce the artifact exactly.
			res, err := Decode(fixture)
			if err != nil {
				t.Fatal(err)
			}
			if res.Meta != fixtureMeta {
				t.Fatalf("meta: got %+v want %+v", res.Meta, fixtureMeta)
			}
			re, err := Encode(res.Spec, res.Eval, res.Meta)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re, fixture) {
				t.Fatal("re-encode of decoded fixture is not byte-identical")
			}

			// Resuming from the fixture must finish the trace exactly like
			// an uninterrupted run.
			full := core.NewEvaluator(fullCfg(spec.MustNew()))
			for i := range tr.Events {
				full.Feed(&tr.Events[i])
			}
			for i := cut; i < len(tr.Events); i++ {
				res.Eval.Feed(&tr.Events[i])
			}
			if !reflect.DeepEqual(res.Eval.Metrics(), full.Metrics()) {
				t.Fatalf("metrics diverge after fixture resume:\nresumed %+v\nfull    %+v",
					res.Eval.Metrics(), full.Metrics())
			}
			endMeta := Meta{SessionID: "fixture", Events: uint64(len(tr.Events)), Batches: 12, LastSeq: 43}
			a, err := Encode(spec, res.Eval, endMeta)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Encode(spec, full, endMeta)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatal("final snapshots differ between fixture-resumed and uninterrupted runs")
			}
		})
	}
}
