package snap

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// FuzzSnapshotRoundTrip feeds arbitrary bytes to the snapshot decoder.
// Whatever it accepts must re-encode to the identical byte sequence (the
// encoding is canonical: one state, one byte sequence); everything else
// must fail with an error, never a panic or a partially restored
// evaluator.
func FuzzSnapshotRoundTrip(f *testing.F) {
	// Seed with real snapshots across predictor kinds — trained and
	// fresh, with and without optional sections — plus degenerate
	// prefixes so the fuzzer starts inside the valid format.
	for i, kind := range sim.Kinds() {
		spec := sim.MustParse(kind)
		cfg := core.EvalConfig{
			Predictor: spec.MustNew(),
			UseSFPF:   true, ResolveDelay: core.DefaultResolveDelay,
			PGU: core.PGUAll, PGUDelay: core.DefaultPGUDelay,
			PerBranch: i%2 == 0,
		}
		e := core.NewEvaluator(cfg)
		blob, err := Encode(spec, e, Meta{SessionID: kind, Events: uint64(i)})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
	}
	f.Add([]byte("P64S"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := Decode(data)
		if err != nil {
			return
		}
		again, err := Encode(res.Spec, res.Eval, res.Meta)
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("round trip changed the snapshot: %d bytes in, %d out", len(data), len(again))
		}
	})
}
