// Package snap is the durable-state subsystem: a versioned binary
// snapshot/restore format for evaluation sessions. A snapshot captures
// everything needed to resume a trace-driven evaluation byte-identically
// in another process — the predictor spec and full mechanism
// configuration, the predictor's mutable state (tables, histories,
// weights, the agree predictor's set-associative bias table), the
// evaluator's pending predicate-bit queue and accumulated metrics, and
// the serving session's counters — so predictor state becomes a movable
// artifact instead of dying with its process. The serving tier spills
// evicted sessions to disk in this format and warm-restores them on the
// next touch; the bprouter front tier migrates sessions between backends
// with it.
//
// # Format (P64S, version 1)
//
//	magic "P64S", u32 version
//	string predictor spec (canonical "kind:bits..." spelling)
//	u8 config flags (SFPF, FilterTrue, TrainFiltered, PerBranch; rest zero)
//	u8 PGU policy, u64 resolve delay, u64 PGU delay
//	string session ID, u64 events, u64 batches, u64 last batch seq
//	string config key (see Key; verified on decode)
//	bytes predictor state (length-prefixed; see bpred.Stater)
//	bytes evaluator state (length-prefixed; see core.Evaluator.AppendState)
//	u32 CRC-32 (IEEE) over every preceding byte
//
// Strings and byte sections carry u32 length prefixes; everything is
// little-endian (internal/wire). The encoding is canonical — one state,
// one byte sequence — and Decode enforces it (exact-length sections,
// canonical spec spelling, sorted per-branch stats, zero reserved bits),
// so Encode(Decode(b)) == b for every b Decode accepts. Corruption is
// detected by the checksum before any field is trusted; a snapshot from
// a future format version fails with ErrVersion so old binaries reject
// new state loudly instead of misparsing it.
//
// # Versioning rules
//
// The version number covers the whole layout: any change to field order,
// widths, or the per-kind predictor state encodings bumps it. Decoders
// accept exactly the versions they were built for — state restoration is
// exact-resume, so there is no sensible partial read of an unknown
// layout. Cross-version migration happens by draining a session through
// the old binary (finish or discard) rather than by in-place upgrade.
package snap

import (
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/bpred"
	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Version is the current snapshot format version.
const Version = 1

var magic = [4]byte{'P', '6', '4', 'S'}

// Decode errors. ErrCorrupt covers checksum failures, truncation, and
// every non-canonical or out-of-range field; ErrVersion specifically
// marks a structurally sound header with an unsupported version, and
// ErrKeyMismatch a snapshot whose embedded config key does not match
// the key recomputed from its own spec and config (a snapshot written
// by an incompatible configuration scheme).
var (
	ErrCorrupt     = errors.New("snap: corrupt snapshot")
	ErrVersion     = errors.New("snap: unsupported snapshot version")
	ErrKeyMismatch = errors.New("snap: config key mismatch")
)

// Meta carries the serving-session counters that ride along with the
// evaluator state, so a restored session resumes its lifetime totals and
// its batch-sequence dedup point.
type Meta struct {
	// SessionID is the owning session's identifier ("" outside serving).
	SessionID string
	// Events and Batches are the session's lifetime totals.
	Events  uint64
	Batches uint64
	// LastSeq is the highest applied client batch sequence number (0 if
	// the client never supplied sequence numbers). Restoring it is what
	// keeps retried batches idempotent across an eviction or migration.
	LastSeq uint64
}

// Restored is a decoded snapshot: a freshly constructed evaluator loaded
// with the snapshotted state, ready to feed.
type Restored struct {
	Spec sim.Spec
	Meta Meta
	// Key is the snapshot's config key (already verified against the
	// decoded spec and config).
	Key  string
	Eval *core.Evaluator
}

// Key returns the short stable digest identifying a (spec, evaluation
// config) pair. Spill files are keyed on it, and Decode verifies the
// embedded key, so state can never be restored into a session shape it
// was not trained under. The Predictor field of cfg is ignored.
func Key(spec sim.Spec, cfg core.EvalConfig) string {
	return buildinfo.Hash(struct {
		Spec          string
		UseSFPF       bool
		FilterTrue    bool
		TrainFiltered bool
		ResolveDelay  uint64
		PGU           int
		PGUDelay      uint64
		PerBranch     bool
	}{
		Spec:          spec.String(),
		UseSFPF:       cfg.UseSFPF,
		FilterTrue:    cfg.FilterTrue,
		TrainFiltered: cfg.TrainFiltered,
		ResolveDelay:  cfg.ResolveDelay,
		PGU:           int(cfg.PGU),
		PGUDelay:      cfg.PGUDelay,
		PerBranch:     cfg.PerBranch,
	})
}

// Config-flag bits.
const (
	cfgSFPF = 1 << iota
	cfgFilterTrue
	cfgTrainFiltered
	cfgPerBranch
	cfgReservedMask = ^byte(cfgSFPF | cfgFilterTrue | cfgTrainFiltered | cfgPerBranch)
)

// Encode serializes the evaluator bound to spec, with the session meta,
// into a self-contained snapshot. The evaluator's predictor must be a
// registry-built kind (every kind sim.Spec.New constructs qualifies);
// the evaluator itself is only read.
func Encode(spec sim.Spec, e *core.Evaluator, meta Meta) ([]byte, error) {
	nspec, err := spec.Normalized()
	if err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	st, ok := e.Predictor().(bpred.Stater)
	if !ok {
		return nil, fmt.Errorf("snap: predictor %T does not support state snapshots", e.Predictor())
	}
	cfg := e.Config()

	buf := append([]byte(nil), magic[:]...)
	buf = wire.AppendU32(buf, Version)
	buf = wire.AppendString(buf, nspec.String())
	var flags byte
	for _, f := range []struct {
		bit byte
		on  bool
	}{
		{cfgSFPF, cfg.UseSFPF},
		{cfgFilterTrue, cfg.FilterTrue},
		{cfgTrainFiltered, cfg.TrainFiltered},
		{cfgPerBranch, cfg.PerBranch},
	} {
		if f.on {
			flags |= f.bit
		}
	}
	buf = wire.AppendU8(buf, flags)
	buf = wire.AppendU8(buf, uint8(cfg.PGU))
	buf = wire.AppendU64(buf, cfg.ResolveDelay)
	buf = wire.AppendU64(buf, cfg.PGUDelay)
	buf = wire.AppendString(buf, meta.SessionID)
	buf = wire.AppendU64(buf, meta.Events)
	buf = wire.AppendU64(buf, meta.Batches)
	buf = wire.AppendU64(buf, meta.LastSeq)
	buf = wire.AppendString(buf, Key(nspec, cfg))
	buf = wire.AppendBytes(buf, st.AppendState(nil))
	buf = wire.AppendBytes(buf, e.AppendState(nil))
	buf = wire.AppendU32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// Decode parses, validates, and restores a snapshot: checksum and
// version first, then the spec and configuration, then a freshly
// constructed predictor and evaluator loaded with the snapshotted state.
// Any deviation from the canonical encoding fails with ErrCorrupt (or
// ErrVersion / ErrKeyMismatch); arbitrary input bytes can never panic or
// restore partial state.
func Decode(data []byte) (*Restored, error) {
	if len(data) < len(magic)+4+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any snapshot", ErrCorrupt, len(data))
	}
	body, sum := data[:len(data)-4], data[len(data)-4:]
	c := wire.NewCursor(body)
	if m := c.Take(4); m == nil || string(m) != string(magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := c.U32(); v != Version {
		return nil, fmt.Errorf("%w: snapshot version %d, this binary reads %d", ErrVersion, v, Version)
	}
	// Checksum before trusting any variable-length field.
	want := wire.NewCursor(sum).U32()
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}

	specText := c.String()
	flags := c.U8()
	policy := c.U8()
	cfg := core.EvalConfig{
		UseSFPF:       flags&cfgSFPF != 0,
		FilterTrue:    flags&cfgFilterTrue != 0,
		TrainFiltered: flags&cfgTrainFiltered != 0,
		PerBranch:     flags&cfgPerBranch != 0,
		ResolveDelay:  c.U64(),
		PGUDelay:      c.U64(),
	}
	meta := Meta{
		SessionID: c.String(),
		Events:    c.U64(),
		Batches:   c.U64(),
		LastSeq:   c.U64(),
	}
	key := c.String()
	pstate := c.Bytes()
	estate := c.Bytes()
	if err := c.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if flags&cfgReservedMask != 0 {
		return nil, fmt.Errorf("%w: reserved config flag bits set", ErrCorrupt)
	}
	if policy > uint8(core.PGUAll) {
		return nil, fmt.Errorf("%w: unknown PGU policy %d", ErrCorrupt, policy)
	}
	cfg.PGU = core.PGUPolicy(policy)

	spec, err := sim.Parse(specText)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if spec.String() != specText {
		return nil, fmt.Errorf("%w: non-canonical spec %q (want %q)", ErrCorrupt, specText, spec.String())
	}
	if wantKey := Key(spec, cfg); key != wantKey {
		return nil, fmt.Errorf("%w: snapshot key %s, config computes %s", ErrKeyMismatch, key, wantKey)
	}

	cfg.Predictor, err = spec.New()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	eval := core.NewEvaluator(cfg)
	pc := wire.NewCursor(pstate)
	if err := cfg.Predictor.(bpred.Stater).LoadState(pc); err != nil {
		return nil, fmt.Errorf("%w: predictor state: %v", ErrCorrupt, err)
	}
	if err := pc.Done(); err != nil {
		return nil, fmt.Errorf("%w: predictor state: %v", ErrCorrupt, err)
	}
	ec := wire.NewCursor(estate)
	if err := eval.LoadState(ec); err != nil {
		return nil, fmt.Errorf("%w: evaluator state: %v", ErrCorrupt, err)
	}
	if err := ec.Done(); err != nil {
		return nil, fmt.Errorf("%w: evaluator state: %v", ErrCorrupt, err)
	}
	return &Restored{Spec: spec, Meta: meta, Key: key, Eval: eval}, nil
}
