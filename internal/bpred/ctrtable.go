package bpred

import (
	"fmt"

	"repro/internal/wire"
)

// ctrTable is a table of 2-bit saturating counters packed 32 to a uint64
// word. The byte-per-counter layout it replaces spent 6 of every 8 bits
// on padding and a hard-to-predict branch per train step (the saturation
// test follows the very branch outcome being simulated, so the host CPU
// mispredicts it at the simulated predictor's misprediction rate); the
// packed layout cuts the table footprint 4x — a 2^20-counter table drops
// from 1 MiB to 256 KiB, and the common 2^12 tables fit in four cache
// lines per kilobyte of counters — and updates counters with branch-free
// arithmetic, so the update pipeline never stalls on the simulated
// outcome stream.
//
// Layout: counter i lives in words[i>>5] at bit offset (i&31)*2, low bit
// first. The canonical snapshot encoding stays one byte per counter
// (appendState/loadState pack and unpack at the boundary), so P64S
// snapshots, evict-to-disk, and cluster failover see byte-identical
// state across the layout change.
type ctrTable struct {
	words []uint64
	mask  uint64 // counter-index mask: count-1 (count = 1<<bits)
	init  uint64 // per-counter initial value, replicated by reset
}

// ctrPerWord counters fit one packed word.
const ctrPerWord = 32

// newCtrTable returns a table of 1<<bits counters all set to init.
func newCtrTable(bits int, init uint64) ctrTable {
	n := uint64(1) << bits
	t := ctrTable{
		words: make([]uint64, (n+ctrPerWord-1)/ctrPerWord),
		mask:  n - 1,
		init:  init,
	}
	t.reset()
	return t
}

// reset restores every counter to the initial value.
func (t *ctrTable) reset() {
	// Replicate the 2-bit init value across all 32 lanes of a word.
	pattern := t.init * 0x5555555555555555
	for i := range t.words {
		t.words[i] = pattern
	}
}

// size returns the number of counters.
func (t *ctrTable) size() int { return int(t.mask + 1) }

// get returns counter i (0..3).
func (t *ctrTable) get(i uint64) uint64 {
	return t.words[i/ctrPerWord] >> ((i % ctrPerWord) * 2) & 3
}

// set stores c (0..3) into counter i.
func (t *ctrTable) set(i, c uint64) {
	sh := (i % ctrPerWord) * 2
	w := &t.words[i/ctrPerWord]
	*w = *w&^(3<<sh) | c<<sh
}

// taken reports whether counter i predicts taken (value >= 2, i.e. the
// counter's high bit).
func (t *ctrTable) taken(i uint64) bool {
	return t.words[i/ctrPerWord&uint64(len(t.words)-1)]>>(i%ctrPerWord*2)&2 != 0
}

// ctrNext is the whole saturating-update transition function as one
// constant: entry (c<<1 | taken), 2 bits each, holds the next counter
// value. It encodes 0,1 -> 0; 0 or 1,up -> +1; 2 or 3,down -> -1; 3,up
// -> 3 — i.e. step toward taken, sticking at the rails.
const ctrNext = 0<<0 | 1<<2 | 0<<4 | 2<<6 | 1<<8 | 3<<10 | 2<<12 | 3<<14

// predictUpdate reads counter i's prediction and saturating-updates it
// toward the outcome (up is the outcome bit, b2u(taken)) in one
// read-modify-write. The next value is a shift into ctrNext rather than
// compare-and-branch arithmetic: the saturation test follows the very
// outcome being simulated, so a branchy update would stall the host
// pipeline at the simulated predictor's misprediction rate. The store
// xors the changed bits back into the word, avoiding a clear-then-or
// pair. Taking the outcome pre-converted keeps the method inside the
// compiler's inline budget — callers fold the same bit into their
// history shift — so the per-event path has no call.
func (t *ctrTable) predictUpdate(i, up uint64) bool {
	// len(words) is always a power of two (or 1), so the mask is exact;
	// spelling the index as &(len-1) lets the compiler drop the bounds
	// check from the per-event path.
	w := &t.words[i/ctrPerWord&uint64(len(t.words)-1)]
	sh := i % ctrPerWord * 2
	word := *w
	c := word >> sh & 3
	nc := uint64(ctrNext) >> (c<<2 | up<<1) & 3
	*w = word ^ (c^nc)<<sh
	return c&2 != 0
}

// update trains counter i toward taken.
func (t *ctrTable) update(i uint64, taken bool) { t.predictUpdate(i, b2u(taken)) }

// appendState appends the canonical snapshot encoding: one byte per
// counter, in index order — identical to the retired byte-per-counter
// layout's in-memory dump, so snapshot bytes survived the packing.
func (t *ctrTable) appendState(buf []byte) []byte {
	for i := uint64(0); i <= t.mask; i++ {
		buf = append(buf, byte(t.get(i)))
	}
	return buf
}

// loadState reads the canonical byte-per-counter encoding back into the
// packed words, validating the 2-bit range so a corrupt snapshot cannot
// smuggle in out-of-range counter values.
func (t *ctrTable) loadState(c *wire.Cursor) error {
	p := c.Take(t.size())
	if p == nil {
		return c.Err()
	}
	for i, b := range p {
		if b > 3 {
			return c.Fail(fmt.Errorf("bpred: counter %d out of range (%d)", i, b))
		}
		t.set(uint64(i), uint64(b))
	}
	return nil
}
