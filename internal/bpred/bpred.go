// Package bpred implements the conventional branch direction predictors
// the paper uses as baselines: static, bimodal, two-level global (GAg,
// gshare, gselect), two-level local (PAg), and a McFarling-style
// tournament predictor.
//
// Predictors with a global history register implement HistoryObserver,
// which lets the paper's predicate global update mechanism (internal/core)
// shift predicate-define outcomes into the same history the branch
// outcomes use.
package bpred

import "fmt"

// Predictor predicts conditional-branch directions. Predict must not
// change predictor state; Update supplies the resolved outcome and trains
// tables and histories.
type Predictor interface {
	// Name identifies the predictor and its configuration.
	Name() string
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the branch's actual outcome.
	Update(pc uint64, taken bool)
	// Reset restores the initial state.
	Reset()
}

// HistoryObserver is implemented by predictors whose global history can
// incorporate outcome bits that are not branch outcomes. This is the hook
// the predicate global update predictor uses.
type HistoryObserver interface {
	// ObserveBit shifts one outcome bit into the global history.
	ObserveBit(bit bool)
}

// Fused is implemented by predictors offering a fused predict+train step.
// PredictUpdate(pc, taken) must be exactly equivalent to
//
//	pred := p.Predict(pc)
//	p.Update(pc, taken)
//
// but computes shared work (table indices, perceptron sums, bias lookups)
// once instead of twice. Every concrete predictor in this package
// implements it; the batch evaluation fast path (core.Evaluator.FeedBatch)
// type-switches onto the concrete types so its inner loop runs fused and
// devirtualized.
type Fused interface {
	Predictor
	// PredictUpdate returns the prediction for pc and trains with the
	// actual outcome in one step.
	PredictUpdate(pc uint64, taken bool) bool
}

// counterInit is the initial 2-bit counter value: 1, weakly not-taken,
// the usual convention. Counters live packed in ctrTable words; values
// 0..3 predict taken when >= 2.
const counterInit = 1

// b2u is the branch-free bool-to-bit conversion the fused history shifts
// and the packed counter update use; the compiler lowers it to a SETcc,
// keeping PredictUpdate loops free of extra branches.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Static always predicts the same direction.
type Static struct{ Taken bool }

// NewStatic returns a static predictor.
func NewStatic(taken bool) *Static { return &Static{Taken: taken} }

// Name implements Predictor.
func (s *Static) Name() string {
	if s.Taken {
		return "static-taken"
	}
	return "static-nottaken"
}

// Predict implements Predictor.
func (s *Static) Predict(uint64) bool { return s.Taken }

// Update implements Predictor.
func (s *Static) Update(uint64, bool) {}

// PredictUpdate implements Fused.
func (s *Static) PredictUpdate(uint64, bool) bool { return s.Taken }

// Reset implements Predictor.
func (s *Static) Reset() {}

// Bimodal is a pc-indexed table of 2-bit counters.
type Bimodal struct {
	bits  int
	table ctrTable
}

// NewBimodal returns a bimodal predictor with 2^bits counters.
func NewBimodal(bits int) *Bimodal {
	return &Bimodal{bits: bits, table: newCtrTable(bits, counterInit)}
}

func (b *Bimodal) index(pc uint64) uint64 { return pc & b.table.mask }

// Name implements Predictor.
func (b *Bimodal) Name() string { return fmt.Sprintf("bimodal-%d", b.bits) }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table.taken(b.index(pc)) }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	b.table.update(b.index(pc), taken)
}

// PredictUpdate implements Fused.
func (b *Bimodal) PredictUpdate(pc uint64, taken bool) bool {
	return b.table.predictUpdate(b.index(pc), b2u(taken))
}

// Reset implements Predictor.
func (b *Bimodal) Reset() { b.table.reset() }

// GShare is a two-level global predictor indexing its counter table with
// pc XOR global-history.
type GShare struct {
	tableBits int
	histBits  int
	table     ctrTable
	hist      uint64
}

// NewGShare returns a gshare predictor with 2^tableBits counters and
// histBits of global history.
func NewGShare(tableBits, histBits int) *GShare {
	return &GShare{tableBits: tableBits, histBits: histBits, table: newCtrTable(tableBits, counterInit)}
}

func (g *GShare) index(pc uint64) uint64 {
	h := g.hist & ((1 << g.histBits) - 1)
	return (pc ^ h) & g.table.mask
}

// Name implements Predictor.
func (g *GShare) Name() string { return fmt.Sprintf("gshare-%d.%d", g.tableBits, g.histBits) }

// Predict implements Predictor.
func (g *GShare) Predict(pc uint64) bool { return g.table.taken(g.index(pc)) }

// Update implements Predictor.
func (g *GShare) Update(pc uint64, taken bool) {
	g.table.update(g.index(pc), taken)
	g.ObserveBit(taken)
}

// PredictUpdate implements Fused.
func (g *GShare) PredictUpdate(pc uint64, taken bool) bool {
	up := b2u(taken)
	pred := g.table.predictUpdate(g.index(pc), up)
	g.hist = g.hist<<1 | up
	return pred
}

// ObserveBit implements HistoryObserver.
func (g *GShare) ObserveBit(bit bool) {
	g.hist <<= 1
	if bit {
		g.hist |= 1
	}
}

// Reset implements Predictor.
func (g *GShare) Reset() {
	g.table.reset()
	g.hist = 0
}

// History returns the current global history (low histBits valid).
func (g *GShare) History() uint64 { return g.hist & ((1 << g.histBits) - 1) }

// GSelect concatenates low pc bits with global history to index its table.
type GSelect struct {
	tableBits int
	histBits  int
	table     ctrTable
	hist      uint64
}

// NewGSelect returns a gselect predictor with 2^tableBits counters, of
// which histBits index bits come from history and the rest from the pc.
func NewGSelect(tableBits, histBits int) *GSelect {
	if histBits > tableBits {
		histBits = tableBits
	}
	return &GSelect{tableBits: tableBits, histBits: histBits, table: newCtrTable(tableBits, counterInit)}
}

func (g *GSelect) index(pc uint64) uint64 {
	h := g.hist & ((1 << g.histBits) - 1)
	return ((pc << g.histBits) | h) & g.table.mask
}

// Name implements Predictor.
func (g *GSelect) Name() string { return fmt.Sprintf("gselect-%d.%d", g.tableBits, g.histBits) }

// Predict implements Predictor.
func (g *GSelect) Predict(pc uint64) bool { return g.table.taken(g.index(pc)) }

// Update implements Predictor.
func (g *GSelect) Update(pc uint64, taken bool) {
	g.table.update(g.index(pc), taken)
	g.ObserveBit(taken)
}

// PredictUpdate implements Fused.
func (g *GSelect) PredictUpdate(pc uint64, taken bool) bool {
	up := b2u(taken)
	pred := g.table.predictUpdate(g.index(pc), up)
	g.hist = g.hist<<1 | up
	return pred
}

// ObserveBit implements HistoryObserver.
func (g *GSelect) ObserveBit(bit bool) {
	g.hist <<= 1
	if bit {
		g.hist |= 1
	}
}

// Reset implements Predictor.
func (g *GSelect) Reset() {
	g.table.reset()
	g.hist = 0
}

// GAg indexes its table purely by global history.
type GAg struct {
	histBits int
	table    ctrTable
	hist     uint64
}

// NewGAg returns a GAg predictor with histBits of history and 2^histBits
// counters.
func NewGAg(histBits int) *GAg {
	return &GAg{histBits: histBits, table: newCtrTable(histBits, counterInit)}
}

// Name implements Predictor.
func (g *GAg) Name() string { return fmt.Sprintf("gag-%d", g.histBits) }

// Predict implements Predictor.
func (g *GAg) Predict(uint64) bool {
	return g.table.taken(g.hist & g.table.mask)
}

// Update implements Predictor.
func (g *GAg) Update(_ uint64, taken bool) {
	g.table.update(g.hist&g.table.mask, taken)
	g.ObserveBit(taken)
}

// PredictUpdate implements Fused.
func (g *GAg) PredictUpdate(_ uint64, taken bool) bool {
	up := b2u(taken)
	pred := g.table.predictUpdate(g.hist&g.table.mask, up)
	g.hist = g.hist<<1 | up
	return pred
}

// ObserveBit implements HistoryObserver.
func (g *GAg) ObserveBit(bit bool) {
	g.hist <<= 1
	if bit {
		g.hist |= 1
	}
}

// Reset implements Predictor.
func (g *GAg) Reset() {
	g.table.reset()
	g.hist = 0
}

// Local is a PAg two-level predictor: a pc-indexed table of per-branch
// histories feeding a shared pattern table of counters.
type Local struct {
	histEntBits int // log2 of history-table entries
	histBits    int // history length per entry
	patBits     int // log2 of pattern-table counters
	hists       []uint64
	table       ctrTable
}

// NewLocal returns a local predictor with 2^histEntBits branch histories of
// histBits each and a 2^patBits pattern table.
func NewLocal(histEntBits, histBits, patBits int) *Local {
	return &Local{
		histEntBits: histEntBits,
		histBits:    histBits,
		patBits:     patBits,
		hists:       make([]uint64, 1<<histEntBits),
		table:       newCtrTable(patBits, counterInit),
	}
}

func (l *Local) histIndex(pc uint64) uint64 { return pc & (uint64(len(l.hists)) - 1) }

func (l *Local) patIndex(pc uint64) uint64 {
	h := l.hists[l.histIndex(pc)] & ((1 << l.histBits) - 1)
	return h & l.table.mask
}

// Name implements Predictor.
func (l *Local) Name() string {
	return fmt.Sprintf("local-%d.%d.%d", l.histEntBits, l.histBits, l.patBits)
}

// Predict implements Predictor.
func (l *Local) Predict(pc uint64) bool { return l.table.taken(l.patIndex(pc)) }

// Update implements Predictor.
func (l *Local) Update(pc uint64, taken bool) {
	l.table.update(l.patIndex(pc), taken)
	hi := l.histIndex(pc)
	l.hists[hi] <<= 1
	if taken {
		l.hists[hi] |= 1
	}
}

// PredictUpdate implements Fused.
func (l *Local) PredictUpdate(pc uint64, taken bool) bool {
	hi := l.histIndex(pc)
	h := l.hists[hi] & ((1 << l.histBits) - 1)
	up := b2u(taken)
	pred := l.table.predictUpdate(h&l.table.mask, up)
	l.hists[hi] = l.hists[hi]<<1 | up
	return pred
}

// Reset implements Predictor.
func (l *Local) Reset() {
	clear(l.hists)
	l.table.reset()
}

// Tournament is a McFarling combining predictor: a global (gshare) and a
// local component with a pc-indexed chooser. Predicate history bits
// observed via ObserveBit flow into the global component.
type Tournament struct {
	global  *GShare
	local   *Local
	chooser ctrTable // taken == true selects the global component
	chBits  int
}

// NewTournament returns a tournament predictor; bits sizes the chooser and
// both component tables, histBits the global history.
func NewTournament(bits, histBits int) *Tournament {
	return &Tournament{
		global:  NewGShare(bits, histBits),
		local:   NewLocal(bits-2, 10, bits-2),
		chooser: newCtrTable(bits, counterInit),
		chBits:  bits,
	}
}

// Name implements Predictor.
func (t *Tournament) Name() string { return fmt.Sprintf("tournament-%d", t.chBits) }

func (t *Tournament) chIndex(pc uint64) uint64 { return pc & t.chooser.mask }

// Predict implements Predictor.
func (t *Tournament) Predict(pc uint64) bool {
	if t.chooser.taken(t.chIndex(pc)) {
		return t.global.Predict(pc)
	}
	return t.local.Predict(pc)
}

// Update implements Predictor.
func (t *Tournament) Update(pc uint64, taken bool) {
	g := t.global.Predict(pc)
	l := t.local.Predict(pc)
	if g != l {
		t.chooser.update(t.chIndex(pc), g == taken)
	}
	t.global.Update(pc, taken)
	t.local.Update(pc, taken)
}

// PredictUpdate implements Fused. The chooser is read before any
// component trains, so the returned prediction matches Predict-then-Update
// exactly; the component predictions come back from the components' own
// fused steps instead of being computed twice.
func (t *Tournament) PredictUpdate(pc uint64, taken bool) bool {
	ci := t.chIndex(pc)
	useGlobal := t.chooser.taken(ci)
	g := t.global.PredictUpdate(pc, taken)
	l := t.local.PredictUpdate(pc, taken)
	if g != l {
		t.chooser.update(ci, g == taken)
	}
	if useGlobal {
		return g
	}
	return l
}

// ObserveBit implements HistoryObserver; bits flow to the global component.
func (t *Tournament) ObserveBit(bit bool) { t.global.ObserveBit(bit) }

// Reset implements Predictor.
func (t *Tournament) Reset() {
	t.global.Reset()
	t.local.Reset()
	t.chooser.reset()
}

// Compile-time interface checks.
var (
	_ Predictor       = (*Static)(nil)
	_ Predictor       = (*Bimodal)(nil)
	_ Predictor       = (*GShare)(nil)
	_ Predictor       = (*GSelect)(nil)
	_ Predictor       = (*GAg)(nil)
	_ Predictor       = (*Local)(nil)
	_ Predictor       = (*Tournament)(nil)
	_ HistoryObserver = (*GShare)(nil)
	_ HistoryObserver = (*GSelect)(nil)
	_ HistoryObserver = (*GAg)(nil)
	_ HistoryObserver = (*Tournament)(nil)
	_ Fused           = (*Static)(nil)
	_ Fused           = (*Bimodal)(nil)
	_ Fused           = (*GShare)(nil)
	_ Fused           = (*GSelect)(nil)
	_ Fused           = (*GAg)(nil)
	_ Fused           = (*Local)(nil)
	_ Fused           = (*Tournament)(nil)
)
