package bpred

import (
	"testing"

	"repro/internal/rng"
)

// fusedPair names one predictor configuration and builds two fresh,
// identically configured instances for split-vs-fused comparison.
func fusedPairs() map[string]func() (Predictor, Predictor) {
	mk := func(f func() Predictor) func() (Predictor, Predictor) {
		return func() (Predictor, Predictor) { return f(), f() }
	}
	return map[string]func() (Predictor, Predictor){
		"static-taken":    mk(func() Predictor { return NewStatic(true) }),
		"static-nottaken": mk(func() Predictor { return NewStatic(false) }),
		"bimodal":         mk(func() Predictor { return NewBimodal(6) }),
		"gshare":          mk(func() Predictor { return NewGShare(6, 5) }),
		"gselect":         mk(func() Predictor { return NewGSelect(6, 4) }),
		"gag":             mk(func() Predictor { return NewGAg(6) }),
		"local":           mk(func() Predictor { return NewLocal(4, 6, 6) }),
		"tournament":      mk(func() Predictor { return NewTournament(6, 5) }),
		"agree":           mk(func() Predictor { return NewAgree(4, 4) }),
		"perceptron":      mk(func() Predictor { return NewPerceptron(4, 10) }),
	}
}

// TestPredictUpdateMatchesSplit drives every predictor kind over a
// randomized stream twice — once through the split Predict-then-Update
// API and once through the fused PredictUpdate step — and requires the
// same prediction at every event. Small tables force heavy aliasing, and
// interleaved ObserveBit traffic exercises the fused history shifts.
func TestPredictUpdateMatchesSplit(t *testing.T) {
	for name, build := range fusedPairs() {
		t.Run(name, func(t *testing.T) {
			split, fusedP := build()
			fused, ok := fusedP.(Fused)
			if !ok {
				t.Fatalf("%s does not implement Fused", fusedP.Name())
			}
			sObs, _ := split.(HistoryObserver)
			fObs, _ := fusedP.(HistoryObserver)
			r := rng.New(7)
			for i := 0; i < 20000; i++ {
				pc := r.Bits(16)
				taken := r.Bool()
				want := split.Predict(pc)
				split.Update(pc, taken)
				got := fused.PredictUpdate(pc, taken)
				if got != want {
					t.Fatalf("event %d: fused predicted %v, split predicted %v (pc=%#x taken=%v)",
						i, got, want, pc, taken)
				}
				if sObs != nil && r.Chance(0.15) {
					bit := r.Bool()
					sObs.ObserveBit(bit)
					fObs.ObserveBit(bit)
				}
			}
		})
	}
}

// TestAgreeBiasBounded feeds the agree predictor an adversarial stream of
// ever-new PCs — the long-lived serving-session attack the old unbounded
// bias map was vulnerable to — and checks the bias store stays at its
// fixed construction size.
func TestAgreeBiasBounded(t *testing.T) {
	a := NewAgree(8, 6)
	wantEntries := len(a.bias)
	wantSets := len(a.rr)
	for pc := uint64(0); pc < 1_000_000; pc++ {
		a.Predict(pc)
		a.Update(pc, pc%3 == 0)
	}
	if len(a.bias) != wantEntries || cap(a.bias) != wantEntries {
		t.Errorf("bias store grew: len %d cap %d, want fixed %d", len(a.bias), cap(a.bias), wantEntries)
	}
	if len(a.rr) != wantSets {
		t.Errorf("rr store grew: len %d, want fixed %d", len(a.rr), wantSets)
	}
	if 1<<8 != wantEntries {
		t.Errorf("bias store holds %d entries, want 2^tableBits = %d", wantEntries, 1<<8)
	}
}

// TestAgreeBiasDisplacement pins the BTB-style displacement semantics:
// five distinct PCs mapping to one 4-way set displace round-robin, and a
// displaced branch falls back to the default not-taken bias until its
// next outcome re-allocates it.
func TestAgreeBiasDisplacement(t *testing.T) {
	a := NewAgree(2, 0) // one bias set of 4 ways
	// Fill the set with four always-taken branches.
	for pc := uint64(0); pc < 4; pc++ {
		a.Update(pc, true)
	}
	for pc := uint64(0); pc < 4; pc++ {
		if !a.lookupBias(pc) {
			t.Fatalf("pc %d bias lost while the set had room", pc)
		}
	}
	// A fifth branch displaces way 0 (round-robin from the start).
	a.Update(4, true)
	if !a.lookupBias(4) {
		t.Error("new branch was not allocated")
	}
	if a.lookupBias(0) {
		t.Error("displaced branch still reports its old bias")
	}
}
