package bpred

import (
	"fmt"

	"repro/internal/wire"
)

// Stater is implemented by predictors whose accumulated training state
// can be serialized and restored exactly. AppendState appends only the
// mutable state (tables, histories, weights) — never the configuration:
// a snapshot is restored into a predictor freshly constructed with the
// same configuration (internal/snap carries the sim spec for that), and
// LoadState validates the payload against the receiver's own geometry.
//
// The contract is byte-identical resume: after LoadState, the predictor
// must behave exactly as the snapshotted one would on every future
// Predict/Update/PredictUpdate/ObserveBit call. Every concrete predictor
// kind in this package implements it.
type Stater interface {
	Predictor
	// AppendState appends the predictor's mutable state to buf.
	AppendState(buf []byte) []byte
	// LoadState restores mutable state from the cursor, reading exactly
	// the bytes AppendState wrote for an identically configured
	// predictor. On error the predictor's state is unspecified; callers
	// discard it.
	LoadState(c *wire.Cursor) error
}

// appendCounters writes a counter table one byte per counter.
func appendCounters(buf []byte, t []counter) []byte {
	for _, c := range t {
		buf = append(buf, byte(c))
	}
	return buf
}

// loadCounters reads len(t) counters into t, validating the 2-bit range
// so a corrupt snapshot cannot smuggle in out-of-range counter values.
func loadCounters(c *wire.Cursor, t []counter) error {
	p := c.Take(len(t))
	if p == nil {
		return c.Err()
	}
	for i, b := range p {
		if b > 3 {
			return c.Fail(fmt.Errorf("bpred: counter %d out of range (%d)", i, b))
		}
		t[i] = counter(b)
	}
	return nil
}

// AppendState implements Stater. Static has no mutable state.
func (s *Static) AppendState(buf []byte) []byte { return buf }

// LoadState implements Stater.
func (s *Static) LoadState(*wire.Cursor) error { return nil }

// AppendState implements Stater.
func (b *Bimodal) AppendState(buf []byte) []byte { return appendCounters(buf, b.table) }

// LoadState implements Stater.
func (b *Bimodal) LoadState(c *wire.Cursor) error { return loadCounters(c, b.table) }

// AppendState implements Stater.
func (g *GShare) AppendState(buf []byte) []byte {
	buf = wire.AppendU64(buf, g.hist)
	return appendCounters(buf, g.table)
}

// LoadState implements Stater.
func (g *GShare) LoadState(c *wire.Cursor) error {
	g.hist = c.U64()
	return loadCounters(c, g.table)
}

// AppendState implements Stater.
func (g *GSelect) AppendState(buf []byte) []byte {
	buf = wire.AppendU64(buf, g.hist)
	return appendCounters(buf, g.table)
}

// LoadState implements Stater.
func (g *GSelect) LoadState(c *wire.Cursor) error {
	g.hist = c.U64()
	return loadCounters(c, g.table)
}

// AppendState implements Stater.
func (g *GAg) AppendState(buf []byte) []byte {
	buf = wire.AppendU64(buf, g.hist)
	return appendCounters(buf, g.table)
}

// LoadState implements Stater.
func (g *GAg) LoadState(c *wire.Cursor) error {
	g.hist = c.U64()
	return loadCounters(c, g.table)
}

// AppendState implements Stater.
func (l *Local) AppendState(buf []byte) []byte {
	for _, h := range l.hists {
		buf = wire.AppendU64(buf, h)
	}
	return appendCounters(buf, l.table)
}

// LoadState implements Stater.
func (l *Local) LoadState(c *wire.Cursor) error {
	for i := range l.hists {
		l.hists[i] = c.U64()
	}
	return loadCounters(c, l.table)
}

// AppendState implements Stater: the global and local components'
// state followed by the chooser table.
func (t *Tournament) AppendState(buf []byte) []byte {
	buf = t.global.AppendState(buf)
	buf = t.local.AppendState(buf)
	return appendCounters(buf, t.chooser)
}

// LoadState implements Stater.
func (t *Tournament) LoadState(c *wire.Cursor) error {
	if err := t.global.LoadState(c); err != nil {
		return err
	}
	if err := t.local.LoadState(c); err != nil {
		return err
	}
	return loadCounters(c, t.chooser)
}

// AppendState implements Stater: the history, the agree counter table,
// the per-set round-robin cursors, and every bias-table way (full tag
// plus valid/bias flags).
func (a *Agree) AppendState(buf []byte) []byte {
	buf = wire.AppendU64(buf, a.hist)
	buf = appendCounters(buf, a.table)
	buf = append(buf, a.rr...)
	for i := range a.bias {
		e := &a.bias[i]
		buf = wire.AppendU64(buf, e.tag)
		var f byte
		if e.valid {
			f |= 1
		}
		if e.bias {
			f |= 2
		}
		buf = append(buf, f)
	}
	return buf
}

// LoadState implements Stater.
func (a *Agree) LoadState(c *wire.Cursor) error {
	a.hist = c.U64()
	if err := loadCounters(c, a.table); err != nil {
		return err
	}
	rr := c.Take(len(a.rr))
	if rr == nil {
		return c.Err()
	}
	for i, v := range rr {
		if v >= agreeWays {
			return c.Fail(fmt.Errorf("bpred: agree rr cursor %d out of range (%d)", i, v))
		}
		a.rr[i] = v
	}
	for i := range a.bias {
		e := &a.bias[i]
		e.tag = c.U64()
		f := c.U8()
		if f > 3 {
			return c.Fail(fmt.Errorf("bpred: agree bias flags %d out of range (%d)", i, f))
		}
		e.valid = f&1 != 0
		e.bias = f&2 != 0
	}
	return c.Err()
}

// AppendState implements Stater: the history then every weight vector,
// one signed byte per weight.
func (p *Perceptron) AppendState(buf []byte) []byte {
	buf = wire.AppendU64(buf, p.hist)
	for _, w := range p.weights {
		for _, v := range w {
			buf = append(buf, byte(v))
		}
	}
	return buf
}

// LoadState implements Stater.
func (p *Perceptron) LoadState(c *wire.Cursor) error {
	p.hist = c.U64()
	for _, w := range p.weights {
		row := c.Take(len(w))
		if row == nil {
			return c.Err()
		}
		for i, b := range row {
			w[i] = int8(b)
		}
	}
	return c.Err()
}

// Compile-time interface checks: every concrete kind is snapshottable.
var (
	_ Stater = (*Static)(nil)
	_ Stater = (*Bimodal)(nil)
	_ Stater = (*GShare)(nil)
	_ Stater = (*GSelect)(nil)
	_ Stater = (*GAg)(nil)
	_ Stater = (*Local)(nil)
	_ Stater = (*Tournament)(nil)
	_ Stater = (*Agree)(nil)
	_ Stater = (*Perceptron)(nil)
)
