package bpred

import (
	"fmt"

	"repro/internal/wire"
)

// Stater is implemented by predictors whose accumulated training state
// can be serialized and restored exactly. AppendState appends only the
// mutable state (tables, histories, weights) — never the configuration:
// a snapshot is restored into a predictor freshly constructed with the
// same configuration (internal/snap carries the sim spec for that), and
// LoadState validates the payload against the receiver's own geometry.
//
// The contract is byte-identical resume: after LoadState, the predictor
// must behave exactly as the snapshotted one would on every future
// Predict/Update/PredictUpdate/ObserveBit call. Every concrete predictor
// kind in this package implements it.
type Stater interface {
	Predictor
	// AppendState appends the predictor's mutable state to buf.
	AppendState(buf []byte) []byte
	// LoadState restores mutable state from the cursor, reading exactly
	// the bytes AppendState wrote for an identically configured
	// predictor. On error the predictor's state is unspecified; callers
	// discard it.
	LoadState(c *wire.Cursor) error
}

// Counter tables serialize through ctrTable.appendState/loadState: the
// canonical encoding is one byte per counter regardless of the packed
// in-memory word layout, so snapshots taken before the packing decode
// (and re-encode) byte-identically.

// AppendState implements Stater. Static has no mutable state.
func (s *Static) AppendState(buf []byte) []byte { return buf }

// LoadState implements Stater.
func (s *Static) LoadState(*wire.Cursor) error { return nil }

// AppendState implements Stater.
func (b *Bimodal) AppendState(buf []byte) []byte { return b.table.appendState(buf) }

// LoadState implements Stater.
func (b *Bimodal) LoadState(c *wire.Cursor) error { return b.table.loadState(c) }

// AppendState implements Stater.
func (g *GShare) AppendState(buf []byte) []byte {
	buf = wire.AppendU64(buf, g.hist)
	return g.table.appendState(buf)
}

// LoadState implements Stater.
func (g *GShare) LoadState(c *wire.Cursor) error {
	g.hist = c.U64()
	return g.table.loadState(c)
}

// AppendState implements Stater.
func (g *GSelect) AppendState(buf []byte) []byte {
	buf = wire.AppendU64(buf, g.hist)
	return g.table.appendState(buf)
}

// LoadState implements Stater.
func (g *GSelect) LoadState(c *wire.Cursor) error {
	g.hist = c.U64()
	return g.table.loadState(c)
}

// AppendState implements Stater.
func (g *GAg) AppendState(buf []byte) []byte {
	buf = wire.AppendU64(buf, g.hist)
	return g.table.appendState(buf)
}

// LoadState implements Stater.
func (g *GAg) LoadState(c *wire.Cursor) error {
	g.hist = c.U64()
	return g.table.loadState(c)
}

// AppendState implements Stater.
func (l *Local) AppendState(buf []byte) []byte {
	for _, h := range l.hists {
		buf = wire.AppendU64(buf, h)
	}
	return l.table.appendState(buf)
}

// LoadState implements Stater.
func (l *Local) LoadState(c *wire.Cursor) error {
	for i := range l.hists {
		l.hists[i] = c.U64()
	}
	return l.table.loadState(c)
}

// AppendState implements Stater: the global and local components'
// state followed by the chooser table.
func (t *Tournament) AppendState(buf []byte) []byte {
	buf = t.global.AppendState(buf)
	buf = t.local.AppendState(buf)
	return t.chooser.appendState(buf)
}

// LoadState implements Stater.
func (t *Tournament) LoadState(c *wire.Cursor) error {
	if err := t.global.LoadState(c); err != nil {
		return err
	}
	if err := t.local.LoadState(c); err != nil {
		return err
	}
	return t.chooser.loadState(c)
}

// AppendState implements Stater: the history, the agree counter table,
// the per-set round-robin cursors, and every bias-table way (full tag
// plus valid/bias flags).
func (a *Agree) AppendState(buf []byte) []byte {
	buf = wire.AppendU64(buf, a.hist)
	buf = a.table.appendState(buf)
	buf = append(buf, a.rr...)
	for i := range a.bias {
		e := &a.bias[i]
		buf = wire.AppendU64(buf, e.tag)
		var f byte
		if e.valid {
			f |= 1
		}
		if e.bias {
			f |= 2
		}
		buf = append(buf, f)
	}
	return buf
}

// LoadState implements Stater.
func (a *Agree) LoadState(c *wire.Cursor) error {
	a.hist = c.U64()
	if err := a.table.loadState(c); err != nil {
		return err
	}
	rr := c.Take(len(a.rr))
	if rr == nil {
		return c.Err()
	}
	for i, v := range rr {
		if v >= agreeWays {
			return c.Fail(fmt.Errorf("bpred: agree rr cursor %d out of range (%d)", i, v))
		}
		a.rr[i] = v
	}
	for i := range a.bias {
		e := &a.bias[i]
		e.tag = c.U64()
		f := c.U8()
		if f > 3 {
			return c.Fail(fmt.Errorf("bpred: agree bias flags %d out of range (%d)", i, f))
		}
		e.valid = f&1 != 0
		e.bias = f&2 != 0
	}
	return c.Err()
}

// AppendState implements Stater: the history then every weight vector,
// one signed byte per weight. Rows are written without their stride
// padding, so the encoding is identical to the retired slice-of-rows
// layout's.
func (p *Perceptron) AppendState(buf []byte) []byte {
	buf = wire.AppendU64(buf, p.hist)
	for e := uint64(0); e <= p.idxMask; e++ {
		for _, v := range p.row(e) {
			buf = append(buf, byte(v))
		}
	}
	return buf
}

// LoadState implements Stater.
func (p *Perceptron) LoadState(c *wire.Cursor) error {
	p.hist = c.U64()
	for e := uint64(0); e <= p.idxMask; e++ {
		w := p.row(e)
		row := c.Take(len(w))
		if row == nil {
			return c.Err()
		}
		for i, b := range row {
			w[i] = int8(b)
		}
	}
	return c.Err()
}

// Compile-time interface checks: every concrete kind is snapshottable.
var (
	_ Stater = (*Static)(nil)
	_ Stater = (*Bimodal)(nil)
	_ Stater = (*GShare)(nil)
	_ Stater = (*GSelect)(nil)
	_ Stater = (*GAg)(nil)
	_ Stater = (*Local)(nil)
	_ Stater = (*Tournament)(nil)
	_ Stater = (*Agree)(nil)
	_ Stater = (*Perceptron)(nil)
)
