package bpred

import "fmt"

// Perceptron is a perceptron branch predictor (Jiménez & Lin, HPCA 2001 —
// exactly contemporary with the paper). Each branch hashes to a weight
// vector; the prediction is the sign of the dot product of the weights
// with the global history (bits as ±1). It learns *which* history bits
// matter, which makes it an interesting partner for the predicate global
// update mechanism: inserted predicate outcomes that correlate get large
// weights, and ones that don't are weighted out instead of wasting
// history capacity.
type Perceptron struct {
	entryBits int
	histBits  int
	weights   [][]int8 // [entry][1+histBits]: bias weight then one per bit
	hist      uint64
	theta     int32 // training threshold, 1.93*h + 14 per the paper
}

// NewPerceptron returns a perceptron predictor with 2^entryBits weight
// vectors over histBits of global history.
func NewPerceptron(entryBits, histBits int) *Perceptron {
	p := &Perceptron{
		entryBits: entryBits,
		histBits:  histBits,
		theta:     int32(1.93*float64(histBits) + 14),
	}
	p.Reset()
	return p
}

// Name implements Predictor.
func (p *Perceptron) Name() string {
	return fmt.Sprintf("perceptron-%d.%d", p.entryBits, p.histBits)
}

func (p *Perceptron) index(pc uint64) uint64 {
	return pc & (uint64(len(p.weights)) - 1)
}

// output computes the perceptron sum for pc under the current history.
func (p *Perceptron) output(pc uint64) int32 {
	w := p.weights[p.index(pc)]
	y := int32(w[0])
	for i := 0; i < p.histBits; i++ {
		if p.hist>>uint(i)&1 == 1 {
			y += int32(w[i+1])
		} else {
			y -= int32(w[i+1])
		}
	}
	return y
}

// Predict implements Predictor.
func (p *Perceptron) Predict(pc uint64) bool { return p.output(pc) >= 0 }

func saturate(w int8, up bool) int8 {
	if up {
		if w < 127 {
			return w + 1
		}
		return w
	}
	if w > -127 {
		return w - 1
	}
	return w
}

// Update implements Predictor.
func (p *Perceptron) Update(pc uint64, taken bool) {
	y := p.output(pc)
	mispredicted := (y >= 0) != taken
	mag := y
	if mag < 0 {
		mag = -mag
	}
	if mispredicted || mag <= p.theta {
		w := p.weights[p.index(pc)]
		w[0] = saturate(w[0], taken)
		for i := 0; i < p.histBits; i++ {
			bit := p.hist>>uint(i)&1 == 1
			w[i+1] = saturate(w[i+1], bit == taken)
		}
	}
	p.ObserveBit(taken)
}

// PredictUpdate implements Fused. The perceptron sum — a walk over every
// history bit's weight — is by far the predictor's dominant cost, and the
// split Predict/Update API computes it twice per branch; the fused step
// computes it once.
func (p *Perceptron) PredictUpdate(pc uint64, taken bool) bool {
	y := p.output(pc)
	pred := y >= 0
	mag := y
	if mag < 0 {
		mag = -mag
	}
	if pred != taken || mag <= p.theta {
		w := p.weights[p.index(pc)]
		w[0] = saturate(w[0], taken)
		for i := 0; i < p.histBits; i++ {
			bit := p.hist>>uint(i)&1 == 1
			w[i+1] = saturate(w[i+1], bit == taken)
		}
	}
	p.ObserveBit(taken)
	return pred
}

// ObserveBit implements HistoryObserver.
func (p *Perceptron) ObserveBit(bit bool) {
	p.hist <<= 1
	if bit {
		p.hist |= 1
	}
	p.hist &= (1 << p.histBits) - 1
}

// Reset implements Predictor.
func (p *Perceptron) Reset() {
	p.weights = make([][]int8, 1<<p.entryBits)
	for i := range p.weights {
		p.weights[i] = make([]int8, 1+p.histBits)
	}
	p.hist = 0
}

var (
	_ Predictor       = (*Perceptron)(nil)
	_ HistoryObserver = (*Perceptron)(nil)
	_ Fused           = (*Perceptron)(nil)
)
