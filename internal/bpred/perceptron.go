package bpred

import (
	"fmt"
	"math/bits"
)

// Perceptron is a perceptron branch predictor (Jiménez & Lin, HPCA 2001 —
// exactly contemporary with the paper). Each branch hashes to a weight
// vector; the prediction is the sign of the dot product of the weights
// with the global history (bits as ±1). It learns *which* history bits
// matter, which makes it an interesting partner for the predicate global
// update mechanism: inserted predicate outcomes that correlate get large
// weights, and ones that don't are weighted out instead of wasting
// history capacity.
//
// The weight matrix is one flat array rather than a slice of per-entry
// slices: the dot product — the predictor's dominant cost — walks a
// contiguous row with no pointer chase, and rows are padded to a
// power-of-two stride so the row base address is a shift of the entry
// index and no row straddles more cache lines than its weights need.
type Perceptron struct {
	entryBits   int
	histBits    int
	strideShift uint   // log2 of the padded row stride
	idxMask     uint64 // entry-index mask: 1<<entryBits - 1
	weights     []int8 // [entry*stride ... ]: bias weight, histBits weights, zero pad
	hist        uint64
	theta       int32 // training threshold, 1.93*h + 14 per the paper
}

// NewPerceptron returns a perceptron predictor with 2^entryBits weight
// vectors over histBits of global history.
func NewPerceptron(entryBits, histBits int) *Perceptron {
	p := &Perceptron{
		entryBits: entryBits,
		histBits:  histBits,
		// Smallest power-of-two stride holding the 1+histBits row:
		// bits.Len(h) == ceil(log2(h+1)) for the h >= 0 we accept.
		strideShift: uint(bits.Len(uint(histBits))),
		idxMask:     1<<entryBits - 1,
		theta:       int32(1.93*float64(histBits) + 14),
	}
	p.Reset()
	return p
}

// Name implements Predictor.
func (p *Perceptron) Name() string {
	return fmt.Sprintf("perceptron-%d.%d", p.entryBits, p.histBits)
}

func (p *Perceptron) index(pc uint64) uint64 { return pc & p.idxMask }

// row returns entry e's weight vector: the bias weight then one weight
// per history bit (the padding tail is excluded).
func (p *Perceptron) row(e uint64) []int8 {
	base := e << p.strideShift
	return p.weights[base : base+uint64(p.histBits)+1 : base+uint64(p.histBits)+1]
}

// dot computes the perceptron sum over one weight row under the current
// history. The sign select is branch-free: neg is 0 for a set history
// bit (add the weight) and -1 for a clear one ((w ^ -1) - (-1) == -w),
// so the walk is pure sequential loads and ALU ops with no
// data-dependent branch for the host CPU to mispredict.
func (p *Perceptron) dot(w []int8) int32 {
	y := int32(w[0])
	h := p.hist
	for _, wi := range w[1:] {
		neg := int32(h&1) - 1
		y += (int32(wi) ^ neg) - neg
		h >>= 1
	}
	return y
}

// output computes the perceptron sum for pc under the current history.
func (p *Perceptron) output(pc uint64) int32 { return p.dot(p.row(p.index(pc))) }

// Predict implements Predictor.
func (p *Perceptron) Predict(pc uint64) bool { return p.output(pc) >= 0 }

func saturate(w int8, up bool) int8 {
	if up {
		if w < 127 {
			return w + 1
		}
		return w
	}
	if w > -127 {
		return w - 1
	}
	return w
}

// train nudges every weight in w toward agreement with taken.
func (p *Perceptron) train(w []int8, taken bool) {
	w[0] = saturate(w[0], taken)
	h := p.hist
	for i := 1; i < len(w); i++ {
		w[i] = saturate(w[i], h&1 == 1 == taken)
		h >>= 1
	}
}

// Update implements Predictor.
func (p *Perceptron) Update(pc uint64, taken bool) {
	w := p.row(p.index(pc))
	y := p.dot(w)
	mispredicted := (y >= 0) != taken
	mag := y
	if mag < 0 {
		mag = -mag
	}
	if mispredicted || mag <= p.theta {
		p.train(w, taken)
	}
	p.ObserveBit(taken)
}

// PredictUpdate implements Fused. The perceptron sum — a walk over every
// history bit's weight — is by far the predictor's dominant cost, and the
// split Predict/Update API computes it twice per branch; the fused step
// computes it once, over the row resolved once.
func (p *Perceptron) PredictUpdate(pc uint64, taken bool) bool {
	w := p.row(p.index(pc))
	y := p.dot(w)
	pred := y >= 0
	mag := y
	if mag < 0 {
		mag = -mag
	}
	if pred != taken || mag <= p.theta {
		p.train(w, taken)
	}
	p.ObserveBit(taken)
	return pred
}

// ObserveBit implements HistoryObserver.
func (p *Perceptron) ObserveBit(bit bool) {
	p.hist <<= 1
	if bit {
		p.hist |= 1
	}
	p.hist &= (1 << p.histBits) - 1
}

// Reset implements Predictor.
func (p *Perceptron) Reset() {
	n := (uint64(1) << p.entryBits) << p.strideShift
	if p.weights == nil {
		p.weights = make([]int8, n)
	} else {
		clear(p.weights)
	}
	p.hist = 0
}

var (
	_ Predictor       = (*Perceptron)(nil)
	_ HistoryObserver = (*Perceptron)(nil)
	_ Fused           = (*Perceptron)(nil)
)
