package bpred

import "testing"

func TestAgreeLearnsBiasedBranch(t *testing.T) {
	a := NewAgree(10, 6)
	misses := 0
	n := 200
	for i := 0; i < n; i++ {
		if p := a.Predict(0x20); i >= n/2 && !p {
			misses++
		}
		a.Update(0x20, true)
	}
	if misses != 0 {
		t.Errorf("agree missed %d on constant-taken branch", misses)
	}
}

func TestAgreeFirstOutcomeSetsBias(t *testing.T) {
	a := NewAgree(10, 6)
	a.Update(4, false) // bias fixed to not-taken
	// With a fresh weakly-agree counter, the prediction follows the bias.
	if a.Predict(4) {
		t.Error("prediction ignores the recorded bias")
	}
}

func TestAgreeToleratesAliasing(t *testing.T) {
	// Two branches that collide in the counter table but have opposite
	// biases: because both *agree* with their own bias, the shared
	// counters reinforce instead of fight. A gshare of the same size
	// suffers destructive interference.
	const bits = 2 // 4 counters: guaranteed collisions
	agree := NewAgree(bits, 0)
	gs := NewGShare(bits, 0)
	n := 400
	am, gm := 0, 0
	// pc 1 always taken, pc 5 never taken; they alias under mask 3.
	for i := 0; i < n; i++ {
		if p := agree.Predict(1); i >= n/2 && !p {
			am++
		}
		agree.Update(1, true)
		if p := agree.Predict(5); i >= n/2 && p {
			am++
		}
		agree.Update(5, false)

		if p := gs.Predict(1); i >= n/2 && !p {
			gm++
		}
		gs.Update(1, true)
		if p := gs.Predict(5); i >= n/2 && p {
			gm++
		}
		gs.Update(5, false)
	}
	if am != 0 {
		t.Errorf("agree missed %d under aliasing", am)
	}
	if gm == 0 {
		t.Error("gshare unexpectedly immune to aliasing (test broken?)")
	}
}

func TestAgreeHistoryCorrelation(t *testing.T) {
	// Alternating branch: history lets agree flip agreement per pattern.
	a := NewAgree(10, 4)
	misses := 0
	n := 400
	for i := 0; i < n; i++ {
		out := i%2 == 0
		if p := a.Predict(0x9); i >= n/2 && p != out {
			misses++
		}
		a.Update(0x9, out)
	}
	if misses != 0 {
		t.Errorf("agree missed %d on alternating branch", misses)
	}
}

func TestAgreeResetAndName(t *testing.T) {
	a := NewAgree(8, 4)
	a.Update(3, true)
	a.Reset()
	a.Update(3, false)
	if a.Predict(3) {
		t.Error("bias survived reset")
	}
	if a.Name() != "agree-8.4" {
		t.Errorf("name = %q", a.Name())
	}
}
