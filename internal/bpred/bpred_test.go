package bpred

import (
	"testing"

	"repro/internal/rng"
)

// trainAndMeasure feeds (pc, outcome) pairs and returns the misprediction
// count over the last half (after warmup).
func trainAndMeasure(p Predictor, pcs []uint64, outcomes []bool) int {
	misses := 0
	half := len(outcomes) / 2
	for i := range outcomes {
		pred := p.Predict(pcs[i])
		if i >= half && pred != outcomes[i] {
			misses++
		}
		p.Update(pcs[i], outcomes[i])
	}
	return misses
}

func constSeq(pc uint64, val bool, n int) ([]uint64, []bool) {
	pcs := make([]uint64, n)
	outs := make([]bool, n)
	for i := range pcs {
		pcs[i] = pc
		outs[i] = val
	}
	return pcs, outs
}

func TestStatic(t *testing.T) {
	st := NewStatic(true)
	if !st.Predict(0) {
		t.Error("static-taken predicted not-taken")
	}
	st.Update(0, false)
	if !st.Predict(0) {
		t.Error("static changed after update")
	}
	if NewStatic(false).Predict(5) {
		t.Error("static-nottaken predicted taken")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(10)
	pcs, outs := constSeq(0x40, true, 100)
	if m := trainAndMeasure(b, pcs, outs); m != 0 {
		t.Errorf("bimodal missed %d on constant-taken branch", m)
	}
}

func TestBimodalHysteresis(t *testing.T) {
	b := NewBimodal(10)
	// Saturate taken.
	for i := 0; i < 10; i++ {
		b.Update(4, true)
	}
	// One not-taken must not flip the prediction (2-bit hysteresis).
	b.Update(4, false)
	if !b.Predict(4) {
		t.Error("single not-taken flipped a saturated counter")
	}
	b.Update(4, false)
	if b.Predict(4) {
		t.Error("two not-takens should flip the prediction")
	}
}

func TestBimodalAliasing(t *testing.T) {
	// Two PCs that collide in a tiny table interfere; in a larger table
	// they do not.
	small := NewBimodal(2)
	// pc 1 and pc 5 collide (index mask 3).
	for i := 0; i < 8; i++ {
		small.Update(1, true)
	}
	small.Update(5, false)
	small.Update(5, false)
	if small.Predict(1) {
		t.Error("expected destructive aliasing in tiny table")
	}
	big := NewBimodal(10)
	for i := 0; i < 8; i++ {
		big.Update(1, true)
	}
	big.Update(5, false)
	big.Update(5, false)
	if !big.Predict(1) {
		t.Error("unexpected aliasing in large table")
	}
}

func TestGShareLearnsAlternation(t *testing.T) {
	// A strict T,N,T,N pattern is invisible to bimodal but trivial with
	// one bit of history.
	g := NewGShare(10, 8)
	n := 200
	misses := 0
	for i := 0; i < n; i++ {
		out := i%2 == 0
		pred := g.Predict(0x10)
		if i >= n/2 && pred != out {
			misses++
		}
		g.Update(0x10, out)
	}
	if misses != 0 {
		t.Errorf("gshare missed %d on alternating branch", misses)
	}
	b := NewBimodal(10)
	bm := 0
	for i := 0; i < n; i++ {
		out := i%2 == 0
		if p := b.Predict(0x10); i >= n/2 && p != out {
			bm++
		}
		b.Update(0x10, out)
	}
	if bm < n/4 {
		t.Errorf("bimodal unexpectedly good on alternation: %d misses", bm)
	}
}

func TestGShareLearnsCorrelation(t *testing.T) {
	// Branch B repeats the outcome of the immediately preceding branch A;
	// A is random. gshare should predict B near-perfectly, bimodal ~50%.
	r := rng.New(7)
	n := 2000
	gm, bm := 0, 0
	g := NewGShare(12, 8)
	b := NewBimodal(12)
	for i := 0; i < n; i++ {
		a := r.Bool()
		// Branch A at pc 0x100.
		g.Update(0x100, a)
		b.Update(0x100, a)
		// Branch B at pc 0x200 repeats a.
		if p := g.Predict(0x200); i >= n/2 && p != a {
			gm++
		}
		g.Update(0x200, a)
		if p := b.Predict(0x200); i >= n/2 && p != a {
			bm++
		}
		b.Update(0x200, a)
	}
	if gm > n/50 {
		t.Errorf("gshare missed %d/%d on correlated branch", gm, n/2)
	}
	if bm < n/8 {
		t.Errorf("bimodal suspiciously good on random correlated branch: %d", bm)
	}
}

func TestGAgAndGSelectLearnAlternation(t *testing.T) {
	for _, p := range []Predictor{NewGAg(10), NewGSelect(12, 6)} {
		n := 200
		misses := 0
		for i := 0; i < n; i++ {
			out := i%2 == 0
			if pred := p.Predict(0x30); i >= n/2 && pred != out {
				misses++
			}
			p.Update(0x30, out)
		}
		if misses != 0 {
			t.Errorf("%s missed %d on alternating branch", p.Name(), misses)
		}
	}
}

func TestLocalLearnsPeriodicPattern(t *testing.T) {
	// Period-4 pattern TTTN per branch: local history nails it.
	l := NewLocal(8, 10, 10)
	n := 400
	misses := 0
	for i := 0; i < n; i++ {
		out := i%4 != 3
		if p := l.Predict(0x44); i >= n/2 && p != out {
			misses++
		}
		l.Update(0x44, out)
	}
	if misses != 0 {
		t.Errorf("local missed %d on periodic branch", misses)
	}
}

func TestLocalHistoriesAreIndependent(t *testing.T) {
	l := NewLocal(8, 10, 10)
	// Branch X always taken, branch Y alternates; they must not disturb
	// each other (distinct history entries and mostly distinct patterns).
	misses := 0
	n := 400
	for i := 0; i < n; i++ {
		if p := l.Predict(1); i >= n/2 && !p {
			misses++
		}
		l.Update(1, true)
		out := i%2 == 0
		l.Update(2, out)
	}
	if misses != 0 {
		t.Errorf("local missed %d on constant branch with busy neighbour", misses)
	}
}

func TestTournamentBeatsWorseComponent(t *testing.T) {
	// Alternation: the global component wins; constant: both fine. The
	// tournament should be near-perfect on a mix.
	tp := NewTournament(12, 8)
	n := 600
	misses := 0
	for i := 0; i < n; i++ {
		out := i%2 == 0
		if p := tp.Predict(0x50); i >= n/2 && p != out {
			misses++
		}
		tp.Update(0x50, out)
	}
	if misses > n/50 {
		t.Errorf("tournament missed %d on alternating branch", misses)
	}
}

func TestObserveBitShiftsHistory(t *testing.T) {
	g := NewGShare(10, 8)
	g.ObserveBit(true)
	g.ObserveBit(false)
	g.ObserveBit(true)
	if got := g.History(); got != 0b101 {
		t.Errorf("history = %b, want 101", got)
	}
}

func TestObserveBitChangesPrediction(t *testing.T) {
	// Train gshare so that history H predicts taken and history H'
	// predicts not-taken; ObserveBit should switch between them.
	g := NewGShare(12, 4)
	for i := 0; i < 8; i++ {
		g.Reset()
	}
	g.Reset()
	// With history 0: train taken. With history 1: train not-taken.
	for i := 0; i < 4; i++ {
		g.hist = 0
		g.Update(0x7, true)
		g.hist = 1
		g.Update(0x7, false)
	}
	g.hist = 0
	if !g.Predict(0x7) {
		t.Fatal("history-0 prediction not taken")
	}
	g.ObserveBit(true) // history becomes ...1
	if g.Predict(0x7) {
		t.Error("ObserveBit did not steer the prediction")
	}
}

func TestResetClearsState(t *testing.T) {
	preds := []Predictor{
		NewBimodal(8), NewGShare(8, 6), NewGSelect(8, 4),
		NewGAg(8), NewLocal(6, 8, 8), NewTournament(8, 6),
	}
	for _, p := range preds {
		for i := 0; i < 50; i++ {
			p.Update(uint64(i%7), true)
		}
		p.Reset()
		// After reset, counters are weakly not-taken everywhere.
		if p.Predict(3) {
			t.Errorf("%s predicts taken after reset", p.Name())
		}
	}
}

func TestNames(t *testing.T) {
	cases := map[string]Predictor{
		"bimodal-8":     NewBimodal(8),
		"gshare-10.8":   NewGShare(10, 8),
		"gselect-10.4":  NewGSelect(10, 4),
		"gag-9":         NewGAg(9),
		"local-6.8.8":   NewLocal(6, 8, 8),
		"tournament-10": NewTournament(10, 8),
		"static-taken":  NewStatic(true),
	}
	for want, p := range cases {
		if got := p.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestGSelectClampsHistBits(t *testing.T) {
	g := NewGSelect(4, 10)
	// Must not panic and must index within the table.
	for i := 0; i < 100; i++ {
		g.Update(uint64(i), i%3 == 0)
	}
}

func TestPredictDoesNotMutate(t *testing.T) {
	g := NewGShare(10, 8)
	for i := 0; i < 20; i++ {
		g.Update(9, i%2 == 0)
	}
	h := g.History()
	p1 := g.Predict(9)
	p2 := g.Predict(9)
	if p1 != p2 || g.History() != h {
		t.Error("Predict mutated predictor state")
	}
}
