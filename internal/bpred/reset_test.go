package bpred

import (
	"testing"

	"repro/internal/rng"
)

// TestResetRestoresInitialBehaviour replays the same randomized stream
// twice over every concrete predictor with a Reset between, injecting
// history bits through ObserveBit where the predictor has an open
// history. The second pass must predict identically to the first: any
// state Reset fails to clear — a warm table entry, a stale history bit,
// a leftover perceptron weight — shows up as a divergence.
func TestResetRestoresInitialBehaviour(t *testing.T) {
	preds := []Predictor{
		NewStatic(true),
		NewStatic(false),
		NewBimodal(8),
		NewGShare(10, 8),
		NewGSelect(10, 4),
		NewGAg(8),
		NewLocal(6, 8, 8),
		NewTournament(10, 8),
		NewAgree(9, 7),
		NewPerceptron(6, 12),
	}
	for _, p := range preds {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			replay := func() []bool {
				p.Reset()
				r := rng.New(42)
				obs, isObs := p.(HistoryObserver)
				out := make([]bool, 0, 4000)
				for i := 0; i < 4000; i++ {
					pc := r.Bits(20)
					taken := r.Bool()
					out = append(out, p.Predict(pc))
					p.Update(pc, taken)
					if isObs && r.Chance(0.15) {
						obs.ObserveBit(r.Bool())
					}
				}
				return out
			}
			first := replay()
			second := replay()
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("prediction %d differs after Reset: %v then %v", i, first[i], second[i])
				}
			}
		})
	}
}
