package bpred

import (
	"bytes"
	"testing"

	"repro/internal/rng"
	"repro/internal/wire"
)

// drive trains p over a deterministic randomized stream, interleaving
// ObserveBit traffic so history registers hold non-branch bits too.
func drive(p Predictor, seed uint64, n int) {
	r := rng.New(seed)
	obs, _ := p.(HistoryObserver)
	for i := 0; i < n; i++ {
		pc := r.Uint64() % 64
		p.Update(pc, r.Uint64()&3 != 0)
		if obs != nil && r.Uint64()&7 == 0 {
			obs.ObserveBit(r.Uint64()&1 == 1)
		}
	}
}

// TestStateRoundTripResume snapshots a trained predictor, loads the
// state into a freshly constructed twin, and requires the twin to agree
// with the original on every future prediction — and to re-serialize to
// the identical bytes.
func TestStateRoundTripResume(t *testing.T) {
	for name, build := range fusedPairs() {
		t.Run(name, func(t *testing.T) {
			orig, twin := build()
			drive(orig, 42, 5000)

			state := orig.(Stater).AppendState(nil)
			c := wire.NewCursor(state)
			if err := twin.(Stater).LoadState(c); err != nil {
				t.Fatalf("LoadState: %v", err)
			}
			if err := c.Done(); err != nil {
				t.Fatalf("state not fully consumed: %v", err)
			}
			if got := twin.(Stater).AppendState(nil); !bytes.Equal(got, state) {
				t.Fatalf("re-serialized state differs (%d vs %d bytes)", len(got), len(state))
			}

			// Byte-identical resume: both must now make the same
			// predictions and evolve identically.
			r := rng.New(7)
			oobs, _ := orig.(HistoryObserver)
			tobs, _ := twin.(HistoryObserver)
			for i := 0; i < 3000; i++ {
				pc := r.Uint64() % 64
				taken := r.Uint64()&3 == 0
				po := orig.(Fused).PredictUpdate(pc, taken)
				pt := twin.(Fused).PredictUpdate(pc, taken)
				if po != pt {
					t.Fatalf("event %d: original predicted %v, restored twin %v", i, po, pt)
				}
				if oobs != nil && i%5 == 0 {
					bit := r.Uint64()&1 == 1
					oobs.ObserveBit(bit)
					tobs.ObserveBit(bit)
				}
			}
			if a, b := orig.(Stater).AppendState(nil), twin.(Stater).AppendState(nil); !bytes.Equal(a, b) {
				t.Fatal("states diverged after resume")
			}
		})
	}
}

// TestLoadStateRejectsTruncation checks every kind fails cleanly on a
// truncated payload instead of loading partial state silently.
func TestLoadStateRejectsTruncation(t *testing.T) {
	for name, build := range fusedPairs() {
		if name == "static-taken" || name == "static-nottaken" {
			continue // zero-length state cannot be truncated
		}
		t.Run(name, func(t *testing.T) {
			orig, twin := build()
			drive(orig, 3, 1000)
			state := orig.(Stater).AppendState(nil)
			c := wire.NewCursor(state[:len(state)-1])
			if err := twin.(Stater).LoadState(c); err == nil && c.Done() == nil {
				t.Fatal("truncated state loaded without error")
			}
		})
	}
}

// TestLoadStateRejectsCorruptValues checks the semantic validation:
// out-of-range counters and round-robin cursors are refused.
func TestLoadStateRejectsCorruptValues(t *testing.T) {
	b := NewBimodal(4)
	state := b.AppendState(nil)
	state[0] = 9 // counter > 3
	if err := NewBimodal(4).LoadState(wire.NewCursor(state)); err == nil {
		t.Fatal("out-of-range counter accepted")
	}

	a := NewAgree(4, 4)
	state = a.AppendState(nil)
	// Layout: u64 hist, then the counter table, then rr.
	state[8+a.table.size()] = agreeWays // rr cursor out of range
	if err := NewAgree(4, 4).LoadState(wire.NewCursor(state)); err == nil {
		t.Fatal("out-of-range rr cursor accepted")
	}

	state = a.AppendState(nil)
	state[8+a.table.size()+len(a.rr)+8] = 7 // bias flags > 3
	if err := NewAgree(4, 4).LoadState(wire.NewCursor(state)); err == nil {
		t.Fatal("out-of-range bias flags accepted")
	}
}
