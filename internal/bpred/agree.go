package bpred

import "fmt"

// agreeWays is the associativity of the bias table. The original design
// keeps the bias bit in the BTB, and BTBs of the era were 4-way
// set-associative; four ways also means a program whose static branches
// fit the table (2^tableBits entries) never evicts a bias, matching the
// idealised unaliased model on every paper workload.
const agreeWays = 4

// biasEntry is one way of the bias table: the full PC as the tag plus the
// branch's first-outcome bias bit.
type biasEntry struct {
	tag   uint64
	valid bool
	bias  bool
}

// Agree is an agree predictor (Sprangle et al., ISCA 1997), a design of
// the paper's era built to tolerate table aliasing: each branch records a
// bias on first encounter, and the shared counter table — indexed with
// pc XOR global history — learns whether the current instance *agrees*
// with that bias. Two aliased branches that both usually agree reinforce
// rather than fight each other.
//
// The bias bit lives in a fixed-size BTB-style structure: 2^tableBits
// entries organised as 4-way sets with full-PC tags and round-robin
// replacement. A branch whose entry was displaced falls back to the
// default not-taken bias until its next outcome re-allocates it, exactly
// as BTB displacement behaves in hardware — and unlike an unbounded map,
// the footprint cannot grow without bound on adversarial PC streams fed
// to long-lived serving sessions.
type Agree struct {
	tableBits int
	histBits  int
	table     ctrTable    // taken == "agrees with bias"
	bias      []biasEntry // set-associative: sets of agreeWays entries
	rr        []uint8     // per-set round-robin replacement cursor
	setMask   uint64
	hist      uint64
}

// NewAgree returns an agree predictor with 2^tableBits agree counters,
// 2^tableBits BTB-resident bias bits, and histBits of global history.
func NewAgree(tableBits, histBits int) *Agree {
	a := &Agree{tableBits: tableBits, histBits: histBits}
	a.Reset()
	return a
}

// Name implements Predictor.
func (a *Agree) Name() string { return fmt.Sprintf("agree-%d.%d", a.tableBits, a.histBits) }

func (a *Agree) index(pc uint64) uint64 {
	h := a.hist & ((1 << a.histBits) - 1)
	return (pc ^ h) & a.table.mask
}

// biasSet returns the first entry index of pc's bias set.
func (a *Agree) biasSet(pc uint64) uint64 { return (pc & a.setMask) * agreeWays }

// lookupBias returns the recorded bias for pc, or the default not-taken
// bias if no way of pc's set holds it.
func (a *Agree) lookupBias(pc uint64) bool {
	s := a.biasSet(pc)
	for w := uint64(0); w < agreeWays; w++ {
		if e := &a.bias[s+w]; e.valid && e.tag == pc {
			return e.bias
		}
	}
	return false
}

// allocBias returns pc's recorded bias, allocating an entry with the
// current outcome as the bias on a miss (first free way, else round-robin
// replacement) — the BTB-allocation analogue of the original "first
// encounter fixes the bias".
func (a *Agree) allocBias(pc uint64, taken bool) bool {
	s := a.biasSet(pc)
	for w := uint64(0); w < agreeWays; w++ {
		e := &a.bias[s+w]
		if e.valid && e.tag == pc {
			return e.bias
		}
		if !e.valid {
			*e = biasEntry{tag: pc, valid: true, bias: taken}
			return taken
		}
	}
	set := pc & a.setMask
	w := uint64(a.rr[set])
	a.rr[set] = uint8((w + 1) % agreeWays)
	a.bias[s+w] = biasEntry{tag: pc, valid: true, bias: taken}
	return taken
}

// Predict implements Predictor.
func (a *Agree) Predict(pc uint64) bool {
	bias := a.lookupBias(pc) // default bias: not-taken until first outcome
	agree := a.table.taken(a.index(pc))
	return bias == agree
}

// Update implements Predictor.
func (a *Agree) Update(pc uint64, taken bool) {
	bias := a.allocBias(pc, taken)
	a.table.update(a.index(pc), taken == bias)
	a.ObserveBit(taken)
}

// PredictUpdate implements Fused.
func (a *Agree) PredictUpdate(pc uint64, taken bool) bool {
	i := a.index(pc)
	agree := a.table.taken(i)
	pred := a.lookupBias(pc) == agree
	bias := a.allocBias(pc, taken)
	a.table.update(i, taken == bias)
	a.hist = a.hist<<1 | b2u(taken)
	return pred
}

// ObserveBit implements HistoryObserver.
func (a *Agree) ObserveBit(bit bool) {
	a.hist <<= 1
	if bit {
		a.hist |= 1
	}
}

// Reset implements Predictor.
func (a *Agree) Reset() {
	// Counters initialise to weak agreement so an unbiased start predicts
	// the bias.
	if a.table.words == nil {
		a.table = newCtrTable(a.tableBits, 2)
	} else {
		a.table.reset()
	}
	sets := uint64(1)
	if a.tableBits > 2 {
		sets = 1 << (a.tableBits - 2)
	}
	a.setMask = sets - 1
	a.bias = make([]biasEntry, sets*agreeWays)
	a.rr = make([]uint8, sets)
	a.hist = 0
}

var (
	_ Predictor       = (*Agree)(nil)
	_ HistoryObserver = (*Agree)(nil)
	_ Fused           = (*Agree)(nil)
)
