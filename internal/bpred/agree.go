package bpred

import "fmt"

// Agree is an agree predictor (Sprangle et al., ISCA 1997), a design of
// the paper's era built to tolerate table aliasing: each branch records a
// bias on first encounter, and the shared counter table — indexed with
// pc XOR global history — learns whether the current instance *agrees*
// with that bias. Two aliased branches that both usually agree reinforce
// rather than fight each other.
type Agree struct {
	tableBits int
	histBits  int
	table     []counter       // taken() == "agrees with bias"
	bias      map[uint64]bool // per-branch bias, as a BTB-resident bit
	hist      uint64
}

// NewAgree returns an agree predictor with 2^tableBits agree counters and
// histBits of global history. The per-branch bias bit is modelled as
// BTB-resident (unaliased), as in the original design.
func NewAgree(tableBits, histBits int) *Agree {
	a := &Agree{tableBits: tableBits, histBits: histBits}
	a.Reset()
	return a
}

// Name implements Predictor.
func (a *Agree) Name() string { return fmt.Sprintf("agree-%d.%d", a.tableBits, a.histBits) }

func (a *Agree) index(pc uint64) uint64 {
	h := a.hist & ((1 << a.histBits) - 1)
	return (pc ^ h) & (uint64(len(a.table)) - 1)
}

// Predict implements Predictor.
func (a *Agree) Predict(pc uint64) bool {
	bias := a.bias[pc] // default bias: not-taken until first outcome
	agree := a.table[a.index(pc)].taken()
	return bias == agree
}

// Update implements Predictor.
func (a *Agree) Update(pc uint64, taken bool) {
	if _, ok := a.bias[pc]; !ok {
		// First encounter fixes the bias, as BTB allocation would.
		a.bias[pc] = taken
	}
	i := a.index(pc)
	a.table[i] = a.table[i].update(taken == a.bias[pc])
	a.ObserveBit(taken)
}

// ObserveBit implements HistoryObserver.
func (a *Agree) ObserveBit(bit bool) {
	a.hist <<= 1
	if bit {
		a.hist |= 1
	}
}

// Reset implements Predictor.
func (a *Agree) Reset() {
	a.table = newTable(a.tableBits)
	// Counters initialise to weak agreement so an unbiased start predicts
	// the bias.
	for i := range a.table {
		a.table[i] = 2
	}
	a.bias = make(map[uint64]bool)
	a.hist = 0
}

var (
	_ Predictor       = (*Agree)(nil)
	_ HistoryObserver = (*Agree)(nil)
)
