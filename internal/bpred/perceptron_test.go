package bpred

import (
	"testing"

	"repro/internal/rng"
)

func TestPerceptronLearnsBias(t *testing.T) {
	p := NewPerceptron(8, 12)
	misses := 0
	n := 400
	for i := 0; i < n; i++ {
		if pr := p.Predict(0x11); i >= n/2 && !pr {
			misses++
		}
		p.Update(0x11, true)
	}
	if misses != 0 {
		t.Errorf("perceptron missed %d on constant branch", misses)
	}
}

func TestPerceptronLearnsAlternation(t *testing.T) {
	p := NewPerceptron(8, 12)
	misses := 0
	n := 400
	for i := 0; i < n; i++ {
		out := i%2 == 0
		if pr := p.Predict(0x22); i >= n/2 && pr != out {
			misses++
		}
		p.Update(0x22, out)
	}
	if misses != 0 {
		t.Errorf("perceptron missed %d on alternation", misses)
	}
}

func TestPerceptronLearnsSingleBitCorrelation(t *testing.T) {
	// Branch B repeats branch A, with noise branches in between: the
	// perceptron should discover which history position matters.
	r := rng.New(5)
	p := NewPerceptron(8, 16)
	misses := 0
	n := 3000
	for i := 0; i < n; i++ {
		a := r.Bool()
		p.Update(0x100, a)
		p.Update(0x200, r.Bool()) // noise
		p.Update(0x300, r.Bool()) // noise
		if pr := p.Predict(0x400); i >= n/2 && pr != a {
			misses++
		}
		p.Update(0x400, a)
	}
	// Threshold-based training keeps |y| near theta, so noise bits flip a
	// small fraction of predictions; ~7% residual error is expected.
	if misses > n/10 {
		t.Errorf("perceptron missed %d/%d on noisy single-bit correlation", misses, n/2)
	}
}

func TestPerceptronCannotLearnXOR(t *testing.T) {
	// The classic limitation: XOR of two history bits is not linearly
	// separable. A gshare of comparable size learns it; the perceptron
	// cannot. This is a property check of the implementation, not a flaw.
	r := rng.New(6)
	p := NewPerceptron(8, 8)
	g := NewGShare(12, 8)
	pm, gm := 0, 0
	n := 4000
	for i := 0; i < n; i++ {
		a, b := r.Bool(), r.Bool()
		x := a != b
		for _, pr := range []Predictor{p, g} {
			pr.Update(0x100, a)
			pr.Update(0x200, b)
		}
		if pr := p.Predict(0x300); i >= n/2 && pr != x {
			pm++
		}
		p.Update(0x300, x)
		if pr := g.Predict(0x300); i >= n/2 && pr != x {
			gm++
		}
		g.Update(0x300, x)
	}
	if gm > n/40 {
		t.Errorf("gshare missed %d on XOR (test broken?)", gm)
	}
	if pm < n/8 {
		t.Errorf("perceptron suspiciously good on XOR: %d misses", pm)
	}
}

func TestPerceptronWeightSaturation(t *testing.T) {
	p := NewPerceptron(4, 4)
	for i := 0; i < 1000; i++ {
		p.Update(1, true)
	}
	w := p.row(p.index(1))
	for i, v := range w {
		if v > 127 || v < -127 {
			t.Errorf("weight %d out of range: %d", i, v)
		}
	}
}

func TestPerceptronResetAndName(t *testing.T) {
	p := NewPerceptron(6, 10)
	for i := 0; i < 50; i++ {
		p.Update(2, true)
	}
	p.Reset()
	// Fresh perceptron with zero weights predicts taken (y = 0 >= 0);
	// that's the defined tie-break.
	if !p.Predict(2) {
		t.Error("zero perceptron tie-break changed")
	}
	if p.Name() != "perceptron-6.10" {
		t.Errorf("name = %q", p.Name())
	}
}
