package sim_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The benchmarks below measure the sweep runner on a realistic grid: the
// full workload suite evaluated under a 4-point gshare size sweep, the
// shape every harness experiment and bpsweep grid has. Serial vs parallel
// is the engine's headline number; the speedup on an N-core runner is
// recorded in EXPERIMENTS.md.

func sweepJobs(b *testing.B) []sim.Job[core.Metrics] {
	b.Helper()
	var jobs []sim.Job[core.Metrics]
	for _, w := range workload.Suite() {
		tr, err := trace.Collect(w.Build(), 3_000_000)
		if err != nil {
			b.Fatal(err)
		}
		for _, bits := range []int{8, 10, 12, 14} {
			sp := sim.For("gshare", bits, 8)
			jobs = append(jobs, func(ctx context.Context) (core.Metrics, error) {
				return core.Evaluate(tr, core.EvalConfig{Predictor: sp.MustNew()}), nil
			})
		}
	}
	return jobs
}

func benchSweep(b *testing.B, workers int) {
	jobs := sweepJobs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Sweep(context.Background(), jobs, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerial pins the pool to one worker: the pre-engine
// baseline of nested for-loops.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel uses the default pool width (GOMAXPROCS).
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// BenchmarkSweepWorkers reports scaling at fixed widths, independent of
// the host's GOMAXPROCS.
func BenchmarkSweepWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchSweep(b, w) })
	}
}
