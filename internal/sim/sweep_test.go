package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestSweepOrdersResults(t *testing.T) {
	const n = 100
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			// Finish out of submission order on purpose.
			if i%7 == 0 {
				time.Sleep(time.Millisecond)
			}
			return i * i, nil
		}
	}
	for _, workers := range []int{0, 1, 3, 64} {
		got, err := Sweep(context.Background(), jobs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestSweepEmpty(t *testing.T) {
	got, err := Sweep[int](context.Background(), nil, 4)
	if err != nil || got != nil {
		t.Fatalf("Sweep(nil) = %v, %v", got, err)
	}
}

func TestSweepCapturesErrorWithIndex(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job[int]{
		func(context.Context) (int, error) { return 1, nil },
		func(context.Context) (int, error) { return 0, boom },
		func(context.Context) (int, error) { return 3, nil },
	}
	got, err := Sweep(context.Background(), jobs, 1)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "job 1") {
		t.Errorf("error lacks job index: %v", err)
	}
	if got[0] != 1 {
		t.Errorf("successful result lost: %v", got)
	}
}

func TestSweepErrorStopsRemainingJobs(t *testing.T) {
	var ran atomic.Int64
	const n = 1000
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			ran.Add(1)
			if i == 0 {
				return 0, fmt.Errorf("fail fast")
			}
			return i, nil
		}
	}
	if _, err := Sweep(context.Background(), jobs, 2); err == nil {
		t.Fatal("error swallowed")
	}
	// With 2 workers and the first job failing, almost all of the grid
	// must have been skipped (a few in-flight jobs may still finish).
	if ran.Load() > n/2 {
		t.Errorf("%d of %d jobs ran after the failure", ran.Load(), n)
	}
}

func TestSweepHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	const n = 500
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			if i == 3 {
				cancel() // simulate an external timeout mid-sweep
			}
			ran.Add(1)
			return i, nil
		}
	}
	_, err := Sweep(ctx, jobs, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() > 10 {
		t.Errorf("%d jobs ran after cancellation", ran.Load())
	}
}

func TestSweepDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	jobs := make([]Job[int], 100)
	for i := range jobs {
		jobs[i] = func(ctx context.Context) (int, error) {
			select {
			case <-time.After(2 * time.Millisecond):
			case <-ctx.Done():
			}
			return 0, nil
		}
	}
	if _, err := Sweep(ctx, jobs, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestMap(t *testing.T) {
	items := []int{3, 1, 4, 1, 5, 9}
	got, err := Map(context.Background(), items, 2, func(_ context.Context, v int) (int, error) {
		return v * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != items[i]*2 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

// TestSweepParallelEvaluationsAreDeterministic runs the same predictor
// grid twice, serial and parallel, and requires identical results — the
// property the harness's byte-identical CSV regeneration rests on.
func TestSweepParallelEvaluationsAreDeterministic(t *testing.T) {
	specs := []Spec{
		For("gshare", 10, 6),
		For("bimodal", 10),
		For("agree", 10, 6),
		For("perceptron", 6, 12),
	}
	eval := func(s Spec) uint64 {
		p := s.MustNew()
		var misses uint64
		for i := 0; i < 5000; i++ {
			pc := uint64(i % 13)
			taken := (i/3)%2 == 0
			if p.Predict(pc) != taken {
				misses++
			}
			p.Update(pc, taken)
		}
		return misses
	}
	run := func(workers int) []uint64 {
		got, err := Map(context.Background(), specs, workers, func(_ context.Context, s Spec) (uint64, error) {
			return eval(s), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	serial, parallel := run(1), run(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("spec %s: serial %d != parallel %d", specs[i], serial[i], parallel[i])
		}
	}
}
