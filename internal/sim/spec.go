// Package sim is the unified simulation engine underneath the experiment
// harness and the simulation CLIs. It provides the two pieces every
// predictor study needs and that used to be hand-rolled per entry point:
//
//   - a predictor registry: Spec names a predictor kind and its size
//     parameters, Parse reads the "kind:param:param" spelling used on
//     command lines ("gshare:12:8"), and New constructs the predictor —
//     one place to add a predictor kind for every tool at once;
//   - a parallel sweep runner: Sweep fans a predictor × workload grid out
//     over a bounded worker pool with context cancellation, per-job error
//     capture, and deterministic (submission-order) results.
package sim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bpred"
)

// Spec identifies a predictor kind and its size parameters. The zero
// value of a parameter means "use the kind's default", so
// Spec{Kind: "gshare"} is the default gshare:12:8. Which fields a kind
// reads is given by its registry entry; sizes are log2 (bit counts).
type Spec struct {
	// Kind names a registered predictor kind; see Kinds.
	Kind string
	// TableBits is the first size parameter: counter-table bits for the
	// table-based kinds, weight entries for perceptron, history-table
	// entries for local.
	TableBits int
	// HistBits is the history length (second parameter; the only
	// parameter for gag).
	HistBits int
	// PatBits is the third parameter: local's pattern-table bits.
	PatBits int
}

// param describes one positional size parameter of a predictor kind.
type param struct {
	name string
	def  int
	min  int // minimum legal value (max is maxParam for all)
	get  func(*Spec) *int
}

// maxParam bounds every size parameter: 2^28 two-bit counters is already
// a 64 MiB table, far beyond anything the paper sweeps.
const maxParam = 28

func tableParam(name string, def int) param {
	return param{name: name, def: def, min: 1, get: func(s *Spec) *int { return &s.TableBits }}
}

func histParam(name string, def int) param {
	return param{name: name, def: def, min: 1, get: func(s *Spec) *int { return &s.HistBits }}
}

func patParam(name string, def int) param {
	return param{name: name, def: def, min: 1, get: func(s *Spec) *int { return &s.PatBits }}
}

// kindDef is one registry entry.
type kindDef struct {
	name   string
	doc    string
	params []param
	make   func(Spec) bpred.Predictor
}

// registry holds every predictor kind, keyed by name. Adding a predictor
// to every CLI and the harness is one entry here.
var registry = map[string]*kindDef{
	"taken": {
		name: "taken", doc: "static always-taken",
		make: func(Spec) bpred.Predictor { return bpred.NewStatic(true) },
	},
	"nottaken": {
		name: "nottaken", doc: "static always-not-taken",
		make: func(Spec) bpred.Predictor { return bpred.NewStatic(false) },
	},
	"bimodal": {
		name: "bimodal", doc: "pc-indexed 2-bit counters",
		params: []param{tableParam("table", 12)},
		make:   func(s Spec) bpred.Predictor { return bpred.NewBimodal(s.TableBits) },
	},
	"gshare": {
		name: "gshare", doc: "global history XOR pc",
		params: []param{tableParam("table", 12), histParam("hist", 8)},
		make:   func(s Spec) bpred.Predictor { return bpred.NewGShare(s.TableBits, s.HistBits) },
	},
	"gselect": {
		name: "gselect", doc: "concatenated pc and history",
		params: []param{tableParam("table", 12), histParam("hist", 6)},
		make:   func(s Spec) bpred.Predictor { return bpred.NewGSelect(s.TableBits, s.HistBits) },
	},
	"gag": {
		name: "gag", doc: "purely history-indexed",
		params: []param{histParam("hist", 12)},
		make:   func(s Spec) bpred.Predictor { return bpred.NewGAg(s.HistBits) },
	},
	"local": {
		name: "local", doc: "PAg two-level local",
		params: []param{tableParam("entries", 8), histParam("hist", 10), patParam("pattern", 12)},
		make:   func(s Spec) bpred.Predictor { return bpred.NewLocal(s.TableBits, s.HistBits, s.PatBits) },
	},
	"tournament": {
		name: "tournament", doc: "McFarling global/local chooser",
		// The local component is sized bits-2, so the chooser needs >= 2.
		params: []param{{name: "table", def: 12, min: 2, get: func(s *Spec) *int { return &s.TableBits }},
			histParam("hist", 8)},
		make: func(s Spec) bpred.Predictor { return bpred.NewTournament(s.TableBits, s.HistBits) },
	},
	"agree": {
		name: "agree", doc: "bias-agreement (aliasing-tolerant)",
		params: []param{tableParam("table", 12), histParam("hist", 8)},
		make:   func(s Spec) bpred.Predictor { return bpred.NewAgree(s.TableBits, s.HistBits) },
	},
	"perceptron": {
		name: "perceptron", doc: "perceptron over global history",
		params: []param{tableParam("entries", 8), histParam("hist", 24)},
		make:   func(s Spec) bpred.Predictor { return bpred.NewPerceptron(s.TableBits, s.HistBits) },
	},
}

// Kinds returns the registered predictor kind names, sorted.
func Kinds() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Usage returns a per-kind summary of the spec syntax — the canonical
// default spelling, the parameter names in spec order, and what the
// predictor is — for CLI listings and flag help.
func Usage() string {
	var b strings.Builder
	b.WriteString("predictor spec: kind[:bits...], omitted parameters take the defaults shown\n")
	for _, k := range Kinds() {
		def := registry[k]
		names := make([]string, len(def.params))
		for i, p := range def.params {
			names[i] = p.name
		}
		params := "-"
		if len(names) > 0 {
			params = strings.Join(names, ":")
		}
		b.WriteString(fmt.Sprintf("  %-18s %-24s %s\n", Spec{Kind: k}.String(), params, def.doc))
	}
	return b.String()
}

// For builds a Spec for kind from positional size parameters, in the
// kind's registry order; omitted parameters take the kind's defaults.
// Validation happens in New, so For can be used in composite literals.
func For(kind string, params ...int) Spec {
	s := Spec{Kind: kind}
	def, ok := registry[kind]
	if !ok {
		return s
	}
	for i, v := range params {
		if i >= len(def.params) {
			break
		}
		*def.params[i].get(&s) = v
	}
	return s
}

// Parse reads a predictor spec of the form "kind" or "kind:12" or
// "kind:12:8": the kind name followed by colon-separated size parameters
// in registry order. Omitted parameters take the kind's defaults.
func Parse(text string) (Spec, error) {
	fields := strings.Split(strings.TrimSpace(text), ":")
	def, ok := registry[fields[0]]
	if !ok {
		return Spec{}, fmt.Errorf("sim: unknown predictor kind %q (want %s)", fields[0], strings.Join(Kinds(), ", "))
	}
	if len(fields)-1 > len(def.params) {
		return Spec{}, fmt.Errorf("sim: %s takes at most %d parameters, got %q", def.name, len(def.params), text)
	}
	s := Spec{Kind: def.name}
	for i, f := range fields[1:] {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return Spec{}, fmt.Errorf("sim: bad %s %s bits %q in %q", def.name, def.params[i].name, f, text)
		}
		// An explicit 0 would otherwise be indistinguishable from "use
		// the default"; reject it here.
		if p := def.params[i]; v < p.min || v > maxParam {
			return Spec{}, fmt.Errorf("sim: %s %s bits %d out of range [%d,%d]", def.name, p.name, v, p.min, maxParam)
		}
		*def.params[i].get(&s) = v
	}
	if err := s.validate(def); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// MustParse is Parse but panics on error, for compile-time-constant specs.
func MustParse(text string) Spec {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

// normalize fills defaulted (zero) parameters in.
func (s Spec) normalize(def *kindDef) Spec {
	for _, p := range def.params {
		if f := p.get(&s); *f == 0 {
			*f = p.def
		}
	}
	return s
}

func (s Spec) validate(def *kindDef) error {
	s = s.normalize(def)
	for _, p := range def.params {
		if v := *p.get(&s); v < p.min || v > maxParam {
			return fmt.Errorf("sim: %s %s bits %d out of range [%d,%d]", def.name, p.name, v, p.min, maxParam)
		}
	}
	return nil
}

// Normalized validates the spec and returns it with defaulted (zero)
// parameters filled in — the concrete sizes New will build. The
// black-box prober uses this to know what a spec claims before
// verifying the built predictor matches.
func (s Spec) Normalized() (Spec, error) {
	def, ok := registry[s.Kind]
	if !ok {
		return Spec{}, fmt.Errorf("sim: unknown predictor kind %q (want %s)", s.Kind, strings.Join(Kinds(), ", "))
	}
	if err := s.validate(def); err != nil {
		return Spec{}, err
	}
	return s.normalize(def), nil
}

// String renders the canonical full spelling ("gshare:12:8"), with
// defaults filled in; Parse round-trips it.
func (s Spec) String() string {
	def, ok := registry[s.Kind]
	if !ok {
		return s.Kind
	}
	s = s.normalize(def)
	var b strings.Builder
	b.WriteString(def.name)
	for _, p := range def.params {
		fmt.Fprintf(&b, ":%d", *p.get(&s))
	}
	return b.String()
}

// New validates the spec and constructs the predictor.
func (s Spec) New() (bpred.Predictor, error) {
	def, ok := registry[s.Kind]
	if !ok {
		return nil, fmt.Errorf("sim: unknown predictor kind %q (want %s)", s.Kind, strings.Join(Kinds(), ", "))
	}
	if err := s.validate(def); err != nil {
		return nil, err
	}
	return def.make(s.normalize(def)), nil
}

// MustNew is New but panics on error, for specs known valid by
// construction (the harness's fixed experiment grids).
func (s Spec) MustNew() bpred.Predictor {
	p, err := s.New()
	if err != nil {
		panic(err)
	}
	return p
}

// NewPredictor is a convenience for one-shot construction from the text
// spelling: NewPredictor("gshare:12:8").
func NewPredictor(text string) (bpred.Predictor, error) {
	s, err := Parse(text)
	if err != nil {
		return nil, err
	}
	return s.New()
}
