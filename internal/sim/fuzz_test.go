package sim

import "testing"

// FuzzParse throws arbitrary strings at the spec parser. Two properties
// must hold: Parse never panics, and anything it accepts round-trips —
// the canonical String() spelling parses back to the same canonical
// spelling. The fuzz body never constructs the predictor, so an accepted
// spec with maximal size parameters costs nothing.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"gshare:12:8", "gshare", "bimodal:6", "local:6:8:10", "taken",
		"perceptron:8:24", " gag:10 ", "gshare:0", "gshare:-3", "nope",
		"gshare:12:8:4", "tournament:1", ":::", "gshare:999999999999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return
		}
		canon := s.String()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical spelling %q of accepted input %q rejected: %v", canon, text, err)
		}
		if got := s2.String(); got != canon {
			t.Fatalf("round trip drifted: %q -> %q -> %q", text, canon, got)
		}
	})
}
