package sim

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"gshare:12:8", "gshare:12:8"},
		{"gshare", "gshare:12:8"},    // defaults fill in
		{"gshare:10", "gshare:10:8"}, // partial defaults
		{" gshare:10:4 ", "gshare:10:4"},
		{"bimodal", "bimodal:12"},
		{"bimodal:6", "bimodal:6"},
		{"gselect", "gselect:12:6"},
		{"gag", "gag:12"},
		{"gag:10", "gag:10"},
		{"local", "local:8:10:12"},
		{"local:6:8:10", "local:6:8:10"},
		{"tournament", "tournament:12:8"},
		{"agree:12:8", "agree:12:8"},
		{"perceptron", "perceptron:8:24"},
		{"taken", "taken"},
		{"nottaken", "nottaken"},
	}
	for _, c := range cases {
		s, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := s.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// The canonical spelling must parse back to the same spec.
		s2, err := Parse(s.String())
		if err != nil {
			t.Errorf("Parse(%q): %v", s.String(), err)
			continue
		}
		if s2.String() != s.String() {
			t.Errorf("round trip drifted: %q -> %q", s.String(), s2.String())
		}
	}
}

func TestParseRejects(t *testing.T) {
	cases := []string{
		"",                 // no kind
		"nope",             // unknown kind
		"gshare:12:8:4",    // too many parameters
		"gshare:x",         // malformed bits
		"gshare:12:",       // empty bits field
		"gshare:0",         // below range
		"gshare:-3",        // negative
		"gshare:29",        // above range
		"bimodal:12:8",     // bimodal takes one parameter
		"taken:1",          // static kinds take none
		"tournament:1",     // below tournament's minimum chooser size
		"local:8:10:10:10", // too many
	}
	for _, c := range cases {
		if s, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) accepted as %v", c, s)
		}
	}
}

func TestNewRejectsInvalidSpecs(t *testing.T) {
	for _, s := range []Spec{
		{Kind: "nope"},
		{},
		{Kind: "gshare", TableBits: 40},
		{Kind: "gshare", TableBits: -1},
		For("tournament", 1),
	} {
		if p, err := s.New(); err == nil {
			t.Errorf("Spec%+v.New() built %s", s, p.Name())
		}
	}
}

// TestEveryKindConstructs exercises the whole registry: each kind's
// default spec must construct a predictor that predicts, trains, and
// resets without blowing up, and whose Name is non-empty.
func TestEveryKindConstructs(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			s, err := Parse(kind)
			if err != nil {
				t.Fatalf("Parse(%q): %v", kind, err)
			}
			p, err := s.New()
			if err != nil {
				t.Fatalf("New(%v): %v", s, err)
			}
			if p.Name() == "" {
				t.Error("empty predictor name")
			}
			// Drive it: a short taken/not-taken pattern must not panic and
			// must leave the predictor returning some prediction.
			for i := 0; i < 64; i++ {
				pc := uint64(i % 7)
				p.Predict(pc)
				p.Update(pc, i%3 == 0)
			}
			p.Reset()
			_ = p.Predict(0)

			// A second instance from the same spec must be independent
			// state (fresh tables), i.e. construction is a factory, not a
			// singleton.
			q := s.MustNew()
			if q == p {
				t.Error("MustNew returned a shared instance")
			}
		})
	}
}

func TestForPositionalParams(t *testing.T) {
	if got := For("gshare", 10).String(); got != "gshare:10:8" {
		t.Errorf("For(gshare,10) = %s", got)
	}
	if got := For("local", 6, 8, 10).String(); got != "local:6:8:10" {
		t.Errorf("For(local,6,8,10) = %s", got)
	}
	if got := For("gag", 9).String(); got != "gag:9" {
		t.Errorf("For(gag,9) = %s", got)
	}
	// Extra positional params beyond the kind's arity are ignored rather
	// than corrupting unrelated fields.
	if got := For("bimodal", 6, 99).String(); got != "bimodal:6" {
		t.Errorf("For(bimodal,6,99) = %s", got)
	}
}

func TestNewPredictorText(t *testing.T) {
	p, err := NewPredictor("gshare:10:4")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "gshare-10.4" {
		t.Errorf("Name = %s", p.Name())
	}
	if _, err := NewPredictor("bogus"); err == nil {
		t.Error("bogus spec accepted")
	}
}

func TestUsageMentionsEveryKind(t *testing.T) {
	u := Usage()
	for _, k := range Kinds() {
		if !strings.Contains(u, k) {
			t.Errorf("Usage() missing %s: %s", k, u)
		}
	}
}

// TestParseErrorMessages pins down what each failure mode tells the user:
// the message must name the offending kind or parameter, so a CLI typo is
// diagnosable from the error alone.
func TestParseErrorMessages(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"nope", `unknown predictor kind "nope"`},
		{"nope", "want agree, bimodal"}, // the known kinds are listed
		{"", "unknown predictor kind"},
		{"gshare:x", `bad gshare table bits "x"`},
		{"gshare:12:y", `bad gshare hist bits "y"`},
		{"gshare:12:", "bad gshare hist bits"},
		{"gshare:29", "table bits 29 out of range [1,28]"},
		{"gshare:0", "table bits 0 out of range"},
		{"gshare:-3", "out of range"},
		{"tournament:1", "table bits 1 out of range [2,28]"},
		{"gshare:12:8:4", "gshare takes at most 2 parameters"},
		{"taken:1", "taken takes at most 0 parameters"},
		{"local:8:10:10:10", "local takes at most 3 parameters"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q does not mention %q", c.in, err, c.want)
		}
	}
}
