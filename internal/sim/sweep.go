package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Job is one unit of sweep work: typically one predictor-configuration ×
// workload evaluation. The context is the sweep's; a job that can run
// long should honour its cancellation.
type Job[T any] func(ctx context.Context) (T, error)

// Sweep runs the jobs on a bounded worker pool and returns their results
// in job order, regardless of completion order — callers can rely on
// results[i] belonging to jobs[i], which keeps swept tables deterministic
// under parallelism.
//
// workers <= 0 means runtime.GOMAXPROCS(0). The first job error cancels
// the sweep's context and stops workers from picking up further jobs;
// every error that did occur is returned joined, each wrapped with its
// job index. Cancellation of the parent context is reported as its
// context error. Results of failed or never-started jobs are the zero
// value of T.
func Sweep[T any](ctx context.Context, jobs []Job[T], workers int) ([]T, error) {
	if len(jobs) == 0 {
		return nil, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]T, len(jobs))
	errs := make([]error, len(jobs))
	sweepCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) || sweepCtx.Err() != nil {
					return
				}
				v, err := jobs[i](sweepCtx)
				if err != nil {
					errs[i] = fmt.Errorf("sim: job %d: %w", i, err)
					cancel()
					return
				}
				results[i] = v
			}
		}()
	}
	wg.Wait()

	if err := errors.Join(errs...); err != nil {
		return results, err
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// Map runs fn over items on the sweep pool and returns the per-item
// results in item order. It is the common "same computation per grid
// point" case of Sweep.
func Map[In, Out any](ctx context.Context, items []In, workers int, fn func(ctx context.Context, item In) (Out, error)) ([]Out, error) {
	jobs := make([]Job[Out], len(items))
	for i, item := range items {
		item := item
		jobs[i] = func(ctx context.Context) (Out, error) { return fn(ctx, item) }
	}
	return Sweep(ctx, jobs, workers)
}
