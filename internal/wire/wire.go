// Package wire provides the little-endian byte-slice codec the durable
// predictor-state snapshots are built on (internal/snap and the
// AppendState/LoadState implementations in internal/bpred and
// internal/core). Writers append fixed-width values to a byte slice;
// readers walk a Cursor with sticky-error bounds checking, so a
// truncated or hostile input degrades to an error instead of a panic.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated reports a read past the end of the input.
var ErrTruncated = errors.New("wire: truncated input")

// AppendU8 appends one byte.
func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

// AppendU32 appends a little-endian uint32.
func AppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// AppendU64 appends a little-endian uint64.
func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendBool appends a bool as one byte (0 or 1).
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendBytes appends a u32 length prefix followed by the bytes.
func AppendBytes(b, p []byte) []byte {
	b = AppendU32(b, uint32(len(p)))
	return append(b, p...)
}

// AppendString appends a u32 length prefix followed by the string bytes.
func AppendString(b []byte, s string) []byte {
	b = AppendU32(b, uint32(len(s)))
	return append(b, s...)
}

// Cursor reads values sequentially from a byte slice. The first failed
// read (out-of-bounds, bad encoding) latches an error; subsequent reads
// return zero values, so decode loops need only one error check at the
// end via Err.
type Cursor struct {
	data []byte
	off  int
	err  error
}

// NewCursor returns a cursor over data. The cursor does not copy; the
// caller must not mutate data while reading.
func NewCursor(data []byte) *Cursor { return &Cursor{data: data} }

// Err returns the first read error, or nil.
func (c *Cursor) Err() error { return c.err }

// Fail latches err (if the cursor has not already failed) and returns it.
// Decoders use it to report semantic validation errors through the same
// sticky channel as bounds errors.
func (c *Cursor) Fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return c.err
}

// Remaining returns the number of unread bytes.
func (c *Cursor) Remaining() int { return len(c.data) - c.off }

// Done returns nil if the cursor consumed its input exactly, an error
// otherwise (a prior read error, or trailing bytes).
func (c *Cursor) Done() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.data) {
		return fmt.Errorf("wire: %d trailing bytes", len(c.data)-c.off)
	}
	return nil
}

// Take returns the next n bytes (aliasing the input, not a copy).
func (c *Cursor) Take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.data) {
		c.err = ErrTruncated
		return nil
	}
	p := c.data[c.off : c.off+n]
	c.off += n
	return p
}

// U8 reads one byte.
func (c *Cursor) U8() uint8 {
	p := c.Take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// U32 reads a little-endian uint32.
func (c *Cursor) U32() uint32 {
	p := c.Take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 reads a little-endian uint64.
func (c *Cursor) U64() uint64 {
	p := c.Take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// Bool reads one byte that must be exactly 0 or 1. The strictness keeps
// the format canonical: every valid snapshot has exactly one encoding.
func (c *Cursor) Bool() bool {
	switch c.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		c.Fail(errors.New("wire: bool byte not 0 or 1"))
		return false
	}
}

// Bytes reads a u32 length prefix and the following bytes (aliasing the
// input). The length is bounds-checked against the remaining input
// before any allocation, so a hostile prefix cannot force one.
func (c *Cursor) Bytes() []byte {
	n := c.U32()
	if c.err != nil {
		return nil
	}
	if int64(n) > int64(c.Remaining()) {
		c.err = ErrTruncated
		return nil
	}
	return c.Take(int(n))
}

// String reads a u32 length prefix and the following string.
func (c *Cursor) String() string { return string(c.Bytes()) }
