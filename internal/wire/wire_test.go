package wire

import (
	"errors"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendU8(buf, 0xAB)
	buf = AppendU32(buf, 0xDEADBEEF)
	buf = AppendU64(buf, 1<<63|42)
	buf = AppendBool(buf, true)
	buf = AppendBool(buf, false)
	buf = AppendBytes(buf, []byte{1, 2, 3})
	buf = AppendString(buf, "hello")

	c := NewCursor(buf)
	if got := c.U8(); got != 0xAB {
		t.Fatalf("U8: %x", got)
	}
	if got := c.U32(); got != 0xDEADBEEF {
		t.Fatalf("U32: %x", got)
	}
	if got := c.U64(); got != 1<<63|42 {
		t.Fatalf("U64: %x", got)
	}
	if !c.Bool() || c.Bool() {
		t.Fatal("Bool round trip")
	}
	if got := c.Bytes(); string(got) != "\x01\x02\x03" {
		t.Fatalf("Bytes: %v", got)
	}
	if got := c.String(); got != "hello" {
		t.Fatalf("String: %q", got)
	}
	if err := c.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestCursorErrors(t *testing.T) {
	// Truncated reads leave a sticky error and return zero values.
	c := NewCursor([]byte{1, 2})
	if got := c.U32(); got != 0 {
		t.Fatalf("truncated U32 returned %d", got)
	}
	if !errors.Is(c.Err(), ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", c.Err())
	}
	// Subsequent reads stay failed.
	if c.U8() != 0 || c.Err() == nil {
		t.Fatal("cursor error not sticky")
	}

	// Non-canonical bool byte.
	c = NewCursor([]byte{2})
	c.Bool()
	if c.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}

	// Length prefix larger than the remaining input.
	c = NewCursor(AppendU32(nil, 1<<30))
	if c.Bytes() != nil || !errors.Is(c.Err(), ErrTruncated) {
		t.Fatal("oversized length prefix accepted")
	}

	// Unconsumed trailing bytes.
	c = NewCursor([]byte{0})
	if err := c.Done(); err == nil {
		t.Fatal("Done accepted trailing bytes")
	}
}
