// gen.go — the synthetic workload generator: parametric outcome
// processes with known characterization, compiled into real branching
// programs. A Point's canonical name ("syn:lag:k=6") doubles as a
// workload name, so the synthetic family is reachable everywhere a
// workload name is accepted without being part of the fixed experiment
// suite (whose membership the golden CSVs pin down).
package charz

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/rng"
)

// Prefix marks synthetic workload names.
const Prefix = "syn:"

// Family names a synthetic outcome process.
type Family string

// The synthetic families.
const (
	// FamBias is an i.i.d. biased coin: taken with probability P.
	FamBias Family = "bias"
	// FamPeriodic repeats Pattern, each outcome flipped with
	// probability Eps.
	FamPeriodic Family = "periodic"
	// FamLag is a noisy lag-k copy: y[t] = y[t-k] flipped with
	// probability Eps — predictable only with history depth >= Lag.
	FamLag Family = "lag"
	// FamXCorr emits leader/follower branch pairs: the leader is a
	// fair coin, the follower copies the leader's same-iteration
	// outcome flipped with probability Eps. The follower's own history
	// is useless; only global (cross-branch) history predicts it.
	FamXCorr Family = "xcorr"
)

// Generator defaults. A Point's canonical name omits parameters at
// their default, so "syn:bias:p=0.90" and
// "syn:bias:p=0.90:n=8192:seed=1" are the same workload.
const (
	// defN is the default number of outcomes per synthetic branch site.
	defN = 8192
	// defSeed is the default generator seed.
	defSeed = 1
	// defLag is the default lag-family depth.
	defLag = 4
	// defEps is the default flip probability for lag and xcorr.
	defEps = 0.05
)

// Fanout is the number of synthetic branch sites a built program
// interleaves. Each site carries an independent stream with the Point's
// parameters, so per-branch metrics match the process while the
// loop-control branch is diluted to 1/(Fanout+1) of events. In a
// characterization of a built program, the sites are the Fanout
// lowest-PC branches and the loop branch is the highest. Must stay even
// (xcorr pairs sites).
const Fanout = 8

// Point is one point in characterization space: a family plus its
// parameters. The zero value of a parameter means "default"; Parse and
// the catalog always return normalized points.
type Point struct {
	Family  Family
	P       float64 // bias: taken probability (default 0.5)
	Pattern string  // periodic: the repeated outcome string, e.g. "1101"
	Lag     int     // lag: copy distance k (default 4)
	Eps     float64 // periodic/lag/xcorr: flip probability
	N       int     // outcomes per branch site (default 8192)
	Seed    uint64  // generator seed (default 1)
}

// withDefaults fills zero integer parameters with the family defaults.
// The float parameters P and Eps are left alone — zero is meaningful for
// both (a never-taken coin, a noiseless copy) — so their defaults are
// applied by ParsePoint only when the key is absent; hand-constructed
// points state them explicitly.
func (p Point) withDefaults() Point {
	if p.Lag == 0 {
		p.Lag = defLag
	}
	if p.N == 0 {
		p.N = defN
	}
	if p.Seed == 0 {
		p.Seed = defSeed
	}
	return p
}

func (p Point) validate() error {
	switch p.Family {
	case FamBias:
	case FamPeriodic:
		if p.Pattern == "" {
			return fmt.Errorf("charz: periodic point needs a pattern")
		}
		if len(p.Pattern) > 64 {
			return fmt.Errorf("charz: pattern %q longer than 64", p.Pattern)
		}
		for _, c := range p.Pattern {
			if c != '0' && c != '1' {
				return fmt.Errorf("charz: pattern %q must be 0/1 only", p.Pattern)
			}
		}
	case FamLag:
		if p.Lag < 1 || p.Lag > 32 {
			return fmt.Errorf("charz: lag %d out of range [1,32]", p.Lag)
		}
	case FamXCorr:
	default:
		return fmt.Errorf("charz: unknown family %q", p.Family)
	}
	if p.P < 0 || p.P > 1 {
		return fmt.Errorf("charz: probability %v out of [0,1]", p.P)
	}
	if p.Eps < 0 || p.Eps > 0.5 {
		return fmt.Errorf("charz: noise %v out of [0,0.5]", p.Eps)
	}
	if p.N < 64 || p.N > 1<<20 {
		return fmt.Errorf("charz: n=%d out of range [64,%d]", p.N, 1<<20)
	}
	return nil
}

// Name renders the canonical spec string: "syn:<family>[:k=v...]" with
// default-valued parameters omitted. ParsePoint round-trips it.
func (p Point) Name() string {
	p = p.withDefaults()
	var b strings.Builder
	b.WriteString(Prefix)
	b.WriteString(string(p.Family))
	put := func(k, v string) { fmt.Fprintf(&b, ":%s=%s", k, v) }
	switch p.Family {
	case FamBias:
		if p.P != 0.5 {
			put("p", trimFloat(p.P))
		}
	case FamPeriodic:
		put("pat", p.Pattern)
		if p.Eps != 0 {
			put("eps", trimFloat(p.Eps))
		}
	case FamLag:
		if p.Lag != defLag {
			put("k", strconv.Itoa(p.Lag))
		}
		if p.Eps != defEps {
			put("eps", trimFloat(p.Eps))
		}
	case FamXCorr:
		if p.P != 0.5 {
			put("p", trimFloat(p.P))
		}
		if p.Eps != defEps {
			put("eps", trimFloat(p.Eps))
		}
	}
	if p.N != defN {
		put("n", strconv.Itoa(p.N))
	}
	if p.Seed != defSeed {
		put("seed", strconv.FormatUint(p.Seed, 10))
	}
	return b.String()
}

func trimFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Description renders a one-line human description of the point.
func (p Point) Description() string {
	p = p.withDefaults()
	switch p.Family {
	case FamBias:
		return fmt.Sprintf("synthetic: i.i.d. branch taken with p=%.2f", p.P)
	case FamPeriodic:
		return fmt.Sprintf("synthetic: periodic pattern %q, flip prob %.2f", p.Pattern, p.Eps)
	case FamLag:
		return fmt.Sprintf("synthetic: noisy lag-%d copy, flip prob %.2f", p.Lag, p.Eps)
	case FamXCorr:
		return fmt.Sprintf("synthetic: cross-branch correlated pairs, flip prob %.2f", p.Eps)
	}
	return "synthetic workload"
}

// IsSynthetic reports whether name spells a synthetic workload.
func IsSynthetic(name string) bool { return strings.HasPrefix(name, Prefix) }

// ParsePoint reads a synthetic workload spec: "syn:<family>" followed by
// colon-separated key=value parameters, e.g. "syn:lag:k=6:eps=0.02".
// Keys: p (probability), pat (pattern), k (lag), eps (noise), n
// (outcomes per branch site), seed. The returned point is normalized
// (defaults filled in), so Name round-trips.
func ParsePoint(name string) (Point, error) {
	if !IsSynthetic(name) {
		return Point{}, fmt.Errorf("charz: %q is not a synthetic workload name (want %q prefix)", name, Prefix)
	}
	fields := strings.Split(name[len(Prefix):], ":")
	pt := Point{Family: Family(fields[0])}
	seen := make(map[string]bool)
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Point{}, fmt.Errorf("charz: bad parameter %q in %q (want key=value)", f, name)
		}
		if seen[k] {
			return Point{}, fmt.Errorf("charz: duplicate parameter %q in %q", k, name)
		}
		seen[k] = true
		var err error
		switch k {
		case "p":
			pt.P, err = strconv.ParseFloat(v, 64)
		case "pat":
			pt.Pattern = v
		case "k":
			pt.Lag, err = strconv.Atoi(v)
		case "eps":
			pt.Eps, err = strconv.ParseFloat(v, 64)
		case "n":
			pt.N, err = strconv.Atoi(v)
		case "seed":
			pt.Seed, err = strconv.ParseUint(v, 10, 64)
		default:
			return Point{}, fmt.Errorf("charz: unknown parameter %q in %q", k, name)
		}
		if err != nil {
			return Point{}, fmt.Errorf("charz: bad value %q for %q in %q", v, k, name)
		}
	}
	// Keys that don't belong to the family would be silently ignored
	// downstream — reject them so a typoed spec can't masquerade as a
	// different point.
	allowed, known := map[Family]string{
		FamBias:     "p n seed",
		FamPeriodic: "pat eps n seed",
		FamLag:      "k eps n seed",
		FamXCorr:    "p eps n seed",
	}[pt.Family]
	if known {
		for k := range seen {
			if !strings.Contains(" "+allowed+" ", " "+k+" ") {
				return Point{}, fmt.Errorf("charz: parameter %q not valid for family %q in %q", k, pt.Family, name)
			}
		}
	}
	// Explicit zeros would be swallowed by defaulting; catch them here.
	if seen["k"] && pt.Lag == 0 {
		return Point{}, fmt.Errorf("charz: lag 0 out of range [1,32] in %q", name)
	}
	if seen["n"] && pt.N == 0 {
		return Point{}, fmt.Errorf("charz: n=0 out of range [64,%d] in %q", 1<<20, name)
	}
	if !seen["p"] {
		pt.P = 0.5
	}
	if !seen["eps"] && (pt.Family == FamLag || pt.Family == FamXCorr) {
		pt.Eps = defEps
	}
	pt = pt.withDefaults()
	if err := pt.validate(); err != nil {
		return Point{}, err
	}
	return pt, nil
}

// MustPoint is ParsePoint but panics on error, for static catalogs.
func MustPoint(name string) Point {
	pt, err := ParsePoint(name)
	if err != nil {
		panic(err)
	}
	return pt
}

// Catalog returns the named grid of synthetic points experiment E15
// sweeps: a ramp of biases, short and long periods, local-history
// correlation at several depths, cross-branch correlation, and a noisy
// mixture. Sorted by name.
func Catalog() []Point {
	specs := []string{
		"syn:bias:p=0.55",
		"syn:bias:p=0.7",
		"syn:bias:p=0.85",
		"syn:bias:p=0.97",
		"syn:periodic:pat=10",
		"syn:periodic:pat=110",
		"syn:periodic:pat=11010010",
		"syn:lag:k=2:eps=0.02",
		"syn:lag:k=6:eps=0.02",
		"syn:lag:k=12:eps=0.02",
		"syn:lag:k=4:eps=0.25",
		"syn:xcorr:eps=0.02",
	}
	out := make([]Point, len(specs))
	for i, s := range specs {
		out[i] = MustPoint(s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// CatalogNames returns the canonical names of the catalog points.
func CatalogNames() []string {
	pts := Catalog()
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = p.Name()
	}
	return out
}

// outcomes generates the per-site outcome streams: Fanout
// independent streams of p.N outcomes each, every one an instance of
// the point's process (xcorr pairs adjacent sites).
func (p Point) outcomes() [][]bool {
	p = p.withDefaults()
	out := make([][]bool, Fanout)
	for i := range out {
		out[i] = make([]bool, p.N)
	}
	for i := 0; i < Fanout; i++ {
		r := rng.New(p.Seed*0x9e3779b9 + uint64(i) + 1)
		switch p.Family {
		case FamBias:
			for t := range out[i] {
				out[i][t] = r.Chance(p.P)
			}
		case FamPeriodic:
			for t := range out[i] {
				bit := p.Pattern[t%len(p.Pattern)] == '1'
				out[i][t] = bit != r.Chance(p.Eps)
			}
		case FamLag:
			for t := range out[i] {
				if t < p.Lag {
					out[i][t] = r.Bool()
				} else {
					out[i][t] = out[i][t-p.Lag] != r.Chance(p.Eps)
				}
			}
		case FamXCorr:
			if i%2 == 0 {
				for t := range out[i] {
					out[i][t] = r.Chance(p.P)
				}
			} else {
				for t := range out[i] {
					out[i][t] = out[i-1][t] != r.Chance(p.Eps)
				}
			}
		}
	}
	return out
}

// synthBase is where the built program's outcome table lives.
const synthBase = 4096

// Build compiles the point into a branching program: the outcome
// streams are interleaved into a data table, and an unrolled loop
// issues one conditional branch per site per iteration.
//
//	r1=outcome r5=sink r6=loop counter r7=cursor
func (p Point) Build() *prog.Program {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		panic(fmt.Sprintf("charz: building %s: %v", p.Name(), err))
	}
	lanes := p.outcomes()
	words := make([]int64, p.N*Fanout)
	for t := 0; t < p.N; t++ {
		for i := 0; i < Fanout; i++ {
			if lanes[i][t] {
				words[t*Fanout+i] = 1
			}
		}
	}
	b := prog.NewBuilder(p.Name())
	b.SetData(synthBase, words)
	b.Movi(7, synthBase)
	b.Movi(5, 0)
	b.CountedLoop(6, int64(p.N), func() {
		for i := 0; i < Fanout; i++ {
			b.Ld(1, 7, int64(i))
			// If branches to its end label when the condition is FALSE,
			// so compare against zero with EQ: the emitted branch is
			// taken exactly when the outcome word is 1.
			b.If(prog.RI(isa.CmpEQ, 1, 0), func() {
				b.Addi(5, 5, 1)
			})
		}
		b.Addi(7, 7, Fanout)
	})
	b.Out(5)
	b.Halt(0)
	return b.MustProgram()
}

// Target is a requested point in characterization space for Solve: the
// desired taken rate and the entropy left after conditioning on Depth
// bits of local history.
type Target struct {
	// TakenRate is the desired aggregate taken rate; 0 means 0.5.
	TakenRate float64
	// CondEntropy is the desired H(Y | local history of Depth); a
	// negative value means "no history structure" (CondEntropy = H(Y)).
	CondEntropy float64
	// Depth is the history depth at which the structure appears
	// (default 4).
	Depth int
	// N and Seed pass through to the returned point.
	N    int
	Seed uint64
}

// Solve inverts the characterization: it returns a Point whose
// generated trace approximately realizes the target. An unstructured
// target maps to the bias family; a structured balanced target maps to
// lag-Depth with the noise solved from the residual entropy; a
// structured biased target maps to a periodic pattern of length Depth
// with the target's duty cycle plus solved noise.
func Solve(t Target) (Point, error) {
	rate := t.TakenRate
	if rate == 0 {
		rate = 0.5
	}
	if rate < 0 || rate > 1 {
		return Point{}, fmt.Errorf("charz: target rate %v out of [0,1]", rate)
	}
	depth := t.Depth
	if depth == 0 {
		depth = 4
	}
	if depth < 1 || depth > 32 {
		return Point{}, fmt.Errorf("charz: target depth %d out of range [1,32]", depth)
	}
	base := Point{N: t.N, Seed: t.Seed}

	if t.CondEntropy < 0 || t.CondEntropy >= H2(rate)-1e-9 {
		// No removable structure: an i.i.d. coin at the rate.
		base.Family = FamBias
		base.P = rate
		return base.withDefaults(), nil
	}
	eps := InvH2(t.CondEntropy)
	if rate > 0.45 && rate < 0.55 {
		base.Family = FamLag
		base.Lag = depth
		base.Eps = eps
		return base.withDefaults(), nil
	}
	// Biased + structured: a periodic pattern of length depth whose duty
	// cycle approximates the rate, noised to the residual entropy.
	ones := int(rate*float64(depth) + 0.5)
	if ones < 1 {
		ones = 1
	}
	if ones >= depth {
		ones = depth - 1
	}
	pat := make([]byte, depth)
	acc := 0
	for i := range pat {
		acc += ones
		if acc >= depth {
			acc -= depth
			pat[i] = '1'
		} else {
			pat[i] = '0'
		}
	}
	base.Family = FamPeriodic
	base.Pattern = string(pat)
	base.Eps = eps
	return base.withDefaults(), nil
}

// InvH2 inverts the binary entropy function on [0, 1/2]: it returns the
// p <= 0.5 with H2(p) = h, by bisection.
func InvH2(h float64) float64 {
	if h <= 0 {
		return 0
	}
	if h >= 1 {
		return 0.5
	}
	lo, hi := 0.0, 0.5
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if H2(mid) < h {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
