// Package charz characterizes branch predictability and generates
// synthetic workloads that hit requested points in that characterization
// space.
//
// The characterization pass (Characterize) computes, per static branch
// and aggregated over a whole trace, the metrics the workload-
// characterization literature uses to explain predictor behaviour:
//
//   - taken rate and outcome entropy H(Y) — how biased the branch is;
//   - history-conditioned entropy H(Y | local history of depth d) at
//     several depths — how much of the remaining uncertainty a
//     pattern-table predictor of that depth could remove;
//   - global-history-conditioned entropy — the same question for
//     cross-branch (global) correlation;
//   - linear separability — the online accuracy of a small perceptron
//     probe over local history, the ceiling a perceptron-style predictor
//     could reach.
//
// The generator half (Point, Build) inverts those metrics: a Point names
// a parametric outcome process (biased coin, periodic pattern, noisy
// lag-k copy, cross-branch correlation) whose characterization is known
// in closed form, and builds a real branching program around it, so the
// synthetic family plugs into everything that consumes workloads —
// sweeps, the experiment harness, the serving daemon, and the oracle.
package charz

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// DefaultDepths are the local-history depths Characterize conditions on
// when Options.Depths is nil.
var DefaultDepths = []int{1, 2, 4, 8}

// DefaultGlobalDepth is the global-history depth used when
// Options.GlobalDepth is 0.
const DefaultGlobalDepth = 8

// Separability-probe geometry: a perceptron over the last probeHistBits
// local outcomes, with the threshold from Jiménez & Lin sized for that
// history length.
const (
	probeHistBits = 16
	// probeTheta is floor(1.93*probeHistBits + 14), the training
	// threshold from Jiménez & Lin for this history length.
	probeTheta int32 = 44
)

// Options configures a characterization pass.
type Options struct {
	// Depths are the local-history depths to condition outcome entropy
	// on; nil means DefaultDepths. Each must be in [1, 32].
	Depths []int
	// GlobalDepth is the global-history depth for cross-branch
	// conditioning; 0 means DefaultGlobalDepth, negative disables it.
	GlobalDepth int
}

func (o Options) withDefaults() Options {
	if o.Depths == nil {
		o.Depths = DefaultDepths
	}
	if o.GlobalDepth == 0 {
		o.GlobalDepth = DefaultGlobalDepth
	}
	return o
}

// BranchMetrics are the predictability metrics of one static branch.
type BranchMetrics struct {
	PC    uint64
	Count uint64 // dynamic occurrences
	Taken uint64 // taken occurrences

	// TakenRate is Taken/Count.
	TakenRate float64
	// Entropy is the outcome entropy H(Y) in bits: 0 for a
	// single-outcome branch, 1 for an unbiased one.
	Entropy float64
	// CondEntropy[i] is H(Y | last Depths[i] own outcomes): the entropy
	// left after a local-history predictor of that depth. Events before
	// the history fills are skipped; a branch with no conditioned
	// samples at a depth reports 0.
	CondEntropy []float64
	// GlobalCondEntropy is H(Y | last GlobalDepth outcomes of all
	// branches) — low values flag cross-branch correlation that local
	// history cannot see.
	GlobalCondEntropy float64
	// Separability is the online accuracy of a perceptron probe over
	// the branch's local history: near 1 means the outcome is a
	// linearly separable (perceptron-friendly) function of history.
	Separability float64
}

// Report is the characterization of a whole trace: per-branch metrics
// plus count-weighted aggregates.
type Report struct {
	Name        string
	Events      uint64 // branch events characterized
	Depths      []int
	GlobalDepth int

	// Branches holds per-branch metrics sorted by PC.
	Branches []BranchMetrics

	// Count-weighted aggregates over all branches.
	TakenRate         float64
	Entropy           float64
	CondEntropy       []float64
	GlobalCondEntropy float64
	Separability      float64
}

// CondAt returns the aggregate conditioned entropy at depth d, or H(Y)
// when d is not one of the report's depths.
func (r *Report) CondAt(d int) float64 {
	for i, dd := range r.Depths {
		if dd == d {
			return r.CondEntropy[i]
		}
	}
	return r.Entropy
}

// ctxCounts accumulates outcome counts per history context.
type ctxCounts map[uint64][2]uint64

func (c ctxCounts) add(key uint64, taken bool) {
	v := c[key]
	if taken {
		v[1]++
	} else {
		v[0]++
	}
	c[key] = v
}

// entropy returns the conditional entropy H(Y | ctx) of the accumulated
// counts, 0 when no samples were conditioned.
func (c ctxCounts) entropy() float64 {
	var total uint64
	for _, v := range c {
		total += v[0] + v[1]
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, v := range c {
		n := v[0] + v[1]
		h += float64(n) / float64(total) * H2(float64(v[1])/float64(n))
	}
	return h
}

// H2 is the binary entropy function in bits; 0 at and outside the
// endpoints, so single-outcome branches report zero entropy.
func H2(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// sepProbe is the online perceptron separability probe: one weight per
// local-history bit plus a bias, trained with the standard rule
// (mispredict, or below-threshold magnitude).
type sepProbe struct {
	w       [probeHistBits + 1]int32
	correct uint64
}

func (s *sepProbe) observe(hist uint64, taken bool) {
	y := s.w[0]
	for i := 0; i < probeHistBits; i++ {
		if hist>>uint(i)&1 == 1 {
			y += s.w[i+1]
		} else {
			y -= s.w[i+1]
		}
	}
	pred := y >= 0
	if pred == taken {
		s.correct++
	}
	if pred != taken || abs32(y) <= probeTheta {
		t := int32(-1)
		if taken {
			t = 1
		}
		s.w[0] += t
		for i := 0; i < probeHistBits; i++ {
			if hist>>uint(i)&1 == 1 {
				s.w[i+1] += t
			} else {
				s.w[i+1] -= t
			}
		}
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

// branchState is the per-branch accumulator of one pass.
type branchState struct {
	pc    uint64
	n     uint64
	taken uint64
	hist  uint64 // local outcome history, newest bit 0
	cond  []ctxCounts
	gcond ctxCounts
	probe sepProbe
}

// Characterize runs one pass over the source's branch events and
// returns the per-branch and aggregate predictability metrics.
// Predicate-define events are ignored. All metrics are finite for every
// input, including empty traces and one-event branches.
func Characterize(src trace.Source, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	for _, d := range opt.Depths {
		if d < 1 || d > 32 {
			return nil, fmt.Errorf("charz: depth %d out of range [1,32]", d)
		}
	}
	if opt.GlobalDepth > 32 {
		return nil, fmt.Errorf("charz: global depth %d out of range", opt.GlobalDepth)
	}

	states := make(map[uint64]*branchState)
	var ghist uint64
	var gseen uint64
	var events uint64

	r := src.Replay()
	var ev trace.Event
	for r.Next(&ev) {
		if ev.Kind != trace.KindBranch {
			continue
		}
		st := states[ev.PC]
		if st == nil {
			st = &branchState{pc: ev.PC, cond: make([]ctxCounts, len(opt.Depths))}
			for i := range st.cond {
				st.cond[i] = make(ctxCounts)
			}
			if opt.GlobalDepth > 0 {
				st.gcond = make(ctxCounts)
			}
			states[ev.PC] = st
		}

		st.probe.observe(st.hist, ev.Taken)
		for i, d := range opt.Depths {
			// st.n counts prior occurrences here: condition only once
			// the branch's own history is d deep.
			if st.n >= uint64(d) {
				st.cond[i].add(st.hist&mask(d), ev.Taken)
			}
		}
		if opt.GlobalDepth > 0 && gseen >= uint64(opt.GlobalDepth) {
			st.gcond.add(ghist&mask(opt.GlobalDepth), ev.Taken)
		}

		st.n++
		if ev.Taken {
			st.taken++
		}
		st.hist = st.hist<<1 | b2u(ev.Taken)
		ghist = ghist<<1 | b2u(ev.Taken)
		gseen++
		events++
	}
	if err := r.Err(); err != nil {
		return nil, err
	}

	rep := &Report{
		Events:      events,
		Depths:      append([]int(nil), opt.Depths...),
		GlobalDepth: opt.GlobalDepth,
		CondEntropy: make([]float64, len(opt.Depths)),
	}
	// Materialized traces carry a name; emulator streams do not, so
	// callers may overwrite Name afterwards.
	if t, ok := src.(*trace.Trace); ok {
		rep.Name = t.Name
	}
	for _, st := range states {
		bm := BranchMetrics{
			PC:           st.pc,
			Count:        st.n,
			Taken:        st.taken,
			TakenRate:    float64(st.taken) / float64(st.n),
			CondEntropy:  make([]float64, len(opt.Depths)),
			Separability: float64(st.probe.correct) / float64(st.n),
		}
		bm.Entropy = H2(bm.TakenRate)
		for i := range opt.Depths {
			bm.CondEntropy[i] = st.cond[i].entropy()
		}
		if st.gcond != nil {
			bm.GlobalCondEntropy = st.gcond.entropy()
		}
		rep.Branches = append(rep.Branches, bm)
	}
	sort.Slice(rep.Branches, func(i, j int) bool { return rep.Branches[i].PC < rep.Branches[j].PC })

	if events > 0 {
		for _, bm := range rep.Branches {
			w := float64(bm.Count) / float64(events)
			rep.TakenRate += w * bm.TakenRate
			rep.Entropy += w * bm.Entropy
			for i := range rep.CondEntropy {
				rep.CondEntropy[i] += w * bm.CondEntropy[i]
			}
			rep.GlobalCondEntropy += w * bm.GlobalCondEntropy
			rep.Separability += w * bm.Separability
		}
	}
	return rep, nil
}

func mask(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(bits) - 1
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
