package charz

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestPointNameRoundTrip(t *testing.T) {
	pts := append(Catalog(),
		MustPoint("syn:bias"),
		MustPoint("syn:periodic:pat=11010010:eps=0.1"),
		MustPoint("syn:lag:k=12:eps=0.25:n=1024:seed=9"),
		MustPoint("syn:xcorr:p=0.3:eps=0"),
	)
	for _, p := range pts {
		name := p.Name()
		back, err := ParsePoint(name)
		if err != nil {
			t.Errorf("ParsePoint(%q): %v", name, err)
			continue
		}
		if got := back.Name(); got != name {
			t.Errorf("name round trip: %q -> %q", name, got)
		}
	}
}

func TestParsePointErrors(t *testing.T) {
	for _, name := range []string{
		"scan",                // no prefix
		"syn:",                // no family
		"syn:martian",         // unknown family
		"syn:bias:p=1.5",      // probability out of range
		"syn:bias:k=3",        // param from the wrong family
		"syn:periodic:pat=12", // non-binary pattern
		"syn:periodic:pat=",   // empty pattern
		"syn:lag:k=0",         // lag out of range
		"syn:lag:k=4:eps=2",   // noise out of range
		"syn:lag:k=4:k=5",     // duplicate key
		"syn:bias:n=0",        // empty trace
		"syn:bias:what",       // not key=value
	} {
		if _, err := ParsePoint(name); err == nil {
			t.Errorf("ParsePoint(%q) accepted", name)
		}
	}
}

func TestIsSynthetic(t *testing.T) {
	if !IsSynthetic("syn:bias:p=0.7") || IsSynthetic("scan") || IsSynthetic("") {
		t.Error("IsSynthetic misclassifies")
	}
}

func TestCatalogSortedAndDescribed(t *testing.T) {
	names := CatalogNames()
	for i, n := range names {
		if i > 0 && names[i-1] >= n {
			t.Errorf("catalog not sorted: %q before %q", names[i-1], n)
		}
		p := MustPoint(n)
		if !strings.HasPrefix(p.Description(), "synthetic:") {
			t.Errorf("%s description: %q", n, p.Description())
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	p := MustPoint("syn:lag:k=3:eps=0.1:n=256")
	a, err := trace.Collect(p.Build(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace.Collect(p.Build(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs between identical builds", i)
		}
	}
}

// genReport builds a point's program and characterizes its trace.
func genReport(t *testing.T, p Point, opt Options) *Report {
	t.Helper()
	tr, err := trace.Collect(p.Build(), 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Characterize(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The program is Fanout site branches plus the loop back-edge.
	if len(rep.Branches) != Fanout+1 {
		t.Fatalf("%s: %d static branches, want %d", p.Name(), len(rep.Branches), Fanout+1)
	}
	return rep
}

// sites drops the loop branch (highest PC): the first Fanout branches
// are the generated outcome streams.
func sites(rep *Report) []BranchMetrics { return rep.Branches[:Fanout] }

func siteMeanRate(rep *Report) float64 {
	var s float64
	for _, b := range sites(rep) {
		s += b.TakenRate
	}
	return s / Fanout
}

// TestRoundTripBias: an i.i.d. point re-characterizes to its own
// parameters, with no removable history structure.
func TestRoundTripBias(t *testing.T) {
	rep := genReport(t, MustPoint("syn:bias:p=0.7"), Options{})
	near(t, "site rate", siteMeanRate(rep), 0.7, 0.02)
	for _, b := range sites(rep) {
		if b.CondEntropy[3] < b.Entropy-0.1 {
			t.Errorf("site 0x%x: H(Y|h8) = %v well below H(Y) = %v on an i.i.d. stream",
				b.PC, b.CondEntropy[3], b.Entropy)
		}
	}
}

// TestRoundTripPeriodic: a clean periodic point is deterministic given
// enough history, at its pattern's duty-cycle rate.
func TestRoundTripPeriodic(t *testing.T) {
	rep := genReport(t, MustPoint("syn:periodic:pat=110"), Options{})
	near(t, "site rate", siteMeanRate(rep), 2.0/3, 0.01)
	for _, b := range sites(rep) {
		near(t, "site H(Y|h4)", b.CondEntropy[2], 0, 0.01)
		if b.Separability < 0.95 {
			t.Errorf("site 0x%x: sep = %v", b.PC, b.Separability)
		}
	}
}

// TestRoundTripLag: the noisy lag-k copy leaves exactly H2(eps) of
// entropy once history reaches depth k, and ~full entropy short of it.
func TestRoundTripLag(t *testing.T) {
	p := MustPoint("syn:lag:k=4:eps=0.1")
	rep := genReport(t, p, Options{})
	near(t, "site rate", siteMeanRate(rep), 0.5, 0.03)
	want := H2(0.1)
	for _, b := range sites(rep) {
		near(t, "site H(Y|h4)", b.CondEntropy[2], want, 0.08)
		if b.CondEntropy[1] < 0.9 {
			t.Errorf("site 0x%x: H(Y|h2) = %v, but depth 2 cannot see lag 4", b.PC, b.CondEntropy[1])
		}
	}
}

// TestRoundTripXCorr: follower lanes are opaque to local history but
// pinned by the leader through one bit of global history.
func TestRoundTripXCorr(t *testing.T) {
	rep := genReport(t, MustPoint("syn:xcorr:eps=0.02"), Options{})
	ss := sites(rep)
	for i, b := range ss {
		if i%2 == 0 {
			continue
		}
		if b.CondEntropy[3] < 0.8 {
			t.Errorf("follower 0x%x: local H(Y|h8) = %v, want ~1", b.PC, b.CondEntropy[3])
		}
		if b.GlobalCondEntropy > H2(0.02)+0.1 {
			t.Errorf("follower 0x%x: H(Y|g8) = %v, want ~%v", b.PC, b.GlobalCondEntropy, H2(0.02))
		}
	}
}

// TestSolveFamilies checks the solver's family selection and that its
// output realizes the requested point when generated and re-measured.
func TestSolveFamilies(t *testing.T) {
	cases := []struct {
		target Target
		family Family
	}{
		{Target{TakenRate: 0.7, CondEntropy: -1}, FamBias},
		{Target{TakenRate: 0.5, CondEntropy: 0.3, Depth: 5}, FamLag},
		{Target{TakenRate: 0.8, CondEntropy: 0.2, Depth: 5}, FamPeriodic},
	}
	for _, c := range cases {
		pt, err := Solve(c.target)
		if err != nil {
			t.Fatalf("Solve(%+v): %v", c.target, err)
		}
		if pt.Family != c.family {
			t.Errorf("Solve(%+v) chose %s, want %s", c.target, pt.Family, c.family)
			continue
		}
		depth := c.target.Depth
		if depth == 0 {
			depth = 4
		}
		rep := genReport(t, pt, Options{Depths: []int{depth}})
		near(t, pt.Name()+" rate", siteMeanRate(rep), c.target.TakenRate, 0.04)
		wantCond := c.target.CondEntropy
		if wantCond < 0 {
			wantCond = H2(c.target.TakenRate)
		}
		var cond float64
		for _, b := range sites(rep) {
			cond += b.CondEntropy[0]
		}
		cond /= Fanout
		near(t, pt.Name()+" cond", cond, wantCond, 0.12)
	}
}

func TestSolveErrors(t *testing.T) {
	for _, tgt := range []Target{
		{TakenRate: -0.1},
		{TakenRate: 1.1},
		{TakenRate: 0.5, Depth: 33},
		{TakenRate: 0.5, Depth: -1},
	} {
		if _, err := Solve(tgt); err == nil {
			t.Errorf("Solve(%+v) accepted", tgt)
		}
	}
}
