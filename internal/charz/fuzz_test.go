package charz

import (
	"bytes"
	"testing"

	"repro/internal/trace"
)

// FuzzCharacterize feeds arbitrary bytes through the trace
// deserializer into the characterizer: malformed inputs must be
// rejected by ReadTrace, and anything it accepts must characterize
// without panicking and with every metric finite.
func FuzzCharacterize(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("NOPE1234"))
	f.Add([]byte("P64T\x00\x00\x00\x00"))
	// Seed with real serializations so the fuzzer starts past the
	// magic/version checks.
	for _, name := range []string{
		"syn:lag:k=2:eps=0.1:n=64",
		"syn:periodic:pat=110:n=64",
		"syn:bias:p=0.9:n=64",
	} {
		tr, err := trace.Collect(MustPoint(name).Build(), 0)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		rep, err := Characterize(tr, Options{})
		if err != nil {
			t.Fatalf("characterizing an accepted trace: %v", err)
		}
		checkFinite(t, rep)
		if rep.Events > uint64(len(tr.Events)) {
			t.Fatalf("report counts %d events, trace has %d", rep.Events, len(tr.Events))
		}
	})
}
