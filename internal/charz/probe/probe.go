// Package probe infers a branch predictor's structural parameters —
// effective history length, table size, and counter hysteresis — from
// its behaviour alone, through the public Predictor interface, and
// checks them against what the predictor's registry spec claims.
//
// It is a second-opinion oracle: the behavioural oracle
// (internal/oracle) proves an implementation matches a reference model,
// but if both share a bug — a history mask one bit short, a table a
// power of two small — their agreement proves nothing. The probes here
// are derived from the structure the spec claims, the way black-box
// dissections of commercial cores recover predictor geometry from
// microbenchmarks:
//
//   - effective history length via lag-k copy streams (period
//     detection): blocks of k fresh random outcomes followed by their
//     exact repeat — predictable on the repeat half only if the
//     history reaches k bits back, so the largest passing k is the
//     history length;
//   - table size via aliasing ramps: plant a marker in one table entry,
//     then look for the power-of-two pc stride at which a read lands on
//     the marker again — the wrap point is the table size;
//   - counter width via hysteresis: saturate an entry, then count the
//     opposing updates needed to flip its prediction.
//
// Probes exercise Update/Predict only; Predict is specified state-free,
// so scans cost nothing. All probe inputs are deterministic (seeded),
// so a verdict is reproducible in CI.
package probe

import (
	"fmt"
	"strings"

	"repro/internal/bpred"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Result holds the structural parameters inferred from behaviour.
type Result struct {
	// Spec is the normalized claimed spec the probes were derived from.
	Spec sim.Spec
	// Trainable is false for static predictors (outcomes never change
	// predictions).
	Trainable bool
	// HasHistory is true when the predictor learns an alternating
	// sequence at one pc — impossible for a pure per-pc counter.
	HasHistory bool
	// HistoryBits is the largest lag k at which the predictor beats
	// chance on a lag-k copy stream: the effective history length.
	// 0 for static and per-pc-counter predictors.
	HistoryBits int
	// TableBits is the log2 size of the kind's pc-sensitive table,
	// recovered from the aliasing ramp: counter table for the global
	// kinds, history table for local/tournament, weight rows for
	// perceptron, and the history length itself for gag (whose only
	// table is history-indexed). 0 for static predictors.
	TableBits int
	// Hysteresis is the number of opposing updates that flip a
	// saturated entry: 2 for 2-bit counters, 0 for static predictors,
	// and -1 when the entry would not flip within the probe's cap
	// (wide state, e.g. perceptron weights).
	Hysteresis int
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("trainable=%v history=%v histbits=%d tablebits=%d hysteresis=%d",
		r.Trainable, r.HasHistory, r.HistoryBits, r.TableBits, r.Hysteresis)
}

// Expect is what a spec's parameters imply the probes should infer.
type Expect struct {
	Trainable   bool
	HasHistory  bool
	HistoryBits int
	TableBits   int
	// Hysteresis is the exact expected flip count; WideHysteresis
	// instead requires "3 or more, or never" (perceptron weights).
	Hysteresis     int
	WideHysteresis bool
}

// Expected derives the expectation from a registry spec's parameters.
func Expected(spec sim.Spec) (Expect, error) {
	ns, err := spec.Normalized()
	if err != nil {
		return Expect{}, err
	}
	switch ns.Kind {
	case "taken", "nottaken":
		return Expect{}, nil
	case "bimodal":
		return Expect{Trainable: true, TableBits: ns.TableBits, Hysteresis: 2}, nil
	case "gshare", "agree":
		return Expect{Trainable: true, HasHistory: true,
			HistoryBits: min(ns.HistBits, ns.TableBits), TableBits: ns.TableBits, Hysteresis: 2}, nil
	case "gselect":
		return Expect{Trainable: true, HasHistory: true,
			HistoryBits: min(ns.HistBits, ns.TableBits), TableBits: ns.TableBits, Hysteresis: 2}, nil
	case "gag":
		return Expect{Trainable: true, HasHistory: true,
			HistoryBits: ns.HistBits, TableBits: ns.HistBits, Hysteresis: 2}, nil
	case "local":
		// Effective history is bounded by both the per-branch history
		// length and the pattern table it indexes; the pc-sensitive
		// table is the history table.
		return Expect{Trainable: true, HasHistory: true,
			HistoryBits: min(ns.HistBits, ns.PatBits), TableBits: ns.TableBits, Hysteresis: 2}, nil
	case "tournament":
		// Components: gshare(bits, hist) and local(bits-2, 10, bits-2);
		// the chooser tracks whichever reaches further, and the
		// pc-sensitive ramp hits the smaller local history table first.
		g := min(ns.HistBits, ns.TableBits)
		l := min(10, ns.TableBits-2)
		return Expect{Trainable: true, HasHistory: true,
			HistoryBits: max(g, l), TableBits: ns.TableBits - 2, Hysteresis: 2}, nil
	case "perceptron":
		return Expect{Trainable: true, HasHistory: true,
			HistoryBits: ns.HistBits, TableBits: ns.TableBits, WideHysteresis: true}, nil
	}
	return Expect{}, fmt.Errorf("probe: no expectation for kind %q", ns.Kind)
}

// Probe builds fresh predictors from the spec and infers their
// structural parameters black-box.
func Probe(spec sim.Spec) (Result, error) {
	ns, err := spec.Normalized()
	if err != nil {
		return Result{}, err
	}
	return ProbeWith(ns, func() bpred.Predictor { return ns.MustNew() })
}

// ProbeWith probes predictors built by mk, interpreting their behaviour
// against the claimed spec (which shapes probe lengths and the aliasing
// drives). Sensitivity tests hand it a deliberately divergent factory;
// the result then disagrees with Expected(spec).
func ProbeWith(spec sim.Spec, mk func() bpred.Predictor) (Result, error) {
	ns, err := spec.Normalized()
	if err != nil {
		return Result{}, err
	}
	r := Result{Spec: ns}
	r.Trainable = trainable(mk)
	if !r.Trainable {
		return r, nil
	}
	r.HasHistory = learnsAlternating(mk)

	exp, err := Expected(ns)
	if err != nil {
		return Result{}, err
	}
	if r.HasHistory {
		// Search up to a few bits past the claim so an oversized
		// history is flagged, not clipped to the claim.
		r.HistoryBits = historyBits(mk, exp.HistoryBits, ns.Kind == "perceptron")
	}

	// The aliasing drives and hysteresis flushes walk the history
	// register back to zero, so they must use the history length the
	// probe MEASURED, not the claim: against a divergent implementation
	// a claimed-length drive would land writes on the marker entry and
	// turn a parameter mismatch into a dead probe.
	switch ns.Kind {
	case "bimodal":
		r.TableBits, err = rampPCTable(mk)
	case "gshare", "agree":
		r.TableBits, err = rampGlobalXOR(mk, r.HistoryBits, 0)
	case "gselect":
		r.TableBits, err = rampGlobalXOR(mk, r.HistoryBits, r.HistoryBits)
	case "gag":
		r.TableBits = r.HistoryBits
	case "local", "tournament":
		r.TableBits, err = rampLocal(mk)
	case "perceptron":
		r.TableBits, err = rampPerceptron(mk, exp.TableBits)
	default:
		err = fmt.Errorf("probe: no table probe for kind %q", ns.Kind)
	}
	if err != nil {
		return Result{}, err
	}

	r.Hysteresis = hysteresis(mk, r.HistoryBits)
	return r, nil
}

// Verify probes the spec's own predictors and returns an error
// describing every inferred parameter that contradicts the spec.
func Verify(spec sim.Spec) error {
	res, err := Probe(spec)
	if err != nil {
		return err
	}
	exp, err := Expected(res.Spec)
	if err != nil {
		return err
	}
	return Compare(res, exp)
}

// Compare checks an inferred result against an expectation.
func Compare(r Result, exp Expect) error {
	var bad []string
	mism := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }
	if r.Trainable != exp.Trainable {
		mism("trainable=%v want %v", r.Trainable, exp.Trainable)
	}
	if r.Trainable == exp.Trainable && r.HasHistory != exp.HasHistory {
		mism("history=%v want %v", r.HasHistory, exp.HasHistory)
	}
	if r.HistoryBits != exp.HistoryBits {
		mism("history bits %d want %d", r.HistoryBits, exp.HistoryBits)
	}
	if r.TableBits != exp.TableBits {
		mism("table bits %d want %d", r.TableBits, exp.TableBits)
	}
	if exp.WideHysteresis {
		if r.Hysteresis != -1 && r.Hysteresis < 3 {
			mism("hysteresis %d want wide (>=3 or none)", r.Hysteresis)
		}
	} else if r.Hysteresis != exp.Hysteresis {
		mism("hysteresis %d want %d", r.Hysteresis, exp.Hysteresis)
	}
	if len(bad) > 0 {
		return fmt.Errorf("probe: %s: inferred structure contradicts spec: %s", r.Spec, strings.Join(bad, "; "))
	}
	return nil
}

// --- Individual probes ---------------------------------------------------

// updN feeds n identical outcomes at one pc.
func updN(p bpred.Predictor, pc uint64, taken bool, n int) {
	for i := 0; i < n; i++ {
		p.Update(pc, taken)
	}
}

// trainable checks that sustained outcomes move predictions both ways:
// a taken-saturated predictor predicts taken, a not-taken-saturated one
// predicts not taken. Static predictors fail one direction. 64 updates
// saturate every registry kind from any history state.
func trainable(mk func() bpred.Predictor) bool {
	p := mk()
	updN(p, 0, true, 64)
	if !p.Predict(0) {
		return false
	}
	p = mk()
	updN(p, 0, false, 64)
	return !p.Predict(0)
}

// learnsAlternating feeds a strict T,NT,T,NT... sequence at one pc and
// measures predict-before-update accuracy over the second half. Any
// predictor with outcome history learns it (accuracy near 1); a per-pc
// counter scheme oscillates (accuracy near 0).
func learnsAlternating(mk func() bpred.Predictor) bool {
	const n = 4096
	p := mk()
	correct := 0
	for i := 0; i < n; i++ {
		taken := i%2 == 0
		if i >= n/2 && p.Predict(0) == taken {
			correct++
		}
		p.Update(0, taken)
	}
	return float64(correct)/(n/2) >= 0.9
}

// historyBits finds the effective history length: the largest k for
// which the predictor beats chance on the lag-k copy stream at a
// single pc. The passing set is a prefix of k, making binary search
// valid. n sizes the stream so a table-indexed predictor of the
// claimed depth sees every history context often enough; perceptrons
// need only a single weight, not context coverage.
func historyBits(mk func() bpred.Predictor, claimed int, perceptron bool) int {
	n := 48 << uint(claimed)
	if perceptron {
		n = 1 << 15
	}
	if n < 1<<14 {
		n = 1 << 14
	}
	if n > 1<<19 {
		n = 1 << 19
	}
	pass := func(k int) bool { return lagAccuracy(mk(), k, n) >= 0.7 }
	best := 0
	lo, hi := 1, min(claimed+4, 32)
	for lo <= hi {
		mid := (lo + hi) / 2
		if pass(mid) {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return best
}

// lagAccuracy measures whether the predictor exploits a lag-k copy.
// The stream is blocks of 2k outcomes: k fresh random bits, then their
// exact repeat, so on a repeat position y[t] = y[t-k]. A history
// window shorter than k spans every pattern bit except the one the
// outcome is (the bit exactly k back), so it carries no information;
// and because each block draws a fresh pattern, there is no regime for
// table entries to lock onto across blocks — persistent processes
// would leak through quasi-stationary context fingerprints. A window
// of depth >= k sees a globally consistent "outcome = oldest bit"
// mapping and learns it. Accuracy is predict-before-update on repeat
// positions in the second half; the random halves hold it near 0.9
// (not 1.0) for passing table predictors and 0.5 for failing ones.
func lagAccuracy(p bpred.Predictor, k, n int) float64 {
	r := rng.New(0xc0ffee + uint64(k))
	pat := make([]bool, k)
	correct, measured := 0, 0
	for t := 0; t < n; t++ {
		pos := t % (2 * k)
		if pos == 0 {
			for i := range pat {
				pat[i] = r.Bool()
			}
		}
		y := pat[pos%k]
		if pos >= k && t >= n/2 {
			measured++
			if p.Predict(0) == y {
				correct++
			}
		}
		p.Update(0, y)
	}
	if measured == 0 {
		return 0
	}
	return float64(correct) / float64(measured)
}

// maxRamp bounds every aliasing ramp scan; no registry parameter
// exceeds it.
const maxRamp = 27

// rampPCTable finds a pc-indexed counter table's size: saturate pc 0
// taken, saturate pc 2^k not-taken, and see whether pc 0's prediction
// flipped — it does exactly when 2^k wraps to index 0.
func rampPCTable(mk func() bpred.Predictor) (int, error) {
	for k := 1; k <= maxRamp; k++ {
		p := mk()
		updN(p, 0, true, 4)
		updN(p, 1<<uint(k), false, 4)
		if !p.Predict(0) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("probe: no pc-table aliasing up to 2^%d", maxRamp)
}

// rampGlobalXOR finds the counter-table size of the global-history
// kinds (gshare, agree; gselect with pcShift = histBits). All updates
// sit at pc 0 with the history driven back to zero after each write, so
// the touched table entries are known exactly:
//
//	prime:  one not-taken at pc 0 — history stays 0, entry 0 dips (and
//	        for agree, pins pc 0's bias to not-taken);
//	rounds: a taken marker at (pc=0, h=0) writes entry 0; then histBits
//	        not-taken updates walk the one-hot entries 2^j and return
//	        the history register to 0.
//
// After three rounds entry 0 is saturated against the background and
// every other touched entry agrees with it being the odd one out, so a
// state-free Predict at pc 2^k (history 0) sees the marker exactly when
// 2^k wraps to entry 0: the first flipped k is the table size. For
// gselect the pc is shifted left of the history, so the wrap appears at
// k = tableBits - histBits and the table size is k + pcShift.
//
// The drive length equals the MEASURED effective history bits, which
// walks the register back to an index-0-preserving state even when the
// spec's nominal history is wider than the table (the fold drops the
// upper bits) or when the implementation diverges from its claim.
func rampGlobalXOR(mk func() bpred.Predictor, histBits, pcShift int) (int, error) {
	for k := 1; k <= maxRamp; k++ {
		p := mk()
		p.Update(0, false)
		for round := 0; round < 3; round++ {
			p.Update(0, true)
			updN(p, 0, false, histBits)
		}
		if p.Predict(1 << uint(k)) {
			// Equality is the folded shape (nominal history wider than
			// the table, effective history = table bits); only a wrap
			// strictly inside the driven one-hot range is anomalous.
			if k+pcShift < histBits {
				return 0, fmt.Errorf("probe: global table wraps at 2^%d, below the %d-bit history (history longer than table?)", k+pcShift, histBits)
			}
			return k + pcShift, nil
		}
	}
	return 0, fmt.Errorf("probe: no global-table aliasing up to 2^%d", maxRamp)
}

// rampLocal finds the per-branch history table's size for local (and
// tournament, whose local component has the smaller pc-reach): train
// pc 0 not-taken (its history entry stays zero, the zero pattern goes
// not-taken), then train pc 2^k taken. Without aliasing pc 0 still
// reads the zero history and a not-taken pattern; with aliasing the
// shared history entry is all-ones and saturated taken. Tournament's
// pc-indexed chooser entry for pc 0 is untouched and its initial state
// selects the local component, so the flip shows through.
func rampLocal(mk func() bpred.Predictor) (int, error) {
	for k := 1; k <= maxRamp; k++ {
		p := mk()
		updN(p, 0, false, 32)
		updN(p, 1<<uint(k), true, 32)
		if p.Predict(0) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("probe: no local-history-table aliasing up to 2^%d", maxRamp)
}

// rampPerceptron finds the weight-row count behaviourally: with 2^b
// distinct pcs, each pinned to a constant (seeded) outcome and visited
// in random order, per-row bias weights make accuracy near 1 while rows
// stay distinct; one bit past the row count, half the rows hold two pcs
// with conflicting outcomes and accuracy drops toward 0.75. The largest
// passing b is the row count. Random visit order keeps the global
// history uninformative, so the bias weight is the only signal.
func rampPerceptron(mk func() bpred.Predictor, claimed int) (int, error) {
	pass := func(b int) bool {
		p := mk()
		size := 1 << uint(b)
		r := rng.New(0xfeed + uint64(b))
		outcome := make([]bool, size)
		for i := range outcome {
			outcome[i] = r.Bool()
		}
		n := 64 * size
		if n < 1<<13 {
			n = 1 << 13
		}
		correct, measured := 0, 0
		for t := 0; t < n; t++ {
			pc := uint64(r.Intn(size))
			if t >= n/2 {
				measured++
				if p.Predict(pc) == outcome[pc] {
					correct++
				}
			}
			p.Update(pc, outcome[pc])
		}
		return float64(correct)/float64(measured) >= 0.85
	}
	best := 0
	lo, hi := 1, min(claimed+3, 16)
	for lo <= hi {
		mid := (lo + hi) / 2
		if pass(mid) {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("probe: perceptron rows indistinguishable even at 2 rows")
	}
	return best, nil
}

// hysteresis counts the opposing updates that flip a saturated entry —
// the counter width. The probed entry is the one pc 0 reaches with
// all-zero history: a not-taken warmup holds every history register at
// zero for free (shifting in zeros), while saturating the entry
// not-taken. Each round plants one taken update there, then flushes
// the history back to zero with flushLen not-taken updates whose
// writes land on one-hot — different — entries, and reads the entry
// back with a state-free Predict. A 2-bit counter crosses to taken on
// round 2; agree's agreement counter likewise (the warmup pinned the
// bias not-taken and saturated agreement). Perceptron weights sit far
// below threshold after warmup and the flush re-trains them downward
// near the flip point, so they flip late or never (-1, wide).
func hysteresis(mk func() bpred.Predictor, flushLen int) int {
	const flipCap = 8
	p := mk()
	updN(p, 0, false, 64)
	for round := 1; round <= flipCap; round++ {
		p.Update(0, true)
		updN(p, 0, false, flushLen)
		if p.Predict(0) {
			return round
		}
	}
	return -1
}
