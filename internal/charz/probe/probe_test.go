package probe

import (
	"strings"
	"testing"

	"repro/internal/bpred"
	"repro/internal/sim"
)

// TestVerifyAllRegistryKinds is the second-opinion oracle: every
// predictor kind at its registry defaults must probe back to the
// structure its spec claims, through the public interface only.
func TestVerifyAllRegistryKinds(t *testing.T) {
	for _, k := range sim.Kinds() {
		k := k
		t.Run(k, func(t *testing.T) {
			if err := Verify(sim.Spec{Kind: k}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestVerifyNonDefaultParams spot-checks off-default geometries so the
// probes aren't tuned to the registry numbers.
func TestVerifyNonDefaultParams(t *testing.T) {
	for _, spec := range []string{
		"bimodal:9",
		"gshare:10:5",
		"gshare:8:12", // history wider than the table folds down
		"gselect:11:4",
		"gag:9",
		"local:6:7:9",
		"agree:10:6",
		"perceptron:6:16",
	} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			if err := Verify(sim.MustParse(spec)); err != nil {
				t.Error(err)
			}
		})
	}
}

// mismatch probes an impostor implementation against what the claimed
// spec implies and returns Compare's verdict.
func mismatch(t *testing.T, claim string, mk func() bpred.Predictor) error {
	t.Helper()
	spec := sim.MustParse(claim)
	r, err := ProbeWith(spec, mk)
	if err != nil {
		t.Fatalf("probe %s: %v", claim, err)
	}
	exp, err := Expected(spec)
	if err != nil {
		t.Fatal(err)
	}
	return Compare(r, exp)
}

// TestSensitivityHistoryOffByOne: a gshare wired with one history bit
// fewer than its spec claims must be flagged, and the probe must report
// the real depth.
func TestSensitivityHistoryOffByOne(t *testing.T) {
	err := mismatch(t, "gshare:12:8", func() bpred.Predictor { return bpred.NewGShare(12, 7) })
	if err == nil {
		t.Fatal("history off-by-one not flagged")
	}
	if !strings.Contains(err.Error(), "history") {
		t.Errorf("mismatch not attributed to history: %v", err)
	}
}

// TestSensitivityMisSizedTable: a table half the claimed size aliases
// one ramp step early and must be flagged.
func TestSensitivityMisSizedTable(t *testing.T) {
	err := mismatch(t, "gshare:12:8", func() bpred.Predictor { return bpred.NewGShare(11, 8) })
	if err == nil {
		t.Fatal("undersized table not flagged")
	}
	if !strings.Contains(err.Error(), "table") {
		t.Errorf("mismatch not attributed to the table: %v", err)
	}
}

// TestSensitivityWrongStructure: a historyless predictor posing as a
// history-based one (and vice versa) must be flagged.
func TestSensitivityWrongStructure(t *testing.T) {
	if err := mismatch(t, "gshare:12:8", func() bpred.Predictor { return bpred.NewBimodal(12) }); err == nil {
		t.Error("bimodal posing as gshare not flagged")
	}
	if err := mismatch(t, "bimodal:12", func() bpred.Predictor { return bpred.NewGShare(12, 8) }); err == nil {
		t.Error("gshare posing as bimodal not flagged")
	}
	if err := mismatch(t, "bimodal:12", func() bpred.Predictor { return bpred.NewStatic(true) }); err == nil {
		t.Error("static predictor posing as bimodal not flagged")
	}
}

// TestSensitivityCorrectImpostor is the control: an implementation that
// actually matches the claim passes.
func TestSensitivityCorrectImpostor(t *testing.T) {
	if err := mismatch(t, "gshare:12:8", func() bpred.Predictor { return bpred.NewGShare(12, 8) }); err != nil {
		t.Errorf("matching implementation flagged: %v", err)
	}
}

func TestExpectedErrors(t *testing.T) {
	if _, err := Expected(sim.Spec{Kind: "martian"}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Probe(sim.Spec{Kind: "martian"}); err == nil {
		t.Error("Probe of unknown kind accepted")
	}
}

func TestResultString(t *testing.T) {
	r, err := Probe(sim.MustParse("gshare:10:5"))
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	for _, want := range []string{"histbits=5", "tablebits=10", "hysteresis=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("Result.String() = %q missing %q", s, want)
		}
	}
}
