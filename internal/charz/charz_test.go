package charz

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/trace"
)

// evTrace builds an in-memory trace from (pc, taken) pairs in event
// order — the minimal input Characterize needs.
func evTrace(evs ...[2]uint64) *trace.Trace {
	tr := &trace.Trace{Name: "hand"}
	for i, e := range evs {
		tr.Events = append(tr.Events, trace.Event{
			Kind:  trace.KindBranch,
			Step:  uint64(i),
			PC:    e[0],
			Taken: e[1] == 1,
		})
	}
	tr.Branches = uint64(len(evs))
	return tr
}

// seq emits n events at one pc whose outcomes cycle through pattern.
func seq(pc uint64, pattern []uint64, n int) [][2]uint64 {
	out := make([][2]uint64, n)
	for i := range out {
		out[i] = [2]uint64{pc, pattern[i%len(pattern)]}
	}
	return out
}

func characterize(t *testing.T, tr *trace.Trace, opt Options) *Report {
	t.Helper()
	rep, err := Characterize(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v ± %v", name, got, want, tol)
	}
}

func TestAllTaken(t *testing.T) {
	rep := characterize(t, evTrace(seq(7, []uint64{1}, 100)...), Options{})
	if rep.Events != 100 || len(rep.Branches) != 1 {
		t.Fatalf("events=%d branches=%d", rep.Events, len(rep.Branches))
	}
	b := rep.Branches[0]
	if b.PC != 7 || b.Count != 100 || b.Taken != 100 {
		t.Errorf("branch header: %+v", b)
	}
	near(t, "rate", b.TakenRate, 1, 0)
	near(t, "H(Y)", b.Entropy, 0, 0)
	for i, h := range b.CondEntropy {
		near(t, "cond", h, 0, 0)
		_ = i
	}
	near(t, "H(Y|g)", b.GlobalCondEntropy, 0, 0)
	// The zero-weight perceptron probe predicts taken from event one.
	near(t, "sep", b.Separability, 1, 0)
}

func TestAllNotTaken(t *testing.T) {
	rep := characterize(t, evTrace(seq(7, []uint64{0}, 100)...), Options{})
	b := rep.Branches[0]
	near(t, "rate", b.TakenRate, 0, 0)
	near(t, "H(Y)", b.Entropy, 0, 0)
	// The probe's first guess (taken) is its only miss; one update
	// drives every later prediction not-taken.
	near(t, "sep", b.Separability, 0.99, 0)
}

func TestAlternating(t *testing.T) {
	rep := characterize(t, evTrace(seq(3, []uint64{1, 0}, 64)...), Options{})
	b := rep.Branches[0]
	near(t, "rate", b.TakenRate, 0.5, 0)
	near(t, "H(Y)", b.Entropy, 1, 1e-12)
	// One bit of history determines the next outcome exactly.
	for i, d := range rep.Depths {
		near(t, "cond", b.CondEntropy[i], 0, 0)
		_ = d
	}
	near(t, "H(Y|g)", b.GlobalCondEntropy, 0, 0)
	if b.Separability < 0.9 {
		t.Errorf("alternating not separable: sep=%v", b.Separability)
	}
}

// TestPeriodThree pins the conditioned-entropy ladder of the T,T,N
// cycle: one bit of history is ambiguous after a T (the two T positions
// diverge), two bits pin the phase exactly.
func TestPeriodThree(t *testing.T) {
	const n = 999 // 333 full cycles
	rep := characterize(t, evTrace(seq(3, []uint64{1, 1, 0}, n)...), Options{})
	b := rep.Branches[0]
	near(t, "rate", b.TakenRate, 2.0/3, 1e-9)
	near(t, "H(Y)", b.Entropy, H2(2.0/3), 1e-12)
	// Contexts after a T split 50/50 and cover 2/3 of samples:
	// H(Y|h1) = 2/3 bits, up to the one skipped warmup event.
	near(t, "H(Y|h1)", b.CondEntropy[0], 2.0/3, 0.01)
	near(t, "H(Y|h2)", b.CondEntropy[1], 0, 0)
	near(t, "H(Y|h4)", b.CondEntropy[2], 0, 0)
	near(t, "H(Y|h8)", b.CondEntropy[3], 0, 0)
	if b.Separability < 0.9 {
		t.Errorf("period-3 not separable: sep=%v", b.Separability)
	}
}

func TestSeededCoinFlip(t *testing.T) {
	r := rng.New(42)
	var evs [][2]uint64
	for i := 0; i < 8192; i++ {
		evs = append(evs, [2]uint64{1, uint64(b2u(r.Bool()))})
	}
	rep := characterize(t, evTrace(evs...), Options{})
	b := rep.Branches[0]
	near(t, "rate", b.TakenRate, 0.5, 0.02)
	if b.Entropy < 0.98 {
		t.Errorf("H(Y) = %v, want ~1", b.Entropy)
	}
	// History conditioning removes nothing real; only finite-sample
	// bias (~K/(2N ln 2)) pulls the deepest estimate down.
	for i, d := range rep.Depths {
		if b.CondEntropy[i] < b.Entropy-0.1 {
			t.Errorf("H(Y|h%d) = %v too far below H(Y) = %v", d, b.CondEntropy[i], b.Entropy)
		}
	}
	near(t, "sep", b.Separability, 0.5, 0.06)
}

// TestSingleOutcomeEdges: a one-event branch and a single-outcome
// branch must report zero entropies and finite metrics, never NaN.
func TestSingleOutcomeEdges(t *testing.T) {
	rep := characterize(t, evTrace([2]uint64{5, 1}), Options{})
	if rep.Events != 1 {
		t.Fatalf("events = %d", rep.Events)
	}
	b := rep.Branches[0]
	if b.Count != 1 || b.TakenRate != 1 || b.Entropy != 0 || b.Separability != 1 {
		t.Errorf("one-event branch: %+v", b)
	}
	for _, h := range b.CondEntropy {
		if h != 0 {
			t.Errorf("conditioned entropy with no conditioned samples: %v", h)
		}
	}
	checkFinite(t, rep)
}

func TestEmptyTrace(t *testing.T) {
	rep := characterize(t, evTrace(), Options{})
	if rep.Events != 0 || len(rep.Branches) != 0 {
		t.Fatalf("empty trace: %+v", rep)
	}
	checkFinite(t, rep)
}

// TestGlobalConditioning interleaves a coin-flip leader with a follower
// that copies the leader's outcome: invisible to the follower's local
// history, fully determined by one bit of global history.
func TestGlobalConditioning(t *testing.T) {
	r := rng.New(7)
	var evs [][2]uint64
	for i := 0; i < 4096; i++ {
		v := uint64(b2u(r.Bool()))
		evs = append(evs, [2]uint64{10, v}, [2]uint64{20, v})
	}
	rep := characterize(t, evTrace(evs...), Options{})
	if len(rep.Branches) != 2 || rep.Branches[0].PC != 10 || rep.Branches[1].PC != 20 {
		t.Fatalf("branches not sorted by PC: %+v", rep.Branches)
	}
	follower := rep.Branches[1]
	if follower.CondEntropy[3] < 0.8 {
		t.Errorf("follower local H(Y|h8) = %v, want ~1 (local history can't see the leader)",
			follower.CondEntropy[3])
	}
	near(t, "follower H(Y|g8)", follower.GlobalCondEntropy, 0, 1e-9)
}

func TestGlobalDepthDisabled(t *testing.T) {
	rep := characterize(t, evTrace(seq(1, []uint64{1, 0}, 32)...), Options{GlobalDepth: -1})
	if rep.GlobalDepth >= 0 {
		t.Errorf("GlobalDepth = %d, want negative passthrough", rep.GlobalDepth)
	}
	if rep.GlobalCondEntropy != 0 {
		t.Errorf("disabled global conditioning reported %v", rep.GlobalCondEntropy)
	}
}

func TestOptionValidation(t *testing.T) {
	tr := evTrace(seq(1, []uint64{1}, 4)...)
	for _, opt := range []Options{
		{Depths: []int{0}},
		{Depths: []int{33}},
		{Depths: []int{4, -1}},
		{GlobalDepth: 33},
	} {
		if _, err := Characterize(tr, opt); err == nil {
			t.Errorf("options %+v accepted", opt)
		}
	}
}

func TestCondAt(t *testing.T) {
	rep := characterize(t, evTrace(seq(1, []uint64{1, 0}, 64)...), Options{})
	if got := rep.CondAt(4); got != rep.CondEntropy[2] {
		t.Errorf("CondAt(4) = %v, want %v", got, rep.CondEntropy[2])
	}
	// A depth the report doesn't have falls back to H(Y).
	if got := rep.CondAt(5); got != rep.Entropy {
		t.Errorf("CondAt(5) = %v, want H(Y) = %v", got, rep.Entropy)
	}
}

func TestH2(t *testing.T) {
	cases := []struct{ p, h float64 }{
		{0, 0}, {1, 0}, {-0.5, 0}, {1.5, 0},
		{0.5, 1},
		{0.25, 0.8112781244591328},
	}
	for _, c := range cases {
		near(t, "H2", H2(c.p), c.h, 1e-12)
	}
	// InvH2 inverts H2 on [0, 1/2].
	for _, h := range []float64{0, 0.1, 0.3, 0.5, 0.9, 1} {
		near(t, "H2(InvH2)", H2(InvH2(h)), h, 1e-9)
	}
}

func checkFinite(t *testing.T, rep *Report) {
	t.Helper()
	finite := func(name string, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s not finite: %v", name, v)
		}
	}
	finite("TakenRate", rep.TakenRate)
	finite("Entropy", rep.Entropy)
	finite("GlobalCondEntropy", rep.GlobalCondEntropy)
	finite("Separability", rep.Separability)
	for _, h := range rep.CondEntropy {
		finite("CondEntropy", h)
	}
	for _, b := range rep.Branches {
		finite("branch TakenRate", b.TakenRate)
		finite("branch Entropy", b.Entropy)
		finite("branch GlobalCondEntropy", b.GlobalCondEntropy)
		finite("branch Separability", b.Separability)
		for _, h := range b.CondEntropy {
			finite("branch CondEntropy", h)
		}
	}
}
