package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ifconv"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

var testTrace = sync.OnceValue(func() *trace.Trace {
	p, _, err := ifconv.Convert(workload.ByNameMust("scan").Build(), ifconv.Config{})
	if err != nil {
		panic(err)
	}
	tr, err := trace.Collect(p, 0)
	if err != nil {
		panic(err)
	}
	return tr
})

// cluster is a router fronting n in-process bpservd backends that share
// one spill directory.
type cluster struct {
	rt       *Router
	front    *httptest.Server
	backends []*httptest.Server
	serves   []*serve.Server
}

func newCluster(t *testing.T, n int, spill string) *cluster {
	t.Helper()
	c := &cluster{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s := serve.MustNew(serve.Config{Shards: 2, SpillDir: spill})
		ts := httptest.NewServer(s.Handler())
		c.serves = append(c.serves, s)
		c.backends = append(c.backends, ts)
		urls[i] = ts.URL
	}
	rt, err := New(Config{Backends: urls, HealthEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c.rt = rt
	c.front = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		c.front.Close()
		rt.Close()
		for i := range c.backends {
			c.backends[i].Close()
			c.serves[i].Close()
		}
	})
	return c
}

func doJSON(t *testing.T, method, url string, body any, wantCode int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: got %d, want %d; body: %s", method, url, resp.StatusCode, wantCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("bad response JSON %q: %v", raw, err)
		}
	}
}

func createSession(t *testing.T, base, id string) serve.SessionJSON {
	t.Helper()
	var sess serve.SessionJSON
	doJSON(t, "POST", base+"/v1/sessions",
		serve.SessionRequest{ID: id, Spec: "gshare:12:8", EvalOptions: serve.EvalOptions{SFPF: true, PGU: "all"}},
		http.StatusCreated, &sess)
	return sess
}

func feedBatch(t *testing.T, base, id string, events []serve.EventJSON, seq uint64) serve.BatchResponse {
	t.Helper()
	var resp serve.BatchResponse
	doJSON(t, "POST", fmt.Sprintf("%s/v1/sessions/%s/events", base, id),
		serve.BatchRequest{Events: events, Seq: seq}, http.StatusOK, &resp)
	return resp
}

func jsonEvents(n int) []serve.EventJSON {
	tr := testTrace()
	if n > len(tr.Events) {
		n = len(tr.Events)
	}
	out := make([]serve.EventJSON, n)
	for i := 0; i < n; i++ {
		out[i] = serve.EventToJSON(&tr.Events[i])
	}
	return out
}

// TestRingDeterminismAndSpread: the ring must give every ID a stable
// owner and spread IDs across all backends.
func TestRingDeterminismAndSpread(t *testing.T) {
	c := newCluster(t, 3, "")
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("spread-%d", i)
		b1 := c.rt.pick(id, (*Backend).up)
		b2 := c.rt.pick(id, (*Backend).up)
		if b1 != b2 {
			t.Fatalf("pick not deterministic for %s", id)
		}
		counts[b1.URL]++
	}
	if len(counts) != 3 {
		t.Fatalf("300 ids landed on %d of 3 backends: %v", len(counts), counts)
	}
	for url, n := range counts {
		if n < 30 {
			t.Fatalf("backend %s got only %d/300 ids: %v", url, n, counts)
		}
	}
}

// TestSessionAffinity: all traffic for one session lands on its ring
// owner, and the router-generated ID is returned to the client.
func TestSessionAffinity(t *testing.T) {
	c := newCluster(t, 2, "")
	sess := createSession(t, c.front.URL, "")
	if sess.ID == "" {
		t.Fatal("router did not assign an id")
	}
	events := jsonEvents(200)
	feedBatch(t, c.front.URL, sess.ID, events, 1)
	feedBatch(t, c.front.URL, sess.ID, events, 2)

	// The session exists on exactly the owner backend.
	owner := c.rt.pick(sess.ID, (*Backend).up)
	found := 0
	for i, ts := range c.backends {
		var got serve.SessionJSON
		req, _ := http.NewRequest("GET", ts.URL+"/v1/sessions/"+sess.ID, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			found++
			if ts.URL != owner.URL {
				t.Fatalf("session on backend %d, ring owner is %s", i, owner.URL)
			}
			json.NewDecoder(resp.Body).Decode(&got)
			if got.Events != 400 || got.LastSeq != 2 {
				t.Fatalf("owner state: %+v", got)
			}
		}
		resp.Body.Close()
	}
	if found != 1 {
		t.Fatalf("session resident on %d backends, want 1", found)
	}

	// Merged listing sees it once.
	var list struct {
		Count int `json:"count"`
	}
	doJSON(t, "GET", c.front.URL+"/v1/sessions", nil, http.StatusOK, &list)
	if list.Count != 1 {
		t.Fatalf("merged list count %d, want 1", list.Count)
	}
}

// TestFailoverWithSharedSpill kills a backend mid-stream and verifies
// zero lost state: the dead backend's SIGTERM-equivalent close spills
// its sessions, the router retries onto the survivor, the survivor
// warm-restores from the shared spill dir, and seq dedup absorbs the
// retried batch. Final metrics must equal an uninterrupted direct run.
func TestFailoverWithSharedSpill(t *testing.T) {
	spill := t.TempDir()
	c := newCluster(t, 2, spill)
	sess := createSession(t, c.front.URL, "failover-1")
	events := jsonEvents(300)

	feedBatch(t, c.front.URL, sess.ID, events[:100], 1)

	// Kill the owner: close its HTTP listener (transport errors for the
	// router) and drain the serve layer (spills live sessions to disk).
	owner := c.rt.pick(sess.ID, (*Backend).up)
	for i, ts := range c.backends {
		if ts.URL == owner.URL {
			c.backends[i].Close()
			c.serves[i].Close()
		}
	}

	// The retried batch (same seq) plus the rest flow through the
	// router's transport-failure retry to the survivor, which restores
	// the session from the shared spill directory.
	resp := feedBatch(t, c.front.URL, sess.ID, events[:100], 1)
	if !resp.Duplicate {
		t.Fatalf("retried batch not deduplicated: %+v", resp)
	}
	feedBatch(t, c.front.URL, sess.ID, events[100:200], 2)
	feedBatch(t, c.front.URL, sess.ID, events[200:], 3)

	var got serve.SessionJSON
	doJSON(t, "GET", c.front.URL+"/v1/sessions/"+sess.ID, nil, http.StatusOK, &got)
	if got.Events != uint64(len(events)) || got.LastSeq != 3 {
		t.Fatalf("post-failover session: events=%d lastSeq=%d, want %d/3", got.Events, got.LastSeq, len(events))
	}
	if c.rt.mt.retries.Value() == 0 {
		t.Fatal("failover did not exercise the retry path")
	}
}

// TestDrainMigratesSessions: draining a backend moves its sessions to
// the other backend with identical state, via snapshot/restore.
func TestDrainMigratesSessions(t *testing.T) {
	c := newCluster(t, 2, "")
	events := jsonEvents(250)

	// Create sessions until both backends hold at least one.
	perBackend := map[string][]string{}
	for i := 0; len(perBackend) < 2 || i < 6; i++ {
		id := fmt.Sprintf("drain-%d", i)
		createSession(t, c.front.URL, id)
		feedBatch(t, c.front.URL, id, events, 1)
		owner := c.rt.pick(id, (*Backend).up)
		perBackend[owner.URL] = append(perBackend[owner.URL], id)
		if i > 64 {
			t.Fatal("ring never placed sessions on both backends")
		}
	}
	victim := c.rt.Backends()[0]
	movedIDs := perBackend[victim.URL]

	before := map[string]serve.SessionJSON{}
	for _, id := range movedIDs {
		var s serve.SessionJSON
		doJSON(t, "GET", c.front.URL+"/v1/sessions/"+id, nil, http.StatusOK, &s)
		before[id] = s
	}

	var res struct {
		Migrated int `json:"migrated"`
		Failed   int `json:"failed"`
	}
	doJSON(t, "POST", c.front.URL+"/admin/drain?backend="+victim.URL, nil, http.StatusOK, &res)
	if res.Failed != 0 || res.Migrated != len(movedIDs) {
		t.Fatalf("drain: %+v, want migrated=%d failed=0", res, len(movedIDs))
	}

	// The drained backend is empty; sessions live on with state intact.
	var list struct {
		Count int `json:"count"`
	}
	doJSON(t, "GET", victim.URL+"/v1/sessions", nil, http.StatusOK, &list)
	if list.Count != 0 {
		t.Fatalf("drained backend still holds %d sessions", list.Count)
	}
	for _, id := range movedIDs {
		var after serve.SessionJSON
		doJSON(t, "GET", c.front.URL+"/v1/sessions/"+id, nil, http.StatusOK, &after)
		b := before[id]
		if after.Events != b.Events || after.LastSeq != b.LastSeq ||
			!reflect.DeepEqual(after.Metrics, b.Metrics) {
			t.Fatalf("session %s changed across migration:\nbefore %+v\nafter  %+v", id, b, after)
		}
		// A new batch still lands (on the surviving backend).
		feedBatch(t, c.front.URL, id, events, 2)
	}
}

// TestRouterMetricsAndHealth: /metrics exposes the per-backend health
// gauge; /healthz degrades when the whole fleet is down.
func TestRouterMetricsAndHealth(t *testing.T) {
	c := newCluster(t, 2, "")
	resp, err := http.Get(c.front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"bprouter_backend_healthy{backend=\"" + c.backends[0].URL + "\"} 1",
		"bprouter_backend_healthy{backend=\"" + c.backends[1].URL + "\"} 1",
		"bprouter_proxied_total",
		"bprouter_retries_total",
		"bprouter_migrations_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}

	doJSON(t, "GET", c.front.URL+"/healthz", nil, http.StatusOK, nil)
	// Stop the health loop so it can't re-mark the fleet healthy under us;
	// the handler keeps serving after Close.
	c.rt.Close()
	for _, b := range c.rt.Backends() {
		b.healthy.Store(false)
	}
	doJSON(t, "GET", c.front.URL+"/healthz", nil, http.StatusServiceUnavailable, nil)
}

// TestNoBackends: construction must fail with no fleet.
func TestNoBackends(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty fleet")
	}
}
