// Package router is the cluster front tier for bpservd backends: a
// session-affine HTTP proxy that consistent-hashes session IDs across N
// backends, health-checks them, retries around dead ones, and migrates
// sessions off draining backends with P64S snapshots (internal/snap via
// the backends' snapshot/restore endpoints).
//
// Placement is a consistent-hash ring with virtual nodes, so adding or
// removing one backend remaps only ~1/N of the sessions. The router
// generates session IDs itself on create (clients may also supply one),
// which is what lets it place a session on the ring before the session
// exists. Batch retries around a failed backend are safe because the
// serving tier deduplicates by batch sequence number, and state survives
// backend death because backends share a spill directory: the replacement
// backend warm-restores the session from the dead backend's last spill
// (shutdown drain or eviction), and seq dedup absorbs the client's
// retried batch.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Backend is one bpservd instance behind the router.
type Backend struct {
	// URL is the backend's base URL, e.g. "http://127.0.0.1:8080".
	URL string

	healthy  atomic.Bool
	draining atomic.Bool
}

// Healthy reports the last health-check outcome (or proxy failure).
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// Draining reports whether the backend is being emptied for removal.
func (b *Backend) Draining() bool { return b.draining.Load() }

// up reports whether the ring may place sessions on the backend.
func (b *Backend) up() bool { return b.healthy.Load() && !b.draining.Load() }

// Config parameterises the router.
type Config struct {
	// Backends are the bpservd base URLs. At least one is required.
	Backends []string
	// VNodes is the number of ring points per backend (default 64).
	VNodes int
	// HealthEvery is the health-check interval (default 1s).
	HealthEvery time.Duration
	// Timeout bounds one proxied request (default 30s).
	Timeout time.Duration
	// MaxBody caps a buffered request body (default 64 MiB).
	MaxBody int64
	// SlowRequest is the latency threshold above which a request gets a
	// structured slow_request log line; 0 disables.
	SlowRequest time.Duration
	// Logger receives router events; nil discards.
	Logger *log.Logger
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Backends) == 0 {
		return c, errors.New("router: no backends configured")
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 64 << 20
	}
	if c.Logger == nil {
		c.Logger = log.New(io.Discard, "", 0)
	}
	return c, nil
}

// ringPoint is one virtual node: a position on the hash circle owned by
// a backend.
type ringPoint struct {
	hash    uint64
	backend int
}

// Router proxies the bpservd session API across a backend fleet.
type Router struct {
	cfg      Config
	backends []*Backend
	ring     []ringPoint // sorted by hash
	client   *http.Client
	mux      *http.ServeMux
	log      *log.Logger

	idctr  atomic.Uint64
	idsalt uint64

	mt    *routerMetrics
	trace *telemetry.Tracer

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// hash64 is FNV-64a with a murmur-style finalizer. The finalizer
// matters: raw FNV of short strings that differ only in a trailing
// vnode digit yields near-consecutive values, which collapses each
// backend's virtual nodes into a few giant arcs and destroys the
// ring's balance.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// New builds a Router and starts its health-check loop.
func New(cfg Config) (*Router, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.Timeout},
		mux:    http.NewServeMux(),
		log:    cfg.Logger,
		idsalt: rand.Uint64(),
		mt:     newRouterMetrics(),
		trace:  telemetry.NewTracer("bprouter", cfg.Logger, cfg.SlowRequest),
		stop:   make(chan struct{}),
	}
	for i, u := range cfg.Backends {
		b := &Backend{URL: strings.TrimRight(u, "/")}
		b.healthy.Store(true) // optimistic until the first check
		rt.backends = append(rt.backends, b)
		for v := 0; v < cfg.VNodes; v++ {
			rt.ring = append(rt.ring, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", b.URL, v)), backend: i})
		}
	}
	sort.Slice(rt.ring, func(i, j int) bool { return rt.ring[i].hash < rt.ring[j].hash })
	rt.mt.reg.GaugeVec("bprouter_backend_healthy", "Backend health by base URL (1 healthy, 0 not).",
		[]string{"backend"}, func(emit func([]string, float64)) {
			for _, b := range rt.backends {
				v := 0.0
				if b.Healthy() {
					v = 1
				}
				emit([]string{b.URL}, v)
			}
		})
	rt.mt.reg.GaugeVec("bprouter_backend_draining", "Backend draining state by base URL.",
		[]string{"backend"}, func(emit func([]string, float64)) {
			for _, b := range rt.backends {
				v := 0.0
				if b.Draining() {
					v = 1
				}
				emit([]string{b.URL}, v)
			}
		})

	rt.mux.Handle("POST /v1/sessions", rt.instrument("create_session", rt.handleCreate))
	rt.mux.Handle("GET /v1/sessions", rt.instrument("list_sessions", rt.handleList))
	rt.mux.Handle("/v1/sessions/{id}", rt.instrument("session", rt.handleSession))
	rt.mux.Handle("/v1/sessions/{id}/{rest...}", rt.instrument("session", rt.handleSession))
	rt.mux.Handle("/v1/", rt.instrument("proxy", rt.handleAny)) // sweeps, predictors, workloads
	rt.mux.Handle("GET /healthz", rt.instrument("healthz", rt.handleHealthz))
	rt.mux.Handle("GET /metrics", rt.instrument("metrics", rt.handleMetrics))
	rt.mux.Handle("POST /admin/drain", rt.instrument("drain", rt.handleDrain))
	rt.mux.HandleFunc("/debug/pprof/", pprof.Index)
	rt.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	rt.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	rt.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	rt.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	rt.wg.Add(1)
	go rt.healthLoop()
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the health-check loop.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.wg.Wait()
}

// Backends exposes the fleet for tests and the drain admin path.
func (rt *Router) Backends() []*Backend { return rt.backends }

// statusWriter captures the response code for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request-ID propagation, per-endpoint
// latency/status accounting, span recording, and one structured log
// line per request. Handles are resolved here, once per endpoint at
// route-registration time, so the per-request path does not allocate
// for accounting.
func (rt *Router) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	hist := rt.mt.latency.With(endpoint)
	codes := telemetry.NewCodeCounter(rt.mt.requests, endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		// EnsureRequestID writes a minted ID back onto r.Header, and
		// forward clones r.Header into the upstream request — so the
		// same ID reaches the backend, whichever backend retries land on.
		rid := rt.trace.EnsureRequestID(r)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		sw.Header().Set(telemetry.RequestIDHeader, rid)
		h(sw, r)
		d := time.Since(start)
		codes.Code(sw.code).Inc()
		hist.ObserveDuration(d)
		rt.trace.Record(telemetry.Span{
			RequestID: rid, Endpoint: endpoint, Status: sw.code, Start: start, Duration: d,
		})
		rt.log.Printf("method=%s path=%s endpoint=%s status=%d dur_us=%d rid=%s",
			r.Method, r.URL.Path, endpoint, sw.code, d.Microseconds(), rid)
	})
}

// pick returns the backend owning id: the first ring point clockwise
// from the ID's hash whose backend passes ok. Returns nil if none does.
func (rt *Router) pick(id string, ok func(*Backend) bool) *Backend {
	h := hash64(id)
	n := len(rt.ring)
	start := sort.Search(n, func(i int) bool { return rt.ring[i].hash >= h }) % n
	seen := make(map[int]bool, len(rt.backends))
	for i := 0; i < n && len(seen) < len(rt.backends); i++ {
		p := rt.ring[(start+i)%n]
		if seen[p.backend] {
			continue
		}
		seen[p.backend] = true
		if b := rt.backends[p.backend]; ok(b) {
			return b
		}
	}
	return nil
}

func (rt *Router) healthLoop() {
	defer rt.wg.Done()
	rt.checkAll()
	t := time.NewTicker(rt.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			rt.checkAll()
		case <-rt.stop:
			return
		}
	}
}

func (rt *Router) checkAll() {
	for _, b := range rt.backends {
		ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HealthEvery)
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, b.URL+"/healthz", nil)
		resp, err := rt.client.Do(req)
		ok := err == nil && resp.StatusCode == http.StatusOK
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
		if ok != b.healthy.Swap(ok) {
			rt.log.Printf("backend %s health %v -> %v", b.URL, !ok, ok)
		}
		if !ok {
			rt.mt.healthFail.Inc()
		}
	}
}

func (rt *Router) newID() string {
	return fmt.Sprintf("r%06x-%08x", rt.idctr.Add(1), uint32(rt.idsalt>>32)^uint32(rt.idsalt)^rand.Uint32())
}

// forward proxies one request (with a pre-buffered body) to the backend
// owning id, retrying around backends that fail at the transport level.
// A transport failure marks the backend unhealthy immediately — the
// health loop re-admits it later — and the retry re-resolves the ring,
// so the request lands on the session's new owner. Safe for batch posts
// because the backends deduplicate by batch seq.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, id string, body []byte) {
	rt.mt.proxied.Inc()
	rid := r.Header.Get(telemetry.RequestIDHeader)
	attempts := 0
	defer func() {
		if attempts > 0 {
			rt.mt.attempts.Observe(float64(attempts))
		}
	}()
	for attempt := 0; attempt <= len(rt.backends); attempt++ {
		b := rt.pick(id, (*Backend).up)
		if b == nil {
			break
		}
		url := b.URL + r.URL.Path
		if r.URL.RawQuery != "" {
			url += "?" + r.URL.RawQuery
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
		if err != nil {
			writeJSONError(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		req.Header = r.Header.Clone()
		attempts++
		upStart := time.Now()
		resp, err := rt.client.Do(req)
		rt.mt.upstream.With(b.URL).ObserveDuration(time.Since(upStart))
		if err != nil {
			if r.Context().Err() != nil {
				writeJSONError(w, http.StatusBadGateway, "canceled", err.Error())
				return
			}
			b.healthy.Store(false)
			rt.mt.retries.Inc()
			rt.log.Printf("backend %s failed (%v), retrying %s %s rid=%s", b.URL, err, r.Method, r.URL.Path, rid)
			continue
		}
		copyResponse(w, resp)
		return
	}
	rt.mt.noBackend.Inc()
	writeJSONError(w, http.StatusServiceUnavailable, "no_backend", "no healthy backend available")
}

func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		if k == telemetry.RequestIDHeader {
			// Already set by instrument; the backend echoes the same ID,
			// and Add would duplicate the header.
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func writeJSONError(w http.ResponseWriter, code int, errCode, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]map[string]string{
		"error": {"code": errCode, "message": msg},
	})
}

func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBody))
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeJSONError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
		} else {
			writeJSONError(w, http.StatusBadRequest, "bad_request", err.Error())
		}
		return nil, false
	}
	return body, true
}

// handleCreate assigns the session an ID (unless the client supplied
// one) and routes the create to the ring owner, so every later request
// for the ID resolves to the same backend.
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var req map[string]any
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad_request", "malformed JSON body: "+err.Error())
		return
	}
	id, _ := req["id"].(string)
	if id == "" {
		id = rt.newID()
		req["id"] = id
		var err error
		if body, err = json.Marshal(req); err != nil {
			writeJSONError(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
	}
	rt.forward(w, r, id, body)
}

// handleSession routes every per-session endpoint (events, metrics,
// snapshot, restore, delete) by the path's session ID.
func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	rt.forward(w, r, r.PathValue("id"), body)
}

// handleAny routes non-session API paths (sweeps, predictors,
// workloads) to any healthy backend.
func (rt *Router) handleAny(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	// A random key spreads stateless requests across the fleet.
	rt.forward(w, r, fmt.Sprintf("any-%d", rand.Uint64()), body)
}

// handleList merges the session listings of every healthy backend.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	type listResp struct {
		Count    int               `json:"count"`
		Sessions []json.RawMessage `json:"sessions"`
	}
	out := listResp{Sessions: []json.RawMessage{}}
	for _, b := range rt.backends {
		if !b.Healthy() {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.URL+"/v1/sessions", nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			b.healthy.Store(false)
			continue
		}
		var part listResp
		err = json.NewDecoder(resp.Body).Decode(&part)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		out.Sessions = append(out.Sessions, part.Sessions...)
	}
	out.Count = len(out.Sessions)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	healthy := 0
	for _, b := range rt.backends {
		if b.Healthy() {
			healthy++
		}
	}
	if healthy == 0 {
		writeJSONError(w, http.StatusServiceUnavailable, "no_backend", "no healthy backend")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"healthy_backends\":%d}\n", healthy)
}

// handleMetrics renders the router's registry in the Prometheus text
// exposition format (per-endpoint request counters and latency
// histograms, upstream attempt histograms, backend health gauges).
func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rt.mt.reg.Render(w)
}

// handleDrain marks a backend draining and migrates every session it
// holds to the ring's new owners via snapshot/restore/delete. The
// backend stays available for reads during the sweep; each session is
// deleted from it only after the restore on its new owner succeeds.
func (rt *Router) handleDrain(w http.ResponseWriter, r *http.Request) {
	target := r.URL.Query().Get("backend")
	var b *Backend
	for _, cand := range rt.backends {
		if cand.URL == strings.TrimRight(target, "/") {
			b = cand
			break
		}
	}
	if b == nil {
		writeJSONError(w, http.StatusNotFound, "unknown_backend", fmt.Sprintf("backend %q is not in the fleet", target))
		return
	}
	b.draining.Store(true)
	moved, failed, err := rt.Drain(r.Context(), b)
	if err != nil {
		writeJSONError(w, http.StatusBadGateway, "drain_failed", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"backend\":%q,\"migrated\":%d,\"failed\":%d}\n", b.URL, moved, failed)
}

// Drain migrates all sessions off b (already marked draining) to their
// new ring owners. Returns migrated and failed counts.
func (rt *Router) Drain(ctx context.Context, b *Backend) (moved, failed int, err error) {
	var list struct {
		Sessions []struct {
			ID string `json:"id"`
		} `json:"sessions"`
	}
	if err := rt.getJSON(ctx, b.URL+"/v1/sessions", &list); err != nil {
		return 0, 0, fmt.Errorf("list sessions on %s: %w", b.URL, err)
	}
	for _, s := range list.Sessions {
		if err := rt.migrate(ctx, b, s.ID); err != nil {
			failed++
			rt.log.Printf("migrate %s off %s: %v", s.ID, b.URL, err)
			continue
		}
		moved++
		rt.mt.migrations.Inc()
	}
	return moved, failed, nil
}

func (rt *Router) getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s: %s", url, resp.Status, raw)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// migrate moves one session: snapshot from the old backend, restore on
// the ring's new owner, then delete the original. A failure before the
// delete leaves the session where it was — migration is all-or-nothing
// per session.
func (rt *Router) migrate(ctx context.Context, from *Backend, id string) error {
	to := rt.pick(id, (*Backend).up)
	if to == nil {
		return errors.New("no healthy backend to migrate to")
	}
	if to == from {
		return nil // already owned correctly (shouldn't happen while draining)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, from.URL+"/v1/sessions/"+id+"/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	blob, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || readErr != nil {
		return fmt.Errorf("snapshot: %s: %s", resp.Status, blob)
	}
	req, err = http.NewRequestWithContext(ctx, http.MethodPost, to.URL+"/v1/sessions/"+id+"/restore", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err = rt.client.Do(req)
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("restore on %s: %s: %s", to.URL, resp.Status, raw)
	}
	req, err = http.NewRequestWithContext(ctx, http.MethodDelete, from.URL+"/v1/sessions/"+id, nil)
	if err != nil {
		return err
	}
	resp, err = rt.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil
}
