package router

import (
	"bytes"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// TestScrapeLint drives traffic through the router, then requires the
// full /metrics page to pass the strict exposition lint and carry the
// per-endpoint latency histograms and upstream families.
func TestScrapeLint(t *testing.T) {
	c := newCluster(t, 2, "")
	createSession(t, c.front.URL, "lint-1")
	doJSON(t, "GET", c.front.URL+"/v1/sessions/lint-1", nil, http.StatusOK, nil)

	resp, err := http.Get(c.front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := telemetry.ParseText(bytes.NewReader(page))
	if err != nil {
		t.Fatalf("router scrape fails lint: %v\n%s", err, page)
	}
	byName := map[string]telemetry.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f, ok := byName["bprouter_request_seconds"]; !ok {
		t.Error("no per-endpoint latency histogram")
	} else if s := f.Sample("bprouter_request_seconds_count", map[string]string{"endpoint": "session"}); s == nil || s.Value < 1 {
		t.Errorf("request_seconds_count{session} = %+v, want >= 1", s)
	}
	if f, ok := byName["bprouter_requests_total"]; !ok {
		t.Error("no request counter family")
	} else if s := f.Sample("bprouter_requests_total", map[string]string{"endpoint": "create_session", "code": "201"}); s == nil || s.Value != 1 {
		t.Errorf("requests{create_session,201} = %+v, want 1", s)
	}
	if f, ok := byName["bprouter_upstream_seconds"]; !ok {
		t.Error("no upstream latency family")
	} else if len(f.Samples) == 0 {
		t.Error("upstream latency family empty")
	}
	if f, ok := byName["bprouter_upstream_attempts"]; !ok {
		t.Error("no upstream attempts family")
	} else if s := f.Sample("bprouter_upstream_attempts_count", nil); s == nil || s.Value < 2 {
		t.Errorf("upstream_attempts_count = %+v, want >= 2", s)
	}
	if f, ok := byName["bprouter_backend_healthy"]; !ok || len(f.Samples) != 2 {
		t.Errorf("backend_healthy: %+v", f)
	}
	if f, ok := byName["build_info"]; !ok || len(f.Samples) != 1 {
		t.Errorf("build_info: %+v", f)
	}
}

// TestRequestIDAcrossTiers checks a client-supplied request ID survives
// the router hop into the backend's logs, and that the router both logs
// it and echoes it on the response.
func TestRequestIDAcrossTiers(t *testing.T) {
	var backendLog bytes.Buffer
	s := serve.MustNew(serve.Config{Shards: 1, Logger: log.New(&backendLog, "", 0)})
	bts := httptest.NewServer(s.Handler())
	defer func() { bts.Close(); s.Close() }()

	var routerLog bytes.Buffer
	rt, err := New(Config{Backends: []string{bts.URL}, HealthEvery: time.Hour, Logger: log.New(&routerLog, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer func() { front.Close(); rt.Close() }()

	req, _ := http.NewRequest("GET", front.URL+"/v1/sessions/ghost", nil)
	req.Header.Set(telemetry.RequestIDHeader, "xtier-rid-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Values(telemetry.RequestIDHeader); len(got) != 1 || got[0] != "xtier-rid-7" {
		t.Errorf("response rid header %v, want exactly one xtier-rid-7", got)
	}
	if !strings.Contains(string(body), `"request_id":"xtier-rid-7"`) {
		t.Errorf("backend error envelope through router misses request_id: %s", body)
	}
	for name, buf := range map[string]*bytes.Buffer{"router": &routerLog, "backend": &backendLog} {
		if !strings.Contains(buf.String(), "rid=xtier-rid-7") {
			t.Errorf("%s log misses rid: %s", name, buf.String())
		}
	}
}
