package router

import (
	"repro/internal/buildinfo"
	"repro/internal/telemetry"
)

// latencyBuckets are the histogram upper bounds in seconds (an implicit
// +Inf follows): the same grid the backends use, so router-side and
// backend-side latency distributions compare directly.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// attemptBuckets bound the per-request upstream attempt count: 1 is the
// no-retry common case; anything above counts failovers.
var attemptBuckets = []float64{1, 2, 3, 4, 6, 8}

// routerMetrics is the bprouter's metric set on the shared telemetry
// registry. Per-endpoint handles are resolved once at route-registration
// time (see Router.instrument), keeping the request path allocation-free.
type routerMetrics struct {
	reg *telemetry.Registry

	requests *telemetry.CounterVec   // bprouter_requests_total{endpoint,code}
	latency  *telemetry.HistogramVec // bprouter_request_seconds{endpoint}
	upstream *telemetry.HistogramVec // bprouter_upstream_seconds{backend}
	attempts *telemetry.Histogram    // bprouter_upstream_attempts

	proxied    *telemetry.Counter
	retries    *telemetry.Counter
	noBackend  *telemetry.Counter
	migrations *telemetry.Counter
	healthFail *telemetry.Counter
}

func newRouterMetrics() *routerMetrics {
	reg := telemetry.NewRegistry()
	m := &routerMetrics{reg: reg}
	m.requests = reg.CounterVec("bprouter_requests_total", "HTTP requests by endpoint and status code.", "endpoint", "code")
	m.latency = reg.HistogramVec("bprouter_request_seconds", "End-to-end request latency by endpoint, as the client saw it.", latencyBuckets, "endpoint")
	m.upstream = reg.HistogramVec("bprouter_upstream_seconds", "Latency of individual proxy attempts by backend (failed attempts included).", latencyBuckets, "backend")
	m.attempts = reg.Histogram("bprouter_upstream_attempts", "Upstream attempts per proxied request (1 = no retry).", attemptBuckets)
	m.proxied = reg.Counter("bprouter_proxied_total", "Requests proxied to backends.")
	m.retries = reg.Counter("bprouter_retries_total", "Proxy attempts retried on another backend after a transport failure.")
	m.noBackend = reg.Counter("bprouter_no_backend_total", "Requests failed because no healthy backend was available.")
	m.migrations = reg.Counter("bprouter_migrations_total", "Sessions migrated off draining backends.")
	m.healthFail = reg.Counter("bprouter_health_check_failures_total", "Failed backend health checks.")
	telemetry.RegisterBuildInfo(reg, buildinfo.Version(), buildinfo.Revision())
	return m
}
