// Package results is the append-only experiment results store. Every
// harness engine run can append one record per experiment — config
// hash, build version, wall time, and the rendered table cells — to a
// JSONL file under the store directory. The committed results/*.csv
// files are views regenerable from this store; the store itself is the
// durable history that `bpstats` lists, diffs, and exports.
package results

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
)

// Table is the stored form of one rendered experiment table: the name
// the harness writes it under (results/<Name>.csv), its title, and the
// cell grid. Notes are presentation, not data, and are not stored.
type Table struct {
	Name    string     `json:"name"`
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// Stats converts the stored table back to a renderable stats.Table.
func (t Table) Stats() *stats.Table {
	return &stats.Table{Title: t.Title, Columns: t.Columns, Rows: t.Rows}
}

// Record is one experiment's outcome within a run.
type Record struct {
	RunID      string  `json:"run_id"`
	Time       string  `json:"time"` // RFC3339
	Version    string  `json:"version"`
	Experiment string  `json:"experiment"`
	ConfigHash string  `json:"config_hash"`
	Quick      bool    `json:"quick,omitempty"`
	Limit      uint64  `json:"limit"`
	WallMS     float64 `json:"wall_ms"`
	Tables     []Table `json:"tables"`
}

// Store is a JSONL results store rooted at a directory. The zero-cost
// handle never touches the filesystem until Append or Load.
type Store struct {
	dir string
}

// DefaultDir is the conventional store location inside a checkout.
const DefaultDir = "results/runs"

// Open returns a store handle for dir.
func Open(dir string) *Store { return &Store{dir: dir} }

// Path returns the JSONL file the store appends to.
func (s *Store) Path() string { return filepath.Join(s.dir, "runs.jsonl") }

// Append writes the records to the store, creating it if needed. The
// file is opened in append mode so concurrent tools interleave whole
// lines rather than clobbering each other.
func (s *Store) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	f, err := os.OpenFile(s.Path(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w) // Encode terminates each record with '\n'
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			f.Close()
			return fmt.Errorf("results: encode %s: %w", r.Experiment, err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("results: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	return nil
}

// Load reads every record in the store in append order. A store that
// does not exist yet loads as empty, not as an error.
func (s *Store) Load() ([]Record, error) {
	f, err := os.Open(s.Path())
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20) // records hold full table grids
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var r Record
		if err := json.Unmarshal([]byte(raw), &r); err != nil {
			return nil, fmt.Errorf("results: %s:%d: %w", s.Path(), line, err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	return recs, nil
}

// Run groups the records sharing one run ID.
type Run struct {
	ID      string
	Time    string
	Version string
	Records []Record
}

// Tables returns every table in the run, in record order, keyed by name.
func (r Run) Tables() []Table {
	var out []Table
	for _, rec := range r.Records {
		out = append(out, rec.Tables...)
	}
	return out
}

// Experiments returns the sorted experiment IDs present in the run.
func (r Run) Experiments() []string {
	var ids []string
	for _, rec := range r.Records {
		ids = append(ids, rec.Experiment)
	}
	sort.Strings(ids)
	return ids
}

// GroupRuns partitions records into runs, ordered by first appearance
// in the store (append order == chronological order).
func GroupRuns(recs []Record) []Run {
	idx := make(map[string]int)
	var runs []Run
	for _, r := range recs {
		i, ok := idx[r.RunID]
		if !ok {
			i = len(runs)
			idx[r.RunID] = i
			runs = append(runs, Run{ID: r.RunID, Time: r.Time, Version: r.Version})
		}
		runs[i].Records = append(runs[i].Records, r)
	}
	return runs
}

// FindRun resolves key to a run: "latest" means the most recently
// started run, anything else must match a run ID exactly.
func FindRun(runs []Run, key string) (Run, error) {
	if len(runs) == 0 {
		return Run{}, fmt.Errorf("results: store has no runs")
	}
	if key == "latest" || key == "" {
		return runs[len(runs)-1], nil
	}
	for _, r := range runs {
		if r.ID == key {
			return r, nil
		}
	}
	ids := make([]string, len(runs))
	for i, r := range runs {
		ids[i] = r.ID
	}
	return Run{}, fmt.Errorf("results: no run %q (have: %s)", key, strings.Join(ids, ", "))
}

// NewRunID returns a fresh run identifier: a UTC timestamp for humans
// plus a random suffix so simultaneous runs never collide.
func NewRunID(now time.Time) string {
	var b [3]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("results: rand: %v", err))
	}
	return now.UTC().Format("20060102-150405") + "-" + hex.EncodeToString(b[:])
}
