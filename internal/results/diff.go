package results

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CellDelta records one differing cell between two versions of a table.
type CellDelta struct {
	Table   string
	RowKey  string // first cell of the row, the human-facing row label
	ColName string
	A, B    string
	Delta   float64 // relative numeric delta; +Inf when not comparable as numbers
	Numeric bool
}

func (d CellDelta) String() string {
	if d.Numeric {
		return fmt.Sprintf("%s[%s, %s]: %s -> %s (%+.2f%%)", d.Table, d.RowKey, d.ColName, d.A, d.B, 100*d.Delta)
	}
	return fmt.Sprintf("%s[%s, %s]: %q -> %q (non-numeric change)", d.Table, d.RowKey, d.ColName, d.A, d.B)
}

// DiffReport is the outcome of comparing two sets of tables cell by
// cell. Only differing cells appear in Deltas; Compared counts every
// cell examined, so an all-equal diff is Compared>0 with no deltas.
type DiffReport struct {
	Deltas   []CellDelta
	Compared int
	OnlyA    []string // table names present only on the A side
	OnlyB    []string // table names present only on the B side
	Shape    []string // tables whose row/column shape differs
}

// MaxDelta returns the largest relative delta in the report, +Inf when
// any cell changed non-numerically or any table is missing/misshapen.
func (r DiffReport) MaxDelta() float64 {
	max := 0.0
	if len(r.OnlyA) > 0 || len(r.OnlyB) > 0 || len(r.Shape) > 0 {
		return math.Inf(1)
	}
	for _, d := range r.Deltas {
		if d.Delta > max {
			max = d.Delta
		}
	}
	return max
}

// Exceeds reports whether the diff crosses threshold: any missing or
// misshapen table, any non-numeric change, or any relative numeric
// delta strictly above threshold. Exceeds(0) is therefore true for any
// difference at all — the regression-gate setting.
func (r DiffReport) Exceeds(threshold float64) bool {
	if len(r.OnlyA) > 0 || len(r.OnlyB) > 0 || len(r.Shape) > 0 {
		return true
	}
	for _, d := range r.Deltas {
		if !d.Numeric || d.Delta > threshold {
			return true
		}
	}
	return false
}

// Diff compares two table sets by table name. Tables present on only
// one side are reported, not treated as empty.
func Diff(a, b []Table) DiffReport {
	var rep DiffReport
	am := tableMap(a)
	bm := tableMap(b)
	var names []string
	for n := range am {
		if _, ok := bm[n]; ok {
			names = append(names, n)
		} else {
			rep.OnlyA = append(rep.OnlyA, n)
		}
	}
	for n := range bm {
		if _, ok := am[n]; !ok {
			rep.OnlyB = append(rep.OnlyB, n)
		}
	}
	sort.Strings(names)
	sort.Strings(rep.OnlyA)
	sort.Strings(rep.OnlyB)
	for _, n := range names {
		diffTable(&rep, am[n], bm[n])
	}
	return rep
}

func tableMap(ts []Table) map[string]Table {
	m := make(map[string]Table, len(ts))
	for _, t := range ts {
		m[t.Name] = t
	}
	return m
}

func diffTable(rep *DiffReport, a, b Table) {
	if len(a.Rows) != len(b.Rows) || len(a.Columns) != len(b.Columns) {
		rep.Shape = append(rep.Shape, fmt.Sprintf("%s: %dx%d vs %dx%d rows x cols",
			a.Name, len(a.Rows), len(a.Columns), len(b.Rows), len(b.Columns)))
		return
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		for j := range ra {
			if j >= len(rb) {
				break
			}
			rep.Compared++
			if ra[j] == rb[j] {
				continue
			}
			d := CellDelta{Table: a.Name, RowKey: rowKey(ra, i), A: ra[j], B: rb[j]}
			if j < len(a.Columns) {
				d.ColName = a.Columns[j]
			}
			fa, oka := parseNumeric(ra[j])
			fb, okb := parseNumeric(rb[j])
			if oka && okb {
				d.Numeric = true
				d.Delta = relDelta(fa, fb)
			} else {
				d.Delta = math.Inf(1)
			}
			rep.Deltas = append(rep.Deltas, d)
		}
	}
}

func rowKey(row []string, i int) string {
	if len(row) > 0 && row[0] != "" {
		return row[0]
	}
	return fmt.Sprintf("row %d", i)
}

func relDelta(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Abs(a)
	if den < 1e-12 {
		den = 1e-12
	}
	return math.Abs(b-a) / den
}

// parseNumeric interprets the cell formats the stats package emits:
// plain numbers ("1234", "1.23"), percentages ("12.3%"), and ratios
// ("1.23x"). Anything else — including composite cells like
// "12 -> 34" — is non-numeric and compared as a string.
func parseNumeric(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	switch {
	case strings.HasSuffix(s, "%"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		return v / 100, err == nil
	case strings.HasSuffix(s, "x"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
		return v, err == nil
	default:
		v, err := strconv.ParseFloat(s, 64)
		return v, err == nil
	}
}
