package results

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func sampleTable(name string) Table {
	return Table{
		Name:    name,
		Title:   "sample",
		Columns: []string{"workload", "rate", "speedup", "misses"},
		Rows: [][]string{
			{"corr", "12.3%", "1.10x", "123"},
			{"fsm", "4.5%", "0.98x", "45"},
			{"geomean", "7.4%", "1.04x", ""},
		},
	}
}

func sampleRecord(runID, exp string) Record {
	return Record{
		RunID:      runID,
		Time:       "2026-08-08T00:00:00Z",
		Version:    "test",
		Experiment: exp,
		ConfigHash: "deadbeefdeadbeef",
		Limit:      200000,
		WallMS:     12.5,
		Tables:     []Table{sampleTable(exp)},
	}
}

func TestStoreAppendLoad(t *testing.T) {
	s := Open(filepath.Join(t.TempDir(), "runs"))

	recs, err := s.Load()
	if err != nil {
		t.Fatalf("Load on missing store: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("missing store loaded %d records", len(recs))
	}

	if err := s.Append(sampleRecord("r1", "E5")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(sampleRecord("r1", "E8"), sampleRecord("r2", "E5")); err != nil {
		t.Fatal(err)
	}
	recs, err = s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Experiment != "E5" || recs[0].RunID != "r1" {
		t.Fatalf("record order not preserved: %+v", recs[0])
	}
	if got := recs[0].Tables[0]; got.Rows[0][1] != "12.3%" {
		t.Fatalf("table cells did not round-trip: %+v", got)
	}

	runs := GroupRuns(recs)
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	if runs[0].ID != "r1" || len(runs[0].Records) != 2 {
		t.Fatalf("run grouping wrong: %+v", runs[0])
	}

	latest, err := FindRun(runs, "latest")
	if err != nil || latest.ID != "r2" {
		t.Fatalf("FindRun(latest) = %v, %v; want r2", latest.ID, err)
	}
	byID, err := FindRun(runs, "r1")
	if err != nil || byID.ID != "r1" {
		t.Fatalf("FindRun(r1) = %v, %v", byID.ID, err)
	}
	if _, err := FindRun(runs, "nope"); err == nil {
		t.Fatal("FindRun with unknown ID should error")
	}
	if _, err := FindRun(nil, "latest"); err == nil {
		t.Fatal("FindRun on empty store should error")
	}

	if got := runs[0].Experiments(); len(got) != 2 || got[0] != "E5" || got[1] != "E8" {
		t.Fatalf("Experiments() = %v", got)
	}
}

func TestNewRunIDUnique(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	a, b := NewRunID(now), NewRunID(now)
	if a == b {
		t.Fatalf("two IDs from the same instant collided: %s", a)
	}
	const wantPrefix = "20260808-120000-"
	if a[:len(wantPrefix)] != wantPrefix {
		t.Fatalf("ID %q missing timestamp prefix %q", a, wantPrefix)
	}
}

func TestDiffIdenticalIsZero(t *testing.T) {
	a := []Table{sampleTable("E5"), sampleTable("E8")}
	b := []Table{sampleTable("E8"), sampleTable("E5")} // order must not matter
	rep := Diff(a, b)
	if len(rep.Deltas) != 0 || rep.MaxDelta() != 0 {
		t.Fatalf("identical tables produced deltas: %+v", rep.Deltas)
	}
	if rep.Compared == 0 {
		t.Fatal("identical diff compared no cells")
	}
	if rep.Exceeds(0) {
		t.Fatal("identical diff must pass a zero threshold")
	}
}

func TestDiffDetectsSeededRegression(t *testing.T) {
	a := sampleTable("E5")
	b := sampleTable("E5")
	b.Rows = [][]string{
		{"corr", "13.5%", "1.10x", "123"}, // seeded regression: 12.3% -> 13.5%
		{"fsm", "4.5%", "0.98x", "45"},
		{"geomean", "7.4%", "1.04x", ""},
	}
	rep := Diff([]Table{a}, []Table{b})
	if len(rep.Deltas) != 1 {
		t.Fatalf("got %d deltas, want 1: %+v", len(rep.Deltas), rep.Deltas)
	}
	d := rep.Deltas[0]
	if !d.Numeric || d.RowKey != "corr" || d.ColName != "rate" {
		t.Fatalf("delta misattributed: %+v", d)
	}
	want := (0.135 - 0.123) / 0.123
	if math.Abs(d.Delta-want) > 1e-9 {
		t.Fatalf("delta = %v, want %v", d.Delta, want)
	}
	if !rep.Exceeds(0) || !rep.Exceeds(0.05) {
		t.Fatal("a ~10% regression must exceed 0 and 5% thresholds")
	}
	if rep.Exceeds(0.20) {
		t.Fatal("a ~10% regression must pass a 20% threshold")
	}
}

func TestDiffNonNumericAndShape(t *testing.T) {
	a := sampleTable("E1")
	b := sampleTable("E1")
	b.Rows[0][0] = "corr2" // non-numeric change
	rep := Diff([]Table{a}, []Table{b})
	if len(rep.Deltas) != 1 || rep.Deltas[0].Numeric {
		t.Fatalf("non-numeric change not flagged: %+v", rep.Deltas)
	}
	if !rep.Exceeds(math.MaxFloat64) {
		t.Fatal("non-numeric change must exceed any threshold")
	}

	short := sampleTable("E1")
	short.Rows = short.Rows[:1]
	rep = Diff([]Table{a}, []Table{short})
	if len(rep.Shape) != 1 || !rep.Exceeds(math.MaxFloat64) {
		t.Fatalf("shape mismatch not flagged: %+v", rep)
	}

	rep = Diff([]Table{a}, nil)
	if len(rep.OnlyA) != 1 || !rep.Exceeds(math.MaxFloat64) {
		t.Fatalf("missing table not flagged: %+v", rep)
	}
	if !math.IsInf(rep.MaxDelta(), 1) {
		t.Fatal("missing table must report infinite max delta")
	}
}

func TestParseNumeric(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"12.3%", 0.123, true},
		{"1.23x", 1.23, true},
		{"1234", 1234, true},
		{"0.98", 0.98, true},
		{"-", 0, false},
		{"", 0, false},
		{"12 -> 34", 0, false},
		{"corr", 0, false},
	}
	for _, c := range cases {
		got, ok := parseNumeric(c.in)
		if ok != c.ok || (ok && math.Abs(got-c.want) > 1e-12) {
			t.Errorf("parseNumeric(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestReadCSVTable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "E5.csv")
	csv := "workload,rate,note\ncorr,12.3%,\"has, comma\"\nfsm,4.5%,plain\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	tab, err := ReadCSVTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name != "E5" {
		t.Fatalf("name = %q, want E5", tab.Name)
	}
	if len(tab.Columns) != 3 || len(tab.Rows) != 2 {
		t.Fatalf("shape = %dx%d", len(tab.Rows), len(tab.Columns))
	}
	if tab.Rows[0][2] != "has, comma" {
		t.Fatalf("quoted cell = %q", tab.Rows[0][2])
	}

	tabs, err := ReadCSVDir(dir)
	if err != nil || len(tabs) != 1 {
		t.Fatalf("ReadCSVDir = %v, %v", tabs, err)
	}

	if _, err := ReadCSVTable(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file should error")
	}
}
