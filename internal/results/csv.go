package results

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ReadCSVTable loads one committed results/<name>.csv view as a Table.
// The first record is the header; the table name is the file basename
// without extension (the same name Record.Tables uses).
func ReadCSVTable(path string) (Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return Table{}, fmt.Errorf("results: %w", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1 // shape is checked by Diff, not the reader
	recs, err := r.ReadAll()
	if err != nil {
		return Table{}, fmt.Errorf("results: %s: %w", path, err)
	}
	if len(recs) == 0 {
		return Table{}, fmt.Errorf("results: %s: empty CSV", path)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return Table{Name: name, Columns: recs[0], Rows: recs[1:]}, nil
}

// ReadCSVDir loads every *.csv directly under dir as a Table, sorted by
// name — the committed-views side of a run-vs-checkout diff.
func ReadCSVDir(dir string) ([]Table, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	sort.Strings(paths)
	var out []Table
	for _, p := range paths {
		t, err := ReadCSVTable(p)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
