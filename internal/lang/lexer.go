// Package lang implements PCL, a small C-like language compiled to P64.
// It completes the toolchain the paper's methodology assumes: benchmark
// source is written in a structured language, compiled to branching
// predicate-ISA code, if-converted by internal/ifconv, and simulated.
//
//	var n = 10;
//	var a = 0; var b = 1;
//	while (n > 0) {
//	    var t = a + b;
//	    a = b; b = t;
//	    if (a % 2 == 0) { out a; }
//	    n = n - 1;
//	}
//	halt;
//
// The language has int64 variables, fixed-size arrays, full C expression
// precedence (with eager, value-producing && and ||), if/else, while,
// do-while, for, break/continue, out, and halt. See GRAMMAR in parser.go.
package lang

import "fmt"

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokKeyword // var arr if else while do for break continue out halt
	tokPunct   // operators and delimiters
)

type token struct {
	kind tokenKind
	text string
	line int
}

// Error is a compile error with a source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("lang: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

var keywords = map[string]bool{
	"var": true, "arr": true, "if": true, "else": true, "while": true,
	"do": true, "for": true, "break": true, "continue": true,
	"out": true, "halt": true,
}

// multi-character operators, longest first.
var multiOps = []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' ||
				src[j] == 'x' || src[j] >= 'a' && src[j] <= 'f' ||
				src[j] >= 'A' && src[j] <= 'F') {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], line})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			text := src[i:j]
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind, text, line})
			i = j
		default:
			matched := false
			for _, op := range multiOps {
				if len(src)-i >= len(op) && src[i:i+len(op)] == op {
					toks = append(toks, token{tokPunct, op, line})
					i += len(op)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if isSingleOp(c) {
				toks = append(toks, token{tokPunct, string(c), line})
				i++
				continue
			}
			return nil, errf(line, "unexpected character %q", c)
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func isSingleOp(c byte) bool {
	switch c {
	case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>',
		'=', '(', ')', '{', '}', '[', ']', ';', ',':
		return true
	}
	return false
}
