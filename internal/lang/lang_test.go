package lang

import (
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/ifconv"
	"repro/internal/testutil"
)

// compileRun compiles and runs a program, returning its output stream.
func compileRun(t *testing.T, src string) []int64 {
	t.Helper()
	p, err := Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := emu.RunProgram(p, 5_000_000)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, p)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit %d", res.ExitCode)
	}
	return res.Output
}

func wantOutput(t *testing.T, src string, want ...int64) {
	t.Helper()
	got := compileRun(t, src)
	if len(got) != len(want) {
		t.Fatalf("output %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %d, want %v (full: %v)", i, got[i], want, got)
		}
	}
}

func TestArithmetic(t *testing.T) {
	wantOutput(t, `
var x = 2 + 3 * 4;       // precedence
out x;                   // 14
out (2 + 3) * 4;         // 20
out 10 - 2 - 3;          // left assoc: 5
out 7 / 2; out 7 % 2;    // 3, 1
out -5 + 1;              // -4
out ~0;                  // -1
out 1 << 4; out -16 >> 2;
`, 14, 20, 5, 3, 1, -4, -1, 16, -4)
}

func TestComparisonsAndLogic(t *testing.T) {
	wantOutput(t, `
out 3 < 5; out 5 < 3; out 3 <= 3;
out 4 == 4; out 4 != 4; out 2 > 1; out 1 >= 2;
out (3 < 5) && (2 == 2);
out 0 || 7;            // non-zero normalises to 1
out !0; out !9;
out 5 & 3; out 5 | 2; out 5 ^ 1;
`, 1, 0, 1, 1, 0, 1, 0, 1, 1, 1, 0, 1, 7, 4)
}

func TestVariablesAndScoping(t *testing.T) {
	wantOutput(t, `
var x = 1;
if (1) {
    var x = 2;         // shadows
    out x;
}
out x;
var y;                 // zero-initialised
out y;
`, 2, 1, 0)
}

func TestIfElseChain(t *testing.T) {
	src := `
var v = %d;
if (v < 10) { out 1; }
else if (v < 20) { out 2; }
else { out 3; }
`
	cases := map[string]int64{"5": 1, "15": 2, "25": 3}
	for sub, want := range cases {
		wantOutput(t, strings.Replace(src, "%d", sub, 1), want)
	}
}

func TestWhileAndBreakContinue(t *testing.T) {
	wantOutput(t, `
var i = 0; var sum = 0;
while (1) {
    i = i + 1;
    if (i > 10) { break; }
    if (i % 2 == 1) { continue; }
    sum = sum + i;     // 2+4+6+8+10
}
out sum;
`, 30)
}

func TestDoWhile(t *testing.T) {
	wantOutput(t, `
var n = 0; var count = 0;
do { count = count + 1; } while (n != 0);
out count;             // body runs once
var i = 3;
do { i = i - 1; } while (i > 0);
out i;
`, 1, 0)
}

func TestForLoop(t *testing.T) {
	wantOutput(t, `
var sum = 0;
for (var i = 1; i <= 5; i = i + 1) { sum = sum + i; }
out sum;
for (;0;) { out 99; }  // never runs
var j = 0;
for (;;) { j = j + 1; if (j == 3) { break; } }
out j;
`, 15, 3)
}

func TestArrays(t *testing.T) {
	wantOutput(t, `
arr a[10];
for (var i = 0; i < 10; i = i + 1) { a[i] = i * i; }
var sum = 0;
for (var i = 0; i < 10; i = i + 1) { sum = sum + a[i]; }
out sum;               // 285
out a[3 + 4];          // computed index: 49
`, 285, 49)
}

func TestSpilledVariables(t *testing.T) {
	// Declare more scalars than the register pool holds; the extras spill
	// to memory and must behave identically.
	var sb strings.Builder
	sb.WriteString("var acc = 0;\n")
	for i := 0; i < 30; i++ {
		sb.WriteString("var v")
		sb.WriteByte(byte('a' + i%26))
		if i >= 26 {
			sb.WriteByte('2')
		}
		sb.WriteString(" = ")
		sb.WriteString(strings.Repeat("1+", i))
		sb.WriteString("1;\n")
	}
	for i := 0; i < 30; i++ {
		sb.WriteString("acc = acc + v")
		sb.WriteByte(byte('a' + i%26))
		if i >= 26 {
			sb.WriteByte('2')
		}
		sb.WriteString(";\n")
	}
	sb.WriteString("out acc;\n")
	// sum of 1..30 = 465
	wantOutput(t, sb.String(), 465)
}

func TestFibProgram(t *testing.T) {
	wantOutput(t, `
var a = 0; var b = 1;
for (var i = 0; i < 10; i = i + 1) {
    out a;
    var t = a + b;
    a = b; b = t;
}
`, 0, 1, 1, 2, 3, 5, 8, 13, 21, 34)
}

func TestHaltCode(t *testing.T) {
	p, err := Compile("t", "halt 3;")
	if err != nil {
		t.Fatal(err)
	}
	res, err := emu.RunProgram(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 3 {
		t.Errorf("exit %d", res.ExitCode)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		"out x;",                            // undeclared
		"x = 1;",                            // undeclared assign
		"a[0] = 1;",                         // undeclared array
		"var x = 1; var x = 2;",             // redeclared
		"arr a[4]; arr a[4];",               // array redeclared
		"arr a[0];",                         // bad size
		"var a = 1; arr a[4];",              // name collision
		"break;",                            // outside loop
		"continue;",                         // outside loop
		"var = 3;",                          // missing name
		"if (1) out 1;",                     // missing block
		"while (1) { ",                      // unclosed
		"out 1 +;",                          // bad expression
		"out 9999999999999999999999999999;", // overflow
		"halt x;",                           // non-literal exit code
		"@",                                 // lex error
		"var x = (1;",                       // unbalanced paren
	}
	for _, src := range cases {
		if _, err := Compile("t", src); err == nil {
			t.Errorf("accepted %q", src)
		} else if _, ok := err.(*Error); !ok {
			t.Errorf("%q: error is %T, want *lang.Error", src, err)
		}
	}
}

func TestErrorHasLine(t *testing.T) {
	_, err := Compile("t", "var a = 1;\nvar b = 2;\nout nope;\n")
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error lacks line: %v", err)
	}
}

func TestCompiledProgramsConvertEquivalently(t *testing.T) {
	// PCL programs flow through the same if-conversion correctness oracle
	// as everything else.
	srcs := []string{
		`var s = 0;
for (var i = 0; i < 50; i = i + 1) {
    if (i % 3 == 0) { s = s + i; } else { s = s - 1; }
    if (i == 37) { break; }
}
out s;`,
		`arr h[8];
for (var i = 0; i < 200; i = i + 1) {
    var v = (i * 37 + 11) % 97;
    if (v < 50) { h[v % 8] = h[v % 8] + 1; }
    else { if (v % 2 == 0) { h[0] = h[0] + 2; } }
}
for (var k = 0; k < 8; k = k + 1) { out h[k]; }`,
	}
	for i, src := range srcs {
		p, err := Compile("pcl", src)
		if err != nil {
			t.Fatalf("src %d: %v", i, err)
		}
		cp, _, err := ifconv.Convert(p, ifconv.Config{})
		if err != nil {
			t.Fatalf("src %d: %v", i, err)
		}
		if err := testutil.CheckEquivalent(p, cp, 3_000_000); err != nil {
			t.Fatalf("src %d: %v", i, err)
		}
	}
}

func TestDeepExpressionRejected(t *testing.T) {
	src := "out " + strings.Repeat("1+(", 40) + "1" + strings.Repeat(")", 40) + ";"
	if _, err := Compile("t", src); err == nil {
		t.Fatal("over-deep expression accepted")
	}
}

func TestComments(t *testing.T) {
	wantOutput(t, `
// leading comment
var x = 5; // trailing
out x;
`, 5)
}
