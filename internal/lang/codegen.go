package lang

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Register and memory conventions of generated code:
//
//	r8..r27    the first 20 scalar variables
//	r28..r62   expression-evaluation scratch stack
//	p1, p2     compare materialisation
//	20000+     array storage (one base per array)
//	30000+     spill slots for scalar variables beyond 20
//
// Array accesses are not bounds-checked (as in the C the paper's
// benchmarks were written in).
const (
	firstVarReg  = 8
	lastVarReg   = 27
	firstScratch = 28
	lastScratch  = 62
	arrayBase    = 20000
	spillBase    = 30000
	cmpTrue      = isa.PReg(1)
	cmpFalse     = isa.PReg(2)
)

// Compile translates PCL source into a P64 program.
func Compile(name, src string) (*prog.Program, error) {
	ast, err := parse(src)
	if err != nil {
		return nil, err
	}
	g := &codegen{
		b:         prog.NewBuilder(name),
		scopes:    []map[string]location{{}},
		arrays:    map[string]int64{},
		nextArray: arrayBase,
		nextSpill: spillBase,
	}
	if err := g.stmts(ast.stmts); err != nil {
		return nil, err
	}
	g.b.Halt(0) // implicit normal exit
	return g.b.Program()
}

// location is where a scalar variable lives.
type location struct {
	reg       isa.Reg // valid when spilled is false
	slot      int64   // memory address when spilled
	isSpilled bool
}

type loop struct {
	continueLabel string
	breakLabel    string
}

type codegen struct {
	b      *prog.Builder
	scopes []map[string]location
	arrays map[string]int64 // name -> base address

	nextVarReg int // count of register-allocated scalars
	nextSpill  int64
	nextArray  int64
	scratch    int // scratch stack depth
	loops      []loop
	labels     int
}

func (g *codegen) label(prefix string) string {
	g.labels++
	return fmt.Sprintf(".%s%d", prefix, g.labels)
}

// --- scopes ---------------------------------------------------------------

func (g *codegen) pushScope() { g.scopes = append(g.scopes, map[string]location{}) }

func (g *codegen) popScope() { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *codegen) lookup(name string) (location, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if loc, ok := g.scopes[i][name]; ok {
			return loc, true
		}
	}
	return location{}, false
}

func (g *codegen) declare(line int, name string) (location, error) {
	scope := g.scopes[len(g.scopes)-1]
	if _, dup := scope[name]; dup {
		return location{}, errf(line, "variable %q redeclared in the same scope", name)
	}
	if _, isArr := g.arrays[name]; isArr {
		return location{}, errf(line, "%q is already an array", name)
	}
	var loc location
	if firstVarReg+g.nextVarReg <= lastVarReg {
		loc = location{reg: isa.Reg(firstVarReg + g.nextVarReg)}
		g.nextVarReg++
	} else {
		loc = location{isSpilled: true, slot: g.nextSpill}
		g.nextSpill++
	}
	scope[name] = loc
	return loc, nil
}

// --- scratch stack ---------------------------------------------------------

func (g *codegen) pushScratch(line int) (isa.Reg, error) {
	r := firstScratch + g.scratch
	if r > lastScratch {
		return 0, errf(line, "expression too deep (more than %d live temporaries)", lastScratch-firstScratch+1)
	}
	g.scratch++
	return isa.Reg(r), nil
}

func (g *codegen) popScratch(n int) { g.scratch -= n }

// --- statements ------------------------------------------------------------

func (g *codegen) stmts(list []stmt) error {
	for _, s := range list {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) stmt(s stmt) error {
	switch s := s.(type) {
	case *varDecl:
		loc, err := g.declare(s.line, s.name)
		if err != nil {
			return err
		}
		if s.init == nil {
			return g.storeVar(loc, isa.R0)
		}
		r, err := g.expr(s.init)
		if err != nil {
			return err
		}
		defer g.popScratch(1)
		return g.storeVar(loc, r)
	case *arrDecl:
		if _, dup := g.arrays[s.name]; dup {
			return errf(s.line, "array %q redeclared", s.name)
		}
		if _, isVar := g.lookup(s.name); isVar {
			return errf(s.line, "%q is already a variable", s.name)
		}
		g.arrays[s.name] = g.nextArray
		g.nextArray += s.size
		return nil
	case *assign:
		loc, ok := g.lookup(s.name)
		if !ok {
			return errf(s.line, "undeclared variable %q", s.name)
		}
		r, err := g.expr(s.value)
		if err != nil {
			return err
		}
		defer g.popScratch(1)
		return g.storeVar(loc, r)
	case *arrAssign:
		base, ok := g.arrays[s.name]
		if !ok {
			return errf(s.line, "undeclared array %q", s.name)
		}
		idx, err := g.expr(s.index)
		if err != nil {
			return err
		}
		val, err := g.expr(s.value)
		if err != nil {
			return err
		}
		g.b.St(idx, base, val)
		g.popScratch(2)
		return nil
	case *ifStmt:
		return g.genIf(s)
	case *whileStmt:
		return g.genWhile(s)
	case *doWhileStmt:
		return g.genDoWhile(s)
	case *forStmt:
		return g.genFor(s)
	case *breakStmt:
		if len(g.loops) == 0 {
			return errf(s.line, "break outside a loop")
		}
		g.b.Br(g.loops[len(g.loops)-1].breakLabel)
		return nil
	case *continueStmt:
		if len(g.loops) == 0 {
			return errf(s.line, "continue outside a loop")
		}
		g.b.Br(g.loops[len(g.loops)-1].continueLabel)
		return nil
	case *outStmt:
		r, err := g.expr(s.value)
		if err != nil {
			return err
		}
		g.b.Out(r)
		g.popScratch(1)
		return nil
	case *haltStmt:
		if s.code == nil {
			g.b.Halt(0)
			return nil
		}
		if lit, ok := s.code.(*numLit); ok {
			g.b.Halt(lit.value)
			return nil
		}
		return errf(s.line, "halt takes a literal exit code")
	}
	return errf(s.nodeLine(), "unsupported statement %T", s)
}

func (g *codegen) storeVar(loc location, from isa.Reg) error {
	if loc.isSpilled {
		g.b.St(isa.R0, loc.slot, from)
		return nil
	}
	g.b.Mov(loc.reg, from)
	return nil
}

// condBranch evaluates cond and branches to target when the condition's
// truth matches whenTrue. A top-level comparison fuses directly into the
// compare-and-branch pair (no 0/1 materialisation) — the shape the
// if-converter consumes.
func (g *codegen) condBranch(cond expr, whenTrue bool, target string) error {
	if bin, ok := cond.(*binary); ok {
		if cc, isCmp := cmpOps[bin.op]; isCmp {
			l, err := g.expr(bin.l)
			if err != nil {
				return err
			}
			r, err := g.expr(bin.r)
			if err != nil {
				return err
			}
			g.b.Cmp(cc, cmpTrue, cmpFalse, l, r)
			g.popScratch(2)
			if whenTrue {
				g.b.BrIf(cmpTrue, target)
			} else {
				g.b.BrIf(cmpFalse, target)
			}
			return nil
		}
	}
	r, err := g.expr(cond)
	if err != nil {
		return err
	}
	g.b.Cmpi(isa.CmpNE, cmpTrue, cmpFalse, r, 0)
	g.popScratch(1)
	if whenTrue {
		g.b.BrIf(cmpTrue, target)
	} else {
		g.b.BrIf(cmpFalse, target)
	}
	return nil
}

// branchIfFalse evaluates cond and branches to target when it is zero.
func (g *codegen) branchIfFalse(cond expr, target string) error {
	return g.condBranch(cond, false, target)
}

func (g *codegen) genIf(s *ifStmt) error {
	elseL := g.label("else")
	endL := g.label("endif")
	if err := g.branchIfFalse(s.cond, elseL); err != nil {
		return err
	}
	g.pushScope()
	err := g.stmts(s.then)
	g.popScope()
	if err != nil {
		return err
	}
	if len(s.els) > 0 {
		g.b.Br(endL)
	}
	g.b.Label(elseL)
	if len(s.els) > 0 {
		g.pushScope()
		err := g.stmts(s.els)
		g.popScope()
		if err != nil {
			return err
		}
		g.b.Label(endL)
	}
	return nil
}

func (g *codegen) genWhile(s *whileStmt) error {
	head := g.label("while")
	end := g.label("wend")
	g.b.Label(head)
	if err := g.branchIfFalse(s.cond, end); err != nil {
		return err
	}
	g.loops = append(g.loops, loop{continueLabel: head, breakLabel: end})
	g.pushScope()
	err := g.stmts(s.body)
	g.popScope()
	g.loops = g.loops[:len(g.loops)-1]
	if err != nil {
		return err
	}
	g.b.Br(head)
	g.b.Label(end)
	return nil
}

func (g *codegen) genDoWhile(s *doWhileStmt) error {
	head := g.label("do")
	cont := g.label("docond")
	end := g.label("dend")
	g.b.Label(head)
	g.loops = append(g.loops, loop{continueLabel: cont, breakLabel: end})
	g.pushScope()
	err := g.stmts(s.body)
	g.popScope()
	g.loops = g.loops[:len(g.loops)-1]
	if err != nil {
		return err
	}
	g.b.Label(cont)
	if err := g.condBranch(s.cond, true, head); err != nil {
		return err
	}
	g.b.Label(end)
	return nil
}

func (g *codegen) genFor(s *forStmt) error {
	g.pushScope() // the init declaration scopes to the loop
	defer g.popScope()
	if s.init != nil {
		if err := g.stmt(s.init); err != nil {
			return err
		}
	}
	head := g.label("for")
	cont := g.label("fpost")
	end := g.label("fend")
	g.b.Label(head)
	if s.cond != nil {
		if err := g.branchIfFalse(s.cond, end); err != nil {
			return err
		}
	}
	g.loops = append(g.loops, loop{continueLabel: cont, breakLabel: end})
	g.pushScope()
	err := g.stmts(s.body)
	g.popScope()
	g.loops = g.loops[:len(g.loops)-1]
	if err != nil {
		return err
	}
	g.b.Label(cont)
	if s.post != nil {
		if err := g.stmt(s.post); err != nil {
			return err
		}
	}
	g.b.Br(head)
	g.b.Label(end)
	return nil
}

// --- expressions -----------------------------------------------------------

// expr generates code computing e into a freshly pushed scratch register.
func (g *codegen) expr(e expr) (isa.Reg, error) {
	switch e := e.(type) {
	case *numLit:
		r, err := g.pushScratch(e.line)
		if err != nil {
			return 0, err
		}
		g.b.Movi(r, e.value)
		return r, nil
	case *varRef:
		loc, ok := g.lookup(e.name)
		if !ok {
			return 0, errf(e.line, "undeclared variable %q", e.name)
		}
		r, err := g.pushScratch(e.line)
		if err != nil {
			return 0, err
		}
		if loc.isSpilled {
			g.b.Ld(r, isa.R0, loc.slot)
		} else {
			g.b.Mov(r, loc.reg)
		}
		return r, nil
	case *arrRef:
		base, ok := g.arrays[e.name]
		if !ok {
			return 0, errf(e.line, "undeclared array %q", e.name)
		}
		idx, err := g.expr(e.index)
		if err != nil {
			return 0, err
		}
		g.b.Ld(idx, idx, base) // reuse the index scratch for the value
		return idx, nil
	case *unary:
		x, err := g.expr(e.x)
		if err != nil {
			return 0, err
		}
		switch e.op {
		case "-":
			g.b.Sub(x, isa.R0, x)
		case "~":
			g.b.Xori(x, x, -1)
		case "!":
			g.materialize(isa.CmpEQ, x, x, isa.R0, 0, true)
		}
		return x, nil
	case *binary:
		return g.genBinary(e)
	}
	return 0, errf(e.nodeLine(), "unsupported expression %T", e)
}

// materialize writes (a CC b) as 0/1 into dst. When immOK is true and b is
// unused, imm is compared instead.
func (g *codegen) materialize(cc isa.CmpCond, dst, a, b isa.Reg, imm int64, useImm bool) {
	if useImm {
		g.b.Cmpi(cc, cmpTrue, cmpFalse, a, imm)
	} else {
		g.b.Cmp(cc, cmpTrue, cmpFalse, a, b)
	}
	g.b.Movi(dst, 0)
	g.b.Movi(dst, 1).QP = cmpTrue
}

var cmpOps = map[string]isa.CmpCond{
	"==": isa.CmpEQ, "!=": isa.CmpNE,
	"<": isa.CmpLT, "<=": isa.CmpLE, ">": isa.CmpGT, ">=": isa.CmpGE,
}

func (g *codegen) genBinary(e *binary) (isa.Reg, error) {
	l, err := g.expr(e.l)
	if err != nil {
		return 0, err
	}
	r, err := g.expr(e.r)
	if err != nil {
		return 0, err
	}
	defer g.popScratch(1) // the result reuses l's slot; r's is released
	switch e.op {
	case "+":
		g.b.Add(l, l, r)
	case "-":
		g.b.Sub(l, l, r)
	case "*":
		g.b.Mul(l, l, r)
	case "/":
		g.b.Div(l, l, r)
	case "%":
		g.b.Mod(l, l, r)
	case "&":
		g.b.And(l, l, r)
	case "|":
		g.b.Or(l, l, r)
	case "^":
		g.b.Xor(l, l, r)
	case "<<":
		g.b.Emit(isa.Inst{Op: isa.OpShl, Dst: l, Src1: l, Src2: r})
	case ">>":
		g.b.Emit(isa.Inst{Op: isa.OpSar, Dst: l, Src1: l, Src2: r})
	case "&&", "||":
		// Eager logical: normalise both sides to 0/1, then AND/OR.
		g.materialize(isa.CmpNE, l, l, isa.R0, 0, true)
		g.materialize(isa.CmpNE, r, r, isa.R0, 0, true)
		if e.op == "&&" {
			g.b.And(l, l, r)
		} else {
			g.b.Or(l, l, r)
		}
	default:
		if cc, ok := cmpOps[e.op]; ok {
			g.materialize(cc, l, l, r, 0, false)
		} else {
			return 0, errf(e.line, "unsupported operator %q", e.op)
		}
	}
	return l, nil
}
