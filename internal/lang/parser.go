package lang

import "strconv"

// GRAMMAR (recursive descent, C-like precedence):
//
//	program   := stmt*
//	stmt      := "var" ident ("=" expr)? ";"
//	           | "arr" ident "[" number "]" ";"
//	           | ident "=" expr ";"
//	           | ident "[" expr "]" "=" expr ";"
//	           | "if" "(" expr ")" block ("else" (block | ifstmt))?
//	           | "while" "(" expr ")" block
//	           | "do" block "while" "(" expr ")" ";"
//	           | "for" "(" simple? ";" expr? ";" simple? ")" block
//	           | "break" ";" | "continue" ";"
//	           | "out" expr ";"
//	           | "halt" expr? ";"
//	simple    := "var" ident ("=" expr)? | ident "=" expr | ident "[" expr "]" "=" expr
//	block     := "{" stmt* "}"
//
// Expression precedence, loosest first:
//
//	||  &&  |  ^  &  (== !=)  (< <= > >=)  (<< >>)  (+ -)  (* / %)  unary(- ! ~)
//
// Conditions treat any non-zero value as true. && and || are eager and
// value-producing (0 or 1), not short-circuit: the compiler emits
// straight-line logic for them, which is the predication-friendly shape.

type parser struct {
	toks []token
	pos  int
}

func parse(src string) (*program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []stmt
	for !p.at(tokEOF, "") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return &program{stmts: stmts}, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) line() int   { return p.peek().line }

// at reports whether the current token matches kind (and text, when text
// is non-empty).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		got := p.peek().text
		if p.peek().kind == tokEOF {
			got = "end of input"
		}
		want := text
		if want == "" {
			want = map[tokenKind]string{tokIdent: "identifier", tokNumber: "number"}[kind]
		}
		return token{}, errf(p.line(), "expected %q, got %q", want, got)
	}
	return p.next(), nil
}

func (p *parser) stmt() (stmt, error) {
	t := p.peek()
	switch {
	case t.kind == tokKeyword && (t.text == "var" || t.text == "arr"):
		return p.declOrSimple(true)
	case t.kind == tokKeyword && t.text == "if":
		return p.ifStmt()
	case t.kind == tokKeyword && t.text == "while":
		p.next()
		cond, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &whileStmt{pos{t.line}, cond, body}, nil
	case t.kind == tokKeyword && t.text == "do":
		p.next()
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "while"); err != nil {
			return nil, err
		}
		cond, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &doWhileStmt{pos{t.line}, body, cond}, nil
	case t.kind == tokKeyword && t.text == "for":
		return p.forStmt()
	case t.kind == tokKeyword && t.text == "break":
		p.next()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &breakStmt{pos{t.line}}, nil
	case t.kind == tokKeyword && t.text == "continue":
		p.next()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &continueStmt{pos{t.line}}, nil
	case t.kind == tokKeyword && t.text == "out":
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &outStmt{pos{t.line}, e}, nil
	case t.kind == tokKeyword && t.text == "halt":
		p.next()
		var code expr
		if !p.at(tokPunct, ";") {
			var err error
			if code, err = p.expr(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &haltStmt{pos{t.line}, code}, nil
	case t.kind == tokIdent:
		s, err := p.declOrSimple(false)
		if err != nil {
			return nil, err
		}
		return s, nil
	}
	return nil, errf(t.line, "unexpected %q", t.text)
}

// declOrSimple parses a var/arr declaration or an assignment, consuming
// the trailing semicolon when semi is... it always expects the semicolon.
func (p *parser) declOrSimple(allowArr bool) (stmt, error) {
	s, err := p.simple(allowArr)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return s, nil
}

// simple parses a declaration or assignment without the semicolon (used
// by for-clauses).
func (p *parser) simple(allowArr bool) (stmt, error) {
	t := p.peek()
	if t.kind == tokKeyword && t.text == "var" {
		p.next()
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		var init expr
		if p.accept(tokPunct, "=") {
			if init, err = p.expr(); err != nil {
				return nil, err
			}
		}
		return &varDecl{pos{t.line}, name.text, init}, nil
	}
	if allowArr && t.kind == tokKeyword && t.text == "arr" {
		p.next()
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "["); err != nil {
			return nil, err
		}
		num, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		size, err := strconv.ParseInt(num.text, 0, 64)
		if err != nil || size <= 0 {
			return nil, errf(num.line, "bad array size %q", num.text)
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		return &arrDecl{pos{t.line}, name.text, size}, nil
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if p.accept(tokPunct, "[") {
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &arrAssign{pos{name.line}, name.text, idx, val}, nil
	}
	if _, err := p.expect(tokPunct, "="); err != nil {
		return nil, err
	}
	val, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &assign{pos{name.line}, name.text, val}, nil
}

func (p *parser) ifStmt() (stmt, error) {
	t, err := p.expect(tokKeyword, "if")
	if err != nil {
		return nil, err
	}
	cond, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	var els []stmt
	if p.accept(tokKeyword, "else") {
		if p.at(tokKeyword, "if") {
			s, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			els = []stmt{s}
		} else {
			if els, err = p.block(); err != nil {
				return nil, err
			}
		}
	}
	return &ifStmt{pos{t.line}, cond, then, els}, nil
}

func (p *parser) forStmt() (stmt, error) {
	t, err := p.expect(tokKeyword, "for")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var init, post stmt
	var cond expr
	if !p.at(tokPunct, ";") {
		if init, err = p.simple(false); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ";") {
		if cond, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ")") {
		if post, err = p.simple(false); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &forStmt{pos{t.line}, init, cond, post, body}, nil
}

func (p *parser) parenExpr() (expr, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) block() ([]stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []stmt
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, errf(p.line(), "unclosed block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next()
	return stmts, nil
}

// Precedence climbing. Levels loosest-to-tightest.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) expr() (expr, error) { return p.binLevel(0) }

func (p *parser) binLevel(level int) (expr, error) {
	if level == len(precLevels) {
		return p.unaryExpr()
	}
	l, err := p.binLevel(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range precLevels[level] {
			if p.at(tokPunct, op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return l, nil
		}
		line := p.line()
		p.next()
		r, err := p.binLevel(level + 1)
		if err != nil {
			return nil, err
		}
		l = &binary{pos{line}, matched, l, r}
	}
}

func (p *parser) unaryExpr() (expr, error) {
	t := p.peek()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!" || t.text == "~") {
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &unary{pos{t.line}, t.text, x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		v, err := strconv.ParseInt(t.text, 0, 64)
		if err != nil {
			return nil, errf(t.line, "bad number %q", t.text)
		}
		return &numLit{pos{t.line}, v}, nil
	case t.kind == tokIdent:
		p.next()
		if p.accept(tokPunct, "[") {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			return &arrRef{pos{t.line}, t.text, idx}, nil
		}
		return &varRef{pos{t.line}, t.text}, nil
	case t.kind == tokPunct && t.text == "(":
		return p.parenExpr()
	}
	return nil, errf(t.line, "expected an expression, got %q", t.text)
}
