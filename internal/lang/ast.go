package lang

// AST node types. Positions (source lines) are carried for error messages.

type node interface{ nodeLine() int }

type pos struct{ line int }

func (p pos) nodeLine() int { return p.line }

// Statements.

type program struct {
	stmts []stmt
}

type stmt interface{ node }

// varDecl declares (and optionally initialises) a scalar variable.
type varDecl struct {
	pos
	name string
	init expr // nil means zero
}

// arrDecl declares a fixed-size array.
type arrDecl struct {
	pos
	name string
	size int64
}

// assign stores into a variable.
type assign struct {
	pos
	name  string
	value expr
}

// arrAssign stores into an array element.
type arrAssign struct {
	pos
	name  string
	index expr
	value expr
}

// ifStmt is if/else; els may be nil.
type ifStmt struct {
	pos
	cond expr
	then []stmt
	els  []stmt
}

// whileStmt is a top-tested loop.
type whileStmt struct {
	pos
	cond expr
	body []stmt
}

// doWhileStmt is a bottom-tested loop.
type doWhileStmt struct {
	pos
	body []stmt
	cond expr
}

// forStmt is for(init; cond; post) body; any part may be nil.
type forStmt struct {
	pos
	init stmt // assign or varDecl or nil
	cond expr // nil means true
	post stmt // assign or nil
	body []stmt
}

type breakStmt struct{ pos }

type continueStmt struct{ pos }

// outStmt appends a value to the output stream.
type outStmt struct {
	pos
	value expr
}

// haltStmt stops the program; code may be nil (0).
type haltStmt struct {
	pos
	code expr
}

// Expressions.

type expr interface{ node }

// numLit is an integer literal.
type numLit struct {
	pos
	value int64
}

// varRef reads a variable.
type varRef struct {
	pos
	name string
}

// arrRef reads an array element.
type arrRef struct {
	pos
	name  string
	index expr
}

// unary is -x, !x, or ~x.
type unary struct {
	pos
	op string
	x  expr
}

// binary is a binary operator application.
type binary struct {
	pos
	op   string
	l, r expr
}
