package lang

import (
	"testing"

	"repro/internal/emu"
)

// FuzzCompile checks that the compiler never panics on arbitrary source,
// and that anything it accepts produces a structurally valid program that
// the emulator can execute without internal faults other than the defined
// runtime traps.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"",
		"out 1;",
		"var x = 1; out x + 2 * 3;",
		"arr a[4]; a[1] = 7; out a[1];",
		"var i = 3; while (i > 0) { i = i - 1; } out i;",
		"for (var i = 0; i < 4; i = i + 1) { if (i % 2 == 0) { out i; } }",
		"do { out 1; } while (0);",
		"var x = 0; while (1) { x = x + 1; if (x == 3) { break; } } out x;",
		"out (1 < 2) && (3 != 4) || !5;",
		"halt 2;",
		"// just a comment",
		"var x = -9223372036854775807;",
		"if (1) { var y = 1; out y; } else { out 0; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Compile("fuzz", src)
		if err != nil {
			return // rejection is fine; a panic is not
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("compiled program invalid: %v", err)
		}
		// Execute with a tight budget; division traps and step-limit
		// overruns are defined behaviour for arbitrary programs.
		_, _ = emu.RunProgram(p, 50_000)
	})
}
