package isa

import (
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	for op := OpNop; op < opMax; op++ {
		if s := op.String(); s == "" || s[0] == 'o' && s != "out" && len(s) > 3 && s[:3] == "op(" {
			t.Errorf("op %d has no name: %q", op, s)
		}
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("unknown op string = %q", got)
	}
}

func TestRegStrings(t *testing.T) {
	if got := Reg(7).String(); got != "r7" {
		t.Errorf("Reg(7) = %q", got)
	}
	if got := PReg(3).String(); got != "p3" {
		t.Errorf("PReg(3) = %q", got)
	}
}

func TestCmpCondEval(t *testing.T) {
	cases := []struct {
		cc   CmpCond
		a, b int64
		want bool
	}{
		{CmpEQ, 5, 5, true},
		{CmpEQ, 5, 6, false},
		{CmpNE, 5, 6, true},
		{CmpNE, 5, 5, false},
		{CmpLT, -1, 0, true},
		{CmpLT, 0, 0, false},
		{CmpLE, 0, 0, true},
		{CmpLE, 1, 0, false},
		{CmpGT, 1, 0, true},
		{CmpGT, 0, 0, false},
		{CmpGE, 0, 0, true},
		{CmpGE, -1, 0, false},
		{CmpLTU, -1, 0, false}, // -1 is max uint64
		{CmpLTU, 0, -1, true},
		{CmpGEU, -1, 0, true},
		{CmpGEU, 0, -1, false},
	}
	for _, c := range cases {
		if got := c.cc.Eval(c.a, c.b); got != c.want {
			t.Errorf("%s(%d,%d) = %v, want %v", c.cc, c.a, c.b, got, c.want)
		}
	}
}

func TestCmpCondNegate(t *testing.T) {
	// Property: negated condition always evaluates to the complement.
	f := func(cc uint8, a, b int64) bool {
		c := CmpCond(cc % uint8(cmpCondMax))
		return c.Eval(a, b) == !c.Negate().Eval(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpCondNegateInvolution(t *testing.T) {
	for c := CmpEQ; c < cmpCondMax; c++ {
		if c.Negate().Negate() != c {
			t.Errorf("%s.Negate().Negate() = %s", c, c.Negate().Negate())
		}
	}
}

func TestValidateRanges(t *testing.T) {
	good := Inst{Op: OpAdd, Dst: 1, Src1: 2, Src2: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid add rejected: %v", err)
	}
	bad := []Inst{
		{Op: Op(250)},
		{Op: OpAdd, Dst: 64},
		{Op: OpAdd, Src1: 64},
		{Op: OpAdd, QP: 64},
		{Op: OpCmp, PD1: 64, PD2: 1},
		{Op: OpCmp, PD1: 3, PD2: 3}, // identical destinations
		{Op: OpCmp, PD1: 1, PD2: 2, CC: CmpCond(15)},
		{Op: OpPinit, PD1: 1, Imm: 7},
		{Op: OpBr, Target: -1}, // unresolved, no label
		{Op: OpPand, PD1: 1, PS1: 64, PS2: 2},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad[%d] (%+v) accepted", i, in)
		}
	}
}

func TestInstClassifiers(t *testing.T) {
	br := Inst{Op: OpBr, Target: 0}
	if !br.IsBranch() || !br.IsDirectBranch() {
		t.Error("br not classified as direct branch")
	}
	brr := Inst{Op: OpBrr, Src1: 1}
	if !brr.IsBranch() || brr.IsDirectBranch() {
		t.Error("brr misclassified")
	}
	cmp := Inst{Op: OpCmp, PD1: 1, PD2: 2}
	if !cmp.IsPredDef() {
		t.Error("cmp not a predicate define")
	}
	if got := cmp.PredDests(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("cmp PredDests = %v", got)
	}
	pand := Inst{Op: OpPand, PD1: 3, PS1: 1, PS2: 2}
	if got := pand.PredSources(); len(got) != 2 {
		t.Errorf("pand PredSources = %v", got)
	}
	add := Inst{Op: OpAdd, Dst: 5, Src1: 1, Src2: 2}
	if d, ok := add.RegDest(); !ok || d != 5 {
		t.Errorf("add RegDest = %v, %v", d, ok)
	}
	if got := add.RegSources(); len(got) != 2 {
		t.Errorf("add RegSources = %v", got)
	}
	addi := Inst{Op: OpAdd, Dst: 5, Src1: 1, Imm: 3, HasImm: true}
	if got := addi.RegSources(); len(got) != 1 {
		t.Errorf("addi RegSources = %v", got)
	}
	st := Inst{Op: OpSt, Src1: 1, Src2: 2}
	if _, ok := st.RegDest(); ok {
		t.Error("st should have no register destination")
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpNop}, "nop"},
		{Inst{Op: OpAdd, Dst: 1, Src1: 2, Src2: 3}, "add r1 = r2, r3"},
		{Inst{Op: OpAdd, Dst: 1, Src1: 2, Imm: -4, HasImm: true}, "add r1 = r2, -4"},
		{Inst{Op: OpMovi, Dst: 9, Imm: 42}, "movi r9 = 42"},
		{
			Inst{Op: OpCmp, CC: CmpLT, CT: CmpUnc, PD1: 1, PD2: 2, Src1: 3, Src2: 4},
			"cmp.lt.unc p1, p2 = r3, r4",
		},
		{Inst{Op: OpBr, QP: 5, Label: "loop"}, "(p5) br loop"},
		{Inst{Op: OpBr, Target: 17}, "br @17"},
		{Inst{Op: OpLd, Dst: 1, Src1: 2, Imm: 8}, "ld r1 = [r2 + 8]"},
		{Inst{Op: OpSt, Src1: 2, Imm: 0, Src2: 3}, "st [r2 + 0] = r3"},
		{Inst{Op: OpPor, PD1: 3, PS1: 1, PS2: 2}, "por p3 = p1, p2"},
		{Inst{Op: OpHalt, Imm: 1}, "halt 1"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// randomValidInst produces a structurally valid instruction from raw fuzz
// inputs for the encode/decode round-trip property.
func randomValidInst(op, qp, a, b, c, d, e uint8, imm int64, hasImm, region bool) Inst {
	in := Inst{
		Op: Op(op) % opMax,
		QP: PReg(qp % NumPRegs),
	}
	switch in.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar, OpMul, OpDiv, OpMod:
		in.Dst, in.Src1 = Reg(a%NumRegs), Reg(b%NumRegs)
		if hasImm {
			in.Imm, in.HasImm = imm, true
		} else {
			in.Src2 = Reg(c % NumRegs)
		}
	case OpMov:
		in.Dst, in.Src1 = Reg(a%NumRegs), Reg(b%NumRegs)
	case OpMovi:
		in.Dst, in.Imm = Reg(a%NumRegs), imm
	case OpCmp:
		in.PD1 = PReg(d % NumPRegs)
		in.PD2 = PReg(e % NumPRegs)
		if in.PD1 == in.PD2 {
			in.PD2 = (in.PD1 + 1) % NumPRegs
		}
		in.CC = CmpCond(a) % cmpCondMax
		in.CT = CmpType(b) % cmpTypeMax
		in.Src1 = Reg(c % NumRegs)
		if hasImm {
			in.Imm, in.HasImm = imm, true
		} else {
			in.Src2 = Reg(e % NumRegs)
		}
	case OpLd:
		in.Dst, in.Src1, in.Imm = Reg(a%NumRegs), Reg(b%NumRegs), imm
	case OpSt:
		in.Src1, in.Src2, in.Imm = Reg(a%NumRegs), Reg(b%NumRegs), imm
	case OpBr:
		in.Target = int(uint32(imm))
		in.Region = region
	case OpBrl:
		in.Dst = Reg(a % NumRegs)
		in.Target = int(uint32(imm))
	case OpBrr:
		in.Src1 = Reg(a % NumRegs)
	case OpCloop:
		in.Dst = Reg(a % NumRegs)
		in.Target = int(uint32(imm))
		in.Region = region
	case OpPand, OpPor:
		in.PD1, in.PS1, in.PS2 = PReg(a%NumPRegs), PReg(b%NumPRegs), PReg(c%NumPRegs)
	case OpPmov:
		in.PD1, in.PS1 = PReg(a%NumPRegs), PReg(b%NumPRegs)
	case OpPinit:
		in.PD1, in.Imm = PReg(a%NumPRegs), imm&1
	case OpOut:
		in.Src1 = Reg(a % NumRegs)
	case OpHalt:
		in.Imm = imm
	}
	return in
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op, qp, a, b, c, d, e uint8, imm int64, hasImm, region bool) bool {
		in := randomValidInst(op, qp, a, b, c, d, e, imm, hasImm, region)
		var buf [EncodedSize]byte
		if err := in.Encode(buf[:]); err != nil {
			t.Logf("encode error for %s: %v", in, err)
			return false
		}
		out, err := Decode(buf[:])
		if err != nil {
			t.Logf("decode error for %s: %v", in, err)
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeAllDecodeAll(t *testing.T) {
	insts := []Inst{
		{Op: OpMovi, Dst: 1, Imm: 7},
		{Op: OpCmp, CC: CmpGT, PD1: 1, PD2: 2, Src1: 1, Imm: 0, HasImm: true},
		{Op: OpBr, QP: 2, Target: 4},
		{Op: OpOut, Src1: 1},
		{Op: OpHalt},
	}
	data, err := EncodeAll(insts)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(insts)*EncodedSize {
		t.Fatalf("encoded length %d", len(data))
	}
	back, err := DecodeAll(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if back[i] != insts[i] {
			t.Errorf("inst %d round trip: got %+v want %+v", i, back[i], insts[i])
		}
	}
	if _, err := DecodeAll(data[:5]); err == nil {
		t.Error("DecodeAll accepted truncated input")
	}
}

func TestEncodeErrors(t *testing.T) {
	in := Inst{Op: OpBr, Label: "x", Target: -1}
	var buf [EncodedSize]byte
	if err := in.Encode(buf[:]); err == nil {
		t.Error("encoding unresolved branch succeeded")
	}
	ok := Inst{Op: OpNop}
	if err := ok.Encode(buf[:4]); err == nil {
		t.Error("encoding into short buffer succeeded")
	}
	if _, err := Decode(buf[:4]); err == nil {
		t.Error("decoding short buffer succeeded")
	}
	buf = [EncodedSize]byte{}
	buf[0] = 240 // invalid opcode
	if _, err := Decode(buf[:]); err == nil {
		t.Error("decoding invalid opcode succeeded")
	}
}
