// Package isa defines P64, a small IA-64-inspired predicated instruction
// set used throughout this repository.
//
// P64 has 64 general registers (r0 is hard-wired to zero) and 64 one-bit
// predicate registers (p0 is hard-wired to true). Every instruction carries
// a qualifying predicate (QP); an instruction whose QP is false is fetched
// and occupies pipeline slots, but its architectural effects are nullified.
//
// As in IA-64, a conditional branch is simply a guarded direct branch:
// "(p3) br L" is taken if and only if p3 is true. The guard *is* the branch
// condition, which is what gives the paper's squash false path filter its
// 100% accuracy: a branch whose guard has resolved to false cannot be taken.
//
// Compare instructions write two predicate destinations with the condition
// and its complement, under one of four write types (normal, unconditional,
// and, or) mirroring the IA-64 compare types used by if-conversion.
package isa

import "fmt"

// NumRegs is the number of general registers (r0..r63). r0 reads as zero
// and ignores writes.
const NumRegs = 64

// NumPRegs is the number of predicate registers (p0..p63). p0 reads as true
// and ignores writes.
const NumPRegs = 64

// Reg identifies a general register.
type Reg uint8

// PReg identifies a predicate register.
type PReg uint8

// R0 is the always-zero general register.
const R0 Reg = 0

// P0 is the always-true predicate register.
const P0 PReg = 0

// String returns the assembly name of the register ("r7").
func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// String returns the assembly name of the predicate register ("p3").
func (p PReg) String() string { return fmt.Sprintf("p%d", uint8(p)) }

// Op is an instruction opcode.
type Op uint8

// Opcodes. The set is deliberately small but complete enough to express the
// branchy integer workloads the paper studies.
const (
	OpNop Op = iota

	// ALU: Dst = Src1 op (Src2 | Imm).
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl // shift left
	OpShr // logical shift right
	OpSar // arithmetic shift right
	OpMul
	OpDiv // signed; divide by zero traps
	OpMod // signed remainder; by zero traps

	// Moves: Mov Dst = Src1; Movi Dst = Imm.
	OpMov
	OpMovi

	// Compare: PD1, PD2 = CC(Src1, Src2|Imm) under write type CT.
	OpCmp

	// Memory (word addressed, 64-bit cells): Ld Dst = [Src1+Imm];
	// St [Src1+Imm] = Src2.
	OpLd
	OpSt

	// Branches. All are guarded: taken iff QP is true.
	OpBr    // direct branch to Target
	OpBrl   // branch and link: Dst = index of next instruction, jump to Target
	OpBrr   // indirect branch to the address held in Src1
	OpCloop // counted loop: if Dst != 0 { Dst--; jump to Target }

	// Predicate manipulation (HPL-PD style), all guarded by QP:
	// Pand PD1 = PS1 && PS2; Por PD1 = PS1 || PS2; Pmov PD1 = PS1;
	// Pinit PD1 = (Imm != 0).
	OpPand
	OpPor
	OpPmov
	OpPinit

	// Out appends the value of Src1 to the program's output stream. Used by
	// workloads to make results observable and by tests as a behavioural
	// oracle.
	OpOut

	// Halt stops execution with exit code Imm.
	OpHalt

	// Trap stops execution and reports an error. The if-converter plants a
	// trap after the last region exit; reaching it means a predication bug.
	OpTrap

	opMax // sentinel; keep last
)

var opNames = [...]string{
	OpNop:   "nop",
	OpAdd:   "add",
	OpSub:   "sub",
	OpAnd:   "and",
	OpOr:    "or",
	OpXor:   "xor",
	OpShl:   "shl",
	OpShr:   "shr",
	OpSar:   "sar",
	OpMul:   "mul",
	OpDiv:   "div",
	OpMod:   "mod",
	OpMov:   "mov",
	OpMovi:  "movi",
	OpCmp:   "cmp",
	OpLd:    "ld",
	OpSt:    "st",
	OpBr:    "br",
	OpBrl:   "brl",
	OpBrr:   "brr",
	OpCloop: "cloop",
	OpPand:  "pand",
	OpPor:   "por",
	OpPmov:  "pmov",
	OpPinit: "pinit",
	OpOut:   "out",
	OpHalt:  "halt",
	OpTrap:  "trap",
}

// String returns the assembly mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < opMax }

// CmpCond is a compare condition.
type CmpCond uint8

// Compare conditions. Signed unless suffixed U.
const (
	CmpEQ CmpCond = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
	CmpLTU
	CmpGEU
	cmpCondMax
)

var condNames = [...]string{
	CmpEQ:  "eq",
	CmpNE:  "ne",
	CmpLT:  "lt",
	CmpLE:  "le",
	CmpGT:  "gt",
	CmpGE:  "ge",
	CmpLTU: "ltu",
	CmpGEU: "geu",
}

// String returns the assembly suffix for the condition ("eq").
func (c CmpCond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cc(%d)", uint8(c))
}

// Valid reports whether c is a defined condition.
func (c CmpCond) Valid() bool { return c < cmpCondMax }

// Eval applies the condition to two operands.
func (c CmpCond) Eval(a, b int64) bool {
	switch c {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	case CmpLTU:
		return uint64(a) < uint64(b)
	case CmpGEU:
		return uint64(a) >= uint64(b)
	}
	panic(fmt.Sprintf("isa: invalid compare condition %d", c))
}

// Negate returns the condition with the opposite truth table.
func (c CmpCond) Negate() CmpCond {
	switch c {
	case CmpEQ:
		return CmpNE
	case CmpNE:
		return CmpEQ
	case CmpLT:
		return CmpGE
	case CmpGE:
		return CmpLT
	case CmpLE:
		return CmpGT
	case CmpGT:
		return CmpLE
	case CmpLTU:
		return CmpGEU
	case CmpGEU:
		return CmpLTU
	}
	panic(fmt.Sprintf("isa: invalid compare condition %d", c))
}

// CmpType selects the predicate write behaviour of a compare, mirroring the
// IA-64 compare types.
type CmpType uint8

const (
	// CmpNorm writes PD1=cond, PD2=!cond when QP is true and writes nothing
	// when QP is false.
	CmpNorm CmpType = iota
	// CmpUnc writes PD1=cond, PD2=!cond when QP is true and clears both to
	// false when QP is false. If-conversion uses this type so that nested
	// path predicates compose: PD1 = QP && cond, PD2 = QP && !cond.
	CmpUnc
	// CmpAnd clears both destinations when QP is true and the condition is
	// false; otherwise leaves them unchanged. Used to accumulate compound
	// AND conditions.
	CmpAnd
	// CmpOr sets both destinations when QP is true and the condition is
	// true; otherwise leaves them unchanged. Used to accumulate compound OR
	// conditions.
	CmpOr
	cmpTypeMax
)

var ctypeNames = [...]string{
	CmpNorm: "",
	CmpUnc:  "unc",
	CmpAnd:  "and",
	CmpOr:   "or",
}

// String returns the assembly suffix for the type ("" for normal).
func (t CmpType) String() string {
	if int(t) < len(ctypeNames) {
		return ctypeNames[t]
	}
	return fmt.Sprintf("ct(%d)", uint8(t))
}

// Valid reports whether t is a defined compare type.
func (t CmpType) Valid() bool { return t < cmpTypeMax }
