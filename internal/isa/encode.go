package isa

import (
	"encoding/binary"
	"fmt"
)

// EncodedSize is the size in bytes of one encoded instruction.
const EncodedSize = 16

// Flag bits in byte 7 of the encoding.
const (
	flagHasImm = 1 << 6
	flagRegion = 1 << 7
	ccMask     = 0x0f
	ctShift    = 4
	ctMask     = 0x03
)

// Encode serialises the instruction into dst, which must be at least
// EncodedSize bytes. Branch targets must be resolved (labels are not
// encoded). It returns an error for unresolved branches or invalid fields.
func (in *Inst) Encode(dst []byte) error {
	if len(dst) < EncodedSize {
		return fmt.Errorf("isa: encode buffer too small: %d", len(dst))
	}
	if err := in.Validate(); err != nil {
		return err
	}
	if in.IsDirectBranch() && in.Target < 0 {
		return fmt.Errorf("isa: cannot encode unresolved branch to %q", in.Label)
	}
	dst[0] = byte(in.Op)
	dst[1] = byte(in.QP)
	dst[2] = byte(in.Dst)
	switch in.Op {
	case OpPand, OpPor, OpPmov:
		dst[3] = byte(in.PS1)
		dst[4] = byte(in.PS2)
	default:
		dst[3] = byte(in.Src1)
		dst[4] = byte(in.Src2)
	}
	dst[5] = byte(in.PD1)
	dst[6] = byte(in.PD2)
	flags := byte(in.CC) & ccMask
	flags |= (byte(in.CT) & ctMask) << ctShift
	if in.HasImm {
		flags |= flagHasImm
	}
	if in.Region {
		flags |= flagRegion
	}
	dst[7] = flags
	var word uint64
	if in.IsDirectBranch() {
		word = uint64(in.Target)
	} else {
		word = uint64(in.Imm)
	}
	binary.LittleEndian.PutUint64(dst[8:16], word)
	return nil
}

// Decode deserialises one instruction from src.
func Decode(src []byte) (Inst, error) {
	if len(src) < EncodedSize {
		return Inst{}, fmt.Errorf("isa: decode buffer too small: %d", len(src))
	}
	var in Inst
	in.Op = Op(src[0])
	if !in.Op.Valid() {
		return Inst{}, fmt.Errorf("isa: decode: invalid opcode %d", src[0])
	}
	in.QP = PReg(src[1])
	in.Dst = Reg(src[2])
	switch in.Op {
	case OpPand, OpPor, OpPmov:
		in.PS1 = PReg(src[3])
		in.PS2 = PReg(src[4])
	default:
		in.Src1 = Reg(src[3])
		in.Src2 = Reg(src[4])
	}
	in.PD1 = PReg(src[5])
	in.PD2 = PReg(src[6])
	flags := src[7]
	in.CC = CmpCond(flags & ccMask)
	in.CT = CmpType((flags >> ctShift) & ctMask)
	in.HasImm = flags&flagHasImm != 0
	in.Region = flags&flagRegion != 0
	word := binary.LittleEndian.Uint64(src[8:16])
	if in.IsDirectBranch() {
		in.Target = int(int64(word))
	} else {
		in.Imm = int64(word)
	}
	if err := in.Validate(); err != nil {
		return Inst{}, err
	}
	return in, nil
}

// EncodeAll serialises a resolved instruction sequence.
func EncodeAll(insts []Inst) ([]byte, error) {
	out := make([]byte, len(insts)*EncodedSize)
	for i := range insts {
		if err := insts[i].Encode(out[i*EncodedSize:]); err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
	}
	return out, nil
}

// DecodeAll deserialises a sequence produced by EncodeAll.
func DecodeAll(src []byte) ([]Inst, error) {
	if len(src)%EncodedSize != 0 {
		return nil, fmt.Errorf("isa: decode: length %d not a multiple of %d", len(src), EncodedSize)
	}
	insts := make([]Inst, len(src)/EncodedSize)
	for i := range insts {
		in, err := Decode(src[i*EncodedSize:])
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
		insts[i] = in
	}
	return insts, nil
}
