package isa

import (
	"testing"
)

// FuzzDecode checks that instruction decoding never panics and that
// anything it accepts re-encodes to the same bytes (minus the parts the
// format normalises).
func FuzzDecode(f *testing.F) {
	var seed [EncodedSize]byte
	f.Add(seed[:])
	seed[0] = byte(OpAdd)
	seed[2] = 1
	seed[3] = 2
	f.Add(seed[:])
	var brSeed [EncodedSize]byte
	brSeed[0] = byte(OpBr)
	brSeed[8] = 17
	f.Add(brSeed[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := Decode(data)
		if err != nil {
			return
		}
		var buf [EncodedSize]byte
		if err := in.Encode(buf[:]); err != nil {
			t.Fatalf("decoded instruction %s does not re-encode: %v", in, err)
		}
		back, err := Decode(buf[:])
		if err != nil {
			t.Fatalf("re-encoded instruction does not decode: %v", err)
		}
		if back != in {
			t.Fatalf("round trip changed instruction: %+v vs %+v", back, in)
		}
		_ = in.String()   // must not panic
		_ = in.Validate() // must not panic
	})
}
