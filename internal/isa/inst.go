package isa

import "fmt"

// Inst is a single P64 instruction. The zero value is a nop guarded by p0.
//
// Field usage by opcode:
//
//	ALU/Mov:      Dst, Src1, Src2 or Imm (HasImm)
//	Movi:         Dst, Imm
//	Cmp:          PD1, PD2, CC, CT, Src1, Src2 or Imm
//	Ld:           Dst, Src1 (base), Imm (offset)
//	St:           Src2 (value), Src1 (base), Imm (offset)
//	Br/Cloop:     Target (and Label before resolution); Cloop also Dst (counter)
//	Brl:          Dst (link), Target
//	Brr:          Src1 (target address)
//	Pand/Por:     PD1, PS1, PS2
//	Pmov:         PD1, PS1
//	Pinit:        PD1, Imm (0 or 1)
//	Out:          Src1
//	Halt:         Imm (exit code)
type Inst struct {
	Op Op
	QP PReg // qualifying predicate; P0 means unguarded

	Dst  Reg
	Src1 Reg
	Src2 Reg

	Imm    int64
	HasImm bool // ALU/Cmp: use Imm instead of Src2

	// Compare fields.
	PD1, PD2 PReg
	CC       CmpCond
	CT       CmpType

	// Predicate-manipulation sources.
	PS1, PS2 PReg

	// Branch target as an instruction index; -1 or Label-only before the
	// assembler resolves labels.
	Target int
	Label  string

	// Region marks a region-based branch: a branch the if-converter left
	// inside a predicated region. The paper's mechanisms key on this class.
	Region bool
}

// Nop returns a no-op instruction.
func Nop() Inst { return Inst{Op: OpNop} }

// IsBranch reports whether the instruction can redirect control flow.
func (in *Inst) IsBranch() bool {
	switch in.Op {
	case OpBr, OpBrl, OpBrr, OpCloop:
		return true
	}
	return false
}

// IsDirectBranch reports whether the instruction is a branch with a static
// target.
func (in *Inst) IsDirectBranch() bool {
	switch in.Op {
	case OpBr, OpBrl, OpCloop:
		return true
	}
	return false
}

// IsPredDef reports whether the instruction writes predicate registers.
func (in *Inst) IsPredDef() bool {
	switch in.Op {
	case OpCmp, OpPand, OpPor, OpPmov, OpPinit:
		return true
	}
	return false
}

// PredDests returns the predicate registers the instruction may write.
func (in *Inst) PredDests() []PReg {
	switch in.Op {
	case OpCmp:
		return []PReg{in.PD1, in.PD2}
	case OpPand, OpPor, OpPmov, OpPinit:
		return []PReg{in.PD1}
	}
	return nil
}

// PredSources returns the predicate registers the instruction reads, not
// counting the qualifying predicate.
func (in *Inst) PredSources() []PReg {
	switch in.Op {
	case OpPand, OpPor:
		return []PReg{in.PS1, in.PS2}
	case OpPmov:
		return []PReg{in.PS1}
	}
	return nil
}

// RegDest returns the general register written by the instruction and
// whether there is one.
func (in *Inst) RegDest() (Reg, bool) {
	switch in.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar, OpMul,
		OpDiv, OpMod, OpMov, OpMovi, OpLd, OpBrl:
		return in.Dst, true
	case OpCloop:
		return in.Dst, true // counter is read-modify-write
	}
	return 0, false
}

// RegSources returns the general registers the instruction reads.
func (in *Inst) RegSources() []Reg {
	switch in.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar, OpMul, OpDiv, OpMod:
		if in.HasImm {
			return []Reg{in.Src1}
		}
		return []Reg{in.Src1, in.Src2}
	case OpMov:
		return []Reg{in.Src1}
	case OpCmp:
		if in.HasImm {
			return []Reg{in.Src1}
		}
		return []Reg{in.Src1, in.Src2}
	case OpLd:
		return []Reg{in.Src1}
	case OpSt:
		return []Reg{in.Src1, in.Src2}
	case OpBrr:
		return []Reg{in.Src1}
	case OpCloop:
		return []Reg{in.Dst}
	case OpOut:
		return []Reg{in.Src1}
	}
	return nil
}

// Validate checks structural well-formedness: opcode and field ranges. It
// does not check that branch targets are in range; the program container
// does that once labels are resolved.
func (in *Inst) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	if in.QP >= NumPRegs {
		return fmt.Errorf("isa: %s: qualifying predicate %d out of range", in.Op, in.QP)
	}
	check := func(r Reg, what string) error {
		if r >= NumRegs {
			return fmt.Errorf("isa: %s: %s register %d out of range", in.Op, what, r)
		}
		return nil
	}
	checkP := func(p PReg, what string) error {
		if p >= NumPRegs {
			return fmt.Errorf("isa: %s: %s predicate %d out of range", in.Op, what, p)
		}
		return nil
	}
	if d, ok := in.RegDest(); ok {
		if err := check(d, "destination"); err != nil {
			return err
		}
	}
	for _, r := range in.RegSources() {
		if err := check(r, "source"); err != nil {
			return err
		}
	}
	for _, p := range in.PredDests() {
		if err := checkP(p, "destination"); err != nil {
			return err
		}
	}
	for _, p := range in.PredSources() {
		if err := checkP(p, "source"); err != nil {
			return err
		}
	}
	switch in.Op {
	case OpCmp:
		if !in.CC.Valid() {
			return fmt.Errorf("isa: cmp: invalid condition %d", in.CC)
		}
		if !in.CT.Valid() {
			return fmt.Errorf("isa: cmp: invalid compare type %d", in.CT)
		}
		if in.PD1 == in.PD2 && in.PD1 != P0 {
			return fmt.Errorf("isa: cmp: identical predicate destinations %s", in.PD1)
		}
	case OpPinit:
		if in.Imm != 0 && in.Imm != 1 {
			return fmt.Errorf("isa: pinit: immediate must be 0 or 1, got %d", in.Imm)
		}
	case OpBr, OpBrl, OpCloop:
		if in.Target < 0 && in.Label == "" {
			return fmt.Errorf("isa: %s: unresolved branch with no label", in.Op)
		}
	}
	return nil
}

// String renders the instruction in assembly syntax.
func (in Inst) String() string {
	guard := ""
	if in.QP != P0 {
		guard = fmt.Sprintf("(%s) ", in.QP)
	}
	return guard + in.body()
}

// brName appends the region-based-branch suffix to a branch mnemonic.
func (in *Inst) brName(base string) string {
	if in.Region {
		return base + ".region"
	}
	return base
}

func (in *Inst) body() string {
	src2 := func() string {
		if in.HasImm {
			return fmt.Sprintf("%d", in.Imm)
		}
		return in.Src2.String()
	}
	target := func() string {
		if in.Label != "" {
			return in.Label
		}
		return fmt.Sprintf("@%d", in.Target)
	}
	switch in.Op {
	case OpNop:
		return "nop"
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar, OpMul, OpDiv, OpMod:
		return fmt.Sprintf("%s %s = %s, %s", in.Op, in.Dst, in.Src1, src2())
	case OpMov:
		return fmt.Sprintf("mov %s = %s", in.Dst, in.Src1)
	case OpMovi:
		return fmt.Sprintf("movi %s = %d", in.Dst, in.Imm)
	case OpCmp:
		name := "cmp." + in.CC.String()
		if in.CT != CmpNorm {
			name += "." + in.CT.String()
		}
		return fmt.Sprintf("%s %s, %s = %s, %s", name, in.PD1, in.PD2, in.Src1, src2())
	case OpLd:
		return fmt.Sprintf("ld %s = [%s + %d]", in.Dst, in.Src1, in.Imm)
	case OpSt:
		return fmt.Sprintf("st [%s + %d] = %s", in.Src1, in.Imm, in.Src2)
	case OpBr:
		return in.brName("br") + " " + target()
	case OpBrl:
		return fmt.Sprintf("%s %s = %s", in.brName("brl"), in.Dst, target())
	case OpBrr:
		return in.brName("brr") + " " + in.Src1.String()
	case OpCloop:
		return fmt.Sprintf("%s %s, %s", in.brName("cloop"), in.Dst, target())
	case OpPand:
		return fmt.Sprintf("pand %s = %s, %s", in.PD1, in.PS1, in.PS2)
	case OpPor:
		return fmt.Sprintf("por %s = %s, %s", in.PD1, in.PS1, in.PS2)
	case OpPmov:
		return fmt.Sprintf("pmov %s = %s", in.PD1, in.PS1)
	case OpPinit:
		return fmt.Sprintf("pinit %s = %d", in.PD1, in.Imm)
	case OpOut:
		return "out " + in.Src1.String()
	case OpHalt:
		return fmt.Sprintf("halt %d", in.Imm)
	case OpTrap:
		return "trap"
	}
	return fmt.Sprintf("op(%d)", uint8(in.Op))
}
