package buildinfo

import (
	"flag"
	"strings"
	"testing"
)

func TestVersionNonEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("empty version")
	}
}

func TestString(t *testing.T) {
	s := String("mytool")
	if !strings.HasPrefix(s, "mytool ") {
		t.Errorf("String = %q, want mytool prefix", s)
	}
	if !strings.Contains(s, "go1") {
		t.Errorf("String = %q, want go runtime version", s)
	}
}

func TestFlag(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	v := Flag(fs)
	if err := fs.Parse([]string{"-version"}); err != nil {
		t.Fatal(err)
	}
	if !*v {
		t.Error("flag not set after -version")
	}
}
