// Package buildinfo reports the version baked into a binary by the Go
// toolchain, and provides the shared -version flag every cmd/* tool
// registers so the whole suite answers version queries the same way.
package buildinfo

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version returns the best version string the build metadata offers: the
// module version when built from a tagged module, otherwise the VCS
// revision (with a +dirty suffix for modified checkouts), otherwise
// "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "+dirty"
			}
		}
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + modified
	}
	return "devel"
}

// Revision returns the full VCS revision baked into the binary (with a
// +dirty suffix for modified checkouts), or "unknown" when the build
// carries no VCS metadata. Where Version abbreviates for humans,
// Revision stays exact — it labels the build_info metric so a scrape
// pins the running binary to a commit.
func Revision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "+dirty"
			}
		}
	}
	if rev == "" {
		return "unknown"
	}
	return rev + modified
}

// String renders the one-line -version output for a named tool.
func String(tool string) string {
	return fmt.Sprintf("%s %s %s %s/%s", tool, Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// Flag registers the standard -version flag on a tool's flag set and
// returns the value to check after parsing.
func Flag(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print version and exit")
}

// Hash returns a short stable digest of v's JSON encoding — the
// config-hash the results store keys records on. encoding/json writes
// struct fields in declaration order and sorts map keys, so the digest
// is deterministic for a given value. v must be JSON-encodable; Hash
// panics otherwise (a config that cannot be hashed is a programming
// error, not an input error).
func Hash(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("buildinfo: unhashable config: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}
