// Package rng provides a small deterministic pseudo-random number generator
// used by workload generators and property tests.
//
// The generator is splitmix64 (Steele, Lea, Flood 2014). It is used instead
// of math/rand so that workload data is bit-identical across Go releases:
// every experiment in this repository is seeded and reproducible.
package rng

// Source is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next 64-bit value in the sequence.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64() % uint64(n))
}

// Int64n returns a value in [0, n). It panics if n <= 0.
func (s *Source) Int64n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int64n called with n <= 0")
	}
	return int64(s.Uint64() % uint64(n))
}

// Bits returns a value with the low n bits pseudo-random and the rest
// zero. n outside [0, 64) returns a full random word.
func (s *Source) Bits(n int) uint64 {
	v := s.Uint64()
	if n < 0 || n >= 64 {
		return v
	}
	return v & ((1 << n) - 1)
}

// Bool returns a pseudo-random boolean.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Float64 returns a value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Chance returns true with probability p (clamped to [0,1]).
func (s *Source) Chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fill fills dst with pseudo-random int64 values in [0, bound) when
// bound > 0, or with unrestricted values when bound == 0.
func (s *Source) Fill(dst []int64, bound int64) {
	for i := range dst {
		if bound > 0 {
			dst[i] = s.Int64n(bound)
		} else {
			dst[i] = int64(s.Uint64())
		}
	}
}
