package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverge at %d", i)
		}
	}
}

func TestKnownValues(t *testing.T) {
	// splitmix64 reference values for seed 0 (from the public-domain
	// reference implementation).
	s := New(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Errorf("value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		v := s.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int64n(-1) did not panic")
		}
	}()
	New(1).Int64n(-1)
}

func TestInt63NonNegative(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		if s.Int63() < 0 {
			t.Fatal("negative Int63")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestBoolRoughlyBalanced(t *testing.T) {
	s := New(11)
	trues := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if s.Bool() {
			trues++
		}
	}
	if trues < n/2-300 || trues > n/2+300 {
		t.Errorf("bool bias: %d/%d", trues, n)
	}
}

func TestChance(t *testing.T) {
	s := New(13)
	if s.Chance(0) {
		t.Error("Chance(0) true")
	}
	if !s.Chance(1) {
		t.Error("Chance(1) false")
	}
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if s.Chance(0.25) {
			hits++
		}
	}
	if hits < n/4-300 || hits > n/4+300 {
		t.Errorf("Chance(0.25) hit %d/%d", hits, n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		p := s.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFill(t *testing.T) {
	s := New(17)
	buf := make([]int64, 100)
	s.Fill(buf, 50)
	for _, v := range buf {
		if v < 0 || v >= 50 {
			t.Fatalf("bounded fill out of range: %d", v)
		}
	}
	s.Fill(buf, 0)
	distinct := map[int64]bool{}
	for _, v := range buf {
		distinct[v] = true
	}
	if len(distinct) < 90 {
		t.Errorf("unbounded fill suspiciously repetitive: %d distinct", len(distinct))
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	_ = s.Uint64() // must not panic
}
