package prog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/isa"
)

// Binary program format:
//
//	magic "P64P", u32 version
//	u32 name length, name bytes
//	u32 instruction count, instructions (isa.EncodedSize bytes each)
//	u32 label count, { u32 name length, name bytes, u32 index }*
//	u32 data segment count, { i64 base, u32 word count, i64 words* }*
//
// All integers little-endian. Programs must be resolved before marshalling
// (encoded instructions carry numeric targets only).

var progMagic = [4]byte{'P', '6', '4', 'P'}

const progVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler.
func (p *Program) MarshalBinary() ([]byte, error) {
	if err := p.Resolve(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(progMagic[:])
	writeU32(&buf, progVersion)
	writeString(&buf, p.Name)

	enc, err := isa.EncodeAll(p.Insts)
	if err != nil {
		return nil, fmt.Errorf("prog: marshal %s: %w", p.Name, err)
	}
	writeU32(&buf, uint32(len(p.Insts)))
	buf.Write(enc)

	names := make([]string, 0, len(p.Labels))
	for name := range p.Labels {
		names = append(names, name)
	}
	sort.Strings(names)
	writeU32(&buf, uint32(len(names)))
	for _, name := range names {
		writeString(&buf, name)
		writeU32(&buf, uint32(p.Labels[name]))
	}

	bases := make([]int64, 0, len(p.Data))
	for base := range p.Data {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	writeU32(&buf, uint32(len(bases)))
	for _, base := range bases {
		writeI64(&buf, base)
		words := p.Data[base]
		writeU32(&buf, uint32(len(words)))
		for _, w := range words {
			writeI64(&buf, w)
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *Program) UnmarshalBinary(data []byte) error {
	r := &reader{data: data}
	var magic [4]byte
	r.bytes(magic[:])
	if magic != progMagic {
		return fmt.Errorf("prog: bad magic %q", magic)
	}
	if v := r.u32(); v != progVersion {
		return fmt.Errorf("prog: unsupported version %d", v)
	}
	name := r.str()
	n := int(r.u32())
	if n < 0 || n > 1<<24 {
		return fmt.Errorf("prog: implausible instruction count %d", n)
	}
	raw := make([]byte, n*isa.EncodedSize)
	r.bytes(raw)
	if r.err != nil {
		return fmt.Errorf("prog: truncated input: %w", r.err)
	}
	insts, err := isa.DecodeAll(raw)
	if err != nil {
		return err
	}
	labels := make(map[string]int)
	for i, ln := 0, int(r.u32()); i < ln && r.err == nil; i++ {
		lname := r.str()
		labels[lname] = int(r.u32())
	}
	dataSegs := make(map[int64][]int64)
	for i, dn := 0, int(r.u32()); i < dn && r.err == nil; i++ {
		base := r.i64()
		words := make([]int64, r.u32())
		for j := range words {
			words[j] = r.i64()
		}
		dataSegs[base] = words
	}
	if r.err != nil {
		return fmt.Errorf("prog: truncated input: %w", r.err)
	}
	p.Name = name
	p.Insts = insts
	p.Labels = labels
	p.Data = dataSegs
	return p.Validate()
}

// --- small read/write helpers shared with the trace codec ---------------

func writeU32(w io.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func writeI64(w io.Writer, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	w.Write(b[:])
}

func writeString(w io.Writer, s string) {
	writeU32(w, uint32(len(s)))
	io.WriteString(w, s)
}

type reader struct {
	data []byte
	err  error
}

func (r *reader) bytes(dst []byte) {
	if r.err != nil {
		return
	}
	if len(r.data) < len(dst) {
		r.err = io.ErrUnexpectedEOF
		return
	}
	copy(dst, r.data)
	r.data = r.data[len(dst):]
}

func (r *reader) u32() uint32 {
	var b [4]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) i64() int64 {
	var b [8]byte
	r.bytes(b[:])
	return int64(binary.LittleEndian.Uint64(b[:]))
}

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil || n > 1<<20 {
		if r.err == nil {
			r.err = fmt.Errorf("implausible string length %d", n)
		}
		return ""
	}
	b := make([]byte, n)
	r.bytes(b)
	return string(b)
}
