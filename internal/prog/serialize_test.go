package prog

import (
	"testing"

	"repro/internal/isa"
)

func sampleProgram() *Program {
	b := NewBuilder("sample")
	b.SetData(100, []int64{1, -2, 3})
	b.SetData(500, []int64{42})
	b.Movi(1, 5)
	b.Label("loop")
	b.Subi(1, 1, 1)
	b.Cmpi(isa.CmpGT, 2, 3, 1, 0)
	b.BrIf(2, "loop")
	b.Out(1)
	b.Halt(0)
	return b.MustProgram()
}

func TestProgramBinaryRoundTrip(t *testing.T) {
	p := sampleProgram()
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q Program
	if err := q.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name {
		t.Errorf("name %q", q.Name)
	}
	if len(q.Insts) != len(p.Insts) {
		t.Fatalf("inst counts differ")
	}
	for i := range p.Insts {
		want := p.Insts[i]
		want.Label = "" // labels are not encoded; targets are
		if q.Insts[i] != want {
			t.Errorf("inst %d: got %+v want %+v", i, q.Insts[i], want)
		}
	}
	if q.Labels["loop"] != p.Labels["loop"] {
		t.Errorf("label loop = %d", q.Labels["loop"])
	}
	if len(q.Data) != 2 || q.Data[100][1] != -2 || q.Data[500][0] != 42 {
		t.Errorf("data wrong: %v", q.Data)
	}
}

func TestProgramBinaryDeterministic(t *testing.T) {
	p := sampleProgram()
	a, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("marshalling is not deterministic")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var q Program
	if err := q.UnmarshalBinary(nil); err == nil {
		t.Error("empty input accepted")
	}
	if err := q.UnmarshalBinary([]byte("XXXX\x01\x00\x00\x00")); err == nil {
		t.Error("bad magic accepted")
	}
	p := sampleProgram()
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.UnmarshalBinary(data[:len(data)/2]); err == nil {
		t.Error("truncated input accepted")
	}
	// Corrupt the version.
	bad := append([]byte(nil), data...)
	bad[4] = 99
	if err := q.UnmarshalBinary(bad); err == nil {
		t.Error("bad version accepted")
	}
}

func TestMarshalUnresolvedFails(t *testing.T) {
	p := New("t")
	p.Insts = []isa.Inst{{Op: isa.OpBr, Label: "missing", Target: -1}}
	if _, err := p.MarshalBinary(); err == nil {
		t.Error("unresolved program marshalled")
	}
}
