package prog

import (
	"fmt"

	"repro/internal/isa"
)

// Builder incrementally constructs a Program. It offers low-level
// instruction emission plus structured control-flow helpers (If, IfElse,
// While) that generate conventional compare-and-branch code — the input
// shape the if-converter consumes.
//
// Guard predicates for structured control flow are drawn from a small
// cyclic pool (p1..p15): a structured guard is dead immediately after its
// branch, so reuse is safe, and keeping the pool small leaves predicate
// registers free for the if-converter.
type Builder struct {
	p        *Program
	nextTmp  int
	poolNext int
	err      error
}

// Cond describes a compare condition for structured helpers.
type Cond struct {
	CC     isa.CmpCond
	S1     isa.Reg
	S2     isa.Reg
	Imm    int64
	HasImm bool
}

// RR builds a register-register condition.
func RR(cc isa.CmpCond, s1, s2 isa.Reg) Cond {
	return Cond{CC: cc, S1: s1, S2: s2}
}

// RI builds a register-immediate condition.
func RI(cc isa.CmpCond, s1 isa.Reg, imm int64) Cond {
	return Cond{CC: cc, S1: s1, Imm: imm, HasImm: true}
}

// NewBuilder returns a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{p: New(name)}
}

// Program resolves labels, validates, and returns the built program.
func (b *Builder) Program() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.p.Resolve(); err != nil {
		return nil, err
	}
	if err := b.p.Validate(); err != nil {
		return nil, err
	}
	return b.p, nil
}

// MustProgram is Program but panics on error; intended for static workload
// definitions where a build error is a programming bug.
func (b *Builder) MustProgram() *Program {
	p, err := b.Program()
	if err != nil {
		panic(fmt.Sprintf("prog: building %s: %v", b.p.Name, err))
	}
	return p
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("prog builder %s: "+format, append([]any{b.p.Name}, args...)...)
	}
}

// Emit appends an instruction and returns a pointer to it so the caller can
// adjust fields (typically the guard: b.Emit(...).QP = p).
func (b *Builder) Emit(in isa.Inst) *isa.Inst {
	if in.IsDirectBranch() && in.Label == "" && in.Target == 0 {
		in.Target = -1
	}
	b.p.Insts = append(b.p.Insts, in)
	return &b.p.Insts[len(b.p.Insts)-1]
}

// Here returns the index of the next instruction to be emitted.
func (b *Builder) Here() int { return len(b.p.Insts) }

// Label binds name to the next instruction.
func (b *Builder) Label(name string) {
	if _, dup := b.p.Labels[name]; dup {
		b.fail("duplicate label %q", name)
		return
	}
	b.p.Labels[name] = len(b.p.Insts)
}

// NewLabel invents a fresh label name with the given prefix (not bound).
func (b *Builder) NewLabel(prefix string) string {
	b.nextTmp++
	return fmt.Sprintf(".%s%d", prefix, b.nextTmp)
}

// allocGuard returns the next guard predicate from the cyclic pool.
func (b *Builder) allocGuard() (t, f isa.PReg) {
	// Pairs (1,2), (3,4), ... (13,14), then wrap.
	const pairs = 7
	i := b.poolNext % pairs
	b.poolNext++
	return isa.PReg(1 + 2*i), isa.PReg(2 + 2*i)
}

// SetData records initial memory contents at base.
func (b *Builder) SetData(base int64, words []int64) { b.p.SetData(base, words) }

// --- Per-opcode helpers -------------------------------------------------

func (b *Builder) alu(op isa.Op, d, s1, s2 isa.Reg) *isa.Inst {
	return b.Emit(isa.Inst{Op: op, Dst: d, Src1: s1, Src2: s2})
}

func (b *Builder) alui(op isa.Op, d, s1 isa.Reg, imm int64) *isa.Inst {
	return b.Emit(isa.Inst{Op: op, Dst: d, Src1: s1, Imm: imm, HasImm: true})
}

// Add emits d = s1 + s2.
func (b *Builder) Add(d, s1, s2 isa.Reg) *isa.Inst { return b.alu(isa.OpAdd, d, s1, s2) }

// Addi emits d = s1 + imm.
func (b *Builder) Addi(d, s1 isa.Reg, imm int64) *isa.Inst { return b.alui(isa.OpAdd, d, s1, imm) }

// Sub emits d = s1 - s2.
func (b *Builder) Sub(d, s1, s2 isa.Reg) *isa.Inst { return b.alu(isa.OpSub, d, s1, s2) }

// Subi emits d = s1 - imm.
func (b *Builder) Subi(d, s1 isa.Reg, imm int64) *isa.Inst { return b.alui(isa.OpSub, d, s1, imm) }

// And emits d = s1 & s2.
func (b *Builder) And(d, s1, s2 isa.Reg) *isa.Inst { return b.alu(isa.OpAnd, d, s1, s2) }

// Andi emits d = s1 & imm.
func (b *Builder) Andi(d, s1 isa.Reg, imm int64) *isa.Inst { return b.alui(isa.OpAnd, d, s1, imm) }

// Or emits d = s1 | s2.
func (b *Builder) Or(d, s1, s2 isa.Reg) *isa.Inst { return b.alu(isa.OpOr, d, s1, s2) }

// Ori emits d = s1 | imm.
func (b *Builder) Ori(d, s1 isa.Reg, imm int64) *isa.Inst { return b.alui(isa.OpOr, d, s1, imm) }

// Xor emits d = s1 ^ s2.
func (b *Builder) Xor(d, s1, s2 isa.Reg) *isa.Inst { return b.alu(isa.OpXor, d, s1, s2) }

// Xori emits d = s1 ^ imm.
func (b *Builder) Xori(d, s1 isa.Reg, imm int64) *isa.Inst { return b.alui(isa.OpXor, d, s1, imm) }

// Shli emits d = s1 << imm.
func (b *Builder) Shli(d, s1 isa.Reg, imm int64) *isa.Inst { return b.alui(isa.OpShl, d, s1, imm) }

// Shri emits d = s1 >> imm (logical).
func (b *Builder) Shri(d, s1 isa.Reg, imm int64) *isa.Inst { return b.alui(isa.OpShr, d, s1, imm) }

// Sari emits d = s1 >> imm (arithmetic).
func (b *Builder) Sari(d, s1 isa.Reg, imm int64) *isa.Inst { return b.alui(isa.OpSar, d, s1, imm) }

// Mul emits d = s1 * s2.
func (b *Builder) Mul(d, s1, s2 isa.Reg) *isa.Inst { return b.alu(isa.OpMul, d, s1, s2) }

// Muli emits d = s1 * imm.
func (b *Builder) Muli(d, s1 isa.Reg, imm int64) *isa.Inst { return b.alui(isa.OpMul, d, s1, imm) }

// Div emits d = s1 / s2 (signed).
func (b *Builder) Div(d, s1, s2 isa.Reg) *isa.Inst { return b.alu(isa.OpDiv, d, s1, s2) }

// Modi emits d = s1 % imm (signed).
func (b *Builder) Modi(d, s1 isa.Reg, imm int64) *isa.Inst { return b.alui(isa.OpMod, d, s1, imm) }

// Mod emits d = s1 % s2 (signed).
func (b *Builder) Mod(d, s1, s2 isa.Reg) *isa.Inst { return b.alu(isa.OpMod, d, s1, s2) }

// Mov emits d = s.
func (b *Builder) Mov(d, s isa.Reg) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpMov, Dst: d, Src1: s})
}

// Movi emits d = imm.
func (b *Builder) Movi(d isa.Reg, imm int64) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpMovi, Dst: d, Imm: imm})
}

// Cmp emits pt, pf = cc(s1, s2) with normal write type.
func (b *Builder) Cmp(cc isa.CmpCond, pt, pf isa.PReg, s1, s2 isa.Reg) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpCmp, CC: cc, PD1: pt, PD2: pf, Src1: s1, Src2: s2})
}

// Cmpi emits pt, pf = cc(s1, imm) with normal write type.
func (b *Builder) Cmpi(cc isa.CmpCond, pt, pf isa.PReg, s1 isa.Reg, imm int64) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpCmp, CC: cc, PD1: pt, PD2: pf, Src1: s1, Imm: imm, HasImm: true})
}

// Ld emits d = mem[base + off].
func (b *Builder) Ld(d, base isa.Reg, off int64) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpLd, Dst: d, Src1: base, Imm: off})
}

// St emits mem[base + off] = val.
func (b *Builder) St(base isa.Reg, off int64, val isa.Reg) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpSt, Src1: base, Imm: off, Src2: val})
}

// Br emits an unconditional branch to label.
func (b *Builder) Br(label string) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpBr, Label: label, Target: -1})
}

// BrIf emits a branch to label guarded by p (taken iff p).
func (b *Builder) BrIf(p isa.PReg, label string) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpBr, QP: p, Label: label, Target: -1})
}

// Brl emits a branch-and-link to label, writing the return index to d.
func (b *Builder) Brl(d isa.Reg, label string) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpBrl, Dst: d, Label: label, Target: -1})
}

// Brr emits an indirect branch to the address in s.
func (b *Builder) Brr(s isa.Reg) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpBrr, Src1: s})
}

// Cloop emits a counted-loop branch: if ctr != 0 { ctr--; goto label }.
func (b *Builder) Cloop(ctr isa.Reg, label string) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpCloop, Dst: ctr, Label: label, Target: -1})
}

// Nop emits a no-op.
func (b *Builder) Nop() *isa.Inst { return b.Emit(isa.Inst{Op: isa.OpNop}) }

// Nopn emits n no-ops; tests and workloads use it to control the distance
// between a predicate define and its consuming branch.
func (b *Builder) Nopn(n int) {
	for i := 0; i < n; i++ {
		b.Nop()
	}
}

// Out emits the value of s to the program output stream.
func (b *Builder) Out(s isa.Reg) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpOut, Src1: s})
}

// Halt stops the program with the given exit code.
func (b *Builder) Halt(code int64) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpHalt, Imm: code})
}

// Trap emits a trap (error halt).
func (b *Builder) Trap() *isa.Inst { return b.Emit(isa.Inst{Op: isa.OpTrap}) }

// --- Structured control flow ---------------------------------------------

// emitCond materialises cond into a fresh guard pair and returns them.
func (b *Builder) emitCond(c Cond) (pt, pf isa.PReg) {
	pt, pf = b.allocGuard()
	in := isa.Inst{Op: isa.OpCmp, CC: c.CC, PD1: pt, PD2: pf, Src1: c.S1}
	if c.HasImm {
		in.Imm, in.HasImm = c.Imm, true
	} else {
		in.Src2 = c.S2
	}
	b.Emit(in)
	return pt, pf
}

// If emits: if cond { then() }.
func (b *Builder) If(c Cond, then func()) {
	_, pf := b.emitCond(c)
	end := b.NewLabel("endif")
	b.BrIf(pf, end)
	then()
	b.Label(end)
}

// IfElse emits: if cond { then() } else { els() }.
func (b *Builder) IfElse(c Cond, then, els func()) {
	_, pf := b.emitCond(c)
	elseL := b.NewLabel("else")
	end := b.NewLabel("endif")
	b.BrIf(pf, elseL)
	then()
	b.Br(end)
	b.Label(elseL)
	els()
	b.Label(end)
}

// While emits a top-tested loop: while cond { body() }.
func (b *Builder) While(c Cond, body func()) {
	head := b.NewLabel("while")
	end := b.NewLabel("wend")
	b.Label(head)
	_, pf := b.emitCond(c)
	b.BrIf(pf, end)
	body()
	b.Br(head)
	b.Label(end)
}

// DoWhile emits a bottom-tested loop: do { body() } while cond. The body
// always runs at least once, and the loop closes with a single guarded
// backward branch — the shape hyperblock formation likes best.
func (b *Builder) DoWhile(c Cond, body func()) {
	head := b.NewLabel("do")
	b.Label(head)
	body()
	pt, _ := b.emitCond(c)
	b.BrIf(pt, head)
}

// SwitchCase is one arm of a Switch.
type SwitchCase struct {
	Value int64
	Body  func()
}

// Switch emits an if-else chain comparing s against each case value in
// order, running the first matching body, or def (which may be nil) when
// nothing matches — the dispatch shape interpreters use.
func (b *Builder) Switch(s isa.Reg, cases []SwitchCase, def func()) {
	end := b.NewLabel("swend")
	for _, c := range cases {
		c := c
		next := b.NewLabel("swnext")
		_, pf := b.emitCond(RI(isa.CmpEQ, s, c.Value))
		b.BrIf(pf, next)
		c.Body()
		b.Br(end)
		b.Label(next)
	}
	if def != nil {
		def()
	}
	b.Label(end)
}

// CountedLoop emits a cloop-based loop running body n times. It clobbers
// ctr. n must be >= 1.
func (b *Builder) CountedLoop(ctr isa.Reg, n int64, body func()) {
	if n < 1 {
		b.fail("CountedLoop with n=%d < 1", n)
		return
	}
	b.Movi(ctr, n-1)
	head := b.NewLabel("loop")
	b.Label(head)
	body()
	b.Cloop(ctr, head)
}
