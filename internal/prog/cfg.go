package prog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// Block is a basic block: a maximal straight-line instruction range
// [Start, End) ending at a branch, halt, trap, or the start of another
// block.
type Block struct {
	Index int
	Start int // first instruction index
	End   int // one past the last instruction index
	Succs []int
	Preds []int
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return b.End - b.Start }

// Terminator returns the index of the block's last instruction, or -1 for
// an empty block.
func (b *Block) Terminator() int {
	if b.Len() == 0 {
		return -1
	}
	return b.End - 1
}

// CFG is the control-flow graph of a program. Block 0 is the entry block.
type CFG struct {
	Prog    *Program
	Blocks  []*Block
	blockOf []int // instruction index -> block index
}

// BlockOf returns the block containing instruction index i.
func (g *CFG) BlockOf(i int) *Block {
	return g.Blocks[g.blockOf[i]]
}

// blockEnders reports whether the instruction terminates a basic block.
func blockEnder(in *isa.Inst) bool {
	if in.IsBranch() {
		return true
	}
	switch in.Op {
	case isa.OpHalt, isa.OpTrap:
		return true
	}
	return false
}

// BuildCFG constructs the control-flow graph for a resolved program.
//
// Edge rules:
//   - (p0) br T: unconditional, single successor T.
//   - (p) br T with p != p0, and cloop: two successors (target, fallthrough).
//   - brl (call): successors are the target and the fallthrough; the
//     fallthrough edge models the return.
//   - brr (indirect): no static target successors; a fallthrough edge is
//     added when guarded, since a false guard nullifies the branch.
//   - halt/trap: no successors when unguarded, fallthrough when guarded.
func BuildCFG(p *Program) (*CFG, error) {
	if err := p.Resolve(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Insts)
	if n == 0 {
		return &CFG{Prog: p}, nil
	}
	leader := make([]bool, n)
	leader[0] = true
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.IsDirectBranch() {
			leader[in.Target] = true
		}
		if blockEnder(in) && i+1 < n {
			leader[i+1] = true
		}
	}
	// Labels referenced only via Labels map (e.g. data labels for branches
	// resolved later) also start blocks.
	for _, idx := range p.Labels {
		if idx < n {
			leader[idx] = true
		}
	}

	g := &CFG{Prog: p, blockOf: make([]int, n)}
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leader[i] {
			b := &Block{Index: len(g.Blocks), Start: start, End: i}
			g.Blocks = append(g.Blocks, b)
			for j := start; j < i; j++ {
				g.blockOf[j] = b.Index
			}
			start = i
		}
	}

	addEdge := func(from, toInst int) {
		if toInst >= n {
			return // branch to end-of-program label: treated as exit
		}
		to := g.blockOf[toInst]
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
	}
	for _, b := range g.Blocks {
		t := b.Terminator()
		if t < 0 {
			continue
		}
		in := &p.Insts[t]
		switch {
		case in.Op == isa.OpBr && in.QP == isa.P0:
			addEdge(b.Index, in.Target)
		case in.Op == isa.OpBr || in.Op == isa.OpCloop:
			addEdge(b.Index, in.Target)
			addEdge(b.Index, t+1)
		case in.Op == isa.OpBrl:
			addEdge(b.Index, in.Target)
			addEdge(b.Index, t+1)
		case in.Op == isa.OpBrr:
			if in.QP != isa.P0 {
				addEdge(b.Index, t+1)
			}
		case in.Op == isa.OpHalt || in.Op == isa.OpTrap:
			if in.QP != isa.P0 {
				addEdge(b.Index, t+1)
			}
		default:
			// Block ended because the next instruction is a leader.
			addEdge(b.Index, t+1)
		}
	}
	// Deduplicate successor lists (a conditional branch to the fallthrough
	// produces a duplicate edge) and build predecessor lists.
	for _, b := range g.Blocks {
		b.Succs = dedupInts(b.Succs)
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			g.Blocks[s].Preds = append(g.Blocks[s].Preds, b.Index)
		}
	}
	for _, b := range g.Blocks {
		b.Preds = dedupInts(b.Preds)
	}
	return g, nil
}

func dedupInts(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// String renders the CFG structure for debugging.
func (g *CFG) String() string {
	var b strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&b, "B%d [%d,%d) -> %v (preds %v)\n",
			blk.Index, blk.Start, blk.End, blk.Succs, blk.Preds)
	}
	return b.String()
}
