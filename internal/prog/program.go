// Package prog provides the program container for P64 code: an instruction
// sequence with labels and initial data, label resolution, validation,
// disassembly, and a builder API used by workloads and tests.
package prog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// Program is a P64 program: a flat instruction sequence entered at index 0,
// optional named labels, and initial memory contents.
type Program struct {
	Name   string
	Insts  []isa.Inst
	Labels map[string]int // label name -> instruction index

	// Data maps base addresses to initial memory words. The emulator loads
	// each slice at its base before execution.
	Data map[int64][]int64
}

// New returns an empty program.
func New(name string) *Program {
	return &Program{
		Name:   name,
		Labels: make(map[string]int),
		Data:   make(map[int64][]int64),
	}
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	q := New(p.Name)
	q.Insts = append([]isa.Inst(nil), p.Insts...)
	for k, v := range p.Labels {
		q.Labels[k] = v
	}
	for k, v := range p.Data {
		q.Data[k] = append([]int64(nil), v...)
	}
	return q
}

// SetData records initial memory contents at base.
func (p *Program) SetData(base int64, words []int64) {
	p.Data[base] = append([]int64(nil), words...)
}

// Resolve fills in the Target of every direct branch from its Label. It is
// idempotent; instructions with a resolved target and no label are left
// alone. A re-resolution of an already-resolved program performs no
// writes, so any number of goroutines may share one resolved program
// (every construction path — Builder.Build, the assembler, deserialize —
// resolves before the program is published).
func (p *Program) Resolve() error {
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Label == "" {
			continue
		}
		t, ok := p.Labels[in.Label]
		if !ok {
			return fmt.Errorf("prog %s: instruction %d: undefined label %q", p.Name, i, in.Label)
		}
		switch {
		case in.IsDirectBranch():
			if in.Target != t {
				in.Target = t
			}
		case in.Op == isa.OpMovi:
			// movi of a label materialises a code address (used with brr).
			if in.Imm != int64(t) {
				in.Imm = int64(t)
			}
		}
	}
	return nil
}

// Validate checks every instruction and that all resolved branch targets
// and label positions are within the program.
func (p *Program) Validate() error {
	for name, idx := range p.Labels {
		if idx < 0 || idx > len(p.Insts) {
			return fmt.Errorf("prog %s: label %q at invalid index %d", p.Name, name, idx)
		}
	}
	for i := range p.Insts {
		in := &p.Insts[i]
		if err := in.Validate(); err != nil {
			return fmt.Errorf("prog %s: instruction %d: %w", p.Name, i, err)
		}
		if in.IsDirectBranch() && in.Label == "" {
			if in.Target < 0 || in.Target >= len(p.Insts) {
				return fmt.Errorf("prog %s: instruction %d: branch target %d out of range", p.Name, i, in.Target)
			}
		}
	}
	return nil
}

// MaxPredUsed returns the highest predicate register number referenced
// anywhere in the program (as guard, destination, or source).
func (p *Program) MaxPredUsed() isa.PReg {
	var max isa.PReg
	up := func(r isa.PReg) {
		if r > max {
			max = r
		}
	}
	for i := range p.Insts {
		in := &p.Insts[i]
		up(in.QP)
		for _, d := range in.PredDests() {
			up(d)
		}
		for _, s := range in.PredSources() {
			up(s)
		}
	}
	return max
}

// targetLabels returns a map from instruction index to a display label,
// inventing names for unlabeled branch targets.
func (p *Program) targetLabels() map[int]string {
	names := make(map[int]string)
	for name, idx := range p.Labels {
		if _, ok := names[idx]; !ok {
			names[idx] = name
		}
	}
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.IsDirectBranch() && in.Target >= 0 {
			if _, ok := names[in.Target]; !ok {
				names[in.Target] = fmt.Sprintf(".L%d", in.Target)
			}
		}
	}
	return names
}

// String disassembles the program with labels.
func (p *Program) String() string {
	names := p.targetLabels()
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s (%d instructions)\n", p.Name, len(p.Insts))
	bases := make([]int64, 0, len(p.Data))
	for base := range p.Data {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	for _, base := range bases {
		fmt.Fprintf(&b, ".data %d =", base)
		for _, w := range p.Data[base] {
			fmt.Fprintf(&b, " %d", w)
		}
		b.WriteByte('\n')
	}
	for i := range p.Insts {
		if name, ok := names[i]; ok {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		in := p.Insts[i]
		if in.IsDirectBranch() && in.Target >= 0 {
			in.Label = names[in.Target]
		}
		fmt.Fprintf(&b, "\t%s\n", in.String())
	}
	// A label may point one past the last instruction (an end label).
	if name, ok := names[len(p.Insts)]; ok {
		fmt.Fprintf(&b, "%s:\n", name)
	}
	return b.String()
}

// Stats summarises static program properties.
type Stats struct {
	Insts          int
	Branches       int
	RegionBranches int
	PredDefs       int
	Guarded        int // instructions with a non-p0 qualifying predicate
}

// StaticStats computes static instruction-mix statistics.
func (p *Program) StaticStats() Stats {
	var s Stats
	s.Insts = len(p.Insts)
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.IsBranch() {
			s.Branches++
			if in.Region {
				s.RegionBranches++
			}
		}
		if in.IsPredDef() {
			s.PredDefs++
		}
		if in.QP != isa.P0 {
			s.Guarded++
		}
	}
	return s
}
