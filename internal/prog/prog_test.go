package prog

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("t")
	b.Movi(1, 5)
	b.Addi(2, 1, 3)
	b.Out(2)
	b.Halt(0)
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 4 {
		t.Fatalf("got %d insts", len(p.Insts))
	}
	if p.Insts[1].Op != isa.OpAdd || !p.Insts[1].HasImm || p.Insts[1].Imm != 3 {
		t.Errorf("addi wrong: %+v", p.Insts[1])
	}
}

func TestBuilderLabelsResolve(t *testing.T) {
	b := NewBuilder("t")
	b.Movi(1, 3)
	b.Label("loop")
	b.Subi(1, 1, 1)
	b.Cmpi(isa.CmpGT, 1, 2, 1, 0)
	b.BrIf(1, "loop")
	b.Halt(0)
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	br := p.Insts[3]
	if br.Target != 1 {
		t.Errorf("branch target = %d, want 1", br.Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Br("nowhere")
	b.Halt(0)
	if _, err := b.Program(); err == nil {
		t.Fatal("undefined label accepted")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x")
	b.Halt(0)
	b.Label("x")
	if _, err := b.Program(); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestResolveMoviLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Emit(isa.Inst{Op: isa.OpMovi, Dst: 1, Label: "tgt"})
	b.Brr(1)
	b.Label("tgt")
	b.Halt(0)
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Imm != 2 {
		t.Errorf("movi label resolved to %d, want 2", p.Insts[0].Imm)
	}
}

func TestValidateBadTarget(t *testing.T) {
	p := New("t")
	p.Insts = []isa.Inst{{Op: isa.OpBr, Target: 99}}
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New("t")
	p.Insts = []isa.Inst{{Op: isa.OpHalt}}
	p.Labels["a"] = 0
	p.SetData(10, []int64{1, 2})
	q := p.Clone()
	q.Insts[0].Imm = 9
	q.Labels["a"] = 5
	q.Data[10][0] = 99
	if p.Insts[0].Imm != 0 || p.Labels["a"] != 0 || p.Data[10][0] != 1 {
		t.Error("clone shares state with original")
	}
}

func TestMaxPredUsed(t *testing.T) {
	b := NewBuilder("t")
	b.Cmpi(isa.CmpEQ, 5, 9, 1, 0)
	b.Emit(isa.Inst{Op: isa.OpPand, PD1: 11, PS1: 5, PS2: 9})
	b.Halt(0)
	p := b.MustProgram()
	if got := p.MaxPredUsed(); got != 11 {
		t.Errorf("MaxPredUsed = %d, want 11", got)
	}
}

func TestStaticStats(t *testing.T) {
	b := NewBuilder("t")
	b.Cmpi(isa.CmpEQ, 1, 2, 3, 0)
	b.BrIf(1, "end")
	b.Emit(isa.Inst{Op: isa.OpBr, QP: 2, Label: "end", Region: true})
	b.Label("end")
	b.Halt(0)
	p := b.MustProgram()
	s := p.StaticStats()
	if s.Insts != 4 || s.Branches != 2 || s.RegionBranches != 1 || s.PredDefs != 1 || s.Guarded != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDisassemblyContainsLabels(t *testing.T) {
	b := NewBuilder("t")
	b.Movi(1, 1)
	b.Label("top")
	b.Out(1)
	b.Br("top")
	p := b.MustProgram()
	s := p.String()
	if !strings.Contains(s, "top:") || !strings.Contains(s, "br top") {
		t.Errorf("disassembly missing labels:\n%s", s)
	}
}

func TestStructuredIfElse(t *testing.T) {
	b := NewBuilder("t")
	b.Movi(1, 10)
	b.IfElse(RI(isa.CmpGT, 1, 5),
		func() { b.Movi(2, 100) },
		func() { b.Movi(2, 200) },
	)
	b.Out(2)
	b.Halt(0)
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	// Shape: movi, cmp, guarded br, movi(then), br, movi(else), out, halt.
	if len(p.Insts) != 8 {
		t.Fatalf("got %d insts:\n%s", len(p.Insts), p)
	}
	if p.Insts[2].Op != isa.OpBr || p.Insts[2].QP == isa.P0 {
		t.Errorf("expected guarded branch at 2: %+v", p.Insts[2])
	}
}

func TestCountedLoopRejectsZero(t *testing.T) {
	b := NewBuilder("t")
	b.CountedLoop(1, 0, func() {})
	if _, err := b.Program(); err == nil {
		t.Fatal("CountedLoop(0) accepted")
	}
}

func TestDoWhileRunsAtLeastOnce(t *testing.T) {
	b := NewBuilder("t")
	b.Movi(1, 0) // condition already false
	b.Movi(2, 0)
	b.DoWhile(RI(isa.CmpGT, 1, 0), func() {
		b.Addi(2, 2, 1)
	})
	b.Halt(0)
	p := b.MustProgram()
	// Structure: the body precedes a single guarded backward branch.
	var backward int
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Op == isa.OpBr && in.Target <= i {
			backward++
			if in.QP == isa.P0 {
				t.Error("do-while back edge unguarded")
			}
		}
	}
	if backward != 1 {
		t.Errorf("do-while has %d backward branches", backward)
	}
}

func TestSwitchShape(t *testing.T) {
	b := NewBuilder("t")
	b.Movi(1, 2)
	b.Switch(1, []SwitchCase{
		{Value: 1, Body: func() { b.Movi(2, 10) }},
		{Value: 2, Body: func() { b.Movi(2, 20) }},
	}, func() { b.Movi(2, 99) })
	b.Out(2)
	b.Halt(0)
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	// Two compares, two guarded branches, two unconditional jumps to end.
	s := p.StaticStats()
	if s.PredDefs != 2 || s.Branches != 4 {
		t.Errorf("switch stats: %+v", s)
	}
}

func TestSwitchWithoutDefault(t *testing.T) {
	b := NewBuilder("t")
	b.Movi(1, 7)
	b.Switch(1, []SwitchCase{{Value: 1, Body: func() { b.Movi(2, 1) }}}, nil)
	b.Halt(0)
	if _, err := b.Program(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildCFGDiamond(t *testing.T) {
	b := NewBuilder("t")
	b.Movi(1, 1)
	b.IfElse(RI(isa.CmpGT, 1, 0),
		func() { b.Movi(2, 1) },
		func() { b.Movi(2, 2) },
	)
	b.Out(2)
	b.Halt(0)
	p := b.MustProgram()
	g, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks: entry(movi,cmp,br), then(movi,br), else(movi), join(out,halt).
	if len(g.Blocks) != 4 {
		t.Fatalf("got %d blocks:\n%s\n%s", len(g.Blocks), g, p)
	}
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Errorf("entry succs = %v", entry.Succs)
	}
	join := g.Blocks[3]
	if len(join.Preds) != 2 {
		t.Errorf("join preds = %v", join.Preds)
	}
	if len(join.Succs) != 0 {
		t.Errorf("join succs = %v", join.Succs)
	}
}

func TestBuildCFGLoop(t *testing.T) {
	b := NewBuilder("t")
	b.Movi(1, 5)
	b.While(RI(isa.CmpGT, 1, 0), func() {
		b.Subi(1, 1, 1)
	})
	b.Halt(0)
	p := b.MustProgram()
	g, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	// Find a back edge: some block whose successor has a smaller start.
	found := false
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if g.Blocks[s].Start < blk.Start {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no back edge in loop CFG:\n%s", g)
	}
}

func TestBuildCFGUnconditionalNoFallthrough(t *testing.T) {
	b := NewBuilder("t")
	b.Br("end")
	b.Movi(1, 1) // dead
	b.Label("end")
	b.Halt(0)
	p := b.MustProgram()
	g, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks[0].Succs) != 1 {
		t.Errorf("unconditional branch block has succs %v", g.Blocks[0].Succs)
	}
}

func TestBuildCFGGuardedHaltFallsThrough(t *testing.T) {
	b := NewBuilder("t")
	b.Emit(isa.Inst{Op: isa.OpHalt, QP: 3})
	b.Halt(1)
	p := b.MustProgram()
	g, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks[0].Succs) != 1 {
		t.Errorf("guarded halt should fall through: %v", g.Blocks[0].Succs)
	}
}

func TestBlockOf(t *testing.T) {
	b := NewBuilder("t")
	b.Movi(1, 1)
	b.Br("end")
	b.Label("end")
	b.Halt(0)
	p := b.MustProgram()
	g, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.BlockOf(0).Index != 0 || g.BlockOf(2).Index != 1 {
		t.Errorf("BlockOf wrong: %d %d", g.BlockOf(0).Index, g.BlockOf(2).Index)
	}
}
