package ifconv

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

type emitter struct {
	g        *prog.CFG
	regions  []*region
	regionOf []int // block index -> index into regions, or -1
	cfg      Config

	out      []isa.Inst
	startMap map[int]int // old instruction index (block starts) -> new index
	infos    []RegionInfo
	basePred isa.PReg
}

func newEmitter(g *prog.CFG, regions []*region, cfg Config) *emitter {
	e := &emitter{
		g:        g,
		regions:  regions,
		regionOf: make([]int, len(g.Blocks)),
		startMap: make(map[int]int),
		basePred: g.Prog.MaxPredUsed() + 1,
		cfg:      cfg,
	}
	for i := range e.regionOf {
		e.regionOf[i] = -1
	}
	for ri, r := range regions {
		for b := range r.blocks {
			e.regionOf[b] = ri
		}
	}
	return e
}

func (e *emitter) emit() (*prog.Program, []RegionInfo, error) {
	old := e.g.Prog
	for _, blk := range e.g.Blocks {
		ri := e.regionOf[blk.Index]
		if ri >= 0 {
			r := e.regions[ri]
			if blk.Index != r.head {
				continue // interior blocks are emitted as part of the head
			}
			e.startMap[blk.Start] = len(e.out)
			if err := e.emitRegion(r); err != nil {
				return nil, nil, err
			}
			continue
		}
		e.startMap[blk.Start] = len(e.out)
		e.out = append(e.out, old.Insts[blk.Start:blk.End]...)
	}
	e.startMap[len(old.Insts)] = len(e.out)

	// Retarget all direct branches through the start map.
	for i := range e.out {
		in := &e.out[i]
		if !in.IsDirectBranch() || in.Target < 0 {
			continue
		}
		nt, ok := e.startMap[in.Target]
		if !ok {
			return nil, nil, fmt.Errorf("branch at new index %d targets dropped instruction %d", i, in.Target)
		}
		in.Target = nt
		in.Label = "" // labels are remapped separately; avoid stale re-resolution
	}

	np := prog.New(old.Name + ".ifc")
	np.Insts = e.out
	for name, idx := range old.Labels {
		if nidx, ok := e.startMap[idx]; ok {
			np.Labels[name] = nidx
		}
		// Labels into dropped region interiors are unreferenced by
		// construction (single-entry regions) and are discarded.
	}
	for base, words := range old.Data {
		np.SetData(base, words)
	}
	if err := np.Validate(); err != nil {
		return nil, nil, fmt.Errorf("emitted program invalid: %w", err)
	}
	return np, e.infos, nil
}

// hoistCompares bubbles every compare in out[start:] upward as far as its
// dependences allow, never crossing a branch, halt, or trap (control
// boundaries keep the reasoning local to one straight-line stretch of the
// hyperblock). A compare stops below any instruction that writes one of
// its register sources, writes its qualifying predicate, or reads or
// writes its destination predicates.
func hoistCompares(out []isa.Inst, start int) {
	for i := start + 1; i < len(out); i++ {
		if out[i].Op != isa.OpCmp {
			continue
		}
		j := i
		for j > start && canHoistPast(&out[j-1], &out[j]) {
			out[j-1], out[j] = out[j], out[j-1]
			j--
		}
	}
}

// canHoistPast reports whether compare c may move above instruction i.
func canHoistPast(i, c *isa.Inst) bool {
	if i.IsBranch() || i.Op == isa.OpHalt || i.Op == isa.OpTrap {
		return false
	}
	// RAW on register sources.
	if d, ok := i.RegDest(); ok {
		for _, s := range c.RegSources() {
			if s == d {
				return false
			}
		}
	}
	for _, pd := range i.PredDests() {
		// Write to the compare's guard.
		if pd == c.QP {
			return false
		}
		// WAW on the compare's destinations.
		if pd == c.PD1 || pd == c.PD2 {
			return false
		}
	}
	// WAR: i reads a predicate the compare writes.
	reads := append([]isa.PReg{i.QP}, i.PredSources()...)
	for _, pr := range reads {
		if pr == c.PD1 || pr == c.PD2 {
			return false
		}
	}
	return true
}

// coversLayout reports whether block j can run under p0 inside the region:
// true when every execution that fetches j's layout position has logically
// passed through j. Execution proceeds linearly through the hyperblock, so
// the only way to reach j's position without passing through j is to be on
// a path that continues inside the region into a block laid out after j.
// We therefore search from the head along in-region edges, refusing to
// enter j; if any reachable block sits after j in the layout (reverse
// postorder), some path bypasses j while still fetching it. Escapes before
// j — exit branches, back edges to the head, halts — are fine: control has
// left the hyperblock before reaching j's position.
func coversLayout(g *prog.CFG, r *region, pos map[int]int, j int) bool {
	jpos := pos[j]
	seen := map[int]bool{r.head: true}
	stack := []int{r.head}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if pos[b] > jpos {
			return false
		}
		for _, s := range g.Blocks[b].Succs {
			if s == j || s == r.head || !r.blocks[s] || seen[s] {
				continue
			}
			seen[s] = true
			stack = append(stack, s)
		}
	}
	return true
}

// layoutPositions maps each region block to its layout position.
func layoutPositions(r *region) map[int]int {
	pos := make(map[int]int, len(r.layout))
	for i, b := range r.layout {
		pos[b] = i
	}
	return pos
}

// regionHasGuardedInterior reports whether any non-terminator region
// instruction (or a halt/trap terminator) already carries a non-p0 guard;
// such instructions need the region's shared scratch predicate.
func regionHasGuardedInterior(g *prog.CFG, r *region) bool {
	p := g.Prog
	for b := range r.blocks {
		blk := g.Blocks[b]
		t := blk.Terminator()
		for i := blk.Start; i < blk.End; i++ {
			in := &p.Insts[i]
			if in.QP == isa.P0 {
				continue
			}
			if i == t && in.IsBranch() {
				continue // branch guards are rewritten, not re-guarded
			}
			return true
		}
	}
	return false
}

// regionReadsPred reports whether any region instruction other than the
// branch at branchIdx reads predicate pr (as a guard or predicate source).
func regionReadsPred(g *prog.CFG, r *region, pr isa.PReg, branchIdx int) bool {
	p := g.Prog
	for b := range r.blocks {
		blk := g.Blocks[b]
		for i := blk.Start; i < blk.End; i++ {
			if i == branchIdx {
				continue
			}
			in := &p.Insts[i]
			if in.QP == pr {
				return true
			}
			for _, ps := range in.PredSources() {
				if ps == pr {
					return true
				}
			}
		}
	}
	return false
}

// emitRegion lays the region's blocks out as one predicated hyperblock.
func (e *emitter) emitRegion(r *region) error {
	p := e.g.Prog
	next := e.basePred
	alloc := func() (isa.PReg, error) {
		if next >= isa.NumPRegs {
			return 0, fmt.Errorf("region at block %d: predicate registers exhausted", r.head)
		}
		pr := next
		next++
		return pr, nil
	}

	info := RegionInfo{Head: r.head, Blocks: r.layout, NewStart: len(e.out)}
	lastExit := -1           // index in e.out of the most recently emitted exit branch
	var scratchPred isa.PReg // shared guard-AND scratch, allocated on demand

	// Block guard predicates. A block that every in-region execution
	// reaching its layout position must have logically passed through (a
	// full-coverage join) runs under p0, as a hyperblock compiler would
	// emit it. Other multi-predecessor blocks get an accumulator predicate
	// initialised to false in a region preamble and OR-ed as each incoming
	// edge's predicate becomes available; single-predecessor blocks reuse
	// the edge predicate directly.
	bp := map[int]isa.PReg{r.head: isa.P0}
	multi := map[int]bool{}
	covered := map[int]bool{}
	pos := layoutPositions(r)
	for _, b := range r.layout {
		if b == r.head {
			continue
		}
		if coversLayout(e.g, r, pos, b) {
			covered[b] = true
			bp[b] = isa.P0
			continue
		}
		if len(e.g.Blocks[b].Preds) >= 2 {
			pr, err := alloc()
			if err != nil {
				return err
			}
			multi[b] = true
			bp[b] = pr
			e.out = append(e.out, isa.Inst{Op: isa.OpPinit, PD1: pr})
		}
	}

	for _, b := range r.layout {
		blk := e.g.Blocks[b]
		guard, ok := bp[b]
		if !ok {
			return fmt.Errorf("region at block %d: block %d emitted before its guard was defined", r.head, b)
		}

		lastIdx := blk.End - 1
		last := &p.Insts[lastIdx]
		isCondBr := last.Op == isa.OpBr && last.QP != isa.P0
		isUncondBr := last.Op == isa.OpBr && last.QP == isa.P0
		isCloop := last.Op == isa.OpCloop

		bodyEnd := blk.End
		if isCondBr || isUncondBr || isCloop {
			bodyEnd = lastIdx
		}

		// For a conditional branch, rewrite its defining compare in place:
		// guard it with the block predicate and make it unconditional-type,
		// so the new destinations become full path predicates
		// (guard && cond, guard && !cond).
		defIdx := -1
		var np1, np2, tp, fp isa.PReg
		if isCondBr {
			defIdx = findDefCmp(p, blk, last.QP)
			if defIdx < 0 {
				return fmt.Errorf("region at block %d: no defining compare for branch guard %s", r.head, last.QP)
			}
			var err error
			if np1, err = alloc(); err != nil {
				return err
			}
			if np2, err = alloc(); err != nil {
				return err
			}
			if p.Insts[defIdx].PD1 == last.QP {
				tp, fp = np1, np2
			} else {
				tp, fp = np2, np1
			}
		}

		for i := blk.Start; i < bodyEnd; i++ {
			in := p.Insts[i]
			switch {
			case i == defIdx:
				// If the compare's original destinations are still read
				// inside the region (e.g. as guards of predicated source
				// code), keep the original compare alongside the rewritten
				// one so their values stay maintained.
				orig := p.Insts[i]
				if regionReadsPred(e.g, r, orig.PD1, lastIdx) ||
					regionReadsPred(e.g, r, orig.PD2, lastIdx) {
					kept := orig
					kept.QP = guard
					e.out = append(e.out, kept)
				}
				in.QP = guard
				in.CT = isa.CmpUnc
				in.PD1, in.PD2 = np1, np2
			case in.QP == isa.P0:
				in.QP = guard
			case guard == isa.P0:
				// Already-guarded instruction in an unconditional block:
				// its own guard suffices.
			default:
				// Already-guarded instruction under a path predicate: it
				// must execute only when both hold. The shared scratch
				// predicate is recomputed immediately before each use.
				if scratchPred == 0 {
					var err error
					if scratchPred, err = alloc(); err != nil {
						return err
					}
				}
				e.out = append(e.out, isa.Inst{
					Op: isa.OpPand, PD1: scratchPred, PS1: guard, PS2: in.QP,
				})
				in.QP = scratchPred
			}
			e.out = append(e.out, in)
		}

		// Derive the block's outgoing edges with their path predicates.
		type edge struct {
			pred isa.PReg
			succ int
		}
		var edges []edge
		switch {
		case isUncondBr:
			edges = append(edges, edge{guard, e.g.BlockOf(last.Target).Index})
		case isCondBr:
			taken := e.g.BlockOf(last.Target).Index
			fall := e.g.BlockOf(lastIdx + 1).Index
			if taken == fall {
				// Degenerate branch to its own fallthrough: one edge under
				// the block guard.
				edges = append(edges, edge{guard, taken})
			} else {
				edges = append(edges, edge{tp, taken}, edge{fp, fall})
			}
		case isCloop:
			// The loop branch cannot be eliminated (it decrements its
			// counter), so synthesise its path predicates and keep it,
			// guarded, as a region-based branch.
			ctp, err := alloc()
			if err != nil {
				return err
			}
			cfp, err := alloc()
			if err != nil {
				return err
			}
			e.out = append(e.out, isa.Inst{
				Op: isa.OpCmp, QP: guard, CC: isa.CmpNE, CT: isa.CmpUnc,
				PD1: ctp, PD2: cfp, Src1: last.Dst, Imm: 0, HasImm: true,
			})
			e.out = append(e.out, isa.Inst{
				Op: isa.OpCloop, QP: ctp, Dst: last.Dst,
				Target: last.Target, Region: true,
			})
			info.RegionBranches++
			edges = append(edges, edge{cfp, e.g.BlockOf(lastIdx + 1).Index})
		default:
			// halt/trap terminators were emitted guarded in the body and
			// have no successors; anything else falls through.
			if last.Op != isa.OpHalt && last.Op != isa.OpTrap {
				edges = append(edges, edge{guard, e.g.BlockOf(blk.End).Index})
			}
		}

		// Contributions to in-region successors first, then exits, so a
		// taken exit cannot skip a predicate accumulation that a later
		// block in this execution would need (it cannot need one — control
		// leaves — but the fixed order keeps the code deterministic).
		var exits []edge
		for _, ed := range edges {
			if ed.succ != r.head && r.blocks[ed.succ] {
				if covered[ed.succ] {
					// Full-coverage join: runs under p0, no accumulation.
				} else if multi[ed.succ] {
					acc := bp[ed.succ]
					e.out = append(e.out, isa.Inst{Op: isa.OpPor, PD1: acc, PS1: acc, PS2: ed.pred})
				} else {
					bp[ed.succ] = ed.pred
				}
				continue
			}
			exits = append(exits, ed)
		}
		for _, ed := range exits {
			br := isa.Inst{
				Op: isa.OpBr, QP: ed.pred,
				Target: e.g.Blocks[ed.succ].Start,
				Region: ed.pred != isa.P0,
			}
			lastExit = len(e.out)
			e.out = append(e.out, br)
			if br.Region {
				info.RegionBranches++
			}
		}

		if isCondBr {
			taken := e.g.BlockOf(last.Target).Index
			if taken != r.head && r.blocks[taken] {
				info.EliminatedBranches++
			}
		}
		if isUncondBr {
			t := e.g.BlockOf(last.Target).Index
			if t != r.head && r.blocks[t] {
				info.EliminatedBranches++
			}
		}
	}

	// Compare scheduling: hoist each compare in the hyperblock as early as
	// its dependences allow. Predicated-code compilers schedule compares
	// early so that guard predicates resolve before the branches (and
	// false-path code) that consume them reach fetch — this is what gives
	// the squash false path filter its window.
	if !e.cfg.NoCompareScheduling {
		hoistCompares(e.out, info.NewStart)
	}

	// Every path through the hyperblock exits exactly once, so execution
	// that reaches the final exit branch without having taken an earlier
	// one must take it: its guard is necessarily true and the branch can
	// be emitted unconditionally, as a real hyperblock compiler would.
	// (This only holds when that branch is the last instruction of the
	// hyperblock — nothing can be fetched between it and the region end.)
	if lastExit == len(e.out)-1 && e.out[lastExit].QP != isa.P0 {
		e.out[lastExit].QP = isa.P0
		if e.out[lastExit].Region {
			e.out[lastExit].Region = false
			info.RegionBranches--
		}
	}

	// Every path through the hyperblock must leave through an exit branch
	// or a guarded halt; reaching this trap means the predication is wrong.
	e.out = append(e.out, isa.Inst{Op: isa.OpTrap})
	info.NewEnd = len(e.out)
	e.infos = append(e.infos, info)
	return nil
}
