package ifconv

import (
	"sort"

	"repro/internal/cfgutil"
	"repro/internal/isa"
	"repro/internal/prog"
)

// region is a selected single-entry region: a head block plus blocks whose
// every predecessor lies inside the region. By construction the region
// subgraph is acyclic except for edges back to the head (loop back edges),
// which the emitter keeps as guarded exit branches.
type region struct {
	head   int
	blocks map[int]bool
	layout []int // blocks in reverse-postorder (topological for the region DAG)
}

type selector struct {
	g        *prog.CFG
	an       *cfgutil.Analysis
	pl       *cfgutil.PredLiveness
	cfg      Config
	used     []bool
	rejected map[string]int

	addrTaken map[int]bool // block index whose start address is taken
	maxPred   isa.PReg
}

func newSelector(g *prog.CFG, an *cfgutil.Analysis, pl *cfgutil.PredLiveness, cfg Config) *selector {
	s := &selector{
		g:        g,
		an:       an,
		pl:       pl,
		cfg:      cfg,
		used:     make([]bool, len(g.Blocks)),
		rejected: make(map[string]int),
		maxPred:  g.Prog.MaxPredUsed(),
	}
	s.addrTaken = addressTakenBlocks(g)
	return s
}

// addressTakenBlocks finds blocks whose start may be an indirect-branch
// target: movi of a label (resolved or not) and brl return points
// (fallthroughs of calls). Such blocks may only head a region, never be
// region-interior, because dropping them from the layout would break the
// indirect control flow.
func addressTakenBlocks(g *prog.CFG) map[int]bool {
	taken := make(map[int]bool)
	markInst := func(idx int) {
		if idx >= 0 && idx < len(g.Prog.Insts) {
			taken[g.BlockOf(idx).Index] = true
		}
	}
	for i := range g.Prog.Insts {
		in := &g.Prog.Insts[i]
		switch in.Op {
		case isa.OpMovi:
			if in.Label != "" {
				if t, ok := g.Prog.Labels[in.Label]; ok {
					markInst(t)
				}
			} else if in.Imm >= 0 && in.Imm < int64(len(g.Prog.Insts)) {
				// A movi of a small constant might be an address; only
				// treat it as one when an indirect branch exists at all.
				// Handled below via hasBrr.
			}
		case isa.OpBrl:
			markInst(i + 1) // the return point
		}
	}
	// If the program has any indirect branch, be maximally conservative:
	// every labeled block is a potential target.
	hasBrr := false
	for i := range g.Prog.Insts {
		if g.Prog.Insts[i].Op == isa.OpBrr {
			hasBrr = true
			break
		}
	}
	if hasBrr {
		for _, idx := range g.Prog.Labels {
			markInst(idx)
		}
	}
	return taken
}

// blockHazard reports a reason the block cannot join any region, or "".
func (s *selector) blockHazard(b *prog.Block) string {
	p := s.g.Prog
	for i := b.Start; i < b.End; i++ {
		in := &p.Insts[i]
		switch in.Op {
		case isa.OpBrl, isa.OpBrr:
			return "call-or-indirect"
		}
	}
	if t := b.Terminator(); t >= 0 {
		in := &p.Insts[t]
		switch in.Op {
		case isa.OpBr:
			if in.QP != isa.P0 && findDefCmp(p, b, in.QP) < 0 {
				return "no-local-compare"
			}
		case isa.OpCloop:
			if in.QP != isa.P0 {
				return "guarded-cloop"
			}
		}
	}
	return ""
}

// findDefCmp returns the index of the unguarded normal-type compare that is
// the last writer of predicate q before the block terminator, or -1.
func findDefCmp(p *prog.Program, b *prog.Block, q isa.PReg) int {
	t := b.Terminator()
	for i := t - 1; i >= b.Start; i-- {
		in := &p.Insts[i]
		writes := false
		for _, d := range in.PredDests() {
			if d == q {
				writes = true
			}
		}
		if !writes {
			continue
		}
		if in.Op == isa.OpCmp && in.CT == isa.CmpNorm && in.QP == isa.P0 &&
			(in.PD1 == q || in.PD2 == q) {
			return i
		}
		return -1 // last writer is not a usable compare
	}
	return -1
}

// cloopTargetOf returns the taken-successor block of a cloop terminator,
// or -1 when the block does not end in a cloop.
func cloopTargetOf(g *prog.CFG, b *prog.Block) int {
	t := b.Terminator()
	if t < 0 {
		return -1
	}
	in := &g.Prog.Insts[t]
	if in.Op != isa.OpCloop {
		return -1
	}
	if in.Target >= len(g.Prog.Insts) {
		return -1
	}
	return g.BlockOf(in.Target).Index
}

func (s *selector) selectRegions() []*region {
	var out []*region
	for _, h := range s.an.RPO {
		if s.used[h] {
			continue
		}
		r := s.grow(h)
		if r == nil {
			continue
		}
		if reason := s.check(r); reason != "" {
			s.rejected[reason]++
			continue
		}
		for b := range r.blocks {
			s.used[b] = true
		}
		out = append(out, r)
	}
	return out
}

// grow builds the largest eligible region headed at h, or nil if no block
// beyond the head can be added.
func (s *selector) grow(h int) *region {
	if s.blockHazard(s.g.Blocks[h]) != "" {
		return nil
	}
	r := &region{head: h, blocks: map[int]bool{h: true}}
	insts := s.g.Blocks[h].Len()
	for {
		best := -1
		for b := range r.blocks {
			for _, cand := range s.g.Blocks[b].Succs {
				if !s.eligible(r, b, cand, insts) {
					continue
				}
				if best == -1 || s.an.RPONum[cand] < s.an.RPONum[best] {
					best = cand
				}
			}
		}
		if best == -1 {
			break
		}
		r.blocks[best] = true
		insts += s.g.Blocks[best].Len()
	}
	if len(r.blocks) < 2 {
		return nil
	}
	r.layout = make([]int, 0, len(r.blocks))
	for b := range r.blocks {
		r.layout = append(r.layout, b)
	}
	sort.Slice(r.layout, func(i, j int) bool {
		return s.an.RPONum[r.layout[i]] < s.an.RPONum[r.layout[j]]
	})
	return r
}

func (s *selector) eligible(r *region, from, cand int, insts int) bool {
	if cand == r.head || r.blocks[cand] || s.used[cand] || !s.an.Reachable(cand) {
		return false
	}
	if s.addrTaken[cand] {
		return false
	}
	if !s.an.SameInnermostLoop(r.head, cand) {
		return false
	}
	if len(r.blocks) >= s.cfg.MaxBlocks {
		return false
	}
	cb := s.g.Blocks[cand]
	if insts+cb.Len() > s.cfg.MaxInsts {
		return false
	}
	if s.blockHazard(cb) != "" {
		return false
	}
	// Single entry: every predecessor must already be inside the region.
	for _, p := range cb.Preds {
		if !r.blocks[p] {
			return false
		}
	}
	// A cloop's taken edge cannot be eliminated (it decrements its counter),
	// so a cloop target must stay outside the region or be the head.
	for p := range r.blocks {
		if cloopTargetOf(s.g, s.g.Blocks[p]) == cand {
			return false
		}
	}
	// Defensive: any edge from cand back into the region must target the
	// head; the single-entry growth rule makes other cases impossible.
	for _, sc := range cb.Succs {
		if sc != r.head && r.blocks[sc] {
			return false
		}
	}
	return true
}

// profitable evaluates the profile-guided cost model, the selection rule
// IMPACT-style hyperblock formation applies: convert the region only if
// the cycles saved by eliminating its mispredicting branches exceed the
// net fetch slots the conversion adds. The net slot cost compares, per
// block, the converted hyperblock's fetch slots (every block fetched on
// every region execution, minus eliminated branch instructions, plus
// predicate bookkeeping) against the original profiled slots.
func (s *selector) profitable(r *region) bool {
	p := s.g.Prog
	prof := s.cfg.Profile
	headExec := float64(prof.BlockExec(s.g.Blocks[r.head].Start))
	if headExec == 0 {
		return false // never-executed region: conversion is pure size cost
	}
	pos := layoutPositions(r)

	benefit := 0.0
	origSlots := 0.0
	convSlots := 0.0
	for b := range r.blocks {
		blk := s.g.Blocks[b]
		origSlots += float64(prof.BlockExec(blk.Start)) * float64(blk.Len())
		emitted := blk.Len()
		t := blk.Terminator()
		if t >= 0 {
			in := &p.Insts[t]
			switch {
			case in.Op == isa.OpBr && in.Target < len(p.Insts):
				tb := s.g.BlockOf(in.Target).Index
				if tb != r.head && r.blocks[tb] {
					// Eliminated outright: the branch slot disappears and,
					// for conditional branches, so do its mispredictions.
					emitted--
					if in.QP != isa.P0 && t < len(prof.Mispredict) {
						benefit += float64(prof.Mispredict[t]) * s.cfg.MispredictPenalty
					}
				}
			case in.Op == isa.OpCloop:
				emitted++ // synthesised guard compare
			}
		}
		convSlots += headExec * float64(emitted)
		// Predicate bookkeeping: multi-predecessor blocks add a pinit plus
		// one por per incoming edge, all fetched every region execution —
		// except full-coverage joins, which the emitter runs unguarded at
		// no bookkeeping cost.
		if b != r.head && len(blk.Preds) >= 2 && !coversLayout(s.g, r, pos, b) {
			convSlots += headExec * float64(1+len(blk.Preds))
		}
	}
	return benefit >= convSlots-origSlots
}

// check validates a grown region and returns a rejection reason or "".
func (s *selector) check(r *region) string {
	p := s.g.Prog
	// Profitability: at least one direct branch with an in-region non-head
	// target (that branch is eliminated outright).
	elim := 0
	for b := range r.blocks {
		blk := s.g.Blocks[b]
		t := blk.Terminator()
		if t < 0 {
			continue
		}
		in := &p.Insts[t]
		if in.Op == isa.OpBr && in.Target < len(p.Insts) {
			tb := s.g.BlockOf(in.Target).Index
			if tb != r.head && r.blocks[tb] {
				elim++
			}
		}
	}
	if elim == 0 {
		return "no-eliminable-branch"
	}

	// The emitter derives fallthrough edges from the instruction after a
	// block; a region block that can fall off the end of the program has no
	// such instruction.
	for b := range r.blocks {
		blk := s.g.Blocks[b]
		if blk.End < len(p.Insts) {
			continue
		}
		last := &p.Insts[blk.End-1]
		switch {
		case last.Op == isa.OpBr && last.QP == isa.P0:
		case last.Op == isa.OpHalt && last.QP == isa.P0:
		case last.Op == isa.OpTrap && last.QP == isa.P0:
		default:
			return "fall-off-end"
		}
	}

	if s.cfg.Profile != nil {
		if !s.profitable(r) {
			return "unprofitable"
		}
	}

	// Predicate-safety: every predicate the original region code writes
	// becomes conditionally written (or never written) after conversion, so
	// none of them may be live into any exit target outside the region.
	var clobber uint64
	for b := range r.blocks {
		blk := s.g.Blocks[b]
		for i := blk.Start; i < blk.End; i++ {
			for _, d := range p.Insts[i].PredDests() {
				clobber |= 1 << d
			}
		}
	}
	clobber &^= 1 // p0 is hard-wired
	for b := range r.blocks {
		for _, sc := range s.g.Blocks[b].Succs {
			if r.blocks[sc] {
				continue
			}
			if s.pl.LiveIn[sc]&clobber != 0 {
				return "predicate-live-out"
			}
		}
	}

	// Predicate budget: one per multi-predecessor block, two per
	// conditional branch or cloop terminator, plus one shared scratch for
	// re-guarding already-guarded interior instructions.
	need := 0
	if regionHasGuardedInterior(s.g, r) {
		need++
	}
	for b := range r.blocks {
		if b != r.head && len(s.g.Blocks[b].Preds) >= 2 {
			need++
		}
		blk := s.g.Blocks[b]
		t := blk.Terminator()
		if t < 0 {
			continue
		}
		in := &p.Insts[t]
		if (in.Op == isa.OpBr && in.QP != isa.P0) || in.Op == isa.OpCloop {
			need += 2
		}
	}
	if int(s.maxPred)+need >= isa.NumPRegs {
		return "predicate-budget"
	}
	return ""
}
