package ifconv

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/testutil"
	"repro/internal/workload"
)

const runLimit = 2_000_000

func convert(t *testing.T, p *prog.Program) (*prog.Program, *Report) {
	t.Helper()
	cp, rep, err := Convert(p, Config{})
	if err != nil {
		t.Fatalf("convert %s: %v\n%s", p.Name, err, p)
	}
	return cp, rep
}

func checkEquiv(t *testing.T, p, cp *prog.Program) {
	t.Helper()
	if err := testutil.CheckEquivalent(p, cp, runLimit); err != nil {
		t.Fatalf("equivalence: %v\noriginal:\n%s\nconverted:\n%s", err, p, cp)
	}
}

func branchCount(p *prog.Program) int {
	n := 0
	for i := range p.Insts {
		if p.Insts[i].IsBranch() {
			n++
		}
	}
	return n
}

func TestConvertTriangle(t *testing.T) {
	b := prog.NewBuilder("triangle")
	b.Movi(1, 10)
	b.If(prog.RI(isa.CmpGT, 1, 5), func() { b.Movi(2, 100) })
	b.Out(2)
	b.Halt(0)
	p := b.MustProgram()
	cp, rep := convert(t, p)
	if len(rep.Regions) != 1 {
		t.Fatalf("regions = %d, rejected = %v\n%s", len(rep.Regions), rep.Rejected, p)
	}
	if rep.TotalEliminated() < 1 {
		t.Errorf("no branch eliminated: %+v", rep.Regions)
	}
	if branchCount(cp) >= branchCount(p) {
		t.Errorf("branches did not decrease: %d -> %d\n%s", branchCount(p), branchCount(cp), cp)
	}
	checkEquiv(t, p, cp)
}

func TestConvertDiamond(t *testing.T) {
	for _, x := range []int64{3, 8} {
		b := prog.NewBuilder("diamond")
		b.Movi(1, x)
		b.IfElse(prog.RI(isa.CmpGT, 1, 5),
			func() { b.Movi(2, 100) },
			func() { b.Movi(2, 200) },
		)
		b.Out(2)
		b.Halt(0)
		p := b.MustProgram()
		cp, rep := convert(t, p)
		if len(rep.Regions) != 1 {
			t.Fatalf("x=%d: regions = %d (rejected %v)", x, len(rep.Regions), rep.Rejected)
		}
		checkEquiv(t, p, cp)
	}
}

func TestConvertNestedIf(t *testing.T) {
	for x := int64(0); x < 4; x++ {
		b := prog.NewBuilder("nested")
		b.Movi(1, x)
		b.IfElse(prog.RI(isa.CmpGE, 1, 2),
			func() {
				b.If(prog.RI(isa.CmpEQ, 1, 3), func() { b.Movi(2, 33) })
				b.Addi(3, 3, 1)
			},
			func() {
				b.IfElse(prog.RI(isa.CmpEQ, 1, 0),
					func() { b.Movi(2, 10) },
					func() { b.Movi(2, 11) },
				)
			},
		)
		b.Out(2)
		b.Out(3)
		b.Halt(0)
		p := b.MustProgram()
		cp, rep := convert(t, p)
		if len(rep.Regions) == 0 {
			t.Fatalf("x=%d: nothing converted (rejected %v)\n%s", x, rep.Rejected, p)
		}
		checkEquiv(t, p, cp)
	}
}

func TestConvertDiamondInLoop(t *testing.T) {
	b := prog.NewBuilder("loopdiamond")
	b.Movi(1, 10) // i
	b.Movi(2, 0)  // acc
	b.While(prog.RI(isa.CmpGT, 1, 0), func() {
		b.IfElse(prog.RI(isa.CmpGT, 1, 5),
			func() { b.Add(2, 2, 1) },
			func() { b.Sub(2, 2, 1) },
		)
		b.Subi(1, 1, 1)
	})
	b.Out(2)
	b.Halt(0)
	p := b.MustProgram()
	cp, rep := convert(t, p)
	if len(rep.Regions) == 0 {
		t.Fatalf("diamond in loop not converted (rejected %v)\n%s", rep.Rejected, p)
	}
	checkEquiv(t, p, cp)
}

func TestLoopBodyRegionKeepsBackEdge(t *testing.T) {
	// The whole loop body (head = loop header) should become one region
	// whose back edge survives as a region-based branch.
	b := prog.NewBuilder("loopbody")
	b.Movi(1, 20)
	b.Movi(2, 0)
	b.Label("head")
	b.Cmpi(isa.CmpGT, 1, 2, 1, 0)
	b.BrIf(2, "done") // exit loop when r1 <= 0  (p2 = !(r1>0))
	b.IfElse(prog.RI(isa.CmpGT, 1, 10),
		func() { b.Add(2, 2, 1) },
		func() { b.Addi(2, 2, 3) },
	)
	b.Subi(1, 1, 1)
	b.Br("head")
	b.Label("done")
	b.Out(2)
	b.Halt(0)
	p := b.MustProgram()
	cp, rep := convert(t, p)
	if len(rep.Regions) == 0 {
		t.Fatalf("loop body not converted (rejected %v)\n%s", rep.Rejected, p)
	}
	region := 0
	for i := range cp.Insts {
		if cp.Insts[i].Region {
			region++
		}
	}
	if region == 0 {
		t.Errorf("no region-based branches in converted loop:\n%s", cp)
	}
	checkEquiv(t, p, cp)
}

func TestEarlyExitBecomesRegionBranch(t *testing.T) {
	// if (a) { if (b) break-ish } else { ... } inside a loop: the inner
	// exit branch leaves the region and must survive, guarded.
	b := prog.NewBuilder("earlyexit")
	b.Movi(1, 15)
	b.Movi(2, 0)
	b.Label("head")
	b.Cmpi(isa.CmpGT, 1, 2, 1, 0)
	b.BrIf(2, "done")
	b.IfElse(prog.RI(isa.CmpEQ, 1, 7),
		func() {
			b.Movi(2, 777)
			b.Br("done") // early exit out of the loop
		},
		func() { b.Add(2, 2, 1) },
	)
	b.Subi(1, 1, 1)
	b.Br("head")
	b.Label("done")
	b.Out(2)
	b.Out(1)
	b.Halt(0)
	p := b.MustProgram()
	cp, rep := convert(t, p)
	if len(rep.Regions) == 0 {
		t.Fatalf("early-exit loop not converted (rejected %v)\n%s", rep.Rejected, p)
	}
	if rep.TotalRegionBranches() == 0 {
		t.Errorf("expected region-based branches:\n%s", cp)
	}
	checkEquiv(t, p, cp)
}

func TestConvertCloopBody(t *testing.T) {
	b := prog.NewBuilder("cloopbody")
	b.Movi(2, 0)
	b.Movi(3, 0)
	b.CountedLoop(10, 8, func() {
		b.IfElse(prog.RR(isa.CmpGT, 2, 3),
			func() { b.Addi(3, 3, 2) },
			func() { b.Addi(2, 2, 3) },
		)
	})
	b.Out(2)
	b.Out(3)
	b.Halt(0)
	p := b.MustProgram()
	cp, rep := convert(t, p)
	if len(rep.Regions) == 0 {
		t.Fatalf("cloop body not converted (rejected %v)\n%s", rep.Rejected, p)
	}
	checkEquiv(t, p, cp)
}

func TestStraightLineUntouched(t *testing.T) {
	b := prog.NewBuilder("straight")
	b.Movi(1, 1)
	b.Addi(1, 1, 2)
	b.Out(1)
	b.Halt(0)
	p := b.MustProgram()
	cp, rep := convert(t, p)
	if len(rep.Regions) != 0 {
		t.Errorf("regions in straight-line code: %+v", rep.Regions)
	}
	if len(cp.Insts) != len(p.Insts) {
		t.Errorf("straight-line program changed size: %d -> %d", len(p.Insts), len(cp.Insts))
	}
	checkEquiv(t, p, cp)
}

func TestCallsExcluded(t *testing.T) {
	b := prog.NewBuilder("calls")
	b.Movi(1, 4)
	b.IfElse(prog.RI(isa.CmpGT, 1, 2),
		func() { b.Brl(30, "fn") },
		func() { b.Movi(2, 5) },
	)
	b.Out(2)
	b.Halt(0)
	b.Label("fn")
	b.Movi(2, 9)
	b.Brr(30)
	p := b.MustProgram()
	cp, rep := convert(t, p)
	// The call block is a hazard; the region around it must be rejected or
	// shrunk, and whatever happens the result must be equivalent.
	for _, r := range rep.Regions {
		for _, blk := range r.Blocks {
			_ = blk
		}
	}
	checkEquiv(t, p, cp)
	// The call must still be present.
	found := false
	for i := range cp.Insts {
		if cp.Insts[i].Op == isa.OpBrl {
			found = true
		}
	}
	if !found {
		t.Error("call disappeared from converted program")
	}
}

func TestMarkedRegionBranchesAreGuarded(t *testing.T) {
	p := workload.Synth(11, 60)
	cp, _ := convert(t, p)
	for i := range cp.Insts {
		in := &cp.Insts[i]
		if in.Region && in.QP == isa.P0 && in.Op == isa.OpBr {
			t.Errorf("region-based branch at %d is unguarded: %s", i, in)
		}
	}
}

func TestTrapNeverExecutes(t *testing.T) {
	// The emitter plants a trap after each region; equivalence running
	// (checked everywhere) plus this explicit sweep over many seeds gives
	// confidence the predication covers all paths.
	for seed := uint64(0); seed < 30; seed++ {
		p := workload.Synth(seed, 50)
		cp, _ := convert(t, p)
		checkEquiv(t, p, cp)
	}
}

func TestSynthEquivalenceProperty(t *testing.T) {
	// The central correctness property: conversion preserves observable
	// behaviour on randomly generated structured programs.
	seeds := 120
	if testing.Short() {
		seeds = 20
	}
	for seed := 0; seed < seeds; seed++ {
		p := workload.Synth(uint64(seed)*7919+1, 40+seed%60)
		cp, rep := convert(t, p)
		if err := testutil.CheckEquivalent(p, cp, runLimit); err != nil {
			t.Fatalf("seed %d: %v\nreport: %+v\noriginal:\n%s\nconverted:\n%s",
				seed, err, rep.Regions, p, cp)
		}
	}
}

func TestDoubleConversionStillEquivalent(t *testing.T) {
	// Converting an already-converted program must stay correct (regions
	// there are mostly ineligible, but nothing should break).
	for seed := uint64(100); seed < 110; seed++ {
		p := workload.Synth(seed, 50)
		cp, _ := convert(t, p)
		cp2, _, err := Convert(cp, Config{})
		if err != nil {
			t.Fatalf("seed %d second conversion: %v", seed, err)
		}
		if err := testutil.CheckEquivalent(p, cp2, runLimit); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestConfigLimitsRespected(t *testing.T) {
	p := workload.Synth(42, 80)
	cp, rep, err := Convert(p, Config{MaxBlocks: 3, MaxInsts: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Regions {
		if len(r.Blocks) > 3 {
			t.Errorf("region exceeds MaxBlocks: %d", len(r.Blocks))
		}
	}
	checkEquiv(t, p, cp)
}

func TestProfileGuidedSelection(t *testing.T) {
	// The cost model must skip regions whose nullification cost dominates
	// (stream: a rarely-true saturation check with ~no mispredicts) and
	// keep regions with heavy misprediction savings (rand: a 50/50 branch).
	collect := func(name string) (*prog.Program, *profile.Profile) {
		p := workload.ByNameMust(name).Build()
		prof, err := profile.Collect(p, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		return p, prof
	}

	p, prof := collect("stream")
	cp, rep, err := Convert(p, Config{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regions) != 0 {
		t.Errorf("stream converted despite unprofitability: %+v", rep.Regions)
	}
	if rep.Rejected["unprofitable"] == 0 {
		t.Errorf("no unprofitable rejection recorded: %v", rep.Rejected)
	}
	checkEquiv(t, p, cp)

	p, prof = collect("rand")
	cp, rep, err = Convert(p, Config{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regions) == 0 {
		t.Errorf("rand not converted despite profitability: %v", rep.Rejected)
	}
	checkEquiv(t, p, cp)
}

func TestProfileGuidedEquivalence(t *testing.T) {
	// Profile-guided conversion must preserve behaviour on every workload.
	for _, w := range workload.All() {
		p := w.Build()
		prof, err := profile.Collect(p, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		cp, _, err := Convert(p, Config{Profile: prof})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if err := testutil.CheckEquivalent(p, cp, runLimit); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
	}
}

func TestProfileNeverExecutedRegionSkipped(t *testing.T) {
	// A diamond behind an always-false condition never executes; the
	// profile must veto its conversion.
	b := prog.NewBuilder("dead")
	b.Movi(1, 0)
	b.If(prog.RI(isa.CmpGT, 1, 10), func() { // never true
		b.IfElse(prog.RI(isa.CmpEQ, 1, 5),
			func() { b.Movi(2, 1) },
			func() { b.Movi(2, 2) },
		)
	})
	b.Out(1)
	b.Halt(0)
	p := b.MustProgram()
	prof, err := profile.Collect(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := Convert(p, Config{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Regions {
		for _, blk := range r.Blocks {
			if prof.BlockExec(blk) == 0 && prof.BlockExec(r.Head) == 0 {
				t.Errorf("converted a never-executed region: %+v", r)
			}
		}
	}
}

func TestGuardReadInsideRegionPreserved(t *testing.T) {
	// The diamond's guard pair p1/p2 is also read after the join, inside
	// what becomes the region: the emitter must keep the original compare
	// alive alongside the rewritten one.
	b := prog.NewBuilder("inread")
	b.Movi(1, 4)
	b.Cmpi(isa.CmpGT, 1, 2, 1, 2)
	b.BrIf(2, "else")
	b.Movi(3, 1)
	b.Br("join")
	b.Label("else")
	b.Movi(3, 2)
	b.Label("join")
	b.Out(3)
	b.Movi(4, 9).QP = 1 // reads p1 after the join
	b.Out(4)
	b.Halt(0)
	p := b.MustProgram()
	cp, rep := convert(t, p)
	if len(rep.Regions) == 0 {
		t.Fatalf("diamond with in-region guard read not converted: %v", rep.Rejected)
	}
	checkEquiv(t, p, cp)
	// Both the rewritten (unc) and the preserved (normal) compare exist.
	unc, norm := 0, 0
	for i := range cp.Insts {
		if cp.Insts[i].Op == isa.OpCmp {
			if cp.Insts[i].CT == isa.CmpUnc {
				unc++
			} else {
				norm++
			}
		}
	}
	if unc == 0 || norm == 0 {
		t.Errorf("expected both rewritten and preserved compares:\n%s", cp)
	}
}

func TestGuardedInteriorConverted(t *testing.T) {
	// Source code that is already lightly predicated (the compiler's 0/1
	// materialisation idiom) must still convert, with guards ANDed.
	b := prog.NewBuilder("matarm")
	b.Movi(1, 7)
	b.IfElse(prog.RI(isa.CmpGT, 1, 3),
		func() {
			// then-arm computes bool := (r1 == 7) with a guarded movi
			b.Cmpi(isa.CmpEQ, 9, 10, 1, 7)
			b.Movi(2, 0)
			b.Movi(2, 1).QP = 9
		},
		func() { b.Movi(2, 5) },
	)
	b.Out(2)
	b.Halt(0)
	p := b.MustProgram()
	cp, rep := convert(t, p)
	if len(rep.Regions) == 0 {
		t.Fatalf("guarded interior blocked conversion: %v", rep.Rejected)
	}
	found := false
	for i := range cp.Insts {
		if cp.Insts[i].Op == isa.OpPand {
			found = true
		}
	}
	if !found {
		t.Errorf("no guard-AND emitted:\n%s", cp)
	}
	checkEquiv(t, p, cp)
}

func TestReportRejectionReasons(t *testing.T) {
	// A predicate written in the region and read in a block that cannot
	// join it is live out of the region: the region must be rejected. The
	// reader block is fenced out by its own guarded branch whose defining
	// compare is non-local (a shape the converter cannot rewrite).
	b := prog.NewBuilder("liveout")
	b.Movi(1, 4)
	b.Cmpi(isa.CmpGT, 1, 2, 1, 2)
	b.BrIf(2, "else")
	b.Movi(3, 1)
	b.Br("join")
	b.Label("else")
	b.Movi(3, 2)
	b.Label("join")
	b.Out(3)
	b.BrIf(1, "tail") // reads p1; its compare is far away -> region fence
	b.Out(1)
	b.Label("tail")
	b.Out(3)
	b.Halt(0)
	p := b.MustProgram()
	cp, rep := convert(t, p)
	if len(rep.Regions) != 0 {
		t.Fatalf("live-out region converted anyway: %+v\n%s", rep.Regions, cp)
	}
	if rep.Rejected["predicate-live-out"] == 0 {
		t.Errorf("rejection reasons: %v", rep.Rejected)
	}
	checkEquiv(t, p, cp)
}
