// Package ifconv implements if-conversion: it rewrites conditional
// branches whose controlled blocks form single-entry acyclic regions into
// straight-line predicated code (hyperblocks), in the style of the IMPACT
// compiler that produced the predicated binaries studied by the paper.
//
// Branches that cannot be eliminated but sit inside a converted region —
// loop back edges, early exits to targets outside the region — remain as
// guarded branches and are marked Region. These are exactly the paper's
// "region-based branches": the branch class the squash false path filter
// and the predicate global update predictor aim at.
package ifconv

import (
	"fmt"

	"repro/internal/cfgutil"
	"repro/internal/profile"
	"repro/internal/prog"
)

// Config controls region formation.
type Config struct {
	// MaxBlocks bounds the number of basic blocks per region.
	MaxBlocks int
	// MaxInsts bounds the total original instruction count per region.
	MaxInsts int
	// NoCompareScheduling disables the compare-hoisting pass that moves
	// compares to the earliest dependence-satisfying position in the
	// hyperblock. Scheduling is on by default; disabling it is the E10
	// ablation (it starves the squash false path filter of resolved
	// guards).
	NoCompareScheduling bool

	// Profile enables profile-guided region selection, as the IMPACT
	// compiler behind the paper's binaries did: a region is converted only
	// when the profiled misprediction savings of its eliminated branches
	// outweigh the profiled cost of fetching both paths (nullified slots
	// plus predicate bookkeeping).
	Profile *profile.Profile
	// MispredictPenalty is the flush cost in cycles assumed by the
	// profile-guided cost model. Default 10.
	MispredictPenalty float64
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{MaxBlocks: 16, MaxInsts: 96}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MaxBlocks <= 0 {
		c.MaxBlocks = d.MaxBlocks
	}
	if c.MaxInsts <= 0 {
		c.MaxInsts = d.MaxInsts
	}
	if c.MispredictPenalty <= 0 {
		c.MispredictPenalty = 10
	}
	return c
}

// RegionInfo describes one converted region.
type RegionInfo struct {
	Head               int   // original head block index
	Blocks             []int // original block indices in layout order
	EliminatedBranches int   // branches converted into predicate defines
	RegionBranches     int   // guarded branches left in the region
	NewStart, NewEnd   int   // instruction range in the converted program
}

// Report summarises a conversion run.
type Report struct {
	Regions []RegionInfo
	// Rejected counts candidate regions abandoned per reason.
	Rejected map[string]int
}

// TotalEliminated returns the number of static branches removed.
func (r *Report) TotalEliminated() int {
	n := 0
	for i := range r.Regions {
		n += r.Regions[i].EliminatedBranches
	}
	return n
}

// TotalRegionBranches returns the number of static region-based branches.
func (r *Report) TotalRegionBranches() int {
	n := 0
	for i := range r.Regions {
		n += r.Regions[i].RegionBranches
	}
	return n
}

// Convert if-converts p and returns the predicated program and a report.
// The input program is not modified.
func Convert(p *prog.Program, cfg Config) (*prog.Program, *Report, error) {
	cfg = cfg.withDefaults()
	g, err := prog.BuildCFG(p)
	if err != nil {
		return nil, nil, fmt.Errorf("ifconv: %w", err)
	}
	an := cfgutil.Analyze(g)
	pl := cfgutil.ComputePredLiveness(g)

	sel := newSelector(g, an, pl, cfg)
	regions := sel.selectRegions()

	em := newEmitter(g, regions, cfg)
	out, infos, err := em.emit()
	if err != nil {
		return nil, nil, fmt.Errorf("ifconv: %w", err)
	}
	rep := &Report{Regions: infos, Rejected: sel.rejected}
	return out, rep, nil
}
