package ifconv

import (
	"testing"

	"repro/internal/isa"
)

func cmpOn(src isa.Reg, qp, pd1, pd2 isa.PReg) isa.Inst {
	return isa.Inst{
		Op: isa.OpCmp, QP: qp, CC: isa.CmpEQ, CT: isa.CmpUnc,
		PD1: pd1, PD2: pd2, Src1: src, Imm: 0, HasImm: true,
	}
}

func ops(insts []isa.Inst) []isa.Op {
	out := make([]isa.Op, len(insts))
	for i := range insts {
		out[i] = insts[i].Op
	}
	return out
}

func TestHoistComparesMovesToTop(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpAdd, Dst: 5, Src1: 6, Src2: 7},
		{Op: isa.OpXor, Dst: 8, Src1: 5, Src2: 5},
		cmpOn(1, 0, 20, 21), // independent of r5..r8: should rise to index 0
	}
	hoistCompares(insts, 0)
	if insts[0].Op != isa.OpCmp {
		t.Errorf("compare did not hoist: %v", ops(insts))
	}
}

func TestHoistStopsAtSourceWrite(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpAdd, Dst: 1, Src1: 2, Src2: 3}, // writes the compare's source
		{Op: isa.OpXor, Dst: 8, Src1: 5, Src2: 5},
		cmpOn(1, 0, 20, 21),
	}
	hoistCompares(insts, 0)
	if insts[1].Op != isa.OpCmp {
		t.Errorf("compare should sit right below its source writer: %v", ops(insts))
	}
}

func TestHoistStopsAtGuardWrite(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpPinit, PD1: 9, Imm: 1}, // writes the compare's guard
		{Op: isa.OpXor, Dst: 8, Src1: 5, Src2: 5},
		cmpOn(1, 9, 20, 21),
	}
	hoistCompares(insts, 0)
	if insts[1].Op != isa.OpCmp {
		t.Errorf("compare crossed its guard writer: %v", ops(insts))
	}
}

func TestHoistStopsAtBranch(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpBr, QP: 3, Target: 0},
		{Op: isa.OpXor, Dst: 8, Src1: 5, Src2: 5},
		cmpOn(1, 0, 20, 21),
	}
	hoistCompares(insts, 0)
	if insts[1].Op != isa.OpCmp {
		t.Errorf("compare crossed a branch: %v", ops(insts))
	}
}

func TestHoistRespectsWAWAndWAR(t *testing.T) {
	// WAW: an earlier compare writing the same predicates blocks.
	insts := []isa.Inst{
		cmpOn(2, 0, 20, 21),
		{Op: isa.OpNop},
		cmpOn(1, 0, 20, 21),
	}
	hoistCompares(insts, 0)
	// The first compare stays; the second may rise past the nop but not
	// past the first compare.
	if insts[0].Src1 != 2 || insts[1].Src1 != 1 {
		t.Errorf("WAW ordering violated: %v", insts)
	}
	// WAR: an instruction guarded by the compare's destination blocks.
	insts = []isa.Inst{
		{Op: isa.OpAdd, QP: 20, Dst: 5, Src1: 6, Src2: 7},
		cmpOn(1, 0, 20, 21),
	}
	hoistCompares(insts, 0)
	if insts[0].Op != isa.OpAdd {
		t.Errorf("compare crossed a reader of its destination: %v", ops(insts))
	}
}

func TestHoistRespectsStartFence(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpNop},
		{Op: isa.OpNop},
		cmpOn(1, 0, 20, 21),
	}
	hoistCompares(insts, 1) // region starts at index 1
	if insts[0].Op != isa.OpNop || insts[1].Op != isa.OpCmp {
		t.Errorf("compare crossed the region fence: %v", ops(insts))
	}
}

func TestCanHoistPastTable(t *testing.T) {
	c := cmpOn(1, 9, 20, 21)
	cases := []struct {
		name string
		i    isa.Inst
		want bool
	}{
		{"nop", isa.Inst{Op: isa.OpNop}, true},
		{"unrelated alu", isa.Inst{Op: isa.OpAdd, Dst: 5, Src1: 6, Src2: 7}, true},
		{"store", isa.Inst{Op: isa.OpSt, Src1: 2, Src2: 3}, true},
		{"load", isa.Inst{Op: isa.OpLd, Dst: 7, Src1: 2}, true},
		{"writes source", isa.Inst{Op: isa.OpMovi, Dst: 1, Imm: 3}, false},
		{"writes guard", isa.Inst{Op: isa.OpPinit, PD1: 9, Imm: 0}, false},
		{"writes dest pred", isa.Inst{Op: isa.OpPinit, PD1: 20, Imm: 0}, false},
		{"reads dest as guard", isa.Inst{Op: isa.OpAdd, QP: 21, Dst: 5, Src1: 6, Src2: 7}, false},
		{"reads dest as source", isa.Inst{Op: isa.OpPor, PD1: 30, PS1: 20, PS2: 31}, false},
		{"branch", isa.Inst{Op: isa.OpBr, Target: 0}, false},
		{"halt", isa.Inst{Op: isa.OpHalt}, false},
		{"trap", isa.Inst{Op: isa.OpTrap}, false},
	}
	for _, tc := range cases {
		if got := canHoistPast(&tc.i, &c); got != tc.want {
			t.Errorf("%s: canHoistPast = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestLayoutPositions(t *testing.T) {
	r := &region{layout: []int{4, 7, 2}}
	pos := layoutPositions(r)
	if pos[4] != 0 || pos[7] != 1 || pos[2] != 2 {
		t.Errorf("positions wrong: %v", pos)
	}
}
