// Package emu implements the P64 functional emulator: architectural
// registers, predicate registers, paged word-addressed memory, and precise
// step-by-step execution with nullification of false-guarded instructions.
//
// The emulator is both the correctness oracle (original and if-converted
// programs must produce identical results) and the functional front half of
// the timing simulator: the pipeline model in internal/pipeline calls Step
// and charges time for each StepInfo it receives.
package emu

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// pageBits sets the memory page granularity (words per page = 1<<pageBits).
const pageBits = 12

const pageWords = 1 << pageBits

// Fault describes an execution error with program position context.
type Fault struct {
	Prog  string
	Index int
	Inst  string
	Msg   string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("emu: %s at %s[%d] %q", f.Msg, f.Prog, f.Index, f.Inst)
}

// ErrLimit is returned by Run when the instruction budget is exhausted
// before the program halts.
var ErrLimit = errors.New("emu: instruction limit exceeded")

// PredWrite records one predicate register write performed by a step.
type PredWrite struct {
	P isa.PReg
	V bool
}

// StepInfo reports what one dynamic instruction did. The pipeline model and
// trace capture consume it. PredWrites aliases a scratch buffer owned by
// the machine: consume it before the next Step call, copy it to retain it.
type StepInfo struct {
	Index      int       // static instruction index
	Inst       *isa.Inst // the instruction (points into the program)
	GuardTrue  bool      // value of the qualifying predicate at execute
	Taken      bool      // branches: control actually redirected
	NextPC     int       // pc after this step
	CmpValue   bool      // cmp: the evaluated condition (meaningful when GuardTrue)
	Halted     bool      // program halted at this step
	PredWrites []PredWrite
}

// Machine is a P64 architectural machine bound to one program.
type Machine struct {
	Prog *prog.Program

	Regs  [isa.NumRegs]int64
	Preds [isa.NumPRegs]bool
	PC    int

	mem    map[int64]*[pageWords]int64
	Output []int64

	Halted   bool
	ExitCode int64

	// Dynamic counters.
	Steps     uint64 // dynamic instructions fetched/stepped
	Nullified uint64 // steps whose guard was false

	// scratch buffer reused across steps to avoid per-step allocation
	predScratch [2]PredWrite
}

// New creates a machine for the program, loading its initial data. The
// program must already resolve and validate.
func New(p *prog.Program) (*Machine, error) {
	if err := p.Resolve(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Prog: p, mem: make(map[int64]*[pageWords]int64)}
	m.Preds[isa.P0] = true
	for base, words := range p.Data {
		for i, w := range words {
			if err := m.Store(base+int64(i), w); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// Load reads a memory word.
func (m *Machine) Load(addr int64) (int64, error) {
	if addr < 0 {
		return 0, fmt.Errorf("emu: load from negative address %d", addr)
	}
	pg := m.mem[addr>>pageBits]
	if pg == nil {
		return 0, nil
	}
	return pg[addr&(pageWords-1)], nil
}

// Store writes a memory word.
func (m *Machine) Store(addr, val int64) error {
	if addr < 0 {
		return fmt.Errorf("emu: store to negative address %d", addr)
	}
	key := addr >> pageBits
	pg := m.mem[key]
	if pg == nil {
		pg = new([pageWords]int64)
		m.mem[key] = pg
	}
	pg[addr&(pageWords-1)] = val
	return nil
}

// MemSnapshot returns all nonzero memory words; used by tests to compare
// final states.
func (m *Machine) MemSnapshot() map[int64]int64 {
	out := make(map[int64]int64)
	for key, pg := range m.mem {
		base := key << pageBits
		for i, w := range pg {
			if w != 0 {
				out[base+int64(i)] = w
			}
		}
	}
	return out
}

func (m *Machine) fault(idx int, format string, args ...any) error {
	in := ""
	if idx >= 0 && idx < len(m.Prog.Insts) {
		in = m.Prog.Insts[idx].String()
	}
	return &Fault{Prog: m.Prog.Name, Index: idx, Inst: in, Msg: fmt.Sprintf(format, args...)}
}

func (m *Machine) setReg(r isa.Reg, v int64) {
	if r != isa.R0 {
		m.Regs[r] = v
	}
}

func (m *Machine) setPred(p isa.PReg, v bool, writes *[]PredWrite) {
	if p == isa.P0 {
		return
	}
	m.Preds[p] = v
	*writes = append(*writes, PredWrite{P: p, V: v})
}

// Step executes one instruction and returns what happened.
func (m *Machine) Step() (StepInfo, error) {
	if m.Halted {
		return StepInfo{}, fmt.Errorf("emu: %s: step after halt", m.Prog.Name)
	}
	if m.PC < 0 || m.PC >= len(m.Prog.Insts) {
		return StepInfo{}, m.fault(m.PC, "pc out of range")
	}
	idx := m.PC
	in := &m.Prog.Insts[idx]
	info := StepInfo{Index: idx, Inst: in, NextPC: idx + 1}
	info.PredWrites = m.predScratch[:0]
	m.Steps++

	guard := m.Preds[in.QP]
	info.GuardTrue = guard

	src2 := func() int64 {
		if in.HasImm {
			return in.Imm
		}
		return m.Regs[in.Src2]
	}

	if !guard {
		// Nullified — with two exceptions that still act under a false
		// guard: unconditional-type compares clear their destinations.
		m.Nullified++
		if in.Op == isa.OpCmp && in.CT == isa.CmpUnc {
			m.setPred(in.PD1, false, &info.PredWrites)
			m.setPred(in.PD2, false, &info.PredWrites)
		}
		m.PC = info.NextPC
		return info, nil
	}

	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		m.setReg(in.Dst, m.Regs[in.Src1]+src2())
	case isa.OpSub:
		m.setReg(in.Dst, m.Regs[in.Src1]-src2())
	case isa.OpAnd:
		m.setReg(in.Dst, m.Regs[in.Src1]&src2())
	case isa.OpOr:
		m.setReg(in.Dst, m.Regs[in.Src1]|src2())
	case isa.OpXor:
		m.setReg(in.Dst, m.Regs[in.Src1]^src2())
	case isa.OpShl:
		m.setReg(in.Dst, m.Regs[in.Src1]<<(uint64(src2())&63))
	case isa.OpShr:
		m.setReg(in.Dst, int64(uint64(m.Regs[in.Src1])>>(uint64(src2())&63)))
	case isa.OpSar:
		m.setReg(in.Dst, m.Regs[in.Src1]>>(uint64(src2())&63))
	case isa.OpMul:
		m.setReg(in.Dst, m.Regs[in.Src1]*src2())
	case isa.OpDiv:
		d := src2()
		if d == 0 {
			return info, m.fault(idx, "division by zero")
		}
		m.setReg(in.Dst, m.Regs[in.Src1]/d)
	case isa.OpMod:
		d := src2()
		if d == 0 {
			return info, m.fault(idx, "modulo by zero")
		}
		m.setReg(in.Dst, m.Regs[in.Src1]%d)
	case isa.OpMov:
		m.setReg(in.Dst, m.Regs[in.Src1])
	case isa.OpMovi:
		m.setReg(in.Dst, in.Imm)
	case isa.OpCmp:
		c := in.CC.Eval(m.Regs[in.Src1], src2())
		info.CmpValue = c
		switch in.CT {
		case isa.CmpNorm, isa.CmpUnc:
			m.setPred(in.PD1, c, &info.PredWrites)
			m.setPred(in.PD2, !c, &info.PredWrites)
		case isa.CmpAnd:
			if !c {
				m.setPred(in.PD1, false, &info.PredWrites)
				m.setPred(in.PD2, false, &info.PredWrites)
			}
		case isa.CmpOr:
			if c {
				m.setPred(in.PD1, true, &info.PredWrites)
				m.setPred(in.PD2, true, &info.PredWrites)
			}
		}
	case isa.OpLd:
		v, err := m.Load(m.Regs[in.Src1] + in.Imm)
		if err != nil {
			return info, m.fault(idx, "%v", err)
		}
		m.setReg(in.Dst, v)
	case isa.OpSt:
		if err := m.Store(m.Regs[in.Src1]+in.Imm, m.Regs[in.Src2]); err != nil {
			return info, m.fault(idx, "%v", err)
		}
	case isa.OpBr:
		info.Taken = true
		info.NextPC = in.Target
	case isa.OpBrl:
		m.setReg(in.Dst, int64(idx+1))
		info.Taken = true
		info.NextPC = in.Target
	case isa.OpBrr:
		t := m.Regs[in.Src1]
		if t < 0 || t >= int64(len(m.Prog.Insts)) {
			return info, m.fault(idx, "indirect branch to %d out of range", t)
		}
		info.Taken = true
		info.NextPC = int(t)
	case isa.OpCloop:
		if m.Regs[in.Dst] != 0 {
			m.setReg(in.Dst, m.Regs[in.Dst]-1)
			info.Taken = true
			info.NextPC = in.Target
		}
	case isa.OpPand:
		m.setPred(in.PD1, m.Preds[in.PS1] && m.Preds[in.PS2], &info.PredWrites)
	case isa.OpPor:
		m.setPred(in.PD1, m.Preds[in.PS1] || m.Preds[in.PS2], &info.PredWrites)
	case isa.OpPmov:
		m.setPred(in.PD1, m.Preds[in.PS1], &info.PredWrites)
	case isa.OpPinit:
		m.setPred(in.PD1, in.Imm != 0, &info.PredWrites)
	case isa.OpOut:
		m.Output = append(m.Output, m.Regs[in.Src1])
	case isa.OpHalt:
		m.Halted = true
		m.ExitCode = in.Imm
		info.Halted = true
	case isa.OpTrap:
		return info, m.fault(idx, "trap executed (if-conversion bug or explicit trap)")
	default:
		return info, m.fault(idx, "unimplemented opcode %s", in.Op)
	}

	m.PC = info.NextPC
	return info, nil
}

// Result summarises a completed run.
type Result struct {
	ExitCode  int64
	Steps     uint64
	Nullified uint64
	Output    []int64
}

// Run executes until halt or until limit dynamic instructions have been
// stepped. A limit of 0 means no limit. It returns ErrLimit (wrapped) if
// the budget is exhausted.
func (m *Machine) Run(limit uint64) (Result, error) {
	for !m.Halted {
		if limit > 0 && m.Steps >= limit {
			return m.result(), fmt.Errorf("%w (%d steps in %s)", ErrLimit, m.Steps, m.Prog.Name)
		}
		if _, err := m.Step(); err != nil {
			return m.result(), err
		}
	}
	return m.result(), nil
}

func (m *Machine) result() Result {
	return Result{ExitCode: m.ExitCode, Steps: m.Steps, Nullified: m.Nullified, Output: m.Output}
}

// RunProgram is a convenience: build a machine and run to completion.
func RunProgram(p *prog.Program, limit uint64) (Result, error) {
	m, err := New(p)
	if err != nil {
		return Result{}, err
	}
	return m.Run(limit)
}
