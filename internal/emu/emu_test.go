package emu

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// run builds a program with fn and runs it to completion.
func run(t *testing.T, fn func(b *prog.Builder)) (*Machine, Result) {
	t.Helper()
	b := prog.NewBuilder("test")
	fn(b)
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(100000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, res
}

func TestALUOps(t *testing.T) {
	m, _ := run(t, func(b *prog.Builder) {
		b.Movi(1, 10)
		b.Movi(2, 3)
		b.Add(3, 1, 2)  // 13
		b.Sub(4, 1, 2)  // 7
		b.Mul(5, 1, 2)  // 30
		b.Div(6, 1, 2)  // 3
		b.Mod(7, 1, 2)  // 1
		b.And(8, 1, 2)  // 2
		b.Or(9, 1, 2)   // 11
		b.Xor(10, 1, 2) // 9
		b.Shli(11, 1, 2)
		b.Movi(12, -16)
		b.Sari(13, 12, 2) // -4
		b.Shri(14, 2, 1)  // 1
		b.Halt(0)
	})
	want := map[isa.Reg]int64{3: 13, 4: 7, 5: 30, 6: 3, 7: 1, 8: 2, 9: 11, 10: 9, 11: 40, 13: -4, 14: 1}
	for r, v := range want {
		if m.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, m.Regs[r], v)
		}
	}
}

func TestR0HardwiredZero(t *testing.T) {
	m, _ := run(t, func(b *prog.Builder) {
		b.Movi(0, 55)
		b.Add(1, 0, 0)
		b.Halt(0)
	})
	if m.Regs[0] != 0 || m.Regs[1] != 0 {
		t.Errorf("r0 = %d, r1 = %d", m.Regs[0], m.Regs[1])
	}
}

func TestNullification(t *testing.T) {
	m, res := run(t, func(b *prog.Builder) {
		b.Movi(1, 1)
		b.Cmpi(isa.CmpEQ, 2, 3, 1, 0) // p2 = (r1==0) = false, p3 = true
		b.Movi(4, 111).QP = 2         // nullified
		b.Movi(5, 222).QP = 3         // executes
		b.Halt(0)
	})
	if m.Regs[4] != 0 {
		t.Errorf("nullified movi wrote r4 = %d", m.Regs[4])
	}
	if m.Regs[5] != 222 {
		t.Errorf("guarded-true movi: r5 = %d", m.Regs[5])
	}
	if res.Nullified != 1 {
		t.Errorf("nullified count = %d", res.Nullified)
	}
}

func TestCmpTypes(t *testing.T) {
	// p5 guards: set p5=false via a compare, then check unc/and/or effects.
	m, _ := run(t, func(b *prog.Builder) {
		b.Movi(1, 7)
		// p5 true, p6 false
		b.Cmpi(isa.CmpEQ, 5, 6, 1, 7)
		// Normal compare under false guard: no write. p10/p11 stay 0.
		b.Cmpi(isa.CmpEQ, 10, 11, 1, 7).QP = 6
		// Unc compare under false guard: both cleared even though they'd be set.
		b.Emit(isa.Inst{Op: isa.OpCmp, QP: 6, CC: isa.CmpEQ, CT: isa.CmpUnc, PD1: 12, PD2: 13, Src1: 1, Imm: 7, HasImm: true})
		// Seed p20/p21 true.
		b.Emit(isa.Inst{Op: isa.OpPinit, PD1: 20, Imm: 1})
		b.Emit(isa.Inst{Op: isa.OpPinit, PD1: 21, Imm: 1})
		// And-type with false condition clears both.
		b.Emit(isa.Inst{Op: isa.OpCmp, CC: isa.CmpEQ, CT: isa.CmpAnd, PD1: 20, PD2: 21, Src1: 1, Imm: 0, HasImm: true})
		// Or-type with true condition sets both.
		b.Emit(isa.Inst{Op: isa.OpCmp, CC: isa.CmpEQ, CT: isa.CmpOr, PD1: 22, PD2: 23, Src1: 1, Imm: 7, HasImm: true})
		// Or-type with false condition leaves p24/p25 unchanged (false).
		b.Emit(isa.Inst{Op: isa.OpCmp, CC: isa.CmpEQ, CT: isa.CmpOr, PD1: 24, PD2: 25, Src1: 1, Imm: 0, HasImm: true})
		b.Halt(0)
	})
	wantTrue := []isa.PReg{5, 22, 23}
	wantFalse := []isa.PReg{6, 10, 11, 12, 13, 20, 21, 24, 25}
	for _, p := range wantTrue {
		if !m.Preds[p] {
			t.Errorf("p%d = false, want true", p)
		}
	}
	for _, p := range wantFalse {
		if m.Preds[p] {
			t.Errorf("p%d = true, want false", p)
		}
	}
}

func TestPredicateOps(t *testing.T) {
	m, _ := run(t, func(b *prog.Builder) {
		b.Emit(isa.Inst{Op: isa.OpPinit, PD1: 1, Imm: 1})
		b.Emit(isa.Inst{Op: isa.OpPinit, PD1: 2, Imm: 0})
		b.Emit(isa.Inst{Op: isa.OpPand, PD1: 3, PS1: 1, PS2: 2}) // false
		b.Emit(isa.Inst{Op: isa.OpPor, PD1: 4, PS1: 1, PS2: 2})  // true
		b.Emit(isa.Inst{Op: isa.OpPmov, PD1: 5, PS1: 1})         // true
		b.Emit(isa.Inst{Op: isa.OpPmov, PD1: 6, PS1: 1, QP: 2})  // nullified
		b.Halt(0)
	})
	if m.Preds[3] || !m.Preds[4] || !m.Preds[5] || m.Preds[6] {
		t.Errorf("pred ops: p3=%v p4=%v p5=%v p6=%v", m.Preds[3], m.Preds[4], m.Preds[5], m.Preds[6])
	}
}

func TestP0Immutable(t *testing.T) {
	m, _ := run(t, func(b *prog.Builder) {
		b.Emit(isa.Inst{Op: isa.OpPinit, PD1: 0, Imm: 0})
		b.Halt(0)
	})
	if !m.Preds[0] {
		t.Error("p0 was cleared")
	}
}

func TestMemory(t *testing.T) {
	m, _ := run(t, func(b *prog.Builder) {
		b.Movi(1, 1000)
		b.Movi(2, 42)
		b.St(1, 5, 2)
		b.Ld(3, 1, 5)
		b.Ld(4, 1, 6) // untouched -> 0
		b.Halt(0)
	})
	if m.Regs[3] != 42 || m.Regs[4] != 0 {
		t.Errorf("r3=%d r4=%d", m.Regs[3], m.Regs[4])
	}
	snap := m.MemSnapshot()
	if snap[1005] != 42 || len(snap) != 1 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestInitialData(t *testing.T) {
	b := prog.NewBuilder("t")
	b.SetData(100, []int64{7, 8, 9})
	b.Movi(1, 100)
	b.Ld(2, 1, 1)
	b.Halt(0)
	p := b.MustProgram()
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[2] != 8 {
		t.Errorf("r2 = %d", m.Regs[2])
	}
}

func TestBranchesAndGuards(t *testing.T) {
	_, res := run(t, func(b *prog.Builder) {
		b.Movi(1, 5)
		b.Cmpi(isa.CmpGT, 2, 3, 1, 0) // p2 true
		b.BrIf(2, "yes")
		b.Out(0) // skipped
		b.Halt(1)
		b.Label("yes")
		b.Movi(4, 1)
		b.Out(4)
		b.Halt(0)
	})
	if res.ExitCode != 0 {
		t.Errorf("exit = %d", res.ExitCode)
	}
	if len(res.Output) != 1 || res.Output[0] != 1 {
		t.Errorf("output = %v", res.Output)
	}
}

func TestBranchNotTakenWhenGuardFalse(t *testing.T) {
	_, res := run(t, func(b *prog.Builder) {
		b.Movi(1, 5)
		b.Cmpi(isa.CmpLT, 2, 3, 1, 0) // p2 false
		b.BrIf(2, "bad")
		b.Halt(0)
		b.Label("bad")
		b.Halt(9)
	})
	if res.ExitCode != 0 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestCloop(t *testing.T) {
	m, _ := run(t, func(b *prog.Builder) {
		b.Movi(1, 0) // sum
		b.Movi(2, 4) // counter: body runs 5 times
		b.Label("top")
		b.Addi(1, 1, 1)
		b.Cloop(2, "top")
		b.Halt(0)
	})
	if m.Regs[1] != 5 {
		t.Errorf("loop body ran %d times, want 5", m.Regs[1])
	}
}

func TestCloopGuardFalseDoesNotDecrement(t *testing.T) {
	m, _ := run(t, func(b *prog.Builder) {
		b.Movi(1, 3)
		b.Emit(isa.Inst{Op: isa.OpPinit, PD1: 5, Imm: 0})
		b.Cloop(1, "nowhere").QP = 5
		b.Halt(0)
		b.Label("nowhere")
		b.Halt(9)
	})
	if m.Regs[1] != 3 {
		t.Errorf("nullified cloop decremented: r1 = %d", m.Regs[1])
	}
	if m.ExitCode != 0 {
		t.Errorf("nullified cloop jumped: exit %d", m.ExitCode)
	}
}

func TestBrlAndBrr(t *testing.T) {
	_, res := run(t, func(b *prog.Builder) {
		b.Movi(1, 10)
		b.Brl(30, "double") // call; r30 = link
		b.Out(1)
		b.Halt(0)
		b.Label("double")
		b.Add(1, 1, 1)
		b.Brr(30) // return
	})
	if len(res.Output) != 1 || res.Output[0] != 20 {
		t.Errorf("output = %v", res.Output)
	}
}

func TestGuardedHalt(t *testing.T) {
	_, res := run(t, func(b *prog.Builder) {
		b.Emit(isa.Inst{Op: isa.OpPinit, PD1: 1, Imm: 0})
		b.Halt(7).QP = 1 // nullified
		b.Halt(3)
	})
	if res.ExitCode != 3 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestTrapFaults(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Trap()
	p := b.MustProgram()
	if _, err := RunProgram(p, 10); err == nil {
		t.Fatal("trap did not fault")
	}
}

func TestDivByZeroFaults(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Div(1, 2, 3)
	b.Halt(0)
	if _, err := RunProgram(b.MustProgram(), 10); err == nil {
		t.Fatal("div by zero did not fault")
	}
}

func TestNegativeAddressFaults(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Movi(1, -5)
	b.Ld(2, 1, 0)
	b.Halt(0)
	if _, err := RunProgram(b.MustProgram(), 10); err == nil {
		t.Fatal("negative load did not fault")
	}
}

func TestRunLimit(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Label("x")
	b.Br("x")
	p := b.MustProgram()
	_, err := RunProgram(p, 100)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

func TestPCOutOfRangeFaults(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Movi(1, 1) // falls off the end
	p := b.MustProgram()
	if _, err := RunProgram(p, 10); err == nil {
		t.Fatal("running off the end did not fault")
	}
}

func TestBrrOutOfRangeFaults(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Movi(1, 999)
	b.Brr(1)
	if _, err := RunProgram(b.MustProgram(), 10); err == nil {
		t.Fatal("wild indirect branch did not fault")
	}
}

func TestStepAfterHaltErrors(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Halt(0)
	m, err := New(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(); err == nil {
		t.Fatal("step after halt succeeded")
	}
}

func TestStepInfoBranch(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Movi(1, 1)
	b.Cmpi(isa.CmpEQ, 2, 3, 1, 1) // p2 true
	b.BrIf(2, "end")
	b.Label("end")
	b.Halt(0)
	m, err := New(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	var branchInfo StepInfo
	for !m.Halted {
		si, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if si.Inst.IsBranch() {
			branchInfo = si
		}
	}
	if !branchInfo.Taken || !branchInfo.GuardTrue {
		t.Errorf("branch info = %+v", branchInfo)
	}
}

func TestStepInfoPredWrites(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Cmpi(isa.CmpEQ, 2, 3, 0, 0) // r0==0: p2 true, p3 false
	b.Halt(0)
	m, err := New(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	si, err := m.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(si.PredWrites) != 2 {
		t.Fatalf("pred writes = %v", si.PredWrites)
	}
	if si.PredWrites[0] != (PredWrite{2, true}) || si.PredWrites[1] != (PredWrite{3, false}) {
		t.Errorf("pred writes = %v", si.PredWrites)
	}
	if !si.CmpValue {
		t.Error("CmpValue false")
	}
}

func TestDoWhileSemantics(t *testing.T) {
	// Body runs once even with a false condition, and loops while true.
	m, _ := run(t, func(b *prog.Builder) {
		b.Movi(1, 0)
		b.Movi(2, 0)
		b.DoWhile(prog.RI(isa.CmpGT, 1, 0), func() { b.Addi(2, 2, 1) })
		b.Movi(3, 3)
		b.Movi(4, 0)
		b.DoWhile(prog.RI(isa.CmpGT, 3, 0), func() {
			b.Addi(4, 4, 1)
			b.Subi(3, 3, 1)
		})
		b.Halt(0)
	})
	if m.Regs[2] != 1 {
		t.Errorf("false-condition do-while ran %d times, want 1", m.Regs[2])
	}
	if m.Regs[4] != 3 {
		t.Errorf("counting do-while ran %d times, want 3", m.Regs[4])
	}
}

func TestSwitchSemantics(t *testing.T) {
	for val, want := range map[int64]int64{1: 10, 2: 20, 9: 99} {
		m, _ := run(t, func(b *prog.Builder) {
			b.Movi(1, val)
			b.Switch(1, []prog.SwitchCase{
				{Value: 1, Body: func() { b.Movi(2, 10) }},
				{Value: 2, Body: func() { b.Movi(2, 20) }},
			}, func() { b.Movi(2, 99) })
			b.Halt(0)
		})
		if m.Regs[2] != want {
			t.Errorf("switch(%d) = %d, want %d", val, m.Regs[2], want)
		}
	}
}

func TestWhileLoopSemantics(t *testing.T) {
	m, _ := run(t, func(b *prog.Builder) {
		b.Movi(1, 4)
		b.Movi(2, 0)
		b.While(prog.RI(isa.CmpGT, 1, 0), func() {
			b.Add(2, 2, 1)
			b.Subi(1, 1, 1)
		})
		b.Halt(0)
	})
	if m.Regs[2] != 10 {
		t.Errorf("sum = %d, want 10", m.Regs[2])
	}
}

// TestConcurrentNewSharedProgram guards the contract that any number of
// goroutines may construct machines over one already-built program.
// New re-runs Resolve, and Resolve must perform no writes on an
// already-resolved program — the harness pipelines and sweeps build
// machines for the same program concurrently. Run under -race this
// test fails if Resolve ever writes unconditionally again.
func TestConcurrentNewSharedProgram(t *testing.T) {
	b := prog.NewBuilder("shared")
	b.Movi(1, 3)
	loop := b.NewLabel("loop")
	b.Label(loop)
	b.Subi(1, 1, 1)
	b.If(prog.RI(isa.CmpGT, 1, 0), func() {
		b.Br(loop)
	})
	b.Halt(0)
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := New(p)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := m.Run(100000); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
