package serve

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
)

func TestEventJSONRoundTrip(t *testing.T) {
	events := []trace.Event{
		{
			Kind: trace.KindBranch, Step: 42, PC: 0x1234,
			Taken: true, Guard: isa.PReg(3), GuardVal: true, GuardDist: 17,
			Region: true, GuardImpliesTaken: true,
		},
		{
			Kind: trace.KindPredDef, Step: 43, PC: 0x1238,
			Guard: isa.PReg(5), Executed: true, Value: true,
			FeedsBranch: true, FeedsRegionBranch: true,
		},
		{Kind: trace.KindBranch, Step: 0, PC: 0}, // zero-valued fields survive
	}
	for i := range events {
		wire := EventToJSON(&events[i])
		blob, err := json.Marshal(wire)
		if err != nil {
			t.Fatal(err)
		}
		var back EventJSON
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatal(err)
		}
		got, err := back.Event()
		if err != nil {
			t.Fatal(err)
		}
		if got != events[i] {
			t.Errorf("event %d round trip:\n got %+v\nwant %+v", i, got, events[i])
		}
	}
}

func TestEventJSONBadKind(t *testing.T) {
	if _, err := (EventJSON{Kind: "jump"}).Event(); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	m := core.Metrics{
		Insts: 1000, Branches: 200, Mispredicts: 31,
		RegionBranches: 40, RegionMispredicts: 9,
		Filtered: 12, FilteredTrue: 3, FilterErrors: 1,
		PredDefs: 77, InsertedBits: 25,
		ByPC: map[uint64]*core.BranchStats{
			0x100: {PC: 0x100, Count: 50, Taken: 30, Mispredicts: 5, Filtered: 2, Region: true},
			0x108: {PC: 0x108, Count: 150, Taken: 10, Mispredicts: 26},
		},
	}
	wire := MetricsToJSON(m)
	if wire.MispredictRate != m.MispredictRate() || wire.MPKI != m.MPKI() {
		t.Error("derived rates not populated")
	}
	blob, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var back MetricsJSON
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("metrics round trip:\n got %+v\nwant %+v", got, m)
	}

	// No ByPC map stays nil, not empty.
	m2 := core.Metrics{Branches: 1}
	got2, err := MetricsToJSON(m2).Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if got2.ByPC != nil {
		t.Error("nil ByPC became non-nil")
	}
}

func TestMetricsJSONBadKey(t *testing.T) {
	j := MetricsJSON{ByPC: map[string]BranchStatsJSON{"not-a-pc": {}}}
	if _, err := j.Metrics(); err == nil {
		t.Error("bad by_pc key accepted")
	}
}

func TestEvalOptionsConfig(t *testing.T) {
	cfg, err := EvalOptions{}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ResolveDelay != core.DefaultResolveDelay || cfg.PGUDelay != core.DefaultPGUDelay {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.PGU != core.PGUOff {
		t.Errorf("empty pgu = %v, want off", cfg.PGU)
	}

	rd, pd := uint64(7), uint64(9)
	cfg, err = EvalOptions{
		SFPF: true, FilterTrue: true, TrainFiltered: true, PerBranch: true,
		PGU: "region", ResolveDelay: &rd, PGUDelay: &pd,
	}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.UseSFPF || !cfg.FilterTrue || !cfg.TrainFiltered || !cfg.PerBranch {
		t.Errorf("flags not applied: %+v", cfg)
	}
	if cfg.PGU != core.PGURegionGuards || cfg.ResolveDelay != 7 || cfg.PGUDelay != 9 {
		t.Errorf("overrides not applied: %+v", cfg)
	}

	if _, err := (EvalOptions{PGU: "bogus"}).Config(); err == nil {
		t.Error("bad pgu policy accepted")
	}
}
