package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The observability layer: request counters, per-endpoint latency
// histograms, and gauge callbacks, rendered in the Prometheus text
// exposition format on /metrics. Implemented on the standard library only
// (atomics plus a small registry) so the daemon stays dependency-free.

// latencyBuckets are the histogram upper bounds in seconds; an implicit
// +Inf bucket follows.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// counter is a monotonically increasing metric.
type counter struct {
	name string
	help string
	v    atomic.Uint64
}

func (c *counter) add(n uint64) { c.v.Add(n) }
func (c *counter) inc()         { c.v.Add(1) }
func (c *counter) get() uint64  { return c.v.Load() }

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	counts   []atomic.Uint64 // one per bucket, plus +Inf at the end
	sumNanos atomic.Int64
	count    atomic.Uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Uint64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	secs := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, secs)
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(d))
	h.count.Add(1)
}

// gauge is an instantaneous value read at scrape time.
type gauge struct {
	name string
	help string
	fn   func() float64
}

// telemetry is the server's metric registry. Request counters and
// latency histograms are keyed by endpoint name; creation is rare (the
// endpoint set is fixed), so a mutex guards the maps while the hot
// increment path is atomic.
type telemetry struct {
	mu       sync.Mutex
	requests map[string]*atomic.Uint64 // "endpoint\x00code" → count
	latency  map[string]*histogram     // endpoint → histogram
	gauges   []gauge

	events          counter
	batches         counter
	backpressure    counter
	rateLimited     counter
	sessCreated     counter
	sessClosed      counter
	sessEvicted     counter
	sessExpired     counter
	sessSpilled     counter
	warmRestores    counter
	restoreFailures counter
	spillErrors     counter
	sweeps          counter
	sweepEvals      counter
}

func newTelemetry() *telemetry {
	t := &telemetry{
		requests: make(map[string]*atomic.Uint64),
		latency:  make(map[string]*histogram),
	}
	t.events = counter{name: "bpservd_events_total", help: "Branch/predicate events fed into sessions."}
	t.batches = counter{name: "bpservd_batches_total", help: "Event batches accepted."}
	t.backpressure = counter{name: "bpservd_backpressure_total", help: "Batches rejected with 429 because a shard queue was full."}
	t.rateLimited = counter{name: "bpservd_rate_limited_total", help: "Requests rejected by the rate limiter."}
	t.sessCreated = counter{name: "bpservd_sessions_created_total", help: "Sessions created."}
	t.sessClosed = counter{name: "bpservd_sessions_closed_total", help: "Sessions closed by clients."}
	t.sessEvicted = counter{name: "bpservd_sessions_evicted_total", help: "Sessions evicted for capacity (LRU)."}
	t.sessExpired = counter{name: "bpservd_sessions_expired_total", help: "Sessions expired by idle TTL."}
	t.sessSpilled = counter{name: "bpservd_sessions_spilled_total", help: "Session snapshots written to the spill directory (eviction, expiry, or shutdown)."}
	t.warmRestores = counter{name: "bpservd_sessions_warm_restored_total", help: "Sessions restored from the spill directory on touch."}
	t.restoreFailures = counter{name: "bpservd_snapshot_restore_failures_total", help: "Snapshots that failed to decode (spill files or restore requests)."}
	t.spillErrors = counter{name: "bpservd_spill_errors_total", help: "Failed attempts to write a session snapshot to the spill directory."}
	t.sweeps = counter{name: "bpservd_sweeps_total", help: "Sweep requests executed."}
	t.sweepEvals = counter{name: "bpservd_sweep_evals_total", help: "Individual spec evaluations across sweeps."}
	return t
}

func (t *telemetry) addGauge(name, help string, fn func() float64) {
	t.gauges = append(t.gauges, gauge{name: name, help: help, fn: fn})
}

// countRequest records one finished request for an endpoint/status pair.
func (t *telemetry) countRequest(endpoint string, code int, d time.Duration) {
	key := fmt.Sprintf("%s\x00%d", endpoint, code)
	t.mu.Lock()
	c := t.requests[key]
	if c == nil {
		c = new(atomic.Uint64)
		t.requests[key] = c
	}
	h := t.latency[endpoint]
	if h == nil {
		h = newHistogram()
		t.latency[endpoint] = h
	}
	t.mu.Unlock()
	c.Add(1)
	h.observe(d)
}

// render writes every metric in Prometheus text exposition format, in a
// deterministic order.
func (t *telemetry) render(w io.Writer) {
	writeHeader := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	t.mu.Lock()
	reqKeys := make([]string, 0, len(t.requests))
	for k := range t.requests {
		reqKeys = append(reqKeys, k)
	}
	latKeys := make([]string, 0, len(t.latency))
	for k := range t.latency {
		latKeys = append(latKeys, k)
	}
	reqs := make(map[string]uint64, len(reqKeys))
	for _, k := range reqKeys {
		reqs[k] = t.requests[k].Load()
	}
	hists := make(map[string]*histogram, len(latKeys))
	for _, k := range latKeys {
		hists[k] = t.latency[k]
	}
	t.mu.Unlock()
	sort.Strings(reqKeys)
	sort.Strings(latKeys)

	writeHeader("bpservd_requests_total", "HTTP requests by endpoint and status code.", "counter")
	for _, k := range reqKeys {
		var endpoint, code string
		for i := 0; i < len(k); i++ {
			if k[i] == 0 {
				endpoint, code = k[:i], k[i+1:]
				break
			}
		}
		fmt.Fprintf(w, "bpservd_requests_total{endpoint=%q,code=%q} %d\n", endpoint, code, reqs[k])
	}

	writeHeader("bpservd_request_seconds", "Request latency by endpoint.", "histogram")
	for _, ep := range latKeys {
		h := hists[ep]
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "bpservd_request_seconds_bucket{endpoint=%q,le=%q} %d\n", ep, fmt.Sprintf("%g", ub), cum)
		}
		cum += h.counts[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "bpservd_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(w, "bpservd_request_seconds_sum{endpoint=%q} %g\n", ep, time.Duration(h.sumNanos.Load()).Seconds())
		fmt.Fprintf(w, "bpservd_request_seconds_count{endpoint=%q} %d\n", ep, h.count.Load())
	}

	for _, c := range []*counter{
		&t.events, &t.batches, &t.backpressure, &t.rateLimited,
		&t.sessCreated, &t.sessClosed, &t.sessEvicted, &t.sessExpired,
		&t.sessSpilled, &t.warmRestores, &t.restoreFailures, &t.spillErrors,
		&t.sweeps, &t.sweepEvals,
	} {
		writeHeader(c.name, c.help, "counter")
		fmt.Fprintf(w, "%s %d\n", c.name, c.get())
	}

	for _, g := range t.gauges {
		writeHeader(g.name, g.help, "gauge")
		fmt.Fprintf(w, "%s %g\n", g.name, g.fn())
	}
}
