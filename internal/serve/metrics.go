package serve

import (
	"repro/internal/buildinfo"
	"repro/internal/telemetry"
)

// The observability layer: request counters, per-endpoint latency
// histograms, and gauge callbacks, rendered in the Prometheus text
// exposition format on /metrics. The registry, tracer, and exposition
// renderer live in internal/telemetry and are shared with the bprouter;
// this file only declares bpservd's metric families.

// latencyBuckets are the histogram upper bounds in seconds; an implicit
// +Inf bucket follows.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// serverMetrics is bpservd's metric set on the shared telemetry
// registry. Request accounting is labeled by endpoint and status code;
// the per-endpoint handles are resolved once at route-registration time
// (see Server.instrument), so the per-request path is two atomic adds
// and a histogram observation — no locks, no allocation.
type serverMetrics struct {
	reg *telemetry.Registry

	requests *telemetry.CounterVec   // bpservd_requests_total{endpoint,code}
	latency  *telemetry.HistogramVec // bpservd_request_seconds{endpoint}

	events          *telemetry.Counter
	batches         *telemetry.Counter
	backpressure    *telemetry.Counter
	rateLimited     *telemetry.Counter
	sessCreated     *telemetry.Counter
	sessClosed      *telemetry.Counter
	sessEvicted     *telemetry.Counter
	sessExpired     *telemetry.Counter
	sessSpilled     *telemetry.Counter
	warmRestores    *telemetry.Counter
	restoreFailures *telemetry.Counter
	spillErrors     *telemetry.Counter
	sweeps          *telemetry.Counter
	sweepEvals      *telemetry.Counter
	schedPasses     *telemetry.Counter
	schedGrouped    *telemetry.Counter
}

func newServerMetrics() *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{reg: reg}
	m.requests = reg.CounterVec("bpservd_requests_total", "HTTP requests by endpoint and status code.", "endpoint", "code")
	m.latency = reg.HistogramVec("bpservd_request_seconds", "Request latency by endpoint.", latencyBuckets, "endpoint")
	m.events = reg.Counter("bpservd_events_total", "Branch/predicate events fed into sessions.")
	m.batches = reg.Counter("bpservd_batches_total", "Event batches accepted.")
	m.backpressure = reg.Counter("bpservd_backpressure_total", "Batches rejected with 429 because a shard queue was full.")
	m.rateLimited = reg.Counter("bpservd_rate_limited_total", "Requests rejected by the rate limiter.")
	m.sessCreated = reg.Counter("bpservd_sessions_created_total", "Sessions created.")
	m.sessClosed = reg.Counter("bpservd_sessions_closed_total", "Sessions closed by clients.")
	m.sessEvicted = reg.Counter("bpservd_sessions_evicted_total", "Sessions evicted for capacity (LRU).")
	m.sessExpired = reg.Counter("bpservd_sessions_expired_total", "Sessions expired by idle TTL.")
	m.sessSpilled = reg.Counter("bpservd_sessions_spilled_total", "Session snapshots written to the spill directory (eviction, expiry, or shutdown).")
	m.warmRestores = reg.Counter("bpservd_sessions_warm_restored_total", "Sessions restored from the spill directory on touch.")
	m.restoreFailures = reg.Counter("bpservd_snapshot_restore_failures_total", "Snapshots that failed to decode (spill files or restore requests).")
	m.spillErrors = reg.Counter("bpservd_spill_errors_total", "Failed attempts to write a session snapshot to the spill directory.")
	m.sweeps = reg.Counter("bpservd_sweeps_total", "Sweep requests executed.")
	m.sweepEvals = reg.Counter("bpservd_sweep_evals_total", "Individual spec evaluations across sweeps.")
	m.schedPasses = reg.Counter("bpservd_sched_passes_total", "Shard scheduling passes (wakeups that executed at least one op).")
	m.schedGrouped = reg.Counter("bpservd_sched_grouped_batches_total", "Feed batches that ran grouped with at least one other batch for the same session in a single scheduling pass.")
	telemetry.RegisterBuildInfo(reg, buildinfo.Version(), buildinfo.Revision())
	return m
}
