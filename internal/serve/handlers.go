package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ifconv"
	"repro/internal/sim"
	"repro/internal/snap"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, errCode, msg string) {
	body := ErrorBody{}
	body.Error.Code = errCode
	body.Error.Message = msg
	// The instrument wrapper echoes the request's correlation ID into
	// the response headers before the handler runs; surfacing it in the
	// envelope lets a client quote the exact ID when reporting a
	// failure, and lets an operator grep it across tiers.
	body.Error.RequestID = w.Header().Get(telemetry.RequestIDHeader)
	writeJSON(w, code, body)
}

// writeMgrError maps a session-manager error onto the error envelope.
func writeMgrError(w http.ResponseWriter, s *Server, err error) {
	code, errCode := httpStatus(err)
	if errors.Is(err, ErrBusy) {
		s.tel.backpressure.Inc()
	}
	writeError(w, code, errCode, err.Error())
}

// decodeJSON reads a JSON body, translating an oversized body into 413.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON body: "+err.Error())
		return false
	}
	return true
}

func isBinary(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return strings.HasPrefix(ct, "application/octet-stream") || strings.HasPrefix(ct, "application/x-p64-trace")
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	spec, err := sim.Parse(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_spec", err.Error())
		return
	}
	cfg, err := req.Config()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	cfg.Predictor, err = spec.New()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_spec", err.Error())
		return
	}
	inf, err := s.mgr.Create(r.Context(), req.ID, spec, cfg)
	if err != nil {
		writeMgrError(w, s, err)
		return
	}
	writeJSON(w, http.StatusCreated, sessionJSON(inf, false))
}

// batchPool recycles event scratch buffers for the binary batch-feed hot
// path: a steady-state feed decodes each P64T batch into a pooled slice
// and hands it to the session's single FeedBatch call, so the per-batch
// cost is one header allocation rather than one event-array allocation
// per request. Buffers are only returned to the pool when the shard op
// provably ran or never will (see handlePostEvents).
var batchPool = sync.Pool{
	New: func() any {
		b := make([]trace.Event, 0, 8192)
		return &b
	},
}

// readerPool recycles the bufio.Reader each binary batch decode reads
// the request body through. 64 KiB of buffer turns a 8192-event post
// into a handful of large reads feeding the decoder's bulk Peek/Discard
// path, and pooling it keeps the per-request allocation profile flat.
var readerPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 64<<10) },
}

func (s *Server) handlePostEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var events []trace.Event
	var insts, seq uint64
	var pooled *[]trace.Event
	if v := r.URL.Query().Get("seq"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil || n == 0 {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("bad seq %q", v))
			return
		}
		seq = n
	}
	if isBinary(r) {
		pooled = batchPool.Get().(*[]trace.Event)
		br := readerPool.Get().(*bufio.Reader)
		br.Reset(r.Body)
		tr, err := trace.ReadTraceFrom(br, *pooled)
		br.Reset(nil) // drop the body reference before pooling
		readerPool.Put(br)
		if err != nil {
			batchPool.Put(pooled)
			var maxErr *http.MaxBytesError
			if errors.As(err, &maxErr) {
				writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
					fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
				return
			}
			writeError(w, http.StatusBadRequest, "bad_trace", err.Error())
			return
		}
		*pooled = tr.Events[:0] // keep the (possibly grown) backing array
		events, insts = tr.Events, tr.Insts
	} else {
		var req BatchRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		events = make([]trace.Event, len(req.Events))
		for i, ej := range req.Events {
			ev, err := ej.Event()
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad_event", fmt.Sprintf("event %d: %v", i, err))
				return
			}
			events[i] = ev
		}
		insts = req.Insts
		if req.Seq != 0 {
			seq = req.Seq
		}
	}
	withMetrics := r.URL.Query().Get("metrics") == "1"
	res, err := s.mgr.Feed(r.Context(), id, events, insts, seq, withMetrics)
	if pooled != nil && (err == nil || errors.Is(err, ErrNotFound) || errors.Is(err, ErrBusy) ||
		errors.Is(err, ErrFull) || errors.Is(err, ErrClosing) || errors.Is(err, ErrSeqGap)) {
		// The op completed (or was refused before enqueue), so the shard
		// holds no reference to the buffer. A context error instead means
		// the op may still be queued — the buffer is dropped, not pooled.
		batchPool.Put(pooled)
	}
	if err != nil {
		writeMgrError(w, s, err)
		return
	}
	resp := BatchResponse{Events: res.Events, TotalEvents: res.TotalEvents, Duplicate: res.Duplicate}
	if res.Info != nil {
		mj := MetricsToJSON(res.Info.Metrics)
		resp.Metrics = &mj
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	inf, err := s.mgr.Metrics(r.Context(), r.PathValue("id"))
	if err != nil {
		writeMgrError(w, s, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionJSON(inf, true))
}

// handleStats serves the per-branch introspection report: how many
// static branches a session has seen, aggregate accuracy, and the top-k
// hardest (most mispredicted) branches. ?k= adjusts the ranking depth.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 1000 {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("bad k %q (want 1..1000)", v))
			return
		}
		k = n
	}
	inf, rep, perBranch, err := s.mgr.Stats(r.Context(), r.PathValue("id"), k)
	if err != nil {
		writeMgrError(w, s, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionStatsJSON(inf, rep, perBranch))
}

// handleGetSnapshot streams a session's P64S snapshot without removing
// the session: half of the bprouter's migration path (snapshot from the
// old backend, restore into the new one), and an operator backup tool.
func (s *Server) handleGetSnapshot(w http.ResponseWriter, r *http.Request) {
	blob, err := s.mgr.Snapshot(r.Context(), r.PathValue("id"))
	if err != nil {
		writeMgrError(w, s, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

// handleRestoreSession installs an uploaded P64S snapshot as a session.
// The snapshot self-validates (checksum, version, config key) before any
// state is constructed; the URL ID must match the snapshot's own.
func (s *Server) handleRestoreSession(w http.ResponseWriter, r *http.Request) {
	blob, err := io.ReadAll(r.Body)
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	res, err := snap.Decode(blob)
	if err != nil {
		s.tel.restoreFailures.Inc()
		code := "bad_snapshot"
		if errors.Is(err, snap.ErrVersion) {
			code = "snapshot_version"
		}
		writeError(w, http.StatusBadRequest, code, err.Error())
		return
	}
	inf, err := s.mgr.Restore(r.Context(), r.PathValue("id"), res)
	if err != nil {
		writeMgrError(w, s, err)
		return
	}
	writeJSON(w, http.StatusCreated, sessionJSON(inf, false))
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	inf, err := s.mgr.Delete(r.Context(), r.PathValue("id"))
	if err != nil {
		writeMgrError(w, s, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionJSON(inf, true))
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	infos, err := s.mgr.List(r.Context())
	if err != nil {
		writeMgrError(w, s, err)
		return
	}
	out := struct {
		Count    int           `json:"count"`
		Sessions []SessionJSON `json:"sessions"`
	}{Count: len(infos), Sessions: make([]SessionJSON, 0, len(infos))}
	for _, inf := range infos {
		out.Sessions = append(out.Sessions, sessionJSON(inf, false))
	}
	writeJSON(w, http.StatusOK, out)
}

// parseSweepQuery reads the query-parameter form of a sweep request used
// with binary trace uploads.
func parseSweepQuery(r *http.Request) (SweepRequest, error) {
	q := r.URL.Query()
	var req SweepRequest
	for _, v := range q["spec"] {
		for _, f := range strings.Split(v, ",") {
			if f = strings.TrimSpace(f); f != "" {
				req.Specs = append(req.Specs, f)
			}
		}
	}
	boolArg := func(key string) bool { v := q.Get(key); return v == "1" || v == "true" }
	req.SFPF = boolArg("sfpf")
	req.FilterTrue = boolArg("filter_true")
	req.TrainFiltered = boolArg("train_filtered")
	req.PerBranch = boolArg("per_branch")
	req.PGU = q.Get("pgu")
	for key, dst := range map[string]**uint64{"resolve_delay": &req.ResolveDelay, "pgu_delay": &req.PGUDelay} {
		if v := q.Get(key); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return req, fmt.Errorf("bad %s %q", key, v)
			}
			*dst = &n
		}
	}
	if v := q.Get("timeout_ms"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return req, fmt.Errorf("bad timeout_ms %q", v)
		}
		req.TimeoutMS = n
	}
	return req, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	var tr *trace.Trace
	if isBinary(r) {
		var err error
		if req, err = parseSweepQuery(r); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		if tr, err = trace.ReadTrace(r.Body); err != nil {
			writeError(w, http.StatusBadRequest, "bad_trace", err.Error())
			return
		}
	} else if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "no predictor specs given")
		return
	}
	if len(req.Specs) > s.cfg.MaxSweepSpecs {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("%d specs exceeds the per-request limit of %d", len(req.Specs), s.cfg.MaxSweepSpecs))
		return
	}
	specs := make([]sim.Spec, len(req.Specs))
	for i, text := range req.Specs {
		sp, err := sim.Parse(text)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_spec", err.Error())
			return
		}
		specs[i] = sp
	}
	baseCfg, err := req.Config()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	if tr == nil {
		if req.Workload == "" {
			writeError(w, http.StatusBadRequest, "bad_request", "need a workload name or an uploaded trace")
			return
		}
		wl, err := workload.ByName(req.Workload)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_workload", err.Error())
			return
		}
		limit := req.Limit
		if limit == 0 {
			limit = 2_000_000
		}
		if limit > s.cfg.MaxSweepLimit {
			limit = s.cfg.MaxSweepLimit
		}
		p := wl.Build()
		if req.Convert {
			cp, _, err := ifconv.Convert(p, ifconv.Config{})
			if err != nil {
				writeError(w, http.StatusInternalServerError, "internal", err.Error())
				return
			}
			p = cp
		}
		if tr, err = trace.Collect(p, limit); err != nil {
			writeError(w, http.StatusBadRequest, "bad_workload", err.Error())
			return
		}
	}

	// Per-request deadline; the context is the request's, so a client
	// disconnect cancels the fan-out mid-sweep.
	timeout := s.cfg.SweepTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	s.tel.sweeps.Inc()
	s.tel.sweepEvals.Add(uint64(len(specs)))
	rows, err := sim.Map(ctx, specs, s.cfg.SweepWorkers, func(ctx context.Context, sp sim.Spec) (SweepRow, error) {
		cfg := baseCfg
		var err error
		if cfg.Predictor, err = sp.New(); err != nil {
			return SweepRow{}, err
		}
		m, err := core.EvaluateStream(&ctxReader{ctx: ctx, r: tr.Replay()}, cfg)
		if err != nil {
			return SweepRow{}, err
		}
		return SweepRow{Spec: sp.String(), Metrics: MetricsToJSON(m)}, nil
	})
	if err != nil {
		code, errCode := http.StatusInternalServerError, "internal"
		if ctx.Err() != nil {
			code, errCode = http.StatusGatewayTimeout, "timeout"
		}
		writeError(w, code, errCode, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, SweepResponse{Workload: tr.Name, Events: len(tr.Events), Rows: rows})
}

func (s *Server) handlePredictors(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, PredictorsResponse{Kinds: sim.Kinds(), Usage: sim.Usage()})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	// Registry workloads first, then the synthetic characterization
	// catalog; any other "syn:..." point resolves by name in sweeps
	// even though only the catalog grid is listed.
	ws := append(workload.All(), workload.Synthetics()...)
	out := make([]WorkloadJSON, len(ws))
	for i, wl := range ws {
		out[i] = WorkloadJSON{Name: wl.Name, Description: wl.Description}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetricsPage(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.tel.reg.Render(w)
}

// ctxReader wraps a trace reader with periodic context checks, so a
// cancelled sweep (timeout or client disconnect) stops mid-replay instead
// of finishing the whole trace first.
type ctxReader struct {
	ctx context.Context
	r   trace.Reader
	n   int
	err error
}

func (c *ctxReader) Next(ev *trace.Event) bool {
	if c.err != nil {
		return false
	}
	if c.n++; c.n&1023 == 0 {
		if err := c.ctx.Err(); err != nil {
			c.err = err
			return false
		}
	}
	return c.r.Next(ev)
}

func (c *ctxReader) Err() error {
	if c.err != nil {
		return c.err
	}
	return c.r.Err()
}

func (c *ctxReader) Counts() trace.Counts { return c.r.Counts() }
