// Package serve exposes the simulation engine as a long-running HTTP
// service: prediction-as-a-service on top of the predictor registry
// (internal/sim), the incremental evaluator (internal/core), and the
// trace wire format (internal/trace).
//
// The service has three request shapes:
//
//   - Sessions: a client creates a session bound to any registry spec and
//     mechanism configuration, streams branch/predicate events to it in
//     batches (JSON or binary P64T), and reads incremental metrics — the
//     online evaluation loop of Lin & Tarsa's "helper predictors against
//     live branch streams". Sessions are sharded across a fixed worker
//     set with single-writer ownership (no per-event locking), bounded in
//     count and approximate memory, LRU-evicted under capacity pressure,
//     and expired by idle TTL.
//   - Sweeps: a grid of specs evaluated against a named workload or an
//     uploaded trace, fanned out over sim.Sweep with per-request timeout
//     and cancellation on client disconnect.
//   - Observability: /metrics (Prometheus text format, no external
//     dependencies), /debug/pprof, structured request logs, and a
//     consistent JSON error envelope.
//
// Robustness: request-size and rate limits, 429 backpressure when a shard
// batch queue fills, and graceful shutdown that drains queued session
// work (shut the http.Server down first so no handler is mid-enqueue,
// then Close the serve.Server).
package serve

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Config parameterises the server. The zero value gets sensible
// defaults from New.
type Config struct {
	// Shards is the number of session-owning workers; 0 means GOMAXPROCS.
	Shards int
	// MaxSessions bounds resident sessions across all shards.
	MaxSessions int
	// MaxSessionBytes bounds the approximate resident session memory.
	MaxSessionBytes int64
	// SessionTTL expires sessions idle longer than this; 0 disables.
	SessionTTL time.Duration
	// MinEvictIdle is the minimum idle time before a session may be
	// LRU-evicted for capacity; live sessions are never evicted.
	MinEvictIdle time.Duration
	// QueueDepth is the per-shard op queue; a full queue rejects batches
	// with 429.
	QueueDepth int
	// SpillDir, when set, turns eviction into demotion: sessions evicted
	// for capacity, expired by TTL, or live at shutdown are snapshotted
	// (internal/snap) into this directory and warm-restored on their next
	// touch. Backends sharing one spill directory hand sessions off to
	// each other across restarts and failovers. Empty disables spilling.
	SpillDir string

	// MaxBody caps request body size in bytes.
	MaxBody int64
	// RatePerSec enables a global token-bucket rate limit on /v1
	// endpoints; 0 disables.
	RatePerSec float64
	// RateBurst is the bucket size when rate limiting is on.
	RateBurst int

	// SweepTimeout caps a sweep request that sets no timeout_ms.
	SweepTimeout time.Duration
	// SweepWorkers is the sweep fan-out; 0 means GOMAXPROCS.
	SweepWorkers int
	// MaxSweepSpecs caps the grid size of one sweep request.
	MaxSweepSpecs int
	// MaxSweepLimit caps the emulation step limit of a named-workload sweep.
	MaxSweepLimit uint64

	// SlowRequest is the latency threshold above which a request gets a
	// structured slow_request log line; 0 disables.
	SlowRequest time.Duration

	// Logger receives one structured line per request; nil discards.
	Logger *log.Logger
	// Now is the clock (tests may fake it).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxSessionBytes <= 0 {
		c.MaxSessionBytes = 256 << 20
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 10 * time.Minute
	}
	if c.MinEvictIdle == 0 {
		c.MinEvictIdle = 250 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 64 << 20
	}
	if c.RateBurst <= 0 {
		c.RateBurst = 128
	}
	if c.SweepTimeout <= 0 {
		c.SweepTimeout = 30 * time.Second
	}
	if c.MaxSweepSpecs <= 0 {
		c.MaxSweepSpecs = 64
	}
	if c.MaxSweepLimit == 0 {
		c.MaxSweepLimit = 10_000_000
	}
	if c.Logger == nil {
		c.Logger = log.New(io.Discard, "", 0)
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Server is the serving subsystem: session manager, sweep runner, and
// observability, behind one http.Handler.
type Server struct {
	cfg    Config
	tel    *serverMetrics
	trace  *telemetry.Tracer
	mgr    *sessionManager
	mux    *http.ServeMux
	bucket *tokenBucket
	log    *log.Logger
}

// h2pTopK is how many hardest branches the aggregate bpservd_h2p_*
// metric families export per scrape.
const h2pTopK = 10

// New builds a Server from the config (zero value OK). It fails only
// when a configured spill directory cannot be created or scanned.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	tel := newServerMetrics()
	var spill *spillStore
	if cfg.SpillDir != "" {
		var err error
		if spill, err = newSpillStore(cfg.SpillDir); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:   cfg,
		tel:   tel,
		trace: telemetry.NewTracer("bpservd", cfg.Logger, cfg.SlowRequest),
		mgr:   newSessionManager(cfg, tel, spill),
		mux:   http.NewServeMux(),
		log:   cfg.Logger,
	}
	if cfg.RatePerSec > 0 {
		s.bucket = newTokenBucket(cfg.RatePerSec, float64(cfg.RateBurst), cfg.Now)
	}
	tel.reg.Gauge("bpservd_sessions_live", "Resident sessions.", func() float64 { return float64(s.mgr.Live()) })
	tel.reg.Gauge("bpservd_session_bytes", "Approximate resident session memory in bytes.", func() float64 { return float64(s.mgr.Bytes()) })
	tel.reg.Gauge("bpservd_queue_depth", "Queued, unprocessed session operations across shards.", func() float64 { return float64(s.mgr.QueueDepth()) })
	if spill != nil {
		// Counted from the directory at scrape time: with a shared spill
		// dir, another backend's restores would drift any local deltas.
		tel.reg.Gauge("bpservd_spill_bytes", "Bytes of spilled session snapshots on disk.", func() float64 {
			_, b := spill.stats()
			return float64(b)
		})
		tel.reg.Gauge("bpservd_spill_files", "Spilled session snapshots on disk.", func() float64 {
			f, _ := spill.stats()
			return float64(f)
		})
	}
	// The H2P families rank the hardest branches across every resident
	// session at scrape time (each collect runs its own shard sweep, so
	// the two families may lag each other by in-flight batches).
	tel.reg.GaugeVec("bpservd_h2p_events",
		"Executions of the hardest-to-predict branches across resident sessions (top ranked by mispredictions).",
		[]string{"pc"}, func(emit func([]string, float64)) {
			for _, bs := range s.mgr.H2PTop(h2pTopK) {
				emit([]string{fmt.Sprintf("0x%x", bs.PC)}, float64(bs.Count))
			}
		})
	tel.reg.GaugeVec("bpservd_h2p_mispredicts",
		"Mispredictions of the hardest-to-predict branches across resident sessions (top ranked by mispredictions).",
		[]string{"pc"}, func(emit func([]string, float64)) {
			for _, bs := range s.mgr.H2PTop(h2pTopK) {
				emit([]string{fmt.Sprintf("0x%x", bs.PC)}, float64(bs.Mispredicts))
			}
		})

	s.mux.Handle("POST /v1/sessions", s.api("create_session", s.handleCreateSession))
	s.mux.Handle("GET /v1/sessions", s.api("list_sessions", s.handleListSessions))
	s.mux.Handle("POST /v1/sessions/{id}/events", s.api("post_events", s.handlePostEvents))
	s.mux.Handle("GET /v1/sessions/{id}", s.api("get_session", s.handleGetSession))
	s.mux.Handle("GET /v1/sessions/{id}/stats", s.api("get_stats", s.handleStats))
	s.mux.Handle("GET /v1/sessions/{id}/snapshot", s.api("get_snapshot", s.handleGetSnapshot))
	s.mux.Handle("POST /v1/sessions/{id}/restore", s.api("restore_session", s.handleRestoreSession))
	s.mux.Handle("DELETE /v1/sessions/{id}", s.api("delete_session", s.handleDeleteSession))
	s.mux.Handle("POST /v1/sweep", s.api("sweep", s.handleSweep))
	s.mux.Handle("GET /v1/predictors", s.api("predictors", s.handlePredictors))
	s.mux.Handle("GET /v1/workloads", s.api("workloads", s.handleWorkloads))
	s.mux.Handle("GET /healthz", s.instrument("healthz", false, s.handleHealthz))
	s.mux.Handle("GET /metrics", s.instrument("metrics", false, s.handleMetricsPage))
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, nil
}

// MustNew is New for configurations known valid (tests, in-process
// benchmark servers); it panics on error.
func MustNew(cfg Config) *Server {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the session shards and stops their workers. Call it after
// http.Server.Shutdown has returned, so no handler is mid-enqueue; queued
// batches finish evaluating before Close returns. It reports the number
// of sessions that were still live.
func (s *Server) Close() int64 { return s.mgr.Close() }

// api wraps an API handler with rate limiting plus instrumentation.
func (s *Server) api(endpoint string, h http.HandlerFunc) http.Handler {
	return s.instrument(endpoint, true, h)
}

// statusWriter captures the response code and size for metrics/logs.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// instrument applies the cross-cutting request policy: optional rate
// limiting, body size capping, request-ID propagation, latency/status
// accounting, and one structured log line per request. The endpoint's
// metric handles are resolved once here, at route-registration time, so
// the per-request accounting allocates nothing.
func (s *Server) instrument(endpoint string, limited bool, h http.HandlerFunc) http.Handler {
	hist := s.tel.latency.With(endpoint)
	codes := telemetry.NewCodeCounter(s.tel.requests, endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.cfg.Now()
		rid := s.trace.EnsureRequestID(r)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		// Echo the ID before the handler runs, so error envelopes (and
		// the client) can read it back from the response.
		sw.Header().Set(telemetry.RequestIDHeader, rid)
		if limited && s.bucket != nil && !s.bucket.allow() {
			s.tel.rateLimited.Inc()
			writeError(sw, http.StatusTooManyRequests, "rate_limited", "request rate limit exceeded")
		} else {
			if r.Body != nil {
				r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBody)
			}
			h(sw, r)
		}
		d := s.cfg.Now().Sub(start)
		codes.Code(sw.code).Inc()
		hist.ObserveDuration(d)
		s.trace.Record(telemetry.Span{
			RequestID: rid, Endpoint: endpoint, Status: sw.code, Start: start, Duration: d,
		})
		s.log.Printf("method=%s path=%s endpoint=%s status=%d dur_us=%d bytes=%d rid=%s",
			r.Method, r.URL.Path, endpoint, sw.code, d.Microseconds(), sw.bytes, rid)
	})
}

// tokenBucket is a minimal global rate limiter (stdlib only).
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate, burst float64, now func() time.Time) *tokenBucket {
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

func (b *tokenBucket) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// httpStatus maps a manager/handler error to its status code and
// machine-readable error code.
func httpStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, ErrExists):
		return http.StatusConflict, "exists"
	case errors.Is(err, ErrSeqGap):
		return http.StatusConflict, "seq_gap"
	case errors.Is(err, ErrBadID):
		return http.StatusBadRequest, "bad_id"
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, ErrFull):
		return http.StatusServiceUnavailable, "capacity"
	case errors.Is(err, ErrClosing):
		return http.StatusServiceUnavailable, "shutting_down"
	default:
		return http.StatusInternalServerError, "internal"
	}
}
