package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// spillServer builds a server with a per-test spill directory and tight
// capacity so eviction is easy to force.
func spillServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.SpillDir = t.TempDir()
	s := MustNew(cfg)
	t.Cleanup(func() { s.Close() })
	return s
}

func feedAll(t *testing.T, s *Server, id string, tr *trace.Trace, seq uint64) {
	t.Helper()
	batch := append([]trace.Event(nil), tr.Events...)
	if _, err := s.mgr.Feed(context.Background(), id, batch, tr.Insts, seq, false); err != nil {
		t.Fatal(err)
	}
}

// TestEvictToDiskAndWarmRestore forces an LRU eviction with a spill
// directory configured, then touches the evicted session again: it must
// come back from disk with metrics identical to a never-evicted run.
func TestEvictToDiskAndWarmRestore(t *testing.T) {
	s := spillServer(t, Config{
		Shards: 1, MaxSessions: 1,
		MinEvictIdle: time.Nanosecond,
		SessionTTL:   time.Hour,
	})
	ctx := context.Background()
	tr := testTrace()

	first := mgrSession(t, s, "gshare:12:8")
	feedAll(t, s, first, tr, 0)
	time.Sleep(time.Millisecond) // put first past MinEvictIdle

	// Creating a second session in a 1-session table evicts the first —
	// with a spill dir, that spills it instead of dropping it.
	second := mgrSession(t, s, "bimodal:10")
	if s.tel.sessSpilled.Value() == 0 {
		t.Fatal("eviction did not spill")
	}
	if f, b := s.mgr.spill.stats(); f == 0 || b == 0 {
		t.Fatal("spill accounting shows no file")
	}

	// Touching the evicted session warm-restores it (and evicts the
	// other one in turn).
	time.Sleep(time.Millisecond)
	inf, err := s.mgr.Metrics(ctx, first)
	if err != nil {
		t.Fatalf("evicted session did not restore: %v", err)
	}
	if s.tel.warmRestores.Value() == 0 {
		t.Fatal("restore not counted")
	}
	want := directMetrics(t, tr, "gshare:12:8", testEvalOptions(), 1)
	if !reflect.DeepEqual(inf.Metrics, want) {
		t.Fatalf("restored metrics diverge:\ngot  %+v\nwant %+v", inf.Metrics, want)
	}

	// The restored session keeps accumulating correctly.
	time.Sleep(time.Millisecond)
	feedAll(t, s, first, tr, 0)
	inf, err = s.mgr.Metrics(ctx, first)
	if err != nil {
		t.Fatal(err)
	}
	want2 := directMetrics(t, tr, "gshare:12:8", testEvalOptions(), 2)
	if !reflect.DeepEqual(inf.Metrics, want2) {
		t.Fatalf("metrics diverge after post-restore feed:\ngot  %+v\nwant %+v", inf.Metrics, want2)
	}
	_ = second
}

// TestCloseSpillsLiveSessions: SIGTERM-style shutdown must leave every
// live session on disk, and a second server sharing the directory must
// pick it up — the zero-lost-state half of a backend failover.
func TestCloseSpillsLiveSessions(t *testing.T) {
	dir := t.TempDir()
	s1 := MustNew(Config{Shards: 2, SpillDir: dir})
	tr := testTrace()
	id := mgrSession(t, s1, "perceptron")
	feedAll(t, s1, id, tr, 1)
	s1.Close()

	s2 := MustNew(Config{Shards: 2, SpillDir: dir})
	defer s2.Close()
	inf, err := s2.mgr.Metrics(context.Background(), id)
	if err != nil {
		t.Fatalf("session did not survive shutdown: %v", err)
	}
	want := directMetrics(t, tr, "perceptron", testEvalOptions(), 1)
	if !reflect.DeepEqual(inf.Metrics, want) {
		t.Fatalf("metrics diverge across shutdown:\ngot  %+v\nwant %+v", inf.Metrics, want)
	}
	if inf.LastSeq != 1 {
		t.Fatalf("lastSeq lost across shutdown: %d", inf.LastSeq)
	}
}

// TestSeqDedup: retried batches (same seq) must ack without re-applying;
// a gap must be refused.
func TestSeqDedup(t *testing.T) {
	s := MustNew(Config{Shards: 1})
	defer s.Close()
	ctx := context.Background()
	tr := testTrace()
	id := mgrSession(t, s, "gshare:12:8")

	batch := append([]trace.Event(nil), tr.Events...)
	res, err := s.mgr.Feed(ctx, id, batch, tr.Insts, 1, false)
	if err != nil || res.Duplicate {
		t.Fatalf("first seq=1: res=%+v err=%v", res, err)
	}
	// Retry of seq 1: acknowledged, not applied.
	res, err = s.mgr.Feed(ctx, id, batch, tr.Insts, 1, false)
	if err != nil || !res.Duplicate {
		t.Fatalf("retry seq=1: res=%+v err=%v", res, err)
	}
	// Gap: seq 3 after 1.
	if _, err = s.mgr.Feed(ctx, id, batch, tr.Insts, 3, false); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("seq gap: got %v", err)
	}
	// In-order continues.
	if _, err = s.mgr.Feed(ctx, id, batch, tr.Insts, 2, false); err != nil {
		t.Fatal(err)
	}
	inf, err := s.mgr.Metrics(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	want := directMetrics(t, tr, "gshare:12:8", testEvalOptions(), 2)
	if !reflect.DeepEqual(inf.Metrics, want) {
		t.Fatalf("dedup changed the stream:\ngot  %+v\nwant %+v", inf.Metrics, want)
	}
}

// TestExplicitIDs: client-supplied IDs round-trip, collide with 409
// semantics (ErrExists), and reject unsafe charsets.
func TestExplicitIDs(t *testing.T) {
	s := spillServer(t, Config{Shards: 1})
	ctx := context.Background()
	cfg, err := testEvalOptions().Config()
	if err != nil {
		t.Fatal(err)
	}
	sp := sim.MustParse("gshare:12:8")
	mk := func(id string) error {
		c := cfg
		if c.Predictor, err = sp.New(); err != nil {
			t.Fatal(err)
		}
		_, err := s.mgr.Create(ctx, id, sp, c)
		return err
	}
	if err := mk("client-id_1"); err != nil {
		t.Fatal(err)
	}
	if err := mk("client-id_1"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate id: got %v", err)
	}
	for _, bad := range []string{"a/b", "a.b", "x*", string(make([]byte, 65))} {
		if err := mk(bad); !errors.Is(err, ErrBadID) {
			t.Fatalf("id %q: got %v, want ErrBadID", bad, err)
		}
	}
}

// TestSnapshotRestoreEndpoints drives the migration path over HTTP: GET
// a session's snapshot, restore it into a second server under the same
// ID, and require identical metrics — then check the error paths
// (restore over an existing session, corrupt body, ID mismatch).
func TestSnapshotRestoreEndpoints(t *testing.T) {
	tsA, sA := newTestServer(t, Config{Shards: 1})
	tsB, _ := newTestServer(t, Config{Shards: 1})
	tr := testTrace()

	var sess SessionJSON
	doJSON(t, "POST", tsA.URL+"/v1/sessions",
		SessionRequest{ID: "mig-1", Spec: "agree:10:8", EvalOptions: testEvalOptions()},
		http.StatusCreated, &sess)
	if sess.ID != "mig-1" {
		t.Fatalf("explicit id not honored: %q", sess.ID)
	}
	feedAll(t, sA, "mig-1", tr, 1)

	resp, err := http.Get(tsA.URL + "/v1/sessions/mig-1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d: %s", resp.StatusCode, blob)
	}

	post := func(url string, body []byte) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp, raw
	}

	resp2, raw := post(tsB.URL+"/v1/sessions/mig-1/restore", blob)
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("restore: %d: %s", resp2.StatusCode, raw)
	}
	var a, b SessionJSON
	doJSON(t, "GET", tsA.URL+"/v1/sessions/mig-1", nil, http.StatusOK, &a)
	doJSON(t, "GET", tsB.URL+"/v1/sessions/mig-1", nil, http.StatusOK, &b)
	if !reflect.DeepEqual(a.Metrics, b.Metrics) || b.LastSeq != 1 || b.Events != a.Events {
		t.Fatalf("migrated session differs:\nA %+v\nB %+v", a, b)
	}

	// Restore over an existing session: 409.
	if resp3, _ := post(tsB.URL+"/v1/sessions/mig-1/restore", blob); resp3.StatusCode != http.StatusConflict {
		t.Fatalf("restore over existing: %d", resp3.StatusCode)
	}
	// ID mismatch between URL and snapshot: 400.
	if resp4, _ := post(tsB.URL+"/v1/sessions/other-id/restore", blob); resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("restore id mismatch: %d", resp4.StatusCode)
	}
	// Corrupt snapshot: 400, counted as a restore failure.
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0xFF
	if resp5, _ := post(tsB.URL+"/v1/sessions/mig-2/restore", bad); resp5.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt restore: %d", resp5.StatusCode)
	}
}

// TestConcurrentEvictRestore hammers a spill-enabled server from many
// goroutines with a session table far too small for the session count,
// so every feed round races evictions-to-disk against warm restores on
// other shard-queue entries. Run under -race; correctness check: every
// session ends with exactly the events it was fed.
func TestConcurrentEvictRestore(t *testing.T) {
	s := spillServer(t, Config{
		Shards: 2, MaxSessions: 2, QueueDepth: 256,
		MinEvictIdle: time.Nanosecond, SessionTTL: time.Hour,
	})
	ctx := context.Background()
	tr := testTrace()
	events := tr.Events
	if len(events) > 200 {
		events = events[:200]
	}

	const sessions = 8
	const rounds = 12
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("hammer-%d", i)
		cfg, err := testEvalOptions().Config()
		if err != nil {
			t.Fatal(err)
		}
		sp := sim.MustParse("gshare:10:6")
		if cfg.Predictor, err = sp.New(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.mgr.Create(ctx, ids[i], sp, cfg); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for _, id := range ids {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				batch := append([]trace.Event(nil), events...)
				for {
					_, err := s.mgr.Feed(ctx, id, batch, 0, uint64(r+1), false)
					if errors.Is(err, ErrBusy) || errors.Is(err, ErrFull) {
						time.Sleep(time.Millisecond)
						continue
					}
					if err != nil {
						errs <- fmt.Errorf("%s round %d: %w", id, r, err)
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if s.tel.sessSpilled.Value() == 0 || s.tel.warmRestores.Value() == 0 {
		t.Fatalf("hammer exercised no spill traffic: spilled=%d restored=%d",
			s.tel.sessSpilled.Value(), s.tel.warmRestores.Value())
	}
	if s.tel.restoreFailures.Value() != 0 || s.tel.spillErrors.Value() != 0 {
		t.Fatalf("spill errors: restoreFailures=%d spillErrors=%d",
			s.tel.restoreFailures.Value(), s.tel.spillErrors.Value())
	}
	want := uint64(len(events) * rounds)
	for _, id := range ids {
		inf, err := s.mgr.Metrics(ctx, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if inf.Events != want || inf.LastSeq != rounds {
			t.Fatalf("%s: events=%d lastSeq=%d, want events=%d lastSeq=%d",
				id, inf.Events, inf.LastSeq, want, rounds)
		}
	}
}
